// Tests for the index substrates: external sorter (spill + merge),
// disk B+Tree (bulk load, seek, range scan, duplicates, prefix
// compression), and the persistent catalog.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "index/btree.h"
#include "index/catalog.h"
#include "index/external_sorter.h"
#include "serde/key_codec.h"
#include "tests/test_util.h"

namespace manimal::index {
namespace {

using testing::TempDir;

// ---------------- external sorter ----------------

TEST(ExternalSorterTest, InMemorySort) {
  TempDir dir("sorter");
  ExternalSorter::Options opts;
  opts.temp_dir = dir.path();
  ExternalSorter sorter(opts);
  ASSERT_OK(sorter.Add("b", "2"));
  ASSERT_OK(sorter.Add("a", "1"));
  ASSERT_OK(sorter.Add("c", "3"));
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  std::string keys;
  while (stream->Valid()) {
    keys += stream->key();
    ASSERT_OK(stream->Next());
  }
  EXPECT_EQ(keys, "abc");
  EXPECT_EQ(sorter.stats().spilled_runs, 0);
}

TEST(ExternalSorterTest, SpillsAndMerges) {
  TempDir dir("sorter2");
  ExternalSorter::Options opts;
  opts.temp_dir = dir.path();
  opts.memory_budget_bytes = 1024;  // force many spills
  ExternalSorter sorter(opts);
  Rng rng(5);
  std::multimap<std::string, std::string> expected;
  for (int i = 0; i < 3000; ++i) {
    std::string k = rng.AsciiString(8);
    std::string v = std::to_string(i);
    expected.emplace(k, v);
    ASSERT_OK(sorter.Add(k, v));
  }
  EXPECT_GT(sorter.stats().spilled_runs, 2);
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  std::string prev;
  uint64_t count = 0;
  std::multimap<std::string, std::string> got;
  while (stream->Valid()) {
    std::string k(stream->key());
    EXPECT_GE(k, prev);  // globally sorted
    got.emplace(k, std::string(stream->payload()));
    prev = k;
    ++count;
    ASSERT_OK(stream->Next());
  }
  EXPECT_EQ(count, 3000u);
  EXPECT_EQ(got, expected);  // nothing lost or duplicated
}

TEST(ExternalSorterTest, EmptyInput) {
  TempDir dir("sorter3");
  ExternalSorter::Options opts;
  opts.temp_dir = dir.path();
  ExternalSorter sorter(opts);
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  EXPECT_FALSE(stream->Valid());
}

TEST(ExternalSorterTest, DuplicateKeysAllSurvive) {
  TempDir dir("sorter4");
  ExternalSorter::Options opts;
  opts.temp_dir = dir.path();
  opts.memory_budget_bytes = 512;
  ExternalSorter sorter(opts);
  for (int i = 0; i < 500; ++i) {
    ASSERT_OK(sorter.Add("same-key", std::to_string(i)));
  }
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  int count = 0;
  while (stream->Valid()) {
    EXPECT_EQ(stream->key(), "same-key");
    ++count;
    ASSERT_OK(stream->Next());
  }
  EXPECT_EQ(count, 500);
}

TEST(ExternalSorterTest, MultiRunSpillsPlusInMemoryTail) {
  // A tiny budget forces several spilled runs, and the final
  // additions stay buffered, so the merge combines file runs with an
  // in-memory tail.
  TempDir dir("sorter6");
  ExternalSorter::Options opts;
  opts.temp_dir = dir.path();
  opts.memory_budget_bytes = 512;
  ExternalSorter sorter(opts);
  Rng rng(17);
  std::multimap<std::string, std::string> expected;
  for (int i = 0; i < 2000; ++i) {
    std::string k = rng.AsciiString(6);
    std::string v = std::to_string(i);
    expected.emplace(k, v);
    ASSERT_OK(sorter.Add(k, v));
  }
  ASSERT_GT(sorter.stats().spilled_runs, 2);
  // Some entries never spilled: the budget only trips on Add, so the
  // trailing additions form an in-memory tail.
  uint64_t spilled_payload = 0;
  ASSERT_OK_AND_ASSIGN(auto run_files, ListDir(dir.path()));
  for (const auto& name : run_files) {
    ASSERT_OK_AND_ASSIGN(uint64_t sz,
                         GetFileSize(dir.path() + "/" + name));
    spilled_payload += sz;
  }
  EXPECT_EQ(spilled_payload, sorter.stats().spilled_bytes);

  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  std::string prev;
  std::multimap<std::string, std::string> got;
  while (stream->Valid()) {
    std::string k(stream->key());
    EXPECT_GE(k, prev);
    got.emplace(k, std::string(stream->payload()));
    prev = k;
    ASSERT_OK(stream->Next());
  }
  EXPECT_EQ(got, expected);
}

TEST(ExternalSorterTest, DuplicateKeysStraddlingRunBoundaries) {
  // Interleave a handful of hot keys with filler so every spilled run
  // (and the in-memory tail) holds occurrences of the same keys; the
  // merge must surface every occurrence, adjacent per key.
  TempDir dir("sorter7");
  ExternalSorter::Options opts;
  opts.temp_dir = dir.path();
  opts.memory_budget_bytes = 256;
  ExternalSorter sorter(opts);
  Rng rng(23);
  std::map<std::string, int> expected_counts;
  for (int i = 0; i < 1200; ++i) {
    std::string k = "hot-" + std::to_string(i % 3);
    expected_counts[k]++;
    ASSERT_OK(sorter.Add(k, std::to_string(i)));
    if (i % 4 == 0) {
      std::string filler = rng.AsciiString(5);
      expected_counts[filler]++;
      ASSERT_OK(sorter.Add(filler, "f"));
    }
  }
  ASSERT_GT(sorter.stats().spilled_runs, 2);
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  std::map<std::string, int> got_counts;
  std::string prev;
  while (stream->Valid()) {
    std::string k(stream->key());
    EXPECT_GE(k, prev);
    // Occurrences of one key are contiguous in the merged stream.
    if (k != prev) {
      EXPECT_EQ(got_counts.count(k), 0u) << k;
    }
    got_counts[k]++;
    prev = k;
    ASSERT_OK(stream->Next());
  }
  EXPECT_EQ(got_counts, expected_counts);
}

TEST(ExternalSorterTest, TruncatedRunFileIsCorruptionNotSilentEof) {
  TempDir dir("sorter8");
  ExternalSorter::Options opts;
  opts.temp_dir = dir.path();
  opts.memory_budget_bytes = 256;
  ExternalSorter sorter(opts);
  for (int i = 0; i < 400; ++i) {
    ASSERT_OK(sorter.Add("key-" + std::to_string(i), "payload"));
  }
  ASSERT_GT(sorter.stats().spilled_runs, 0);
  // Chop one byte off the first run: its last entry now reads short.
  std::string run_path = dir.file("run-0000.sort");
  ASSERT_OK_AND_ASSIGN(std::string run_bytes, ReadFileToString(run_path));
  ASSERT_OK(WriteStringToFile(
      run_path, run_bytes.substr(0, run_bytes.size() - 1)));

  auto stream_or = sorter.Finish();
  Status st = stream_or.status();
  uint64_t entries_seen = 0;
  if (st.ok()) {
    auto stream = std::move(stream_or).value();
    while (stream->Valid()) {
      ++entries_seen;
      st = stream->Next();
      if (!st.ok()) break;
    }
  }
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_LT(entries_seen, 400u);  // nothing pretended to finish cleanly
}

TEST(ExternalSorterTest, EmptyKeysAndPayloads) {
  TempDir dir("sorter5");
  ExternalSorter::Options opts;
  opts.temp_dir = dir.path();
  ExternalSorter sorter(opts);
  ASSERT_OK(sorter.Add("", ""));
  ASSERT_OK(sorter.Add("x", ""));
  ASSERT_OK(sorter.Add("", "payload"));
  ASSERT_OK_AND_ASSIGN(auto stream, sorter.Finish());
  int count = 0;
  while (stream->Valid()) {
    ++count;
    ASSERT_OK(stream->Next());
  }
  EXPECT_EQ(count, 3);
}

// ---------------- B+Tree ----------------

std::string Key(int64_t v) {
  std::string out;
  EXPECT_OK(EncodeOrderedKey(Value::I64(v), &out));
  return out;
}

TEST(BTreeTest, BuildAndPointSeek) {
  TempDir dir("btree");
  std::string path = dir.file("t.idx");
  {
    ASSERT_OK_AND_ASSIGN(auto builder, BTreeBuilder::Create(path));
    for (int i = 0; i < 1000; ++i) {
      ASSERT_OK(builder->Add(Key(i * 2), "v" + std::to_string(i * 2)));
    }
    ASSERT_OK_AND_ASSIGN(uint64_t size, builder->Finish());
    EXPECT_GT(size, 0u);
  }
  ASSERT_OK_AND_ASSIGN(auto reader, BTreeReader::Open(path));
  EXPECT_EQ(reader->num_entries(), 1000u);

  // Exact hit.
  ASSERT_OK_AND_ASSIGN(auto it, reader->Seek(Key(500), true));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.payload(), "v500");
  // Between keys: lands on next.
  ASSERT_OK_AND_ASSIGN(it, reader->Seek(Key(501), true));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.payload(), "v502");
  // Past the end.
  ASSERT_OK_AND_ASSIGN(it, reader->Seek(Key(99999), true));
  EXPECT_FALSE(it.Valid());
  // Exclusive skips the equal key.
  ASSERT_OK_AND_ASSIGN(it, reader->Seek(Key(500), false));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.payload(), "v502");
}

TEST(BTreeTest, FullScanInOrder) {
  TempDir dir("btree2");
  std::string path = dir.file("t.idx");
  {
    ASSERT_OK_AND_ASSIGN(auto builder, BTreeBuilder::Create(path));
    for (int i = 0; i < 5000; ++i) ASSERT_OK(builder->Add(Key(i), "p"));
    ASSERT_OK(builder->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, BTreeReader::Open(path));
  ASSERT_OK_AND_ASSIGN(auto it, reader->SeekToFirst());
  int64_t expected = 0;
  while (it.Valid()) {
    Value key;
    ASSERT_OK(DecodeOrderedKey(it.key(), &key));
    EXPECT_EQ(key.i64(), expected++);
    ASSERT_OK(it.Next());
  }
  EXPECT_EQ(expected, 5000);
  EXPECT_GT(reader->height(), 1);
}

TEST(BTreeTest, DuplicateKeysSpanningLeavesAllFound) {
  TempDir dir("btree3");
  std::string path = dir.file("t.idx");
  const int kDups = 3000;  // guaranteed to span many small leaves
  {
    BTreeBuilder::Options opts;
    opts.target_node_bytes = 256;
    ASSERT_OK_AND_ASSIGN(auto builder, BTreeBuilder::Create(path, opts));
    ASSERT_OK(builder->Add(Key(1), "before"));
    for (int i = 0; i < kDups; ++i) {
      ASSERT_OK(builder->Add(Key(5), "dup" + std::to_string(i)));
    }
    ASSERT_OK(builder->Add(Key(9), "after"));
    ASSERT_OK(builder->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, BTreeReader::Open(path));
  ASSERT_OK_AND_ASSIGN(auto it, reader->Seek(Key(5), true));
  int count = 0;
  while (it.Valid() && std::string_view(it.key()) == Key(5)) {
    ++count;
    ASSERT_OK(it.Next());
  }
  EXPECT_EQ(count, kDups);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.payload(), "after");
}

TEST(BTreeTest, UnsortedInsertRejected) {
  TempDir dir("btree4");
  ASSERT_OK_AND_ASSIGN(auto builder,
                       BTreeBuilder::Create(dir.file("t.idx")));
  ASSERT_OK(builder->Add(Key(10), "a"));
  EXPECT_TRUE(builder->Add(Key(5), "b").IsInvalidArgument());
}

TEST(BTreeTest, EmptyTree) {
  TempDir dir("btree5");
  std::string path = dir.file("t.idx");
  {
    ASSERT_OK_AND_ASSIGN(auto builder, BTreeBuilder::Create(path));
    ASSERT_OK(builder->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, BTreeReader::Open(path));
  EXPECT_EQ(reader->num_entries(), 0u);
  ASSERT_OK_AND_ASSIGN(auto it, reader->SeekToFirst());
  EXPECT_FALSE(it.Valid());
  ASSERT_OK_AND_ASSIGN(it, reader->Seek(Key(1), true));
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeTest, CorruptFileRejected) {
  TempDir dir("btree6");
  std::string path = dir.file("junk.idx");
  ASSERT_OK(WriteStringToFile(path, "this is not a btree at all"));
  EXPECT_FALSE(BTreeReader::Open(path).ok());
  ASSERT_OK(WriteStringToFile(dir.file("tiny"), "x"));
  EXPECT_FALSE(BTreeReader::Open(dir.file("tiny")).ok());
}

// Property test: random data, compare range scans against std::multimap.
class BTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreePropertyTest, RangeScansMatchReferenceModel) {
  TempDir dir("btree-prop");
  std::string path = dir.file("t.idx");
  Rng rng(GetParam());
  std::multimap<std::string, std::string> model;
  std::vector<std::pair<std::string, std::string>> entries;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    std::string k = Key(rng.UniformRange(0, 300));
    std::string v = "v" + std::to_string(i);
    model.emplace(k, v);
    entries.emplace_back(k, v);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  {
    BTreeBuilder::Options opts;
    opts.target_node_bytes = 512;
    ASSERT_OK_AND_ASSIGN(auto builder, BTreeBuilder::Create(path, opts));
    for (const auto& [k, v] : entries) ASSERT_OK(builder->Add(k, v));
    ASSERT_OK(builder->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, BTreeReader::Open(path));

  for (int trial = 0; trial < 30; ++trial) {
    int64_t lo = rng.UniformRange(-10, 310);
    int64_t hi = lo + rng.UniformRange(0, 100);
    // Model: count entries with lo <= key <= hi.
    auto begin = model.lower_bound(Key(lo));
    auto end = model.upper_bound(Key(hi));
    size_t expected = std::distance(begin, end);

    ASSERT_OK_AND_ASSIGN(auto it, reader->Seek(Key(lo), true));
    size_t got = 0;
    while (it.Valid() && std::string_view(it.key()) <= Key(hi)) {
      ++got;
      ASSERT_OK(it.Next());
    }
    EXPECT_EQ(got, expected) << "range [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreePropertyTest,
                         ::testing::Values(21, 22, 23, 24));

TEST(BTreeTest, RootChildKeysCoverTree) {
  TempDir dir("btree7");
  std::string path = dir.file("t.idx");
  {
    BTreeBuilder::Options opts;
    opts.target_node_bytes = 512;
    ASSERT_OK_AND_ASSIGN(auto builder, BTreeBuilder::Create(path, opts));
    for (int i = 0; i < 2000; ++i) ASSERT_OK(builder->Add(Key(i), "p"));
    ASSERT_OK(builder->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, BTreeReader::Open(path));
  ASSERT_OK_AND_ASSIGN(auto keys, reader->RootChildKeys());
  ASSERT_GT(keys.size(), 1u);
  // Sorted and within key range.
  for (size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(keys[i - 1], keys[i]);
  }
}

// ---------------- catalog ----------------

TEST(CatalogTest, RegisterPersistsAcrossReopen) {
  TempDir dir("catalog");
  std::string path = dir.file("catalog.txt");
  CatalogEntry entry;
  entry.input_file = "/data/visits.msq";
  entry.signature = "v1|schema=a:i64|btree=-|proj=0,3|delta=-|dict=-";
  entry.artifact_path = "/ws/artifacts/seq-abc.msq";
  entry.base_path = "";
  entry.artifact_bytes = 123;
  entry.input_bytes = 1000;
  {
    ASSERT_OK_AND_ASSIGN(Catalog catalog, Catalog::Open(path));
    ASSERT_OK(catalog.Register(entry));
  }
  ASSERT_OK_AND_ASSIGN(Catalog catalog, Catalog::Open(path));
  auto found = catalog.Find(entry.input_file, entry.signature);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->artifact_path, entry.artifact_path);
  EXPECT_EQ(found->artifact_bytes, 123u);
  EXPECT_DOUBLE_EQ(found->SpaceOverhead(), 0.123);
  EXPECT_FALSE(catalog.Find("/other", entry.signature).has_value());
}

TEST(CatalogTest, RegisterReplacesMatchingEntry) {
  TempDir dir("catalog2");
  ASSERT_OK_AND_ASSIGN(Catalog catalog,
                       Catalog::Open(dir.file("c.txt")));
  CatalogEntry e;
  e.input_file = "in";
  e.signature = "sig";
  e.artifact_path = "old";
  ASSERT_OK(catalog.Register(e));
  e.artifact_path = "new";
  ASSERT_OK(catalog.Register(e));
  EXPECT_EQ(catalog.entries().size(), 1u);
  EXPECT_EQ(catalog.Find("in", "sig")->artifact_path, "new");
}

TEST(CatalogTest, FindForInputListsAll) {
  TempDir dir("catalog3");
  ASSERT_OK_AND_ASSIGN(Catalog catalog,
                       Catalog::Open(dir.file("c.txt")));
  for (int i = 0; i < 3; ++i) {
    CatalogEntry e;
    e.input_file = "in";
    e.signature = "sig" + std::to_string(i);
    ASSERT_OK(catalog.Register(e));
  }
  CatalogEntry other;
  other.input_file = "other";
  other.signature = "sig0";
  ASSERT_OK(catalog.Register(other));
  EXPECT_EQ(catalog.FindForInput("in").size(), 3u);
  EXPECT_EQ(catalog.FindForInput("other").size(), 1u);
}

TEST(CatalogTest, FieldsWithTabsSurviveEscaping) {
  TempDir dir("catalog4");
  CatalogEntry e;
  e.input_file = "weird\tname\nwith newline";
  e.signature = "sig\\with\\backslashes";
  {
    ASSERT_OK_AND_ASSIGN(Catalog catalog,
                         Catalog::Open(dir.file("c.txt")));
    ASSERT_OK(catalog.Register(e));
  }
  ASSERT_OK_AND_ASSIGN(Catalog catalog, Catalog::Open(dir.file("c.txt")));
  EXPECT_TRUE(catalog.Find(e.input_file, e.signature).has_value());
}

TEST(CatalogTest, CorruptManifestRejected) {
  TempDir dir("catalog5");
  ASSERT_OK(WriteStringToFile(dir.file("c.txt"), "only\ttwo\n"));
  EXPECT_FALSE(Catalog::Open(dir.file("c.txt")).ok());
}

}  // namespace
}  // namespace manimal::index
