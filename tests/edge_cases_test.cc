// Targeted edge-case tests that the broad suites skim over: empty and
// single-record jobs, descriptor descriptions, optimizer preference
// between a program-exact projection artifact and column groups, and
// catalog/workspace interactions.

#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "columnar/seqfile.h"
#include "core/manimal.h"
#include "exec/engine.h"
#include "exec/pairfile.h"
#include "mril/builder.h"
#include "optimizer/optimizer.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"

namespace manimal {
namespace {

using testing::TempDir;

exec::JobConfig SmallConfig(const TempDir& dir, const std::string& name) {
  exec::JobConfig config;
  config.map_parallelism = 2;
  config.num_partitions = 2;
  config.temp_dir = dir.file("tmp-" + name);
  config.output_path = dir.file(name);
  config.simulated_startup_seconds = 0;
  config.simulated_disk_bytes_per_sec = 0;
  return config;
}

TEST(EdgeCasesTest, ReduceJobOnEmptyInput) {
  TempDir dir("edge-empty");
  {
    auto writer =
        std::move(columnar::SeqFileWriter::Create(
                      dir.file("empty.msq"),
                      columnar::PlainMeta(workloads::WebPagesSchema())))
            .value();
    ASSERT_OK(writer->Finish().status());
  }
  mril::Program program = workloads::SelectionCountQuery(0);
  auto d = optimizer::BaselineDescriptor(program, dir.file("empty.msq"));
  ASSERT_OK_AND_ASSIGN(exec::JobResult result,
                       exec::RunJob(d, SmallConfig(dir, "out.prs")));
  EXPECT_EQ(result.counters.input_records, 0u);
  EXPECT_EQ(result.counters.output_records, 0u);
  ASSERT_OK_AND_ASSIGN(auto pairs,
                       exec::ReadAllPairs(dir.file("out.prs")));
  EXPECT_TRUE(pairs.empty());
}

TEST(EdgeCasesTest, SingleRecordJob) {
  TempDir dir("edge-one");
  {
    auto writer =
        std::move(columnar::SeqFileWriter::Create(
                      dir.file("one.msq"),
                      columnar::PlainMeta(workloads::WebPagesSchema())))
            .value();
    ASSERT_OK(writer->Append({Value::Str("http://only"), Value::I64(7),
                              Value::Str("c")}));
    ASSERT_OK(writer->Finish().status());
  }
  mril::Program program = workloads::SelectionCountQuery(0);
  auto d = optimizer::BaselineDescriptor(program, dir.file("one.msq"));
  ASSERT_OK_AND_ASSIGN(exec::JobResult result,
                       exec::RunJob(d, SmallConfig(dir, "out.prs")));
  ASSERT_OK_AND_ASSIGN(auto pairs,
                       exec::ReadAllPairs(dir.file("out.prs")));
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].first.i64(), 7);
  EXPECT_EQ(pairs[0].second.i64(), 1);
  EXPECT_EQ(result.counters.reduce_groups, 1u);
}

TEST(EdgeCasesTest, NeverMatchingSelectionScansNothing) {
  TempDir dir("edge-none");
  workloads::WebPagesOptions gen;
  gen.num_pages = 2000;
  gen.content_len = 64;
  gen.rank_range = 100;
  ASSERT_OK(
      workloads::GenerateWebPages(dir.file("pages.msq"), gen).status());

  core::ManimalSystem::Options options;
  options.workspace_dir = dir.file("ws");
  options.simulated_startup_seconds = 0;
  ASSERT_OK_AND_ASSIGN(auto system, core::ManimalSystem::Open(options));

  // rank > 10^9 never matches.
  mril::Program program = workloads::SelectionCountQuery(1000000000);
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  ASSERT_FALSE(specs.empty());
  ASSERT_OK(system->BuildIndex(specs[0], dir.file("pages.msq")).status());

  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir.file("pages.msq");
  job.output_path = dir.file("out.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));
  EXPECT_TRUE(outcome.plan.optimized);
  EXPECT_EQ(outcome.job.counters.map_invocations, 0u);
  EXPECT_EQ(outcome.job.counters.output_records, 0u);
}

TEST(EdgeCasesTest, DescriptorDescriptions) {
  exec::ExecutionDescriptor d;
  d.data_path = "/x/data.msq";
  EXPECT_NE(d.Describe().find("seqscan"), std::string::npos);
  d.access_path = exec::AccessPath::kBTree;
  analyzer::KeyInterval iv;
  iv.lo = Value::I64(5);
  d.intervals.push_back(iv);
  d.applied.push_back("selection(test)");
  std::string text = d.Describe();
  EXPECT_NE(text.find("btree"), std::string::npos);
  EXPECT_NE(text.find("[i64:5, +inf]"), std::string::npos);
  EXPECT_NE(text.find("selection(test)"), std::string::npos);
  d.access_path = exec::AccessPath::kColumnGroups;
  EXPECT_NE(d.Describe().find("column-groups"), std::string::npos);
}

TEST(EdgeCasesTest, ExactProjectionBeatsColumnGroups) {
  TempDir dir("edge-rank");
  workloads::UserVisitsOptions gen;
  gen.num_visits = 3000;
  gen.num_pages = 100;
  ASSERT_OK(
      workloads::GenerateUserVisits(dir.file("visits.msq"), gen).status());
  core::ManimalSystem::Options options;
  options.workspace_dir = dir.file("ws");
  options.simulated_startup_seconds = 0;
  ASSERT_OK_AND_ASSIGN(auto system, core::ManimalSystem::Open(options));

  mril::Program program = workloads::Benchmark2Aggregation();
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  const analyzer::IndexGenProgram* exact = nullptr;
  const analyzer::IndexGenProgram* cgroups = nullptr;
  for (const auto& s : specs) {
    if (s.projection && !s.btree && !s.delta && !s.column_groups) {
      exact = &s;
    }
    if (s.column_groups) cgroups = &s;
  }
  ASSERT_NE(exact, nullptr);
  ASSERT_NE(cgroups, nullptr);
  ASSERT_OK(system->BuildIndex(*cgroups, dir.file("visits.msq")).status());
  ASSERT_OK(system->BuildIndex(*exact, dir.file("visits.msq")).status());

  ASSERT_OK_AND_ASSIGN(
      auto plan, optimizer::BuildPlan(program, dir.file("visits.msq"),
                                      report, system->catalog()));
  ASSERT_TRUE(plan.optimized);
  // The program-exact projection ranks above the generic column
  // groups.
  bool used_cgroups = false;
  for (const auto& applied : plan.descriptor.applied) {
    if (applied.find("column-groups") != std::string::npos) {
      used_cgroups = true;
    }
  }
  EXPECT_FALSE(used_cgroups) << plan.explanation;
}

TEST(EdgeCasesTest, SimulatedDiskZeroDisablesAccounting) {
  TempDir dir("edge-disk");
  workloads::WebPagesOptions gen;
  gen.num_pages = 200;
  gen.content_len = 32;
  ASSERT_OK(
      workloads::GenerateWebPages(dir.file("pages.msq"), gen).status());
  mril::Program program = workloads::ProjectionQuery(50);
  auto d = optimizer::BaselineDescriptor(program, dir.file("pages.msq"));
  exec::JobConfig config = SmallConfig(dir, "out.prs");
  config.simulated_disk_bytes_per_sec = 0;
  ASSERT_OK_AND_ASSIGN(exec::JobResult result, exec::RunJob(d, config));
  EXPECT_EQ(result.simulated_io_seconds, 0.0);
  EXPECT_EQ(result.reported_seconds, result.wall_seconds);
}

TEST(EdgeCasesTest, IntervalContainsSemantics) {
  analyzer::KeyInterval iv;
  iv.lo = Value::I64(10);
  iv.lo_inclusive = false;
  iv.hi = Value::I64(20);
  iv.hi_inclusive = true;
  EXPECT_FALSE(iv.Contains(Value::I64(10)));
  EXPECT_TRUE(iv.Contains(Value::I64(11)));
  EXPECT_TRUE(iv.Contains(Value::I64(20)));
  EXPECT_FALSE(iv.Contains(Value::I64(21)));
  EXPECT_EQ(iv.ToString(), "(i64:10, i64:20]");

  analyzer::KeyInterval unbounded;
  EXPECT_TRUE(unbounded.Contains(Value::I64(INT64_MIN)));
  EXPECT_TRUE(unbounded.Contains(Value::Str("anything")));
}

}  // namespace
}  // namespace manimal
