// Journal tests: the JSON-lines run journal's schema invariants
// (every line parses, versioned, monotonically sequenced) and a
// golden-file test pinning the exact byte output of a deterministic
// single-threaded run — the journal is a machine-readable contract,
// so accidental field renames/reorders must fail loudly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/manimal.h"
#include "obs/journal.h"
#include "obs/json.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"

namespace manimal::obs {
namespace {

using testing::TempDir;

// Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string s, const std::string& from,
                       const std::string& to) {
  for (size_t pos = 0; (pos = s.find(from, pos)) != std::string::npos;
       pos += to.size()) {
    s.replace(pos, from.size(), to);
  }
  return s;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// Runs the full Manimal pipeline once (seqscan, 1 mapper, 1
// partition, speculation off) with the journal recording
// deterministically, and returns the journal text with the workspace
// root and auto-assigned job id normalized.
std::string RunDeterministicJob(const TempDir& dir) {
  Journal::Get().ResetForTest();
  Journal::Get().SetOutputPathForTest(dir.file("journal.jsonl"));
  Journal::Get().SetDeterministicForTest(true);

  workloads::WebPagesOptions gen;
  gen.num_pages = 400;
  gen.content_len = 32;
  gen.rank_range = 100;
  EXPECT_TRUE(
      workloads::GenerateWebPages(dir.file("pages.msq"), gen).ok());

  core::ManimalSystem::Options options;
  options.workspace_dir = dir.file("ws");
  options.simulated_startup_seconds = 0;
  options.map_parallelism = 1;
  options.num_partitions = 1;
  options.enable_speculation = false;
  auto system_or = core::ManimalSystem::Open(options);
  EXPECT_TRUE(system_or.ok()) << system_or.status().ToString();
  core::ManimalSystem::Submission job;
  job.program = workloads::SelectionCountQuery(50);
  job.input_path = dir.file("pages.msq");
  job.output_path = dir.file("out.prs");
  auto outcome_or = (*system_or)->Submit(job);
  EXPECT_TRUE(outcome_or.ok()) << outcome_or.status().ToString();

  Journal::Get().SetDeterministicForTest(false);
  Journal::Get().ResetForTest();

  auto text_or = ReadFileToString(dir.file("journal.jsonl"));
  EXPECT_TRUE(text_or.ok()) << text_or.status().ToString();
  std::string text = ReplaceAll(*text_or, dir.path(), "<ws>");
  return ReplaceAll(text, "\"" + outcome_or->job.job_id + "\"",
                    "\"job-0\"");
}

TEST(JournalTest, DisabledByDefaultAndCostsNothing) {
  Journal::Get().ResetForTest();
  ASSERT_FALSE(Journal::Get().enabled());
  const uint64_t before = Journal::Get().events_written();
  Journal::Get()
      .Event("test_event")
      .Str("key", "value")
      .Int("n", 7)
      .Emit();
  EXPECT_EQ(Journal::Get().events_written(), before);
}

TEST(JournalTest, EveryLineIsVersionedSequencedJson) {
  TempDir dir("journal1");
  const std::string text = RunDeterministicJob(dir);
  const std::vector<std::string> lines = SplitLines(text);
  ASSERT_FALSE(lines.empty());

  uint64_t prev_seq = 0;
  bool saw_job_start = false, saw_job_finish = false,
       saw_plan = false, saw_commit = false;
  for (const std::string& line : lines) {
    JsonValue value;
    std::string error;
    ASSERT_TRUE(JsonParse(line, &value, &error))
        << error << " in: " << line;
    ASSERT_TRUE(value.is_object());
    EXPECT_EQ(value.NumberOr("v", -1), kJournalSchemaVersion);
    const double seq = value.NumberOr("seq", -1);
    EXPECT_GT(seq, static_cast<double>(prev_seq));
    prev_seq = static_cast<uint64_t>(seq);
    EXPECT_NE(value.Find("ts_us"), nullptr);
    const std::string event = value.StringOr("event", "");
    EXPECT_FALSE(event.empty());
    saw_job_start |= event == "job_start";
    saw_job_finish |= event == "job_finish";
    saw_plan |= event == "plan_selected";
    saw_commit |= event == "task_commit";
  }
  EXPECT_TRUE(saw_plan);
  EXPECT_TRUE(saw_job_start);
  EXPECT_TRUE(saw_commit);
  EXPECT_TRUE(saw_job_finish);
}

TEST(JournalTest, TaskEventsShareJobAndTaskIds) {
  TempDir dir("journal2");
  const std::string text = RunDeterministicJob(dir);
  for (const std::string& line : SplitLines(text)) {
    JsonValue value;
    std::string error;
    ASSERT_TRUE(JsonParse(line, &value, &error)) << error;
    const std::string event = value.StringOr("event", "");
    if (event == "task_start" || event == "task_commit") {
      EXPECT_EQ(value.StringOr("job", ""), "job-0") << line;
      const std::string task = value.StringOr("task", "");
      ASSERT_EQ(task.size(), 5u) << line;
      EXPECT_TRUE(task[0] == 'm' || task[0] == 'r') << line;
    }
  }
}

// The byte-exact contract: a fixed-seed single-threaded run must
// reproduce tests/golden/journal_submit.jsonl exactly (timestamps and
// wall-clock fields are zeroed by deterministic mode; workspace root
// and job id are normalized). If this fails because the schema
// INTENTIONALLY changed, regenerate the golden file from the
// "=== actual journal ===" dump below and bump kJournalSchemaVersion
// when a field was renamed, removed, or changed meaning.
TEST(JournalTest, GoldenFileIsByteStable) {
  TempDir dir("journal3");
  const std::string actual = RunDeterministicJob(dir);
  auto golden_or = ReadFileToString(
      std::string(MANIMAL_TEST_GOLDEN_DIR) + "/journal_submit.jsonl");
  ASSERT_TRUE(golden_or.ok()) << golden_or.status().ToString();
  EXPECT_EQ(actual, *golden_or)
      << "=== actual journal ===\n" << actual;
}

}  // namespace
}  // namespace manimal::obs
