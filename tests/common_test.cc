// Unit and property tests for src/common: coding, strings, RNG/Zipf,
// env, thread pool.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "common/coding.h"
#include "common/faulty_env.h"
#include "common/random.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "tests/test_util.h"

namespace manimal {
namespace {

using testing::TempDir;

// ---------------- coding ----------------

TEST(CodingTest, Varint64RoundtripBoundaries) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (1ull << 32) - 1,
                            1ull << 32,
                            UINT64_MAX};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    std::string_view in = buf;
    uint64_t out = 0;
    ASSERT_OK(GetVarint64(&in, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, (1ull << 33));
  std::string_view in = buf;
  uint32_t out = 0;
  EXPECT_FALSE(GetVarint32(&in, &out).ok());
}

TEST(CodingTest, VarintTruncatedIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 300);
  std::string_view in(buf.data(), 1);  // drop the final byte
  uint64_t out = 0;
  EXPECT_TRUE(GetVarint64(&in, &out).IsCorruption());
}

TEST(CodingTest, ZigzagRoundtrip) {
  const int64_t cases[] = {0, -1, 1, -2, 2, INT64_MAX, INT64_MIN, -12345};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v) << v;
  }
}

TEST(CodingTest, ZigzagSmallMagnitudesEncodeSmall) {
  // The property delta compression rests on: small |v| -> few bytes.
  std::string buf;
  PutVarintSigned(&buf, -3);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarintSigned(&buf, 1000000);
  EXPECT_GE(buf.size(), 3u);
}

TEST(CodingTest, LengthPrefixedRoundtrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view in = buf;
  std::string_view a, b, c;
  ASSERT_OK(GetLengthPrefixed(&in, &a));
  ASSERT_OK(GetLengthPrefixed(&in, &b));
  ASSERT_OK(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedTruncated) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  std::string_view in(buf.data(), 3);
  std::string_view out;
  EXPECT_TRUE(GetLengthPrefixed(&in, &out).IsCorruption());
}

TEST(CodingTest, FixedRoundtrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  PutDouble(&buf, 3.14159);
  std::string_view in = buf;
  uint32_t a;
  uint64_t b;
  double d;
  ASSERT_OK(GetFixed32(&in, &a));
  ASSERT_OK(GetFixed64(&in, &b));
  ASSERT_OK(GetDouble(&in, &d));
  EXPECT_EQ(a, 0xDEADBEEF);
  EXPECT_EQ(b, 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(d, 3.14159);
}

// Property sweep: random values roundtrip.
class VarintPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(VarintPropertyTest, RandomRoundtrip) {
  Rng rng(GetParam());
  std::string buf;
  std::vector<int64_t> values;
  for (int i = 0; i < 500; ++i) {
    int64_t v = static_cast<int64_t>(rng.Next() >> rng.Uniform(63));
    if (rng.OneIn(2)) v = -v;
    values.push_back(v);
    PutVarintSigned(&buf, v);
  }
  std::string_view in = buf;
  for (int64_t expected : values) {
    int64_t out = 0;
    ASSERT_OK(GetVarintSigned(&in, &out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_TRUE(in.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarintPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------- strings ----------------

TEST(StringsTest, SplitJoin) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(JoinStrings({"a", "b"}, "-"), "a-b");
  EXPECT_EQ(JoinStrings({}, "-"), "");
}

TEST(StringsTest, EscapeRoundtrip) {
  const std::string cases[] = {"plain", "tab\there", "nl\nhere",
                               "back\\slash", "\t\n\\", ""};
  for (const std::string& s : cases) {
    EXPECT_EQ(UnescapeField(EscapeField(s)), s);
    // Escaped form is single-line and tab-free.
    std::string esc = EscapeField(s);
    EXPECT_EQ(esc.find('\t'), std::string::npos);
    EXPECT_EQ(esc.find('\n'), std::string::npos);
  }
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("htt", "http://"));
  EXPECT_TRUE(EndsWith("file.idx", ".idx"));
  EXPECT_FALSE(EndsWith("idx", ".idx"));
}

TEST(StringsTest, StrPrintfAndHumanBytes) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1024), "1.00 KB");
  EXPECT_EQ(HumanBytes(3u << 20), "3.00 MB");
}

// ---------------- random ----------------

TEST(RandomTest, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(17);
    EXPECT_LT(v, 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, IpAddressShape) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    std::string ip = rng.IpAddress();
    auto parts = SplitString(ip, '.');
    ASSERT_EQ(parts.size(), 4u) << ip;
    for (const std::string& p : parts) {
      int v = std::stoi(p);
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 255);
    }
  }
}

TEST(RandomTest, ZipfSkewsTowardLowRanks) {
  Rng rng(4);
  ZipfSampler zipf(1000, 0.8);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(&rng)]++;
  // Rank 1 must be sampled far more often than rank >= 500.
  int head = counts[1];
  int tail = 0;
  for (auto& [rank, n] : counts) {
    if (rank >= 500) tail = std::max(tail, n);
  }
  EXPECT_GT(head, tail * 5);
  // All samples in range.
  for (auto& [rank, n] : counts) {
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 1000u);
  }
}

// ---------------- env ----------------

TEST(EnvTest, WriteReadRoundtrip) {
  TempDir dir("env");
  std::string path = dir.file("f.bin");
  std::string payload(100000, 'z');
  payload[5] = '\0';
  ASSERT_OK(WriteStringToFile(path, payload));
  ASSERT_OK_AND_ASSIGN(std::string back, ReadFileToString(path));
  EXPECT_EQ(back, payload);
  ASSERT_OK_AND_ASSIGN(uint64_t size, GetFileSize(path));
  EXPECT_EQ(size, payload.size());
}

TEST(EnvTest, RandomAccessReadAt) {
  TempDir dir("env2");
  std::string path = dir.file("f.bin");
  ASSERT_OK(WriteStringToFile(path, "0123456789"));
  ASSERT_OK_AND_ASSIGN(auto file, RandomAccessFile::Open(path));
  std::string out;
  ASSERT_OK(file->ReadAt(3, 4, &out));
  EXPECT_EQ(out, "3456");
  EXPECT_TRUE(file->ReadAt(8, 4, &out).IsCorruption());
}

TEST(EnvTest, MissingFileIsNotFound) {
  EXPECT_TRUE(ReadFileToString("/nonexistent/manimal-xyz").status()
                  .IsNotFound());
  EXPECT_FALSE(FileExists("/nonexistent/manimal-xyz"));
}

TEST(EnvTest, RemoveDirSafetyRail) {
  // Refuses to recursively remove paths without "manimal" in them.
  EXPECT_TRUE(RemoveDirRecursively("/tmp/definitely-not-ours")
                  .IsInvalidArgument());
}

// ---------------- thread pool ----------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitCanBeReused) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, ParallelismIsReal) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      int now = concurrent.fetch_add(1) + 1;
      int old_peak = peak.load();
      while (now > old_peak &&
             !peak.compare_exchange_weak(old_peak, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_GT(peak.load(), 1);
}

// ---------------- status ----------------

TEST(StatusTest, Basics) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, ResultHoldsValueOrStatus) {
  Result<int> ok_result = 7;
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 7);
  Result<int> err_result = Status::Internal("boom");
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kInternal);
}

// ---------------- fault injection plumbing ----------------

TEST(FaultyEnvTest, DisabledAndUnarmedInjectNothing) {
  // Disabled entirely.
  EXPECT_FALSE(FaultyEnv::Active());
  EXPECT_OK(FaultyEnv::Get().MaybeInject(FaultOp::kWrite, "/x"));
  // Enabled but this thread never armed: still inert.
  FaultyEnv::Config config;
  config.rate = 1.0;
  ScopedFaultInjection inject(config);
  EXPECT_FALSE(FaultyEnv::Active());
  EXPECT_EQ(FaultyEnv::Get().stats().evaluated, 0u);
}

TEST(FaultyEnvTest, ScheduleIsDeterministicForASeed) {
  auto decisions = [](uint64_t seed) {
    FaultyEnv::Config config;
    config.seed = seed;
    config.rate = 0.3;
    ScopedFaultInjection inject(config);
    ScopedFaultArming arm;
    std::string out;
    for (int i = 0; i < 64; ++i) {
      out += FaultyEnv::Get()
                     .MaybeInject(FaultOp::kWrite, "/some/file")
                     .ok()
                 ? '.'
                 : 'X';
    }
    return out;
  };
  const std::string a = decisions(7);
  EXPECT_EQ(a, decisions(7));       // same seed: same schedule
  EXPECT_NE(a, decisions(8));       // different seed: different one
  EXPECT_NE(a.find('X'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST(FaultyEnvTest, FailNthFiresExactlyOnce) {
  FaultyEnv::Config config;
  config.fail_nth = 3;
  ScopedFaultInjection inject(config);
  ScopedFaultArming arm;
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    Status s = FaultyEnv::Get().MaybeInject(FaultOp::kRead, "/f");
    if (!s.ok()) {
      EXPECT_TRUE(s.IsIOError());
      EXPECT_EQ(i, 2);  // the third evaluation
      ++failures;
    }
  }
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(FaultyEnv::Get().stats().injected, 1u);
  EXPECT_EQ(FaultyEnv::Get().stats().evaluated, 10u);
}

TEST(FaultyEnvTest, ShortWritePersistsAPrefix) {
  FaultyEnv::Config config;
  config.rate = 1.0;
  config.seed = 11;
  ScopedFaultInjection inject(config);
  ScopedFaultArming arm;
  size_t prefix = 999;
  Status s = FaultyEnv::Get().MaybeInjectWrite("/f", 100, &prefix);
  ASSERT_FALSE(s.ok());
  EXPECT_LT(prefix, 100u);  // a torn write never persists everything
}

TEST(FaultyEnvTest, ArmingNestsAndRestores) {
  FaultyEnv::Config config;
  config.rate = 0;
  ScopedFaultInjection inject(config);
  EXPECT_FALSE(FaultyEnv::Active());
  {
    ScopedFaultArming outer;
    EXPECT_TRUE(FaultyEnv::Active());
    {
      ScopedFaultArming inner;
      EXPECT_TRUE(FaultyEnv::Active());
    }
    EXPECT_TRUE(FaultyEnv::Active());
  }
  EXPECT_FALSE(FaultyEnv::Active());
}

TEST(FaultyEnvTest, ConfigFromEnvOverridesDefaults) {
  FaultyEnv::Config defaults;
  defaults.seed = 1;
  defaults.rate = 0.5;
  setenv("MANIMAL_FAULT_SEED", "42", 1);
  setenv("MANIMAL_FAULT_RATE", "0.25", 1);
  FaultyEnv::Config config = FaultyEnv::ConfigFromEnv(defaults);
  unsetenv("MANIMAL_FAULT_SEED");
  unsetenv("MANIMAL_FAULT_RATE");
  EXPECT_EQ(config.seed, 42u);
  EXPECT_DOUBLE_EQ(config.rate, 0.25);
}

TEST(FaultyEnvTest, RealIoFailsUnderInjectionAndRecovers) {
  testing::TempDir dir("faultyenv");
  const std::string path = dir.file("f");
  {
    FaultyEnv::Config config;
    config.rate = 1.0;
    ScopedFaultInjection inject(config);
    ScopedFaultArming arm;
    auto file = WritableFile::Create(path);
    EXPECT_FALSE(file.ok());  // open itself is a fault site
  }
  // Injection gone: the same call succeeds.
  ASSERT_OK_AND_ASSIGN(auto file, WritableFile::Create(path));
  ASSERT_OK(file->Append("hello"));
  ASSERT_OK(file->Close());
  ASSERT_OK_AND_ASSIGN(std::string data, ReadFileToString(path));
  EXPECT_EQ(data, "hello");
}

}  // namespace
}  // namespace manimal
