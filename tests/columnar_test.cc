// Tests for the storage formats: SeqFile (plain / projected / delta /
// dictionary, key slots, block accessor) and the string dictionary.

#include <gtest/gtest.h>

#include "columnar/dictionary.h"
#include "columnar/seqfile.h"
#include "common/random.h"
#include "tests/test_util.h"

namespace manimal::columnar {
namespace {

using testing::TempDir;

Schema NumSchema() {
  return Schema({{"name", FieldType::kStr},
                 {"a", FieldType::kI64},
                 {"b", FieldType::kI64}});
}

Record Row(const std::string& name, int64_t a, int64_t b) {
  return {Value::Str(name), Value::I64(a), Value::I64(b)};
}

// ---------------- dictionary ----------------

TEST(DictionaryTest, BuildSaveLoadRoundtrip) {
  TempDir dir("dict");
  DictionaryBuilder builder;
  EXPECT_EQ(builder.EncodeOrAdd("alpha"), 0);
  EXPECT_EQ(builder.EncodeOrAdd("beta"), 1);
  EXPECT_EQ(builder.EncodeOrAdd("alpha"), 0);  // stable
  EXPECT_EQ(builder.size(), 2);
  ASSERT_OK(builder.Save(dir.file("d.dict")));

  ASSERT_OK_AND_ASSIGN(Dictionary dict,
                       Dictionary::Load(dir.file("d.dict")));
  EXPECT_EQ(dict.Encode("beta"), 1);
  EXPECT_EQ(dict.Encode("missing"), std::nullopt);
  ASSERT_OK_AND_ASSIGN(std::string s, dict.Decode(0));
  EXPECT_EQ(s, "alpha");
  EXPECT_FALSE(dict.Decode(7).ok());
  EXPECT_FALSE(dict.Decode(-1).ok());
}

TEST(DictionaryTest, CodesPreserveEquality) {
  // The direct-operation invariant: equal strings <-> equal codes.
  DictionaryBuilder builder;
  Rng rng(3);
  std::vector<std::string> strings;
  for (int i = 0; i < 500; ++i) {
    strings.push_back("s" + std::to_string(rng.Uniform(50)));
  }
  std::vector<int64_t> codes;
  for (const auto& s : strings) codes.push_back(builder.EncodeOrAdd(s));
  for (size_t i = 0; i < strings.size(); ++i) {
    for (size_t j = 0; j < strings.size(); j += 37) {
      EXPECT_EQ(strings[i] == strings[j], codes[i] == codes[j]);
    }
  }
}

TEST(DictionaryTest, LoadRejectsGarbage) {
  TempDir dir("dict2");
  ASSERT_OK(WriteStringToFile(dir.file("bad"), "nope"));
  EXPECT_FALSE(Dictionary::Load(dir.file("bad")).ok());
}

// ---------------- seqfile: plain ----------------

TEST(SeqFileTest, PlainRoundtripAndOrdinalKeys) {
  TempDir dir("seq");
  std::string path = dir.file("t.msq");
  {
    ASSERT_OK_AND_ASSIGN(auto writer,
                         SeqFileWriter::Create(path, PlainMeta(NumSchema())));
    for (int i = 0; i < 100; ++i) {
      ASSERT_OK(writer->Append(Row("r" + std::to_string(i), i, i * 2)));
    }
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, SeqFileReader::Open(path));
  EXPECT_EQ(reader->num_records(), 100u);
  EXPECT_TRUE(reader->meta().IsPlain());
  ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
  int64_t key = 0;
  Record record;
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&key, &record));
    ASSERT_TRUE(more);
    EXPECT_EQ(key, i);  // synthesized ordinal keys
    EXPECT_EQ(record[1].i64(), i);
  }
  ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&key, &record));
  EXPECT_FALSE(more);
}

TEST(SeqFileTest, BlockRangeScansPartitionTheFile) {
  TempDir dir("seq2");
  std::string path = dir.file("t.msq");
  const int n = 5000;
  {
    SeqFileWriter::Options opts;
    opts.target_block_bytes = 512;  // many blocks
    ASSERT_OK_AND_ASSIGN(
        auto writer,
        SeqFileWriter::Create(path, PlainMeta(NumSchema()), opts));
    for (int i = 0; i < n; ++i) ASSERT_OK(writer->Append(Row("x", i, i)));
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, SeqFileReader::Open(path));
  ASSERT_GT(reader->num_blocks(), 4u);
  // Scanning disjoint halves yields every record exactly once with
  // correct global ordinals.
  uint64_t mid = reader->num_blocks() / 2;
  std::vector<int64_t> keys;
  for (auto [b, e] : {std::pair<uint64_t, uint64_t>{0, mid},
                      std::pair<uint64_t, uint64_t>{mid,
                                                    reader->num_blocks()}}) {
    ASSERT_OK_AND_ASSIGN(auto stream, reader->Scan(b, e));
    int64_t key;
    Record record;
    for (;;) {
      ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&key, &record));
      if (!more) break;
      keys.push_back(key);
    }
  }
  ASSERT_EQ(keys.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(keys[i], i);
}

TEST(SeqFileTest, KeySlotPersistsArbitraryKeys) {
  TempDir dir("seq3");
  std::string path = dir.file("t.msq");
  SeqFileMeta meta = PlainMeta(NumSchema());
  meta.has_key_slot = true;
  {
    ASSERT_OK_AND_ASSIGN(auto writer, SeqFileWriter::Create(path, meta));
    ASSERT_OK(writer->Append(1000, Row("a", 1, 2)));
    ASSERT_OK(writer->Append(-7, Row("b", 3, 4)));
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, SeqFileReader::Open(path));
  EXPECT_TRUE(reader->meta().has_key_slot);
  ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
  int64_t key;
  Record record;
  ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&key, &record));
  ASSERT_TRUE(more);
  EXPECT_EQ(key, 1000);
  ASSERT_OK_AND_ASSIGN(more, stream.Next(&key, &record));
  EXPECT_EQ(key, -7);
}

TEST(SeqFileTest, EmptyFileRoundtrips) {
  TempDir dir("seq4");
  std::string path = dir.file("t.msq");
  {
    ASSERT_OK_AND_ASSIGN(auto writer,
                         SeqFileWriter::Create(path, PlainMeta(NumSchema())));
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, SeqFileReader::Open(path));
  EXPECT_EQ(reader->num_records(), 0u);
  EXPECT_EQ(reader->num_blocks(), 0u);
  ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
  Record record;
  ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&record));
  EXPECT_FALSE(more);
}

TEST(SeqFileTest, OpaqueSchemaRoundtrips) {
  TempDir dir("seq5");
  std::string path = dir.file("t.msq");
  {
    ASSERT_OK_AND_ASSIGN(
        auto writer,
        SeqFileWriter::Create(path, PlainMeta(Schema::Opaque())));
    ASSERT_OK(writer->Append({Value::Str("blob-one")}));
    ASSERT_OK(writer->Append({Value::Str("blob-two")}));
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, SeqFileReader::Open(path));
  EXPECT_TRUE(reader->meta().stored_schema.opaque());
  ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
  Record record;
  ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&record));
  ASSERT_TRUE(more);
  EXPECT_EQ(record[0].str(), "blob-one");
}

// ---------------- seqfile: delta ----------------

TEST(SeqFileTest, DeltaRoundtripAcrossBlocks) {
  TempDir dir("seq6");
  std::string path = dir.file("t.msq");
  SeqFileMeta meta = PlainMeta(NumSchema());
  meta.delta_slots = {1, 2};
  Rng rng(9);
  std::vector<Record> rows;
  int64_t a = 5'000'000;
  for (int i = 0; i < 2000; ++i) {
    a += rng.UniformRange(-3, 10);
    rows.push_back(Row("n" + std::to_string(i), a,
                       rng.UniformRange(-100, 100)));
  }
  {
    SeqFileWriter::Options opts;
    opts.target_block_bytes = 1024;  // force per-block delta resets
    ASSERT_OK_AND_ASSIGN(auto writer,
                         SeqFileWriter::Create(path, meta, opts));
    for (const Record& r : rows) ASSERT_OK(writer->Append(r));
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, SeqFileReader::Open(path));
  ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
  Record record;
  for (const Record& expected : rows) {
    ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&record));
    ASSERT_TRUE(more);
    EXPECT_EQ(record[1].i64(), expected[1].i64());
    EXPECT_EQ(record[2].i64(), expected[2].i64());
  }
}

TEST(SeqFileTest, DeltaCompressesRuns) {
  TempDir dir("seq7");
  Schema schema({{"v", FieldType::kI64}});
  auto write_file = [&](const std::string& name, bool delta) {
    SeqFileMeta meta = PlainMeta(schema);
    if (delta) meta.delta_slots = {0};
    auto writer =
        std::move(SeqFileWriter::Create(dir.file(name), meta)).value();
    for (int i = 0; i < 20000; ++i) {
      EXPECT_OK(writer->Append({Value::I64(1'000'000'000 + i)}));
    }
    return std::move(writer->Finish()).value();
  };
  uint64_t plain = write_file("plain.msq", false);
  uint64_t delta = write_file("delta.msq", true);
  // Fixed 8-byte i64s vs ~1-byte deltas.
  EXPECT_LT(delta, plain / 3);
}

TEST(SeqFileTest, DeltaSlotsMustBeI64) {
  TempDir dir("seq8");
  SeqFileMeta meta = PlainMeta(NumSchema());
  meta.delta_slots = {0};  // a str field
  EXPECT_FALSE(SeqFileWriter::Create(dir.file("t.msq"), meta).ok());
}

// ---------------- seqfile: dictionary ----------------

TEST(SeqFileTest, DictSlotsStoreCodesAndSurfaceThem) {
  TempDir dir("seq9");
  std::string path = dir.file("t.msq");
  SeqFileMeta meta = PlainMeta(NumSchema());
  meta.dict_slots = {0};
  meta.dict_path = dir.file("t.dict");
  DictionaryBuilder dict_builder;
  {
    ASSERT_OK_AND_ASSIGN(auto writer, SeqFileWriter::Create(path, meta));
    writer->set_dict_builder(&dict_builder);
    ASSERT_OK(writer->Append(Row("apple", 1, 2)));
    ASSERT_OK(writer->Append(Row("banana", 3, 4)));
    ASSERT_OK(writer->Append(Row("apple", 5, 6)));
    ASSERT_OK(writer->Finish().status());
    ASSERT_OK(dict_builder.Save(meta.dict_path));
  }
  ASSERT_OK_AND_ASSIGN(auto reader, SeqFileReader::Open(path));
  EXPECT_EQ(reader->meta().dict_path, meta.dict_path);
  ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
  Record r1, r2, r3;
  ASSERT_OK(stream.Next(&r1).status());
  ASSERT_OK(stream.Next(&r2).status());
  ASSERT_OK(stream.Next(&r3).status());
  // Direct operation: field 0 surfaces as an i64 code.
  EXPECT_TRUE(r1[0].is_i64());
  EXPECT_EQ(r1[0].i64(), r3[0].i64());  // equal strings, equal codes
  EXPECT_NE(r1[0].i64(), r2[0].i64());
  // The sidecar decodes back to the true strings.
  ASSERT_OK_AND_ASSIGN(Dictionary dict,
                       Dictionary::Load(meta.dict_path));
  ASSERT_OK_AND_ASSIGN(std::string s, dict.Decode(r1[0].i64()));
  EXPECT_EQ(s, "apple");
}

TEST(SeqFileTest, DictWriterRequiresBuilder) {
  TempDir dir("seq10");
  SeqFileMeta meta = PlainMeta(NumSchema());
  meta.dict_slots = {0};
  ASSERT_OK_AND_ASSIGN(auto writer,
                       SeqFileWriter::Create(dir.file("t.msq"), meta));
  EXPECT_FALSE(writer->Append(Row("x", 1, 2)).ok());
}

// ---------------- block accessor ----------------

TEST(SeqFileTest, BlockAccessorResolvesLocators) {
  TempDir dir("seq11");
  std::string path = dir.file("t.msq");
  const int n = 1000;
  std::vector<std::pair<uint64_t, uint32_t>> locators;
  {
    SeqFileWriter::Options opts;
    opts.target_block_bytes = 512;
    ASSERT_OK_AND_ASSIGN(
        auto writer,
        SeqFileWriter::Create(path, PlainMeta(NumSchema()), opts));
    for (int i = 0; i < n; ++i) {
      ASSERT_OK(writer->Append(Row("r", i, 0)));
      locators.emplace_back(writer->last_block(),
                            writer->last_index_in_block());
    }
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, SeqFileReader::Open(path));
  ASSERT_OK_AND_ASSIGN(auto accessor, reader->OpenBlockAccessor());
  // Spot-check every 37th record through its recorded locator.
  for (int i = 0; i < n; i += 37) {
    auto [block, idx] = locators[i];
    ASSERT_OK(accessor.Load(block));
    ASSERT_LT(idx, accessor.num_records());
    EXPECT_EQ(accessor.record(idx)[1].i64(), i);
    EXPECT_EQ(accessor.key(idx), i);  // ordinal key
  }
  EXPECT_FALSE(accessor.Load(reader->num_blocks()).ok());
}

TEST(SeqFileTest, CorruptFileRejected) {
  TempDir dir("seq12");
  ASSERT_OK(WriteStringToFile(dir.file("bad"), "not a seqfile"));
  EXPECT_FALSE(SeqFileReader::Open(dir.file("bad")).ok());
}

TEST(SeqFileTest, WriterValidatesRecordShape) {
  TempDir dir("seq13");
  ASSERT_OK_AND_ASSIGN(
      auto writer,
      SeqFileWriter::Create(dir.file("t.msq"), PlainMeta(NumSchema())));
  EXPECT_FALSE(writer->Append({Value::I64(1)}).ok());  // arity
  EXPECT_FALSE(
      writer->Append({Value::I64(1), Value::I64(2), Value::I64(3)}).ok());
}

}  // namespace
}  // namespace manimal::columnar
