// Unit tests for the MRIL bytecode layer: opcode metadata, builder,
// verifier, VM semantics, builtins, and the textual assembler.

#include <gtest/gtest.h>

#include "mril/assembler.h"
#include "mril/builder.h"
#include "mril/builtins.h"
#include "mril/opcode.h"
#include "mril/program.h"
#include "mril/verifier.h"
#include "mril/vm.h"
#include "tests/test_util.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"

namespace manimal::mril {
namespace {

Schema TwoFieldSchema() {
  return Schema({{"name", FieldType::kStr}, {"n", FieldType::kI64}});
}

// Runs map() over the given (key, value) pairs and returns emissions.
std::vector<std::pair<Value, Value>> RunMap(
    const Program& program,
    const std::vector<std::pair<Value, Value>>& inputs,
    VmOptions options = {}) {
  VmInstance vm(&program, std::move(options));
  std::vector<std::pair<Value, Value>> out;
  vm.set_emit_sink([&out](const Value& k, const Value& v) {
    out.emplace_back(k, v);
    return Status::OK();
  });
  for (const auto& [k, v] : inputs) {
    Status st = vm.InvokeMap(k, v);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return out;
}

// ---------------- opcode metadata ----------------

TEST(OpcodeTest, MnemonicLookupIsTotal) {
  for (int i = 0; i < kNumOpcodes; ++i) {
    Opcode op = static_cast<Opcode>(i);
    const OpcodeInfo& info = GetOpcodeInfo(op);
    auto back = OpcodeFromMnemonic(info.mnemonic);
    ASSERT_TRUE(back.has_value()) << info.mnemonic;
    EXPECT_EQ(*back, op);
  }
  EXPECT_FALSE(OpcodeFromMnemonic("bogus").has_value());
}

TEST(OpcodeTest, Classifiers) {
  EXPECT_TRUE(IsBranch(Opcode::kJmp));
  EXPECT_TRUE(IsConditionalBranch(Opcode::kJmpIfFalse));
  EXPECT_FALSE(IsConditionalBranch(Opcode::kJmp));
  EXPECT_TRUE(IsComparison(Opcode::kCmpEq));
  EXPECT_FALSE(IsComparison(Opcode::kAdd));
}

// ---------------- builtins ----------------

TEST(BuiltinTest, RegistryLookups) {
  const BuiltinRegistry& reg = BuiltinRegistry::Get();
  const Builtin* contains = reg.FindByName("str.contains");
  ASSERT_NE(contains, nullptr);
  EXPECT_EQ(contains->arity, 2);
  EXPECT_TRUE(contains->functional);
  const Builtin* ht = reg.FindByName("ht.contains");
  ASSERT_NE(ht, nullptr);
  EXPECT_FALSE(ht->functional);  // the paper's Benchmark-4 blind spot
  EXPECT_EQ(reg.FindByName("nope"), nullptr);
  EXPECT_EQ(reg.FindById(-1), nullptr);
  EXPECT_EQ(reg.FindById(contains->id), contains);
}

TEST(BuiltinTest, StringOps) {
  auto call = [](const char* name, std::vector<Value> args) {
    const Builtin* b = BuiltinRegistry::Get().FindByName(name);
    Value out;
    Status st = b->fn(args.data(), &out);
    EXPECT_TRUE(st.ok()) << name << ": " << st.ToString();
    return out;
  };
  EXPECT_EQ(call("str.len", {Value::Str("abc")}).i64(), 3);
  EXPECT_EQ(call("str.concat", {Value::Str("a"), Value::Str("b")}).str(),
            "ab");
  EXPECT_EQ(call("str.substr",
                 {Value::Str("hello"), Value::I64(1), Value::I64(3)})
                .str(),
            "ell");
  EXPECT_TRUE(call("str.contains",
                   {Value::Str("hello"), Value::Str("ell")})
                  .bool_value());
  EXPECT_TRUE(call("str.starts_with",
                   {Value::Str("http://x"), Value::Str("http://")})
                  .bool_value());
  EXPECT_EQ(call("str.index_of", {Value::Str("abc"), Value::Str("z")})
                .i64(),
            -1);
  EXPECT_EQ(call("str.to_lower", {Value::Str("AbC")}).str(), "abc");
  EXPECT_EQ(call("str.word_count", {Value::Str(" a bb  c ")}).i64(), 3);
  EXPECT_EQ(
      call("str.word_at", {Value::Str("a bb c"), Value::I64(1)}).str(),
      "bb");
  EXPECT_EQ(
      call("str.word_at", {Value::Str("a b"), Value::I64(9)}).str(), "");
  EXPECT_EQ(call("url.host", {Value::Str("http://h.com/p?q")}).str(),
            "h.com");
}

namespace {
Status CallBuiltin(const Builtin* b, std::vector<Value> args, Value* out) {
  return b->fn(args.data(), out);
}
}  // namespace

TEST(BuiltinTest, PatternMatches) {
  auto matches = [](const char* s, const char* pat) {
    const Builtin* b = BuiltinRegistry::Get().FindByName("pattern.matches");
    Value out;
    EXPECT_OK(CallBuiltin(b, {Value::Str(s), Value::Str(pat)}, &out));
    return out.bool_value();
  };
  EXPECT_TRUE(matches("hello", "hello"));
  EXPECT_TRUE(matches("hello", "he*o"));
  EXPECT_TRUE(matches("hello", "*"));
  EXPECT_TRUE(matches("abcabc", "a*c"));
  EXPECT_FALSE(matches("hello", "he*x"));
  EXPECT_FALSE(matches("", "a"));
  EXPECT_TRUE(matches("", "*"));
}

TEST(BuiltinTest, Hashtable) {
  const BuiltinRegistry& reg = BuiltinRegistry::Get();
  Value ht;
  ASSERT_OK(CallBuiltin(reg.FindByName("ht.new"), {}, &ht));
  Value out;
  ASSERT_OK(CallBuiltin(reg.FindByName("ht.contains"),
                        {ht, Value::Str("k")}, &out));
  EXPECT_FALSE(out.bool_value());
  ASSERT_OK(CallBuiltin(reg.FindByName("ht.put"),
                        {ht, Value::Str("k"), Value::I64(7)}, &out));
  ASSERT_OK(CallBuiltin(reg.FindByName("ht.contains"),
                        {ht, Value::Str("k")}, &out));
  EXPECT_TRUE(out.bool_value());
  ASSERT_OK(CallBuiltin(reg.FindByName("ht.get"), {ht, Value::Str("k")}, &out));
  EXPECT_EQ(out.i64(), 7);
  ASSERT_OK(CallBuiltin(reg.FindByName("ht.size"), {ht}, &out));
  EXPECT_EQ(out.i64(), 1);
  // Type confusion is rejected.
  EXPECT_FALSE(
      CallBuiltin(reg.FindByName("ht.get"), {Value::I64(1), Value::I64(2)},
                  &out)
          .ok());
}

// ---------------- verifier ----------------

TEST(VerifierTest, AcceptsWellFormedPrograms) {
  EXPECT_OK(VerifyProgram(workloads::Benchmark1Selection(10)));
  EXPECT_OK(VerifyProgram(workloads::Benchmark2Aggregation()));
  EXPECT_OK(VerifyProgram(workloads::Benchmark3Join(1, 2)));
  EXPECT_OK(VerifyProgram(workloads::Benchmark4UdfAggregation()));
  EXPECT_OK(VerifyProgram(workloads::ExampleRankFilter(1)));
  EXPECT_OK(VerifyProgram(workloads::Figure2Unsafe(1)));
}

Program RawProgram(std::vector<Instruction> code, int locals = 0) {
  Program p;
  p.name = "raw";
  p.value_schema = TwoFieldSchema();
  p.map_fn.name = "map";
  p.map_fn.num_params = 2;
  p.map_fn.num_locals = locals;
  p.map_fn.code = std::move(code);
  return p;
}

TEST(VerifierTest, RejectsStackUnderflow) {
  Program p = RawProgram({{Opcode::kPop, 0}, {Opcode::kReturn, 0}});
  EXPECT_FALSE(VerifyProgram(p).ok());
}

TEST(VerifierTest, RejectsNonEmptyStackAtReturn) {
  Program p = RawProgram(
      {{Opcode::kLoadParam, 0}, {Opcode::kReturn, 0}});
  EXPECT_FALSE(VerifyProgram(p).ok());
}

TEST(VerifierTest, RejectsBadOperands) {
  // constant index out of range
  EXPECT_FALSE(VerifyProgram(RawProgram({{Opcode::kLoadConst, 0},
                                         {Opcode::kPop, 0},
                                         {Opcode::kReturn, 0}}))
                   .ok());
  // jump target out of range
  EXPECT_FALSE(
      VerifyProgram(RawProgram({{Opcode::kJmp, 99}})).ok());
  // local out of range
  EXPECT_FALSE(VerifyProgram(RawProgram({{Opcode::kLoadLocal, 0},
                                         {Opcode::kPop, 0},
                                         {Opcode::kReturn, 0}}))
                   .ok());
  // field index beyond schema
  EXPECT_FALSE(VerifyProgram(RawProgram({{Opcode::kLoadParam, 1},
                                         {Opcode::kGetField, 9},
                                         {Opcode::kPop, 0},
                                         {Opcode::kReturn, 0}}))
                   .ok());
}

TEST(VerifierTest, RejectsGetFieldOnOpaqueValue) {
  Program p = RawProgram({{Opcode::kLoadParam, 1},
                          {Opcode::kGetField, 0},
                          {Opcode::kPop, 0},
                          {Opcode::kReturn, 0}});
  p.value_param_kind = ValueParamKind::kOpaque;
  p.value_schema = Schema::Opaque();
  EXPECT_FALSE(VerifyProgram(p).ok());
}

TEST(VerifierTest, RejectsInconsistentStackDepthAtJoin) {
  // One path pushes a value before the join, the other does not.
  //   0: load_param 0
  //   1: load_param 0      (depth 2)
  //   2: cmp_eq            (depth 1)
  //   3: jmp_if_false 5    (depth 0 -> target 5)
  //   4: load_param 0      (depth 1 flowing into 5: mismatch)
  //   5: return
  Program p = RawProgram({{Opcode::kLoadParam, 0},
                          {Opcode::kLoadParam, 0},
                          {Opcode::kCmpEq, 0},
                          {Opcode::kJmpIfFalse, 5},
                          {Opcode::kLoadParam, 0},
                          {Opcode::kReturn, 0}});
  EXPECT_FALSE(VerifyProgram(p).ok());
}

TEST(VerifierTest, RejectsFallOffEnd) {
  EXPECT_FALSE(
      VerifyProgram(RawProgram({{Opcode::kNop, 0}})).ok());
}

// ---------------- VM semantics ----------------

TEST(VmTest, ArithmeticAndComparisons) {
  ProgramBuilder b("arith");
  b.SetValueSchema(TwoFieldSchema());
  auto& m = b.Map();
  // emit(n * 2 + 1, n % 3 == 0)
  m.LoadParam(1).GetField("n").LoadI64(2).Mul().LoadI64(1).Add();
  m.LoadParam(1).GetField("n").LoadI64(3).Mod().LoadI64(0).CmpEq();
  m.Emit().Ret();
  Program p = b.Build();
  ASSERT_OK(VerifyProgram(p));
  auto out = RunMap(p, {{Value::I64(0),
                         Value::List({Value::Str("x"), Value::I64(6)})}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first.i64(), 13);
  EXPECT_TRUE(out[0].second.bool_value());
}

TEST(VmTest, DivisionByZeroFailsTheTask) {
  ProgramBuilder b("div0");
  b.SetValueSchema(TwoFieldSchema());
  auto& m = b.Map();
  m.LoadI64(1).LoadParam(1).GetField("n").Div();
  m.LoadI64(0).Emit().Ret();
  Program p = b.Build();
  VmInstance vm(&p);
  Status st = vm.InvokeMap(
      Value::I64(0), Value::List({Value::Str("x"), Value::I64(0)}));
  EXPECT_FALSE(st.ok());
}

TEST(VmTest, MembersPersistAcrossInvocations) {
  // The Figure 2 scenario: a counter member observable across calls.
  Program p = workloads::Figure2Unsafe(1000000);  // rank never passes
  VmInstance vm(&p);
  int emitted = 0;
  vm.set_emit_sink([&emitted](const Value&, const Value&) {
    ++emitted;
    return Status::OK();
  });
  Value row = Value::List(
      {Value::Str("u"), Value::I64(0), Value::Str("c")});
  for (int i = 0; i < 205; ++i) {
    ASSERT_OK(vm.InvokeMap(Value::I64(i), row));
  }
  // numMapsRun > 200 fires for invocations 201..205.
  EXPECT_EQ(emitted, 5);
  EXPECT_EQ(vm.member(0).i64(), 205);
  vm.ResetMembers();
  EXPECT_EQ(vm.member(0).i64(), 0);
}

Program b_program() {
  ProgramBuilder b("remap");
  b.SetValueSchema(
      Schema({{"a", FieldType::kStr},
              {"b", FieldType::kI64},
              {"c", FieldType::kI64}}));
  auto& m = b.Map();
  m.LoadParam(1).GetField("c");  // original field 2
  m.LoadI64(1);
  m.Emit().Ret();
  return b.Build();
}

TEST(VmTest, FieldRemapReadsProjectedSlot) {
  Program p = b_program();
  // Projected record keeps only field c at slot 0.
  VmOptions options;
  options.field_remap = {-1, -1, 0};
  auto out = RunMap(p, {{Value::I64(0), Value::List({Value::I64(77)})}},
                    options);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first.i64(), 77);
}

TEST(VmTest, ProjectedAwayFieldObservesNull) {
  // A read of a projected-away field can only feed debug output (the
  // analyzer guarantees it), so the VM serves null rather than failing
  // the job (paper: log side effects are fair game to perturb).
  Program p = b_program();
  VmOptions options;
  options.field_remap = {0, -1, -1};  // field c projected away
  auto out = RunMap(p, {{Value::I64(0), Value::List({Value::Str("a")})}},
                    options);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].first.is_null());
}

TEST(VmTest, FieldOutsideRemapIsInternalError) {
  Program p = b_program();
  VmOptions options;
  options.field_remap = {0};  // remap table shorter than field index
  VmInstance vm(&p, options);
  Status st =
      vm.InvokeMap(Value::I64(0), Value::List({Value::Str("a")}));
  EXPECT_FALSE(st.ok());
}

TEST(VmTest, StepLimitCatchesInfiniteLoops) {
  Program p = RawProgram({{Opcode::kJmp, 0}});
  VmOptions options;
  options.max_steps_per_invocation = 1000;
  VmInstance vm(&p, options);
  Status st = vm.InvokeMap(Value::I64(0),
                           Value::List({Value::Str("x"), Value::I64(1)}));
  EXPECT_FALSE(st.ok());
}

TEST(VmTest, LogSinkReceivesValues) {
  ProgramBuilder b("logger");
  b.SetValueSchema(TwoFieldSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("n").Log();
  m.LoadParam(0).LoadI64(1).Emit().Ret();
  Program p = b.Build();
  VmInstance vm(&p);
  std::vector<Value> logged;
  vm.set_log_sink([&logged](const Value& v) { logged.push_back(v); });
  vm.set_emit_sink(
      [](const Value&, const Value&) { return Status::OK(); });
  ASSERT_OK(vm.InvokeMap(Value::I64(0),
                         Value::List({Value::Str("x"), Value::I64(9)})));
  ASSERT_EQ(logged.size(), 1u);
  EXPECT_EQ(logged[0].i64(), 9);
}

TEST(VmTest, ReduceIteratesGroupedValues) {
  Program p = workloads::Benchmark2Aggregation();
  VmInstance vm(&p);
  std::vector<std::pair<Value, Value>> out;
  vm.set_emit_sink([&out](const Value& k, const Value& v) {
    out.emplace_back(k, v);
    return Status::OK();
  });
  ASSERT_OK(vm.InvokeReduce(
      Value::Str("1.2.3.4"),
      Value::List({Value::I64(5), Value::I64(10), Value::I64(1)})));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first.str(), "1.2.3.4");
  EXPECT_EQ(out[0].second.i64(), 16);
}

TEST(VmTest, ReduceWithoutReduceFnFails) {
  Program p = workloads::ExampleRankFilter(1);
  VmInstance vm(&p);
  EXPECT_FALSE(vm.InvokeReduce(Value::I64(0), Value::List({})).ok());
}

TEST(VmTest, StringConcatViaAdd) {
  ProgramBuilder b("concat");
  b.SetValueSchema(TwoFieldSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("name").LoadStr("!").Add();
  m.LoadI64(0).Emit().Ret();
  Program p = b.Build();
  auto out = RunMap(
      p, {{Value::I64(0), Value::List({Value::Str("hi"), Value::I64(1)})}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first.str(), "hi!");
}

// ---------------- assembler ----------------

constexpr char kAsmProgram[] = R"(
.program rank-filter
.key_type i64
.value_schema url:str,rank:i64,content:str
.func map
  load_param 1
  get_field rank
  load_const i64:10
  cmp_gt
  jmp_if_false end
  load_param 0
  load_const i64:1
  emit
end:
  return
.endfunc
)";

TEST(AssemblerTest, AssemblesAndRuns) {
  ASSERT_OK_AND_ASSIGN(Program p, AssembleProgram(kAsmProgram));
  EXPECT_EQ(p.name, "rank-filter");
  auto out = RunMap(
      p, {{Value::I64(1), Value::List({Value::Str("u"), Value::I64(50),
                                       Value::Str("c")})},
          {Value::I64(2), Value::List({Value::Str("v"), Value::I64(5),
                                       Value::Str("c")})}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first.i64(), 1);
}

TEST(AssemblerTest, EquivalentToBuilderProgram) {
  ASSERT_OK_AND_ASSIGN(Program assembled, AssembleProgram(kAsmProgram));
  Program built = workloads::ExampleRankFilter(10);
  EXPECT_EQ(assembled.map_fn.code.size(), built.map_fn.code.size());
  for (size_t i = 0; i < built.map_fn.code.size(); ++i) {
    EXPECT_EQ(assembled.map_fn.code[i].op, built.map_fn.code[i].op) << i;
  }
}

TEST(AssemblerTest, MembersAndReduce) {
  constexpr char kText[] = R"(
.program with-reduce
.value_schema a:str,b:i64
.member counter i64:0
.func map
  load_param 1
  get_field b
  load_const i64:1
  emit
  return
.endfunc
.func reduce locals=3
  load_const i64:0
  store_local 2
  load_param 1
  call list.len
  store_local 1
  load_const i64:0
  store_local 0
loop:
  load_local 0
  load_local 1
  cmp_ge
  jmp_if_true done
  load_local 2
  load_param 1
  load_local 0
  call list.get
  add
  store_local 2
  load_local 0
  load_const i64:1
  add
  store_local 0
  jmp loop
done:
  load_param 0
  load_local 2
  emit
  return
.endfunc
)";
  ASSERT_OK_AND_ASSIGN(Program p, AssembleProgram(kText));
  EXPECT_TRUE(p.has_reduce());
  EXPECT_EQ(p.members.size(), 1u);
  VmInstance vm(&p);
  std::vector<std::pair<Value, Value>> out;
  vm.set_emit_sink([&out](const Value& k, const Value& v) {
    out.emplace_back(k, v);
    return Status::OK();
  });
  ASSERT_OK(vm.InvokeReduce(
      Value::I64(3), Value::List({Value::I64(2), Value::I64(40)})));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second.i64(), 42);
}

TEST(AssemblerTest, Errors) {
  EXPECT_FALSE(AssembleProgram("junk").ok());
  EXPECT_FALSE(AssembleProgram(".program x\n").ok());  // no map
  EXPECT_FALSE(
      AssembleProgram(".program x\n.func map\n  bogus_op\n.endfunc\n")
          .ok());
  EXPECT_FALSE(AssembleProgram(
                   ".program x\n.func map\n  jmp nowhere\n.endfunc\n")
                   .ok());
  EXPECT_FALSE(
      AssembleProgram(
          ".program x\n.value_schema a:i64\n.func map\n  get_field zz\n"
          "  pop\n  return\n.endfunc\n")
          .ok());
}

TEST(AssemblerTest, ValueLiterals) {
  ASSERT_OK_AND_ASSIGN(Value i, ParseValueLiteral("i64:-5"));
  EXPECT_EQ(i.i64(), -5);
  ASSERT_OK_AND_ASSIGN(Value f, ParseValueLiteral("f64:1.5"));
  EXPECT_DOUBLE_EQ(f.f64(), 1.5);
  ASSERT_OK_AND_ASSIGN(Value s, ParseValueLiteral("str:\"hi\""));
  EXPECT_EQ(s.str(), "hi");
  ASSERT_OK_AND_ASSIGN(Value t, ParseValueLiteral("true"));
  EXPECT_TRUE(t.bool_value());
  ASSERT_OK_AND_ASSIGN(Value n, ParseValueLiteral("null"));
  EXPECT_TRUE(n.is_null());
  EXPECT_FALSE(ParseValueLiteral("i32:4").ok());
}

// ---------------- disassembler ----------------

TEST(DisassemblerTest, ShowsResolvedOperands) {
  Program p = workloads::ExampleRankFilter(1);
  std::string text = p.Disassemble();
  EXPECT_NE(text.find(".rank"), std::string::npos);
  EXPECT_NE(text.find("i64:1"), std::string::npos);
  EXPECT_NE(text.find(".func map"), std::string::npos);

  Program b4 = workloads::Benchmark4UdfAggregation();
  std::string b4_text = b4.Disassemble();
  EXPECT_NE(b4_text.find("ht.contains"), std::string::npos);
  EXPECT_NE(b4_text.find(".func reduce"), std::string::npos);
}

}  // namespace
}  // namespace manimal::mril
