// Randomized differential safety tests — the executable form of the
// paper's core safety claim: "Manimal should only indicate an
// optimization when it is entirely safe to do so."
//
// For randomly generated map/reduce programs over randomly generated
// data:
//   1. the recovered selection formula must agree with the VM's actual
//      emission behaviour on every record (no false positives in the
//      DNF);
//   2. executing through whatever artifact the analyzer+optimizer
//      choose must produce byte-identical output multisets to the
//      conventional run.

#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "analyzer/expr_eval.h"
#include "columnar/seqfile.h"
#include "common/random.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "mril/builder.h"
#include "mril/vm.h"
#include "tests/test_util.h"

namespace manimal {
namespace {

using mril::FunctionBuilder;
using mril::Program;
using mril::ProgramBuilder;
using testing::TempDir;

Schema PropSchema() {
  return Schema({{"tag", FieldType::kStr},
                 {"x", FieldType::kI64},
                 {"y", FieldType::kI64},
                 {"label", FieldType::kStr},
                 {"z", FieldType::kI64}});
}

// Generates a random record for PropSchema with small value domains so
// selections have interesting selectivities.
Record RandomRecord(Rng* rng) {
  return {Value::Str("t" + std::to_string(rng->Uniform(5))),
          Value::I64(rng->UniformRange(-50, 50)),
          Value::I64(rng->UniformRange(0, 100)),
          Value::Str(rng->AsciiString(4)),
          Value::I64(rng->UniformRange(-1000, 1000))};
}

// Emits a random comparison condition (field cmp const) and a branch
// to `fail_label` when it does not hold.
void EmitRandomCondition(FunctionBuilder& m, Rng* rng,
                         const std::string& fail_label) {
  static const int kNumericFields[] = {1, 2, 4};
  int field = kNumericFields[rng->Uniform(3)];
  m.LoadParam(1).GetFieldIndex(field);
  // Sometimes shift the field by a constant before comparing — the
  // simplifier's normalization path must stay differentially safe.
  if (rng->OneIn(3)) {
    m.LoadI64(rng->UniformRange(-30, 30));
    if (rng->OneIn(2)) {
      m.Add();
    } else {
      m.Sub();
    }
  }
  m.LoadI64(rng->UniformRange(-60, 110));
  switch (rng->Uniform(6)) {
    case 0:
      m.CmpLt();
      break;
    case 1:
      m.CmpLe();
      break;
    case 2:
      m.CmpGt();
      break;
    case 3:
      m.CmpGe();
      break;
    case 4:
      m.CmpEq();
      break;
    default:
      m.CmpNe();
      break;
  }
  if (rng->OneIn(4)) m.Not();
  m.JmpIfFalse(fail_label);
}

// Pushes a random emit key or value expression (always functional).
void EmitRandomOperand(FunctionBuilder& m, Rng* rng) {
  switch (rng->Uniform(4)) {
    case 0:
      m.LoadParam(0);
      break;
    case 1:
      m.LoadParam(1).GetFieldIndex(
          static_cast<int>(rng->Uniform(5)));
      break;
    case 2:
      m.LoadI64(rng->UniformRange(0, 9));
      break;
    default:
      m.LoadParam(1).GetFieldIndex(1).LoadI64(
           rng->UniformRange(1, 5));
      m.Add();
      break;
  }
}

// A random program: 1-2 guarded emit segments, optional logging,
// optionally (unsafe variant) a member counter in the guard.
Program RandomProgram(uint64_t seed, bool allow_unsafe) {
  Rng rng(seed);
  ProgramBuilder b("prop-" + std::to_string(seed));
  b.SetValueSchema(PropSchema());
  bool unsafe = allow_unsafe && rng.OneIn(3);
  if (unsafe) b.AddMember("count", Value::I64(0));
  FunctionBuilder& m = b.Map();
  if (unsafe) {
    m.LoadMember("count").LoadI64(1).Add().StoreMember("count");
  }
  int segments = 1 + static_cast<int>(rng.Uniform(2));
  for (int s = 0; s < segments; ++s) {
    std::string end_label = "seg_end" + std::to_string(s);
    int conds = static_cast<int>(rng.Uniform(3));
    for (int c = 0; c < conds; ++c) {
      EmitRandomCondition(m, &rng, end_label);
    }
    if (rng.OneIn(4)) {
      m.LoadParam(1).GetFieldIndex(3).Log();
    }
    EmitRandomOperand(m, &rng);
    EmitRandomOperand(m, &rng);
    m.Emit();
    m.Label(end_label);
  }
  m.Ret();
  if (rng.OneIn(2)) {
    // Count-the-values reduce: order-insensitive and agnostic to the
    // (randomly typed) emitted values.
    FunctionBuilder& r = b.Reduce();
    r.LoadParam(0);
    r.LoadParam(1).Call("list.len");
    r.Emit().Ret();
  }
  return b.Build();
}

class SelectionFormulaProperty : public ::testing::TestWithParam<int> {};

// Property 1: the recovered DNF is exactly the emission predicate.
TEST_P(SelectionFormulaProperty, FormulaAgreesWithVm) {
  Rng rng(1000 + GetParam());
  Program program = RandomProgram(2000 + GetParam(),
                                  /*allow_unsafe=*/false);
  ASSERT_OK_AND_ASSIGN(analyzer::AnalysisReport report,
                       analyzer::Analyze(program));
  if (!report.selection.has_value()) return;  // nothing to check

  mril::VmInstance vm(&program);
  int emitted = 0;
  vm.set_emit_sink([&emitted](const Value&, const Value&) {
    ++emitted;
    return Status::OK();
  });
  for (int i = 0; i < 500; ++i) {
    Record record = RandomRecord(&rng);
    Value value = Value::List(record);
    emitted = 0;
    ASSERT_OK(vm.InvokeMap(Value::I64(i), value));
    ASSERT_OK_AND_ASSIGN(
        bool formula_says,
        analyzer::EvalFormula(report.selection->formula, Value::I64(i),
                              value));
    EXPECT_EQ(formula_says, emitted > 0)
        << "record " << i << " formula "
        << report.selection->formula.ToString();
    // And the indexable intervals must cover every emitting record.
    if (report.selection->indexable() && emitted > 0) {
      ASSERT_OK_AND_ASSIGN(
          Value key, analyzer::EvalExpr(report.selection->indexed_expr,
                                        Value::I64(i), value));
      bool covered = report.selection->intervals.empty() ? false : false;
      for (const analyzer::KeyInterval& iv :
           report.selection->intervals) {
        covered = covered || iv.Contains(key);
      }
      EXPECT_TRUE(covered) << key.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionFormulaProperty,
                         ::testing::Range(0, 25));

class EndToEndEquivalenceProperty : public ::testing::TestWithParam<int> {
};

// Property 2: conventional and Manimal-optimized runs produce the same
// output multiset for ANY program the analyzer chose to optimize.
TEST_P(EndToEndEquivalenceProperty, OptimizedOutputsMatchBaseline) {
  TempDir dir("prop-e2e");
  Rng rng(3000 + GetParam());

  // Data file.
  {
    auto writer = std::move(columnar::SeqFileWriter::Create(
                                dir.file("data.msq"),
                                columnar::PlainMeta(PropSchema())))
                      .value();
    for (int i = 0; i < 1500; ++i) {
      ASSERT_OK(writer->Append(RandomRecord(&rng)));
    }
    ASSERT_OK(writer->Finish().status());
  }

  Program program = RandomProgram(4000 + GetParam(),
                                  /*allow_unsafe=*/true);

  core::ManimalSystem::Options options;
  options.workspace_dir = dir.file("ws");
  options.simulated_startup_seconds = 0;
  options.map_parallelism = 2;
  options.num_partitions = 2;
  ASSERT_OK_AND_ASSIGN(auto system, core::ManimalSystem::Open(options));

  core::ManimalSystem::Submission submission;
  submission.program = program;
  submission.input_path = dir.file("data.msq");
  submission.output_path = dir.file("base.prs");
  ASSERT_OK(system->RunBaseline(submission).status());

  // Build every index program the analyzer emits, then submit.
  ASSERT_OK_AND_ASSIGN(analyzer::AnalysisReport report,
                       analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  for (const auto& spec : specs) {
    ASSERT_OK(system->BuildIndex(spec, submission.input_path).status());
  }
  submission.output_path = dir.file("opt.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(submission));
  EXPECT_EQ(outcome.plan.optimized, !specs.empty());

  ASSERT_OK_AND_ASSIGN(auto base,
                       exec::ReadCanonicalPairs(dir.file("base.prs")));
  ASSERT_OK_AND_ASSIGN(auto opt,
                       exec::ReadCanonicalPairs(dir.file("opt.prs")));
  EXPECT_EQ(base, opt) << "plan: " << outcome.plan.explanation
                       << "\nreport: " << outcome.report.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndEquivalenceProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace manimal
