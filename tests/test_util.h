// Shared test helpers: temp workspaces, status assertions.

#ifndef MANIMAL_TESTS_TEST_UTIL_H_
#define MANIMAL_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>

#include "common/env.h"
#include "common/status.h"

namespace manimal::testing {

#define ASSERT_OK(expr)                                              \
  do {                                                               \
    const ::manimal::Status _st = (expr);                            \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                         \
  } while (0)

#define EXPECT_OK(expr)                                              \
  do {                                                               \
    const ::manimal::Status _st = (expr);                            \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                         \
  } while (0)

// Asserts a Result<T> is ok and moves its value into `lhs`.
#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                             \
  ASSERT_OK_AND_ASSIGN_IMPL(                                         \
      MANIMAL_CONCAT(_assert_result_, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)                   \
  auto tmp = (rexpr);                                                \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();                  \
  lhs = std::move(tmp).value()

// RAII temp directory removed at scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag) : path_(MakeTempDir(tag)) {}
  ~TempDir() { (void)RemoveDirRecursively(path_); }

  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

}  // namespace manimal::testing

#endif  // MANIMAL_TESTS_TEST_UTIL_H_
