// Robustness fuzz tests: random byte/instruction soup must never
// crash the verifier, the analyzer, or the storage readers — they must
// reject cleanly with a Status (or, if the program verifies, execute
// without undefined behaviour).

#include <gtest/gtest.h>

#include <algorithm>

#include "analyzer/analyzer.h"
#include "columnar/seqfile.h"
#include "common/random.h"
#include "index/btree.h"
#include "mril/assembler.h"
#include "mril/verifier.h"
#include "mril/vm.h"
#include "serde/key_codec.h"
#include "serde/record_codec.h"
#include "tests/test_util.h"

namespace manimal {
namespace {

using testing::TempDir;

// ---------------- verifier / analyzer on random instruction soup ----

mril::Program RandomInstructionProgram(uint64_t seed) {
  Rng rng(seed);
  mril::Program p;
  p.name = "fuzz";
  p.value_schema = Schema({{"a", FieldType::kStr},
                           {"b", FieldType::kI64}});
  p.constants = {Value::I64(1), Value::Str("x"), Value::Bool(true)};
  if (rng.OneIn(2)) {
    p.members.push_back(mril::MemberVar{"m", Value::I64(0)});
  }
  p.map_fn.name = "map";
  p.map_fn.num_params = 2;
  p.map_fn.num_locals = static_cast<int>(rng.Uniform(3));
  int len = 1 + static_cast<int>(rng.Uniform(30));
  for (int i = 0; i < len; ++i) {
    mril::Instruction inst;
    inst.op = static_cast<mril::Opcode>(rng.Uniform(mril::kNumOpcodes));
    // Mostly plausible operands, sometimes garbage.
    inst.operand = rng.OneIn(5)
                       ? static_cast<int32_t>(rng.UniformRange(-5, 50))
                       : static_cast<int32_t>(rng.Uniform(4));
    p.map_fn.code.push_back(inst);
  }
  p.map_fn.code.push_back({mril::Opcode::kReturn, 0});
  return p;
}

class VerifierFuzz : public ::testing::TestWithParam<int> {};

TEST_P(VerifierFuzz, NeverCrashesAndVerifiedProgramsRun) {
  for (int i = 0; i < 200; ++i) {
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 1000 + i;
    mril::Program p = RandomInstructionProgram(seed);
    Status verdict = mril::VerifyProgram(p);
    if (!verdict.ok()) continue;  // cleanly rejected: fine

    // Verified programs must be analyzable and executable without
    // aborting; runtime type errors are allowed (they are Status
    // failures, not UB).
    auto report = analyzer::Analyze(p);
    EXPECT_TRUE(report.ok() || !report.status().message().empty());

    mril::VmOptions options;
    options.max_steps_per_invocation = 10000;
    mril::VmInstance vm(&p, options);
    vm.set_emit_sink(
        [](const Value&, const Value&) { return Status::OK(); });
    Value row = Value::List({Value::Str("s"), Value::I64(7)});
    (void)vm.InvokeMap(Value::I64(0), row);  // any Status is acceptable
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierFuzz, ::testing::Range(0, 5));

// ---------------- assembler on text soup ----------------

class AssemblerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AssemblerFuzz, GarbageTextRejectsCleanly) {
  Rng rng(GetParam() + 99);
  const char* fragments[] = {
      ".program x\n",  ".func map\n",  ".endfunc\n",
      "load_param 1\n", "emit\n",      "return\n",
      "label:\n",       "jmp label\n", ".value_schema a:i64\n",
      "load_const i64:3\n", "get_field 0\n", "garbage line\n",
      ".member m i64:0\n", "cmp_gt\n", "\x01\x02binary\n"};
  for (int i = 0; i < 300; ++i) {
    std::string text;
    int n = 1 + static_cast<int>(rng.Uniform(12));
    for (int j = 0; j < n; ++j) {
      text += fragments[rng.Uniform(std::size(fragments))];
    }
    auto result = mril::AssembleProgram(text);  // must not crash
    if (result.ok()) {
      EXPECT_OK(mril::VerifyProgram(*result));  // only verified output
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzz, ::testing::Range(0, 3));

// ---------------- storage readers on corrupted bytes ----------------

class CorruptionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionFuzz, TruncatedAndFlippedSeqFilesRejectCleanly) {
  TempDir dir("fuzz-seq");
  Schema schema({{"a", FieldType::kStr}, {"b", FieldType::kI64}});
  std::string path = dir.file("t.msq");
  {
    auto writer = std::move(columnar::SeqFileWriter::Create(
                                path, columnar::PlainMeta(schema)))
                      .value();
    for (int i = 0; i < 200; ++i) {
      ASSERT_OK(writer->Append(
          {Value::Str("row" + std::to_string(i)), Value::I64(i)}));
    }
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(std::string bytes, ReadFileToString(path));
  Rng rng(GetParam() + 7);

  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = bytes;
    if (rng.OneIn(2)) {
      // Truncate somewhere.
      mutated.resize(rng.Uniform(mutated.size()));
    } else {
      // Flip a few bytes.
      for (int k = 0; k < 4; ++k) {
        size_t pos = rng.Uniform(mutated.size());
        mutated[pos] = static_cast<char>(rng.Uniform(256));
      }
    }
    std::string mpath = dir.file("m.msq");
    ASSERT_OK(WriteStringToFile(mpath, mutated));
    auto reader = columnar::SeqFileReader::Open(mpath);
    if (!reader.ok()) continue;  // rejected at open: fine
    auto stream = (*reader)->ScanAll();
    if (!stream.ok()) continue;
    Record record;
    for (;;) {
      auto more = stream->Next(&record);
      if (!more.ok() || !*more) break;  // error or end: both fine
    }
  }
}

TEST_P(CorruptionFuzz, TruncatedAndFlippedBTreesRejectCleanly) {
  TempDir dir("fuzz-btree");
  std::string path = dir.file("t.idx");
  {
    auto builder =
        std::move(index::BTreeBuilder::Create(path)).value();
    std::string key;
    for (int i = 0; i < 500; ++i) {
      key = "key" + std::to_string(1000 + i);
      ASSERT_OK(builder->Add(key, "payload"));
    }
    ASSERT_OK(builder->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(std::string bytes, ReadFileToString(path));
  Rng rng(GetParam() + 31);

  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = bytes;
    if (rng.OneIn(2)) {
      mutated.resize(rng.Uniform(mutated.size()));
    } else {
      for (int k = 0; k < 4; ++k) {
        size_t pos = rng.Uniform(mutated.size());
        mutated[pos] = static_cast<char>(rng.Uniform(256));
      }
    }
    std::string mpath = dir.file("m.idx");
    ASSERT_OK(WriteStringToFile(mpath, mutated));
    auto reader = index::BTreeReader::Open(mpath);
    if (!reader.ok()) continue;
    auto it = (*reader)->SeekToFirst();
    if (!it.ok()) continue;
    int steps = 0;
    while (it->Valid() && steps++ < 2000) {
      if (!it->Next().ok()) break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz, ::testing::Range(0, 3));

// ---------------- value decoder on byte soup ----------------

TEST(DecoderFuzz, RandomBytesNeverCrashDecodeValue) {
  Rng rng(123);
  for (int i = 0; i < 2000; ++i) {
    std::string bytes;
    int n = static_cast<int>(rng.Uniform(40));
    for (int j = 0; j < n; ++j) {
      bytes.push_back(static_cast<char>(rng.Uniform(256)));
    }
    std::string_view in = bytes;
    Value v;
    (void)DecodeValue(&in, &v);  // Status either way; no crash
    Value k;
    (void)DecodeOrderedKey(bytes, &k);
  }
}

// ---------------- regression corpus mutation fuzz ----------------
//
// tests/corpus/ holds known-good assembler programs; random byte
// mutations of them must either be rejected with a clean Status or
// assemble into a verified program that executes without UB. The
// corpus path is baked in by CMake so the tests run from any cwd.

#ifndef MANIMAL_TEST_CORPUS_DIR
#define MANIMAL_TEST_CORPUS_DIR "tests/corpus"
#endif

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> paths;
  auto names = ListDir(MANIMAL_TEST_CORPUS_DIR);
  if (!names.ok()) return paths;
  for (const std::string& name : *names) {
    if (name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".mril") == 0) {
      paths.push_back(std::string(MANIMAL_TEST_CORPUS_DIR) + "/" + name);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

void RunProgramOnSampleRow(const mril::Program& p) {
  mril::VmOptions options;
  options.max_steps_per_invocation = 100000;
  mril::VmInstance vm(&p, options);
  vm.set_emit_sink(
      [](const Value&, const Value&) { return Status::OK(); });
  Value row = Value::List(
      {Value::Str("http://www.page42.com/"), Value::I64(77),
       Value::Str("lorem 42 ipsum")});
  (void)vm.InvokeMap(Value::I64(0), row);  // any Status; no crash
}

TEST(CorpusFuzz, CorpusProgramsAssembleVerifyAndRun) {
  std::vector<std::string> files = CorpusFiles();
  ASSERT_GE(files.size(), 4u)
      << "corpus missing at " << MANIMAL_TEST_CORPUS_DIR;
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    ASSERT_OK_AND_ASSIGN(std::string text, ReadFileToString(path));
    ASSERT_OK_AND_ASSIGN(mril::Program program,
                         mril::AssembleProgram(text));
    EXPECT_OK(mril::VerifyProgram(program));
    RunProgramOnSampleRow(program);
  }
}

class CorpusMutationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CorpusMutationFuzz, MutatedCorpusRejectsCleanlyOrRuns) {
  std::vector<std::string> files = CorpusFiles();
  ASSERT_FALSE(files.empty());
  Rng rng(GetParam() * 7919 + 17);
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    ASSERT_OK_AND_ASSIGN(std::string original, ReadFileToString(path));
    for (int trial = 0; trial < 120; ++trial) {
      std::string mutated = original;
      switch (rng.Uniform(3)) {
        case 0:  // flip a few bytes
          for (int k = 0; k < 1 + static_cast<int>(rng.Uniform(4));
               ++k) {
            mutated[rng.Uniform(mutated.size())] =
                static_cast<char>(rng.Uniform(256));
          }
          break;
        case 1:  // truncate
          mutated.resize(rng.Uniform(mutated.size()));
          break;
        default: {  // splice a random slice over a random position
          size_t src = rng.Uniform(mutated.size());
          size_t len = rng.Uniform(32);
          size_t dst = rng.Uniform(mutated.size());
          mutated.insert(dst, mutated.substr(src, len));
          break;
        }
      }
      auto result = mril::AssembleProgram(mutated);  // must not crash
      if (!result.ok()) continue;  // clean rejection
      EXPECT_OK(mril::VerifyProgram(*result));
      RunProgramOnSampleRow(*result);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusMutationFuzz,
                         ::testing::Range(0, 4));

}  // namespace
}  // namespace manimal
