// Tests for the shuffle data path: per-mapper partitioned spill
// buffers, the barrier handoff, per-partition heap merges, and the
// bounded-memory group iterator.

#include "exec/shuffle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/faulty_env.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "serde/key_codec.h"
#include "serde/record_codec.h"
#include "tests/test_util.h"

namespace manimal::exec {
namespace {

using testing::TempDir;

std::string Key(int64_t v) {
  std::string out;
  EXPECT_OK(EncodeOrderedKey(Value::I64(v), &out));
  return out;
}

std::string Payload(int64_t v) {
  std::string out;
  EXPECT_OK(EncodeValue(Value::I64(v), &out));
  return out;
}

TEST(ShuffleTest, SingleMapperSinglePartition) {
  TempDir dir("shuffle1");
  Shuffle::Options opts;
  opts.temp_dir = dir.path();
  opts.num_partitions = 1;
  Shuffle shuffle(opts);
  auto mapper = shuffle.NewMapper();
  ASSERT_OK(mapper->Add(0, "b", "2"));
  ASSERT_OK(mapper->Add(0, "a", "1"));
  ASSERT_OK(mapper->Add(0, "c", "3"));
  ASSERT_OK(mapper->Seal());
  ASSERT_OK_AND_ASSIGN(auto stream, shuffle.FinishPartition(0));
  std::string keys;
  while (stream->Valid()) {
    keys += stream->key();
    ASSERT_OK(stream->Next());
  }
  EXPECT_EQ(keys, "abc");
  EXPECT_EQ(shuffle.stats().entries, 3u);
  EXPECT_EQ(shuffle.stats().mappers_sealed, 1u);
  EXPECT_EQ(shuffle.stats().spilled_runs, 0u);
}

TEST(ShuffleTest, ConcurrentMappersSpillAndMergeSorted) {
  TempDir dir("shuffle2");
  Shuffle::Options opts;
  opts.temp_dir = dir.path();
  opts.num_partitions = 3;
  opts.mapper_budget_bytes = 1024;  // force spills from every mapper
  Shuffle shuffle(opts);

  constexpr int kMappers = 4;
  constexpr int kPerMapper = 1500;
  std::vector<std::thread> threads;
  std::mutex expected_mu;
  using Pairs = std::vector<std::pair<std::string, std::string>>;
  std::vector<Pairs> expected(opts.num_partitions);
  for (int m = 0; m < kMappers; ++m) {
    threads.emplace_back([&, m] {
      Rng rng(100 + m);
      auto mapper = shuffle.NewMapper();
      std::vector<Pairs> local(opts.num_partitions);
      for (int i = 0; i < kPerMapper; ++i) {
        int64_t k = static_cast<int64_t>(rng.Uniform(500));
        int p = static_cast<int>(k % opts.num_partitions);
        std::string key = Key(k);
        std::string payload = Payload(m * kPerMapper + i);
        local[p].emplace_back(key, payload);
        ASSERT_OK(mapper->Add(p, key, payload));
      }
      ASSERT_OK(mapper->Seal());
      std::lock_guard<std::mutex> lock(expected_mu);
      for (int p = 0; p < opts.num_partitions; ++p) {
        expected[p].insert(expected[p].end(), local[p].begin(),
                           local[p].end());
      }
    });
  }
  for (auto& t : threads) t.join();

  Shuffle::Stats stats = shuffle.stats();
  EXPECT_EQ(stats.mappers_sealed, static_cast<uint64_t>(kMappers));
  EXPECT_EQ(stats.entries,
            static_cast<uint64_t>(kMappers * kPerMapper));
  EXPECT_GT(stats.spilled_runs, static_cast<uint64_t>(kMappers));

  uint64_t total = 0;
  for (int p = 0; p < opts.num_partitions; ++p) {
    ASSERT_OK_AND_ASSIGN(auto stream, shuffle.FinishPartition(p));
    Pairs got;
    std::string prev;
    while (stream->Valid()) {
      std::string k(stream->key());
      EXPECT_GE(k, prev);  // globally sorted within the partition
      got.emplace_back(k, std::string(stream->payload()));
      prev = k;
      ++total;
      ASSERT_OK(stream->Next());
    }
    // Same multiset of pairs; value order within a key is the heap's
    // tie-break order, not the insertion order.
    std::sort(got.begin(), got.end());
    std::sort(expected[p].begin(), expected[p].end());
    EXPECT_EQ(got, expected[p]) << "partition " << p;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kMappers * kPerMapper));
}

TEST(ShuffleTest, SpillsPublishMetricsMatchingStats) {
  TempDir dir("shuffle3");
  int64_t runs_before =
      obs::MetricsRegistry::Get().CounterValue("shuffle.spilled_runs");
  Shuffle::Options opts;
  opts.temp_dir = dir.path();
  opts.num_partitions = 2;
  opts.mapper_budget_bytes = 512;
  Shuffle shuffle(opts);
  auto mapper = shuffle.NewMapper();
  for (int i = 0; i < 300; ++i) {
    ASSERT_OK(mapper->Add(i % 2, Key(i), Payload(i)));
  }
  ASSERT_OK(mapper->Seal());
  EXPECT_GT(shuffle.stats().spilled_runs, 0u);
  int64_t runs_after =
      obs::MetricsRegistry::Get().CounterValue("shuffle.spilled_runs");
  EXPECT_EQ(runs_after - runs_before,
            static_cast<int64_t>(shuffle.stats().spilled_runs));
}

TEST(ShuffleTest, RunFilesRemovedOnDestruction) {
  TempDir dir("shuffle4");
  {
    Shuffle::Options opts;
    opts.temp_dir = dir.path();
    opts.num_partitions = 1;
    opts.mapper_budget_bytes = 256;
    Shuffle shuffle(opts);
    auto sealed = shuffle.NewMapper();
    auto abandoned = shuffle.NewMapper();
    for (int i = 0; i < 200; ++i) {
      ASSERT_OK(sealed->Add(0, Key(i), Payload(i)));
      ASSERT_OK(abandoned->Add(0, Key(i), Payload(i)));
    }
    ASSERT_OK(sealed->Seal());
    ASSERT_OK_AND_ASSIGN(auto names, ListDir(dir.path()));
    EXPECT_GT(names.size(), 0u);
    // `abandoned` is never sealed (a map task that bailed): its runs
    // are removed by its own destructor, the sealed mapper's by the
    // shuffle's.
  }
  ASSERT_OK_AND_ASSIGN(auto names, ListDir(dir.path()));
  EXPECT_TRUE(names.empty());
}

TEST(GroupIteratorTest, GroupsKeysAndSortsValuesCanonically) {
  TempDir dir("shuffle5");
  Shuffle::Options opts;
  opts.temp_dir = dir.path();
  opts.num_partitions = 1;
  opts.mapper_budget_bytes = 128;  // groups straddle spilled runs
  Shuffle shuffle(opts);
  auto mapper = shuffle.NewMapper();
  // 40 keys x 5 values, inserted in scrambled order.
  for (int v = 4; v >= 0; --v) {
    for (int k = 39; k >= 0; --k) {
      ASSERT_OK(mapper->Add(0, Key(k), Payload(v * 1000 + k)));
    }
  }
  ASSERT_OK(mapper->Seal());
  ASSERT_OK_AND_ASSIGN(auto stream, shuffle.FinishPartition(0));
  GroupIterator groups(stream.get());
  Value key;
  ValueList values;
  int64_t expected_key = 0;
  while (true) {
    ASSERT_OK_AND_ASSIGN(bool more, groups.Next(&key, &values));
    if (!more) break;
    EXPECT_EQ(key.i64(), expected_key);
    ASSERT_EQ(values.size(), 5u);
    // Values arrive in canonical (encoded-bytes) order, regardless of
    // the scrambled insertion order above.
    std::vector<std::string> expected_encoded;
    for (int v = 0; v < 5; ++v) {
      expected_encoded.push_back(Payload(v * 1000 + expected_key));
    }
    std::sort(expected_encoded.begin(), expected_encoded.end());
    for (int v = 0; v < 5; ++v) {
      EXPECT_EQ(Payload(values[v].i64()), expected_encoded[v]);
    }
    ++expected_key;
  }
  EXPECT_EQ(expected_key, 40);
}

// ---------------- fault injection at every spill/merge/seal site ----

// Drains a merged partition stream into (key, payload) pairs.
Result<std::vector<std::pair<std::string, std::string>>> Collect(
    Shuffle* shuffle, int partition) {
  MANIMAL_ASSIGN_OR_RETURN(auto stream,
                           shuffle->FinishPartition(partition));
  std::vector<std::pair<std::string, std::string>> out;
  while (stream->Valid()) {
    out.emplace_back(std::string(stream->key()),
                     std::string(stream->payload()));
    MANIMAL_RETURN_IF_ERROR(stream->Next());
  }
  return out;
}

TEST(ShuffleFaultTest, SpillFaultLeavesBufferIntactAndNoTornRun) {
  // Sweep every IO operation of one spill (open, block writes, close,
  // rename): each must leave the buffer intact and the target path
  // absent, so the caller can simply spill again.
  TempDir dir("shuffle-fault1");
  auto fill = [] {
    index::SpillBuffer buffer;
    for (int i = 0; i < 300; ++i) {
      buffer.Add(Key(i % 37), Payload(i));
    }
    return buffer;
  };

  // Calibrate the number of armed operations in one clean spill.
  uint64_t num_sites = 0;
  {
    index::SpillBuffer buffer = fill();
    FaultyEnv::Config count_only;
    count_only.rate = 0;
    ScopedFaultInjection inject(count_only);
    ScopedFaultArming arm;
    ASSERT_OK(buffer.SpillToFile(dir.file("calibrate.run")).status());
    num_sites = FaultyEnv::Get().stats().evaluated;
  }
  ASSERT_GT(num_sites, 0u);

  for (uint64_t nth = 1; nth <= num_sites; ++nth) {
    SCOPED_TRACE("injection site " + std::to_string(nth));
    index::SpillBuffer buffer = fill();
    const uint64_t entries = buffer.num_entries();
    const std::string path =
        dir.file("run-" + std::to_string(nth) + ".sort");
    {
      FaultyEnv::Config config;
      config.fail_nth = nth;
      ScopedFaultInjection inject(config);
      ScopedFaultArming arm;
      auto result = buffer.SpillToFile(path);
      ASSERT_FALSE(result.ok());
      EXPECT_TRUE(result.status().IsIOError())
          << result.status().ToString();
      EXPECT_EQ(FaultyEnv::Get().stats().injected, 1u);
    }
    // The failed spill is invisible: buffer untouched, no run file,
    // no temp sibling.
    EXPECT_EQ(buffer.num_entries(), entries);
    EXPECT_FALSE(FileExists(path));
    EXPECT_FALSE(FileExists(path + ".tmp"));
    // Retrying the identical spill succeeds and yields a sorted run.
    ASSERT_OK(buffer.SpillToFile(path).status());
    ASSERT_OK_AND_ASSIGN(
        auto stream, index::MergeSortedRuns({path}, {}));
    uint64_t read = 0;
    std::string prev;
    while (stream->Valid()) {
      EXPECT_LE(prev, std::string(stream->key()));
      prev = stream->key();
      ++read;
      ASSERT_OK(stream->Next());
    }
    EXPECT_EQ(read, entries);
  }
}

TEST(ShuffleFaultTest, MapperRetryAfterSpillFaultMatchesFaultFree) {
  // The engine's map-task retry in miniature: a fault anywhere in a
  // mapper's feed (spills happen mid-Add) abandons the mapper — its
  // destructor removes its runs — and a fresh mapper replays the same
  // pairs. The merged partition must equal the fault-free run.
  TempDir dir("shuffle-fault2");
  auto make_options = [&](const std::string& sub) {
    Shuffle::Options opts;
    opts.temp_dir = dir.file(sub);
    EXPECT_OK(CreateDirIfMissing(opts.temp_dir));
    opts.num_partitions = 2;
    opts.mapper_budget_bytes = 1 << 10;  // force frequent spills
    return opts;
  };
  auto feed = [](Shuffle::Mapper* mapper) -> Status {
    for (int i = 0; i < 800; ++i) {
      MANIMAL_RETURN_IF_ERROR(
          mapper->Add(i % 2, Key(i % 53), Payload(i)));
    }
    return Status::OK();
  };

  // Fault-free reference.
  std::vector<std::pair<std::string, std::string>> expect[2];
  {
    Shuffle shuffle(make_options("ref"));
    auto mapper = shuffle.NewMapper();
    ASSERT_OK(feed(mapper.get()));
    ASSERT_OK(mapper->Seal());
    ASSERT_GT(shuffle.stats().spilled_runs, 0u);
    for (int p = 0; p < 2; ++p) {
      ASSERT_OK_AND_ASSIGN(expect[p], Collect(&shuffle, p));
    }
  }

  // Calibrate armed operations during one clean feed.
  uint64_t num_sites = 0;
  {
    Shuffle shuffle(make_options("calibrate"));
    FaultyEnv::Config count_only;
    count_only.rate = 0;
    ScopedFaultInjection inject(count_only);
    ScopedFaultArming arm;
    auto mapper = shuffle.NewMapper();
    ASSERT_OK(feed(mapper.get()));
    ASSERT_OK(mapper->Seal());
    num_sites = FaultyEnv::Get().stats().evaluated;
  }
  ASSERT_GT(num_sites, 0u);

  const uint64_t step = std::max<uint64_t>(1, num_sites / 20);
  for (uint64_t nth = 1; nth <= num_sites; nth += step) {
    SCOPED_TRACE("injection site " + std::to_string(nth));
    Shuffle shuffle(make_options("site-" + std::to_string(nth)));
    {
      FaultyEnv::Config config;
      config.fail_nth = nth;
      ScopedFaultInjection inject(config);
      ScopedFaultArming arm;
      auto mapper = shuffle.NewMapper();
      Status fed = feed(mapper.get());
      if (!fed.ok()) {
        ASSERT_TRUE(fed.IsIOError()) << fed.ToString();
        mapper.reset();  // abandoned attempt cleans its runs
        mapper = shuffle.NewMapper();
        ASSERT_OK(feed(mapper.get()));  // the single fault already fired
      }
      ASSERT_OK(mapper->Seal());
    }
    for (int p = 0; p < 2; ++p) {
      ASSERT_OK_AND_ASSIGN(auto got, Collect(&shuffle, p));
      EXPECT_EQ(got, expect[p]) << "partition " << p;
    }
  }
}

TEST(ShuffleFaultTest, FinishPartitionIsRecallableAfterMergeFault) {
  // A reduce-task retry in miniature: the first merge dies on an
  // injected read fault; calling FinishPartition again re-merges the
  // same runs (they stay owned by the Shuffle) and streams everything.
  TempDir dir("shuffle-fault3");
  Shuffle::Options opts;
  opts.temp_dir = dir.path();
  opts.num_partitions = 1;
  opts.mapper_budget_bytes = 1 << 10;  // force on-disk runs
  Shuffle shuffle(opts);
  auto mapper = shuffle.NewMapper();
  for (int i = 0; i < 800; ++i) {
    ASSERT_OK(mapper->Add(0, Key(i % 53), Payload(i)));
  }
  ASSERT_OK(mapper->Seal());
  ASSERT_GT(shuffle.stats().spilled_runs, 0u);

  {
    FaultyEnv::Config config;
    config.rate = 1.0;  // the first armed read fails immediately
    ScopedFaultInjection inject(config);
    ScopedFaultArming arm;
    auto attempt = [&]() -> Status {
      return Collect(&shuffle, 0).status();
    }();
    ASSERT_FALSE(attempt.ok());
    ASSERT_TRUE(attempt.IsIOError()) << attempt.ToString();
    EXPECT_GT(FaultyEnv::Get().stats().injected, 0u);
  }

  ASSERT_OK_AND_ASSIGN(auto got, Collect(&shuffle, 0));
  EXPECT_EQ(got.size(), 800u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].first, got[i].first);
  }
}

}  // namespace
}  // namespace manimal::exec
