// Tests for the shuffle data path: per-mapper partitioned spill
// buffers, the barrier handoff, per-partition heap merges, and the
// bounded-memory group iterator.

#include "exec/shuffle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/metrics.h"
#include "serde/key_codec.h"
#include "serde/record_codec.h"
#include "tests/test_util.h"

namespace manimal::exec {
namespace {

using testing::TempDir;

std::string Key(int64_t v) {
  std::string out;
  EXPECT_OK(EncodeOrderedKey(Value::I64(v), &out));
  return out;
}

std::string Payload(int64_t v) {
  std::string out;
  EXPECT_OK(EncodeValue(Value::I64(v), &out));
  return out;
}

TEST(ShuffleTest, SingleMapperSinglePartition) {
  TempDir dir("shuffle1");
  Shuffle::Options opts;
  opts.temp_dir = dir.path();
  opts.num_partitions = 1;
  Shuffle shuffle(opts);
  auto mapper = shuffle.NewMapper();
  ASSERT_OK(mapper->Add(0, "b", "2"));
  ASSERT_OK(mapper->Add(0, "a", "1"));
  ASSERT_OK(mapper->Add(0, "c", "3"));
  ASSERT_OK(mapper->Seal());
  ASSERT_OK_AND_ASSIGN(auto stream, shuffle.FinishPartition(0));
  std::string keys;
  while (stream->Valid()) {
    keys += stream->key();
    ASSERT_OK(stream->Next());
  }
  EXPECT_EQ(keys, "abc");
  EXPECT_EQ(shuffle.stats().entries, 3u);
  EXPECT_EQ(shuffle.stats().mappers_sealed, 1u);
  EXPECT_EQ(shuffle.stats().spilled_runs, 0u);
}

TEST(ShuffleTest, ConcurrentMappersSpillAndMergeSorted) {
  TempDir dir("shuffle2");
  Shuffle::Options opts;
  opts.temp_dir = dir.path();
  opts.num_partitions = 3;
  opts.mapper_budget_bytes = 1024;  // force spills from every mapper
  Shuffle shuffle(opts);

  constexpr int kMappers = 4;
  constexpr int kPerMapper = 1500;
  std::vector<std::thread> threads;
  std::mutex expected_mu;
  using Pairs = std::vector<std::pair<std::string, std::string>>;
  std::vector<Pairs> expected(opts.num_partitions);
  for (int m = 0; m < kMappers; ++m) {
    threads.emplace_back([&, m] {
      Rng rng(100 + m);
      auto mapper = shuffle.NewMapper();
      std::vector<Pairs> local(opts.num_partitions);
      for (int i = 0; i < kPerMapper; ++i) {
        int64_t k = static_cast<int64_t>(rng.Uniform(500));
        int p = static_cast<int>(k % opts.num_partitions);
        std::string key = Key(k);
        std::string payload = Payload(m * kPerMapper + i);
        local[p].emplace_back(key, payload);
        ASSERT_OK(mapper->Add(p, key, payload));
      }
      ASSERT_OK(mapper->Seal());
      std::lock_guard<std::mutex> lock(expected_mu);
      for (int p = 0; p < opts.num_partitions; ++p) {
        expected[p].insert(expected[p].end(), local[p].begin(),
                           local[p].end());
      }
    });
  }
  for (auto& t : threads) t.join();

  Shuffle::Stats stats = shuffle.stats();
  EXPECT_EQ(stats.mappers_sealed, static_cast<uint64_t>(kMappers));
  EXPECT_EQ(stats.entries,
            static_cast<uint64_t>(kMappers * kPerMapper));
  EXPECT_GT(stats.spilled_runs, static_cast<uint64_t>(kMappers));

  uint64_t total = 0;
  for (int p = 0; p < opts.num_partitions; ++p) {
    ASSERT_OK_AND_ASSIGN(auto stream, shuffle.FinishPartition(p));
    Pairs got;
    std::string prev;
    while (stream->Valid()) {
      std::string k(stream->key());
      EXPECT_GE(k, prev);  // globally sorted within the partition
      got.emplace_back(k, std::string(stream->payload()));
      prev = k;
      ++total;
      ASSERT_OK(stream->Next());
    }
    // Same multiset of pairs; value order within a key is the heap's
    // tie-break order, not the insertion order.
    std::sort(got.begin(), got.end());
    std::sort(expected[p].begin(), expected[p].end());
    EXPECT_EQ(got, expected[p]) << "partition " << p;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kMappers * kPerMapper));
}

TEST(ShuffleTest, SpillsPublishMetricsMatchingStats) {
  TempDir dir("shuffle3");
  int64_t runs_before =
      obs::MetricsRegistry::Get().CounterValue("shuffle.spilled_runs");
  Shuffle::Options opts;
  opts.temp_dir = dir.path();
  opts.num_partitions = 2;
  opts.mapper_budget_bytes = 512;
  Shuffle shuffle(opts);
  auto mapper = shuffle.NewMapper();
  for (int i = 0; i < 300; ++i) {
    ASSERT_OK(mapper->Add(i % 2, Key(i), Payload(i)));
  }
  ASSERT_OK(mapper->Seal());
  EXPECT_GT(shuffle.stats().spilled_runs, 0u);
  int64_t runs_after =
      obs::MetricsRegistry::Get().CounterValue("shuffle.spilled_runs");
  EXPECT_EQ(runs_after - runs_before,
            static_cast<int64_t>(shuffle.stats().spilled_runs));
}

TEST(ShuffleTest, RunFilesRemovedOnDestruction) {
  TempDir dir("shuffle4");
  {
    Shuffle::Options opts;
    opts.temp_dir = dir.path();
    opts.num_partitions = 1;
    opts.mapper_budget_bytes = 256;
    Shuffle shuffle(opts);
    auto sealed = shuffle.NewMapper();
    auto abandoned = shuffle.NewMapper();
    for (int i = 0; i < 200; ++i) {
      ASSERT_OK(sealed->Add(0, Key(i), Payload(i)));
      ASSERT_OK(abandoned->Add(0, Key(i), Payload(i)));
    }
    ASSERT_OK(sealed->Seal());
    ASSERT_OK_AND_ASSIGN(auto names, ListDir(dir.path()));
    EXPECT_GT(names.size(), 0u);
    // `abandoned` is never sealed (a map task that bailed): its runs
    // are removed by its own destructor, the sealed mapper's by the
    // shuffle's.
  }
  ASSERT_OK_AND_ASSIGN(auto names, ListDir(dir.path()));
  EXPECT_TRUE(names.empty());
}

TEST(GroupIteratorTest, GroupsKeysAndSortsValuesCanonically) {
  TempDir dir("shuffle5");
  Shuffle::Options opts;
  opts.temp_dir = dir.path();
  opts.num_partitions = 1;
  opts.mapper_budget_bytes = 128;  // groups straddle spilled runs
  Shuffle shuffle(opts);
  auto mapper = shuffle.NewMapper();
  // 40 keys x 5 values, inserted in scrambled order.
  for (int v = 4; v >= 0; --v) {
    for (int k = 39; k >= 0; --k) {
      ASSERT_OK(mapper->Add(0, Key(k), Payload(v * 1000 + k)));
    }
  }
  ASSERT_OK(mapper->Seal());
  ASSERT_OK_AND_ASSIGN(auto stream, shuffle.FinishPartition(0));
  GroupIterator groups(stream.get());
  Value key;
  ValueList values;
  int64_t expected_key = 0;
  while (true) {
    ASSERT_OK_AND_ASSIGN(bool more, groups.Next(&key, &values));
    if (!more) break;
    EXPECT_EQ(key.i64(), expected_key);
    ASSERT_EQ(values.size(), 5u);
    // Values arrive in canonical (encoded-bytes) order, regardless of
    // the scrambled insertion order above.
    std::vector<std::string> expected_encoded;
    for (int v = 0; v < 5; ++v) {
      expected_encoded.push_back(Payload(v * 1000 + expected_key));
    }
    std::sort(expected_encoded.begin(), expected_encoded.end());
    for (int v = 0; v < 5; ++v) {
      EXPECT_EQ(Payload(values[v].i64()), expected_encoded[v]);
    }
    ++expected_key;
  }
  EXPECT_EQ(expected_key, 40);
}

}  // namespace
}  // namespace manimal::exec
