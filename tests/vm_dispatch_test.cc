// Dispatch-backend differential tests plus unit coverage for the VM
// hot-path machinery: the threaded and switch interpreter backends
// must be observationally identical (same emits, same logs, same step
// counts, same error statuses) on every corpus program and on a seeded
// fuzz corpus; detected-relational programs additionally get a THIRD
// leg — the native codegen kernel (with per-record VM replay on
// bailout, the engine's contract) must produce byte-identical traces
// to both VM backends; Value's three string storage classes (inline,
// owned, borrowed) must be interchangeable wherever kind() == kStr;
// and the str.word_at sequential-scan memo must survive buffer reuse.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "codegen/dlopen_kernel.h"
#include "codegen/kernel.h"
#include "codegen/shape.h"
#include "common/env.h"
#include "common/random.h"
#include "common/strings.h"
#include "mril/assembler.h"
#include "mril/builtins.h"
#include "mril/verifier.h"
#include "mril/vm.h"
#include "serde/value.h"
#include "tests/mril_gen.h"
#include "tests/test_util.h"

#ifndef MANIMAL_TEST_CORPUS_DIR
#define MANIMAL_TEST_CORPUS_DIR "tests/corpus"
#endif

namespace manimal {
namespace {

using mril::VmDispatch;
using mril::VmInstance;
using mril::VmOptions;

// ---------------------------------------------------------------
// Differential harness: run a program's map (and reduce, when
// present) over a deterministic input set under one backend and
// record everything observable.

struct RunTrace {
  std::vector<std::string> emits;     // "key -> value", in order
  std::vector<std::string> logs;
  std::vector<std::string> statuses;  // one per invocation
  int64_t steps = 0;
};

bool operator==(const RunTrace& a, const RunTrace& b) {
  return a.emits == b.emits && a.logs == b.logs &&
         a.statuses == b.statuses && a.steps == b.steps;
}

// WebPages-shaped records (url STR, rank I64, content STR) — the
// schema shared by the corpus programs and the mril_gen generator.
std::vector<Value> MakeWebPagesRecords(uint64_t seed, int count,
                                       int64_t rank_range) {
  Rng rng(seed);
  std::vector<Value> records;
  records.reserve(count);
  for (int i = 0; i < count; ++i) {
    std::string url = StrPrintf("http://site-%03d.example.com/page/%d",
                                static_cast<int>(rng.Uniform(50)), i);
    std::string content;
    int words = 1 + static_cast<int>(rng.Uniform(24));
    for (int w = 0; w < words; ++w) {
      static const char* kWords[] = {"lorem", "ipsum",  "dolor",
                                     "sit",   "amet",   "manimal",
                                     "index", "mapred", "x"};
      content += kWords[rng.Uniform(9)];
      content += (w + 1 < words) ? " " : "";
    }
    records.push_back(Value::List(
        {Value::Str(std::move(url)),
         Value::I64(static_cast<int64_t>(rng.Uniform(rank_range))),
         Value::Str(std::move(content))}));
  }
  return records;
}

RunTrace RunUnderDispatch(const mril::Program& program,
                          const std::vector<Value>& records,
                          VmDispatch dispatch) {
  RunTrace trace;
  VmOptions options;
  options.dispatch = dispatch;
  options.max_steps_per_invocation = 2'000'000;
  VmInstance vm(&program, options);
  // The traces must come from the backends they claim to.
  EXPECT_EQ(vm.effective_dispatch(), dispatch);

  std::vector<std::pair<Value, Value>> emitted;
  vm.set_emit_sink([&](const Value& k, const Value& v) {
    trace.emits.push_back(k.ToString() + " -> " + v.ToString());
    emitted.emplace_back(k.ToOwned(), v.ToOwned());
    return Status::OK();
  });
  vm.set_log_sink([&](const Value& msg) {
    trace.logs.push_back(msg.ToString());
  });

  for (size_t i = 0; i < records.size(); ++i) {
    Status s = vm.InvokeMap(Value::I64(static_cast<int64_t>(i)),
                            records[i]);
    trace.statuses.push_back(s.ToString());
  }

  if (program.has_reduce()) {
    // Group map output by key (first-seen order) and reduce each
    // group, capturing reduce-side emits into the same trace.
    std::vector<std::pair<Value, ValueList>> groups;
    std::map<std::string, size_t> index;
    for (auto& [k, v] : emitted) {
      auto [it, inserted] = index.emplace(k.ToString(), groups.size());
      if (inserted) groups.emplace_back(k, ValueList{});
      groups[it->second].second.push_back(std::move(v));
    }
    for (auto& [key, values] : groups) {
      Status s = vm.InvokeReduce(key, Value::List(std::move(values)));
      trace.statuses.push_back(s.ToString());
    }
  }
  trace.steps = vm.total_steps();
  return trace;
}

void ExpectBackendsAgree(const mril::Program& program,
                         const std::vector<Value>& records) {
  RunTrace sw = RunUnderDispatch(program, records, VmDispatch::kSwitch);
  RunTrace th = RunUnderDispatch(program, records, VmDispatch::kThreaded);
  EXPECT_EQ(sw.emits, th.emits);
  EXPECT_EQ(sw.logs, th.logs);
  EXPECT_EQ(sw.statuses, th.statuses);
  EXPECT_EQ(sw.steps, th.steps);
}

// ---------------------------------------------------------------
// Third leg: the native codegen kernel. Same observables as
// RunUnderDispatch, with the engine's contract applied verbatim —
// every kBailout record is replayed through a (switch-dispatch) VM,
// which reproduces emits, logs, and error statuses. VM step counts
// are not comparable across tiers, so steps stays 0 and the three-way
// comparison checks emits/logs/statuses only.

RunTrace RunUnderKernel(
    const mril::Program& program, const std::vector<Value>& records,
    const std::shared_ptr<const codegen::NativeKernel>& kernel) {
  RunTrace trace;
  VmOptions options;
  options.dispatch = VmDispatch::kSwitch;
  VmInstance vm(&program, options);

  std::vector<std::pair<Value, Value>> emitted;
  auto record_emit = [&](const Value& k, const Value& v) {
    trace.emits.push_back(k.ToString() + " -> " + v.ToString());
    emitted.emplace_back(k.ToOwned(), v.ToOwned());
    return Status::OK();
  };
  vm.set_emit_sink(record_emit);
  vm.set_log_sink([&](const Value& msg) {
    trace.logs.push_back(msg.ToString());
  });

  codegen::KernelScratch scratch;
  for (size_t i = 0; i < records.size(); ++i) {
    const Value key = Value::I64(static_cast<int64_t>(i));
    Value out_key, out_value;
    const codegen::KernelOutcome outcome =
        kernel->Run(key, records[i], &scratch, &out_key, &out_value);
    if (outcome == codegen::KernelOutcome::kBailout) {
      trace.statuses.push_back(vm.InvokeMap(key, records[i]).ToString());
      continue;
    }
    if (outcome == codegen::KernelOutcome::kEmit) {
      record_emit(out_key, out_value);
    }
    trace.statuses.push_back(Status::OK().ToString());
  }

  if (program.has_reduce()) {
    std::vector<std::pair<Value, ValueList>> groups;
    std::map<std::string, size_t> index;
    for (auto& [k, v] : emitted) {
      auto [it, inserted] = index.emplace(k.ToString(), groups.size());
      if (inserted) groups.emplace_back(k, ValueList{});
      groups[it->second].second.push_back(std::move(v));
    }
    for (auto& [key, values] : groups) {
      Status s = vm.InvokeReduce(key, Value::List(std::move(values)));
      trace.statuses.push_back(s.ToString());
    }
  }
  return trace;
}

// Runs the full three-way comparison for one admitted program: switch
// VM vs threaded VM (all observables including steps), then each
// compilable kernel engine vs the switch VM (emits/logs/statuses).
// Returns the number of kernel engines exercised.
int ExpectThreeWayAgree(const mril::Program& program,
                        const std::vector<Value>& records) {
  RunTrace sw = RunUnderDispatch(program, records, VmDispatch::kSwitch);
  if (mril::ThreadedDispatchAvailable()) {
    RunTrace th =
        RunUnderDispatch(program, records, VmDispatch::kThreaded);
    EXPECT_EQ(sw.emits, th.emits);
    EXPECT_EQ(sw.logs, th.logs);
    EXPECT_EQ(sw.statuses, th.statuses);
    EXPECT_EQ(sw.steps, th.steps);
  }
  int engines = 0;
  const codegen::CompileOptions::Engine kEngines[] = {
      codegen::CompileOptions::Engine::kClosure,
      codegen::CompileOptions::Engine::kEmitted,
  };
  for (const auto engine : kEngines) {
    if (engine == codegen::CompileOptions::Engine::kEmitted &&
        !codegen::EmittedKernelAvailable()) {
      continue;
    }
    codegen::CompileOptions options;
    options.engine = engine;
    Result<std::shared_ptr<const codegen::NativeKernel>> kernel =
        codegen::CompileKernel(program, options);
    if (!kernel.ok()) {
      // The emitted engine covers a narrower family; NotSupported is
      // its documented answer for the rest. The closure engine must
      // cover every admitted shape.
      EXPECT_EQ(kernel.status().code(), StatusCode::kNotSupported);
      EXPECT_NE(engine, codegen::CompileOptions::Engine::kClosure)
          << kernel.status().ToString();
      continue;
    }
    SCOPED_TRACE((*kernel)->Describe());
    RunTrace native = RunUnderKernel(program, records, *kernel);
    EXPECT_EQ(sw.emits, native.emits);
    EXPECT_EQ(sw.logs, native.logs);
    EXPECT_EQ(sw.statuses, native.statuses);
    ++engines;
  }
  return engines;
}

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> paths;
  auto names = ListDir(MANIMAL_TEST_CORPUS_DIR);
  if (!names.ok()) return paths;
  for (const std::string& name : *names) {
    if (name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".mril") == 0) {
      paths.push_back(std::string(MANIMAL_TEST_CORPUS_DIR) + "/" + name);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

TEST(VmDispatchDifferential, CorpusProgramsAgreeAcrossBackends) {
  if (!mril::ThreadedDispatchAvailable()) {
    GTEST_SKIP() << "threaded dispatch not compiled in";
  }
  std::vector<std::string> files = CorpusFiles();
  ASSERT_GE(files.size(), 4u)
      << "corpus missing at " << MANIMAL_TEST_CORPUS_DIR;
  std::vector<Value> records = MakeWebPagesRecords(/*seed=*/7, 128,
                                                   /*rank_range=*/100);
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    ASSERT_OK_AND_ASSIGN(std::string text, ReadFileToString(path));
    ASSERT_OK_AND_ASSIGN(mril::Program program,
                         mril::AssembleProgram(text));
    ASSERT_OK(mril::VerifyProgram(program));
    ExpectBackendsAgree(program, records);
  }
}

class VmDispatchFuzz : public ::testing::TestWithParam<int> {};

TEST_P(VmDispatchFuzz, GeneratedProgramsAgreeAcrossBackends) {
  if (!mril::ThreadedDispatchAvailable()) {
    GTEST_SKIP() << "threaded dispatch not compiled in";
  }
  constexpr int64_t kRankRange = 1000;
  std::vector<Value> records = MakeWebPagesRecords(
      /*seed=*/99, 64, kRankRange);
  for (int i = 0; i < 40; ++i) {
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 1000 + i;
    testing::GeneratedProgram gen =
        testing::GenerateWebPagesProgram(seed, kRankRange);
    SCOPED_TRACE(StrPrintf("seed %llu, shape: %s",
                           static_cast<unsigned long long>(seed),
                           gen.description.c_str()));
    ExpectBackendsAgree(gen.program, records);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmDispatchFuzz, ::testing::Range(0, 5));

// ---------------------------------------------------------------
// Three-way differential: switch VM / threaded VM / native kernel.

// Every corpus program whose map the admission gate accepts runs the
// full three-way comparison; the corpus is known to contain admitted
// selection/projection programs, so at least one must qualify.
TEST(ThreeWayDifferential, AdmittedCorpusProgramsAgree) {
  std::vector<std::string> files = CorpusFiles();
  ASSERT_GE(files.size(), 4u)
      << "corpus missing at " << MANIMAL_TEST_CORPUS_DIR;
  std::vector<Value> records = MakeWebPagesRecords(/*seed=*/7, 128,
                                                   /*rank_range=*/100);
  int admitted = 0;
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    ASSERT_OK_AND_ASSIGN(std::string text, ReadFileToString(path));
    ASSERT_OK_AND_ASSIGN(mril::Program program,
                         mril::AssembleProgram(text));
    ASSERT_OK(mril::VerifyProgram(program));
    if (!codegen::ExtractShape(program).ok()) continue;
    ++admitted;
    EXPECT_GE(ExpectThreeWayAgree(program, records), 1);
  }
  EXPECT_GE(admitted, 1) << "no corpus program passed the admission "
                            "gate; the three-way suite ran empty";
}

// The provable-shape generator mode: every seed must pass the
// admission gate by construction AND agree across all three tiers,
// over inputs that include borrowed (zero-copy) string fields.
class ThreeWayFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ThreeWayFuzz, ProvableGeneratedProgramsAgree) {
  constexpr int64_t kRankRange = 1000;
  std::vector<Value> records = MakeWebPagesRecords(
      /*seed=*/99, 64, kRankRange);
  int emitted_engine_runs = 0;
  for (int i = 0; i < 25; ++i) {
    uint64_t seed = static_cast<uint64_t>(GetParam()) * 1000 + i;
    testing::GeneratedProgram gen =
        testing::GenerateProvableSelectionProgram(seed, kRankRange);
    SCOPED_TRACE(StrPrintf("seed %llu, shape: %s",
                           static_cast<unsigned long long>(seed),
                           gen.description.c_str()));
    ASSERT_OK(mril::VerifyProgram(gen.program));
    Result<codegen::RelationalShape> shape =
        codegen::ExtractShape(gen.program);
    // The provable mode's whole contract: the admission gate takes
    // every generated seed.
    ASSERT_OK(shape.status());
    emitted_engine_runs += ExpectThreeWayAgree(gen.program, records) - 1;
  }
  if (codegen::EmittedKernelAvailable()) {
    // The narrow seeds must actually reach the dlopen engine — a
    // silent universal fallback would make this suite two-way.
    EXPECT_GE(emitted_engine_runs, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreeWayFuzz, ::testing::Range(1, 5));

// Borrowed record strings must behave identically too: the same
// program over the same bytes, with str fields decoded as views into
// an external buffer, must produce byte-identical traces.
TEST(VmDispatchDifferential, BorrowedRecordStringsAgreeAcrossBackends) {
  if (!mril::ThreadedDispatchAvailable()) {
    GTEST_SKIP() << "threaded dispatch not compiled in";
  }
  // Backing store outliving every invocation (the engine guarantees
  // this by consuming each record before advancing the split).
  std::vector<std::string> backing;
  std::vector<Value> records;
  Rng rng(1234);
  for (int i = 0; i < 64; ++i) {
    backing.push_back(StrPrintf("http://borrowed.example.com/%d/%d", i,
                                static_cast<int>(rng.Uniform(1000))));
    backing.push_back(
        "lorem ipsum manimal lorem dolor sit amet content row " +
        std::to_string(i));
  }
  for (int i = 0; i < 64; ++i) {
    records.push_back(Value::List({Value::Borrowed(backing[2 * i]),
                                   Value::I64(i * 13 % 97),
                                   Value::Borrowed(backing[2 * i + 1])}));
  }
  for (const std::string& path : CorpusFiles()) {
    SCOPED_TRACE(path);
    ASSERT_OK_AND_ASSIGN(std::string text, ReadFileToString(path));
    ASSERT_OK_AND_ASSIGN(mril::Program program,
                         mril::AssembleProgram(text));
    ExpectBackendsAgree(program, records);
  }
}

// ---------------------------------------------------------------
// Value storage classes.

TEST(ValueStorage, ShortStringsAreInlineNotBorrowed) {
  std::string s(kInlineStrCap, 'x');
  Value inline_copy = Value::Str(s);
  Value inline_borrow = Value::Borrowed(s);
  EXPECT_TRUE(inline_copy.is_str());
  EXPECT_FALSE(inline_copy.is_borrowed_str());
  // Short borrows are stored inline outright — same cost, can't
  // dangle.
  EXPECT_FALSE(inline_borrow.is_borrowed_str());
  EXPECT_EQ(inline_copy.str(), s);
  EXPECT_EQ(inline_borrow.str(), s);
  EXPECT_EQ(inline_copy.if_owned_str(), nullptr);
}

TEST(ValueStorage, LongStringsAreOwnedOrBorrowed) {
  std::string s(kInlineStrCap + 1, 'y');
  Value owned = Value::Str(s);
  Value borrowed = Value::Borrowed(s);
  EXPECT_FALSE(owned.is_borrowed_str());
  ASSERT_NE(owned.if_owned_str(), nullptr);
  EXPECT_TRUE(borrowed.is_borrowed_str());
  // The borrow really is zero-copy: it points into the source buffer.
  EXPECT_EQ(borrowed.str().data(), s.data());
  EXPECT_EQ(owned.str(), borrowed.str());
}

TEST(ValueStorage, ToOwnedDetachesFromBackingBuffer) {
  std::string s(40, 'z');
  Value v = Value::Borrowed(s);
  v.EnsureOwned();
  EXPECT_FALSE(v.is_borrowed_str());
  EXPECT_NE(v.str().data(), s.data());
  EXPECT_EQ(v.str(), s);
  // Destroying the backing buffer must not matter now.
  s.assign(40, '!');
  EXPECT_EQ(v.str(), std::string(40, 'z'));
}

TEST(ValueStorage, EnsureOwnedRebuildsListWithoutMutatingSharers) {
  std::string s(40, 'q');
  Value list = Value::List({Value::Borrowed(s), Value::I64(1)});
  Value alias = list;  // shares the ValueList storage
  EXPECT_TRUE(list.HasBorrowedStr());
  list.EnsureOwned();
  EXPECT_FALSE(list.HasBorrowedStr());
  // The other holder still sees the borrowed original.
  EXPECT_TRUE(alias.HasBorrowedStr());
  EXPECT_EQ(list.list()[0].str(), alias.list()[0].str());
}

TEST(ValueStorage, HasUniqueListTracksSharing) {
  Value list = Value::List({Value::I64(1)});
  EXPECT_TRUE(list.has_unique_list());
  Value alias = list;
  EXPECT_FALSE(list.has_unique_list());
  alias = Value::Null();
  EXPECT_TRUE(list.has_unique_list());
}

TEST(ValueStorage, CompareAndHashIgnoreStorageClass) {
  std::string s = "a string long enough to not be inline";
  Value owned = Value::Str(s);
  Value borrowed = Value::Borrowed(s);
  EXPECT_EQ(owned.Compare(borrowed), 0);
  EXPECT_EQ(owned.Hash(), borrowed.Hash());
  Value inl = Value::Str("tiny");
  Value inl_b = Value::Borrowed("tiny");
  EXPECT_EQ(inl.Compare(inl_b), 0);
  EXPECT_EQ(inl.Hash(), inl_b.Hash());
}

TEST(ValueStorage, AssignmentAcrossStorageClasses) {
  std::string big(64, 'b');
  Value v = Value::Str(big);       // owned
  Value w = Value::I64(7);         // trivial
  w = v;                           // trivial <- refcounted
  EXPECT_EQ(w.str(), big);
  v = Value::Bool(true);           // refcounted <- trivial
  EXPECT_TRUE(v.bool_value());
  EXPECT_EQ(w.str(), big);         // w's copy unaffected
  Value moved = std::move(w);      // relocation
  EXPECT_EQ(moved.str(), big);
  moved = moved.ToOwned();         // self-flavored round trip
  EXPECT_EQ(moved.str(), big);
}

TEST(ValueStorage, SelfAssignmentFromOwnListElement) {
  Value list = Value::List({Value::Str(std::string(48, 'e')),
                            Value::I64(2)});
  const std::string want(48, 'e');
  // Assigning a value from inside this value's own list storage must
  // not read freed memory.
  list = list.list()[0];
  EXPECT_TRUE(list.is_str());
  EXPECT_EQ(list.str(), want);
}

TEST(ValueStorage, SubstrValuePreservesStorageClass) {
  std::string s = "zero copy substring slicing over borrowed buffers";
  Value borrowed = Value::Borrowed(s);
  Value sub = SubstrValue(borrowed, 10, 30);
  EXPECT_EQ(sub.str(), std::string_view(s).substr(10, 30));
  ASSERT_TRUE(sub.is_borrowed_str());
  EXPECT_EQ(sub.str().data(), s.data() + 10);
  // Owned base: the slice must not point into the original buffer.
  Value owned_sub = SubstrValue(Value::Str(s), 10, 30);
  EXPECT_EQ(owned_sub.str(), sub.str());
  EXPECT_FALSE(owned_sub.is_borrowed_str());
}

TEST(ValueArenaTest, ResetReusesBlocks) {
  ValueArena arena;
  std::string_view a = arena.Copy("first allocation of some bytes");
  size_t after_first = arena.allocated_bytes();
  const char* first_ptr = a.data();
  arena.Reset();
  std::string_view b = arena.Copy("second allocation, same block");
  EXPECT_EQ(b.data(), first_ptr);  // same block, rewound
  EXPECT_EQ(arena.allocated_bytes(), after_first);
  EXPECT_EQ(b, "second allocation, same block");
}

TEST(ValueArenaTest, ConcatAndGrowth) {
  ValueArena arena;
  std::string_view joined = arena.Concat("hello, ", "arena");
  EXPECT_EQ(joined, "hello, arena");
  // Force growth past the first block; earlier allocations survive.
  std::string big(10000, 'g');
  std::string_view big_copy = arena.Copy(big);
  EXPECT_EQ(joined, "hello, arena");
  EXPECT_EQ(big_copy, big);
  EXPECT_GE(arena.allocated_bytes(), big.size());
}

// ---------------------------------------------------------------
// str.word_at memoization.

Value CallWordAt(const Value& s, int64_t index) {
  const mril::Builtin* b =
      mril::BuiltinRegistry::Get().FindByName("str.word_at");
  EXPECT_NE(b, nullptr);
  Value args[2] = {s, Value::I64(index)};
  Value result;
  EXPECT_OK(b->fn(args, &result));
  return result;
}

std::vector<std::string> NaiveWords(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

TEST(WordAtMemo, SequentialAndRandomAccessMatchNaive) {
  std::string doc =
      "the quick\tbrown fox jumps\nover the lazy dog and keeps going "
      "with  double  spaces and a trailing word";
  std::vector<std::string> words = NaiveWords(doc);
  for (Value base : {Value::Str(doc), Value::Borrowed(doc)}) {
    // Forward sequential (memo hit path).
    for (size_t i = 0; i < words.size(); ++i) {
      EXPECT_EQ(CallWordAt(base, static_cast<int64_t>(i)).str(),
                words[i]);
    }
    // Out of range.
    EXPECT_EQ(CallWordAt(base, static_cast<int64_t>(words.size())).str(),
              "");
    // Backward / random (memo cannot resume; must still be correct).
    Rng rng(5);
    for (int t = 0; t < 50; ++t) {
      size_t i = rng.Uniform(words.size());
      EXPECT_EQ(CallWordAt(base, static_cast<int64_t>(i)).str(),
                words[i]);
    }
  }
}

TEST(WordAtMemo, InvalidationProtectsReusedBorrowedBuffers) {
  // Same buffer address, same length, different content — exactly
  // what a recycled decode buffer looks like across records. The VM
  // calls InvalidateBorrowedStringMemos() at every invocation entry;
  // simulate that boundary here.
  std::string buffer = "alpha beta gamma delta epsilon";
  Value v = Value::Borrowed(buffer);
  ASSERT_TRUE(v.is_borrowed_str());
  EXPECT_EQ(CallWordAt(v, 0).str(), "alpha");
  EXPECT_EQ(CallWordAt(v, 1).str(), "beta");

  std::memcpy(buffer.data(), "ALPHA BETA GAMMA DELTA EPSILON",
              buffer.size());
  mril::InvalidateBorrowedStringMemos();
  EXPECT_EQ(CallWordAt(v, 1).str(), "BETA");
  EXPECT_EQ(CallWordAt(v, 2).str(), "GAMMA");
}

TEST(WordAtMemo, OwnedStringsKeyOnIdentityAcrossInvalidation) {
  std::string doc = "one two three four five six";
  Value v = Value::Str(doc);
  ASSERT_NE(v.if_owned_str(), nullptr);
  EXPECT_EQ(CallWordAt(v, 0).str(), "one");
  // Owned strings are immutable-by-identity: invalidation (an
  // invocation boundary) must not break a resumed scan.
  mril::InvalidateBorrowedStringMemos();
  EXPECT_EQ(CallWordAt(v, 1).str(), "two");
  EXPECT_EQ(CallWordAt(v, 5).str(), "six");
}

}  // namespace
}  // namespace manimal
