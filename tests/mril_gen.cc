#include "tests/mril_gen.h"

#include <cstdio>

#include "common/random.h"
#include "common/strings.h"
#include "mril/builder.h"
#include "workloads/schemas.h"

namespace manimal::testing {

namespace {

using mril::FunctionBuilder;
using mril::ProgramBuilder;

// One conjunct of the map's selection predicate; each jumps to "end"
// (skip this record) when it does not hold.
enum class PredKind {
  kRankLt,
  kRankLe,
  kRankGt,
  kRankGe,
  kUrlContains,
  kContentContains,
};

// What the emitted key is computed from (also fixes the key type).
enum class KeyKind { kUrl, kRank, kRankMod, kRankPlus };

// What the emitted value is.
enum class ValueKind { kOne, kRank, kUrl };

enum class ReduceKind { kNone, kCount, kSum };

void EmitPredicate(FunctionBuilder& m, PredKind kind, int64_t threshold,
                   const std::string& needle, std::string* desc) {
  switch (kind) {
    case PredKind::kRankLt:
      m.LoadParam(1).GetField("rank").LoadI64(threshold).CmpLt();
      *desc += StrPrintf(" rank<%lld", static_cast<long long>(threshold));
      break;
    case PredKind::kRankLe:
      m.LoadParam(1).GetField("rank").LoadI64(threshold).CmpLe();
      *desc += StrPrintf(" rank<=%lld", static_cast<long long>(threshold));
      break;
    case PredKind::kRankGt:
      m.LoadParam(1).GetField("rank").LoadI64(threshold).CmpGt();
      *desc += StrPrintf(" rank>%lld", static_cast<long long>(threshold));
      break;
    case PredKind::kRankGe:
      m.LoadParam(1).GetField("rank").LoadI64(threshold).CmpGe();
      *desc += StrPrintf(" rank>=%lld", static_cast<long long>(threshold));
      break;
    case PredKind::kUrlContains:
      m.LoadParam(1).GetField("url").LoadStr(needle).Call("str.contains");
      *desc += " url~" + needle;
      break;
    case PredKind::kContentContains:
      m.LoadParam(1)
          .GetField("content")
          .LoadStr(needle)
          .Call("str.contains");
      *desc += " content~" + needle;
      break;
  }
  m.JmpIfFalse("end");
}

// The reduce loop idiom from the workload programs: sum param 1's
// list elements.
void BuildSumReduce(FunctionBuilder& r) {
  int i = r.NewLocal();
  int n = r.NewLocal();
  int sum = r.NewLocal();
  r.LoadI64(0).StoreLocal(i);
  r.LoadI64(0).StoreLocal(sum);
  r.LoadParam(1).Call("list.len").StoreLocal(n);
  r.Label("loop");
  r.LoadLocal(i).LoadLocal(n).CmpGe().JmpIfTrue("done");
  r.LoadLocal(sum)
      .LoadParam(1)
      .LoadLocal(i)
      .Call("list.get")
      .Add()
      .StoreLocal(sum);
  r.LoadLocal(i).LoadI64(1).Add().StoreLocal(i);
  r.Jmp("loop");
  r.Label("done");
  r.LoadParam(0).LoadLocal(sum).Emit().Ret();
}

}  // namespace

GeneratedProgram GenerateWebPagesProgram(uint64_t seed,
                                         int64_t rank_range) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  GeneratedProgram out;
  std::string& desc = out.description;

  const auto reduce_kind = static_cast<ReduceKind>(rng.Uniform(3));
  // Sum-reduces need i64 values; everything else takes any value.
  const auto value_kind =
      reduce_kind == ReduceKind::kSum
          ? static_cast<ValueKind>(rng.Uniform(2))
          : static_cast<ValueKind>(rng.Uniform(3));
  const auto key_kind = static_cast<KeyKind>(rng.Uniform(4));
  const int num_preds = static_cast<int>(rng.Uniform(3));  // 0..2

  ProgramBuilder b(StrPrintf("gen-%llu",
                             static_cast<unsigned long long>(seed)));
  b.SetKeyType(key_kind == KeyKind::kUrl ? FieldType::kStr
                                         : FieldType::kI64);
  b.SetValueSchema(workloads::WebPagesSchema());

  FunctionBuilder& m = b.Map();
  desc = "preds:[";
  for (int i = 0; i < num_preds; ++i) {
    const auto pred = static_cast<PredKind>(rng.Uniform(6));
    const int64_t threshold =
        static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(
            rank_range > 0 ? rank_range : 1)));
    // Page URLs and contents both embed decimal digits, so a short
    // digit needle selects a nontrivial subset.
    const std::string needle = std::to_string(rng.Uniform(100));
    EmitPredicate(m, pred, threshold, needle, &desc);
  }
  desc += " ]";

  switch (key_kind) {
    case KeyKind::kUrl:
      m.LoadParam(1).GetField("url");
      desc += " key:url";
      break;
    case KeyKind::kRank:
      m.LoadParam(1).GetField("rank");
      desc += " key:rank";
      break;
    case KeyKind::kRankMod: {
      const int64_t mod = 2 + static_cast<int64_t>(rng.Uniform(9));
      m.LoadParam(1).GetField("rank").LoadI64(mod).Mod();
      desc += StrPrintf(" key:rank%%%lld", static_cast<long long>(mod));
      break;
    }
    case KeyKind::kRankPlus: {
      const int64_t add = static_cast<int64_t>(rng.Uniform(1000));
      m.LoadParam(1).GetField("rank").LoadI64(add).Add();
      desc += StrPrintf(" key:rank+%lld", static_cast<long long>(add));
      break;
    }
  }
  switch (value_kind) {
    case ValueKind::kOne:
      m.LoadI64(1);
      desc += " val:1";
      break;
    case ValueKind::kRank:
      m.LoadParam(1).GetField("rank");
      desc += " val:rank";
      break;
    case ValueKind::kUrl:
      m.LoadParam(1).GetField("url");
      desc += " val:url";
      break;
  }
  m.Emit();
  m.Label("end").Ret();

  switch (reduce_kind) {
    case ReduceKind::kNone:
      desc += " reduce:none";
      break;
    case ReduceKind::kCount: {
      FunctionBuilder& r = b.Reduce();
      r.LoadParam(0).LoadParam(1).Call("list.len").Emit().Ret();
      desc += " reduce:count";
      break;
    }
    case ReduceKind::kSum:
      BuildSumReduce(b.Reduce());
      desc += " reduce:sum";
      break;
  }

  out.program = b.Build();
  return out;
}

GeneratedProgram GenerateProvableSelectionProgram(uint64_t seed,
                                                  int64_t rank_range) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL);
  GeneratedProgram out;
  std::string& desc = out.description;

  // Narrow seeds stay inside the emitted (dlopen) engine's family:
  // i64-field-vs-constant predicates, i64 keys, scalar/record values.
  const bool narrow = rng.Uniform(3) == 0;
  const int num_preds = static_cast<int>(rng.Uniform(4));  // 0..3
  // 0 = i64 one, 1 = rank field, 2 = url field (wide only),
  // 3 = whole record.
  const uint64_t value_pick = rng.Uniform(narrow ? 2 : 4);
  // 0 = rank, 1 = rank+c, 2 = url (wide only), 3 = rank%m (wide only).
  const uint64_t key_pick = rng.Uniform(narrow ? 2 : 4);
  const bool count_reduce = value_pick != 3 && rng.Uniform(2) == 0;

  ProgramBuilder b(StrPrintf("genp-%llu",
                             static_cast<unsigned long long>(seed)));
  b.SetKeyType(key_pick == 2 ? FieldType::kStr : FieldType::kI64);
  b.SetValueSchema(workloads::WebPagesSchema());

  FunctionBuilder& m = b.Map();
  desc = narrow ? "narrow preds:[" : "preds:[";
  for (int i = 0; i < num_preds; ++i) {
    const auto pred =
        static_cast<PredKind>(rng.Uniform(narrow ? 4 : 6));
    const int64_t threshold =
        static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(
            rank_range > 0 ? rank_range : 1)));
    const std::string needle = std::to_string(rng.Uniform(100));
    EmitPredicate(m, pred, threshold, needle, &desc);
  }
  desc += " ]";

  switch (key_pick) {
    case 0:
      m.LoadParam(1).GetField("rank");
      desc += " key:rank";
      break;
    case 1: {
      const int64_t add = static_cast<int64_t>(rng.Uniform(1000));
      m.LoadParam(1).GetField("rank").LoadI64(add).Add();
      desc += StrPrintf(" key:rank+%lld", static_cast<long long>(add));
      break;
    }
    case 2:
      m.LoadParam(1).GetField("url");
      desc += " key:url";
      break;
    default: {
      const int64_t mod = 2 + static_cast<int64_t>(rng.Uniform(9));
      m.LoadParam(1).GetField("rank").LoadI64(mod).Mod();
      desc += StrPrintf(" key:rank%%%lld", static_cast<long long>(mod));
      break;
    }
  }
  switch (value_pick) {
    case 0:
      m.LoadI64(1);
      desc += " val:1";
      break;
    case 1:
      m.LoadParam(1).GetField("rank");
      desc += " val:rank";
      break;
    case 2:
      m.LoadParam(1).GetField("url");
      desc += " val:url";
      break;
    default:
      m.LoadParam(1);  // whole-record passthrough projection
      desc += " val:record";
      break;
  }
  m.Emit();
  m.Label("end").Ret();

  if (count_reduce) {
    FunctionBuilder& r = b.Reduce();
    r.LoadParam(0).LoadParam(1).Call("list.len").Emit().Ret();
    desc += " reduce:count";
  } else {
    desc += " reduce:none";
  }

  out.program = b.Build();
  return out;
}

}  // namespace manimal::testing
