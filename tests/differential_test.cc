// The differential plan-equivalence harness (docs/testing.md): seeded
// random MRIL programs are executed through the naive full-scan
// baseline AND through every optimizer-selected plan (each synthesized
// index artifact gets its own fresh catalog so the optimizer actually
// picks it), and the outputs must be byte-identical as sorted pair
// multisets — with and without fault injection. A mismatch means some
// optimization changed program semantics; a job failure under
// injection means task retry failed to mask a fault.
//
// Reproduce a failure locally with the seed from the test name /
// failure message, e.g.:
//   MANIMAL_FAULT_SEED=3 ctest -R DifferentialFault --output-on-failure

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "analyzer/index_gen.h"
#include "common/env.h"
#include "common/faulty_env.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "mril/assembler.h"
#include "mril/builder.h"
#include "mril/verifier.h"
#include "workloads/schemas.h"
#include "tests/mril_gen.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"

namespace manimal {
namespace {

using testing::GeneratedProgram;
using testing::TempDir;

constexpr int64_t kRankRange = 1000;

// Pins an environment variable for one scope, restoring the previous
// value (or absence) on exit.
class ScopedEnvVar {
 public:
  ScopedEnvVar(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    setenv(name, value, 1);
  }
  ~ScopedEnvVar() {
    if (had_old_) {
      setenv(name_, old_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

// Shared input file: generating WebPages once keeps the harness fast.
class DifferentialHarness : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir("differential");
    workloads::WebPagesOptions gen;
    gen.num_pages = 1500;
    gen.content_len = 48;
    gen.rank_range = kRankRange;
    ASSERT_OK(
        workloads::GenerateWebPages(input_path(), gen).status());
  }
  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }
  static std::string input_path() { return dir_->file("pages.msq"); }

  static core::ManimalSystem::Options SystemOptions(
      const std::string& workspace) {
    core::ManimalSystem::Options options;
    options.workspace_dir = workspace;
    options.map_parallelism = 2;
    options.num_partitions = 2;
    options.simulated_startup_seconds = 0;
    options.simulated_disk_bytes_per_sec = 0;
    // Under injection a task may need many attempts before it sees a
    // fault-free window; backoff off keeps the harness fast.
    options.max_task_attempts = 16;
    options.retry_backoff_ms = 0;
    return options;
  }

  // Runs `seed`'s generated program through the baseline and through
  // one plan per synthesized index artifact, asserting byte-identical
  // canonical output each time. `backend` is applied to the optimized
  // submissions only — RunBaseline pins the VM internally, so the
  // ground truth never depends on it. When `native_jobs` is non-null
  // it accumulates how many submissions actually resolved to the
  // native backend.
  void RunSeed(uint64_t seed, const TempDir& scratch,
               exec::Backend backend = exec::Backend::kVm,
               int* native_jobs = nullptr) {
    GeneratedProgram gen =
        testing::GenerateWebPagesProgram(seed, kRankRange);
    SCOPED_TRACE("seed " + std::to_string(seed) + " shape:" +
                 gen.description);
    RunProgram(gen.program, "s" + std::to_string(seed), scratch,
               backend, native_jobs);
  }

  void RunProgram(const mril::Program& program, const std::string& tag,
                  const TempDir& scratch,
                  exec::Backend backend = exec::Backend::kVm,
                  int* native_jobs = nullptr) {
    ASSERT_OK(mril::VerifyProgram(program));
    // Naive full scan: the ground truth.
    std::vector<std::string> canonical;
    {
      ASSERT_OK_AND_ASSIGN(
          auto system, core::ManimalSystem::Open(SystemOptions(
                           scratch.file(tag + "-ws-baseline"))));
      core::ManimalSystem::Submission job;
      job.program = program;
      job.input_path = input_path();
      job.output_path = scratch.file(tag + "-baseline.prs");
      ASSERT_OK(system->RunBaseline(job).status());
      ASSERT_OK_AND_ASSIGN(canonical,
                           exec::ReadCanonicalPairs(job.output_path));
    }

    // Plan 0: the optimizer over an empty catalog (map-side rewrites
    // only). Plans 1..N: one per synthesized index artifact, each in
    // a fresh workspace so the optimizer considers exactly that
    // artifact.
    ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
    std::vector<analyzer::IndexGenProgram> specs =
        analyzer::SynthesizeIndexPrograms(program, report);
    for (size_t plan = 0; plan <= specs.size(); ++plan) {
      SCOPED_TRACE("plan " + std::to_string(plan) + " of " +
                   std::to_string(specs.size()));
      const std::string plan_tag = tag + "-p" + std::to_string(plan);
      core::ManimalSystem::Options options =
          SystemOptions(scratch.file(plan_tag + "-ws"));
      options.backend = backend;
      ASSERT_OK_AND_ASSIGN(auto system,
                           core::ManimalSystem::Open(options));
      if (plan > 0) {
        ASSERT_OK(
            system->BuildIndex(specs[plan - 1], input_path()).status());
      }
      core::ManimalSystem::Submission job;
      job.program = program;
      job.input_path = input_path();
      job.output_path = scratch.file(plan_tag + ".prs");
      ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));
      if (native_jobs != nullptr && outcome.job.backend == "native") {
        ++*native_jobs;
      }
      ASSERT_OK_AND_ASSIGN(auto pairs,
                           exec::ReadCanonicalPairs(job.output_path));
      EXPECT_EQ(pairs, canonical)
          << "plan '" << outcome.plan.explanation
          << "' (backend " << outcome.job.backend << ", "
          << outcome.job.backend_detail
          << ") changed the output multiset";
    }
  }

  static TempDir* dir_;
};

TempDir* DifferentialHarness::dir_ = nullptr;

TEST_F(DifferentialHarness, PlansMatchBaseline) {
  TempDir scratch("diff-plain");
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    RunSeed(seed, scratch);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(DifferentialHarness, PlansMatchBaselineUnderFaultInjection) {
  // Defaults overridable via MANIMAL_FAULT_SEED / MANIMAL_FAULT_RATE
  // (the CI fault matrix sweeps the seed).
  FaultyEnv::Config defaults;
  defaults.seed = 1;
  defaults.rate = 0.02;
  const FaultyEnv::Config config = FaultyEnv::ConfigFromEnv(defaults);
  ASSERT_GT(config.rate, 0.0);

  TempDir scratch("diff-fault");
  {
    ScopedFaultInjection inject(config);
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      RunSeed(seed, scratch);
      if (::testing::Test::HasFatalFailure()) break;
    }
    // The schedule must have actually fired: a passing run with zero
    // injected faults would prove nothing.
    const FaultyEnv::Stats stats = FaultyEnv::Get().stats();
    EXPECT_GT(stats.evaluated, 0u);
    EXPECT_GT(stats.injected, 0u)
        << "fault schedule never fired; raise MANIMAL_FAULT_RATE";
  }

  // The retries that masked those faults are visible in telemetry.
  const std::string metrics = core::ManimalSystem::DumpMetricsJson();
  EXPECT_NE(metrics.find("engine.task_retries"), std::string::npos);
  EXPECT_NE(metrics.find("engine.tasks_failed"), std::string::npos);
}

// ---------------------------------------------------------------
// Native-backend legs: the same every-plan sweep with the codegen
// tier armed. `auto` must route every admitted map through a native
// kernel (asserted via JobResult::backend) and still match the
// VM-pinned baseline byte-for-byte on every plan.

TEST_F(DifferentialHarness, NativeBackendPlansMatchBaseline) {
  TempDir scratch("diff-native");
  int native_jobs = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    RunSeed(seed, scratch, exec::Backend::kAuto, &native_jobs);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The leg is only meaningful if the native tier actually engaged.
  EXPECT_GE(native_jobs, 1)
      << "auto backend never resolved to a native kernel";
  const std::string metrics = core::ManimalSystem::DumpMetricsJson();
  EXPECT_NE(metrics.find("engine.native_tasks"), std::string::npos);
}

TEST_F(DifferentialHarness,
       NativeBackendPlansMatchBaselineUnderFaultInjection) {
  FaultyEnv::Config defaults;
  defaults.seed = 2;
  defaults.rate = 0.02;
  const FaultyEnv::Config config = FaultyEnv::ConfigFromEnv(defaults);
  ASSERT_GT(config.rate, 0.0);

  TempDir scratch("diff-native-fault");
  int native_jobs = 0;
  {
    ScopedFaultInjection inject(config);
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      RunSeed(seed, scratch, exec::Backend::kAuto, &native_jobs);
      if (::testing::Test::HasFatalFailure()) break;
    }
    const FaultyEnv::Stats stats = FaultyEnv::Get().stats();
    EXPECT_GT(stats.evaluated, 0u);
    EXPECT_GT(stats.injected, 0u)
        << "fault schedule never fired; raise MANIMAL_FAULT_RATE";
  }
  EXPECT_GE(native_jobs, 1)
      << "auto backend never resolved to a native kernel";
}

// `auto` on a map the admission gate rejects must degrade silently to
// the VM — job succeeds, and the decision is visible in the job
// result and the EXPLAIN ANALYZE report.
TEST_F(DifferentialHarness, AutoBackendFallsBackToVmVisibly) {
  TempDir scratch("diff-fallback");
  // A log call is a side effect: provably outside the native tier.
  mril::ProgramBuilder b("fallback");
  b.SetKeyType(FieldType::kStr);
  b.SetValueSchema(workloads::WebPagesSchema());
  mril::FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("url").Log();
  m.LoadParam(1).GetField("url");
  m.LoadParam(1).GetField("rank");
  m.Emit().Ret();

  core::ManimalSystem::Options options =
      SystemOptions(scratch.file("ws"));
  options.backend = exec::Backend::kAuto;
  options.explain = optimizer::ExplainMode::kAnalyze;
  ASSERT_OK_AND_ASSIGN(auto system, core::ManimalSystem::Open(options));
  core::ManimalSystem::Submission job;
  job.program = b.Build();
  job.input_path = input_path();
  job.output_path = scratch.file("out.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));

  EXPECT_EQ(outcome.job.backend, "vm");
  EXPECT_NE(outcome.job.backend_detail.find("vm fallback"),
            std::string::npos)
      << outcome.job.backend_detail;
  ASSERT_TRUE(outcome.explain.has_value());
  EXPECT_FALSE(outcome.explain->plan.native_eligible);
  EXPECT_NE(outcome.explain->plan.native_detail, "");
  EXPECT_EQ(outcome.explain->backend, "vm");
  EXPECT_EQ(outcome.explain->counters.native_tasks, 0u);
  // Both renderings carry the decision.
  EXPECT_NE(outcome.explain->ToText().find("native: eligible=no"),
            std::string::npos)
      << outcome.explain->ToText();
  EXPECT_NE(outcome.explain->ToJson().find("\"native_eligible\""),
            std::string::npos);
}

// An explicitly requested native backend on an admitted map must
// engage (no silent fallback) and match the baseline.
TEST_F(DifferentialHarness, ExplicitNativeBackendRunsAdmittedMap) {
  TempDir scratch("diff-explicit-native");
  mril::ProgramBuilder b("explicit");
  b.SetKeyType(FieldType::kStr);
  b.SetValueSchema(workloads::WebPagesSchema());
  mril::FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(kRankRange / 2).CmpGe();
  m.JmpIfFalse("end");
  m.LoadParam(1).GetField("url");
  m.LoadParam(1).GetField("rank");
  m.Emit();
  m.Label("end").Ret();
  mril::Program program = b.Build();

  std::vector<std::string> canonical;
  {
    ASSERT_OK_AND_ASSIGN(auto system,
                         core::ManimalSystem::Open(SystemOptions(
                             scratch.file("ws-baseline"))));
    core::ManimalSystem::Submission job;
    job.program = program;
    job.input_path = input_path();
    job.output_path = scratch.file("baseline.prs");
    ASSERT_OK(system->RunBaseline(job).status());
    ASSERT_OK_AND_ASSIGN(canonical,
                         exec::ReadCanonicalPairs(job.output_path));
  }

  core::ManimalSystem::Options options =
      SystemOptions(scratch.file("ws-native"));
  options.backend = exec::Backend::kNative;
  options.explain = optimizer::ExplainMode::kAnalyze;
  ASSERT_OK_AND_ASSIGN(auto system, core::ManimalSystem::Open(options));
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = input_path();
  job.output_path = scratch.file("native.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));

  EXPECT_EQ(outcome.job.backend, "native");
  EXPECT_GE(outcome.job.counters.native_tasks, 1u);
  ASSERT_TRUE(outcome.explain.has_value());
  EXPECT_TRUE(outcome.explain->plan.native_eligible);
  EXPECT_EQ(outcome.explain->backend, "native");
  ASSERT_OK_AND_ASSIGN(auto pairs,
                       exec::ReadCanonicalPairs(job.output_path));
  EXPECT_EQ(pairs, canonical);
}

// ---------------------------------------------------------------
// Codec legs: the every-plan sweep repeated under each block codec
// chain, once with direct predicate evaluation on compressed blocks
// enabled and once forced to decode-then-evaluate. Every
// (plan x chain x direct on/off) combination must reproduce the
// baseline byte-for-byte — the exactness contract of the skip path.

#ifndef MANIMAL_TEST_CORPUS_DIR
#define MANIMAL_TEST_CORPUS_DIR "tests/corpus"
#endif

constexpr const char* kCodecChains[] = {"off", "rle", "mlz", "rle+mlz"};

TEST_F(DifferentialHarness, CodecChainsMatchBaselineDirectEvalOnAndOff) {
  for (const char* chain : kCodecChains) {
    for (int direct = 0; direct <= 1; ++direct) {
      SCOPED_TRACE(std::string("chain ") + chain + " direct " +
                   std::to_string(direct));
      ScopedEnvVar codecs("MANIMAL_CODECS", chain);
      ScopedEnvVar direct_eval("MANIMAL_DIRECT_EVAL",
                               direct ? "1" : "0");
      TempDir scratch(std::string("diff-codec-") +
                      (direct ? "on-" : "off-") + chain);
      for (uint64_t seed = 1; seed <= 4; ++seed) {
        RunSeed(seed, scratch);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST_F(DifferentialHarness,
       CodecChainsMatchBaselineUnderFaultInjection) {
  FaultyEnv::Config defaults;
  defaults.seed = 3;
  defaults.rate = 0.02;
  const FaultyEnv::Config config = FaultyEnv::ConfigFromEnv(defaults);
  ASSERT_GT(config.rate, 0.0);

  ScopedEnvVar codecs("MANIMAL_CODECS", "rle+mlz");
  for (int direct = 0; direct <= 1; ++direct) {
    SCOPED_TRACE("direct " + std::to_string(direct));
    ScopedEnvVar direct_eval("MANIMAL_DIRECT_EVAL", direct ? "1" : "0");
    TempDir scratch(std::string("diff-codec-fault-") +
                    std::to_string(direct));
    ScopedFaultInjection inject(config);
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      RunSeed(seed, scratch);
      if (::testing::Test::HasFatalFailure()) return;
    }
    const FaultyEnv::Stats stats = FaultyEnv::Get().stats();
    EXPECT_GT(stats.injected, 0u)
        << "fault schedule never fired; raise MANIMAL_FAULT_RATE";
  }
}

// The regression corpus programs through the same codec sweep: fixed
// hand-written plans (not just generator shapes) must also survive
// compressed-direct evaluation.
TEST_F(DifferentialHarness, CorpusProgramsMatchBaselineUnderCodecs) {
  std::vector<std::string> files;
  ASSERT_OK_AND_ASSIGN(auto names, ListDir(MANIMAL_TEST_CORPUS_DIR));
  for (const std::string& name : names) {
    if (name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".mril") == 0) {
      files.push_back(std::string(MANIMAL_TEST_CORPUS_DIR) + "/" + name);
    }
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 4u)
      << "corpus missing at " << MANIMAL_TEST_CORPUS_DIR;

  ScopedEnvVar codecs("MANIMAL_CODECS", "rle+mlz");
  for (int direct = 0; direct <= 1; ++direct) {
    SCOPED_TRACE("direct " + std::to_string(direct));
    ScopedEnvVar direct_eval("MANIMAL_DIRECT_EVAL", direct ? "1" : "0");
    TempDir scratch(std::string("diff-codec-corpus-") +
                    std::to_string(direct));
    for (size_t i = 0; i < files.size(); ++i) {
      SCOPED_TRACE(files[i]);
      ASSERT_OK_AND_ASSIGN(std::string text, ReadFileToString(files[i]));
      ASSERT_OK_AND_ASSIGN(mril::Program program,
                           mril::AssembleProgram(text));
      RunProgram(program, "c" + std::to_string(i), scratch);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace manimal
