// End-to-end smoke tests of the full Manimal walkthrough (paper §2.2):
// generate data, run baseline, analyze, build indexes, run optimized,
// and require output equivalence plus actual work reduction.

#include <gtest/gtest.h>

#include "core/manimal.h"
#include "exec/pairfile.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"

namespace manimal {
namespace {

using core::ManimalSystem;
using testing::TempDir;

class IntegrationSmokeTest : public ::testing::Test {
 protected:
  IntegrationSmokeTest() : dir_("smoke") {}

  std::unique_ptr<ManimalSystem> OpenSystem() {
    ManimalSystem::Options options;
    options.workspace_dir = dir_.file("ws");
    options.map_parallelism = 2;
    options.num_partitions = 2;
    options.simulated_startup_seconds = 0;
    auto system_or = ManimalSystem::Open(options);
    EXPECT_TRUE(system_or.ok()) << system_or.status().ToString();
    return std::move(system_or).value();
  }

  TempDir dir_;
};

TEST_F(IntegrationSmokeTest, SelectionOnOpaqueRankings) {
  workloads::RankingsOptions gen;
  gen.num_pages = 5000;
  ASSERT_OK_AND_ASSIGN(auto stats, workloads::GenerateRankings(
                                       dir_.file("rankings.msq"), gen));
  ASSERT_EQ(stats.records, 5000u);

  auto system = OpenSystem();
  ManimalSystem::Submission submission;
  submission.program = workloads::Benchmark1Selection(99000);
  submission.input_path = dir_.file("rankings.msq");
  submission.output_path = dir_.file("baseline.out");
  ASSERT_OK_AND_ASSIGN(exec::JobResult baseline,
                       system->RunBaseline(submission));

  // First submit: no index yet -> conventional plan + emitted
  // index-generation programs.
  submission.output_path = dir_.file("first.out");
  ASSERT_OK_AND_ASSIGN(ManimalSystem::SubmitOutcome first,
                       system->Submit(submission));
  EXPECT_FALSE(first.plan.optimized);
  ASSERT_TRUE(first.report.selection.has_value())
      << first.report.ToString();
  EXPECT_TRUE(first.report.selection->indexable());
  ASSERT_FALSE(first.index_programs.empty());

  // Administrator builds the (maximal) index.
  ASSERT_OK_AND_ASSIGN(exec::IndexBuildResult build,
                       system->BuildIndex(first.index_programs[0],
                                          submission.input_path));
  EXPECT_GT(build.entry.artifact_bytes, 0u);

  // Second submit: optimized via B+Tree range scan.
  submission.output_path = dir_.file("optimized.out");
  ASSERT_OK_AND_ASSIGN(ManimalSystem::SubmitOutcome second,
                       system->Submit(submission));
  EXPECT_TRUE(second.plan.optimized) << second.plan.explanation;

  ASSERT_OK_AND_ASSIGN(auto base_pairs, exec::ReadCanonicalPairs(
                                            dir_.file("baseline.out")));
  ASSERT_OK_AND_ASSIGN(auto opt_pairs, exec::ReadCanonicalPairs(
                                           dir_.file("optimized.out")));
  EXPECT_EQ(base_pairs, opt_pairs);
  EXPECT_GT(base_pairs.size(), 0u);

  // The index skipped almost all map invocations (selectivity ~1%).
  EXPECT_LT(second.job.counters.map_invocations,
            baseline.counters.map_invocations / 10);
}

TEST_F(IntegrationSmokeTest, AggregationWithProjectionAndDelta) {
  workloads::UserVisitsOptions gen;
  gen.num_visits = 20000;
  gen.num_pages = 2000;
  ASSERT_OK_AND_ASSIGN(auto stats, workloads::GenerateUserVisits(
                                       dir_.file("visits.msq"), gen));
  ASSERT_EQ(stats.records, 20000u);

  auto system = OpenSystem();
  ManimalSystem::Submission submission;
  submission.program = workloads::Benchmark2Aggregation();
  submission.input_path = dir_.file("visits.msq");
  submission.output_path = dir_.file("baseline.out");
  ASSERT_OK_AND_ASSIGN(exec::JobResult baseline,
                       system->RunBaseline(submission));

  ASSERT_OK_AND_ASSIGN(analyzer::AnalysisReport report,
                       analyzer::Analyze(submission.program));
  EXPECT_FALSE(report.selection.has_value());
  ASSERT_TRUE(report.projection.has_value()) << report.ToString();
  EXPECT_EQ(report.projection->used_fields,
            (std::vector<int>{0, 3}));  // sourceIP, adRevenue
  ASSERT_TRUE(report.delta.has_value());

  auto specs =
      analyzer::SynthesizeIndexPrograms(submission.program, report);
  ASSERT_FALSE(specs.empty());
  EXPECT_TRUE(specs[0].projection);
  EXPECT_TRUE(specs[0].delta);
  ASSERT_OK_AND_ASSIGN(
      exec::IndexBuildResult build,
      system->BuildIndex(specs[0], submission.input_path));
  // Projection dropped 7 of 9 fields; the artifact must be much
  // smaller than the input.
  EXPECT_LT(build.entry.artifact_bytes, build.entry.input_bytes / 2);

  submission.output_path = dir_.file("optimized.out");
  ASSERT_OK_AND_ASSIGN(ManimalSystem::SubmitOutcome outcome,
                       system->Submit(submission));
  EXPECT_TRUE(outcome.plan.optimized) << outcome.plan.explanation;

  ASSERT_OK_AND_ASSIGN(auto base_pairs, exec::ReadCanonicalPairs(
                                            dir_.file("baseline.out")));
  ASSERT_OK_AND_ASSIGN(auto opt_pairs, exec::ReadCanonicalPairs(
                                           dir_.file("optimized.out")));
  EXPECT_EQ(base_pairs, opt_pairs);
  EXPECT_GT(base_pairs.size(), 0u);
  // Optimized run reads far fewer bytes.
  EXPECT_LT(outcome.job.counters.input_bytes,
            baseline.counters.input_bytes / 2);
}

TEST_F(IntegrationSmokeTest, UdfAggregationIsLeftAlone) {
  workloads::DocumentsOptions gen;
  gen.num_docs = 300;
  gen.num_pages = 500;
  ASSERT_OK_AND_ASSIGN(auto stats, workloads::GenerateDocuments(
                                       dir_.file("docs.msq"), gen));
  ASSERT_GT(stats.bytes, 0u);

  auto system = OpenSystem();
  ManimalSystem::Submission submission;
  submission.program = workloads::Benchmark4UdfAggregation();
  submission.input_path = dir_.file("docs.msq");
  submission.output_path = dir_.file("b4.out");
  ASSERT_OK_AND_ASSIGN(ManimalSystem::SubmitOutcome outcome,
                       system->Submit(submission));
  EXPECT_FALSE(outcome.plan.optimized);
  EXPECT_FALSE(outcome.report.selection.has_value());
  EXPECT_GT(outcome.job.counters.output_records, 0u);
}

}  // namespace
}  // namespace manimal
