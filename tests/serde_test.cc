// Unit and property tests for src/serde: values, schemas, the row
// codec, the opaque-tuple (AbstractTuple) codec, and the ordered key
// codec whose byte order must equal value order.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "serde/key_codec.h"
#include "serde/record_codec.h"
#include "serde/schema.h"
#include "serde/value.h"
#include "tests/test_util.h"

namespace manimal {
namespace {

// ---------------- Value ----------------

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::I64(-5).i64(), -5);
  EXPECT_DOUBLE_EQ(Value::F64(2.5).f64(), 2.5);
  EXPECT_EQ(Value::Str("abc").str(), "abc");
  Value list = Value::List({Value::I64(1), Value::Str("x")});
  EXPECT_EQ(list.list().size(), 2u);
}

TEST(ValueTest, CompareSameKind) {
  EXPECT_LT(Value::I64(1).Compare(Value::I64(2)), 0);
  EXPECT_EQ(Value::I64(2).Compare(Value::I64(2)), 0);
  EXPECT_GT(Value::Str("b").Compare(Value::Str("a")), 0);
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)), 0);
}

TEST(ValueTest, MixedNumericComparesByValue) {
  EXPECT_EQ(Value::I64(2).Compare(Value::F64(2.0)), 0);
  EXPECT_LT(Value::I64(2).Compare(Value::F64(2.5)), 0);
  EXPECT_GT(Value::F64(3.0).Compare(Value::I64(2)), 0);
}

TEST(ValueTest, CrossKindOrderIsStable) {
  // null < bool < numeric < str < list
  Value values[] = {Value::Null(), Value::Bool(true), Value::I64(5),
                    Value::Str("a"), Value::List({})};
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(values[i].Compare(values[i + 1]), 0) << i;
  }
}

TEST(ValueTest, HashConsistentWithEquality) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.UniformRange(-100, 100);
    EXPECT_EQ(Value::I64(v).Hash(), Value::I64(v).Hash());
    // Numeric twins that compare equal must hash equal.
    EXPECT_EQ(Value::I64(v).Hash(),
              Value::F64(static_cast<double>(v)).Hash());
  }
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  EXPECT_NE(Value::Str("abc").Hash(), Value::Str("abd").Hash());
}

TEST(ValueTest, ListCompareLexicographic) {
  Value a = Value::List({Value::I64(1), Value::I64(2)});
  Value b = Value::List({Value::I64(1), Value::I64(3)});
  Value c = Value::List({Value::I64(1)});
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_LT(c.Compare(a), 0);
}

// ---------------- Schema ----------------

TEST(SchemaTest, ParseToStringRoundtrip) {
  const char* cases[] = {"url:str,rank:i64,content:str", "<opaque>",
                         "a:i64", "x:f64,y:bool"};
  for (const char* text : cases) {
    ASSERT_OK_AND_ASSIGN(Schema schema, Schema::Parse(text));
    EXPECT_EQ(schema.ToString(), text);
  }
}

TEST(SchemaTest, ParseErrors) {
  EXPECT_FALSE(Schema::Parse("a:int32").ok());
  EXPECT_FALSE(Schema::Parse("nocolon").ok());
  EXPECT_FALSE(Schema::Parse("a:b:c").ok());
}

TEST(SchemaTest, FieldLookupAndNumerics) {
  ASSERT_OK_AND_ASSIGN(Schema s,
                       Schema::Parse("a:str,b:i64,c:f64,d:bool"));
  EXPECT_EQ(s.FieldIndex("c"), 2);
  EXPECT_EQ(s.FieldIndex("zz"), std::nullopt);
  EXPECT_EQ(s.NumericFieldIndexes(), (std::vector<int>{1, 2}));
}

TEST(SchemaTest, Project) {
  ASSERT_OK_AND_ASSIGN(Schema s, Schema::Parse("a:str,b:i64,c:f64"));
  Schema p = s.Project({2, 0});
  EXPECT_EQ(p.ToString(), "c:f64,a:str");
}

TEST(SchemaTest, ValidateRecord) {
  ASSERT_OK_AND_ASSIGN(Schema s, Schema::Parse("a:str,b:i64"));
  EXPECT_OK(ValidateRecord(s, {Value::Str("x"), Value::I64(1)}));
  EXPECT_FALSE(ValidateRecord(s, {Value::Str("x")}).ok());  // arity
  EXPECT_FALSE(
      ValidateRecord(s, {Value::I64(1), Value::I64(1)}).ok());  // kind
  Schema opaque = Schema::Opaque();
  EXPECT_OK(ValidateRecord(opaque, {Value::Str("blob")}));
  EXPECT_FALSE(ValidateRecord(opaque, {Value::I64(1)}).ok());
}

// ---------------- record codec ----------------

TEST(RecordCodecTest, RoundtripAllTypes) {
  ASSERT_OK_AND_ASSIGN(Schema s,
                       Schema::Parse("a:str,b:i64,c:f64,d:bool"));
  Record record = {Value::Str("hello"), Value::I64(-42),
                   Value::F64(1.5), Value::Bool(true)};
  std::string buf;
  ASSERT_OK(EncodeRecord(s, record, &buf));
  std::string_view in = buf;
  Record out;
  ASSERT_OK(DecodeRecord(s, &in, &out));
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].str(), "hello");
  EXPECT_EQ(out[1].i64(), -42);
  EXPECT_DOUBLE_EQ(out[2].f64(), 1.5);
  EXPECT_EQ(out[3].bool_value(), true);
}

TEST(RecordCodecTest, MultipleRecordsConcatenate) {
  ASSERT_OK_AND_ASSIGN(Schema s, Schema::Parse("a:i64"));
  std::string buf;
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(EncodeRecord(s, {Value::I64(i)}, &buf));
  }
  std::string_view in = buf;
  for (int i = 0; i < 10; ++i) {
    Record out;
    ASSERT_OK(DecodeRecord(s, &in, &out));
    EXPECT_EQ(out[0].i64(), i);
  }
  EXPECT_TRUE(in.empty());
}

TEST(RecordCodecTest, ValueRoundtripIncludingLists) {
  Value cases[] = {
      Value::Null(),
      Value::Bool(false),
      Value::I64(INT64_MIN),
      Value::F64(-0.0),
      Value::Str(std::string("a\0b", 3)),
      Value::List({Value::I64(1), Value::Str("x"),
                   Value::List({Value::Bool(true)})}),
  };
  for (const Value& v : cases) {
    std::string buf;
    ASSERT_OK(EncodeValue(v, &buf));
    std::string_view in = buf;
    Value out;
    ASSERT_OK(DecodeValue(&in, &out));
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(out.kind(), v.kind());
    EXPECT_EQ(out.Compare(v), 0) << v.ToString();
  }
}

TEST(RecordCodecTest, HandlesAreNotSerializable) {
  std::string buf;
  Value handle = Value::Handle(nullptr);
  EXPECT_TRUE(EncodeValue(handle, &buf).IsNotSupported());
}

TEST(OpaqueTupleTest, PackUnpackRoundtrip) {
  Record tuple = {Value::Str("http://x"), Value::I64(99),
                  Value::F64(2.5), Value::Bool(false)};
  ASSERT_OK_AND_ASSIGN(std::string blob, OpaqueTupleCodec::Pack(tuple));
  ASSERT_OK_AND_ASSIGN(Record back, OpaqueTupleCodec::Unpack(blob));
  ASSERT_EQ(back.size(), 4u);
  EXPECT_EQ(back[0].str(), "http://x");
  EXPECT_EQ(back[1].i64(), 99);
  ASSERT_OK_AND_ASSIGN(int n, OpaqueTupleCodec::NumFields(blob));
  EXPECT_EQ(n, 4);
}

TEST(OpaqueTupleTest, RandomFieldAccess) {
  Record tuple = {Value::Str("a"), Value::I64(1), Value::Str("c")};
  ASSERT_OK_AND_ASSIGN(std::string blob, OpaqueTupleCodec::Pack(tuple));
  ASSERT_OK_AND_ASSIGN(Value f2, OpaqueTupleCodec::GetField(blob, 2));
  EXPECT_EQ(f2.str(), "c");
  EXPECT_FALSE(OpaqueTupleCodec::GetField(blob, 3).ok());
  EXPECT_FALSE(OpaqueTupleCodec::GetField(blob, -1).ok());
}

TEST(OpaqueTupleTest, RejectsGarbage) {
  EXPECT_FALSE(OpaqueTupleCodec::Unpack("no-magic").ok());
  EXPECT_FALSE(OpaqueTupleCodec::NumFields("").ok());
  EXPECT_FALSE(OpaqueTupleCodec::Pack({Value::List({})}).ok());
}

// ---------------- ordered key codec ----------------

// The fundamental property: memcmp order of encodings equals
// Value::Compare order.
class OrderedKeyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OrderedKeyPropertyTest, ByteOrderMatchesValueOrder) {
  Rng rng(GetParam());
  std::vector<Value> values;
  for (int i = 0; i < 150; ++i) {
    switch (rng.Uniform(3)) {
      case 0:
        values.push_back(
            Value::I64(rng.UniformRange(-1000000, 1000000)));
        break;
      case 1:
        values.push_back(Value::F64(
            (rng.NextDouble() - 0.5) * 2e6));
        break;
      default:
        values.push_back(
            Value::Str(rng.AsciiString(1 + rng.Uniform(12))));
        break;
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      // Same-kind comparisons must agree exactly (i64/f64 mixes are
      // only guaranteed within one field type, which is how the
      // system uses keys).
      if (values[i].kind() != values[j].kind()) continue;
      std::string a, b;
      ASSERT_OK(EncodeOrderedKey(values[i], &a));
      ASSERT_OK(EncodeOrderedKey(values[j], &b));
      int value_cmp = values[i].Compare(values[j]);
      int byte_cmp = a.compare(b);
      EXPECT_EQ(value_cmp < 0, byte_cmp < 0)
          << values[i].ToString() << " vs " << values[j].ToString();
      EXPECT_EQ(value_cmp == 0, byte_cmp == 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedKeyPropertyTest,
                         ::testing::Values(11, 12, 13));

TEST(OrderedKeyTest, Roundtrip) {
  Value cases[] = {Value::Null(),        Value::Bool(true),
                   Value::I64(-7),       Value::I64(INT64_MAX),
                   Value::F64(-1.25),    Value::F64(0.0),
                   Value::Str("hello"),  Value::Str("")};
  for (const Value& v : cases) {
    std::string buf;
    ASSERT_OK(EncodeOrderedKey(v, &buf));
    Value out;
    ASSERT_OK(DecodeOrderedKey(buf, &out));
    EXPECT_EQ(out.Compare(v), 0) << v.ToString();
    EXPECT_EQ(out.kind(), v.kind()) << v.ToString();
  }
}

TEST(OrderedKeyTest, RejectsNonScalars) {
  std::string buf;
  EXPECT_TRUE(
      EncodeOrderedKey(Value::List({}), &buf).IsNotSupported());
}

}  // namespace
}  // namespace manimal
