// Tests for the ManimalSystem facade: workspace lifecycle, catalog
// persistence across reopen (indexes outlive the process, like RDBMS
// indexes), and submission edge cases.

#include <gtest/gtest.h>

#include "core/manimal.h"
#include "exec/pairfile.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"

namespace manimal::core {
namespace {

using testing::TempDir;

ManimalSystem::Options BaseOptions(const std::string& ws) {
  ManimalSystem::Options options;
  options.workspace_dir = ws;
  options.simulated_startup_seconds = 0;
  options.map_parallelism = 2;
  options.num_partitions = 2;
  return options;
}

TEST(ManimalSystemTest, RequiresWorkspace) {
  ManimalSystem::Options options;
  EXPECT_FALSE(ManimalSystem::Open(options).ok());
}

TEST(ManimalSystemTest, CatalogPersistsAcrossReopen) {
  TempDir dir("core1");
  workloads::WebPagesOptions gen;
  gen.num_pages = 1000;
  gen.content_len = 64;
  ASSERT_OK(
      workloads::GenerateWebPages(dir.file("pages.msq"), gen).status());
  mril::Program program = workloads::SelectionCountQuery(50000);

  // Session 1: build an index.
  {
    ASSERT_OK_AND_ASSIGN(auto system,
                         ManimalSystem::Open(BaseOptions(dir.file("ws"))));
    ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
    auto specs = analyzer::SynthesizeIndexPrograms(program, report);
    ASSERT_FALSE(specs.empty());
    ASSERT_OK(
        system->BuildIndex(specs[0], dir.file("pages.msq")).status());
    EXPECT_EQ(system->catalog().entries().size(), 1u);
  }

  // Session 2: a fresh open sees the artifact and uses it.
  {
    ASSERT_OK_AND_ASSIGN(auto system,
                         ManimalSystem::Open(BaseOptions(dir.file("ws"))));
    EXPECT_EQ(system->catalog().entries().size(), 1u);
    ManimalSystem::Submission job;
    job.program = program;
    job.input_path = dir.file("pages.msq");
    job.output_path = dir.file("out.prs");
    ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));
    EXPECT_TRUE(outcome.plan.optimized) << outcome.plan.explanation;
  }
}

TEST(ManimalSystemTest, RebuildingAnIndexReplacesIt) {
  TempDir dir("core2");
  workloads::WebPagesOptions gen;
  gen.num_pages = 500;
  gen.content_len = 64;
  ASSERT_OK(
      workloads::GenerateWebPages(dir.file("pages.msq"), gen).status());
  ASSERT_OK_AND_ASSIGN(auto system,
                       ManimalSystem::Open(BaseOptions(dir.file("ws"))));
  mril::Program program = workloads::SelectionCountQuery(100);
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  ASSERT_OK(system->BuildIndex(specs[0], dir.file("pages.msq")).status());
  ASSERT_OK(system->BuildIndex(specs[0], dir.file("pages.msq")).status());
  // Same signature: replaced, not duplicated.
  EXPECT_EQ(system->catalog().entries().size(), 1u);
}

TEST(ManimalSystemTest, SubmitFailsCleanlyOnMissingInput) {
  TempDir dir("core3");
  ASSERT_OK_AND_ASSIGN(auto system,
                       ManimalSystem::Open(BaseOptions(dir.file("ws"))));
  ManimalSystem::Submission job;
  job.program = workloads::SelectionCountQuery(1);
  job.input_path = dir.file("nope.msq");
  job.output_path = dir.file("out.prs");
  EXPECT_FALSE(system->Submit(job).ok());
}

TEST(ManimalSystemTest, SubmitRejectsMalformedPrograms) {
  TempDir dir("core4");
  ASSERT_OK_AND_ASSIGN(auto system,
                       ManimalSystem::Open(BaseOptions(dir.file("ws"))));
  mril::Program broken;
  broken.name = "broken";
  broken.map_fn.name = "map";
  broken.map_fn.num_params = 2;
  broken.map_fn.code = {{mril::Opcode::kPop, 0},
                        {mril::Opcode::kReturn, 0}};
  ManimalSystem::Submission job;
  job.program = broken;
  job.input_path = dir.file("x");
  job.output_path = dir.file("y");
  EXPECT_FALSE(system->Submit(job).ok());
}

TEST(ManimalSystemTest, BaselineNeverConsultsCatalog) {
  TempDir dir("core5");
  workloads::WebPagesOptions gen;
  gen.num_pages = 500;
  gen.content_len = 64;
  gen.rank_range = 100;
  ASSERT_OK(
      workloads::GenerateWebPages(dir.file("pages.msq"), gen).status());
  ASSERT_OK_AND_ASSIGN(auto system,
                       ManimalSystem::Open(BaseOptions(dir.file("ws"))));
  mril::Program program = workloads::SelectionCountQuery(50);
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  ASSERT_OK(system->BuildIndex(specs[0], dir.file("pages.msq")).status());

  ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir.file("pages.msq");
  job.output_path = dir.file("base.prs");
  ASSERT_OK_AND_ASSIGN(auto baseline, system->RunBaseline(job));
  // Full scan: every record mapped.
  EXPECT_EQ(baseline.counters.map_invocations, 500u);
}

}  // namespace
}  // namespace manimal::core
