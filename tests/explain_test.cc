// EXPLAIN / EXPLAIN ANALYZE tests: candidate-set completeness, the
// text and JSON renderings round-tripping through the obs JSON
// parser, and the differential check at the heart of EXPLAIN ANALYZE
// — the analyzer-derived per-interval predicate observation must
// agree with what the VM's actual filter execution emitted.

#include <gtest/gtest.h>

#include <string>

#include "core/manimal.h"
#include "obs/json.h"
#include "optimizer/explain.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"

namespace manimal::optimizer {
namespace {

using testing::TempDir;

core::ManimalSystem::Options BaseOptions(const std::string& ws) {
  core::ManimalSystem::Options options;
  options.workspace_dir = ws;
  options.simulated_startup_seconds = 0;
  options.map_parallelism = 2;
  options.num_partitions = 2;
  return options;
}

void GeneratePages(const std::string& path, uint64_t pages) {
  workloads::WebPagesOptions gen;
  gen.num_pages = pages;
  gen.content_len = 32;
  gen.rank_range = 100;
  ASSERT_OK(workloads::GenerateWebPages(path, gen).status());
}

TEST(ExplainModeTest, EnvParsing) {
  EXPECT_STREQ(ExplainModeName(ExplainMode::kOff), "off");
  EXPECT_STREQ(ExplainModeName(ExplainMode::kPlan), "plan");
  EXPECT_STREQ(ExplainModeName(ExplainMode::kAnalyze), "analyze");
}

TEST(ExplainTest, OffByDefaultProducesNoReport) {
  TempDir dir("explain0");
  GeneratePages(dir.file("pages.msq"), 300);
  ASSERT_OK_AND_ASSIGN(
      auto system, core::ManimalSystem::Open(BaseOptions(dir.file("ws"))));
  core::ManimalSystem::Submission job;
  job.program = workloads::SelectionCountQuery(50);
  job.input_path = dir.file("pages.msq");
  job.output_path = dir.file("out.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));
  EXPECT_FALSE(outcome.explain.has_value());
}

TEST(ExplainTest, PlanModeListsChosenAndRejectedCandidates) {
  TempDir dir("explain1");
  GeneratePages(dir.file("pages.msq"), 500);
  mril::Program program = workloads::SelectionCountQuery(50);

  auto options = BaseOptions(dir.file("ws"));
  options.cost_based_optimizer = true;
  options.explain = ExplainMode::kPlan;
  ASSERT_OK_AND_ASSIGN(auto system,
                       core::ManimalSystem::Open(options));
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  ASSERT_FALSE(specs.empty());
  ASSERT_OK(system->BuildIndex(specs[0], dir.file("pages.msq")).status());

  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir.file("pages.msq");
  job.output_path = dir.file("out.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));

  ASSERT_TRUE(outcome.explain.has_value());
  const ExplainReport& ex = *outcome.explain;
  EXPECT_FALSE(ex.analyzed);
  EXPECT_EQ(ex.plan.mode, "cost");
  EXPECT_FALSE(ex.plan.candidates.empty());
  int chosen = 0;
  for (const CandidateExplain& c : ex.plan.candidates) {
    EXPECT_TRUE(c.verdict == "chosen" || c.verdict == "rejected" ||
                c.verdict == "uncataloged")
        << c.verdict;
    if (c.chosen) {
      ++chosen;
      EXPECT_EQ(c.verdict, "chosen");
      EXPECT_TRUE(c.cataloged);
      EXPECT_GE(c.est_bytes, 0) << c.cost_detail;
    }
  }
  // At most one winner; the selection artifact exists, so if the cost
  // model picked it the report must say so consistently.
  EXPECT_LE(chosen, 1);
  EXPECT_EQ(chosen == 1, ex.plan.optimized);

  const std::string text = ex.ToText();
  EXPECT_NE(text.find("EXPLAIN"), std::string::npos);
  EXPECT_NE(text.find(program.name), std::string::npos);
  EXPECT_NE(text.find("candidates"), std::string::npos);
}

TEST(ExplainTest, JsonRoundTripsThroughParser) {
  TempDir dir("explain2");
  GeneratePages(dir.file("pages.msq"), 500);
  mril::Program program = workloads::SelectionCountQuery(50);

  auto options = BaseOptions(dir.file("ws"));
  options.explain = ExplainMode::kPlan;
  options.explain_path = dir.file("explain.jsonl");
  ASSERT_OK_AND_ASSIGN(auto system,
                       core::ManimalSystem::Open(options));
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir.file("pages.msq");
  job.output_path = dir.file("out.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));
  ASSERT_TRUE(outcome.explain.has_value());

  obs::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(obs::JsonParse(outcome.explain->ToJson(), &parsed, &error))
      << error;
  EXPECT_EQ(parsed.NumberOr("explain_version", -1),
            kExplainSchemaVersion);
  const obs::JsonValue* plan = parsed.Find("plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->StringOr("program", ""), program.name);
  EXPECT_EQ(plan->StringOr("mode", ""), "rule");
  const obs::JsonValue* candidates = plan->Find("candidates");
  ASSERT_NE(candidates, nullptr);
  ASSERT_TRUE(candidates->is_array());
  EXPECT_EQ(candidates->items.size(),
            outcome.explain->plan.candidates.size());

  // The explain_path sidecar holds the same document as one JSON line.
  ASSERT_OK_AND_ASSIGN(std::string sidecar,
                       ReadFileToString(dir.file("explain.jsonl")));
  ASSERT_FALSE(sidecar.empty());
  EXPECT_EQ(sidecar.back(), '\n');
  obs::JsonValue sidecar_parsed;
  ASSERT_TRUE(obs::JsonParse(sidecar, &sidecar_parsed, &error)) << error;
  EXPECT_EQ(sidecar_parsed.NumberOr("explain_version", -1),
            kExplainSchemaVersion);
}

// The differential at the core of EXPLAIN ANALYZE: under a seqscan
// plan the fabric evaluates the analyzer-derived predicate intervals
// over every record, INDEPENDENTLY of the VM executing the program's
// own filter bytecode. Both mechanisms must agree on the selectivity,
// and both must agree with the generator's ground truth (pageRank
// uniform in [0, 100), threshold 50 -> about half the records).
TEST(ExplainTest, AnalyzeObservedSelectivityMatchesVmExecution) {
  TempDir dir("explain3");
  GeneratePages(dir.file("pages.msq"), 2000);

  auto options = BaseOptions(dir.file("ws"));
  options.explain = ExplainMode::kAnalyze;
  ASSERT_OK_AND_ASSIGN(auto system,
                       core::ManimalSystem::Open(options));
  core::ManimalSystem::Submission job;
  job.program = workloads::SelectionCountQuery(50);
  job.input_path = dir.file("pages.msq");
  job.output_path = dir.file("out.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));

  ASSERT_TRUE(outcome.explain.has_value());
  const ExplainReport& ex = *outcome.explain;
  EXPECT_TRUE(ex.analyzed);
  EXPECT_EQ(ex.job_id, outcome.job.job_id);
  EXPECT_FALSE(ex.job_id.empty());
  EXPECT_EQ(ex.rows_scanned, outcome.job.counters.map_invocations);
  EXPECT_TRUE(ex.predicates_observed);
  ASSERT_FALSE(ex.drift.empty());
  EXPECT_FALSE(ex.tasks.empty());

  // VM side: what the program's own filter let through.
  const double vm_selectivity =
      static_cast<double>(outcome.job.counters.map_output_records +
                          outcome.job.counters.map_output_filtered) /
      static_cast<double>(outcome.job.counters.map_invocations);
  // Analyzer side: the per-interval observation.
  double observed_total = 0;
  for (const DriftRow& row : ex.drift) {
    ASSERT_GE(row.observed, 0) << row.predicate;
    ASSERT_LE(row.observed, 1) << row.predicate;
    observed_total += row.observed;
  }
  EXPECT_NEAR(observed_total, vm_selectivity, 1e-9);
  EXPECT_NEAR(ex.observed_selectivity, vm_selectivity, 1e-9);
  // Generator ground truth.
  EXPECT_NEAR(observed_total, 0.5, 0.1);

  const std::string text = ex.ToText();
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(text.find("selectivity"), std::string::npos);
}

// With a B+Tree artifact cataloged, the drift report joins the
// tree-derived estimate against the observation, giving ROADMAP item
// 4 its feedback signal. (Under the indexed plan the scan pre-filters
// rows, so the observation measures index precision, ~1.0.)
TEST(ExplainTest, AnalyzeJoinsEstimatesIntoDrift) {
  TempDir dir("explain4");
  GeneratePages(dir.file("pages.msq"), 1000);
  mril::Program program = workloads::SelectionCountQuery(50);

  auto options = BaseOptions(dir.file("ws"));
  options.cost_based_optimizer = true;
  options.explain = ExplainMode::kAnalyze;
  ASSERT_OK_AND_ASSIGN(auto system,
                       core::ManimalSystem::Open(options));
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  ASSERT_FALSE(specs.empty());
  ASSERT_OK(system->BuildIndex(specs[0], dir.file("pages.msq")).status());

  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir.file("pages.msq");
  job.output_path = dir.file("out.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));

  ASSERT_TRUE(outcome.explain.has_value());
  const ExplainReport& ex = *outcome.explain;
  ASSERT_TRUE(ex.analyzed);
  ASSERT_FALSE(ex.drift.empty());
  bool any_estimated = false;
  for (const DriftRow& row : ex.drift) {
    if (row.estimated >= 0) {
      any_estimated = true;
      EXPECT_LE(row.estimated, 1) << row.predicate;
    }
  }
  EXPECT_TRUE(any_estimated)
      << "no drift row carried a B+Tree estimate:\n" << ex.ToText();
}

}  // namespace
}  // namespace manimal::optimizer
