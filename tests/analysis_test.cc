// Unit tests for the static-analysis toolkit: control-flow graphs,
// reaching definitions, symbolic expression recovery (use-def DAGs),
// path enumeration, purity, and side-effect scanning.

#include <gtest/gtest.h>

#include "analysis/cfg.h"
#include "analysis/expr_recovery.h"
#include "analysis/paths.h"
#include "analysis/reaching_defs.h"
#include "analysis/side_effects.h"
#include "mril/builder.h"
#include "tests/test_util.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"

namespace manimal::analysis {
namespace {

using mril::Opcode;
using mril::Program;
using mril::ProgramBuilder;

Schema SimpleSchema() {
  return Schema({{"a", FieldType::kStr}, {"b", FieldType::kI64}});
}

// ---------------- CFG ----------------

TEST(CfgTest, StraightLineIsOneBlock) {
  ProgramBuilder b("straight");
  b.SetValueSchema(SimpleSchema());
  b.Map().LoadParam(0).LoadI64(1).Emit().Ret();
  Program p = b.Build();
  Cfg cfg = Cfg::Build(p.map_fn);
  EXPECT_EQ(cfg.blocks().size(), 1u);
  EXPECT_TRUE(cfg.edges().empty());
  EXPECT_FALSE(cfg.HasCycle());
}

TEST(CfgTest, BranchMakesDiamond) {
  Program p = workloads::ExampleRankFilter(1);
  Cfg cfg = Cfg::Build(p.map_fn);
  // Condition block, emit block, return block — matching Figure 4.
  ASSERT_EQ(cfg.blocks().size(), 3u);
  ASSERT_EQ(cfg.edges().size(), 3u);
  int true_edges = 0, false_edges = 0, fall = 0;
  for (const CfgEdge& e : cfg.edges()) {
    if (e.kind == EdgeKind::kTrue) ++true_edges;
    if (e.kind == EdgeKind::kFalse) ++false_edges;
    if (e.kind == EdgeKind::kFallthrough) ++fall;
  }
  EXPECT_EQ(true_edges, 1);
  EXPECT_EQ(false_edges, 1);
  EXPECT_EQ(fall, 1);
  EXPECT_FALSE(cfg.HasCycle());
}

TEST(CfgTest, BlockOfMapsEveryPc) {
  Program p = workloads::Benchmark3Join(1, 2);
  Cfg cfg = Cfg::Build(p.map_fn);
  for (int pc = 0; pc < static_cast<int>(p.map_fn.code.size()); ++pc) {
    int b = cfg.BlockOf(pc);
    ASSERT_GE(b, 0);
    const BasicBlock& bb = cfg.block(b);
    EXPECT_GE(pc, bb.first_pc);
    EXPECT_LE(pc, bb.last_pc);
  }
}

TEST(CfgTest, LoopIsDetected) {
  Program p = workloads::Benchmark4UdfAggregation();
  Cfg cfg = Cfg::Build(p.map_fn);
  EXPECT_TRUE(cfg.HasCycle());
}

TEST(CfgTest, ReachabilitySets) {
  Program p = workloads::ExampleRankFilter(1);
  Cfg cfg = Cfg::Build(p.map_fn);
  // Find the emit block.
  int emit_block = -1;
  for (int pc = 0; pc < static_cast<int>(p.map_fn.code.size()); ++pc) {
    if (p.map_fn.code[pc].op == Opcode::kEmit) {
      emit_block = cfg.BlockOf(pc);
    }
  }
  ASSERT_GE(emit_block, 0);
  std::vector<bool> reaches = cfg.BlocksReaching(emit_block);
  EXPECT_TRUE(reaches[cfg.entry_block()]);
  EXPECT_TRUE(reaches[emit_block]);
  std::vector<bool> reachable = cfg.ReachableBlocks();
  for (bool r : reachable) EXPECT_TRUE(r);  // no dead code here
}

TEST(CfgTest, DotOutputIsWellFormed) {
  Program p = workloads::ExampleRankFilter(1);
  Cfg cfg = Cfg::Build(p.map_fn);
  std::string dot = cfg.ToDot(p, p.map_fn);
  EXPECT_NE(dot.find("digraph cfg"), std::string::npos);
  EXPECT_NE(dot.find("entry -> b0"), std::string::npos);
  EXPECT_NE(dot.find("-> exit"), std::string::npos);
  EXPECT_NE(dot.find("label=\"true\""), std::string::npos);
}

// ---------------- reaching definitions ----------------

TEST(ReachingDefsTest, SingleDefReachesUse) {
  ProgramBuilder b("rd1");
  b.SetValueSchema(SimpleSchema());
  auto& m = b.Map();
  int x = m.NewLocal();
  m.LoadI64(5).StoreLocal(x);       // pc 0,1: def
  m.LoadLocal(x).LoadI64(0).Emit(); // pc 2: use
  m.Ret();
  Program p = b.Build();
  Cfg cfg = Cfg::Build(p.map_fn);
  ReachingDefs rd(p.map_fn, cfg);
  ASSERT_EQ(rd.def_sites().size(), 1u);
  auto defs = rd.DefsReaching(2, VarRef{VarRef::Kind::kLocal, x});
  EXPECT_EQ(defs, (std::vector<int>{1}));
}

TEST(ReachingDefsTest, RedefinitionKills) {
  ProgramBuilder b("rd2");
  b.SetValueSchema(SimpleSchema());
  auto& m = b.Map();
  int x = m.NewLocal();
  m.LoadI64(1).StoreLocal(x);  // def@1
  m.LoadI64(2).StoreLocal(x);  // def@3 kills def@1
  m.LoadLocal(x).LoadI64(0).Emit().Ret();
  Program p = b.Build();
  Cfg cfg = Cfg::Build(p.map_fn);
  ReachingDefs rd(p.map_fn, cfg);
  auto defs = rd.DefsReaching(4, VarRef{VarRef::Kind::kLocal, x});
  EXPECT_EQ(defs, (std::vector<int>{3}));
}

TEST(ReachingDefsTest, BothBranchDefsReachJoin) {
  ProgramBuilder b("rd3");
  b.SetValueSchema(SimpleSchema());
  auto& m = b.Map();
  int x = m.NewLocal();
  m.LoadParam(1).GetField("b").LoadI64(0).CmpGt().JmpIfFalse("else");
  m.LoadI64(1).StoreLocal(x);
  m.Jmp("join");
  m.Label("else");
  m.LoadI64(2).StoreLocal(x);
  m.Label("join");
  m.LoadLocal(x).LoadI64(0).Emit().Ret();
  Program p = b.Build();
  Cfg cfg = Cfg::Build(p.map_fn);
  ReachingDefs rd(p.map_fn, cfg);
  // Find the load_local pc.
  int load_pc = -1;
  for (int pc = 0; pc < static_cast<int>(p.map_fn.code.size()); ++pc) {
    if (p.map_fn.code[pc].op == Opcode::kLoadLocal) load_pc = pc;
  }
  ASSERT_GE(load_pc, 0);
  auto defs = rd.DefsReaching(load_pc, VarRef{VarRef::Kind::kLocal, x});
  EXPECT_EQ(defs.size(), 2u);
}

// ---------------- expression recovery ----------------

struct Recovered {
  Program program;
  Cfg cfg;
  ReachingDefs reaching;
  ExprRecovery recovery;

  explicit Recovered(Program p)
      : program(std::move(p)),
        cfg(Cfg::Build(program.map_fn)),
        reaching(program.map_fn, cfg),
        recovery(program, program.map_fn, cfg, reaching) {}

  int FindPc(Opcode op, int nth = 0) {
    int seen = 0;
    for (int pc = 0; pc < static_cast<int>(program.map_fn.code.size());
         ++pc) {
      if (program.map_fn.code[pc].op == op && seen++ == nth) return pc;
    }
    return -1;
  }
};

TEST(ExprRecoveryTest, BranchConditionOfExample) {
  Recovered r(workloads::ExampleRankFilter(1));
  int branch = r.FindPc(Opcode::kJmpIfFalse);
  ASSERT_GE(branch, 0);
  ExprRef cond = r.recovery.BranchCondition(branch);
  EXPECT_EQ(cond->ToString(), "(param1.field[1] cmp_gt i64:1)");
  std::string why;
  EXPECT_TRUE(IsFunctional(cond, &why)) << why;
}

TEST(ExprRecoveryTest, EmitOperandsOfExample) {
  Recovered r(workloads::ExampleRankFilter(1));
  int emit = r.FindPc(Opcode::kEmit);
  ASSERT_GE(emit, 0);
  auto [key, value] = r.recovery.EmitOperands(emit);
  EXPECT_EQ(key->ToString(), "param0");
  EXPECT_EQ(value->ToString(), "i64:1");
}

TEST(ExprRecoveryTest, MemberTaintsCondition) {
  Recovered r(workloads::Figure2Unsafe(1));
  // Second conditional branch tests numMapsRun > 200.
  int branch = r.FindPc(Opcode::kJmpIfFalse);
  ASSERT_GE(branch, 0);
  ExprRef cond = r.recovery.BranchCondition(branch);
  std::string why;
  EXPECT_FALSE(IsFunctional(cond, &why));
  EXPECT_NE(why.find("member"), std::string::npos);
}

TEST(ExprRecoveryTest, LocalsExpandThroughSingleDef) {
  ProgramBuilder b("expand");
  b.SetValueSchema(SimpleSchema());
  auto& m = b.Map();
  int x = m.NewLocal();
  m.LoadParam(1).GetField("b").LoadI64(3).Mul().StoreLocal(x);
  m.LoadLocal(x).LoadI64(10).CmpGt().JmpIfFalse("end");
  m.LoadParam(0).LoadLocal(x).Emit();
  m.Label("end").Ret();
  Recovered r(b.Build());
  int branch = r.FindPc(Opcode::kJmpIfFalse);
  ExprRef cond = r.recovery.BranchCondition(branch);
  EXPECT_EQ(cond->ToString(),
            "((param1.field[1] mul i64:3) cmp_gt i64:10)");
}

TEST(ExprRecoveryTest, ConflictingDefsBecomeUnknown) {
  ProgramBuilder b("conflict");
  b.SetValueSchema(SimpleSchema());
  auto& m = b.Map();
  int x = m.NewLocal();
  m.LoadParam(1).GetField("b").LoadI64(0).CmpGt().JmpIfFalse("else");
  m.LoadI64(1).StoreLocal(x);
  m.Jmp("join");
  m.Label("else");
  m.LoadI64(2).StoreLocal(x);
  m.Label("join");
  m.LoadLocal(x).LoadI64(0).CmpGt().JmpIfFalse("end");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  Recovered r(b.Build());
  int branch = r.FindPc(Opcode::kJmpIfFalse, 1);
  ExprRef cond = r.recovery.BranchCondition(branch);
  std::string why;
  EXPECT_FALSE(IsFunctional(cond, &why));
}

TEST(ExprRecoveryTest, EqualDefsOnBothPathsResolve) {
  // Different paths store the *same* expression: the analyzer may
  // still resolve it (Expr::Equals fold).
  ProgramBuilder b("same-defs");
  b.SetValueSchema(SimpleSchema());
  auto& m = b.Map();
  int x = m.NewLocal();
  m.LoadParam(1).GetField("b").LoadI64(0).CmpGt().JmpIfFalse("else");
  m.LoadParam(1).GetField("b").StoreLocal(x);
  m.Jmp("join");
  m.Label("else");
  m.LoadParam(1).GetField("b").StoreLocal(x);
  m.Label("join");
  m.LoadLocal(x).LoadI64(5).CmpGt().JmpIfFalse("end");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  Recovered r(b.Build());
  int branch = r.FindPc(Opcode::kJmpIfFalse, 1);
  ExprRef cond = r.recovery.BranchCondition(branch);
  std::string why;
  EXPECT_TRUE(IsFunctional(cond, &why)) << why;
  EXPECT_EQ(cond->ToString(), "(param1.field[1] cmp_gt i64:5)");
}

TEST(ExprRecoveryTest, LoopCarriedValueIsUnknown) {
  Recovered r(workloads::Benchmark4UdfAggregation());
  // The loop-counter comparison i >= n involves loop-carried defs.
  int branch = r.FindPc(Opcode::kJmpIfTrue);
  ASSERT_GE(branch, 0);
  ExprRef cond = r.recovery.BranchCondition(branch);
  std::string why;
  EXPECT_FALSE(IsFunctional(cond, &why));
}

TEST(ExprTest, EqualsIsStructural) {
  ExprRef a = Expr::MakeOp(
      Opcode::kCmpGt,
      {Expr::MakeField(Expr::MakeParam(1, 0), 1, 1),
       Expr::MakeConst(Value::I64(5), 2)},
      3);
  ExprRef b = Expr::MakeOp(
      Opcode::kCmpGt,
      {Expr::MakeField(Expr::MakeParam(1, 9), 1, 8),
       Expr::MakeConst(Value::I64(5), 7)},
      6);
  EXPECT_TRUE(a->Equals(*b));  // origin pcs differ, structure equal
  ExprRef c = Expr::MakeOp(
      Opcode::kCmpGt,
      {Expr::MakeField(Expr::MakeParam(1, 0), 2, 1),
       Expr::MakeConst(Value::I64(5), 2)},
      3);
  EXPECT_FALSE(a->Equals(*c));  // different field
  ExprRef u = Expr::MakeUnknown(0);
  EXPECT_FALSE(u->Equals(*u));  // unknowns never equal
}

TEST(ExprTest, CollectUsedFields) {
  ExprRef field1 = Expr::MakeField(Expr::MakeParam(1, 0), 1, 1);
  ExprRef expr = Expr::MakeOp(
      Opcode::kAdd,
      {field1, Expr::MakeField(Expr::MakeParam(1, 0), 0, 2)},
      3);
  std::vector<bool> used(3, false);
  EXPECT_TRUE(CollectUsedFields(expr, &used));
  EXPECT_TRUE(used[0]);
  EXPECT_TRUE(used[1]);
  EXPECT_FALSE(used[2]);

  // Whole-record escape defeats field-level tracking.
  std::vector<bool> used2(3, false);
  EXPECT_FALSE(CollectUsedFields(Expr::MakeParam(1, 0), &used2));
}

// ---------------- path enumeration ----------------

TEST(PathsTest, ExampleHasOnePathToEmit) {
  Program p = workloads::ExampleRankFilter(1);
  Cfg cfg = Cfg::Build(p.map_fn);
  int emit_block = -1;
  for (int pc = 0; pc < static_cast<int>(p.map_fn.code.size()); ++pc) {
    if (p.map_fn.code[pc].op == Opcode::kEmit) emit_block = cfg.BlockOf(pc);
  }
  ASSERT_OK_AND_ASSIGN(auto paths, EnumeratePathsTo(cfg, emit_block));
  ASSERT_EQ(paths.size(), 1u);
  ASSERT_EQ(paths[0].conditions.size(), 1u);
  EXPECT_TRUE(paths[0].conditions[0].polarity);
}

TEST(PathsTest, DisjunctionYieldsTwoPaths) {
  Program p = workloads::Figure2Unsafe(1);  // a || b guard
  Cfg cfg = Cfg::Build(p.map_fn);
  int emit_block = -1;
  for (int pc = 0; pc < static_cast<int>(p.map_fn.code.size()); ++pc) {
    if (p.map_fn.code[pc].op == Opcode::kEmit) emit_block = cfg.BlockOf(pc);
  }
  ASSERT_OK_AND_ASSIGN(auto paths, EnumeratePathsTo(cfg, emit_block));
  ASSERT_EQ(paths.size(), 2u);
  // One path: first condition true. Other: first false, second true.
  EXPECT_EQ(paths[0].conditions.size() + paths[1].conditions.size(), 3u);
}

TEST(PathsTest, CyclesAreRejected) {
  Program p = workloads::Benchmark4UdfAggregation();
  Cfg cfg = Cfg::Build(p.map_fn);
  int emit_block = -1;
  for (int pc = 0; pc < static_cast<int>(p.map_fn.code.size()); ++pc) {
    if (p.map_fn.code[pc].op == Opcode::kEmit) emit_block = cfg.BlockOf(pc);
  }
  auto result = EnumeratePathsTo(cfg, emit_block);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotSupported());
}

TEST(PathsTest, PathExplosionIsBounded) {
  // 20 sequential diamonds -> 2^20 paths; must refuse, not hang.
  ProgramBuilder b("explode");
  b.SetValueSchema(SimpleSchema());
  auto& m = b.Map();
  for (int i = 0; i < 20; ++i) {
    std::string label = "skip" + std::to_string(i);
    m.LoadParam(1).GetField("b").LoadI64(i).CmpGt().JmpIfFalse(label);
    m.LoadParam(1).GetField("b").Log();
    m.Label(label);
  }
  m.LoadParam(0).LoadI64(1).Emit().Ret();
  Program p = b.Build();
  Cfg cfg = Cfg::Build(p.map_fn);
  int emit_block = -1;
  for (int pc = 0; pc < static_cast<int>(p.map_fn.code.size()); ++pc) {
    if (p.map_fn.code[pc].op == Opcode::kEmit) emit_block = cfg.BlockOf(pc);
  }
  auto result = EnumeratePathsTo(cfg, emit_block, /*max_paths=*/1000);
  EXPECT_FALSE(result.ok());
}

// ---------------- side effects ----------------

TEST(SideEffectsTest, FindsLogsMemberWritesAndImpureCalls) {
  auto b1 = FindSideEffects(workloads::Benchmark1Selection(1).map_fn);
  EXPECT_TRUE(b1.empty());

  auto fig2 = FindSideEffects(workloads::Figure2Unsafe(1).map_fn);
  ASSERT_EQ(fig2.size(), 1u);
  EXPECT_EQ(fig2[0].kind, SideEffectKind::kMemberWrite);
  EXPECT_TRUE(HasMemberWrites(workloads::Figure2Unsafe(1).map_fn));
  EXPECT_FALSE(HasMemberWrites(workloads::Benchmark1Selection(1).map_fn));

  auto b4 = FindSideEffects(workloads::Benchmark4UdfAggregation().map_fn);
  bool saw_impure = false;
  for (const auto& se : b4) {
    if (se.kind == SideEffectKind::kImpureCall) saw_impure = true;
  }
  EXPECT_TRUE(saw_impure);
}

}  // namespace
}  // namespace manimal::analysis
