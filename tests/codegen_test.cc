// Native codegen tier unit + equivalence tests (src/codegen/,
// docs/mril.md "Native kernels"): the admission gate must reject
// everything it cannot prove with a readable reason, and an admitted
// kernel must be observationally equivalent to the VM on every record
// — including the awkward ones: null and missing fields, strings on
// the inline-storage boundary, projected-away (remapped) fields,
// always-true/always-false selections, records that fail to decode,
// and records whose evaluation faults (where the kernel must bail out
// and the VM replay must reproduce the error byte-for-byte).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "codegen/dlopen_kernel.h"
#include "codegen/kernel.h"
#include "codegen/shape.h"
#include "common/env.h"
#include "common/strings.h"
#include "mril/builder.h"
#include "mril/verifier.h"
#include "mril/vm.h"
#include "serde/value.h"
#include "tests/test_util.h"
#include "workloads/schemas.h"

namespace manimal {
namespace {

using codegen::CompileKernel;
using codegen::CompileOptions;
using codegen::ExtractShape;
using codegen::KernelOutcome;
using codegen::KernelScratch;
using codegen::NativeKernel;
using codegen::RelationalShape;
using mril::FunctionBuilder;
using mril::ProgramBuilder;

// ---------------------------------------------------------------
// Equivalence harness: the kernel with the engine's bailout-replay
// contract applied must match a pure VM run on emits and statuses.

struct Trace {
  std::vector<std::string> emits;
  std::vector<std::string> statuses;
  int bailouts = 0;  // kernel leg only
};

Trace RunVm(const mril::Program& program,
            const std::vector<Value>& records,
            const std::vector<int>& field_remap = {}) {
  Trace trace;
  mril::VmOptions options;
  options.field_remap = field_remap;
  mril::VmInstance vm(&program, options);
  vm.set_emit_sink([&](const Value& k, const Value& v) {
    trace.emits.push_back(k.ToString() + " -> " + v.ToString());
    return Status::OK();
  });
  for (size_t i = 0; i < records.size(); ++i) {
    Status s =
        vm.InvokeMap(Value::I64(static_cast<int64_t>(i)), records[i]);
    trace.statuses.push_back(s.ToString());
  }
  return trace;
}

Trace RunKernel(const mril::Program& program,
                const std::vector<Value>& records,
                const std::shared_ptr<const NativeKernel>& kernel,
                const std::vector<int>& field_remap = {}) {
  Trace trace;
  mril::VmOptions options;
  options.field_remap = field_remap;
  mril::VmInstance vm(&program, options);
  vm.set_emit_sink([&](const Value& k, const Value& v) {
    trace.emits.push_back(k.ToString() + " -> " + v.ToString());
    return Status::OK();
  });
  KernelScratch scratch;
  for (size_t i = 0; i < records.size(); ++i) {
    const Value key = Value::I64(static_cast<int64_t>(i));
    Value out_key, out_value;
    KernelOutcome outcome =
        kernel->Run(key, records[i], &scratch, &out_key, &out_value);
    if (outcome == KernelOutcome::kBailout) {
      ++trace.bailouts;
      trace.statuses.push_back(vm.InvokeMap(key, records[i]).ToString());
      continue;
    }
    if (outcome == KernelOutcome::kEmit) {
      trace.emits.push_back(out_key.ToString() + " -> " +
                            out_value.ToString());
    }
    trace.statuses.push_back(Status::OK().ToString());
  }
  return trace;
}

// Compiles `program` (closure engine) and checks kernel-vs-VM
// equivalence over `records`; returns the kernel trace so callers can
// additionally assert on bailout counts.
Trace ExpectKernelMatchesVm(const mril::Program& program,
                            const std::vector<Value>& records,
                            const std::vector<int>& field_remap = {}) {
  CompileOptions options;
  options.field_remap = field_remap;
  Result<std::shared_ptr<const NativeKernel>> kernel =
      CompileKernel(program, options);
  EXPECT_OK(kernel.status());
  if (!kernel.ok()) return Trace{};
  Trace vm = RunVm(program, records, field_remap);
  Trace native = RunKernel(program, records, *kernel, field_remap);
  EXPECT_EQ(vm.emits, native.emits);
  EXPECT_EQ(vm.statuses, native.statuses);
  return native;
}

// map: if (rank >= threshold) emit(url, rank)
mril::Program SelectProjectProgram(int64_t threshold) {
  ProgramBuilder b("sel-proj");
  b.SetKeyType(FieldType::kStr);
  b.SetValueSchema(workloads::WebPagesSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(threshold).CmpGe();
  m.JmpIfFalse("end");
  m.LoadParam(1).GetField("url");
  m.LoadParam(1).GetField("rank");
  m.Emit();
  m.Label("end").Ret();
  return b.Build();
}

Value WebPage(std::string url, int64_t rank, std::string content) {
  return Value::List({Value::Str(std::move(url)), Value::I64(rank),
                      Value::Str(std::move(content))});
}

// ---------------------------------------------------------------
// Admission gate.

TEST(ShapeAdmission, SelectionProjectionIsAdmitted) {
  mril::Program program = SelectProjectProgram(10);
  ASSERT_OK(mril::VerifyProgram(program));
  ASSERT_OK_AND_ASSIGN(RelationalShape shape, ExtractShape(program));
  EXPECT_FALSE(shape.always_emits);
  EXPECT_GE(shape.emit_pc, 0);
  EXPECT_NE(shape.Describe(), "");
}

TEST(ShapeAdmission, SideEffectsAreRejectedWithReadableReason) {
  ProgramBuilder b("logger");
  b.SetKeyType(FieldType::kStr);
  b.SetValueSchema(workloads::WebPagesSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("url").Log();
  m.LoadParam(1).GetField("url").LoadI64(1).Emit().Ret();
  mril::Program program = b.Build();
  Result<RelationalShape> shape = ExtractShape(program);
  ASSERT_FALSE(shape.ok());
  EXPECT_EQ(shape.status().code(), StatusCode::kNotSupported);
  EXPECT_NE(shape.status().message().find("log"), std::string::npos)
      << shape.status().ToString();
}

TEST(ShapeAdmission, MemberStateIsRejected) {
  ProgramBuilder b("stateful");
  b.SetKeyType(FieldType::kStr);
  b.SetValueSchema(workloads::WebPagesSchema());
  b.AddMember("seen", Value::I64(0));
  FunctionBuilder& m = b.Map();
  m.LoadMember("seen").LoadI64(1).Add().StoreMember("seen");
  m.LoadParam(1).GetField("url").LoadI64(1).Emit().Ret();
  Result<RelationalShape> shape = ExtractShape(b.Build());
  ASSERT_FALSE(shape.ok());
  EXPECT_EQ(shape.status().code(), StatusCode::kNotSupported);
}

TEST(ShapeAdmission, LoopsAreRejected) {
  ProgramBuilder b("loopy");
  b.SetKeyType(FieldType::kI64);
  b.SetValueSchema(workloads::WebPagesSchema());
  FunctionBuilder& m = b.Map();
  int i = m.NewLocal();
  m.LoadI64(0).StoreLocal(i);
  m.Label("loop");
  m.LoadLocal(i).LoadI64(3).CmpGe().JmpIfTrue("done");
  m.LoadLocal(i).LoadI64(1).Add().StoreLocal(i);
  m.Jmp("loop");
  m.Label("done");
  m.LoadLocal(i).LoadI64(1).Emit().Ret();
  Result<RelationalShape> shape = ExtractShape(b.Build());
  ASSERT_FALSE(shape.ok());
  EXPECT_EQ(shape.status().code(), StatusCode::kNotSupported);
}

TEST(ShapeAdmission, MultipleEmitSitesAreRejected) {
  ProgramBuilder b("two-emits");
  b.SetKeyType(FieldType::kStr);
  b.SetValueSchema(workloads::WebPagesSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(5).CmpGe();
  m.JmpIfFalse("other");
  m.LoadParam(1).GetField("url").LoadI64(1).Emit().Ret();
  m.Label("other");
  m.LoadParam(1).GetField("url").LoadI64(2).Emit().Ret();
  Result<RelationalShape> shape = ExtractShape(b.Build());
  ASSERT_FALSE(shape.ok());
  EXPECT_EQ(shape.status().code(), StatusCode::kNotSupported);
}

TEST(ShapeAdmission, OpaqueValueIsRejected) {
  ProgramBuilder b("opaque");
  b.SetKeyType(FieldType::kI64);
  b.SetValueSchema(workloads::WebPagesSchema());
  b.SetOpaqueValue();
  FunctionBuilder& m = b.Map();
  m.LoadParam(0).LoadI64(1).Emit().Ret();
  Result<RelationalShape> shape = ExtractShape(b.Build());
  ASSERT_FALSE(shape.ok());
  EXPECT_EQ(shape.status().code(), StatusCode::kNotSupported);
}

// ---------------------------------------------------------------
// Equivalence edge cases.

TEST(KernelEquivalence, NullFieldsBailAndReplayIdentically) {
  mril::Program program = SelectProjectProgram(10);
  std::vector<Value> records = {
      WebPage("http://a", 50, "x"),
      // Null where the predicate field should be: the typed
      // comparator cannot prove VM behavior, so the kernel must bail
      // and the replay must reproduce whatever the VM does.
      Value::List({Value::Str("http://b"), Value::Null(),
                   Value::Str("y")}),
      // Null in a projected (emitted) field.
      Value::List({Value::Null(), Value::I64(99), Value::Str("z")}),
      WebPage("http://c", 3, "w"),
  };
  Trace native = ExpectKernelMatchesVm(program, records);
  EXPECT_GE(native.bailouts, 1);
}

TEST(KernelEquivalence, MissingFieldsMatchVmErrors) {
  mril::Program program = SelectProjectProgram(10);
  std::vector<Value> records = {
      WebPage("http://a", 50, "x"),
      Value::List({Value::Str("http://short")}),  // no rank field
      Value::List({}),                            // empty record
      WebPage("http://b", 11, "y"),
  };
  ExpectKernelMatchesVm(program, records);
}

TEST(KernelEquivalence, RecordsFailingDecodeMatchVmErrors) {
  mril::Program program = SelectProjectProgram(10);
  // Non-list map values: a record that failed zero-copy decode
  // surfaces to the UDF as whatever the split produced; the kernel
  // must not guess.
  std::vector<Value> records = {
      Value::I64(7),
      Value::Str("not a record at all"),
      Value::Null(),
      WebPage("http://ok", 42, "x"),
  };
  Trace native = ExpectKernelMatchesVm(program, records);
  EXPECT_GE(native.bailouts, 3);
}

TEST(KernelEquivalence, InlineStorageBoundaryStrings) {
  // kInlineStrCap-byte strings are stored inline; one byte longer
  // switches storage class (owned/borrowed). Comparison and emission
  // must be storage-class-blind in both tiers.
  ProgramBuilder b("sso");
  b.SetKeyType(FieldType::kStr);
  b.SetValueSchema(workloads::WebPagesSchema());
  FunctionBuilder& m = b.Map();
  const std::string at_cap(kInlineStrCap, 'u');
  m.LoadParam(1).GetField("url").LoadStr(at_cap).CmpEq();
  m.JmpIfFalse("end");
  m.LoadParam(1).GetField("url");
  m.LoadParam(1).GetField("content");
  m.Emit();
  m.Label("end").Ret();
  mril::Program program = b.Build();

  const std::string over_cap(kInlineStrCap + 1, 'u');
  const std::string under_cap(kInlineStrCap - 1, 'u');
  std::string borrowed_backing = at_cap;  // outlives every Run()
  std::vector<Value> records = {
      Value::List({Value::Str(at_cap), Value::I64(1),
                   Value::Str(std::string(kInlineStrCap, 'c'))}),
      Value::List({Value::Str(over_cap), Value::I64(2),
                   Value::Str(std::string(kInlineStrCap + 1, 'c'))}),
      Value::List({Value::Str(under_cap), Value::I64(3),
                   Value::Str("short")}),
      Value::List({Value::Borrowed(borrowed_backing), Value::I64(4),
                   Value::Borrowed(borrowed_backing)}),
  };
  Trace vm = RunVm(program, records);
  // Exactly the at-cap and borrowed-at-cap records match.
  ASSERT_EQ(vm.emits.size(), 2u);
  ExpectKernelMatchesVm(program, records);
}

TEST(KernelEquivalence, AlwaysTrueSelectionEmitsEveryRecord) {
  // No predicate at all: the canonical always-true shape.
  ProgramBuilder b("always");
  b.SetKeyType(FieldType::kStr);
  b.SetValueSchema(workloads::WebPagesSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("url");
  m.LoadParam(1).GetField("rank");
  m.Emit().Ret();
  mril::Program program = b.Build();
  ASSERT_OK_AND_ASSIGN(RelationalShape shape, ExtractShape(program));
  EXPECT_TRUE(shape.always_emits);

  std::vector<Value> records = {WebPage("http://a", 1, "x"),
                                WebPage("http://b", 2, "y")};
  Trace native = ExpectKernelMatchesVm(program, records);
  EXPECT_EQ(native.emits.size(), 2u);
}

TEST(KernelEquivalence, AlwaysFalseSelectionNeverEmits) {
  // The map provably never emits (FALSE formula, no emit site).
  ProgramBuilder b("never");
  b.SetKeyType(FieldType::kI64);
  b.SetValueSchema(workloads::WebPagesSchema());
  b.Map().Ret();
  mril::Program program = b.Build();
  ASSERT_OK_AND_ASSIGN(RelationalShape shape, ExtractShape(program));
  EXPECT_EQ(shape.emit_pc, -1);

  std::vector<Value> records = {WebPage("http://a", 1, "x"),
                                WebPage("http://b", 100, "y")};
  Trace native = ExpectKernelMatchesVm(program, records);
  EXPECT_TRUE(native.emits.empty());
  EXPECT_EQ(native.bailouts, 0);
}

TEST(KernelEquivalence, ContradictorySelectionNeverEmits) {
  // rank < 5 AND rank > 10: term-level always-false — no interval
  // canonicalization may turn this into an emit.
  ProgramBuilder b("contradiction");
  b.SetKeyType(FieldType::kI64);
  b.SetValueSchema(workloads::WebPagesSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(5).CmpLt().JmpIfFalse("end");
  m.LoadParam(1).GetField("rank").LoadI64(10).CmpGt().JmpIfFalse("end");
  m.LoadParam(1).GetField("rank").LoadI64(1).Emit();
  m.Label("end").Ret();
  mril::Program program = b.Build();

  std::vector<Value> records;
  for (int64_t r = 0; r < 20; ++r) {
    records.push_back(WebPage(StrPrintf("http://%d", int(r)), r, "c"));
  }
  Trace native = ExpectKernelMatchesVm(program, records);
  EXPECT_TRUE(native.emits.empty());
}

TEST(KernelEquivalence, EmptyProjectionViaRemappedFields) {
  // Column-group plans hand the kernel a field remap. A projected-away
  // field reads as null at runtime (the linked VM's kGetFieldNull);
  // the kernel must observe the same null, not the original value.
  ProgramBuilder b("remapped");
  b.SetKeyType(FieldType::kI64);
  b.SetValueSchema(workloads::WebPagesSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(10).CmpGe().JmpIfFalse("end");
  m.LoadParam(1).GetField("rank");
  m.LoadParam(1).GetField("url");  // projected away below
  m.Emit();
  m.Label("end").Ret();
  mril::Program program = b.Build();

  // Runtime records carry only [rank]; url and content were dropped.
  const std::vector<int> remap = {-1, 0, -1};
  std::vector<Value> records = {
      Value::List({Value::I64(50)}),
      Value::List({Value::I64(3)}),
      Value::List({Value::I64(10)}),
  };
  Trace native = ExpectKernelMatchesVm(program, records, remap);
  EXPECT_EQ(native.emits.size(), 2u);
  // The projected-away operand really surfaced as null.
  EXPECT_NE(native.emits[0].find("null"), std::string::npos)
      << native.emits[0];
}

TEST(KernelEquivalence, FaultingArithmeticBailsToVmError) {
  // key = rank % rank: faults exactly when rank == 0. The term is
  // non-total, so the kernel evaluates it up front on every record
  // and must bail (never emit, never swallow) where the VM errors.
  ProgramBuilder b("modzero");
  b.SetKeyType(FieldType::kI64);
  b.SetValueSchema(workloads::WebPagesSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("rank");
  m.LoadParam(1).GetField("rank");
  m.Mod();
  m.LoadI64(1).Emit().Ret();
  mril::Program program = b.Build();

  std::vector<Value> records = {
      WebPage("http://a", 7, "x"),
      WebPage("http://b", 0, "boom"),
      WebPage("http://c", 3, "y"),
  };
  Trace native = ExpectKernelMatchesVm(program, records);
  EXPECT_GE(native.bailouts, 1);
  // The VM error really surfaced through the replay.
  bool saw_error = false;
  for (const std::string& s : native.statuses) {
    if (s.find("OK") == std::string::npos) saw_error = true;
  }
  EXPECT_TRUE(saw_error);
}

TEST(KernelEquivalence, SelectivityOrderingDoesNotChangeResults) {
  // Two total terms with explicit selectivity hints, swapped between
  // compiles: short-circuit order is an optimization, never a
  // semantics change.
  ProgramBuilder b("ordered");
  b.SetKeyType(FieldType::kI64);
  b.SetValueSchema(workloads::WebPagesSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(10).CmpGe().JmpIfFalse("end");
  m.LoadParam(1).GetField("rank").LoadI64(90).CmpLt().JmpIfFalse("end");
  m.LoadParam(1).GetField("rank").LoadI64(1).Emit();
  m.Label("end").Ret();
  mril::Program program = b.Build();
  ASSERT_OK_AND_ASSIGN(RelationalShape shape, ExtractShape(program));
  ASSERT_EQ(shape.formula.disjuncts.size(), 1u);
  ASSERT_EQ(shape.formula.disjuncts[0].terms.size(), 2u);
  const std::string t0 = shape.formula.disjuncts[0].terms[0].ToString();
  const std::string t1 = shape.formula.disjuncts[0].terms[1].ToString();

  std::vector<Value> records;
  for (int64_t r = 0; r < 100; r += 7) {
    records.push_back(WebPage(StrPrintf("http://%d", int(r)), r, "c"));
  }
  Trace vm = RunVm(program, records);
  for (bool swap : {false, true}) {
    CompileOptions options;
    options.term_selectivity = {{t0, swap ? 0.9 : 0.1},
                                {t1, swap ? 0.1 : 0.9}};
    ASSERT_OK_AND_ASSIGN(std::shared_ptr<const NativeKernel> kernel,
                         CompileKernel(program, options));
    Trace native = RunKernel(program, records, kernel);
    EXPECT_EQ(vm.emits, native.emits);
    EXPECT_EQ(vm.statuses, native.statuses);
    EXPECT_EQ(native.bailouts, 0);
  }
}

// ---------------------------------------------------------------
// Emitted (dlopen) engine.

TEST(EmittedEngine, NarrowFamilyCompilesAndAgrees) {
  if (!codegen::EmittedKernelAvailable()) {
    GTEST_SKIP() << "MANIMAL_CODEGEN_DLOPEN=OFF";
  }
  ProgramBuilder b("narrow");
  b.SetKeyType(FieldType::kI64);
  b.SetValueSchema(workloads::WebPagesSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(25).CmpGe().JmpIfFalse("end");
  m.LoadParam(1).GetField("rank");
  m.LoadParam(1);  // whole-record value
  m.Emit();
  m.Label("end").Ret();
  mril::Program program = b.Build();

  CompileOptions options;
  options.engine = CompileOptions::Engine::kEmitted;
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const NativeKernel> kernel,
                       CompileKernel(program, options));
  EXPECT_NE(kernel->Describe().find("emitted"), std::string::npos);

  std::vector<Value> records = {
      WebPage("http://a", 30, "x"),
      WebPage("http://b", 10, "y"),
      WebPage("http://c", 25, "z"),
      Value::List({Value::Str("http://short")}),  // bails
  };
  Trace vm = RunVm(program, records);
  Trace native = RunKernel(program, records, kernel);
  EXPECT_EQ(vm.emits, native.emits);
  EXPECT_EQ(vm.statuses, native.statuses);
}

TEST(EmittedEngine, WideShapesReportNotSupported) {
  if (!codegen::EmittedKernelAvailable()) {
    GTEST_SKIP() << "MANIMAL_CODEGEN_DLOPEN=OFF";
  }
  // String predicate: outside the emitted family; the engine must say
  // so rather than produce a wrong kernel.
  ProgramBuilder b("wide");
  b.SetKeyType(FieldType::kStr);
  b.SetValueSchema(workloads::WebPagesSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("url").LoadStr("x").Call("str.contains");
  m.JmpIfFalse("end");
  m.LoadParam(1).GetField("url").LoadI64(1).Emit();
  m.Label("end").Ret();
  CompileOptions options;
  options.engine = CompileOptions::Engine::kEmitted;
  Result<std::shared_ptr<const NativeKernel>> kernel =
      CompileKernel(b.Build(), options);
  ASSERT_FALSE(kernel.ok());
  EXPECT_EQ(kernel.status().code(), StatusCode::kNotSupported);
}

}  // namespace
}  // namespace manimal
