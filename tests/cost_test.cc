// Tests for cost-based planning: selectivity estimation from B+Tree
// fan-out, per-candidate pricing, and the planner declining indexes
// that would read more than the scan — including end-to-end
// equivalence whichever mode picks the plan.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "analyzer/analyzer.h"
#include "columnar/seqfile.h"
#include "common/faulty_env.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "index/btree.h"
#include "optimizer/cost.h"
#include "optimizer/optimizer.h"
#include "serde/key_codec.h"
#include "stats/stats.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"

namespace manimal::optimizer {
namespace {

using testing::TempDir;

std::string Key(int64_t v) {
  std::string out;
  EXPECT_OK(EncodeOrderedKey(Value::I64(v), &out));
  return out;
}

TEST(CostTest, RangeFractionFromFanout) {
  TempDir dir("cost-frac");
  std::string path = dir.file("t.idx");
  {
    index::BTreeBuilder::Options opts;
    opts.target_node_bytes = 512;  // many root children
    ASSERT_OK_AND_ASSIGN(auto builder,
                         index::BTreeBuilder::Create(path, opts));
    for (int i = 0; i < 10000; ++i) {
      ASSERT_OK(builder->Add(Key(i), "p"));
    }
    ASSERT_OK(builder->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, index::BTreeReader::Open(path));

  // Uniform keys 0..9999: the estimate should track the true fraction
  // within the fan-out granularity.
  struct Case {
    int64_t lo, hi;
    double expected;
  };
  for (const Case& c : {Case{0, 9999, 1.0}, Case{0, 4999, 0.5},
                        Case{9000, 9999, 0.1}, Case{5000, 5999, 0.1}}) {
    ASSERT_OK_AND_ASSIGN(double fraction,
                         reader->EstimateRangeFraction(Key(c.lo),
                                                       Key(c.hi)));
    EXPECT_NEAR(fraction, c.expected, 0.12)
        << "[" << c.lo << "," << c.hi << "]";
  }
  // Unbounded ranges.
  ASSERT_OK_AND_ASSIGN(double all,
                       reader->EstimateRangeFraction(std::nullopt,
                                                     std::nullopt));
  EXPECT_DOUBLE_EQ(all, 1.0);
  // Out-of-range lower bound: only the last root child can be counted
  // (its upper extent is unknown to the estimator), so the estimate is
  // small but conservatively nonzero.
  ASSERT_OK_AND_ASSIGN(double none, reader->EstimateRangeFraction(
                                        Key(20000), std::nullopt));
  EXPECT_LT(none, 0.2);
}

TEST(CostTest, SingleLeafIsExact) {
  TempDir dir("cost-leaf");
  std::string path = dir.file("t.idx");
  {
    ASSERT_OK_AND_ASSIGN(auto builder, index::BTreeBuilder::Create(path));
    for (int i = 0; i < 20; ++i) ASSERT_OK(builder->Add(Key(i), "p"));
    ASSERT_OK(builder->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, index::BTreeReader::Open(path));
  ASSERT_OK_AND_ASSIGN(double fraction,
                       reader->EstimateRangeFraction(Key(5), Key(9)));
  EXPECT_DOUBLE_EQ(fraction, 0.25);  // 5 of 20
}

class CostPlanningTest : public ::testing::Test {
 protected:
  CostPlanningTest() : dir_("cost-plan") {
    workloads::WebPagesOptions gen;
    gen.num_pages = 8000;
    gen.content_len = 96;
    gen.rank_range = 1000;
    EXPECT_TRUE(
        workloads::GenerateWebPages(dir_.file("pages.msq"), gen).ok());
  }

  std::unique_ptr<core::ManimalSystem> OpenSystem(bool cost_based) {
    core::ManimalSystem::Options options;
    options.workspace_dir =
        dir_.file(cost_based ? "ws-cost" : "ws-rule");
    options.simulated_startup_seconds = 0;
    options.cost_based_optimizer = cost_based;
    auto system_or = core::ManimalSystem::Open(options);
    EXPECT_TRUE(system_or.ok());
    return std::move(system_or).value();
  }

  // Builds only the locator-btree artifact for `program`.
  void BuildLocatorOnly(core::ManimalSystem* system,
                        const mril::Program& program) {
    auto report_or = analyzer::Analyze(program);
    ASSERT_TRUE(report_or.ok());
    auto specs = analyzer::SynthesizeIndexPrograms(program, *report_or);
    const analyzer::IndexGenProgram* locator = nullptr;
    for (const auto& s : specs) {
      if (s.btree && !s.clustered && !s.projection) locator = &s;
    }
    ASSERT_NE(locator, nullptr);
    ASSERT_OK(
        system->BuildIndex(*locator, dir_.file("pages.msq")).status());
  }

  TempDir dir_;
};

TEST_F(CostPlanningTest, DeclinesIndexWorseThanScan) {
  // 80% selectivity: a locator index reads the index PLUS nearly every
  // base block — strictly worse than scanning. Rule-based uses it
  // anyway; cost-based declines.
  mril::Program program = workloads::SelectionCountQuery(200);

  auto rule_system = OpenSystem(false);
  BuildLocatorOnly(rule_system.get(), program);
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir_.file("pages.msq");
  job.output_path = dir_.file("rule.prs");
  ASSERT_OK_AND_ASSIGN(auto rule, rule_system->Submit(job));
  EXPECT_TRUE(rule.plan.optimized);
  EXPECT_NE(rule.plan.explanation.find("btree"), std::string::npos);

  auto cost_system = OpenSystem(true);
  BuildLocatorOnly(cost_system.get(), program);
  job.output_path = dir_.file("cost.prs");
  ASSERT_OK_AND_ASSIGN(auto cost, cost_system->Submit(job));
  EXPECT_NE(cost.plan.explanation.find("no cataloged artifact beats"),
            std::string::npos)
      << cost.plan.explanation;
  // Cost-based read fewer or equal bytes than the misused index.
  EXPECT_LE(cost.job.counters.input_bytes,
            rule.job.counters.input_bytes);

  ASSERT_OK_AND_ASSIGN(auto a,
                       exec::ReadCanonicalPairs(dir_.file("rule.prs")));
  ASSERT_OK_AND_ASSIGN(auto b,
                       exec::ReadCanonicalPairs(dir_.file("cost.prs")));
  EXPECT_EQ(a, b);
}

TEST_F(CostPlanningTest, PicksIndexAtNeedleSelectivity) {
  // ~0.1% selectivity: even the byte-conservative cost model (every
  // match may decode a whole base block) prices the index far below
  // the scan.
  mril::Program program = workloads::SelectionCountQuery(999);
  auto cost_system = OpenSystem(true);
  BuildLocatorOnly(cost_system.get(), program);
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir_.file("pages.msq");
  job.output_path = dir_.file("needle.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, cost_system->Submit(job));
  EXPECT_TRUE(outcome.plan.optimized) << outcome.plan.explanation;
  EXPECT_NE(outcome.plan.explanation.find("cost-based choice"),
            std::string::npos);
  EXPECT_LT(outcome.job.counters.map_invocations, 400u);
}

TEST_F(CostPlanningTest, ChoosesCheapestAmongSeveral) {
  // Build locator btree AND clustered btree AND projection; at 50%
  // selectivity the projection artifact (tiny rows, full scan) should
  // win on bytes.
  mril::Program program = workloads::SelectionCountQuery(500);
  auto system = OpenSystem(true);
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  for (const auto& s : specs) {
    ASSERT_OK(system->BuildIndex(s, dir_.file("pages.msq")).status());
  }
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir_.file("pages.msq");
  job.output_path = dir_.file("multi.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));
  ASSERT_TRUE(outcome.plan.optimized);
  // Whatever won, its realized bytes must be below the raw input size.
  ASSERT_OK_AND_ASSIGN(uint64_t input_bytes,
                       GetFileSize(dir_.file("pages.msq")));
  EXPECT_LT(outcome.job.counters.input_bytes, input_bytes / 2);

  // And the output still matches the baseline.
  job.output_path = dir_.file("base.prs");
  ASSERT_OK_AND_ASSIGN(auto baseline, system->RunBaseline(job));
  (void)baseline;
  ASSERT_OK_AND_ASSIGN(auto a,
                       exec::ReadCanonicalPairs(dir_.file("multi.prs")));
  ASSERT_OK_AND_ASSIGN(auto b,
                       exec::ReadCanonicalPairs(dir_.file("base.prs")));
  EXPECT_EQ(a, b);
}

TEST(CostTest, BaselineCostIsInputSize) {
  CandidateCost cost = BaselineCost(12345);
  EXPECT_DOUBLE_EQ(cost.bytes, 12345.0);
  EXPECT_DOUBLE_EQ(cost.selectivity, 1.0);
}

analyzer::KeyInterval Iv(std::optional<int64_t> lo, bool lo_inclusive,
                         std::optional<int64_t> hi, bool hi_inclusive) {
  analyzer::KeyInterval iv;
  if (lo.has_value()) iv.lo = Value::I64(*lo);
  iv.lo_inclusive = lo_inclusive;
  if (hi.has_value()) iv.hi = Value::I64(*hi);
  iv.hi_inclusive = hi_inclusive;
  return iv;
}

TEST(CanonicalizeIntervalsTest, DropsEmptyAndMergesOverlap) {
  auto merged = CanonicalizeIntervals({
      Iv(9, true, 3, true),    // inverted bounds: empty
      Iv(7, true, 7, false),   // point without both-inclusive: empty
      Iv(5, true, 20, true),   // deliberately out of order
      Iv(0, true, 10, true),
      Iv(15, true, 30, true),
  });
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].lo->Compare(Value::I64(0)), 0);
  EXPECT_EQ(merged[0].hi->Compare(Value::I64(30)), 0);
  EXPECT_TRUE(merged[0].lo_inclusive);
  EXPECT_TRUE(merged[0].hi_inclusive);
}

TEST(CanonicalizeIntervalsTest, TouchingBoundsMergeUnlessBothExclude) {
  // [0,5] ∪ (5,10] covers every point of [0,10] — one interval.
  auto touching =
      CanonicalizeIntervals({Iv(0, true, 5, true), Iv(5, false, 10, true)});
  ASSERT_EQ(touching.size(), 1u);
  EXPECT_EQ(touching[0].hi->Compare(Value::I64(10)), 0);
  // (0,5) ∪ (5,10) genuinely excludes 5 — must stay two intervals.
  auto open = CanonicalizeIntervals(
      {Iv(0, false, 5, false), Iv(5, false, 10, false)});
  ASSERT_EQ(open.size(), 2u);
  EXPECT_FALSE(open[0].Contains(Value::I64(5)));
  EXPECT_FALSE(open[1].Contains(Value::I64(5)));
}

TEST(CanonicalizeIntervalsTest, UnboundedSidesAbsorb) {
  // (-inf,5] ∪ [3,+inf) is the whole domain.
  auto merged = CanonicalizeIntervals(
      {Iv(3, true, std::nullopt, true), Iv(std::nullopt, true, 5, true)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_FALSE(merged[0].lo.has_value());
  EXPECT_FALSE(merged[0].hi.has_value());
  // A containing interval swallows a contained one without shrinking.
  auto contained =
      CanonicalizeIntervals({Iv(10, true, 20, true), Iv(0, true, 100, true)});
  ASSERT_EQ(contained.size(), 1u);
  EXPECT_EQ(contained[0].lo->Compare(Value::I64(0)), 0);
  EXPECT_EQ(contained[0].hi->Compare(Value::I64(100)), 0);
}

// Builds a 10000-key uniform tree with a wide root (many children).
std::unique_ptr<index::BTreeReader> UniformTree(const std::string& path) {
  index::BTreeBuilder::Options opts;
  opts.target_node_bytes = 512;
  auto builder_or = index::BTreeBuilder::Create(path, opts);
  EXPECT_TRUE(builder_or.ok());
  auto builder = std::move(builder_or).value();
  for (int i = 0; i < 10000; ++i) {
    EXPECT_OK(builder->Add(Key(i), "p"));
  }
  EXPECT_TRUE(builder->Finish().ok());
  auto reader_or = index::BTreeReader::Open(path);
  EXPECT_TRUE(reader_or.ok());
  return std::move(reader_or).value();
}

stats::ColumnStats UniformColumn() {
  stats::ColumnStatsCollector collector;
  for (int i = 0; i < 10000; ++i) collector.Add(Key(i));
  return collector.Finish();
}

TEST(CostTest, OverlappingIntervalsAreNotDoubleCounted) {
  // Regression: [0,4999] ∪ [2500,5999] covers 60% of the keys; summing
  // the two raw per-interval fractions would claim 85%. The estimator
  // must canonicalize first and price the merged interval once.
  TempDir dir("cost-overlap");
  auto tree = UniformTree(dir.file("t.idx"));
  std::vector<std::pair<std::string, double>> per_interval;
  std::string provenance;
  ASSERT_OK_AND_ASSIGN(
      double sel,
      EstimateSelectivity(tree.get(), nullptr,
                          {Iv(0, true, 4999, true), Iv(2500, true, 5999, true)},
                          &per_interval, &provenance));
  EXPECT_EQ(per_interval.size(), 1u) << "intervals were not merged";
  EXPECT_NEAR(sel, 0.6, 0.12);
  EXPECT_LT(sel, 0.8);
  EXPECT_EQ(provenance, "btree-fanout");
}

TEST(CostTest, SelectivityPrefersHistogramAndFallsBackToFanout) {
  TempDir dir("cost-fallback");
  auto tree = UniformTree(dir.file("t.idx"));
  stats::ColumnStats column = UniformColumn();
  const std::vector<analyzer::KeyInterval> query = {
      Iv(4000, false, std::nullopt, true)};  // key > 4000: 60%

  std::vector<std::pair<std::string, double>> pi;
  std::string provenance;
  ASSERT_OK_AND_ASSIGN(double hist, EstimateSelectivity(nullptr, &column,
                                                        query, &pi,
                                                        &provenance));
  EXPECT_EQ(provenance, "histogram");
  EXPECT_NEAR(hist, 0.6, 0.06);

  // With both available the histogram wins.
  pi.clear();
  ASSERT_OK_AND_ASSIGN(double both, EstimateSelectivity(tree.get(), &column,
                                                        query, &pi,
                                                        &provenance));
  EXPECT_EQ(provenance, "histogram");
  EXPECT_DOUBLE_EQ(both, hist);

  // An unusable (empty) column falls back to the tree's fan-out.
  stats::ColumnStats unusable;
  pi.clear();
  ASSERT_OK_AND_ASSIGN(double fanout,
                       EstimateSelectivity(tree.get(), &unusable, query, &pi,
                                           &provenance));
  EXPECT_EQ(provenance, "btree-fanout");
  EXPECT_NEAR(fanout, 0.6, 0.12);

  // Neither estimator is an error, not a guess.
  pi.clear();
  EXPECT_FALSE(
      EstimateSelectivity(nullptr, nullptr, query, &pi, &provenance).ok());
}

TEST(StatsTest, RoundTripAndEstimates) {
  stats::TableStatsCollector collector;
  stats::ColumnStatsCollector* col = collector.Column("field:1");
  for (int i = 0; i < 10000; ++i) {
    col->Add(Key(i));
    collector.CountRow();
  }
  TempDir dir("stats-rt");
  const std::string path = dir.file("stats.json");
  ASSERT_OK(collector.Finish().SaveTo(path));
  ASSERT_OK_AND_ASSIGN(stats::TableStats loaded,
                       stats::TableStats::Load(path));
  EXPECT_EQ(loaded.row_count, 10000u);
  const stats::ColumnStats* c = loaded.Find("field:1");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->row_count, 10000u);
  EXPECT_NEAR(c->ndv, 10000.0, 2500.0);
  // In-domain range tracks the true fraction within sampling noise.
  EXPECT_NEAR(c->EstimateRangeFraction(Key(0), true, Key(4999), true), 0.5,
              0.06);
  // Out-of-domain range is exactly zero.
  EXPECT_DOUBLE_EQ(
      c->EstimateRangeFraction(Key(20000), true, std::nullopt, true), 0.0);
  // An in-domain point lookup is floored at ~1/NDV, never zero.
  const double point = c->EstimateRangeFraction(Key(7777), true, Key(7777),
                                                true);
  EXPECT_GT(point, 0.0);
  EXPECT_LT(point, 0.01);
}

TEST(CostTest, CanonicalizedDriftBeatsNaiveSummation) {
  // The drift the bugfix removes, measured: on overlapping intervals
  // [0,4999] ∪ [2500,5999] the true matching fraction is 0.6. The old
  // estimator summed raw per-interval fractions (0.5 + 0.35 = 0.85);
  // the canonicalizing estimator prices the merged range once. Its
  // estimated-vs-actual drift must be strictly smaller than the naive
  // sum's on the same query.
  TempDir dir("cost-drift");
  auto tree = UniformTree(dir.file("t.idx"));
  stats::ColumnStats column = UniformColumn();
  const std::vector<analyzer::KeyInterval> query = {
      Iv(0, true, 4999, true), Iv(2500, true, 5999, true)};
  const double truth = 0.6;

  double naive = 0;  // what the pre-fix estimator computed
  for (const analyzer::KeyInterval& iv : query) {
    std::string lo_key, hi_key;
    ASSERT_OK(EncodeOrderedKey(*iv.lo, &lo_key));
    ASSERT_OK(EncodeOrderedKey(*iv.hi, &hi_key));
    naive += column.EstimateRangeFraction(lo_key, iv.lo_inclusive, hi_key,
                                          iv.hi_inclusive);
  }
  std::vector<std::pair<std::string, double>> pi;
  std::string provenance;
  ASSERT_OK_AND_ASSIGN(double canonical,
                       EstimateSelectivity(nullptr, &column, query, &pi,
                                           &provenance));
  EXPECT_NEAR(naive, 0.85, 0.06);
  EXPECT_LT(std::abs(canonical - truth), std::abs(naive - truth));

  // And out past the key domain both estimators now agree on exactly
  // zero — the histogram without touching the tree at all.
  const std::vector<analyzer::KeyInterval> beyond = {
      Iv(20000, true, std::nullopt, true)};
  pi.clear();
  ASSERT_OK_AND_ASSIGN(double hist, EstimateSelectivity(nullptr, &column,
                                                        beyond, &pi,
                                                        &provenance));
  pi.clear();
  ASSERT_OK_AND_ASSIGN(double fanout,
                       EstimateSelectivity(tree.get(), nullptr, beyond, &pi,
                                           &provenance));
  EXPECT_DOUBLE_EQ(hist, 0.0);
  EXPECT_DOUBLE_EQ(fanout, 0.0);
}

TEST_F(CostPlanningTest, StatsRideTheCatalogIntoThePlan) {
  mril::Program program = workloads::SelectionCountQuery(200);
  auto system = OpenSystem(true);
  BuildLocatorOnly(system.get(), program);

  // The build wrote a stats sidecar and the catalog references it.
  auto entries = system->catalog().FindForInput(dir_.file("pages.msq"));
  ASSERT_EQ(entries.size(), 1u);
  ASSERT_FALSE(entries[0].stats_path.empty());
  ASSERT_OK_AND_ASSIGN(stats::TableStats table,
                       stats::TableStats::Load(entries[0].stats_path));
  EXPECT_EQ(table.row_count, 8000u);

  // rank > 200 over uniform [0,1000): ~80%, estimated from the
  // histogram and recorded as the plan's provenance.
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir_.file("pages.msq");
  job.output_path = dir_.file("prov.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));
  EXPECT_EQ(outcome.plan.descriptor.est_provenance, "histogram");
  EXPECT_NEAR(outcome.plan.descriptor.est_predicate_selectivity, 0.8, 0.05);
}

// ---- adaptive mid-job replanning ----

// Input where the optimizer's (correct-on-average) histogram estimate
// is wildly wrong for the splits that run first: rank == record
// ordinal, so every record matching `rank > kThreshold` sits in the
// file's tail. Early splits observe selectivity 0 while the histogram
// predicts ~10% — drift that must trigger a mid-job plan switch.
class ReplanTest : public ::testing::Test {
 protected:
  static constexpr int64_t kNumRecords = 6000;
  static constexpr int64_t kThreshold = 5400;

  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        auto writer,
        columnar::SeqFileWriter::Create(
            input(), columnar::PlainMeta(workloads::WebPagesSchema())));
    const std::string content(96, 'x');
    for (int64_t i = 0; i < kNumRecords; ++i) {
      Record record = {Value::Str(workloads::PageUrl(i)), Value::I64(i),
                       Value::Str(content)};
      ASSERT_OK(writer->Append(record));
    }
    ASSERT_OK(writer->Finish().status());
  }

  std::string input() const { return dir_.file("skewed.msq"); }

  std::unique_ptr<core::ManimalSystem> OpenSystem(const std::string& ws,
                                                  bool cost_based,
                                                  bool adaptive) {
    core::ManimalSystem::Options options;
    options.workspace_dir = dir_.file(ws);
    options.simulated_startup_seconds = 0;
    options.cost_based_optimizer = cost_based;
    options.adaptive_replan = adaptive;
    options.replan_min_splits = 1;
    // One map slot: the three splits commit in file order, so the
    // decision point is deterministic.
    options.map_parallelism = 1;
    options.num_partitions = 1;
    options.enable_speculation = false;
    options.retry_backoff_ms = 0;
    auto system_or = core::ManimalSystem::Open(options);
    EXPECT_TRUE(system_or.ok());
    return std::move(system_or).value();
  }

  void BuildLocator(core::ManimalSystem* system,
                    const mril::Program& program) {
    auto report_or = analyzer::Analyze(program);
    ASSERT_TRUE(report_or.ok());
    auto specs = analyzer::SynthesizeIndexPrograms(program, *report_or);
    const analyzer::IndexGenProgram* locator = nullptr;
    for (const auto& s : specs) {
      if (s.btree && !s.clustered && !s.projection) locator = &s;
    }
    ASSERT_NE(locator, nullptr);
    ASSERT_OK(system->BuildIndex(*locator, input()).status());
  }

  TempDir dir_{"replan"};
};

TEST_F(ReplanTest, SwitchesMidJobAndStaysByteIdentical) {
  mril::Program program = workloads::SelectionCountQuery(kThreshold);

  auto adaptive = OpenSystem("ws-adaptive", true, true);
  BuildLocator(adaptive.get(), program);
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = input();
  job.output_path = dir_.file("adaptive.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, adaptive->Submit(job));

  // Static cost-based planning keeps the scan: at the histogram's ~10%
  // estimate a locator tree would touch nearly every base block anyway.
  EXPECT_EQ(outcome.plan.descriptor.access_path, exec::AccessPath::kSeqScan);
  EXPECT_EQ(outcome.plan.descriptor.est_provenance, "histogram");
  EXPECT_NEAR(outcome.plan.descriptor.est_predicate_selectivity, 0.1, 0.05);

  // The first committed split saw zero matches — drift far beyond 4x —
  // and the remaining splits switched to the locator tree.
  const exec::ReplanStat& replan = outcome.job.replan;
  EXPECT_TRUE(replan.switched);
  EXPECT_GE(replan.after_splits, 1);
  EXPECT_GE(replan.drift_ratio, 4.0);
  EXPECT_LT(replan.observed, replan.estimated);
  EXPECT_FALSE(replan.to.empty());

  // Differential: the switched job, the never-switched baseline scan,
  // and a rule-based run forced onto the tree for the WHOLE job must
  // produce byte-identical canonical output.
  job.output_path = dir_.file("baseline.prs");
  ASSERT_OK_AND_ASSIGN(auto baseline, adaptive->RunBaseline(job));

  auto rule = OpenSystem("ws-rule", false, false);
  BuildLocator(rule.get(), program);
  job.output_path = dir_.file("rule.prs");
  ASSERT_OK_AND_ASSIGN(auto forced, rule->Submit(job));
  EXPECT_NE(forced.plan.explanation.find("btree"), std::string::npos);

  ASSERT_OK_AND_ASSIGN(auto a,
                       exec::ReadCanonicalPairs(dir_.file("adaptive.prs")));
  ASSERT_OK_AND_ASSIGN(auto b,
                       exec::ReadCanonicalPairs(dir_.file("baseline.prs")));
  ASSERT_OK_AND_ASSIGN(auto c,
                       exec::ReadCanonicalPairs(dir_.file("rule.prs")));
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);

  // The switch paid off: splits served from locators touch only the
  // matching tail instead of rescanning their whole block ranges.
  EXPECT_LT(outcome.job.counters.input_bytes,
            baseline.counters.input_bytes);
  EXPECT_LT(outcome.job.counters.map_invocations,
            baseline.counters.map_invocations);
}

TEST_F(ReplanTest, SwitchSurvivesFaultInjection) {
  mril::Program program = workloads::SelectionCountQuery(kThreshold);
  auto adaptive = OpenSystem("ws-fault", true, true);
  BuildLocator(adaptive.get(), program);

  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = input();
  job.output_path = dir_.file("clean.prs");
  ASSERT_OK_AND_ASSIGN(auto clean, adaptive->Submit(job));
  ASSERT_TRUE(clean.job.replan.switched);
  ASSERT_OK_AND_ASSIGN(auto canonical,
                       exec::ReadCanonicalPairs(dir_.file("clean.prs")));

  // Whether a given seed fires depends on per-run temp paths; sweep
  // seeds until faults land, and require every faulted run — retried
  // tasks, possibly interleaved with the plan switch — to still match
  // the fault-free output byte for byte.
  bool fired = false;
  bool switched_under_faults = false;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    FaultyEnv::Config fault;
    fault.seed = seed;
    fault.rate = 0.03;
    fault.max_failures = 3;
    ScopedFaultInjection inject(fault);
    job.output_path = dir_.file("fault-" + std::to_string(seed) + ".prs");
    ASSERT_OK_AND_ASSIGN(auto outcome, adaptive->Submit(job));
    if (FaultyEnv::Get().stats().injected > 0) {
      fired = true;
      switched_under_faults |= outcome.job.replan.switched;
      ASSERT_OK_AND_ASSIGN(auto pairs,
                           exec::ReadCanonicalPairs(job.output_path));
      EXPECT_EQ(pairs, canonical) << "seed " << seed;
    }
    if (fired && switched_under_faults && seed >= 4) break;
  }
  EXPECT_TRUE(fired) << "no seed injected a fault; test lost its teeth";
  EXPECT_TRUE(switched_under_faults)
      << "every faulted run abandoned the switch";
}

}  // namespace
}  // namespace manimal::optimizer
