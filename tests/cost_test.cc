// Tests for cost-based planning: selectivity estimation from B+Tree
// fan-out, per-candidate pricing, and the planner declining indexes
// that would read more than the scan — including end-to-end
// equivalence whichever mode picks the plan.

#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "index/btree.h"
#include "optimizer/cost.h"
#include "optimizer/optimizer.h"
#include "serde/key_codec.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"

namespace manimal::optimizer {
namespace {

using testing::TempDir;

std::string Key(int64_t v) {
  std::string out;
  EXPECT_OK(EncodeOrderedKey(Value::I64(v), &out));
  return out;
}

TEST(CostTest, RangeFractionFromFanout) {
  TempDir dir("cost-frac");
  std::string path = dir.file("t.idx");
  {
    index::BTreeBuilder::Options opts;
    opts.target_node_bytes = 512;  // many root children
    ASSERT_OK_AND_ASSIGN(auto builder,
                         index::BTreeBuilder::Create(path, opts));
    for (int i = 0; i < 10000; ++i) {
      ASSERT_OK(builder->Add(Key(i), "p"));
    }
    ASSERT_OK(builder->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, index::BTreeReader::Open(path));

  // Uniform keys 0..9999: the estimate should track the true fraction
  // within the fan-out granularity.
  struct Case {
    int64_t lo, hi;
    double expected;
  };
  for (const Case& c : {Case{0, 9999, 1.0}, Case{0, 4999, 0.5},
                        Case{9000, 9999, 0.1}, Case{5000, 5999, 0.1}}) {
    ASSERT_OK_AND_ASSIGN(double fraction,
                         reader->EstimateRangeFraction(Key(c.lo),
                                                       Key(c.hi)));
    EXPECT_NEAR(fraction, c.expected, 0.12)
        << "[" << c.lo << "," << c.hi << "]";
  }
  // Unbounded ranges.
  ASSERT_OK_AND_ASSIGN(double all,
                       reader->EstimateRangeFraction(std::nullopt,
                                                     std::nullopt));
  EXPECT_DOUBLE_EQ(all, 1.0);
  // Out-of-range lower bound: only the last root child can be counted
  // (its upper extent is unknown to the estimator), so the estimate is
  // small but conservatively nonzero.
  ASSERT_OK_AND_ASSIGN(double none, reader->EstimateRangeFraction(
                                        Key(20000), std::nullopt));
  EXPECT_LT(none, 0.2);
}

TEST(CostTest, SingleLeafIsExact) {
  TempDir dir("cost-leaf");
  std::string path = dir.file("t.idx");
  {
    ASSERT_OK_AND_ASSIGN(auto builder, index::BTreeBuilder::Create(path));
    for (int i = 0; i < 20; ++i) ASSERT_OK(builder->Add(Key(i), "p"));
    ASSERT_OK(builder->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, index::BTreeReader::Open(path));
  ASSERT_OK_AND_ASSIGN(double fraction,
                       reader->EstimateRangeFraction(Key(5), Key(9)));
  EXPECT_DOUBLE_EQ(fraction, 0.25);  // 5 of 20
}

class CostPlanningTest : public ::testing::Test {
 protected:
  CostPlanningTest() : dir_("cost-plan") {
    workloads::WebPagesOptions gen;
    gen.num_pages = 8000;
    gen.content_len = 96;
    gen.rank_range = 1000;
    EXPECT_TRUE(
        workloads::GenerateWebPages(dir_.file("pages.msq"), gen).ok());
  }

  std::unique_ptr<core::ManimalSystem> OpenSystem(bool cost_based) {
    core::ManimalSystem::Options options;
    options.workspace_dir =
        dir_.file(cost_based ? "ws-cost" : "ws-rule");
    options.simulated_startup_seconds = 0;
    options.cost_based_optimizer = cost_based;
    auto system_or = core::ManimalSystem::Open(options);
    EXPECT_TRUE(system_or.ok());
    return std::move(system_or).value();
  }

  // Builds only the locator-btree artifact for `program`.
  void BuildLocatorOnly(core::ManimalSystem* system,
                        const mril::Program& program) {
    auto report_or = analyzer::Analyze(program);
    ASSERT_TRUE(report_or.ok());
    auto specs = analyzer::SynthesizeIndexPrograms(program, *report_or);
    const analyzer::IndexGenProgram* locator = nullptr;
    for (const auto& s : specs) {
      if (s.btree && !s.clustered && !s.projection) locator = &s;
    }
    ASSERT_NE(locator, nullptr);
    ASSERT_OK(
        system->BuildIndex(*locator, dir_.file("pages.msq")).status());
  }

  TempDir dir_;
};

TEST_F(CostPlanningTest, DeclinesIndexWorseThanScan) {
  // 80% selectivity: a locator index reads the index PLUS nearly every
  // base block — strictly worse than scanning. Rule-based uses it
  // anyway; cost-based declines.
  mril::Program program = workloads::SelectionCountQuery(200);

  auto rule_system = OpenSystem(false);
  BuildLocatorOnly(rule_system.get(), program);
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir_.file("pages.msq");
  job.output_path = dir_.file("rule.prs");
  ASSERT_OK_AND_ASSIGN(auto rule, rule_system->Submit(job));
  EXPECT_TRUE(rule.plan.optimized);
  EXPECT_NE(rule.plan.explanation.find("btree"), std::string::npos);

  auto cost_system = OpenSystem(true);
  BuildLocatorOnly(cost_system.get(), program);
  job.output_path = dir_.file("cost.prs");
  ASSERT_OK_AND_ASSIGN(auto cost, cost_system->Submit(job));
  EXPECT_NE(cost.plan.explanation.find("no cataloged artifact beats"),
            std::string::npos)
      << cost.plan.explanation;
  // Cost-based read fewer or equal bytes than the misused index.
  EXPECT_LE(cost.job.counters.input_bytes,
            rule.job.counters.input_bytes);

  ASSERT_OK_AND_ASSIGN(auto a,
                       exec::ReadCanonicalPairs(dir_.file("rule.prs")));
  ASSERT_OK_AND_ASSIGN(auto b,
                       exec::ReadCanonicalPairs(dir_.file("cost.prs")));
  EXPECT_EQ(a, b);
}

TEST_F(CostPlanningTest, PicksIndexAtNeedleSelectivity) {
  // ~0.1% selectivity: even the byte-conservative cost model (every
  // match may decode a whole base block) prices the index far below
  // the scan.
  mril::Program program = workloads::SelectionCountQuery(999);
  auto cost_system = OpenSystem(true);
  BuildLocatorOnly(cost_system.get(), program);
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir_.file("pages.msq");
  job.output_path = dir_.file("needle.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, cost_system->Submit(job));
  EXPECT_TRUE(outcome.plan.optimized) << outcome.plan.explanation;
  EXPECT_NE(outcome.plan.explanation.find("cost-based choice"),
            std::string::npos);
  EXPECT_LT(outcome.job.counters.map_invocations, 400u);
}

TEST_F(CostPlanningTest, ChoosesCheapestAmongSeveral) {
  // Build locator btree AND clustered btree AND projection; at 50%
  // selectivity the projection artifact (tiny rows, full scan) should
  // win on bytes.
  mril::Program program = workloads::SelectionCountQuery(500);
  auto system = OpenSystem(true);
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  for (const auto& s : specs) {
    ASSERT_OK(system->BuildIndex(s, dir_.file("pages.msq")).status());
  }
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir_.file("pages.msq");
  job.output_path = dir_.file("multi.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));
  ASSERT_TRUE(outcome.plan.optimized);
  // Whatever won, its realized bytes must be below the raw input size.
  ASSERT_OK_AND_ASSIGN(uint64_t input_bytes,
                       GetFileSize(dir_.file("pages.msq")));
  EXPECT_LT(outcome.job.counters.input_bytes, input_bytes / 2);

  // And the output still matches the baseline.
  job.output_path = dir_.file("base.prs");
  ASSERT_OK_AND_ASSIGN(auto baseline, system->RunBaseline(job));
  (void)baseline;
  ASSERT_OK_AND_ASSIGN(auto a,
                       exec::ReadCanonicalPairs(dir_.file("multi.prs")));
  ASSERT_OK_AND_ASSIGN(auto b,
                       exec::ReadCanonicalPairs(dir_.file("base.prs")));
  EXPECT_EQ(a, b);
}

TEST(CostTest, BaselineCostIsInputSize) {
  CandidateCost cost = BaselineCost(12345);
  EXPECT_DOUBLE_EQ(cost.bytes, 12345.0);
  EXPECT_DOUBLE_EQ(cost.selectivity, 1.0);
}

}  // namespace
}  // namespace manimal::optimizer
