// Tests for the chained block codec framework (columnar/codec/): raw
// codec round-trips, chain parse/frame semantics, fuzzed random
// chains over adversarial column data, SeqFile v2 round-trips with
// skip-frame verification, corrupt-frame handling (an unregistered
// method byte must be a Corruption, never silent garbage), the
// codec-chain selector, and the catalog's codec columns.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "analyzer/index_gen.h"
#include "columnar/codec/codec.h"
#include "columnar/codec/selector.h"
#include "columnar/dictionary.h"
#include "columnar/seqfile.h"
#include "common/coding.h"
#include "common/random.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "index/catalog.h"
#include "mril/builder.h"
#include "tests/test_util.h"

namespace manimal::columnar {
namespace {

using testing::TempDir;

Schema NumSchema() {
  return Schema({{"name", FieldType::kStr},
                 {"a", FieldType::kI64},
                 {"b", FieldType::kI64}});
}

Record Row(const std::string& name, int64_t a, int64_t b) {
  return {Value::Str(name), Value::I64(a), Value::I64(b)};
}

// ---------------- raw codecs ----------------

std::string RoundTrip(const char* chain_spec, const std::string& in) {
  auto chain = CodecChain::Parse(chain_spec);
  EXPECT_TRUE(chain.ok()) << chain.status().ToString();
  std::string framed;
  EXPECT_OK(chain->CompressBlock(in, &framed));
  std::string out, spec;
  EXPECT_OK(CodecChain::DecompressBlock(framed, &out, &spec));
  EXPECT_EQ(spec, chain->ToString());
  return out;
}

TEST(CodecTest, EveryCodecRoundTripsAdversarialPayloads) {
  Rng rng(11);
  std::string random_bytes, text, runs, zeros(4096, '\0');
  for (int i = 0; i < 5000; ++i) {
    random_bytes.push_back(static_cast<char>(rng.Uniform(256)));
  }
  for (int i = 0; i < 200; ++i) {
    text += "field=" + std::to_string(i % 17) + "&rank=" +
            std::to_string(i) + ";";
  }
  for (int i = 0; i < 40; ++i) {
    runs.append(1 + rng.Uniform(400), static_cast<char>(rng.Uniform(4)));
  }
  const std::string payloads[] = {"", "x", "ab", zeros, random_bytes,
                                  text, runs};
  const char* chains[] = {"",        "none", "rle",
                          "mlz",     "rle+mlz", "mlz+rle",
                          "rle+rle", "mlz+mlz"};
  for (const char* chain : chains) {
    for (const std::string& payload : payloads) {
      SCOPED_TRACE(std::string("chain '") + chain + "' payload size " +
                   std::to_string(payload.size()));
      EXPECT_EQ(RoundTrip(chain, payload), payload);
    }
  }
}

TEST(CodecTest, MlzActuallyCompressesRepetitiveData) {
  std::string in;
  for (int i = 0; i < 500; ++i) in += "the quick brown fox 42 ";
  auto chain = CodecChain::Parse("mlz");
  ASSERT_OK(chain.status());
  std::string framed;
  ASSERT_OK(chain->CompressBlock(in, &framed));
  EXPECT_LT(framed.size(), in.size() / 4);
}

TEST(CodecTest, RleActuallyCompressesRuns) {
  std::string in(10000, 'a');
  auto chain = CodecChain::Parse("rle");
  ASSERT_OK(chain.status());
  std::string framed;
  ASSERT_OK(chain->CompressBlock(in, &framed));
  EXPECT_LT(framed.size(), 300u);
}

TEST(CodecTest, FuzzRandomChainsOverRandomColumnData) {
  const char* chains[] = {"", "rle", "mlz", "rle+mlz", "mlz+rle"};
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    // Column-shaped data: blocks of varint-ish small ints, repeated
    // strings, and occasional incompressible noise.
    std::string payload;
    const uint32_t rows = rng.Uniform(600);  // 0 = empty block
    for (uint32_t r = 0; r < rows; ++r) {
      switch (rng.Uniform(3)) {
        case 0:
          payload += static_cast<char>(rng.Uniform(7));  // near-constant
          break;
        case 1:
          payload += "host-" + std::to_string(rng.Uniform(9));
          break;
        default:
          for (int k = 0; k < 8; ++k) {
            payload.push_back(static_cast<char>(rng.Uniform(256)));
          }
      }
    }
    const char* chain = chains[rng.Uniform(5)];
    SCOPED_TRACE("seed " + std::to_string(seed) + " chain '" + chain +
                 "' rows " + std::to_string(rows));
    EXPECT_EQ(RoundTrip(chain, payload), payload);
  }
}

// ---------------- frames, registry, corruption ----------------

TEST(CodecTest, ParseRejectsUnknownNamesAndNormalizes) {
  EXPECT_TRUE(CodecChain::Parse("").ok());
  EXPECT_TRUE(CodecChain::Parse("none").ok());
  EXPECT_EQ(CodecChain::Parse("none")->ToString(), "");
  EXPECT_EQ(CodecChain::Parse("rle+mlz")->ToString(), "rle+mlz");
  auto bad = CodecChain::Parse("zstd");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(CodecChain::Parse("rle++mlz").ok());
}

TEST(CodecTest, RegistryLookups) {
  ASSERT_OK_AND_ASSIGN(const ICompressionCodec* rle,
                       CodecRegistry::Get().ByName("rle"));
  EXPECT_EQ(rle->method_byte(), kCodecMethodRle);
  auto unknown_name = CodecRegistry::Get().ByName("nope");
  ASSERT_FALSE(unknown_name.ok());
  EXPECT_EQ(unknown_name.status().code(), StatusCode::kInvalidArgument);
  auto unknown_method = CodecRegistry::Get().ByMethod(0x7F);
  ASSERT_FALSE(unknown_method.ok());
  EXPECT_EQ(unknown_method.status().code(), StatusCode::kCorruption);
}

TEST(CodecTest, DecompressRejectsCorruptFrames) {
  std::string out;
  // Truncated / empty frames.
  EXPECT_FALSE(CodecChain::DecompressBlock("", &out).ok());
  EXPECT_FALSE(CodecChain::DecompressBlock(std::string("\x01", 1), &out).ok());
  // Unregistered method byte in the chain.
  std::string framed;
  ASSERT_OK(CodecChain().CompressBlock("hello", &framed));
  ASSERT_EQ(framed[0], '\0');  // empty chain
  framed[0] = '\x01';          // claim one codec...
  framed.insert(1, 1, '\x7F'); // ...with an unregistered method byte
  out.clear();
  Status st = CodecChain::DecompressBlock(framed, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("unregistered codec"), std::string::npos);
  // Recorded raw size disagrees with the decoded payload.
  framed.clear();
  ASSERT_OK(CodecChain().CompressBlock("hello", &framed));
  framed[1] = '\x04';  // raw_size varint: claim 4, payload is 5
  EXPECT_FALSE(CodecChain::DecompressBlock(framed, &out).ok());
  // Random garbage decompression must fail cleanly, never crash.
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage;
    const uint32_t n = rng.Uniform(64);
    for (uint32_t i = 0; i < n; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    out.clear();
    (void)CodecChain::DecompressBlock(garbage, &out);
  }
}

// ---------------- seqfile v2 ----------------

void WriteNumFile(const std::string& path, int rows,
                  SeqFileWriter::Options options) {
  ASSERT_OK_AND_ASSIGN(
      auto writer,
      SeqFileWriter::Create(path, PlainMeta(NumSchema()), options));
  for (int i = 0; i < rows; ++i) {
    ASSERT_OK(writer->Append(
        Row("row" + std::to_string(i % 5), i, (i * 37) % 200)));
  }
  ASSERT_OK(writer->Finish().status());
}

TEST(SeqFileV2Test, ChainedFileRoundTripsAndReportsBytesDecoded) {
  TempDir dir("v2");
  const std::string plain = dir.file("plain.msq");
  const std::string packed = dir.file("packed.msq");
  SeqFileWriter::Options raw_opts;
  WriteNumFile(plain, 400, raw_opts);
  SeqFileWriter::Options packed_opts;
  packed_opts.codec_chain = "rle+mlz";
  packed_opts.skip_frames = true;
  WriteNumFile(packed, 400, packed_opts);

  ASSERT_OK_AND_ASSIGN(auto plain_reader, SeqFileReader::Open(plain));
  ASSERT_OK_AND_ASSIGN(auto packed_reader, SeqFileReader::Open(packed));
  EXPECT_EQ(plain_reader->version(), 1u);
  EXPECT_EQ(packed_reader->version(), 2u);
  EXPECT_EQ(packed_reader->meta().codec_chain, "rle+mlz");
  EXPECT_TRUE(packed_reader->has_skip_frames());
  // The compressible integer columns must actually shrink on disk.
  EXPECT_LT(packed_reader->file_size(), plain_reader->file_size());

  ASSERT_OK_AND_ASSIGN(auto a, plain_reader->ScanAll());
  ASSERT_OK_AND_ASSIGN(auto b, packed_reader->ScanAll());
  int64_t ka = 0, kb = 0;
  Record ra, rb;
  for (int i = 0; i < 400; ++i) {
    ASSERT_OK_AND_ASSIGN(bool more_a, a.Next(&ka, &ra));
    ASSERT_OK_AND_ASSIGN(bool more_b, b.Next(&kb, &rb));
    ASSERT_TRUE(more_a);
    ASSERT_TRUE(more_b);
    EXPECT_EQ(ka, kb);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t f = 0; f < ra.size(); ++f) {
      EXPECT_EQ(ra[f].ToString(), rb[f].ToString());
    }
  }
  // bytes_decoded counts raw body bytes materialized, which for a
  // compressed file exceeds the bytes read off disk.
  EXPECT_EQ(b.bytes_decoded(), a.bytes_decoded());
  EXPECT_GT(b.bytes_decoded(), b.bytes_read());
  EXPECT_EQ(b.blocks_skipped(), 0u);
}

TEST(SeqFileV2Test, SkipFramesMatchBruteForceBounds) {
  TempDir dir("frames");
  const std::string path = dir.file("t.msq");
  SeqFileWriter::Options options;
  options.skip_frames = true;
  options.target_block_bytes = 512;  // force many blocks
  Rng rng(7);
  std::vector<std::pair<int64_t, int64_t>> rows;
  {
    ASSERT_OK_AND_ASSIGN(auto writer, SeqFileWriter::Create(
                                          path, PlainMeta(NumSchema()),
                                          options));
    for (int i = 0; i < 1000; ++i) {
      int64_t a = static_cast<int64_t>(rng.Uniform(100000)) - 50000;
      int64_t b = static_cast<int64_t>(rng.Uniform(1000));
      rows.emplace_back(a, b);
      ASSERT_OK(writer->Append(Row("x", a, b)));
    }
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, SeqFileReader::Open(path));
  ASSERT_TRUE(reader->has_skip_frames());
  ASSERT_GT(reader->num_blocks(), 4u);
  // Slots 1 and 2 are the i64 columns ("a", "b"); slot 0 is a string
  // and must have no frame.
  int64_t lo = 0, hi = 0;
  EXPECT_FALSE(reader->BlockSlotBounds(0, 0, &lo, &hi));
  uint64_t row = 0;
  for (uint64_t block = 0; block < reader->num_blocks(); ++block) {
    const uint64_t count = reader->BlockRecordCount(block);
    ASSERT_GT(count, 0u);
    int64_t want_min_a = rows[row].first, want_max_a = rows[row].first;
    int64_t want_min_b = rows[row].second, want_max_b = rows[row].second;
    for (uint64_t r = row; r < row + count; ++r) {
      want_min_a = std::min(want_min_a, rows[r].first);
      want_max_a = std::max(want_max_a, rows[r].first);
      want_min_b = std::min(want_min_b, rows[r].second);
      want_max_b = std::max(want_max_b, rows[r].second);
    }
    ASSERT_TRUE(reader->BlockSlotBounds(block, 1, &lo, &hi));
    EXPECT_EQ(lo, want_min_a);
    EXPECT_EQ(hi, want_max_a);
    ASSERT_TRUE(reader->BlockSlotBounds(block, 2, &lo, &hi));
    EXPECT_EQ(lo, want_min_b);
    EXPECT_EQ(hi, want_max_b);
    row += count;
  }
  EXPECT_EQ(row, rows.size());
}

TEST(SeqFileV2Test, ScanHonorsSkipFilterAndCountsSkips) {
  TempDir dir("skipscan");
  const std::string path = dir.file("t.msq");
  SeqFileWriter::Options options;
  options.skip_frames = true;
  options.records_per_block = 100;
  WriteNumFile(path, 400, options);
  ASSERT_OK_AND_ASSIGN(auto reader, SeqFileReader::Open(path));
  ASSERT_EQ(reader->num_blocks(), 4u);
  // Skip blocks 1 and 2: the scan must yield exactly blocks 0 and 3.
  auto skip = std::make_shared<std::vector<bool>>(
      std::vector<bool>{false, true, true, false});
  ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
  stream.set_skip_blocks(skip);
  int64_t key = 0;
  Record record;
  std::vector<int64_t> keys;
  while (true) {
    ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&key, &record));
    if (!more) break;
    keys.push_back(key);
  }
  ASSERT_EQ(keys.size(), 200u);
  EXPECT_EQ(keys.front(), 0);
  EXPECT_EQ(keys[99], 99);
  EXPECT_EQ(keys[100], 300);
  EXPECT_EQ(keys.back(), 399);
  EXPECT_EQ(stream.blocks_skipped(), 2u);
  EXPECT_EQ(stream.records_skipped(), 200u);
}

// The satellite contract: a block whose frame names a method byte no
// registered codec owns must surface as Corruption from the reader,
// not as silently-garbled records.
TEST(SeqFileV2Test, UnregisteredMethodByteIsCorruption) {
  TempDir dir("badmethod");
  const std::string path = dir.file("t.msq");
  SeqFileWriter::Options options;
  options.codec_chain = "rle";
  WriteNumFile(path, 50, options);

  // Patch the first block's first chain method byte on disk. Layout:
  // footer tail's third fixed64 is the footer offset; the footer opens
  // with the per-block offsets; a block is fixed32 body_len, then the
  // frame's [u8 chain_len][method bytes...].
  ASSERT_OK_AND_ASSIGN(std::string data, ReadFileToString(path));
  ASSERT_GT(data.size(), 28u);
  const uint64_t footer_offset =
      DecodeFixed64(data.data() + data.size() - 4 - 8);
  const uint64_t block_offset = DecodeFixed64(data.data() + footer_offset);
  const size_t method_pos = block_offset + 4 + 1;
  ASSERT_LT(method_pos, data.size());
  ASSERT_EQ(static_cast<uint8_t>(data[method_pos - 1]), 1u);  // chain_len
  ASSERT_EQ(static_cast<uint8_t>(data[method_pos]), kCodecMethodRle);
  data[method_pos] = '\x7F';
  ASSERT_OK(WriteStringToFile(path, data));

  ASSERT_OK_AND_ASSIGN(auto reader, SeqFileReader::Open(path));
  ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
  int64_t key = 0;
  Record record;
  auto more = stream.Next(&key, &record);
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.status().code(), StatusCode::kCorruption);
  EXPECT_NE(more.status().message().find("unregistered codec"),
            std::string::npos)
      << more.status().ToString();
}

TEST(SeqFileV2Test, EmptyFileAndSingleRecordRoundTrip) {
  TempDir dir("tiny");
  for (int rows : {0, 1}) {
    const std::string path =
        dir.file("t" + std::to_string(rows) + ".msq");
    SeqFileWriter::Options options;
    options.codec_chain = "rle+mlz";
    options.skip_frames = true;
    WriteNumFile(path, rows, options);
    ASSERT_OK_AND_ASSIGN(auto reader, SeqFileReader::Open(path));
    EXPECT_EQ(reader->num_records(), static_cast<uint64_t>(rows));
    ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
    int64_t key = 0;
    Record record;
    int seen = 0;
    while (true) {
      ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&key, &record));
      if (!more) break;
      ++seen;
    }
    EXPECT_EQ(seen, rows);
  }
}

// ---------------- selector ----------------

TEST(CodecSelectorTest, NearConstantColumnPicksRlePrefix) {
  SeqFileMeta meta = PlainMeta(NumSchema());
  CodecPolicy policy;
  policy.mode = CodecMode::kAuto;
  CodecSelector selector(policy, meta);
  for (int i = 0; i < 500; ++i) {
    selector.Observe(Row("r", 7, i));  // column "a" is constant
  }
  CodecSelection sel = selector.Choose();
  EXPECT_EQ(sel.chain, "rle+mlz");
  EXPECT_TRUE(sel.skip_frames);
  EXPECT_NE(sel.reason.find("near-constant"), std::string::npos);
}

TEST(CodecSelectorTest, HighCardinalityPicksPlainLz) {
  SeqFileMeta meta = PlainMeta(NumSchema());
  CodecPolicy policy;
  policy.mode = CodecMode::kAuto;
  CodecSelector selector(policy, meta);
  for (int i = 0; i < 500; ++i) {
    selector.Observe(Row("r" + std::to_string(i), i, i * 31));
  }
  CodecSelection sel = selector.Choose();
  EXPECT_EQ(sel.chain, "mlz");
  EXPECT_TRUE(sel.skip_frames);
}

TEST(CodecSelectorTest, OffAndExplicitModes) {
  SeqFileMeta meta = PlainMeta(NumSchema());
  CodecPolicy off;
  off.mode = CodecMode::kOff;
  CodecSelection sel_off = CodecSelector(off, meta).Choose();
  EXPECT_EQ(sel_off.chain, "");
  EXPECT_FALSE(sel_off.skip_frames);

  CodecPolicy forced;
  forced.mode = CodecMode::kExplicit;
  forced.explicit_chain = "rle";
  CodecSelection sel_rle = CodecSelector(forced, meta).Choose();
  EXPECT_EQ(sel_rle.chain, "rle");
  EXPECT_TRUE(sel_rle.skip_frames);
}

// ---------------- direct evaluation end to end ----------------

// A selective scan over a re-encoded artifact whose blocks partition
// the predicate column must skip most blocks when direct evaluation
// is on, produce identical output either way, and show the savings in
// the engine counters (the EXPLAIN ANALYZE / bench surface).
TEST(DirectEvalTest, SelectiveScanSkipsBlocksAndCutsBytesDecoded) {
  TempDir dir("direct");
  const std::string input = dir.file("in.msq");
  {
    ASSERT_OK_AND_ASSIGN(
        auto writer, SeqFileWriter::Create(input, PlainMeta(NumSchema())));
    for (int i = 0; i < 8000; ++i) {
      // "a" ascending: artifact blocks partition its range, so frames
      // refute every block past the predicate's upper bound.
      ASSERT_OK(writer->Append(Row("row" + std::to_string(i % 7), i,
                                   (i * 13) % 97)));
    }
    ASSERT_OK(writer->Finish().status());
  }

  mril::ProgramBuilder b("selective-direct");
  b.SetKeyType(FieldType::kI64);
  b.SetValueSchema(NumSchema());
  mril::FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("a").LoadI64(100).CmpLt();
  m.JmpIfFalse("end");
  m.LoadParam(1).GetField("a");
  m.LoadParam(1).GetField("b");
  m.Emit();
  m.Label("end").Ret();
  const mril::Program program = b.Build();

  // A non-B+Tree re-encoded artifact, so the chosen plan is a seqscan
  // over v2 blocks with the selection still in the map.
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  const analyzer::IndexGenProgram* reencoded = nullptr;
  for (const auto& s : specs) {
    if (!s.btree && !s.column_groups) reencoded = &s;
  }
  ASSERT_NE(reencoded, nullptr);

  setenv("MANIMAL_CODECS", "mlz", 1);
  uint64_t decoded[2] = {0, 0};
  std::vector<std::string> outputs[2];
  for (int direct = 0; direct <= 1; ++direct) {
    setenv("MANIMAL_DIRECT_EVAL", direct ? "1" : "0", 1);
    core::ManimalSystem::Options options;
    options.workspace_dir = dir.file("ws" + std::to_string(direct));
    options.simulated_startup_seconds = 0;
    options.map_parallelism = 1;
    options.num_partitions = 1;
    ASSERT_OK_AND_ASSIGN(auto system, core::ManimalSystem::Open(options));
    ASSERT_OK(system->BuildIndex(*reencoded, input).status());
    core::ManimalSystem::Submission job;
    job.program = program;
    job.input_path = input;
    job.output_path = dir.file("out" + std::to_string(direct) + ".prs");
    ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));
    decoded[direct] = outcome.job.counters.bytes_decoded;
    ASSERT_OK_AND_ASSIGN(outputs[direct],
                         exec::ReadCanonicalPairs(job.output_path));
    if (direct == 1) {
      EXPECT_GT(outcome.job.counters.blocks_skipped, 0u);
    } else {
      EXPECT_EQ(outcome.job.counters.blocks_skipped, 0u);
    }
  }
  unsetenv("MANIMAL_CODECS");
  unsetenv("MANIMAL_DIRECT_EVAL");

  EXPECT_EQ(outputs[0], outputs[1]);
  ASSERT_EQ(outputs[1].size(), 100u);
  // The acceptance bar: direct evaluation at this selectivity must at
  // least halve the bytes decoded.
  EXPECT_GT(decoded[0], 0u);
  EXPECT_LE(decoded[1] * 2, decoded[0])
      << "decoded " << decoded[1] << " with skipping vs " << decoded[0];
}

// ---------------- catalog codec columns ----------------

TEST(CatalogCodecTest, TenColumnRoundTripAndOldManifestsStillLoad) {
  TempDir dir("cat");
  const std::string path = dir.file("catalog.tsv");
  {
    ASSERT_OK_AND_ASSIGN(auto catalog, index::Catalog::Open(path));
    index::CatalogEntry e;
    e.input_file = "in.msq";
    e.signature = "sig";
    e.artifact_path = "a.msq";
    e.artifact_bytes = 100;
    e.input_bytes = 400;
    e.stats_path = "s.stats";
    e.codec_chain = "rle+mlz";
    e.raw_bytes = 350;
    ASSERT_OK(catalog.Register(e));
  }
  ASSERT_OK_AND_ASSIGN(auto reloaded, index::Catalog::Open(path));
  ASSERT_EQ(reloaded.entries().size(), 1u);
  EXPECT_EQ(reloaded.entries()[0].codec_chain, "rle+mlz");
  EXPECT_EQ(reloaded.entries()[0].raw_bytes, 350u);

  // A pre-codec 8-column manifest loads with empty codec fields.
  const std::string old = dir.file("old.tsv");
  ASSERT_OK(WriteStringToFile(
      old, "in.msq\tsig\ta.msq\t\t\t100\t400\ts.stats\n"));
  ASSERT_OK_AND_ASSIGN(auto old_catalog, index::Catalog::Open(old));
  ASSERT_EQ(old_catalog.entries().size(), 1u);
  EXPECT_EQ(old_catalog.entries()[0].codec_chain, "");
  EXPECT_EQ(old_catalog.entries()[0].raw_bytes, 0u);
}

}  // namespace
}  // namespace manimal::columnar
