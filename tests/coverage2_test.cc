// Second-round coverage: corner cases surfaced by review — dead-code
// emits, multi-emit DNF unions, map-only jobs over B+Tree artifacts,
// opaque-input end-to-end via the assembler, and stack-shuffling
// opcodes.

#include <gtest/gtest.h>

#include <limits>

#include "analyzer/analyzer.h"
#include "analyzer/expr_eval.h"
#include "analyzer/select.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "mril/assembler.h"
#include "mril/builder.h"
#include "mril/verifier.h"
#include "mril/vm.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"

namespace manimal {
namespace {

using mril::ProgramBuilder;
using testing::TempDir;

TEST(Coverage2Test, EmitInDeadCodeIsIgnoredByFindSelect) {
  // An emit that control flow can never reach contributes no disjunct:
  // the recovered formula describes only live behaviour.
  ProgramBuilder b("dead-emit");
  b.SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(10).CmpGt().JmpIfFalse("end");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end");
  m.Jmp("done");
  // Dead region below (no path reaches it).
  m.LoadParam(0).LoadI64(99).Emit();
  m.Label("done").Ret();
  mril::Program p = b.Build();
  ASSERT_OK(mril::VerifyProgram(p));

  analyzer::SelectResult r = analyzer::FindSelect(p);
  ASSERT_TRUE(r.descriptor.has_value()) << r.miss_reason;
  // Formula is exactly rank > 10 — dead emit added nothing.
  for (int64_t rank : {5, 10, 11, 50}) {
    Value row = Value::List(
        {Value::Str("u"), Value::I64(rank), Value::Str("c")});
    ASSERT_OK_AND_ASSIGN(
        bool says,
        analyzer::EvalFormula(r.descriptor->formula, Value::I64(0), row));
    EXPECT_EQ(says, rank > 10);
  }
}

TEST(Coverage2Test, TwoEmitsUnionTheirConditions) {
  // emit when rank < 10 (first site) or rank > 90 (second site).
  ProgramBuilder b("two-emits");
  b.SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(10).CmpLt().JmpIfFalse("second");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("second");
  m.LoadParam(1).GetField("rank").LoadI64(90).CmpGt().JmpIfFalse("end");
  m.LoadParam(0).LoadI64(2).Emit();
  m.Label("end").Ret();

  analyzer::SelectResult r = analyzer::FindSelect(b.Build());
  ASSERT_TRUE(r.descriptor.has_value()) << r.miss_reason;
  ASSERT_TRUE(r.descriptor->indexable());
  // Two intervals: (-inf,10) and (90,+inf).
  ASSERT_EQ(r.descriptor->intervals.size(), 2u);
  for (int64_t rank = 0; rank <= 100; ++rank) {
    bool expected = rank < 10 || rank > 90;
    bool covered = false;
    for (const analyzer::KeyInterval& iv : r.descriptor->intervals) {
      covered = covered || iv.Contains(Value::I64(rank));
    }
    if (expected) {
      EXPECT_TRUE(covered) << rank;
    }
  }
  // The low range also covers the rank<10-AND-rank>90 infeasible
  // overlap correctly (i.e. the intervals are an over-approximation of
  // the union, not an intersection).
  for (int64_t rank : {50, 40}) {
    Value row = Value::List(
        {Value::Str("u"), Value::I64(rank), Value::Str("c")});
    ASSERT_OK_AND_ASSIGN(
        bool says,
        analyzer::EvalFormula(r.descriptor->formula, Value::I64(0), row));
    EXPECT_FALSE(says);
  }
}

TEST(Coverage2Test, MapOnlyJobThroughLocatorBTree) {
  TempDir dir("cov-maponly");
  workloads::WebPagesOptions gen;
  gen.num_pages = 3000;
  gen.content_len = 64;
  gen.rank_range = 1000;
  ASSERT_OK(
      workloads::GenerateWebPages(dir.file("pages.msq"), gen).status());

  core::ManimalSystem::Options options;
  options.workspace_dir = dir.file("ws");
  options.simulated_startup_seconds = 0;
  ASSERT_OK_AND_ASSIGN(auto system, core::ManimalSystem::Open(options));

  // ProjectionQuery is map-only: if rank > t emit(url, rank).
  mril::Program program = workloads::ProjectionQuery(950);
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir.file("pages.msq");
  job.output_path = dir.file("base.prs");
  ASSERT_OK_AND_ASSIGN(auto baseline, system->RunBaseline(job));

  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  ASSERT_FALSE(specs.empty());
  // The maximal candidate is a locator B+Tree over a projected
  // sibling.
  EXPECT_TRUE(specs[0].btree);
  EXPECT_TRUE(specs[0].projection);
  EXPECT_FALSE(specs[0].clustered);
  ASSERT_OK(system->BuildIndex(specs[0], job.input_path).status());

  job.output_path = dir.file("opt.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));
  EXPECT_TRUE(outcome.plan.optimized);
  EXPECT_LT(outcome.job.counters.map_invocations,
            baseline.counters.map_invocations / 5);
  ASSERT_OK_AND_ASSIGN(auto a,
                       exec::ReadCanonicalPairs(dir.file("base.prs")));
  ASSERT_OK_AND_ASSIGN(auto b,
                       exec::ReadCanonicalPairs(dir.file("opt.prs")));
  EXPECT_EQ(a, b);
}

TEST(Coverage2Test, OpaqueProgramFromAssemblerEndToEnd) {
  // Benchmark-1-style program written in assembler, run over opaque
  // Rankings through the full pipeline.
  constexpr char kText[] = R"(
.program asm-rankings-filter
.key_type i64
.value_schema <opaque>
.func map locals=1
  load_param 1
  load_const i64:1
  call opaque.get_i64
  store_local 0
  load_local 0
  load_const i64:90000
  cmp_gt
  jmp_if_false end
  load_param 1
  load_const i64:0
  call opaque.get_str
  load_local 0
  emit
end:
  return
.endfunc
)";
  ASSERT_OK_AND_ASSIGN(mril::Program program,
                       mril::AssembleProgram(kText));

  TempDir dir("cov-opaque");
  workloads::RankingsOptions gen;
  gen.num_pages = 3000;
  ASSERT_OK(
      workloads::GenerateRankings(dir.file("rank.msq"), gen).status());

  core::ManimalSystem::Options options;
  options.workspace_dir = dir.file("ws");
  options.simulated_startup_seconds = 0;
  ASSERT_OK_AND_ASSIGN(auto system, core::ManimalSystem::Open(options));

  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir.file("rank.msq");
  job.output_path = dir.file("base.prs");
  ASSERT_OK_AND_ASSIGN(auto baseline, system->RunBaseline(job));

  job.output_path = dir.file("first.prs");
  ASSERT_OK_AND_ASSIGN(auto first, system->Submit(job));
  ASSERT_FALSE(first.index_programs.empty());
  ASSERT_OK(
      system->BuildIndex(first.index_programs[0], job.input_path)
          .status());
  job.output_path = dir.file("opt.prs");
  ASSERT_OK_AND_ASSIGN(auto second, system->Submit(job));
  EXPECT_TRUE(second.plan.optimized);
  ASSERT_OK_AND_ASSIGN(auto a,
                       exec::ReadCanonicalPairs(dir.file("base.prs")));
  ASSERT_OK_AND_ASSIGN(auto b,
                       exec::ReadCanonicalPairs(dir.file("opt.prs")));
  EXPECT_EQ(a, b);
  EXPECT_LT(second.job.counters.map_invocations,
            baseline.counters.map_invocations / 2);
}

TEST(Coverage2Test, SwapAndDupSemantics) {
  ProgramBuilder b("stack-ops");
  b.SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  // Push rank then url, swap -> emit(rank, url); dup tested via
  // emitting rank twice.
  m.LoadParam(1).GetField("rank");
  m.LoadParam(1).GetField("url");
  m.Swap();
  m.Emit();  // emit(url, rank) after swap: key=url? Stack is
             // [rank, url] -> swap -> [url, rank] -> emit pops value
             // rank, key url.
  m.Ret();
  mril::Program p = b.Build();
  mril::VmInstance vm(&p);
  std::vector<std::pair<Value, Value>> out;
  vm.set_emit_sink([&out](const Value& k, const Value& v) {
    out.emplace_back(k, v);
    return Status::OK();
  });
  ASSERT_OK(vm.InvokeMap(
      Value::I64(0),
      Value::List({Value::Str("u"), Value::I64(5), Value::Str("c")})));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first.str(), "u");
  EXPECT_EQ(out[0].second.i64(), 5);
}

TEST(Coverage2Test, WrappingArithmeticIsDefined) {
  // INT64_MAX + 1 wraps to INT64_MIN in both the VM and the evaluator.
  ProgramBuilder b("wrap");
  b.SetValueSchema(Schema({{"x", FieldType::kI64}}));
  auto& m = b.Map();
  m.LoadParam(1).GetFieldIndex(0).LoadI64(1).Add();
  m.LoadI64(0);
  m.Emit().Ret();
  mril::Program p = b.Build();
  mril::VmInstance vm(&p);
  Value emitted_key;
  vm.set_emit_sink([&emitted_key](const Value& k, const Value&) {
    emitted_key = k;
    return Status::OK();
  });
  ASSERT_OK(vm.InvokeMap(
      Value::I64(0),
      Value::List({Value::I64(std::numeric_limits<int64_t>::max())})));
  EXPECT_EQ(emitted_key.i64(), std::numeric_limits<int64_t>::min());
}

}  // namespace
}  // namespace manimal
