// Unit tests for the Manimal analyzer: findSelect (Figure 3),
// findProject (Figure 6), compression detection (Appendix C),
// descriptor plumbing, interval derivation, expression evaluation, and
// index-generation synthesis.

#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "analyzer/compression.h"
#include "analyzer/expr_eval.h"
#include "analyzer/project.h"
#include "analyzer/select.h"
#include "serde/record_codec.h"
#include "mril/builder.h"
#include "tests/test_util.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"

namespace manimal::analyzer {
namespace {

using mril::FunctionBuilder;
using mril::Program;
using mril::ProgramBuilder;

Schema WebSchema() { return workloads::WebPagesSchema(); }

Value WebRow(int64_t rank) {
  return Value::List(
      {Value::Str("http://u"), Value::I64(rank), Value::Str("c")});
}

// ---------------- findSelect ----------------

TEST(SelectTest, SimpleThresholdIsDetectedAndIndexable) {
  SelectResult r = FindSelect(workloads::ExampleRankFilter(10));
  ASSERT_TRUE(r.descriptor.has_value()) << r.miss_reason;
  const SelectionDescriptor& d = *r.descriptor;
  EXPECT_TRUE(d.indexable());
  EXPECT_EQ(d.indexed_expr->ToString(), "param1.field[1]");
  ASSERT_EQ(d.intervals.size(), 1u);
  EXPECT_FALSE(d.intervals[0].hi.has_value());
  ASSERT_TRUE(d.intervals[0].lo.has_value());
  EXPECT_EQ(d.intervals[0].lo->i64(), 10);
  EXPECT_FALSE(d.intervals[0].lo_inclusive);
}

TEST(SelectTest, FormulaMatchesActualEmissionBehaviour) {
  Program p = workloads::ExampleRankFilter(10);
  SelectResult r = FindSelect(p);
  ASSERT_TRUE(r.descriptor.has_value());
  for (int64_t rank : {-5, 0, 9, 10, 11, 1000}) {
    ASSERT_OK_AND_ASSIGN(
        bool formula_says,
        EvalFormula(r.descriptor->formula, Value::I64(0), WebRow(rank)));
    EXPECT_EQ(formula_says, rank > 10) << rank;
  }
}

TEST(SelectTest, MemberWriteVetoes) {
  SelectResult r = FindSelect(workloads::Figure2Unsafe(1));
  EXPECT_FALSE(r.descriptor.has_value());
  EXPECT_NE(r.miss_reason.find("member"), std::string::npos);
}

TEST(SelectTest, AlwaysEmittingMapHasNoSelection) {
  SelectResult r = FindSelect(workloads::Benchmark2Aggregation());
  EXPECT_FALSE(r.descriptor.has_value());
  EXPECT_TRUE(r.always_emits);
  EXPECT_TRUE(r.miss_reason.empty());
}

TEST(SelectTest, HashtableConditionVetoesWithSpecificReason) {
  SelectResult r = FindSelect(workloads::Benchmark4UdfAggregation());
  EXPECT_FALSE(r.descriptor.has_value());
  EXPECT_NE(r.miss_reason.find("purity knowledge"), std::string::npos);
}

TEST(SelectTest, ConjunctionBecomesOneInterval) {
  SelectResult r = FindSelect(workloads::Benchmark3Join(100, 200));
  ASSERT_TRUE(r.descriptor.has_value()) << r.miss_reason;
  ASSERT_EQ(r.descriptor->intervals.size(), 1u);
  const KeyInterval& iv = r.descriptor->intervals[0];
  EXPECT_EQ(iv.lo->i64(), 100);
  EXPECT_TRUE(iv.lo_inclusive);
  EXPECT_EQ(iv.hi->i64(), 200);
  EXPECT_TRUE(iv.hi_inclusive);
}

TEST(SelectTest, DisjunctionBecomesIntervalUnion) {
  // if (rank < 10 || rank > 90) emit — two intervals.
  ProgramBuilder b("two-tails");
  b.SetValueSchema(WebSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(10).CmpLt().JmpIfTrue("emit");
  m.LoadParam(1).GetField("rank").LoadI64(90).CmpGt().JmpIfFalse("end");
  m.Label("emit");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  SelectResult r = FindSelect(b.Build());
  ASSERT_TRUE(r.descriptor.has_value()) << r.miss_reason;
  ASSERT_EQ(r.descriptor->intervals.size(), 2u);
  // (-inf, 10) and (90, +inf)
  EXPECT_FALSE(r.descriptor->intervals[0].lo.has_value());
  EXPECT_EQ(r.descriptor->intervals[0].hi->i64(), 10);
  EXPECT_EQ(r.descriptor->intervals[1].lo->i64(), 90);
  EXPECT_FALSE(r.descriptor->intervals[1].hi.has_value());

  // The interval union must cover everything the formula accepts.
  for (int64_t rank = 0; rank <= 100; ++rank) {
    ASSERT_OK_AND_ASSIGN(bool accepted,
                         EvalFormula(r.descriptor->formula, Value::I64(0),
                                     WebRow(rank)));
    bool covered = false;
    for (const KeyInterval& iv : r.descriptor->intervals) {
      covered = covered || iv.Contains(Value::I64(rank));
    }
    if (accepted) {
      EXPECT_TRUE(covered) << rank;
    }
  }
}

TEST(SelectTest, EqualityBecomesPointInterval) {
  ProgramBuilder b("point");
  b.SetValueSchema(WebSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(42).CmpEq().JmpIfFalse("end");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  SelectResult r = FindSelect(b.Build());
  ASSERT_TRUE(r.descriptor.has_value());
  ASSERT_EQ(r.descriptor->intervals.size(), 1u);
  EXPECT_EQ(r.descriptor->intervals[0].lo->i64(), 42);
  EXPECT_EQ(r.descriptor->intervals[0].hi->i64(), 42);
}

TEST(SelectTest, TwoDifferentExpressionsAreNotRangeIndexable) {
  // rank > 5 && len(url) > 3: functional, detected, but no single
  // indexed expression.
  ProgramBuilder b("two-exprs");
  b.SetValueSchema(WebSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(5).CmpGt().JmpIfFalse("end");
  m.LoadParam(1).GetField("url").Call("str.len").LoadI64(3).CmpGt()
      .JmpIfFalse("end");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  SelectResult r = FindSelect(b.Build());
  ASSERT_TRUE(r.descriptor.has_value());
  EXPECT_FALSE(r.descriptor->indexable());
}

TEST(SelectTest, NegatedPolarityFlipsComparison) {
  // if (rank <= 10) return; emit  — i.e. emit when !(rank <= 10).
  ProgramBuilder b("negated");
  b.SetValueSchema(WebSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(10).CmpLe().JmpIfTrue("end");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  SelectResult r = FindSelect(b.Build());
  ASSERT_TRUE(r.descriptor.has_value());
  ASSERT_EQ(r.descriptor->intervals.size(), 1u);
  EXPECT_EQ(r.descriptor->intervals[0].lo->i64(), 10);
  EXPECT_FALSE(r.descriptor->intervals[0].lo_inclusive);
}

TEST(SelectTest, MirroredConstantOnLeft) {
  // if (10 < rank) emit
  ProgramBuilder b("mirrored");
  b.SetValueSchema(WebSchema());
  auto& m = b.Map();
  m.LoadI64(10).LoadParam(1).GetField("rank").CmpLt().JmpIfFalse("end");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  SelectResult r = FindSelect(b.Build());
  ASSERT_TRUE(r.descriptor.has_value());
  ASSERT_TRUE(r.descriptor->indexable());
  EXPECT_EQ(r.descriptor->intervals[0].lo->i64(), 10);
  EXPECT_FALSE(r.descriptor->intervals[0].lo_inclusive);
}

TEST(SelectTest, EmittedMemberDataVetoes) {
  // Condition is functional, but emit(k, member) — skipping rows is
  // still detectable... the value itself is not input-determined.
  ProgramBuilder b("member-value");
  b.SetValueSchema(WebSchema());
  b.AddMember("state", Value::I64(0));
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(5).CmpGt().JmpIfFalse("end");
  m.LoadParam(0).LoadMember("state").Emit();
  m.Label("end").Ret();
  SelectResult r = FindSelect(b.Build());
  EXPECT_FALSE(r.descriptor.has_value());
  EXPECT_FALSE(r.miss_reason.empty());
}

TEST(SelectTest, ContradictoryConjunctYieldsEmptyInterval) {
  // rank > 10 && rank < 5: unsatisfiable; still safe (empty scan).
  ProgramBuilder b("contradiction");
  b.SetValueSchema(WebSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(10).CmpGt().JmpIfFalse("end");
  m.LoadParam(1).GetField("rank").LoadI64(5).CmpLt().JmpIfFalse("end");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  SelectResult r = FindSelect(b.Build());
  ASSERT_TRUE(r.descriptor.has_value());
  EXPECT_TRUE(r.descriptor->indexable());
  EXPECT_TRUE(r.descriptor->intervals.empty());
}

// ---------------- findProject ----------------

TEST(ProjectTest, DetectsUnusedFields) {
  ProjectResult r = FindProject(workloads::ProjectionQuery(5));
  ASSERT_TRUE(r.descriptor.has_value()) << r.miss_reason;
  EXPECT_EQ(r.descriptor->used_fields, (std::vector<int>{0, 1}));
  EXPECT_EQ(r.descriptor->unneeded_fields, (std::vector<int>{2}));
}

TEST(ProjectTest, OpaqueInputDefeatsProjection) {
  ProjectResult r = FindProject(workloads::Benchmark1Selection(5));
  EXPECT_FALSE(r.descriptor.has_value());
  EXPECT_NE(r.miss_reason.find("custom serialization"),
            std::string::npos);
}

TEST(ProjectTest, WholeRecordEmissionUsesEverything) {
  ProjectResult r = FindProject(workloads::Benchmark3Join(1, 2));
  EXPECT_FALSE(r.descriptor.has_value());
  EXPECT_TRUE(r.all_fields_used);
}

TEST(ProjectTest, LogOnlyFieldsAreProjectedAway) {
  // content only feeds a debug log: Appendix C says logs don't count.
  ProgramBuilder b("log-only");
  b.SetValueSchema(WebSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("content").Log();
  m.LoadParam(1).GetField("url");
  m.LoadI64(1);
  m.Emit().Ret();
  ProjectResult r = FindProject(b.Build());
  ASSERT_TRUE(r.descriptor.has_value());
  EXPECT_EQ(r.descriptor->used_fields, (std::vector<int>{0}));
  EXPECT_EQ(r.descriptor->unneeded_fields, (std::vector<int>{1, 2}));
}

TEST(ProjectTest, MemberStoresKeepFieldsAlive) {
  // rank flows into a member; members can reach later emits, so the
  // field must be considered used.
  ProgramBuilder b("member-flow");
  b.SetValueSchema(WebSchema());
  b.AddMember("acc", Value::I64(0));
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank").StoreMember("acc");
  m.LoadParam(1).GetField("url");
  m.LoadI64(1);
  m.Emit().Ret();
  ProjectResult r = FindProject(b.Build());
  ASSERT_TRUE(r.descriptor.has_value());
  EXPECT_EQ(r.descriptor->used_fields, (std::vector<int>{0, 1}));
}

TEST(ProjectTest, ImpureCallsVetoProjection) {
  ProjectResult r = FindProject(workloads::Benchmark4UdfAggregation());
  EXPECT_FALSE(r.descriptor.has_value());
  EXPECT_NE(r.miss_reason.find("purity"), std::string::npos);
}

TEST(ProjectTest, ConditionFieldsAreLive) {
  ProjectResult r = FindProject(workloads::SelectionCountQuery(5));
  ASSERT_TRUE(r.descriptor.has_value());
  // url unused, rank used (condition + emit key).
  EXPECT_EQ(r.descriptor->used_fields, (std::vector<int>{1}));
}

// ---------------- compression ----------------

TEST(DeltaTest, DetectsIntegerFields) {
  DeltaResult r = FindDeltaCompression(workloads::Benchmark2Aggregation());
  ASSERT_TRUE(r.descriptor.has_value());
  EXPECT_EQ(r.descriptor->numeric_fields,
            (std::vector<int>{workloads::kUvVisitDate,
                              workloads::kUvAdRevenue,
                              workloads::kUvDuration}));
}

TEST(DeltaTest, OpaqueInputDefeatsDelta) {
  DeltaResult r = FindDeltaCompression(workloads::Benchmark1Selection(5));
  EXPECT_FALSE(r.descriptor.has_value());
  EXPECT_FALSE(r.miss_reason.empty());
}

TEST(DeltaTest, TextOnlySchemaHasNothingToCompress) {
  DeltaResult r =
      FindDeltaCompression(workloads::Benchmark4UdfAggregation());
  EXPECT_FALSE(r.descriptor.has_value());
  EXPECT_TRUE(r.no_numeric_fields);
}

TEST(DirectOpTest, EmitKeyOnlyUseIsEligible) {
  DirectOpResult r = FindDirectOperation(workloads::DirectOpQuery());
  ASSERT_TRUE(r.descriptor.has_value()) << r.miss_reason;
  EXPECT_EQ(r.descriptor->fields,
            (std::vector<int>{workloads::kUvDestUrl}));
}

TEST(DirectOpTest, ReduceReadingKeyVetoesEmitKeyUse) {
  // DurationSumQuery's reduce emits its key -> compressed codes would
  // leak into output.
  DirectOpResult r = FindDirectOperation(workloads::DurationSumQuery());
  EXPECT_FALSE(r.descriptor.has_value());
}

TEST(DirectOpTest, SortedOutputRequirementVetoes) {
  ProgramBuilder b("sorted-out");
  b.SetKeyType(FieldType::kI64)
      .SetValueSchema(workloads::UserVisitsSchema())
      .RequireSortedOutput();
  auto& m = b.Map();
  m.LoadParam(1).GetField("destURL");
  m.LoadParam(1).GetField("duration");
  m.Emit().Ret();
  DirectOpResult r = FindDirectOperation(b.Build());
  EXPECT_FALSE(r.descriptor.has_value());
}

TEST(DirectOpTest, EqualityAgainstConstantYieldsPatch) {
  ProgramBuilder b("const-eq");
  b.SetValueSchema(workloads::UserVisitsSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("countryCode").LoadStr("USA").CmpEq()
      .JmpIfFalse("end");
  m.LoadParam(1).GetField("duration");
  m.LoadI64(1);
  m.Emit();
  m.Label("end").Ret();
  DirectOpResult r = FindDirectOperation(b.Build());
  ASSERT_TRUE(r.descriptor.has_value()) << r.miss_reason;
  EXPECT_EQ(r.descriptor->fields,
            (std::vector<int>{workloads::kUvCountryCode}));
  ASSERT_EQ(r.descriptor->const_patches.size(), 1u);
  EXPECT_EQ(r.descriptor->const_patches[0].field,
            workloads::kUvCountryCode);
}

TEST(DirectOpTest, SubstringUseIsIneligible) {
  ProgramBuilder b("substr-use");
  b.SetValueSchema(workloads::UserVisitsSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("destURL").Call("url.host");
  m.LoadParam(1).GetField("duration");
  m.Emit().Ret();
  DirectOpResult r = FindDirectOperation(b.Build());
  EXPECT_FALSE(r.descriptor.has_value());
}

// ---------------- expression evaluation ----------------

TEST(ExprEvalTest, EvaluatesRecoveredSelectionKey) {
  SelectResult r = FindSelect(workloads::Benchmark1Selection(100));
  ASSERT_TRUE(r.descriptor.has_value());
  // Evaluate the indexed expression against an opaque blob.
  Record tuple = {Value::Str("http://u"), Value::I64(777),
                  Value::I64(3)};
  ASSERT_OK_AND_ASSIGN(std::string blob, manimal::OpaqueTupleCodec::Pack(tuple));
  ASSERT_OK_AND_ASSIGN(
      Value key, EvalExpr(r.descriptor->indexed_expr, Value::I64(0),
                          Value::Str(blob)));
  EXPECT_EQ(key.i64(), 777);
}

TEST(ExprEvalTest, MemberExpressionsRefuseEvaluation) {
  analysis::ExprRef member = analysis::Expr::MakeMember(0, 0);
  EXPECT_FALSE(EvalExpr(member, Value::I64(0), Value::Null()).ok());
}

// ---------------- full Analyze + synthesis ----------------

TEST(AnalyzerTest, ReportForBenchmark2) {
  ASSERT_OK_AND_ASSIGN(AnalysisReport report,
                       Analyze(workloads::Benchmark2Aggregation()));
  EXPECT_FALSE(report.selection.has_value());
  EXPECT_TRUE(report.projection.has_value());
  EXPECT_TRUE(report.delta.has_value());
  EXPECT_FALSE(report.direct_op.has_value());
  EXPECT_TRUE(report.misses.empty()) << report.ToString();
}

TEST(AnalyzerTest, MalformedProgramIsAnError) {
  Program p;
  p.name = "broken";
  p.map_fn.name = "map";
  p.map_fn.num_params = 2;
  p.map_fn.code = {{mril::Opcode::kPop, 0}, {mril::Opcode::kReturn, 0}};
  EXPECT_FALSE(Analyze(p).ok());
}

TEST(IndexGenTest, MaximalCombinationComesFirst) {
  ASSERT_OK_AND_ASSIGN(AnalysisReport report,
                       Analyze(workloads::Benchmark2Aggregation()));
  auto specs = SynthesizeIndexPrograms(workloads::Benchmark2Aggregation(),
                                       report);
  ASSERT_FALSE(specs.empty());
  EXPECT_TRUE(specs[0].projection);
  EXPECT_TRUE(specs[0].delta);
  EXPECT_FALSE(specs[0].btree);
  // Delta fields restricted to kept fields.
  for (int f : specs[0].delta_fields) {
    EXPECT_NE(std::find(specs[0].kept_fields.begin(),
                        specs[0].kept_fields.end(), f),
              specs[0].kept_fields.end());
  }
}

TEST(IndexGenTest, SelectionConflictsWithDelta) {
  ASSERT_OK_AND_ASSIGN(AnalysisReport report,
                       Analyze(workloads::Benchmark3Join(1, 2)));
  auto specs =
      SynthesizeIndexPrograms(workloads::Benchmark3Join(1, 2), report);
  ASSERT_FALSE(specs.empty());
  // Paper footnote 3: selection is favored; the maximal program must
  // not combine btree and delta.
  EXPECT_TRUE(specs[0].btree);
  EXPECT_FALSE(specs[0].delta);
}

TEST(IndexGenTest, SignaturesAreStableAndDistinct) {
  ASSERT_OK_AND_ASSIGN(AnalysisReport report,
                       Analyze(workloads::Benchmark2Aggregation()));
  auto a = SynthesizeIndexPrograms(workloads::Benchmark2Aggregation(),
                                   report);
  auto b = SynthesizeIndexPrograms(workloads::Benchmark2Aggregation(),
                                   report);
  ASSERT_EQ(a.size(), b.size());
  std::set<std::string> signatures;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Signature(), b[i].Signature());
    signatures.insert(a[i].Signature());
  }
  EXPECT_EQ(signatures.size(), a.size());  // all distinct
}

TEST(IndexGenTest, NoOptimizationsNoSpecs) {
  ASSERT_OK_AND_ASSIGN(AnalysisReport report,
                       Analyze(workloads::Benchmark4UdfAggregation()));
  auto specs = SynthesizeIndexPrograms(
      workloads::Benchmark4UdfAggregation(), report);
  EXPECT_TRUE(specs.empty());
}

TEST(IndexGenTest, ThresholdConstantDoesNotChangeSignature) {
  // Different thresholds over the same keyed expression share the
  // artifact (the B+Tree covers all keys; intervals narrow at plan
  // time).
  ASSERT_OK_AND_ASSIGN(AnalysisReport r1,
                       Analyze(workloads::SelectionCountQuery(10)));
  ASSERT_OK_AND_ASSIGN(AnalysisReport r2,
                       Analyze(workloads::SelectionCountQuery(99)));
  auto s1 =
      SynthesizeIndexPrograms(workloads::SelectionCountQuery(10), r1);
  auto s2 =
      SynthesizeIndexPrograms(workloads::SelectionCountQuery(99), r2);
  ASSERT_FALSE(s1.empty());
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].Signature(), s2[i].Signature());
  }
}

}  // namespace
}  // namespace manimal::analyzer
