// Tests for the execution fabric: pair files, input planning (seqscan
// and both B+Tree layouts), the MapReduce engine, and index builds.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analyzer/analyzer.h"
#include "common/faulty_env.h"
#include "exec/engine.h"
#include "exec/index_build.h"
#include "exec/pairfile.h"
#include "mril/builder.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"

namespace manimal::exec {
namespace {

using testing::TempDir;

// ---------------- pair files ----------------

TEST(PairFileTest, Roundtrip) {
  TempDir dir("pairs");
  std::string path = dir.file("out.prs");
  {
    ASSERT_OK_AND_ASSIGN(auto writer, PairFileWriter::Create(path));
    ASSERT_OK(writer->Append(Value::Str("k1"), Value::I64(1)));
    ASSERT_OK(writer->Append(Value::I64(2), Value::List({Value::I64(3)})));
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto pairs, ReadAllPairs(path));
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].first.str(), "k1");
  EXPECT_EQ(pairs[1].second.list()[0].i64(), 3);
}

TEST(PairFileTest, CanonicalFormIsOrderInsensitive) {
  TempDir dir("pairs2");
  auto write = [&dir](const std::string& name, bool reversed) {
    auto writer =
        std::move(PairFileWriter::Create(dir.file(name))).value();
    std::vector<std::pair<Value, Value>> pairs = {
        {Value::Str("a"), Value::I64(1)}, {Value::Str("b"), Value::I64(2)}};
    if (reversed) std::reverse(pairs.begin(), pairs.end());
    for (auto& [k, v] : pairs) EXPECT_OK(writer->Append(k, v));
    EXPECT_OK(writer->Finish().status());
  };
  write("fwd.prs", false);
  write("rev.prs", true);
  ASSERT_OK_AND_ASSIGN(auto a, ReadCanonicalPairs(dir.file("fwd.prs")));
  ASSERT_OK_AND_ASSIGN(auto b, ReadCanonicalPairs(dir.file("rev.prs")));
  EXPECT_EQ(a, b);
}

TEST(PairFileTest, RejectsGarbage) {
  TempDir dir("pairs3");
  ASSERT_OK(WriteStringToFile(dir.file("bad"), "garbage here"));
  EXPECT_FALSE(ReadAllPairs(dir.file("bad")).ok());
}

TEST(PairFileTest, CorruptFooterCountFailsWithoutHugeAllocation) {
  // A valid magic plus an absurd footer count must surface Corruption
  // instead of reserving footer-count entries up front.
  TempDir dir("pairs4");
  std::string data = "MPRS";
  uint64_t bogus_count = 1ull << 60;
  data.append(reinterpret_cast<const char*>(&bogus_count), 8);
  ASSERT_OK(WriteStringToFile(dir.file("bad.prs"), data));
  auto result = ReadAllPairs(dir.file("bad.prs"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption())
      << result.status().ToString();
}

TEST(PairFileTest, TruncatedFileWithInflatedCountIsCorruption) {
  // Write a real two-pair file, then hand-append a footer claiming
  // far more pairs than the payload holds.
  TempDir dir("pairs5");
  std::string path = dir.file("out.prs");
  {
    ASSERT_OK_AND_ASSIGN(auto writer, PairFileWriter::Create(path));
    ASSERT_OK(writer->Append(Value::Str("k1"), Value::I64(1)));
    ASSERT_OK(writer->Append(Value::Str("k2"), Value::I64(2)));
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(std::string data, ReadFileToString(path));
  uint64_t inflated = 1ull << 50;
  data.resize(data.size() - 8);
  data.append(reinterpret_cast<const char*>(&inflated), 8);
  ASSERT_OK(WriteStringToFile(path, data));
  auto result = ReadAllPairs(path);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption())
      << result.status().ToString();
}

// ---------------- engine fixtures ----------------

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : dir_("engine") {
    workloads::WebPagesOptions gen;
    gen.num_pages = 3000;
    gen.content_len = 64;
    gen.rank_range = 100;
    auto stats =
        workloads::GenerateWebPages(dir_.file("pages.msq"), gen);
    EXPECT_TRUE(stats.ok());
  }

  JobConfig Config(const std::string& out_name) {
    JobConfig config;
    config.map_parallelism = 3;
    config.num_partitions = 3;
    config.temp_dir = dir_.file("tmp-" + out_name);
    config.output_path = dir_.file(out_name);
    config.simulated_startup_seconds = 0;
    config.simulated_disk_bytes_per_sec = 0;
    return config;
  }

  ExecutionDescriptor Baseline(const mril::Program& program) {
    return optimizer::BaselineDescriptor(program, dir_.file("pages.msq"));
  }

  TempDir dir_;
};

TEST_F(EngineTest, MapOnlyJobEmitsFilteredPairs) {
  // rank > 49 keeps about half the rows.
  mril::Program program = workloads::ProjectionQuery(49);
  ASSERT_OK_AND_ASSIGN(JobResult result,
                       RunJob(Baseline(program), Config("out.prs")));
  EXPECT_EQ(result.counters.input_records, 3000u);
  EXPECT_EQ(result.counters.map_invocations, 3000u);
  EXPECT_GT(result.counters.output_records, 1000u);
  EXPECT_LT(result.counters.output_records, 2000u);
  ASSERT_OK_AND_ASSIGN(auto pairs, ReadAllPairs(dir_.file("out.prs")));
  EXPECT_EQ(pairs.size(), result.counters.output_records);
  for (const auto& [url, rank] : pairs) {
    EXPECT_GT(rank.i64(), 49);
  }
}

TEST_F(EngineTest, ReduceJobGroupsAndSums) {
  // count per rank: ranks in [0,100) over 3000 rows.
  mril::Program program = workloads::SelectionCountQuery(-1);
  ASSERT_OK_AND_ASSIGN(JobResult result,
                       RunJob(Baseline(program), Config("out.prs")));
  ASSERT_OK_AND_ASSIGN(auto pairs, ReadAllPairs(dir_.file("out.prs")));
  EXPECT_EQ(pairs.size(), result.counters.reduce_groups);
  int64_t total = 0;
  std::set<int64_t> seen_ranks;
  for (const auto& [rank, count] : pairs) {
    total += count.i64();
    EXPECT_TRUE(seen_ranks.insert(rank.i64()).second)
        << "duplicate group key";
  }
  EXPECT_EQ(total, 3000);  // every record counted exactly once
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  mril::Program program = workloads::SelectionCountQuery(20);
  ASSERT_OK(RunJob(Baseline(program), Config("a.prs")).status());
  ASSERT_OK(RunJob(Baseline(program), Config("b.prs")).status());
  ASSERT_OK_AND_ASSIGN(auto a, ReadCanonicalPairs(dir_.file("a.prs")));
  ASSERT_OK_AND_ASSIGN(auto b, ReadCanonicalPairs(dir_.file("b.prs")));
  EXPECT_EQ(a, b);
}

TEST_F(EngineTest, PartitionCountDoesNotChangeOutput) {
  mril::Program program = workloads::SelectionCountQuery(20);
  JobConfig one = Config("one.prs");
  one.num_partitions = 1;
  JobConfig many = Config("many.prs");
  many.num_partitions = 7;
  ASSERT_OK(RunJob(Baseline(program), one).status());
  ASSERT_OK(RunJob(Baseline(program), many).status());
  ASSERT_OK_AND_ASSIGN(auto a, ReadCanonicalPairs(dir_.file("one.prs")));
  ASSERT_OK_AND_ASSIGN(auto b, ReadCanonicalPairs(dir_.file("many.prs")));
  EXPECT_EQ(a, b);
}

TEST_F(EngineTest, UserErrorFailsTheJob) {
  // map divides by a field that is zero for some rows.
  mril::ProgramBuilder b("boom");
  b.SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadI64(100).LoadParam(1).GetField("rank").Div();
  m.LoadI64(0).Emit().Ret();
  mril::Program program = b.Build();
  auto result = RunJob(Baseline(program), Config("out.prs"));
  EXPECT_FALSE(result.ok());  // some row has rank == 0
}

TEST_F(EngineTest, LogMessagesAreCounted) {
  mril::ProgramBuilder b("logger");
  b.SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank").Log();
  m.LoadParam(0).LoadI64(1).Emit().Ret();
  ASSERT_OK_AND_ASSIGN(JobResult result,
                       RunJob(Baseline(b.Build()), Config("out.prs")));
  EXPECT_EQ(result.counters.log_messages, 3000u);
}

TEST_F(EngineTest, SimulatedCostsAppearInReportedTime) {
  mril::Program program = workloads::ProjectionQuery(1000);  // emits none
  JobConfig config = Config("out.prs");
  config.simulated_startup_seconds = 2.5;
  config.simulated_disk_bytes_per_sec = 1u << 20;
  ASSERT_OK_AND_ASSIGN(JobResult result,
                       RunJob(Baseline(program), config));
  EXPECT_GT(result.simulated_io_seconds, 0.0);
  EXPECT_GE(result.reported_seconds,
            2.5 + result.simulated_io_seconds);
}

TEST_F(EngineTest, PhaseBreakdownCoversWallTime) {
  mril::Program program = workloads::SelectionCountQuery(-1);
  ASSERT_OK_AND_ASSIGN(JobResult result,
                       RunJob(Baseline(program), Config("out.prs")));
  ASSERT_FALSE(result.phase_breakdown.empty());
  EXPECT_TRUE(result.phase_breakdown.count("plan"));
  EXPECT_TRUE(result.phase_breakdown.count("map"));
  EXPECT_TRUE(result.phase_breakdown.count("reduce"));
  double sum = 0;
  for (const auto& [name, stat] : result.phase_breakdown) {
    EXPECT_GE(stat.seconds, 0.0) << name;
    sum += stat.seconds;
  }
  // The phases are contiguous stopwatch regions of the job, so their
  // sum tracks the measured wall time closely.
  EXPECT_NEAR(sum, result.wall_seconds,
              0.05 * result.wall_seconds + 0.01);
  // The map phase moved at least the input bytes.
  EXPECT_GE(result.phase_breakdown["map"].bytes,
            result.counters.input_bytes);
}

TEST_F(EngineTest, MapOnlyJobStillReportsPhases) {
  mril::Program program = workloads::ProjectionQuery(49);
  ASSERT_OK_AND_ASSIGN(JobResult result,
                       RunJob(Baseline(program), Config("out.prs")));
  EXPECT_FALSE(result.phase_breakdown.empty());
  EXPECT_TRUE(result.phase_breakdown.count("map"));
}

TEST_F(EngineTest, ShuffleSpillEventsMatchJobCounters) {
  // Emit the whole content column through the shuffle into a single
  // partition with the minimum sort budget (the engine floors each
  // mapper's share at 64 KiB) so spilling is forced.
  TempDir dir("spill");
  workloads::WebPagesOptions gen;
  gen.num_pages = 20000;
  gen.content_len = 128;
  gen.rank_range = 100;
  ASSERT_TRUE(
      workloads::GenerateWebPages(dir.file("pages.msq"), gen).ok());

  mril::ProgramBuilder b("spiller");
  b.SetKeyType(FieldType::kI64)
      .SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank");
  m.LoadParam(1).GetField("content");
  m.Emit().Ret();
  auto& r = b.Reduce();
  r.LoadParam(0);
  r.LoadParam(1).Call("list.len");
  r.Emit().Ret();
  mril::Program program = b.Build();

  JobConfig config;
  config.map_parallelism = 2;
  config.num_partitions = 1;
  config.sort_buffer_bytes = 1;  // floored to 64 KiB per mapper
  config.temp_dir = dir.file("tmp");
  config.output_path = dir.file("out.prs");
  config.simulated_startup_seconds = 0;
  config.simulated_disk_bytes_per_sec = 0;

  int64_t runs_before =
      obs::MetricsRegistry::Get().CounterValue("shuffle.spilled_runs");
  ASSERT_OK_AND_ASSIGN(
      JobResult result,
      RunJob(optimizer::BaselineDescriptor(program,
                                           dir.file("pages.msq")),
             config));
  int64_t runs_after =
      obs::MetricsRegistry::Get().CounterValue("shuffle.spilled_runs");

  EXPECT_GT(result.counters.shuffle_spilled_runs, 0u);
  // The registry counter advanced by exactly the spills this job saw.
  EXPECT_EQ(runs_after - runs_before,
            static_cast<int64_t>(result.counters.shuffle_spilled_runs));
}

TEST_F(EngineTest, MissingInputIsAnError) {
  mril::Program program = workloads::ProjectionQuery(1);
  ExecutionDescriptor d =
      optimizer::BaselineDescriptor(program, dir_.file("nope.msq"));
  EXPECT_FALSE(RunJob(d, Config("out.prs")).ok());
}

TEST_F(EngineTest, NonPositiveParallelismIsNormalized) {
  // Regression: map_parallelism <= 0 used to reach PlanInput as a
  // non-positive split hint while the pools clamped separately. The
  // engine now normalizes the knobs once, so degenerate configs run
  // and produce the same output.
  mril::Program program = workloads::SelectionCountQuery(20);
  ASSERT_OK(RunJob(Baseline(program), Config("ref.prs")).status());

  JobConfig degenerate = Config("deg.prs");
  degenerate.map_parallelism = 0;
  degenerate.num_partitions = -3;
  ASSERT_OK_AND_ASSIGN(JobResult result,
                       RunJob(Baseline(program), degenerate));
  EXPECT_EQ(result.counters.input_records, 3000u);

  JobConfig negative = Config("neg.prs");
  negative.map_parallelism = -7;
  ASSERT_OK(RunJob(Baseline(program), negative).status());

  ASSERT_OK_AND_ASSIGN(auto ref, ReadCanonicalPairs(dir_.file("ref.prs")));
  ASSERT_OK_AND_ASSIGN(auto deg, ReadCanonicalPairs(dir_.file("deg.prs")));
  ASSERT_OK_AND_ASSIGN(auto neg, ReadCanonicalPairs(dir_.file("neg.prs")));
  EXPECT_EQ(ref, deg);
  EXPECT_EQ(ref, neg);
}

TEST_F(EngineTest, OutOfRangeKeptFieldsFailCleanly) {
  // Regression: an out-of-range output_kept_fields entry used to be
  // an unchecked record[f] read at every append; it must fail at
  // writer creation instead.
  mril::Program program = workloads::ProjectionQuery(49);
  JobConfig config = Config("out.msq");
  config.output_schema =
      Schema({{"url", FieldType::kStr}, {"rank", FieldType::kI64}});
  config.output_kept_fields = {0, 5};
  auto result = RunJob(Baseline(program), config);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << result.status().ToString();

  JobConfig negative = Config("out2.msq");
  negative.output_schema = config.output_schema;
  negative.output_kept_fields = {-1};
  EXPECT_TRUE(RunJob(Baseline(program), negative)
                  .status()
                  .IsInvalidArgument());
}

TEST(EngineSpillTest, ForcedSpillsDoNotChangeOutput) {
  // The full data path — per-mapper spill buffers, run files, heap
  // merge, streaming reduce — against the no-spill in-memory path.
  TempDir dir("spill-equiv");
  workloads::WebPagesOptions gen;
  gen.num_pages = 20000;
  gen.content_len = 128;
  gen.rank_range = 100;
  ASSERT_TRUE(
      workloads::GenerateWebPages(dir.file("pages.msq"), gen).ok());

  // emit(rank, content); reduce(rank, contents) -> count.
  mril::ProgramBuilder b("spill-equiv");
  b.SetKeyType(FieldType::kI64)
      .SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank");
  m.LoadParam(1).GetField("content");
  m.Emit().Ret();
  auto& r = b.Reduce();
  r.LoadParam(0);
  r.LoadParam(1).Call("list.len");
  r.Emit().Ret();
  mril::Program program = b.Build();
  ExecutionDescriptor d =
      optimizer::BaselineDescriptor(program, dir.file("pages.msq"));

  auto config = [&](const std::string& out) {
    JobConfig c;
    c.map_parallelism = 4;
    c.num_partitions = 3;
    c.temp_dir = dir.file("tmp-" + out);
    c.output_path = dir.file(out);
    c.simulated_startup_seconds = 0;
    c.simulated_disk_bytes_per_sec = 0;
    return c;
  };

  ASSERT_OK_AND_ASSIGN(JobResult in_memory,
                       RunJob(d, config("mem.prs")));
  EXPECT_EQ(in_memory.counters.shuffle_spilled_runs, 0u);

  JobConfig spilling = config("spill.prs");
  spilling.sort_buffer_bytes = 1;  // floored to 64 KiB per mapper
  ASSERT_OK_AND_ASSIGN(JobResult spilled, RunJob(d, spilling));
  EXPECT_GT(spilled.counters.shuffle_spilled_runs, 4u);

  ASSERT_OK_AND_ASSIGN(auto a, ReadCanonicalPairs(dir.file("mem.prs")));
  ASSERT_OK_AND_ASSIGN(auto b2, ReadCanonicalPairs(dir.file("spill.prs")));
  EXPECT_EQ(a, b2);
}

// ---------------- index build + btree input plans ----------------

class IndexedExecTest : public ::testing::Test {
 protected:
  IndexedExecTest() : dir_("idxexec") {
    workloads::WebPagesOptions gen;
    gen.num_pages = 4000;
    gen.content_len = 64;
    gen.rank_range = 1000;
    EXPECT_TRUE(
        workloads::GenerateWebPages(dir_.file("pages.msq"), gen).ok());
  }

  // Builds the given spec and returns the catalog entry.
  IndexBuildResult Build(const analyzer::IndexGenProgram& spec) {
    auto result =
        BuildIndexArtifact(spec, dir_.file("pages.msq"),
                           dir_.file("artifacts"), dir_.file("idxtmp"));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  JobConfig Config(const std::string& out_name) {
    JobConfig config;
    config.map_parallelism = 3;
    config.num_partitions = 2;
    config.temp_dir = dir_.file("tmp-" + out_name);
    config.output_path = dir_.file(out_name);
    config.simulated_startup_seconds = 0;
    config.simulated_disk_bytes_per_sec = 0;
    return config;
  }

  TempDir dir_;
};

TEST_F(IndexedExecTest, LocatorBTreeMatchesBaseline) {
  mril::Program program = workloads::SelectionCountQuery(900);
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  // Find the locator-only btree spec.
  const analyzer::IndexGenProgram* spec = nullptr;
  for (const auto& s : specs) {
    if (s.btree && !s.clustered && !s.projection) spec = &s;
  }
  ASSERT_NE(spec, nullptr);
  IndexBuildResult build = Build(*spec);
  EXPECT_EQ(build.entry.base_path, dir_.file("pages.msq"));
  // A locator index is much smaller than the data.
  EXPECT_LT(build.entry.artifact_bytes, build.entry.input_bytes / 3);

  ASSERT_OK(RunJob(optimizer::BaselineDescriptor(program,
                                                 dir_.file("pages.msq")),
                   Config("base.prs"))
                .status());

  ExecutionDescriptor d;
  d.access_path = AccessPath::kBTree;
  d.data_path = build.entry.artifact_path;
  d.base_path = build.entry.base_path;
  d.intervals = report.selection->intervals;
  d.program = program;
  ASSERT_OK_AND_ASSIGN(JobResult optimized,
                       RunJob(d, Config("opt.prs")));

  ASSERT_OK_AND_ASSIGN(auto a, ReadCanonicalPairs(dir_.file("base.prs")));
  ASSERT_OK_AND_ASSIGN(auto b, ReadCanonicalPairs(dir_.file("opt.prs")));
  EXPECT_EQ(a, b);
  // ~10% selectivity: far fewer map invocations than records.
  EXPECT_LT(optimized.counters.map_invocations, 1000u);
}

TEST_F(IndexedExecTest, ClusteredBTreeMatchesBaseline) {
  mril::Program program = workloads::SelectionCountQuery(250);
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  const analyzer::IndexGenProgram* spec = nullptr;
  for (const auto& s : specs) {
    if (s.btree && s.clustered && !s.projection) spec = &s;
  }
  ASSERT_NE(spec, nullptr);
  IndexBuildResult build = Build(*spec);
  EXPECT_TRUE(build.entry.base_path.empty());  // self-contained

  ASSERT_OK(RunJob(optimizer::BaselineDescriptor(program,
                                                 dir_.file("pages.msq")),
                   Config("base.prs"))
                .status());

  ExecutionDescriptor d;
  d.access_path = AccessPath::kBTree;
  d.clustered = true;
  d.data_path = build.entry.artifact_path;
  d.intervals = report.selection->intervals;
  d.program = program;
  d.artifact_meta = columnar::PlainMeta(program.value_schema);
  ASSERT_OK_AND_ASSIGN(JobResult optimized,
                       RunJob(d, Config("opt.prs")));

  ASSERT_OK_AND_ASSIGN(auto a, ReadCanonicalPairs(dir_.file("base.prs")));
  ASSERT_OK_AND_ASSIGN(auto b, ReadCanonicalPairs(dir_.file("opt.prs")));
  EXPECT_EQ(a, b);
}

TEST_F(IndexedExecTest, ProjectedArtifactPreservesKeysAndFields) {
  mril::Program program = workloads::ProjectionQuery(500);
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  const analyzer::IndexGenProgram* spec = nullptr;
  for (const auto& s : specs) {
    if (s.projection && !s.btree && !s.delta) spec = &s;
  }
  ASSERT_NE(spec, nullptr);
  IndexBuildResult build = Build(*spec);
  EXPECT_LT(build.entry.artifact_bytes, build.entry.input_bytes);

  ASSERT_OK(RunJob(optimizer::BaselineDescriptor(program,
                                                 dir_.file("pages.msq")),
                   Config("base.prs"))
                .status());

  ExecutionDescriptor d;
  d.access_path = AccessPath::kSeqScan;
  d.data_path = build.entry.artifact_path;
  d.program = program;
  d.field_remap = {0, 1, -1};  // url, rank kept; content dropped
  ASSERT_OK_AND_ASSIGN(JobResult optimized,
                       RunJob(d, Config("opt.prs")));
  ASSERT_OK_AND_ASSIGN(auto a, ReadCanonicalPairs(dir_.file("base.prs")));
  ASSERT_OK_AND_ASSIGN(auto b, ReadCanonicalPairs(dir_.file("opt.prs")));
  EXPECT_EQ(a, b);
  EXPECT_LT(optimized.counters.input_bytes,
            build.entry.input_bytes / 2);
}

TEST_F(IndexedExecTest, BuildRejectsMismatchedSchema) {
  analyzer::IndexGenProgram spec;
  spec.projection = true;
  spec.kept_fields = {0};
  spec.input_schema = "other:i64";
  EXPECT_FALSE(BuildIndexArtifact(spec, dir_.file("pages.msq"),
                                  dir_.file("artifacts"),
                                  dir_.file("idxtmp"))
                   .ok());
}

TEST_F(IndexedExecTest, BuildRejectsForbiddenCombos) {
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(
                                        workloads::SelectionCountQuery(1)));
  analyzer::IndexGenProgram spec;
  spec.btree = true;
  spec.delta = true;
  spec.key_expr = report.selection->indexed_expr;
  spec.delta_fields = {1};
  spec.input_schema = workloads::WebPagesSchema().ToString();
  EXPECT_TRUE(BuildIndexArtifact(spec, dir_.file("pages.msq"),
                                 dir_.file("artifacts"),
                                 dir_.file("idxtmp"))
                  .status()
                  .IsNotSupported());
}

// ---------------- fault injection / task retry ----------------

// Small fixture of its own: the crash-recovery sweep runs dozens of
// whole jobs, so the input stays small.
class EngineFaultTest : public ::testing::Test {
 protected:
  EngineFaultTest() : dir_("engine-fault") {
    workloads::WebPagesOptions gen;
    gen.num_pages = 600;
    gen.content_len = 48;
    gen.rank_range = 100;
    EXPECT_TRUE(
        workloads::GenerateWebPages(dir_.file("pages.msq"), gen).ok());
  }

  JobConfig Config(const std::string& out_name) {
    JobConfig config;
    config.map_parallelism = 2;
    config.num_partitions = 2;
    config.temp_dir = dir_.file("tmp-" + out_name);
    config.output_path = dir_.file(out_name);
    config.simulated_startup_seconds = 0;
    config.simulated_disk_bytes_per_sec = 0;
    config.retry_backoff_ms = 0;
    // The sweep relies on the armed-operation count being identical
    // across runs; speculative chains would perturb it.
    config.enable_speculation = false;
    return config;
  }

  ExecutionDescriptor Baseline(const mril::Program& program) {
    return optimizer::BaselineDescriptor(program, dir_.file("pages.msq"));
  }

  TempDir dir_;
};

TEST_F(EngineFaultTest, EveryInjectionSiteIsSurvivable) {
  // Parameterized over the injection site: fail the Nth armed IO
  // operation — spill writes, part-file writes, renames, input block
  // reads, seals' preceding commits — and the retried job must still
  // produce the fault-free output.
  mril::Program program = workloads::SelectionCountQuery(50);
  ASSERT_OK_AND_ASSIGN(JobResult clean,
                       RunJob(Baseline(program), Config("clean.prs")));
  ASSERT_OK_AND_ASSIGN(auto canonical,
                       ReadCanonicalPairs(clean.output_path));

  // Calibrate: count the armed operations of one fault-free job.
  uint64_t num_sites = 0;
  {
    FaultyEnv::Config count_only;
    count_only.rate = 0;
    ScopedFaultInjection inject(count_only);
    ASSERT_OK(RunJob(Baseline(program), Config("count.prs")).status());
    num_sites = FaultyEnv::Get().stats().evaluated;
  }
  ASSERT_GT(num_sites, 0u);

  // Sweep up to 40 sites spread across the whole job (every site when
  // there are fewer).
  const uint64_t step = std::max<uint64_t>(1, num_sites / 40);
  for (uint64_t nth = 1; nth <= num_sites; nth += step) {
    SCOPED_TRACE("injection site " + std::to_string(nth) + " of " +
                 std::to_string(num_sites));
    FaultyEnv::Config config;
    config.fail_nth = nth;
    ScopedFaultInjection inject(config);
    const std::string out = "site-" + std::to_string(nth) + ".prs";
    ASSERT_OK_AND_ASSIGN(JobResult result,
                         RunJob(Baseline(program), Config(out)));
    EXPECT_EQ(FaultyEnv::Get().stats().injected, 1u);
    EXPECT_GE(result.counters.task_retries, 1u);
    ASSERT_OK_AND_ASSIGN(auto pairs,
                         ReadCanonicalPairs(result.output_path));
    EXPECT_EQ(pairs, canonical);
  }
}

TEST_F(EngineFaultTest, RateInjectionIsMaskedAndCounted) {
  mril::Program program = workloads::SelectionCountQuery(50);
  ASSERT_OK_AND_ASSIGN(JobResult clean,
                       RunJob(Baseline(program), Config("clean.prs")));
  ASSERT_OK_AND_ASSIGN(auto canonical,
                       ReadCanonicalPairs(clean.output_path));

  auto* retries_metric =
      obs::MetricsRegistry::Get().GetCounter("engine.task_retries");
  const int64_t retries_before = retries_metric->Value();

  // The schedule is keyed by (seed, path, ordinal) and paths include a
  // per-run temp directory, so whether a given seed fires varies per
  // process. Sweep seeds until at least one fault lands; every faulted
  // run must still produce canonical output.
  bool fired = false;
  for (uint64_t seed = 1; seed <= 12 && !fired; ++seed) {
    FaultyEnv::Config fault;
    fault.seed = seed;
    fault.rate = 0.05;
    ScopedFaultInjection inject(fault);
    JobConfig config =
        Config("faulted-" + std::to_string(seed) + ".prs");
    config.max_task_attempts = 16;
    ASSERT_OK_AND_ASSIGN(JobResult result,
                         RunJob(Baseline(program), config));
    if (FaultyEnv::Get().stats().injected > 0) {
      fired = true;
      EXPECT_GE(result.counters.task_retries, 1u);
      EXPECT_EQ(result.counters.tasks_failed, 0u);
      EXPECT_GT(retries_metric->Value(), retries_before);
    }
    ASSERT_OK_AND_ASSIGN(auto pairs,
                         ReadCanonicalPairs(result.output_path));
    EXPECT_EQ(pairs, canonical);
  }
  EXPECT_TRUE(fired) << "no seed in 1..12 injected a fault";
}

TEST_F(EngineFaultTest, ExhaustedRetryBudgetFailsTheJobCleanly) {
  mril::Program program = workloads::SelectionCountQuery(50);
  FaultyEnv::Config fault;
  fault.rate = 1.0;  // every armed operation fails
  ScopedFaultInjection inject(fault);
  JobConfig config = Config("doomed.prs");
  config.max_task_attempts = 3;
  auto result = RunJob(Baseline(program), config);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError()) << result.status().ToString();
  // Clean abort: no output, no in-progress file, no task parts.
  EXPECT_FALSE(FileExists(config.output_path));
  EXPECT_FALSE(FileExists(config.output_path + ".inprogress"));
  ASSERT_OK_AND_ASSIGN(auto leftovers, ListDir(config.temp_dir));
  for (const std::string& name : leftovers) {
    EXPECT_NE(name.rfind("part-", 0), 0u) << "leaked task part " << name;
  }
}

TEST_F(EngineFaultTest, FailedJobRemovesPartialOutput) {
  // Same invariant for a plain user error (no injection): the map
  // divides by a field that is zero for some rows.
  mril::ProgramBuilder b("boom");
  b.SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadI64(100).LoadParam(1).GetField("rank").Div();
  m.LoadI64(0).Emit().Ret();
  JobConfig config = Config("boom.prs");
  ASSERT_FALSE(RunJob(Baseline(b.Build()), config).ok());
  EXPECT_FALSE(FileExists(config.output_path));
  EXPECT_FALSE(FileExists(config.output_path + ".inprogress"));
}

TEST_F(EngineTest, SpeculationLaunchesDuplicatesWithoutChangingOutput) {
  // A zero threshold turns every still-running map task into a
  // "straggler" as soon as half the tasks completed, so speculative
  // chains demonstrably launch — and the per-task commit gate must
  // keep the duplicated work out of the output.
  mril::Program program = workloads::SelectionCountQuery(50);
  ASSERT_OK_AND_ASSIGN(JobResult clean,
                       RunJob(Baseline(program), Config("clean.prs")));
  ASSERT_OK_AND_ASSIGN(auto canonical,
                       ReadCanonicalPairs(clean.output_path));

  // The monitor polls on a wall-clock cadence, so it must catch a task
  // mid-flight; the per-record debug sleep stretches each task far
  // beyond the poll interval, which makes a launch deterministic
  // rather than a race against how fast the scan + VM happen to be.
  // Output correctness is asserted on every run regardless.
  uint64_t launches = 0;
  for (int attempt = 0; attempt < 5 && launches == 0; ++attempt) {
    JobConfig config =
        Config("spec-" + std::to_string(attempt) + ".prs");
    config.map_parallelism = 1;  // serial tasks: a long monitor window
    config.enable_speculation = true;
    config.speculation_factor = 0;
    config.speculation_min_seconds = 0;
    config.debug_map_record_sleep_ms = 1.0;
    ASSERT_OK_AND_ASSIGN(JobResult result,
                         RunJob(Baseline(program), config));
    launches += result.counters.speculative_launches;
    ASSERT_OK_AND_ASSIGN(auto pairs,
                         ReadCanonicalPairs(result.output_path));
    EXPECT_EQ(pairs, canonical);
  }
  EXPECT_GE(launches, 1u);
}

}  // namespace
}  // namespace manimal::exec
