// Tests for the optimizer: plan selection against the catalog, the
// hard-coded ranking rules, field remaps, and the direct-operation
// program patching.

#include <gtest/gtest.h>

#include "core/manimal.h"
#include "exec/pairfile.h"
#include "optimizer/optimizer.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"
#include "mril/builder.h"

namespace manimal::optimizer {
namespace {

using core::ManimalSystem;
using testing::TempDir;

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() : dir_("optimizer") {
    workloads::UserVisitsOptions gen;
    gen.num_visits = 5000;
    gen.num_pages = 500;
    EXPECT_TRUE(
        workloads::GenerateUserVisits(dir_.file("visits.msq"), gen).ok());
    ManimalSystem::Options options;
    options.workspace_dir = dir_.file("ws");
    options.simulated_startup_seconds = 0;
    auto system_or = ManimalSystem::Open(options);
    EXPECT_TRUE(system_or.ok());
    system_ = std::move(system_or).value();
  }

  std::string input() { return dir_.file("visits.msq"); }

  TempDir dir_;
  std::unique_ptr<ManimalSystem> system_;
};

TEST_F(OptimizerTest, NoArtifactsMeansBaseline) {
  mril::Program program = workloads::Benchmark2Aggregation();
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  ASSERT_OK_AND_ASSIGN(
      Plan plan, BuildPlan(program, input(), report, system_->catalog()));
  EXPECT_FALSE(plan.optimized);
  EXPECT_EQ(plan.descriptor.access_path, exec::AccessPath::kSeqScan);
  EXPECT_EQ(plan.descriptor.data_path, input());
  EXPECT_NE(plan.explanation.find("index-generation program available"),
            std::string::npos);
}

TEST_F(OptimizerTest, NoOptimizationsMeansBaselineWithoutIndexHint) {
  mril::Program program = workloads::Benchmark4UdfAggregation();
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  ASSERT_OK_AND_ASSIGN(
      Plan plan, BuildPlan(program, input(), report, system_->catalog()));
  EXPECT_FALSE(plan.optimized);
  EXPECT_NE(plan.explanation.find("no optimizations detected"),
            std::string::npos);
}

TEST_F(OptimizerTest, MaximalArtifactWinsWhenAvailable) {
  mril::Program program = workloads::Benchmark2Aggregation();
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  // Build everything; the maximal (first) must win.
  for (const auto& spec : specs) {
    ASSERT_OK(system_->BuildIndex(spec, input()).status());
  }
  ASSERT_OK_AND_ASSIGN(
      Plan plan, BuildPlan(program, input(), report, system_->catalog()));
  EXPECT_TRUE(plan.optimized);
  ASSERT_GE(plan.descriptor.applied.size(), 2u);  // projection + delta
}

TEST_F(OptimizerTest, FallsBackToLesserArtifact) {
  mril::Program program = workloads::Benchmark2Aggregation();
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  // Build only the delta-only artifact (the last-ranked candidate).
  const analyzer::IndexGenProgram* delta_only = nullptr;
  for (const auto& s : specs) {
    if (s.delta && !s.projection && !s.btree) delta_only = &s;
  }
  ASSERT_NE(delta_only, nullptr);
  ASSERT_OK(system_->BuildIndex(*delta_only, input()).status());
  ASSERT_OK_AND_ASSIGN(
      Plan plan, BuildPlan(program, input(), report, system_->catalog()));
  EXPECT_TRUE(plan.optimized);
  // delta-compression, plus codec(<chain>) when MANIMAL_CODECS picked
  // a block codec for the re-encoded artifact (the default).
  ASSERT_GE(plan.descriptor.applied.size(), 1u);
  ASSERT_LE(plan.descriptor.applied.size(), 2u);
  EXPECT_NE(plan.descriptor.applied[0].find("delta"), std::string::npos);
  if (plan.descriptor.applied.size() == 2) {
    EXPECT_NE(plan.descriptor.applied[1].find("codec("),
              std::string::npos);
  }
}

TEST_F(OptimizerTest, ProjectionPlanCarriesFieldRemap) {
  mril::Program program = workloads::Benchmark2Aggregation();
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  ASSERT_OK(system_->BuildIndex(specs[0], input()).status());
  ASSERT_OK_AND_ASSIGN(
      Plan plan, BuildPlan(program, input(), report, system_->catalog()));
  ASSERT_TRUE(plan.optimized);
  // sourceIP (0) -> slot 0, adRevenue (3) -> slot 1, others dropped.
  ASSERT_EQ(plan.descriptor.field_remap.size(), 9u);
  EXPECT_EQ(plan.descriptor.field_remap[0], 0);
  EXPECT_EQ(plan.descriptor.field_remap[3], 1);
  EXPECT_EQ(plan.descriptor.field_remap[1], -1);
}

TEST_F(OptimizerTest, DirectOpPatchesConstantsThroughDictionary) {
  // Program comparing countryCode against "USA" and using duration.
  mril::ProgramBuilder b("const-eq");
  b.SetValueSchema(workloads::UserVisitsSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("countryCode").LoadStr("USA").CmpEq()
      .JmpIfFalse("end");
  m.LoadParam(1).GetField("duration");
  m.LoadI64(1);
  m.Emit();
  m.Label("end").Ret();
  // Reduce that never reads its key.
  auto& r = b.Reduce();
  int n = r.NewLocal();
  r.LoadParam(1).Call("list.len").StoreLocal(n);
  r.LoadLocal(n).LoadLocal(n).Emit().Ret();
  mril::Program program = b.Build();

  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  ASSERT_TRUE(report.direct_op.has_value()) << report.ToString();
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  const analyzer::IndexGenProgram* dict_spec = nullptr;
  for (const auto& s : specs) {
    if (s.dictionary && !s.projection && !s.delta) dict_spec = &s;
  }
  ASSERT_NE(dict_spec, nullptr);
  ASSERT_OK(system_->BuildIndex(*dict_spec, input()).status());

  ASSERT_OK_AND_ASSIGN(
      Plan plan, BuildPlan(program, input(), report, system_->catalog()));
  ASSERT_TRUE(plan.optimized);
  // The patched copy must compare against an i64 code now; the
  // original program is untouched.
  bool patched_is_i64 = false;
  for (const auto& inst : plan.descriptor.program.map_fn.code) {
    if (inst.op == mril::Opcode::kLoadConst &&
        plan.descriptor.program.constants[inst.operand].is_i64()) {
      patched_is_i64 = true;
    }
  }
  EXPECT_TRUE(patched_is_i64);

  // End-to-end equivalence through the full system.
  ManimalSystem::Submission submission;
  submission.program = program;
  submission.input_path = input();
  submission.output_path = dir_.file("base.prs");
  ASSERT_OK(system_->RunBaseline(submission).status());
  submission.output_path = dir_.file("opt.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system_->Submit(submission));
  EXPECT_TRUE(outcome.plan.optimized);
  ASSERT_OK_AND_ASSIGN(auto a,
                       exec::ReadCanonicalPairs(dir_.file("base.prs")));
  ASSERT_OK_AND_ASSIGN(auto b2,
                       exec::ReadCanonicalPairs(dir_.file("opt.prs")));
  EXPECT_EQ(a, b2);
}

TEST_F(OptimizerTest, ArtifactsDoNotLeakAcrossInputs) {
  mril::Program program = workloads::Benchmark2Aggregation();
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  ASSERT_OK(system_->BuildIndex(specs[0], input()).status());
  // A different input file with the same schema has no artifact.
  workloads::UserVisitsOptions gen;
  gen.num_visits = 100;
  gen.num_pages = 10;
  ASSERT_OK(
      workloads::GenerateUserVisits(dir_.file("other.msq"), gen).status());
  ASSERT_OK_AND_ASSIGN(Plan plan,
                       BuildPlan(program, dir_.file("other.msq"), report,
                                 system_->catalog()));
  EXPECT_FALSE(plan.optimized);
}

TEST_F(OptimizerTest, HintInjectionPathWorks) {
  // Appendix A: a layered tool supplies the report; the program itself
  // is never analyzed. Give Benchmark2's report directly.
  mril::Program program = workloads::Benchmark2Aggregation();
  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = analyzer::SynthesizeIndexPrograms(program, report);
  ASSERT_OK(system_->BuildIndex(specs[0], input()).status());

  ManimalSystem::Submission submission;
  submission.program = program;
  submission.input_path = input();
  submission.output_path = dir_.file("hint.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome,
                       system_->SubmitWithReport(submission, report));
  EXPECT_TRUE(outcome.plan.optimized);
}

}  // namespace
}  // namespace manimal::optimizer
