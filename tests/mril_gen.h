// Seeded generator of random-but-valid MRIL programs over the
// WebPages schema, for the differential plan-equivalence harness
// (tests/differential_test.cc, docs/testing.md). Every generated
// program passes the verifier by construction; the shapes are chosen
// so the analyzer's detectors (selection, projection, opaque
// accessors) fire on a meaningful fraction of seeds and the optimizer
// has real plans to choose between.

#ifndef MANIMAL_TESTS_MRIL_GEN_H_
#define MANIMAL_TESTS_MRIL_GEN_H_

#include <cstdint>
#include <string>

#include "mril/program.h"

namespace manimal::testing {

struct GeneratedProgram {
  mril::Program program;
  // Human-readable shape summary, for failure messages ("repro with
  // seed N, shape: ...").
  std::string description;
};

// Deterministic given `seed`. The programs read WebPages records
// (url STR, rank I64, content STR); `rank_range` should match the
// generated input so selection thresholds have sane selectivity.
GeneratedProgram GenerateWebPagesProgram(uint64_t seed,
                                         int64_t rank_range);

}  // namespace manimal::testing

#endif  // MANIMAL_TESTS_MRIL_GEN_H_
