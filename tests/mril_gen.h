// Seeded generator of random-but-valid MRIL programs over the
// WebPages schema, for the differential plan-equivalence harness
// (tests/differential_test.cc, docs/testing.md). Every generated
// program passes the verifier by construction; the shapes are chosen
// so the analyzer's detectors (selection, projection, opaque
// accessors) fire on a meaningful fraction of seeds and the optimizer
// has real plans to choose between.

#ifndef MANIMAL_TESTS_MRIL_GEN_H_
#define MANIMAL_TESTS_MRIL_GEN_H_

#include <cstdint>
#include <string>

#include "mril/program.h"

namespace manimal::testing {

struct GeneratedProgram {
  mril::Program program;
  // Human-readable shape summary, for failure messages ("repro with
  // seed N, shape: ...").
  std::string description;
};

// Deterministic given `seed`. The programs read WebPages records
// (url STR, rank I64, content STR); `rank_range` should match the
// generated input so selection thresholds have sane selectivity.
GeneratedProgram GenerateWebPagesProgram(uint64_t seed,
                                         int64_t rank_range);

// Restricted generator mode for the native codegen tier: every
// program is verifier-valid AND provably a pure selection+projection
// — single emit site, straight-line control flow with conditional
// early exits, no side effects, every branch condition and emit
// operand functional — so codegen::ExtractShape must admit all of
// them (tests/vm_dispatch_test.cc asserts exactly that). Roughly a
// third of seeds stay inside the narrow i64-field-vs-constant family
// the emitted (dlopen) engine covers; the rest exercise string
// predicates and arena-allocated emit values on the closure engine.
GeneratedProgram GenerateProvableSelectionProgram(uint64_t seed,
                                                  int64_t rank_range);

}  // namespace manimal::testing

#endif  // MANIMAL_TESTS_MRIL_GEN_H_
