// Tests for column-group storage (§2.1 extension): row-aligned sibling
// files, zip reassembly, group selection, and the headline property —
// one artifact serving many different projections through the full
// system.

#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "columnar/column_groups.h"
#include "common/random.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "mril/builder.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"

namespace manimal::columnar {
namespace {

using testing::TempDir;

Schema ThreeCols() {
  return Schema({{"a", FieldType::kStr},
                 {"b", FieldType::kI64},
                 {"c", FieldType::kI64}});
}

Record Row(int i) {
  return {Value::Str("s" + std::to_string(i)), Value::I64(i),
          Value::I64(i * 2)};
}

TEST(ColumnGroupsTest, WriteReadRoundtrip) {
  TempDir dir("cg1");
  std::string manifest = dir.file("data.cgs");
  const int n = 5000;
  {
    ASSERT_OK_AND_ASSIGN(
        auto writer,
        ColumnGroupWriter::Create(manifest, ThreeCols(),
                                  {{0}, {1, 2}}, /*records_per_block=*/64));
    for (int i = 0; i < n; ++i) ASSERT_OK(writer->Append(i, Row(i)));
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, ColumnGroupReader::Open(manifest));
  EXPECT_EQ(reader->num_records(), static_cast<uint64_t>(n));
  EXPECT_EQ(reader->groups().size(), 2u);

  // Full zip reproduces every record.
  auto all = reader->SelectGroups({});
  EXPECT_EQ(all.stored_fields, (std::vector<int>{0, 1, 2}));
  ASSERT_OK_AND_ASSIGN(auto stream,
                       reader->Scan(all, 0, reader->num_blocks()));
  int64_t key = 0;
  Record record;
  for (int i = 0; i < n; ++i) {
    ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&key, &record));
    ASSERT_TRUE(more);
    EXPECT_EQ(key, i);
    EXPECT_EQ(record[0].str(), "s" + std::to_string(i));
    EXPECT_EQ(record[1].i64(), i);
    EXPECT_EQ(record[2].i64(), i * 2);
  }
  ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&key, &record));
  EXPECT_FALSE(more);
}

TEST(ColumnGroupsTest, SelectionPicksMinimalGroups) {
  TempDir dir("cg2");
  std::string manifest = dir.file("data.cgs");
  {
    ASSERT_OK_AND_ASSIGN(
        auto writer, ColumnGroupWriter::Create(manifest, ThreeCols(),
                                               {{0}, {1}, {2}}, 64));
    for (int i = 0; i < 1000; ++i) ASSERT_OK(writer->Append(i, Row(i)));
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, ColumnGroupReader::Open(manifest));

  auto only_c = reader->SelectGroups({2});
  EXPECT_EQ(only_c.group_indexes, (std::vector<int>{2}));
  EXPECT_EQ(only_c.stored_fields, (std::vector<int>{2}));
  EXPECT_LT(only_c.bytes, reader->total_bytes() / 2);

  auto b_and_c = reader->SelectGroups({2, 1});
  EXPECT_EQ(b_and_c.group_indexes, (std::vector<int>{1, 2}));
  EXPECT_EQ(b_and_c.stored_fields, (std::vector<int>{1, 2}));

  // Reading the selected subset yields the right columns.
  ASSERT_OK_AND_ASSIGN(auto stream,
                       reader->Scan(only_c, 0, reader->num_blocks()));
  int64_t key = 0;
  Record record;
  ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&key, &record));
  ASSERT_TRUE(more);
  ASSERT_EQ(record.size(), 1u);
  EXPECT_EQ(record[0].i64(), 0);
}

TEST(ColumnGroupsTest, EmptyNeedReadsSmallestGroup) {
  TempDir dir("cg3");
  std::string manifest = dir.file("data.cgs");
  {
    ASSERT_OK_AND_ASSIGN(
        auto writer, ColumnGroupWriter::Create(manifest, ThreeCols(),
                                               {{0}, {1}, {2}}, 64));
    for (int i = 0; i < 500; ++i) ASSERT_OK(writer->Append(i, Row(i)));
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, ColumnGroupReader::Open(manifest));
  auto none = reader->SelectGroups({2});
  auto sel = reader->SelectGroups(std::vector<int>{});
  // Empty need means "all fields" per SelectGroups contract.
  EXPECT_EQ(sel.group_indexes.size(), 3u);
  (void)none;
}

TEST(ColumnGroupsTest, GroupingValidation) {
  TempDir dir("cg4");
  // Overlapping groups.
  EXPECT_FALSE(ColumnGroupWriter::Create(dir.file("a.cgs"), ThreeCols(),
                                         {{0, 1}, {1, 2}}, 64)
                   .ok());
  // Missing field.
  EXPECT_FALSE(ColumnGroupWriter::Create(dir.file("b.cgs"), ThreeCols(),
                                         {{0}, {1}}, 64)
                   .ok());
  // Opaque schema.
  EXPECT_FALSE(ColumnGroupWriter::Create(dir.file("c.cgs"),
                                         Schema::Opaque(), {{0}}, 64)
                   .ok());
}

TEST(ColumnGroupsTest, CorruptManifestRejected) {
  TempDir dir("cg5");
  ASSERT_OK(WriteStringToFile(dir.file("bad.cgs"), "not a manifest"));
  EXPECT_FALSE(ColumnGroupReader::Open(dir.file("bad.cgs")).ok());
}

TEST(ColumnGroupsTest, SplitRangesPartitionRows) {
  TempDir dir("cg6");
  std::string manifest = dir.file("data.cgs");
  const int n = 3000;
  {
    ASSERT_OK_AND_ASSIGN(
        auto writer, ColumnGroupWriter::Create(manifest, ThreeCols(),
                                               PerFieldGrouping(ThreeCols()),
                                               /*records_per_block=*/50));
    for (int i = 0; i < n; ++i) ASSERT_OK(writer->Append(i, Row(i)));
    ASSERT_OK(writer->Finish().status());
  }
  ASSERT_OK_AND_ASSIGN(auto reader, ColumnGroupReader::Open(manifest));
  auto sel = reader->SelectGroups({0, 2});
  uint64_t mid = reader->num_blocks() / 2;
  int seen = 0;
  for (auto [b, e] :
       {std::pair<uint64_t, uint64_t>{0, mid},
        std::pair<uint64_t, uint64_t>{mid, reader->num_blocks()}}) {
    ASSERT_OK_AND_ASSIGN(auto stream, reader->Scan(sel, b, e));
    int64_t key = 0;
    Record record;
    for (;;) {
      ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&key, &record));
      if (!more) break;
      EXPECT_EQ(key, seen);
      ++seen;
    }
  }
  EXPECT_EQ(seen, n);
}

// The headline: one artifact, many projections, all through the full
// system with baseline-identical outputs.
TEST(ColumnGroupsTest, OneArtifactServesManyProjections) {
  TempDir dir("cg7");
  workloads::UserVisitsOptions gen;
  gen.num_visits = 10000;
  gen.num_pages = 500;
  ASSERT_OK(
      workloads::GenerateUserVisits(dir.file("visits.msq"), gen).status());

  core::ManimalSystem::Options options;
  options.workspace_dir = dir.file("ws");
  options.simulated_startup_seconds = 0;
  ASSERT_OK_AND_ASSIGN(auto system, core::ManimalSystem::Open(options));

  // Query A reads {sourceIP, adRevenue}; query B reads {destURL,
  // duration}. Build ONLY query A's column-group artifact.
  mril::Program query_a = workloads::Benchmark2Aggregation();
  mril::Program query_b = workloads::DurationSumQuery();
  {
    ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(query_a));
    auto specs = analyzer::SynthesizeIndexPrograms(query_a, report);
    const analyzer::IndexGenProgram* cgroups = nullptr;
    for (const auto& s : specs) {
      if (s.column_groups) cgroups = &s;
    }
    ASSERT_NE(cgroups, nullptr);
    ASSERT_OK(
        system->BuildIndex(*cgroups, dir.file("visits.msq")).status());
  }

  for (auto [program, name] :
       {std::pair<mril::Program, const char*>{query_a, "a"},
        std::pair<mril::Program, const char*>{query_b, "b"}}) {
    core::ManimalSystem::Submission job;
    job.program = program;
    job.input_path = dir.file("visits.msq");
    job.output_path = dir.file(std::string("base-") + name + ".prs");
    ASSERT_OK_AND_ASSIGN(auto baseline, system->RunBaseline(job));

    job.output_path = dir.file(std::string("opt-") + name + ".prs");
    ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));
    // Both queries — including B, which the artifact was never built
    // for — pick up the column groups.
    ASSERT_TRUE(outcome.plan.optimized) << outcome.plan.explanation;
    EXPECT_NE(outcome.plan.explanation.find("cgroups"),
              std::string::npos);
    EXPECT_LT(outcome.job.counters.input_bytes,
              baseline.counters.input_bytes / 2);

    ASSERT_OK_AND_ASSIGN(
        auto base_pairs,
        exec::ReadCanonicalPairs(
            dir.file(std::string("base-") + name + ".prs")));
    ASSERT_OK_AND_ASSIGN(
        auto opt_pairs,
        exec::ReadCanonicalPairs(
            dir.file(std::string("opt-") + name + ".prs")));
    EXPECT_EQ(base_pairs, opt_pairs);
  }
}

}  // namespace
}  // namespace manimal::columnar
