// Tests for the telemetry substrate: metrics registry (counters,
// gauges, histograms), the span tracer, and the Chrome trace-event
// JSON export.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace manimal::obs {
namespace {

// ---------------- minimal JSON validator ----------------
//
// Just enough of a recursive-descent parser to assert the exported
// documents are well-formed (the repo has no JSON dependency).

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---------------- metrics ----------------

TEST(MetricsTest, ConcurrentCountersAreExact) {
  MetricsRegistry::Get().ResetForTest();
  Counter* counter =
      MetricsRegistry::Get().GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(),
            static_cast<int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(MetricsRegistry::Get().CounterValue("test.concurrent"),
            static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  Counter* a = MetricsRegistry::Get().GetCounter("test.stable");
  Counter* b = MetricsRegistry::Get().GetCounter("test.stable");
  EXPECT_EQ(a, b);
  EXPECT_EQ(MetricsRegistry::Get().CounterValue("test.never_created"),
            0);
}

TEST(MetricsTest, GaugeTracksValueAndHighWaterMark) {
  MetricsRegistry::Get().ResetForTest();
  Gauge* gauge = MetricsRegistry::Get().GetGauge("test.gauge");
  gauge->Set(5);
  gauge->Set(17);
  gauge->Set(3);
  EXPECT_EQ(gauge->Value(), 3);
  EXPECT_EQ(gauge->Max(), 17);
}

TEST(MetricsTest, HistogramQuantilesAreExact) {
  MetricsRegistry::Get().ResetForTest();
  Histogram* h = MetricsRegistry::Get().GetHistogram("test.hist");
  for (int i = 1; i <= 100; ++i) h->Record(i);
  EXPECT_EQ(h->Count(), 100);
  EXPECT_DOUBLE_EQ(h->Sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h->Min(), 1.0);
  EXPECT_DOUBLE_EQ(h->Max(), 100.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 100.0);
}

TEST(MetricsTest, EmptyHistogramQuantileIsZero) {
  MetricsRegistry::Get().ResetForTest();
  Histogram* h = MetricsRegistry::Get().GetHistogram("test.empty");
  EXPECT_EQ(h->Count(), 0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);
}

TEST(MetricsTest, ResetKeepsPointersValid) {
  Counter* c = MetricsRegistry::Get().GetCounter("test.reset");
  c->Add(42);
  MetricsRegistry::Get().ResetForTest();
  EXPECT_EQ(c->Value(), 0);
  c->Increment();
  EXPECT_EQ(MetricsRegistry::Get().CounterValue("test.reset"), 1);
}

TEST(MetricsTest, DumpJsonIsWellFormed) {
  MetricsRegistry::Get().ResetForTest();
  MetricsRegistry::Get().GetCounter("test.c\"quote")->Add(3);
  MetricsRegistry::Get().GetGauge("test.g")->Set(7);
  Histogram* h = MetricsRegistry::Get().GetHistogram("test.h");
  h->Record(1.5);
  h->Record(2.5);
  std::string json = MetricsRegistry::Get().DumpJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("counters"), std::string::npos);
  EXPECT_NE(json.find("gauges"), std::string::npos);
  EXPECT_NE(json.find("histograms"), std::string::npos);
}

// ---------------- tracer ----------------

class TracerTest : public ::testing::Test {
 protected:
  TracerTest() {
    Tracer::Get().ClearForTest();
    Tracer::Get().SetEnabledForTest(true);
  }
  ~TracerTest() override {
    Tracer::Get().SetEnabledForTest(false);
    Tracer::Get().ClearForTest();
  }
};

TEST_F(TracerTest, NestedSpansAreContained) {
  {
    ScopedSpan outer("test.outer", "test");
    {
      ScopedSpan inner("test.inner", "test");
      inner.AddArg("k", "v");
    }
  }
  std::vector<TraceEvent> events = Tracer::Get().Snapshot();
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& e : events) {
    if (e.name == "test.outer") outer = &e;
    if (e.name == "test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->phase, 'X');
  // The inner span's interval lies within the outer's.
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us,
            outer->ts_us + outer->dur_us + 1e-3);
  ASSERT_EQ(inner->args.size(), 1u);
  EXPECT_EQ(inner->args[0].first, "k");
  EXPECT_EQ(inner->args[0].second, "v");
}

TEST_F(TracerTest, ThreadsGetDistinctTidsAndMergeIntoSnapshot) {
  {
    ScopedSpan main_span("test.main_thread", "test");
  }
  std::thread other([] {
    ScopedSpan span("test.other_thread", "test");
  });
  other.join();
  std::vector<TraceEvent> events = Tracer::Get().Snapshot();
  int main_tid = -1, other_tid = -1;
  for (const TraceEvent& e : events) {
    if (e.name == "test.main_thread") main_tid = e.tid;
    if (e.name == "test.other_thread") other_tid = e.tid;
  }
  ASSERT_NE(main_tid, -1);
  ASSERT_NE(other_tid, -1);  // retired buffer still in the snapshot
  EXPECT_NE(main_tid, other_tid);
  EXPECT_EQ(Tracer::Get().CountEvents("test.main_thread"), 1u);
}

TEST_F(TracerTest, InstantEventsAreRecorded) {
  TraceInstant("test.spill", "exec", {{"bytes", "123"}});
  EXPECT_EQ(Tracer::Get().CountEvents("test.spill"), 1u);
  std::string json = Tracer::Get().ExportJson();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << json;
}

TEST_F(TracerTest, ExportJsonIsWellFormedChromeTrace) {
  {
    ScopedSpan span("test.span", "test");
    span.AddArg("quote", "has \"quotes\" and \\ backslash\n");
    TraceInstant("test.instant", "test");
  }
  std::string json = Tracer::Get().ExportJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("test.span"), std::string::npos);
}

TEST_F(TracerTest, SnapshotIsSortedByTimestamp) {
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("test.seq", "test");
  }
  std::vector<TraceEvent> events = Tracer::Get().Snapshot();
  ASSERT_GE(events.size(), 5u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST(TracerDisabledTest, DisabledTracerRecordsNothing) {
  Tracer::Get().SetEnabledForTest(false);
  Tracer::Get().ClearForTest();
  {
    ScopedSpan span("test.off", "test");
    TraceInstant("test.off_instant");
  }
  EXPECT_EQ(Tracer::Get().CountEvents("test.off"), 0u);
  EXPECT_EQ(Tracer::Get().CountEvents("test.off_instant"), 0u);
}

}  // namespace
}  // namespace manimal::obs
