// Tests for the workload layer: data generators (determinism, schema
// conformance, statistical shape) and the Pavlo benchmark programs'
// semantics.

#include <gtest/gtest.h>

#include <map>

#include "columnar/seqfile.h"
#include "mril/vm.h"
#include "serde/record_codec.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"

namespace manimal::workloads {
namespace {

using testing::TempDir;

// ---------------- generators ----------------

TEST(DatagenTest, WebPagesSchemaAndDeterminism) {
  TempDir dir("gen1");
  WebPagesOptions gen;
  gen.num_pages = 500;
  gen.seed = 7;
  ASSERT_OK_AND_ASSIGN(auto s1,
                       GenerateWebPages(dir.file("a.msq"), gen));
  ASSERT_OK_AND_ASSIGN(auto s2,
                       GenerateWebPages(dir.file("b.msq"), gen));
  EXPECT_EQ(s1.bytes, s2.bytes);  // deterministic given the seed

  ASSERT_OK_AND_ASSIGN(auto reader,
                       columnar::SeqFileReader::Open(dir.file("a.msq")));
  EXPECT_EQ(reader->meta().original_schema, WebPagesSchema());
  ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
  Record record;
  uint64_t count = 0;
  for (;;) {
    ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&record));
    if (!more) break;
    ++count;
    EXPECT_OK(ValidateRecord(WebPagesSchema(), record));
    EXPECT_GE(record[kWpRank].i64(), 0);
    EXPECT_LT(record[kWpRank].i64(), gen.rank_range);
    EXPECT_NE(record[kWpUrl].str().find("http://"), std::string::npos);
  }
  EXPECT_EQ(count, gen.num_pages);
}

TEST(DatagenTest, DifferentSeedsDiffer) {
  TempDir dir("gen2");
  WebPagesOptions a, b;
  a.num_pages = b.num_pages = 200;
  a.seed = 1;
  b.seed = 2;
  ASSERT_OK(GenerateWebPages(dir.file("a.msq"), a).status());
  ASSERT_OK(GenerateWebPages(dir.file("b.msq"), b).status());
  ASSERT_OK_AND_ASSIGN(std::string fa, ReadFileToString(dir.file("a.msq")));
  ASSERT_OK_AND_ASSIGN(std::string fb, ReadFileToString(dir.file("b.msq")));
  EXPECT_NE(fa, fb);
}

TEST(DatagenTest, UserVisitsFieldsInRange) {
  TempDir dir("gen3");
  UserVisitsOptions gen;
  gen.num_visits = 1000;
  gen.num_pages = 100;
  ASSERT_OK(GenerateUserVisits(dir.file("v.msq"), gen).status());
  ASSERT_OK_AND_ASSIGN(auto reader,
                       columnar::SeqFileReader::Open(dir.file("v.msq")));
  ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
  Record record;
  std::map<std::string, int> url_counts;
  for (;;) {
    ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&record));
    if (!more) break;
    EXPECT_OK(ValidateRecord(UserVisitsSchema(), record));
    EXPECT_GE(record[kUvVisitDate].i64(), gen.date_epoch);
    EXPECT_LT(record[kUvVisitDate].i64(),
              gen.date_epoch + gen.date_range);
    EXPECT_GE(record[kUvAdRevenue].i64(), 0);
    EXPECT_GE(record[kUvDuration].i64(), 1);
    url_counts[std::string(record[kUvDestUrl].str())]++;
  }
  // Zipfian destination popularity: the most popular URL must dominate.
  int max_count = 0, total = 0;
  for (auto& [url, n] : url_counts) {
    max_count = std::max(max_count, n);
    total += n;
  }
  EXPECT_EQ(total, 1000);
  EXPECT_GT(max_count, 30);  // far above uniform (10 per URL)
}

TEST(DatagenTest, RankingsOpaqueBlobsUnpack) {
  TempDir dir("gen4");
  RankingsOptions gen;
  gen.num_pages = 100;
  ASSERT_OK(GenerateRankings(dir.file("r.msq"), gen).status());
  ASSERT_OK_AND_ASSIGN(auto reader,
                       columnar::SeqFileReader::Open(dir.file("r.msq")));
  EXPECT_TRUE(reader->meta().original_schema.opaque());
  ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
  Record record;
  for (;;) {
    ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&record));
    if (!more) break;
    ASSERT_OK_AND_ASSIGN(Record tuple,
                         OpaqueTupleCodec::Unpack(record[0].str()));
    ASSERT_EQ(tuple.size(), 3u);
    EXPECT_TRUE(tuple[kRankPageUrl].is_str());
    EXPECT_TRUE(tuple[kRankPageRank].is_i64());
    EXPECT_TRUE(tuple[kRankAvgDuration].is_i64());
  }
}

TEST(DatagenTest, RankingsPlainVariant) {
  TempDir dir("gen5");
  RankingsOptions gen;
  gen.num_pages = 50;
  gen.opaque_serialization = false;
  ASSERT_OK(GenerateRankings(dir.file("r.msq"), gen).status());
  ASSERT_OK_AND_ASSIGN(auto reader,
                       columnar::SeqFileReader::Open(dir.file("r.msq")));
  EXPECT_FALSE(reader->meta().original_schema.opaque());
  EXPECT_EQ(reader->meta().original_schema.num_fields(), 3);
}

TEST(DatagenTest, DocumentsEmbedUrls) {
  TempDir dir("gen6");
  DocumentsOptions gen;
  gen.num_docs = 50;
  gen.num_pages = 200;
  ASSERT_OK(GenerateDocuments(dir.file("d.msq"), gen).status());
  ASSERT_OK_AND_ASSIGN(auto reader,
                       columnar::SeqFileReader::Open(dir.file("d.msq")));
  ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
  Record record;
  int docs_with_urls = 0;
  for (;;) {
    ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&record));
    if (!more) break;
    if (record[1].str().find("http://") != std::string::npos) {
      ++docs_with_urls;
    }
  }
  EXPECT_EQ(docs_with_urls, 50);
}

// ---------------- benchmark program semantics ----------------

std::vector<std::pair<Value, Value>> RunMapOnce(
    const mril::Program& program, const Value& key, const Value& value) {
  mril::VmInstance vm(&program);
  std::vector<std::pair<Value, Value>> out;
  vm.set_emit_sink([&out](const Value& k, const Value& v) {
    out.emplace_back(k, v);
    return Status::OK();
  });
  EXPECT_OK(vm.InvokeMap(key, value));
  return out;
}

TEST(PavloProgramsTest, Benchmark1FiltersOnRank) {
  mril::Program p = Benchmark1Selection(100);
  Record high = {Value::Str("http://a"), Value::I64(500), Value::I64(9)};
  Record low = {Value::Str("http://b"), Value::I64(50), Value::I64(9)};
  ASSERT_OK_AND_ASSIGN(std::string high_blob,
                       OpaqueTupleCodec::Pack(high));
  ASSERT_OK_AND_ASSIGN(std::string low_blob, OpaqueTupleCodec::Pack(low));
  auto pass = RunMapOnce(p, Value::I64(0), Value::Str(high_blob));
  ASSERT_EQ(pass.size(), 1u);
  EXPECT_EQ(pass[0].first.str(), "http://a");
  EXPECT_EQ(pass[0].second.i64(), 500);
  EXPECT_TRUE(RunMapOnce(p, Value::I64(1), Value::Str(low_blob)).empty());
}

TEST(PavloProgramsTest, Benchmark3FiltersOnDateRange) {
  mril::Program p = Benchmark3Join(100, 200);
  Record visit = {Value::Str("1.2.3.4"), Value::Str("http://x"),
                  Value::I64(150),       Value::I64(10),
                  Value::Str("ua"),      Value::Str("USA"),
                  Value::Str("en"),      Value::Str("w"),
                  Value::I64(5)};
  auto in_range = RunMapOnce(p, Value::I64(0), Value::List(visit));
  ASSERT_EQ(in_range.size(), 1u);
  EXPECT_EQ(in_range[0].first.str(), "http://x");
  EXPECT_TRUE(in_range[0].second.is_list());  // whole tuple emitted

  visit[kUvVisitDate] = Value::I64(250);
  EXPECT_TRUE(RunMapOnce(p, Value::I64(1), Value::List(visit)).empty());
}

TEST(PavloProgramsTest, Benchmark4DeduplicatesPerDocument) {
  mril::Program p = Benchmark4UdfAggregation();
  Record doc = {
      Value::Str("http://self.example.com/"),
      Value::Str("see http://a.com/x twice http://a.com/x and "
                 "http://b.com/y plus http://self.example.com/ self")};
  auto out = RunMapOnce(p, Value::I64(0), Value::List(doc));
  // http://a.com/x deduped to one; self-link skipped; b.com kept.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first.str(), "http://a.com/x");
  EXPECT_EQ(out[1].first.str(), "http://b.com/y");
}

TEST(PavloProgramsTest, Figure2MemberChangesBehaviour) {
  mril::Program p = Figure2Unsafe(1000);
  mril::VmInstance vm(&p);
  int emitted = 0;
  vm.set_emit_sink([&emitted](const Value&, const Value&) {
    ++emitted;
    return Status::OK();
  });
  Record row = {Value::Str("u"), Value::I64(0), Value::Str("c")};
  for (int i = 0; i < 201; ++i) {
    ASSERT_OK(vm.InvokeMap(Value::I64(i), Value::List(row)));
  }
  // Only invocation 201 (numMapsRun=201 > 200) emits.
  EXPECT_EQ(emitted, 1);
}

TEST(PavloProgramsTest, SelectionCountReduceCounts) {
  mril::Program p = SelectionCountQuery(0);
  mril::VmInstance vm(&p);
  std::vector<std::pair<Value, Value>> out;
  vm.set_emit_sink([&out](const Value& k, const Value& v) {
    out.emplace_back(k, v);
    return Status::OK();
  });
  ASSERT_OK(vm.InvokeReduce(
      Value::I64(7),
      Value::List({Value::I64(1), Value::I64(1), Value::I64(1)})));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first.i64(), 7);
  EXPECT_EQ(out[0].second.i64(), 3);
}

TEST(PavloProgramsTest, DirectOpReduceNeverEmitsTheUrl) {
  mril::Program p = DirectOpQuery();
  mril::VmInstance vm(&p);
  std::vector<std::pair<Value, Value>> out;
  vm.set_emit_sink([&out](const Value& k, const Value& v) {
    out.emplace_back(k, v);
    return Status::OK();
  });
  ASSERT_OK(vm.InvokeReduce(
      Value::Str("http://secret"),
      Value::List({Value::I64(5), Value::I64(6)})));
  ASSERT_EQ(out.size(), 1u);
  // The sum, not the URL, is in the output.
  EXPECT_EQ(out[0].first.i64(), 11);
  EXPECT_FALSE(out[0].second.is_str());
}

}  // namespace
}  // namespace manimal::workloads
