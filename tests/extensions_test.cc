// Tests for the paper's extension features: "safe mode" (footnote 2 —
// never perturb side effects) and the Appendix E reduce-side
// GROUP-BY/WHERE filter (delete map output before the shuffle when the
// reduce provably discards the group).

#include <gtest/gtest.h>

#include "analyzer/analyzer.h"
#include "analyzer/expr_eval.h"
#include "analyzer/reduce_filter.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "mril/builder.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/pavlo.h"
#include "workloads/schemas.h"

namespace manimal::analyzer {
namespace {

using mril::FunctionBuilder;
using mril::Program;
using mril::ProgramBuilder;
using testing::TempDir;

// A GROUP-BY with a WHERE on the aggregate's key: count per rank, but
// only report ranks above `key_threshold`. The reduce aggregates in a
// loop first — the filter analysis must survive the cycle.
Program CountPerRankWhereKeyAbove(int64_t key_threshold) {
  ProgramBuilder b("count-where-key");
  b.SetKeyType(FieldType::kI64)
      .SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank");
  m.LoadI64(1);
  m.Emit().Ret();
  auto& r = b.Reduce();
  int i = r.NewLocal(), n = r.NewLocal(), sum = r.NewLocal();
  r.LoadI64(0).StoreLocal(i).LoadI64(0).StoreLocal(sum);
  r.LoadParam(1).Call("list.len").StoreLocal(n);
  r.Label("loop");
  r.LoadLocal(i).LoadLocal(n).CmpGe().JmpIfTrue("done");
  r.LoadLocal(sum).LoadParam(1).LoadLocal(i).Call("list.get").Add()
      .StoreLocal(sum);
  r.LoadLocal(i).LoadI64(1).Add().StoreLocal(i);
  r.Jmp("loop");
  r.Label("done");
  // WHERE key > threshold
  r.LoadParam(0).LoadI64(key_threshold).CmpGt().JmpIfFalse("end");
  r.LoadParam(0).LoadLocal(sum).Emit();
  r.Label("end").Ret();
  return b.Build();
}

// ---------------- reduce filter detection ----------------

TEST(ReduceFilterTest, DetectsKeyGuardDespiteAggregationLoop) {
  Program p = CountPerRankWhereKeyAbove(500);
  ReduceFilterResult r = FindReduceKeyFilter(p);
  ASSERT_TRUE(r.descriptor.has_value()) << r.miss_reason;
  ASSERT_EQ(r.descriptor->required.terms.size(), 1u);
  const SelectTerm& term = r.descriptor->required.terms[0];
  EXPECT_TRUE(term.polarity);
  EXPECT_EQ(term.expr->ToString(), "(param0 cmp_gt i64:500)");
  // The literal holds exactly when the key passes.
  for (int64_t key : {0, 500, 501, 999}) {
    ASSERT_OK_AND_ASSIGN(
        Value v, EvalExpr(term.expr, Value::I64(key), Value::Null()));
    EXPECT_EQ(v.bool_value(), key > 500);
  }
}

TEST(ReduceFilterTest, UnguardedReduceHasNoFilter) {
  ReduceFilterResult r =
      FindReduceKeyFilter(workloads::Benchmark2Aggregation());
  EXPECT_FALSE(r.descriptor.has_value());
  EXPECT_TRUE(r.miss_reason.empty());  // not a failure, just nothing
}

TEST(ReduceFilterTest, ValueDependentGuardIsNotKeyOnly) {
  // WHERE sum > 10 is not a key predicate; no filter may be derived.
  ProgramBuilder b("sum-guard");
  b.SetValueSchema(workloads::WebPagesSchema());
  b.Map().LoadParam(1).GetField("rank").LoadI64(1).Emit().Ret();
  auto& r = b.Reduce();
  int n = r.NewLocal();
  r.LoadParam(1).Call("list.len").StoreLocal(n);
  r.LoadLocal(n).LoadI64(10).CmpGt().JmpIfFalse("end");
  r.LoadParam(0).LoadLocal(n).Emit();
  r.Label("end").Ret();
  ReduceFilterResult result = FindReduceKeyFilter(b.Build());
  EXPECT_FALSE(result.descriptor.has_value());
}

TEST(ReduceFilterTest, MemberWritingReduceIsVetoed) {
  ProgramBuilder b("stateful-reduce");
  b.SetValueSchema(workloads::WebPagesSchema());
  b.AddMember("groups", Value::I64(0));
  b.Map().LoadParam(1).GetField("rank").LoadI64(1).Emit().Ret();
  auto& r = b.Reduce();
  r.LoadMember("groups").LoadI64(1).Add().StoreMember("groups");
  r.LoadParam(0).LoadI64(5).CmpGt().JmpIfFalse("end");
  r.LoadParam(0).LoadMember("groups").Emit();
  r.Label("end").Ret();
  ReduceFilterResult result = FindReduceKeyFilter(b.Build());
  EXPECT_FALSE(result.descriptor.has_value());
  EXPECT_NE(result.miss_reason.find("member"), std::string::npos);
}

TEST(ReduceFilterTest, PartialGuardIsNotDerived) {
  // One emit guarded by the key, another unconditional: no key
  // predicate covers all emits, so no filtering.
  ProgramBuilder b("partial-guard");
  b.SetValueSchema(workloads::WebPagesSchema());
  b.Map().LoadParam(1).GetField("rank").LoadI64(1).Emit().Ret();
  auto& r = b.Reduce();
  r.LoadParam(0).LoadI64(5).CmpGt().JmpIfFalse("skip");
  r.LoadParam(0).LoadI64(1).Emit();
  r.Label("skip");
  r.LoadParam(0).LoadI64(2).Emit();  // always emits
  r.Ret();
  ReduceFilterResult result = FindReduceKeyFilter(b.Build());
  EXPECT_FALSE(result.descriptor.has_value());
}

// ---------------- reduce filter end-to-end ----------------

TEST(ReduceFilterTest, EndToEndPrunesShuffleAndPreservesOutput) {
  TempDir dir("reduce-filter");
  workloads::WebPagesOptions gen;
  gen.num_pages = 8000;
  gen.content_len = 64;
  gen.rank_range = 1000;
  ASSERT_OK(
      workloads::GenerateWebPages(dir.file("pages.msq"), gen).status());

  core::ManimalSystem::Options options;
  options.workspace_dir = dir.file("ws");
  options.simulated_startup_seconds = 0;
  ASSERT_OK_AND_ASSIGN(auto system, core::ManimalSystem::Open(options));

  Program program = CountPerRankWhereKeyAbove(900);  // keep top 10%
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir.file("pages.msq");

  // Baseline: everything shuffles; the reduce discards 90% of groups.
  job.output_path = dir.file("base.prs");
  ASSERT_OK_AND_ASSIGN(exec::JobResult baseline,
                       system->RunBaseline(job));
  EXPECT_EQ(baseline.counters.map_output_filtered, 0u);

  // Submit: the optimizer attaches the filter even with no artifacts.
  job.output_path = dir.file("opt.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));
  EXPECT_TRUE(outcome.plan.optimized) << outcome.plan.explanation;
  ASSERT_TRUE(outcome.report.reduce_filter.has_value());
  EXPECT_GT(outcome.job.counters.map_output_filtered,
            baseline.counters.map_output_records / 2);
  EXPECT_LT(outcome.job.counters.map_output_records,
            baseline.counters.map_output_records / 4);

  ASSERT_OK_AND_ASSIGN(auto a,
                       exec::ReadCanonicalPairs(dir.file("base.prs")));
  ASSERT_OK_AND_ASSIGN(auto b,
                       exec::ReadCanonicalPairs(dir.file("opt.prs")));
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 0u);
}

// ---------------- safe mode ----------------

TEST(SafeModeTest, LoggingMapLosesSelection) {
  ProgramBuilder b("logging-filter");
  b.SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("url").Log();  // side effect
  m.LoadParam(1).GetField("rank").LoadI64(10).CmpGt().JmpIfFalse("end");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  Program p = b.Build();

  ASSERT_OK_AND_ASSIGN(AnalysisReport normal, Analyze(p));
  EXPECT_TRUE(normal.selection.has_value());

  AnalyzeOptions options;
  options.safe_mode = true;
  ASSERT_OK_AND_ASSIGN(AnalysisReport safe, Analyze(p, options));
  EXPECT_FALSE(safe.selection.has_value());
  bool saw_reason = false;
  for (const auto& miss : safe.misses) {
    if (miss.optimization == "selection" &&
        miss.reason.find("safe mode") != std::string::npos) {
      saw_reason = true;
    }
  }
  EXPECT_TRUE(saw_reason);
}

TEST(SafeModeTest, LogFedFieldsStayLiveUnderSafeMode) {
  // content feeds only a log: normal mode projects it away; safe mode
  // keeps it.
  ProgramBuilder b("log-field");
  b.SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("content").Log();
  m.LoadParam(1).GetField("url");
  m.LoadI64(1);
  m.Emit().Ret();
  Program p = b.Build();

  ASSERT_OK_AND_ASSIGN(AnalysisReport normal, Analyze(p));
  ASSERT_TRUE(normal.projection.has_value());
  EXPECT_EQ(normal.projection->unneeded_fields,
            (std::vector<int>{1, 2}));

  AnalyzeOptions options;
  options.safe_mode = true;
  ASSERT_OK_AND_ASSIGN(AnalysisReport safe, Analyze(p, options));
  ASSERT_TRUE(safe.projection.has_value());
  // content (2) is now live; rank (1) is still droppable.
  EXPECT_EQ(safe.projection->unneeded_fields, (std::vector<int>{1}));
}

TEST(SafeModeTest, SideEffectFreeProgramsAreUnaffected) {
  AnalyzeOptions options;
  options.safe_mode = true;
  ASSERT_OK_AND_ASSIGN(AnalysisReport safe,
                       Analyze(workloads::SelectionCountQuery(10),
                               options));
  EXPECT_TRUE(safe.selection.has_value());
  EXPECT_TRUE(safe.projection.has_value());
}

TEST(SafeModeTest, LoggingReduceLosesFilter) {
  ProgramBuilder b("logging-reduce");
  b.SetValueSchema(workloads::WebPagesSchema());
  b.Map().LoadParam(1).GetField("rank").LoadI64(1).Emit().Ret();
  auto& r = b.Reduce();
  r.LoadParam(0).Log();  // reduce-side debug output
  r.LoadParam(0).LoadI64(5).CmpGt().JmpIfFalse("end");
  r.LoadParam(0).LoadI64(1).Emit();
  r.Label("end").Ret();
  Program p = b.Build();

  ASSERT_OK_AND_ASSIGN(AnalysisReport normal, Analyze(p));
  EXPECT_TRUE(normal.reduce_filter.has_value());

  AnalyzeOptions options;
  options.safe_mode = true;
  ASSERT_OK_AND_ASSIGN(AnalysisReport safe, Analyze(p, options));
  EXPECT_FALSE(safe.reduce_filter.has_value());
}

TEST(ReduceFilterTest, CanBeDisabled) {
  AnalyzeOptions options;
  options.enable_reduce_filter = false;
  ASSERT_OK_AND_ASSIGN(
      AnalysisReport report,
      Analyze(CountPerRankWhereKeyAbove(5), options));
  EXPECT_FALSE(report.reduce_filter.has_value());
}

}  // namespace
}  // namespace manimal::analyzer
