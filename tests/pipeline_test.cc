// Tests for the Appendix E pipeline extension: chained MapReduce jobs
// with typed intermediates, and the cross-stage projection that drops
// intermediate columns the next stage provably ignores.

#include <gtest/gtest.h>

#include "columnar/seqfile.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "mril/builder.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/schemas.h"

namespace manimal::core {
namespace {

using mril::ProgramBuilder;
using testing::TempDir;

// Stage 1: per-destURL revenue from UserVisits —
//   reduce emits (destURL, sum(adRevenue));
// declared intermediate layout: url:str, revenue:i64.
mril::Program StageOneUrlStats() {
  ProgramBuilder b("stage1-url-stats");
  b.SetKeyType(FieldType::kI64)
      .SetValueSchema(workloads::UserVisitsSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("destURL");
  m.LoadParam(1).GetField("adRevenue");
  m.Emit().Ret();
  auto& r = b.Reduce();
  int i = r.NewLocal(), n = r.NewLocal(), sum = r.NewLocal();
  r.LoadI64(0).StoreLocal(i).LoadI64(0).StoreLocal(sum);
  r.LoadParam(1).Call("list.len").StoreLocal(n);
  r.Label("loop");
  r.LoadLocal(i).LoadLocal(n).CmpGe().JmpIfTrue("done");
  r.LoadLocal(sum).LoadParam(1).LoadLocal(i).Call("list.get").Add()
      .StoreLocal(sum);
  r.LoadLocal(i).LoadI64(1).Add().StoreLocal(i);
  r.Jmp("loop");
  r.Label("done");
  r.LoadParam(0).LoadLocal(sum).Emit().Ret();
  return b.Build();
}

Schema StageOneOutputSchema() {
  return Schema({{"url", FieldType::kStr}, {"revenue", FieldType::kI64}});
}

// Stage 2: histogram of revenue magnitude —
//   map: emit(revenue / 1000, 1); reduce: count.
// Never touches the url column of the intermediate.
mril::Program StageTwoRevenueHistogram() {
  ProgramBuilder b("stage2-revenue-histogram");
  b.SetKeyType(FieldType::kI64).SetValueSchema(StageOneOutputSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("revenue").LoadI64(1000).Div();
  m.LoadI64(1);
  m.Emit().Ret();
  auto& r = b.Reduce();
  r.LoadParam(0);
  r.LoadParam(1).Call("list.len");
  r.Emit().Ret();
  return b.Build();
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() : dir_("pipeline") {
    workloads::UserVisitsOptions gen;
    gen.num_visits = 20000;
    gen.num_pages = 1000;
    EXPECT_TRUE(
        workloads::GenerateUserVisits(dir_.file("visits.msq"), gen).ok());
    ManimalSystem::Options options;
    options.workspace_dir = dir_.file("ws");
    options.simulated_startup_seconds = 0;
    options.map_parallelism = 2;
    options.num_partitions = 2;
    auto system_or = ManimalSystem::Open(options);
    EXPECT_TRUE(system_or.ok());
    system_ = std::move(system_or).value();
  }

  std::vector<ManimalSystem::PipelineStage> Stages() {
    std::vector<ManimalSystem::PipelineStage> stages(2);
    stages[0].program = StageOneUrlStats();
    stages[0].output_schema = StageOneOutputSchema();
    stages[1].program = StageTwoRevenueHistogram();
    return stages;
  }

  TempDir dir_;
  std::unique_ptr<ManimalSystem> system_;
};

TEST_F(PipelineTest, TwoStagePipelineRuns) {
  ASSERT_OK_AND_ASSIGN(
      auto result,
      system_->RunPipeline(Stages(), dir_.file("visits.msq"),
                           dir_.file("hist.prs")));
  ASSERT_EQ(result.stages.size(), 2u);
  EXPECT_GT(result.stages[0].job.counters.output_records, 0u);
  EXPECT_GT(result.stages[1].job.counters.output_records, 0u);

  // The histogram's total count equals the number of distinct URLs.
  ASSERT_OK_AND_ASSIGN(auto pairs, exec::ReadAllPairs(dir_.file("hist.prs")));
  int64_t total = 0;
  for (const auto& [bucket, count] : pairs) total += count.i64();
  EXPECT_EQ(static_cast<uint64_t>(total),
            result.stages[0].job.counters.output_records);
}

TEST_F(PipelineTest, CrossStageProjectionDropsUnreadColumns) {
  // Stage 2 reads only `revenue`; the url column must not be written.
  ASSERT_OK_AND_ASSIGN(
      auto with, system_->RunPipeline(Stages(), dir_.file("visits.msq"),
                                      dir_.file("with.prs")));
  ASSERT_EQ(with.stages[0].written_fields, (std::vector<int>{1}));

  ManimalSystem::PipelineOptions no_cross;
  no_cross.cross_stage_projection = false;
  ASSERT_OK_AND_ASSIGN(
      auto without,
      system_->RunPipeline(Stages(), dir_.file("visits.msq"),
                           dir_.file("without.prs"), no_cross));
  EXPECT_TRUE(without.stages[0].written_fields.empty());

  // Same final output either way; smaller intermediate with the
  // projection.
  ASSERT_OK_AND_ASSIGN(auto a,
                       exec::ReadCanonicalPairs(dir_.file("with.prs")));
  ASSERT_OK_AND_ASSIGN(auto b,
                       exec::ReadCanonicalPairs(dir_.file("without.prs")));
  EXPECT_EQ(a, b);
  EXPECT_LT(with.stages[1].job.counters.input_file_bytes,
            without.stages[1].job.counters.input_file_bytes);
}

TEST_F(PipelineTest, IntermediateIsAReadableTypedSeqFile) {
  ManimalSystem::PipelineOptions no_cross;
  no_cross.cross_stage_projection = false;
  ASSERT_OK_AND_ASSIGN(
      auto result,
      system_->RunPipeline(Stages(), dir_.file("visits.msq"),
                           dir_.file("out.prs"), no_cross));
  const std::string& inter = result.stages[0].intermediate_path;
  ASSERT_FALSE(inter.empty());
  ASSERT_OK_AND_ASSIGN(auto reader, columnar::SeqFileReader::Open(inter));
  EXPECT_EQ(reader->meta().original_schema, StageOneOutputSchema());
  ASSERT_OK_AND_ASSIGN(auto stream, reader->ScanAll());
  Record record;
  ASSERT_OK_AND_ASSIGN(bool more, stream.Next(&record));
  ASSERT_TRUE(more);
  EXPECT_TRUE(record[0].is_str());
  EXPECT_TRUE(record[1].is_i64());
}

TEST_F(PipelineTest, SchemaMismatchIsRejectedUpFront) {
  auto stages = Stages();
  stages[0].output_schema =
      Schema({{"wrong", FieldType::kI64}, {"layout", FieldType::kStr}});
  EXPECT_TRUE(system_
                  ->RunPipeline(stages, dir_.file("visits.msq"),
                                dir_.file("x.prs"))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(PipelineTest, MissingIntermediateSchemaIsRejected) {
  auto stages = Stages();
  stages[0].output_schema.reset();
  EXPECT_TRUE(system_
                  ->RunPipeline(stages, dir_.file("visits.msq"),
                                dir_.file("x.prs"))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(PipelineTest, SingleStagePipelineEqualsPlainSubmit) {
  std::vector<ManimalSystem::PipelineStage> one(1);
  one[0].program = StageOneUrlStats();
  ASSERT_OK_AND_ASSIGN(
      auto result, system_->RunPipeline(one, dir_.file("visits.msq"),
                                        dir_.file("single.prs")));
  ManimalSystem::Submission job;
  job.program = StageOneUrlStats();
  job.input_path = dir_.file("visits.msq");
  job.output_path = dir_.file("plain.prs");
  ASSERT_OK(system_->RunBaseline(job).status());
  ASSERT_OK_AND_ASSIGN(auto a,
                       exec::ReadCanonicalPairs(dir_.file("single.prs")));
  ASSERT_OK_AND_ASSIGN(auto b,
                       exec::ReadCanonicalPairs(dir_.file("plain.prs")));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace manimal::core
