// Tests for expression simplification and the shifted-comparison
// index-range derivation: exactness of the rewrites (checked by random
// differential evaluation) and the widened class of range-indexable
// selections, including wrap-around adversarial coverage.

#include <gtest/gtest.h>

#include <limits>

#include "analyzer/analyzer.h"
#include "analyzer/expr_eval.h"
#include "analyzer/select.h"
#include "analyzer/simplify.h"
#include "common/random.h"
#include "core/manimal.h"
#include "exec/pairfile.h"
#include "mril/builder.h"
#include "tests/test_util.h"
#include "workloads/datagen.h"
#include "workloads/schemas.h"

namespace manimal::analyzer {
namespace {

using analysis::Expr;
using analysis::ExprRef;
using mril::Opcode;
using mril::ProgramBuilder;
using testing::TempDir;

ExprRef RankField() {
  return Expr::MakeField(Expr::MakeParam(1, 0), 1, 1);
}

ExprRef I64Const(int64_t v) { return Expr::MakeConst(Value::I64(v), 2); }

// ---------------- Simplify unit tests ----------------

TEST(SimplifyTest, FoldsConstantArithmetic) {
  // (3 * 4) + 5 -> 17
  ExprRef e = Expr::MakeOp(
      Opcode::kAdd,
      {Expr::MakeOp(Opcode::kMul, {I64Const(3), I64Const(4)}, 0),
       I64Const(5)},
      1);
  ExprRef s = Simplify(e);
  ASSERT_EQ(s->kind, Expr::Kind::kConst);
  EXPECT_EQ(s->constant.i64(), 17);
}

TEST(SimplifyTest, FoldsFunctionalBuiltins) {
  const mril::Builtin* len =
      mril::BuiltinRegistry::Get().FindByName("str.len");
  ExprRef e = Expr::MakeCall(
      len, {Expr::MakeConst(Value::Str("hello"), 0)}, 1);
  ExprRef s = Simplify(e);
  ASSERT_EQ(s->kind, Expr::Kind::kConst);
  EXPECT_EQ(s->constant.i64(), 5);
}

TEST(SimplifyTest, DoesNotFoldImpureCalls) {
  const mril::Builtin* ht_new =
      mril::BuiltinRegistry::Get().FindByName("ht.new");
  ExprRef e = Expr::MakeCall(ht_new, {}, 0);
  ExprRef s = Simplify(e);
  EXPECT_EQ(s->kind, Expr::Kind::kCall);
}

TEST(SimplifyTest, DivisionByZeroIsLeftToRuntime) {
  ExprRef e =
      Expr::MakeOp(Opcode::kDiv, {I64Const(1), I64Const(0)}, 0);
  ExprRef s = Simplify(e);
  EXPECT_EQ(s->kind, Expr::Kind::kOp);  // not folded, not crashed
}

TEST(SimplifyTest, EliminatesDoubleNegation) {
  ExprRef cmp =
      Expr::MakeOp(Opcode::kCmpGt, {RankField(), I64Const(5)}, 0);
  ExprRef e = Expr::MakeOp(
      Opcode::kNot, {Expr::MakeOp(Opcode::kNot, {cmp}, 1)}, 2);
  ExprRef s = Simplify(e);
  EXPECT_TRUE(s->Equals(*cmp));
}

TEST(SimplifyTest, PushesNotThroughComparison) {
  // not(rank <= 5) -> rank > 5
  ExprRef e = Expr::MakeOp(
      Opcode::kNot,
      {Expr::MakeOp(Opcode::kCmpLe, {RankField(), I64Const(5)}, 0)}, 1);
  ExprRef s = Simplify(e);
  ASSERT_EQ(s->kind, Expr::Kind::kOp);
  EXPECT_EQ(s->op, Opcode::kCmpGt);
}

TEST(SimplifyTest, OrientsConstantRight) {
  // 5 < rank -> rank > 5
  ExprRef e =
      Expr::MakeOp(Opcode::kCmpLt, {I64Const(5), RankField()}, 0);
  ExprRef s = Simplify(e);
  ASSERT_EQ(s->kind, Expr::Kind::kOp);
  EXPECT_EQ(s->op, Opcode::kCmpGt);
  EXPECT_EQ(s->args[1]->kind, Expr::Kind::kConst);
}

TEST(SimplifyTest, LeavesUnknownsAndMembersAlone) {
  ExprRef u = Expr::MakeUnknown(0);
  EXPECT_EQ(Simplify(u).get(), u.get());
  ExprRef m = Expr::MakeMember(0, 0);
  EXPECT_EQ(Simplify(m).get(), m.get());
}

// Property: Simplify never changes evaluation results.
class SimplifyEquivalence : public ::testing::TestWithParam<int> {};

ExprRef RandomExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->OneIn(3)) {
    switch (rng->Uniform(3)) {
      case 0:
        return I64Const(rng->UniformRange(-100, 100));
      case 1:
        return RankField();
      default:
        return Expr::MakeField(Expr::MakeParam(1, 0),
                               static_cast<int>(rng->Uniform(3)), 1);
    }
  }
  switch (rng->Uniform(5)) {
    case 0:
      return Expr::MakeOp(Opcode::kAdd,
                          {RandomExpr(rng, depth - 1),
                           RandomExpr(rng, depth - 1)},
                          0);
    case 1:
      return Expr::MakeOp(Opcode::kSub,
                          {RandomExpr(rng, depth - 1),
                           RandomExpr(rng, depth - 1)},
                          0);
    case 2:
      return Expr::MakeOp(Opcode::kMul,
                          {RandomExpr(rng, depth - 1),
                           RandomExpr(rng, depth - 1)},
                          0);
    case 3:
      return Expr::MakeOp(Opcode::kCmpGt,
                          {RandomExpr(rng, depth - 1),
                           RandomExpr(rng, depth - 1)},
                          0);
    default:
      return Expr::MakeOp(
          Opcode::kNot,
          {Expr::MakeOp(Opcode::kCmpLe,
                        {RandomExpr(rng, depth - 1),
                         RandomExpr(rng, depth - 1)},
                        0)},
          0);
  }
}

TEST_P(SimplifyEquivalence, EvaluationIsPreserved) {
  Rng rng(500 + GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    ExprRef e = RandomExpr(&rng, 3);
    ExprRef s = Simplify(e);
    Value record = Value::List({Value::I64(rng.UniformRange(-50, 50)),
                                Value::I64(rng.UniformRange(-50, 50)),
                                Value::I64(rng.UniformRange(-50, 50))});
    auto before = EvalExpr(e, Value::I64(0), record);
    auto after = EvalExpr(s, Value::I64(0), record);
    ASSERT_EQ(before.ok(), after.ok());
    if (before.ok()) {
      EXPECT_EQ(before->Compare(*after), 0)
          << e->ToString() << " vs " << s->ToString();
      EXPECT_EQ(before->kind(), after->kind());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyEquivalence,
                         ::testing::Range(0, 5));

// ---------------- shifted-comparison indexability ----------------

mril::Program ShiftedSelect(int64_t add, int64_t threshold) {
  ProgramBuilder b("shifted");
  b.SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(add).Add().LoadI64(threshold)
      .CmpGt().JmpIfFalse("end");
  m.LoadParam(1).GetField("rank");
  m.LoadI64(1);
  m.Emit();
  m.Label("end").Ret();
  return b.Build();
}

TEST(ShiftedIndexTest, RankPlusConstantIsIndexable) {
  // rank + 10 > 50  ->  index on rank, range (40, +inf) plus the wrap
  // fringe near INT64_MAX.
  SelectResult r = FindSelect(ShiftedSelect(10, 50));
  ASSERT_TRUE(r.descriptor.has_value()) << r.miss_reason;
  ASSERT_TRUE(r.descriptor->indexable());
  EXPECT_EQ(r.descriptor->indexed_expr->ToString(), "param1.field[1]");
  ASSERT_GE(r.descriptor->intervals.size(), 1u);
  EXPECT_EQ(r.descriptor->intervals[0].lo->i64(), 40);
  EXPECT_FALSE(r.descriptor->intervals[0].lo_inclusive);
}

TEST(ShiftedIndexTest, WrapFringeIsCovered) {
  // rank + 10 < 50: besides rank < 40, values near INT64_MAX wrap
  // negative and satisfy the original predicate — the scan must
  // include them.
  ProgramBuilder b("wrapping");
  b.SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(10).Add().LoadI64(50).CmpLt()
      .JmpIfFalse("end");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  SelectResult r = FindSelect(b.Build());
  ASSERT_TRUE(r.descriptor.has_value());
  ASSERT_TRUE(r.descriptor->indexable());

  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  // A wrapping rank: kMax - 3 + 10 wraps very negative, < 50 holds.
  for (int64_t rank : {int64_t{-100}, int64_t{0}, int64_t{39},
                       kMax - 3, kMax}) {
    bool covered = false;
    for (const KeyInterval& iv : r.descriptor->intervals) {
      covered = covered || iv.Contains(Value::I64(rank));
    }
    EXPECT_TRUE(covered) << rank;
  }
  // And a value that satisfies neither side is excluded.
  bool covered = false;
  for (const KeyInterval& iv : r.descriptor->intervals) {
    covered = covered || iv.Contains(Value::I64(1000));
  }
  EXPECT_FALSE(covered);
}

TEST(ShiftedIndexTest, NonI64BaseIndexesTheWholeExpression) {
  // x is f64, so (x + 10) > 50 must NOT be normalized onto x (f64
  // rounding would make the rewrite inexact). Instead the analyzer
  // safely keys the index on the computed expression itself.
  ProgramBuilder b("f64-shift");
  b.SetValueSchema(Schema({{"x", FieldType::kF64}}));
  auto& m = b.Map();
  m.LoadParam(1).GetFieldIndex(0).LoadI64(10).Add().LoadI64(50).CmpGt()
      .JmpIfFalse("end");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  SelectResult r = FindSelect(b.Build());
  ASSERT_TRUE(r.descriptor.has_value());
  ASSERT_TRUE(r.descriptor->indexable());
  EXPECT_EQ(r.descriptor->indexed_expr->ToString(),
            "(param1.field[0] add i64:10)");
  ASSERT_EQ(r.descriptor->intervals.size(), 1u);
  EXPECT_EQ(r.descriptor->intervals[0].lo->i64(), 50);
}

TEST(ShiftedIndexTest, ConstantFoldedGuardDetects) {
  // rank > (6 * 7): folding makes it a plain threshold.
  ProgramBuilder b("folded");
  b.SetValueSchema(workloads::WebPagesSchema());
  auto& m = b.Map();
  m.LoadParam(1).GetField("rank");
  m.LoadI64(6).LoadI64(7).Mul();
  m.CmpGt().JmpIfFalse("end");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  SelectResult r = FindSelect(b.Build());
  ASSERT_TRUE(r.descriptor.has_value());
  ASSERT_TRUE(r.descriptor->indexable());
  EXPECT_EQ(r.descriptor->intervals[0].lo->i64(), 42);
}

// End-to-end: a shifted selection through the full system, outputs
// identical and the index actually used.
TEST(ShiftedIndexTest, EndToEndEquivalence) {
  TempDir dir("shifted-e2e");
  workloads::WebPagesOptions gen;
  gen.num_pages = 4000;
  gen.content_len = 64;
  gen.rank_range = 1000;
  ASSERT_OK(
      workloads::GenerateWebPages(dir.file("pages.msq"), gen).status());

  core::ManimalSystem::Options options;
  options.workspace_dir = dir.file("ws");
  options.simulated_startup_seconds = 0;
  ASSERT_OK_AND_ASSIGN(auto system, core::ManimalSystem::Open(options));

  mril::Program program = ShiftedSelect(100, 900);  // rank > 800
  core::ManimalSystem::Submission job;
  job.program = program;
  job.input_path = dir.file("pages.msq");
  job.output_path = dir.file("base.prs");
  ASSERT_OK_AND_ASSIGN(auto baseline, system->RunBaseline(job));

  ASSERT_OK_AND_ASSIGN(auto report, analyzer::Analyze(program));
  auto specs = SynthesizeIndexPrograms(program, report);
  ASSERT_FALSE(specs.empty());
  ASSERT_OK(system->BuildIndex(specs[0], job.input_path).status());

  job.output_path = dir.file("opt.prs");
  ASSERT_OK_AND_ASSIGN(auto outcome, system->Submit(job));
  EXPECT_TRUE(outcome.plan.optimized);
  // ~20% selectivity: the index skips most invocations.
  EXPECT_LT(outcome.job.counters.map_invocations,
            baseline.counters.map_invocations / 2);

  ASSERT_OK_AND_ASSIGN(auto a,
                       exec::ReadCanonicalPairs(dir.file("base.prs")));
  ASSERT_OK_AND_ASSIGN(auto b,
                       exec::ReadCanonicalPairs(dir.file("opt.prs")));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace manimal::analyzer
