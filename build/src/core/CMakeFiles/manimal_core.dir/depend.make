# Empty dependencies file for manimal_core.
# This may be replaced when dependencies are built.
