file(REMOVE_RECURSE
  "CMakeFiles/manimal_core.dir/manimal.cc.o"
  "CMakeFiles/manimal_core.dir/manimal.cc.o.d"
  "CMakeFiles/manimal_core.dir/pipeline.cc.o"
  "CMakeFiles/manimal_core.dir/pipeline.cc.o.d"
  "libmanimal_core.a"
  "libmanimal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manimal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
