file(REMOVE_RECURSE
  "libmanimal_core.a"
)
