file(REMOVE_RECURSE
  "libmanimal_common.a"
)
