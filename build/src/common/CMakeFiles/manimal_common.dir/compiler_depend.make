# Empty compiler generated dependencies file for manimal_common.
# This may be replaced when dependencies are built.
