file(REMOVE_RECURSE
  "CMakeFiles/manimal_common.dir/coding.cc.o"
  "CMakeFiles/manimal_common.dir/coding.cc.o.d"
  "CMakeFiles/manimal_common.dir/env.cc.o"
  "CMakeFiles/manimal_common.dir/env.cc.o.d"
  "CMakeFiles/manimal_common.dir/random.cc.o"
  "CMakeFiles/manimal_common.dir/random.cc.o.d"
  "CMakeFiles/manimal_common.dir/status.cc.o"
  "CMakeFiles/manimal_common.dir/status.cc.o.d"
  "CMakeFiles/manimal_common.dir/strings.cc.o"
  "CMakeFiles/manimal_common.dir/strings.cc.o.d"
  "CMakeFiles/manimal_common.dir/threadpool.cc.o"
  "CMakeFiles/manimal_common.dir/threadpool.cc.o.d"
  "libmanimal_common.a"
  "libmanimal_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manimal_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
