file(REMOVE_RECURSE
  "CMakeFiles/manimal_index.dir/btree.cc.o"
  "CMakeFiles/manimal_index.dir/btree.cc.o.d"
  "CMakeFiles/manimal_index.dir/catalog.cc.o"
  "CMakeFiles/manimal_index.dir/catalog.cc.o.d"
  "CMakeFiles/manimal_index.dir/external_sorter.cc.o"
  "CMakeFiles/manimal_index.dir/external_sorter.cc.o.d"
  "libmanimal_index.a"
  "libmanimal_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manimal_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
