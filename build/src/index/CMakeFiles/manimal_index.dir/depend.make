# Empty dependencies file for manimal_index.
# This may be replaced when dependencies are built.
