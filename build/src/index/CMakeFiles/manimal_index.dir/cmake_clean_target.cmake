file(REMOVE_RECURSE
  "libmanimal_index.a"
)
