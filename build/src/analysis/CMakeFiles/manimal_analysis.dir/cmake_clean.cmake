file(REMOVE_RECURSE
  "CMakeFiles/manimal_analysis.dir/cfg.cc.o"
  "CMakeFiles/manimal_analysis.dir/cfg.cc.o.d"
  "CMakeFiles/manimal_analysis.dir/expr.cc.o"
  "CMakeFiles/manimal_analysis.dir/expr.cc.o.d"
  "CMakeFiles/manimal_analysis.dir/expr_recovery.cc.o"
  "CMakeFiles/manimal_analysis.dir/expr_recovery.cc.o.d"
  "CMakeFiles/manimal_analysis.dir/paths.cc.o"
  "CMakeFiles/manimal_analysis.dir/paths.cc.o.d"
  "CMakeFiles/manimal_analysis.dir/reaching_defs.cc.o"
  "CMakeFiles/manimal_analysis.dir/reaching_defs.cc.o.d"
  "CMakeFiles/manimal_analysis.dir/side_effects.cc.o"
  "CMakeFiles/manimal_analysis.dir/side_effects.cc.o.d"
  "libmanimal_analysis.a"
  "libmanimal_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manimal_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
