
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cfg.cc" "src/analysis/CMakeFiles/manimal_analysis.dir/cfg.cc.o" "gcc" "src/analysis/CMakeFiles/manimal_analysis.dir/cfg.cc.o.d"
  "/root/repo/src/analysis/expr.cc" "src/analysis/CMakeFiles/manimal_analysis.dir/expr.cc.o" "gcc" "src/analysis/CMakeFiles/manimal_analysis.dir/expr.cc.o.d"
  "/root/repo/src/analysis/expr_recovery.cc" "src/analysis/CMakeFiles/manimal_analysis.dir/expr_recovery.cc.o" "gcc" "src/analysis/CMakeFiles/manimal_analysis.dir/expr_recovery.cc.o.d"
  "/root/repo/src/analysis/paths.cc" "src/analysis/CMakeFiles/manimal_analysis.dir/paths.cc.o" "gcc" "src/analysis/CMakeFiles/manimal_analysis.dir/paths.cc.o.d"
  "/root/repo/src/analysis/reaching_defs.cc" "src/analysis/CMakeFiles/manimal_analysis.dir/reaching_defs.cc.o" "gcc" "src/analysis/CMakeFiles/manimal_analysis.dir/reaching_defs.cc.o.d"
  "/root/repo/src/analysis/side_effects.cc" "src/analysis/CMakeFiles/manimal_analysis.dir/side_effects.cc.o" "gcc" "src/analysis/CMakeFiles/manimal_analysis.dir/side_effects.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mril/CMakeFiles/manimal_mril.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/manimal_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/manimal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
