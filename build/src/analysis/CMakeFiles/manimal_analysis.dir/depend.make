# Empty dependencies file for manimal_analysis.
# This may be replaced when dependencies are built.
