file(REMOVE_RECURSE
  "libmanimal_analysis.a"
)
