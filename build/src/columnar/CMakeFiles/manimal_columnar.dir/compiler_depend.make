# Empty compiler generated dependencies file for manimal_columnar.
# This may be replaced when dependencies are built.
