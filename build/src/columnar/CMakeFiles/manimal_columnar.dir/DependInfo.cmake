
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/columnar/column_groups.cc" "src/columnar/CMakeFiles/manimal_columnar.dir/column_groups.cc.o" "gcc" "src/columnar/CMakeFiles/manimal_columnar.dir/column_groups.cc.o.d"
  "/root/repo/src/columnar/dictionary.cc" "src/columnar/CMakeFiles/manimal_columnar.dir/dictionary.cc.o" "gcc" "src/columnar/CMakeFiles/manimal_columnar.dir/dictionary.cc.o.d"
  "/root/repo/src/columnar/seqfile.cc" "src/columnar/CMakeFiles/manimal_columnar.dir/seqfile.cc.o" "gcc" "src/columnar/CMakeFiles/manimal_columnar.dir/seqfile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serde/CMakeFiles/manimal_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/manimal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
