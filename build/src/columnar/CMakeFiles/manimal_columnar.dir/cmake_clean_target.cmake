file(REMOVE_RECURSE
  "libmanimal_columnar.a"
)
