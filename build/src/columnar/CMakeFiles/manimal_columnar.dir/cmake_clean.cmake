file(REMOVE_RECURSE
  "CMakeFiles/manimal_columnar.dir/column_groups.cc.o"
  "CMakeFiles/manimal_columnar.dir/column_groups.cc.o.d"
  "CMakeFiles/manimal_columnar.dir/dictionary.cc.o"
  "CMakeFiles/manimal_columnar.dir/dictionary.cc.o.d"
  "CMakeFiles/manimal_columnar.dir/seqfile.cc.o"
  "CMakeFiles/manimal_columnar.dir/seqfile.cc.o.d"
  "libmanimal_columnar.a"
  "libmanimal_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manimal_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
