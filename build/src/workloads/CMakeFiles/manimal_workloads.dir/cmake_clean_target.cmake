file(REMOVE_RECURSE
  "libmanimal_workloads.a"
)
