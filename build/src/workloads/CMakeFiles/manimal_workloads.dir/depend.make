# Empty dependencies file for manimal_workloads.
# This may be replaced when dependencies are built.
