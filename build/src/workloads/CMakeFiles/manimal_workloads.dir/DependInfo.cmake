
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/datagen.cc" "src/workloads/CMakeFiles/manimal_workloads.dir/datagen.cc.o" "gcc" "src/workloads/CMakeFiles/manimal_workloads.dir/datagen.cc.o.d"
  "/root/repo/src/workloads/pavlo.cc" "src/workloads/CMakeFiles/manimal_workloads.dir/pavlo.cc.o" "gcc" "src/workloads/CMakeFiles/manimal_workloads.dir/pavlo.cc.o.d"
  "/root/repo/src/workloads/schemas.cc" "src/workloads/CMakeFiles/manimal_workloads.dir/schemas.cc.o" "gcc" "src/workloads/CMakeFiles/manimal_workloads.dir/schemas.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mril/CMakeFiles/manimal_mril.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/manimal_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/manimal_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/manimal_serde.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
