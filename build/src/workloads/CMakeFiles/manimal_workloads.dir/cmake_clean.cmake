file(REMOVE_RECURSE
  "CMakeFiles/manimal_workloads.dir/datagen.cc.o"
  "CMakeFiles/manimal_workloads.dir/datagen.cc.o.d"
  "CMakeFiles/manimal_workloads.dir/pavlo.cc.o"
  "CMakeFiles/manimal_workloads.dir/pavlo.cc.o.d"
  "CMakeFiles/manimal_workloads.dir/schemas.cc.o"
  "CMakeFiles/manimal_workloads.dir/schemas.cc.o.d"
  "libmanimal_workloads.a"
  "libmanimal_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manimal_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
