file(REMOVE_RECURSE
  "libmanimal_serde.a"
)
