file(REMOVE_RECURSE
  "CMakeFiles/manimal_serde.dir/key_codec.cc.o"
  "CMakeFiles/manimal_serde.dir/key_codec.cc.o.d"
  "CMakeFiles/manimal_serde.dir/record_codec.cc.o"
  "CMakeFiles/manimal_serde.dir/record_codec.cc.o.d"
  "CMakeFiles/manimal_serde.dir/schema.cc.o"
  "CMakeFiles/manimal_serde.dir/schema.cc.o.d"
  "CMakeFiles/manimal_serde.dir/value.cc.o"
  "CMakeFiles/manimal_serde.dir/value.cc.o.d"
  "libmanimal_serde.a"
  "libmanimal_serde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manimal_serde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
