# Empty dependencies file for manimal_serde.
# This may be replaced when dependencies are built.
