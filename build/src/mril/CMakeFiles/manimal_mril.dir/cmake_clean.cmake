file(REMOVE_RECURSE
  "CMakeFiles/manimal_mril.dir/assembler.cc.o"
  "CMakeFiles/manimal_mril.dir/assembler.cc.o.d"
  "CMakeFiles/manimal_mril.dir/builder.cc.o"
  "CMakeFiles/manimal_mril.dir/builder.cc.o.d"
  "CMakeFiles/manimal_mril.dir/builtins.cc.o"
  "CMakeFiles/manimal_mril.dir/builtins.cc.o.d"
  "CMakeFiles/manimal_mril.dir/opcode.cc.o"
  "CMakeFiles/manimal_mril.dir/opcode.cc.o.d"
  "CMakeFiles/manimal_mril.dir/program.cc.o"
  "CMakeFiles/manimal_mril.dir/program.cc.o.d"
  "CMakeFiles/manimal_mril.dir/verifier.cc.o"
  "CMakeFiles/manimal_mril.dir/verifier.cc.o.d"
  "CMakeFiles/manimal_mril.dir/vm.cc.o"
  "CMakeFiles/manimal_mril.dir/vm.cc.o.d"
  "libmanimal_mril.a"
  "libmanimal_mril.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manimal_mril.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
