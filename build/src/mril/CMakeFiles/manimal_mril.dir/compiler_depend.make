# Empty compiler generated dependencies file for manimal_mril.
# This may be replaced when dependencies are built.
