
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mril/assembler.cc" "src/mril/CMakeFiles/manimal_mril.dir/assembler.cc.o" "gcc" "src/mril/CMakeFiles/manimal_mril.dir/assembler.cc.o.d"
  "/root/repo/src/mril/builder.cc" "src/mril/CMakeFiles/manimal_mril.dir/builder.cc.o" "gcc" "src/mril/CMakeFiles/manimal_mril.dir/builder.cc.o.d"
  "/root/repo/src/mril/builtins.cc" "src/mril/CMakeFiles/manimal_mril.dir/builtins.cc.o" "gcc" "src/mril/CMakeFiles/manimal_mril.dir/builtins.cc.o.d"
  "/root/repo/src/mril/opcode.cc" "src/mril/CMakeFiles/manimal_mril.dir/opcode.cc.o" "gcc" "src/mril/CMakeFiles/manimal_mril.dir/opcode.cc.o.d"
  "/root/repo/src/mril/program.cc" "src/mril/CMakeFiles/manimal_mril.dir/program.cc.o" "gcc" "src/mril/CMakeFiles/manimal_mril.dir/program.cc.o.d"
  "/root/repo/src/mril/verifier.cc" "src/mril/CMakeFiles/manimal_mril.dir/verifier.cc.o" "gcc" "src/mril/CMakeFiles/manimal_mril.dir/verifier.cc.o.d"
  "/root/repo/src/mril/vm.cc" "src/mril/CMakeFiles/manimal_mril.dir/vm.cc.o" "gcc" "src/mril/CMakeFiles/manimal_mril.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/serde/CMakeFiles/manimal_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/manimal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
