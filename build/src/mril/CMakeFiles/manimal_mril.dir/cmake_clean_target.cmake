file(REMOVE_RECURSE
  "libmanimal_mril.a"
)
