# Empty compiler generated dependencies file for manimal_analyzer.
# This may be replaced when dependencies are built.
