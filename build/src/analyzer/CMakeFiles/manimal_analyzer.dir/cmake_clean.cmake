file(REMOVE_RECURSE
  "CMakeFiles/manimal_analyzer.dir/analyzer.cc.o"
  "CMakeFiles/manimal_analyzer.dir/analyzer.cc.o.d"
  "CMakeFiles/manimal_analyzer.dir/compression.cc.o"
  "CMakeFiles/manimal_analyzer.dir/compression.cc.o.d"
  "CMakeFiles/manimal_analyzer.dir/descriptor.cc.o"
  "CMakeFiles/manimal_analyzer.dir/descriptor.cc.o.d"
  "CMakeFiles/manimal_analyzer.dir/expr_eval.cc.o"
  "CMakeFiles/manimal_analyzer.dir/expr_eval.cc.o.d"
  "CMakeFiles/manimal_analyzer.dir/index_gen.cc.o"
  "CMakeFiles/manimal_analyzer.dir/index_gen.cc.o.d"
  "CMakeFiles/manimal_analyzer.dir/project.cc.o"
  "CMakeFiles/manimal_analyzer.dir/project.cc.o.d"
  "CMakeFiles/manimal_analyzer.dir/reduce_filter.cc.o"
  "CMakeFiles/manimal_analyzer.dir/reduce_filter.cc.o.d"
  "CMakeFiles/manimal_analyzer.dir/select.cc.o"
  "CMakeFiles/manimal_analyzer.dir/select.cc.o.d"
  "CMakeFiles/manimal_analyzer.dir/simplify.cc.o"
  "CMakeFiles/manimal_analyzer.dir/simplify.cc.o.d"
  "libmanimal_analyzer.a"
  "libmanimal_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manimal_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
