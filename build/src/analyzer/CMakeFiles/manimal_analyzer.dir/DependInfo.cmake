
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/analyzer.cc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/analyzer.cc.o" "gcc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/analyzer.cc.o.d"
  "/root/repo/src/analyzer/compression.cc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/compression.cc.o" "gcc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/compression.cc.o.d"
  "/root/repo/src/analyzer/descriptor.cc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/descriptor.cc.o" "gcc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/descriptor.cc.o.d"
  "/root/repo/src/analyzer/expr_eval.cc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/expr_eval.cc.o" "gcc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/expr_eval.cc.o.d"
  "/root/repo/src/analyzer/index_gen.cc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/index_gen.cc.o" "gcc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/index_gen.cc.o.d"
  "/root/repo/src/analyzer/project.cc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/project.cc.o" "gcc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/project.cc.o.d"
  "/root/repo/src/analyzer/reduce_filter.cc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/reduce_filter.cc.o" "gcc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/reduce_filter.cc.o.d"
  "/root/repo/src/analyzer/select.cc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/select.cc.o" "gcc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/select.cc.o.d"
  "/root/repo/src/analyzer/simplify.cc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/simplify.cc.o" "gcc" "src/analyzer/CMakeFiles/manimal_analyzer.dir/simplify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/manimal_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/mril/CMakeFiles/manimal_mril.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/manimal_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/manimal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
