file(REMOVE_RECURSE
  "libmanimal_analyzer.a"
)
