file(REMOVE_RECURSE
  "CMakeFiles/manimal_optimizer.dir/cost.cc.o"
  "CMakeFiles/manimal_optimizer.dir/cost.cc.o.d"
  "CMakeFiles/manimal_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/manimal_optimizer.dir/optimizer.cc.o.d"
  "libmanimal_optimizer.a"
  "libmanimal_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manimal_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
