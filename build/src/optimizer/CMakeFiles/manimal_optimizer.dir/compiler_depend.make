# Empty compiler generated dependencies file for manimal_optimizer.
# This may be replaced when dependencies are built.
