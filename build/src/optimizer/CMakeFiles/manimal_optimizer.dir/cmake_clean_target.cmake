file(REMOVE_RECURSE
  "libmanimal_optimizer.a"
)
