file(REMOVE_RECURSE
  "libmanimal_exec.a"
)
