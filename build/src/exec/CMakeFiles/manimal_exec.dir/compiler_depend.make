# Empty compiler generated dependencies file for manimal_exec.
# This may be replaced when dependencies are built.
