file(REMOVE_RECURSE
  "CMakeFiles/manimal_exec.dir/descriptor.cc.o"
  "CMakeFiles/manimal_exec.dir/descriptor.cc.o.d"
  "CMakeFiles/manimal_exec.dir/engine.cc.o"
  "CMakeFiles/manimal_exec.dir/engine.cc.o.d"
  "CMakeFiles/manimal_exec.dir/index_build.cc.o"
  "CMakeFiles/manimal_exec.dir/index_build.cc.o.d"
  "CMakeFiles/manimal_exec.dir/pairfile.cc.o"
  "CMakeFiles/manimal_exec.dir/pairfile.cc.o.d"
  "libmanimal_exec.a"
  "libmanimal_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manimal_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
