# Empty dependencies file for ext_pipeline.
# This may be replaced when dependencies are built.
