file(REMOVE_RECURSE
  "CMakeFiles/ext_pipeline.dir/ext_pipeline.cc.o"
  "CMakeFiles/ext_pipeline.dir/ext_pipeline.cc.o.d"
  "ext_pipeline"
  "ext_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
