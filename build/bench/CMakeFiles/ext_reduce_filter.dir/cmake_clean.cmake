file(REMOVE_RECURSE
  "CMakeFiles/ext_reduce_filter.dir/ext_reduce_filter.cc.o"
  "CMakeFiles/ext_reduce_filter.dir/ext_reduce_filter.cc.o.d"
  "ext_reduce_filter"
  "ext_reduce_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_reduce_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
