# Empty dependencies file for ext_reduce_filter.
# This may be replaced when dependencies are built.
