file(REMOVE_RECURSE
  "CMakeFiles/table3_selection.dir/table3_selection.cc.o"
  "CMakeFiles/table3_selection.dir/table3_selection.cc.o.d"
  "table3_selection"
  "table3_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
