# Empty compiler generated dependencies file for fig4_cfg.
# This may be replaced when dependencies are built.
