file(REMOVE_RECURSE
  "CMakeFiles/fig4_cfg.dir/fig4_cfg.cc.o"
  "CMakeFiles/fig4_cfg.dir/fig4_cfg.cc.o.d"
  "fig4_cfg"
  "fig4_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
