file(REMOVE_RECURSE
  "CMakeFiles/ext_column_groups.dir/ext_column_groups.cc.o"
  "CMakeFiles/ext_column_groups.dir/ext_column_groups.cc.o.d"
  "ext_column_groups"
  "ext_column_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_column_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
