# Empty compiler generated dependencies file for ext_column_groups.
# This may be replaced when dependencies are built.
