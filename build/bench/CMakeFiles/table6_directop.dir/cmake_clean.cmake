file(REMOVE_RECURSE
  "CMakeFiles/table6_directop.dir/table6_directop.cc.o"
  "CMakeFiles/table6_directop.dir/table6_directop.cc.o.d"
  "table6_directop"
  "table6_directop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_directop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
