# Empty compiler generated dependencies file for table6_directop.
# This may be replaced when dependencies are built.
