# Empty dependencies file for table4_projection.
# This may be replaced when dependencies are built.
