file(REMOVE_RECURSE
  "CMakeFiles/table4_projection.dir/table4_projection.cc.o"
  "CMakeFiles/table4_projection.dir/table4_projection.cc.o.d"
  "table4_projection"
  "table4_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
