# Empty compiler generated dependencies file for ext_cost_optimizer.
# This may be replaced when dependencies are built.
