file(REMOVE_RECURSE
  "CMakeFiles/ext_cost_optimizer.dir/ext_cost_optimizer.cc.o"
  "CMakeFiles/ext_cost_optimizer.dir/ext_cost_optimizer.cc.o.d"
  "ext_cost_optimizer"
  "ext_cost_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cost_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
