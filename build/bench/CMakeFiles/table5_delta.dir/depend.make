# Empty dependencies file for table5_delta.
# This may be replaced when dependencies are built.
