
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table5_delta.cc" "bench/CMakeFiles/table5_delta.dir/table5_delta.cc.o" "gcc" "bench/CMakeFiles/table5_delta.dir/table5_delta.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/manimal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/manimal_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/manimal_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/manimal_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/manimal_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/manimal_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/manimal_index.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/manimal_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/mril/CMakeFiles/manimal_mril.dir/DependInfo.cmake"
  "/root/repo/build/src/serde/CMakeFiles/manimal_serde.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/manimal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
