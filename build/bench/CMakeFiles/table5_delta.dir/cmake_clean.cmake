file(REMOVE_RECURSE
  "CMakeFiles/table5_delta.dir/table5_delta.cc.o"
  "CMakeFiles/table5_delta.dir/table5_delta.cc.o.d"
  "table5_delta"
  "table5_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
