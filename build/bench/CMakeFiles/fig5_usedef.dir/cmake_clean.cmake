file(REMOVE_RECURSE
  "CMakeFiles/fig5_usedef.dir/fig5_usedef.cc.o"
  "CMakeFiles/fig5_usedef.dir/fig5_usedef.cc.o.d"
  "fig5_usedef"
  "fig5_usedef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_usedef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
