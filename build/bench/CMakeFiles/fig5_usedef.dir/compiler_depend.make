# Empty compiler generated dependencies file for fig5_usedef.
# This may be replaced when dependencies are built.
