file(REMOVE_RECURSE
  "CMakeFiles/table1_recall.dir/table1_recall.cc.o"
  "CMakeFiles/table1_recall.dir/table1_recall.cc.o.d"
  "table1_recall"
  "table1_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
