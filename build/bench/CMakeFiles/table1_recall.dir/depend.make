# Empty dependencies file for table1_recall.
# This may be replaced when dependencies are built.
