file(REMOVE_RECURSE
  "CMakeFiles/table2_endtoend.dir/table2_endtoend.cc.o"
  "CMakeFiles/table2_endtoend.dir/table2_endtoend.cc.o.d"
  "table2_endtoend"
  "table2_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
