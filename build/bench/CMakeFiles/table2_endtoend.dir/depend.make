# Empty dependencies file for table2_endtoend.
# This may be replaced when dependencies are built.
