# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/integration_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/serde_test[1]_include.cmake")
include("/root/repo/build/tests/mril_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/columnar_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/simplify_test[1]_include.cmake")
include("/root/repo/build/tests/column_groups_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/coverage2_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
