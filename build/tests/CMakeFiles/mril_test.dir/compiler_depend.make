# Empty compiler generated dependencies file for mril_test.
# This may be replaced when dependencies are built.
