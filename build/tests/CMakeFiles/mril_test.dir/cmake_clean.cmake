file(REMOVE_RECURSE
  "CMakeFiles/mril_test.dir/mril_test.cc.o"
  "CMakeFiles/mril_test.dir/mril_test.cc.o.d"
  "mril_test"
  "mril_test.pdb"
  "mril_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mril_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
