file(REMOVE_RECURSE
  "CMakeFiles/coverage2_test.dir/coverage2_test.cc.o"
  "CMakeFiles/coverage2_test.dir/coverage2_test.cc.o.d"
  "coverage2_test"
  "coverage2_test.pdb"
  "coverage2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
