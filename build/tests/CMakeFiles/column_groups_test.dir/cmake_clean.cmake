file(REMOVE_RECURSE
  "CMakeFiles/column_groups_test.dir/column_groups_test.cc.o"
  "CMakeFiles/column_groups_test.dir/column_groups_test.cc.o.d"
  "column_groups_test"
  "column_groups_test.pdb"
  "column_groups_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_groups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
