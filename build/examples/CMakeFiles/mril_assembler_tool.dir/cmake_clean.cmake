file(REMOVE_RECURSE
  "CMakeFiles/mril_assembler_tool.dir/mril_assembler_tool.cpp.o"
  "CMakeFiles/mril_assembler_tool.dir/mril_assembler_tool.cpp.o.d"
  "manimal-run"
  "manimal-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mril_assembler_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
