# Empty compiler generated dependencies file for mril_assembler_tool.
# This may be replaced when dependencies are built.
