# Empty dependencies file for webpage_projection.
# This may be replaced when dependencies are built.
