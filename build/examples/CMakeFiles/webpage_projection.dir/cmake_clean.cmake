file(REMOVE_RECURSE
  "CMakeFiles/webpage_projection.dir/webpage_projection.cpp.o"
  "CMakeFiles/webpage_projection.dir/webpage_projection.cpp.o.d"
  "webpage_projection"
  "webpage_projection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webpage_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
