// obs_check — CI validator for the machine-readable observability
// artifacts (docs/observability.md):
//
//   obs_check --journal run.jsonl   # run journal (JSON lines, v1)
//   obs_check --trace trace.json    # Chrome trace export
//   obs_check --explain plans.jsonl # EXPLAIN reports (JSON lines, v1)
//
// Any mix of flags may be given; every named file is validated and
// the process exits nonzero if any check fails. The checks enforce
// the schema contracts the docs promise: every journal line is a
// versioned, monotonically-sequenced JSON object of a known event
// type carrying that type's required fields; the trace is one JSON
// object with a well-formed traceEvents array; every explain line is
// a versioned report with a plan section and a legal candidate set.

#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/env.h"
#include "obs/journal.h"
#include "obs/json.h"
#include "optimizer/explain.h"

namespace {

using manimal::obs::JsonParse;
using manimal::obs::JsonValue;

int g_failures = 0;

void Fail(const std::string& file, size_t line_no,
          const std::string& what) {
  std::fprintf(stderr, "obs_check: %s:%zu: %s\n", file.c_str(), line_no,
               what.c_str());
  ++g_failures;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

bool HasKeys(const JsonValue& obj, const std::vector<const char*>& keys,
             std::string* missing) {
  for (const char* key : keys) {
    if (obj.Find(key) == nullptr) {
      *missing = key;
      return false;
    }
  }
  return true;
}

// ---- journal ----

// Required fields per event type (beyond the envelope v/seq/ts_us).
const std::map<std::string, std::vector<const char*>>& JournalSchema() {
  static const std::map<std::string, std::vector<const char*>> schema = {
      {"plan_selected",
       {"program", "input", "mode", "access_path", "optimized",
        "candidates", "summary"}},
      {"job_start",
       {"job", "program", "access_path", "splits", "partitions",
        "input_file_bytes", "observe_predicates"}},
      {"task_start", {"job", "task", "chain", "speculative", "backend"}},
      {"task_retry", {"job", "task", "chain", "attempt", "error"}},
      {"task_commit", {"job", "task", "chain", "attempt"}},
      {"task_failed", {"job", "task", "chain", "error"}},
      {"speculative_launch", {"job", "task", "elapsed_s", "threshold_s"}},
      {"shuffle_spill", {"job", "mapper", "partition", "bytes"}},
      {"shuffle_merge", {"job", "partition", "disk_runs", "memory_runs"}},
      {"fault_injected",
       {"op", "path", "site_ordinal", "injected_so_far"}},
      {"plan_switched",
       {"job", "after_splits", "estimated", "observed", "drift_ratio",
        "from", "to"}},
      {"direct_eval",
       {"job", "admitted", "blocks_total", "blocks_refuted", "detail"}},
      {"output_commit", {"job", "path", "records", "bytes"}},
      {"job_finish",
       {"job", "input_records", "output_records", "task_retries",
        "speculative_launches", "shuffle_spilled_runs", "bytes_decoded",
        "blocks_skipped", "wall_seconds", "reported_seconds"}},
      {"job_failed", {"job", "error"}},
  };
  return schema;
}

void CheckJournal(const std::string& path) {
  auto text = manimal::ReadFileToString(path);
  if (!text.ok()) {
    Fail(path, 0, text.status().ToString());
    return;
  }
  const std::vector<std::string> lines = SplitLines(*text);
  if (lines.empty()) Fail(path, 0, "journal is empty");
  uint64_t prev_seq = 0;
  std::map<std::string, int> counts;
  for (size_t i = 0; i < lines.size(); ++i) {
    JsonValue value;
    std::string error;
    if (!JsonParse(lines[i], &value, &error)) {
      Fail(path, i + 1, "not valid JSON: " + error);
      continue;
    }
    if (!value.is_object()) {
      Fail(path, i + 1, "line is not a JSON object");
      continue;
    }
    const int version = static_cast<int>(value.NumberOr("v", -1));
    if (version != manimal::obs::kJournalSchemaVersion) {
      Fail(path, i + 1,
           "schema version " + std::to_string(version) + " != " +
               std::to_string(manimal::obs::kJournalSchemaVersion));
    }
    const double seq = value.NumberOr("seq", -1);
    if (seq <= static_cast<double>(prev_seq)) {
      Fail(path, i + 1, "seq not strictly increasing");
    }
    prev_seq = static_cast<uint64_t>(seq);
    if (value.Find("ts_us") == nullptr) {
      Fail(path, i + 1, "missing ts_us");
    }
    const std::string event = value.StringOr("event", "");
    auto it = JournalSchema().find(event);
    if (it == JournalSchema().end()) {
      Fail(path, i + 1, "unknown event type '" + event + "'");
      continue;
    }
    std::string missing;
    if (!HasKeys(value, it->second, &missing)) {
      Fail(path, i + 1, event + " missing field '" + missing + "'");
    }
    ++counts[event];
  }
  std::printf("obs_check: %s: %zu journal lines", path.c_str(),
              lines.size());
  for (const auto& [event, n] : counts) {
    std::printf(" %s=%d", event.c_str(), n);
  }
  std::printf("\n");
}

// ---- trace ----

void CheckTrace(const std::string& path) {
  auto text = manimal::ReadFileToString(path);
  if (!text.ok()) {
    Fail(path, 0, text.status().ToString());
    return;
  }
  JsonValue value;
  std::string error;
  if (!JsonParse(*text, &value, &error)) {
    Fail(path, 0, "not valid JSON: " + error);
    return;
  }
  const JsonValue* events = value.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    Fail(path, 0, "missing traceEvents array");
    return;
  }
  if (events->items.empty()) Fail(path, 0, "trace has no events");
  static const std::set<std::string> kPhases = {"X", "i", "C", "M"};
  for (size_t i = 0; i < events->items.size(); ++i) {
    const JsonValue& ev = events->items[i];
    const std::string ph = ev.StringOr("ph", "");
    if (kPhases.count(ph) == 0) {
      Fail(path, i + 1, "event phase '" + ph + "' unexpected");
      continue;
    }
    std::string missing;
    if (!HasKeys(ev, {"name", "ts", "pid", "tid"}, &missing)) {
      Fail(path, i + 1, "trace event missing '" + missing + "'");
    }
    if (ph == "X" && ev.Find("dur") == nullptr) {
      Fail(path, i + 1, "complete event missing 'dur'");
    }
  }
  std::printf("obs_check: %s: %zu trace events\n", path.c_str(),
              events->items.size());
}

// ---- explain ----

void CheckExplain(const std::string& path) {
  auto text = manimal::ReadFileToString(path);
  if (!text.ok()) {
    Fail(path, 0, text.status().ToString());
    return;
  }
  const std::vector<std::string> lines = SplitLines(*text);
  if (lines.empty()) Fail(path, 0, "explain file is empty");
  static const std::set<std::string> kVerdicts = {"chosen", "rejected",
                                                 "uncataloged"};
  static const std::set<std::string> kProvenances = {
      "histogram", "btree-fanout", "observed"};
  for (size_t i = 0; i < lines.size(); ++i) {
    JsonValue value;
    std::string error;
    if (!JsonParse(lines[i], &value, &error)) {
      Fail(path, i + 1, "not valid JSON: " + error);
      continue;
    }
    const int version =
        static_cast<int>(value.NumberOr("explain_version", -1));
    if (version != manimal::optimizer::kExplainSchemaVersion) {
      Fail(path, i + 1,
           "explain_version " + std::to_string(version) + " != " +
               std::to_string(manimal::optimizer::kExplainSchemaVersion));
    }
    const JsonValue* plan = value.Find("plan");
    if (plan == nullptr || !plan->is_object()) {
      Fail(path, i + 1, "missing plan object");
      continue;
    }
    std::string missing;
    if (!HasKeys(*plan,
                 {"program", "input", "mode", "access_path", "optimized",
                  "candidates"},
                 &missing)) {
      Fail(path, i + 1, "plan missing '" + missing + "'");
    }
    const std::string mode = plan->StringOr("mode", "");
    if (mode != "rule" && mode != "cost") {
      Fail(path, i + 1, "plan mode '" + mode + "' unexpected");
    }
    const JsonValue* candidates = plan->Find("candidates");
    int chosen = 0;
    if (candidates != nullptr && candidates->is_array()) {
      for (const JsonValue& c : candidates->items) {
        const std::string verdict = c.StringOr("verdict", "");
        if (kVerdicts.count(verdict) == 0) {
          Fail(path, i + 1, "candidate verdict '" + verdict + "'");
        }
        if (verdict == "chosen") ++chosen;
        // Full-scan candidates legitimately carry no provenance
        // (selectivity 1.0 by construction); when one is present it
        // must name a known estimator.
        if (c.Find("provenance") != nullptr &&
            kProvenances.count(c.StringOr("provenance", "")) == 0) {
          Fail(path, i + 1,
               "candidate provenance '" +
                   c.StringOr("provenance", "") + "' unexpected");
        }
      }
      if (chosen > 1) Fail(path, i + 1, "multiple chosen candidates");
    }
    const JsonValue* plan_prov = plan->Find("est_provenance");
    if (plan_prov != nullptr &&
        kProvenances.count(plan->StringOr("est_provenance", "")) == 0) {
      Fail(path, i + 1,
           "plan est_provenance '" +
               plan->StringOr("est_provenance", "") + "' unexpected");
    }
    const bool analyzed = [&] {
      const JsonValue* a = value.Find("analyzed");
      return a != nullptr && a->is_bool() && a->bool_value;
    }();
    if (analyzed) {
      const JsonValue* exec = value.Find("exec");
      if (exec == nullptr || !exec->is_object()) {
        Fail(path, i + 1, "analyzed report missing exec object");
      } else {
        if (!HasKeys(*exec,
                     {"rows_scanned", "rows_emitted", "phases",
                      "counters", "tasks"},
                     &missing)) {
          Fail(path, i + 1, "exec missing '" + missing + "'");
        }
        // The resolved map backend is "vm" or "native" when reported,
        // and the counters object always carries the native-tier pair
        // (zero for pure-VM runs).
        const JsonValue* backend = exec->Find("backend");
        if (backend != nullptr) {
          const std::string name = exec->StringOr("backend", "");
          if (name != "vm" && name != "native") {
            Fail(path, i + 1, "exec backend '" + name + "' unexpected");
          }
        }
        const JsonValue* counters = exec->Find("counters");
        if (counters != nullptr && counters->is_object() &&
            !HasKeys(*counters, {"native_tasks", "native_bailout_records"},
                     &missing)) {
          Fail(path, i + 1, "exec counters missing '" + missing + "'");
        }
      }
      if (value.Find("drift") == nullptr) {
        Fail(path, i + 1, "analyzed report missing drift array");
      }
    }
  }
  std::printf("obs_check: %s: %zu explain reports\n", path.c_str(),
              lines.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool did_anything = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "obs_check: %s needs a path\n", argv[i]);
        ++g_failures;
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--journal") == 0) {
      if (const char* p = next()) CheckJournal(p);
      did_anything = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (const char* p = next()) CheckTrace(p);
      did_anything = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      if (const char* p = next()) CheckExplain(p);
      did_anything = true;
    } else {
      std::fprintf(stderr,
                   "usage: obs_check [--journal <path>] [--trace <path>] "
                   "[--explain <path>]\n");
      return 2;
    }
  }
  if (!did_anything) {
    std::fprintf(stderr,
                 "usage: obs_check [--journal <path>] [--trace <path>] "
                 "[--explain <path>]\n");
    return 2;
  }
  if (g_failures > 0) {
    std::fprintf(stderr, "obs_check: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("obs_check: OK\n");
  return 0;
}
