// Per-column statistics for the cost-based optimizer (ROADMAP item 4).
//
// The paper defers plan choice to "a cost-based approach" (§2.2); the
// cost model's missing input is predicate selectivity. This library
// collects, in one streaming pass piggy-backed on index/artifact
// builds (src/exec/index_build.cc), three classic summaries per
// column:
//
//   * an equi-depth histogram — a uniform reservoir sample of the
//     column's memcomparable key encodings, sorted at Finish(). The
//     sorted sample IS the quantile table: the fraction of sample
//     entries inside a key range is an unbiased estimate of the
//     fraction of rows inside it, duplicates and skew included.
//   * a KMV (k-minimum-values) distinct-count sketch, used to floor
//     point-lookup selectivity at 1/NDV when the value misses the
//     sample.
//   * a small raw row sample for debugging/EXPLAIN.
//
// Columns are named by what produced the key: "expr:<Expr::ToString>"
// for a B+Tree build's index-key expression, "field:<i>" for plain
// record fields. All keys are serde::EncodeOrderedKey encodings, so
// estimation is pure byte comparison and works for any Value type the
// key codec supports.
//
// Stats are serialized as a single JSON document (via obs/json) with
// a "stats_version" field checked on load, and referenced from the
// catalog (src/index/catalog.h) by path.

#ifndef MANIMAL_STATS_STATS_H_
#define MANIMAL_STATS_STATS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace manimal::stats {

inline constexpr int kStatsVersion = 1;

// Summaries for one column. `histogram` and `sample` hold
// memcomparable key encodings; `histogram` is sorted.
struct ColumnStats {
  uint64_t row_count = 0;
  double ndv = 0;  // distinct-value estimate from the KMV sketch
  std::vector<std::string> histogram;  // sorted equi-depth sample
  std::vector<std::string> sample;     // small raw row sample

  bool usable() const { return row_count > 0 && !histogram.empty(); }

  // Estimated fraction of rows whose key falls in [lo, hi] (bounds
  // honoring inclusivity; nullopt = unbounded on that side). Keys are
  // EncodeOrderedKey encodings. Requires usable(). Point lookups
  // ([v, v] both-inclusive) that miss the sample but sit inside the
  // observed domain are floored at 1/NDV instead of 0.
  double EstimateRangeFraction(const std::optional<std::string>& lo,
                               bool lo_inclusive,
                               const std::optional<std::string>& hi,
                               bool hi_inclusive) const;
};

// All columns collected for one input file.
struct TableStats {
  uint64_t row_count = 0;
  std::map<std::string, ColumnStats> columns;

  // nullptr when absent or unusable.
  const ColumnStats* Find(const std::string& name) const;

  std::string ToJson() const;
  static Result<TableStats> FromJson(std::string_view text);

  Status SaveTo(const std::string& path) const;
  static Result<TableStats> Load(const std::string& path);
};

// Streaming collector for one column: reservoir sample + KMV sketch.
// Deterministic (fixed-seed xorshift), so rebuilding the same input
// yields byte-identical stats.
class ColumnStatsCollector {
 public:
  explicit ColumnStatsCollector(size_t reservoir_capacity = 1024,
                                size_t sketch_size = 256,
                                size_t raw_sample_size = 8);

  void Add(std::string_view encoded_key);
  ColumnStats Finish() const;

 private:
  size_t reservoir_capacity_;
  size_t sketch_size_;
  size_t raw_sample_size_;
  uint64_t count_ = 0;
  uint64_t rng_;
  std::vector<std::string> reservoir_;
  std::set<uint64_t> kmv_;  // smallest `sketch_size_` key hashes
  std::vector<std::string> raw_sample_;
};

// Collector for a whole table; columns are created on first use.
class TableStatsCollector {
 public:
  // Returns the collector for `name`, creating it if needed.
  ColumnStatsCollector* Column(const std::string& name);
  void CountRow() { ++row_count_; }

  TableStats Finish() const;

 private:
  uint64_t row_count_ = 0;
  std::map<std::string, ColumnStatsCollector> columns_;
};

}  // namespace manimal::stats

#endif  // MANIMAL_STATS_STATS_H_
