#include "stats/stats.h"

#include <algorithm>
#include <cstdio>

#include "common/env.h"
#include "common/strings.h"
#include "obs/json.h"

namespace manimal::stats {

namespace {

// FNV-1a, the same hash family the rest of the repo uses for tags.
uint64_t HashKey(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// xorshift64* — deterministic, seedless-state PRNG for the reservoir.
uint64_t NextRng(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 2685821657736338717ull;
}

std::string HexEncode(std::string_view s) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (unsigned char c : s) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

Result<std::string> HexDecode(std::string_view s) {
  if (s.size() % 2 != 0) {
    return Status::Corruption("stats: odd-length hex string");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(s.size() / 2);
  for (size_t i = 0; i < s.size(); i += 2) {
    int hi = nibble(s[i]), lo = nibble(s[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::Corruption("stats: bad hex digit");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

void AppendHexArray(std::string* out, const char* key,
                    const std::vector<std::string>& values) {
  out->append(obs::JsonQuote(key));
  out->append(":[");
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out->push_back(',');
    out->append(obs::JsonQuote(HexEncode(values[i])));
  }
  out->push_back(']');
}

Result<std::vector<std::string>> ParseHexArray(const obs::JsonValue& obj,
                                               const char* key) {
  std::vector<std::string> out;
  const obs::JsonValue* arr = obj.Find(key);
  if (arr == nullptr || !arr->is_array()) return out;
  out.reserve(arr->items.size());
  for (const obs::JsonValue& item : arr->items) {
    if (!item.is_string()) {
      return Status::Corruption("stats: non-string key in array");
    }
    auto decoded = HexDecode(item.str);
    if (!decoded.ok()) return decoded.status();
    out.push_back(std::move(decoded).value());
  }
  return out;
}

}  // namespace

// ---- ColumnStats ----

double ColumnStats::EstimateRangeFraction(
    const std::optional<std::string>& lo, bool lo_inclusive,
    const std::optional<std::string>& hi, bool hi_inclusive) const {
  if (!usable()) return 1.0;
  const auto begin = histogram.begin();
  const auto end = histogram.end();
  // First sample entry inside the range, first past it.
  auto first = !lo.has_value() ? begin
               : lo_inclusive  ? std::lower_bound(begin, end, *lo)
                               : std::upper_bound(begin, end, *lo);
  auto past = !hi.has_value() ? end
              : hi_inclusive  ? std::upper_bound(begin, end, *hi)
                              : std::lower_bound(begin, end, *hi);
  if (past <= first) {
    // No sample entry in range. A point lookup inside the observed
    // domain may still match rows the sample missed — floor at 1/NDV.
    const bool point = lo.has_value() && hi.has_value() && *lo == *hi &&
                       lo_inclusive && hi_inclusive;
    if (point && ndv >= 1.0 && *lo >= histogram.front() &&
        *lo <= histogram.back()) {
      return std::min(1.0, 1.0 / ndv);
    }
    return 0.0;
  }
  return static_cast<double>(past - first) /
         static_cast<double>(histogram.size());
}

// ---- TableStats ----

const ColumnStats* TableStats::Find(const std::string& name) const {
  auto it = columns.find(name);
  if (it == columns.end() || !it->second.usable()) return nullptr;
  return &it->second;
}

std::string TableStats::ToJson() const {
  std::string out;
  out.append("{\"stats_version\":");
  out.append(std::to_string(kStatsVersion));
  out.append(",\"row_count\":");
  out.append(std::to_string(row_count));
  out.append(",\"columns\":[");
  bool first = true;
  for (const auto& [name, col] : columns) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":");
    out.append(obs::JsonQuote(name));
    out.append(",\"row_count\":");
    out.append(std::to_string(col.row_count));
    out.append(",\"ndv\":");
    out.append(obs::JsonNumber(col.ndv));
    out.push_back(',');
    AppendHexArray(&out, "histogram", col.histogram);
    out.push_back(',');
    AppendHexArray(&out, "sample", col.sample);
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

Result<TableStats> TableStats::FromJson(std::string_view text) {
  obs::JsonValue root;
  std::string error;
  if (!obs::JsonParse(text, &root, &error)) {
    return Status::Corruption("stats: bad JSON: " + error);
  }
  if (!root.is_object()) {
    return Status::Corruption("stats: top level is not an object");
  }
  const int version = static_cast<int>(root.NumberOr("stats_version", -1));
  if (version != kStatsVersion) {
    return Status::Corruption(
        StrPrintf("stats: unsupported stats_version %d", version));
  }
  TableStats table;
  table.row_count = static_cast<uint64_t>(root.NumberOr("row_count", 0));
  const obs::JsonValue* cols = root.Find("columns");
  if (cols != nullptr && cols->is_array()) {
    for (const obs::JsonValue& c : cols->items) {
      if (!c.is_object()) {
        return Status::Corruption("stats: column entry is not an object");
      }
      ColumnStats col;
      std::string name = c.StringOr("name", "");
      if (name.empty()) {
        return Status::Corruption("stats: column without a name");
      }
      col.row_count = static_cast<uint64_t>(c.NumberOr("row_count", 0));
      col.ndv = c.NumberOr("ndv", 0);
      auto histogram = ParseHexArray(c, "histogram");
      if (!histogram.ok()) return histogram.status();
      col.histogram = std::move(histogram).value();
      if (!std::is_sorted(col.histogram.begin(), col.histogram.end())) {
        return Status::Corruption("stats: histogram not sorted");
      }
      auto sample = ParseHexArray(c, "sample");
      if (!sample.ok()) return sample.status();
      col.sample = std::move(sample).value();
      table.columns.emplace(std::move(name), std::move(col));
    }
  }
  return table;
}

Status TableStats::SaveTo(const std::string& path) const {
  return WriteStringToFile(path, ToJson());
}

Result<TableStats> TableStats::Load(const std::string& path) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return FromJson(text.value());
}

// ---- collectors ----

ColumnStatsCollector::ColumnStatsCollector(size_t reservoir_capacity,
                                           size_t sketch_size,
                                           size_t raw_sample_size)
    : reservoir_capacity_(std::max<size_t>(1, reservoir_capacity)),
      sketch_size_(std::max<size_t>(1, sketch_size)),
      raw_sample_size_(raw_sample_size),
      rng_(0x9e3779b97f4a7c15ull) {}

void ColumnStatsCollector::Add(std::string_view encoded_key) {
  ++count_;
  // Reservoir sample (Algorithm R): each of the first N keys survives
  // with probability capacity/N.
  if (reservoir_.size() < reservoir_capacity_) {
    reservoir_.emplace_back(encoded_key);
  } else {
    uint64_t j = NextRng(&rng_) % count_;
    if (j < reservoir_capacity_) {
      reservoir_[j].assign(encoded_key.data(), encoded_key.size());
    }
  }
  // KMV sketch: keep the `sketch_size_` smallest hashes.
  uint64_t h = HashKey(encoded_key);
  if (kmv_.size() < sketch_size_) {
    kmv_.insert(h);
  } else if (h < *kmv_.rbegin() && kmv_.find(h) == kmv_.end()) {
    kmv_.insert(h);
    kmv_.erase(std::prev(kmv_.end()));
  }
  if (raw_sample_.size() < raw_sample_size_) {
    raw_sample_.emplace_back(encoded_key);
  }
}

ColumnStats ColumnStatsCollector::Finish() const {
  ColumnStats out;
  out.row_count = count_;
  out.histogram = reservoir_;
  std::sort(out.histogram.begin(), out.histogram.end());
  out.sample = raw_sample_;
  if (!kmv_.empty()) {
    if (kmv_.size() < sketch_size_) {
      // Sketch never filled: it holds every distinct hash seen.
      out.ndv = static_cast<double>(kmv_.size());
    } else {
      // Standard KMV estimator: (k-1) / normalized k-th minimum.
      const double kth = static_cast<double>(*kmv_.rbegin());
      const double unit = kth / 18446744073709551615.0;  // 2^64 - 1
      if (unit > 0) {
        out.ndv = (static_cast<double>(kmv_.size()) - 1.0) / unit;
      }
    }
    out.ndv = std::min(out.ndv, static_cast<double>(count_));
  }
  return out;
}

ColumnStatsCollector* TableStatsCollector::Column(const std::string& name) {
  return &columns_.try_emplace(name).first->second;
}

TableStats TableStatsCollector::Finish() const {
  TableStats out;
  out.row_count = row_count_;
  for (const auto& [name, collector] : columns_) {
    out.columns.emplace(name, collector.Finish());
  }
  return out;
}

}  // namespace manimal::stats
