#include "codegen/kernel.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "codegen/dlopen_kernel.h"
#include "common/strings.h"
#include "mril/builtins.h"

namespace manimal::codegen {

using analysis::Expr;
using analysis::ExprRef;
using mril::Opcode;

namespace {

// Everything a node may touch while evaluating one record. `fields`
// is null when the record is not a list (possible only for shapes
// that never dereference it — the arity gate bails first otherwise).
struct EvalCtx {
  const Value* key;
  const Value* record;
  const ValueList* fields;
  ValueArena* arena;
};

// One evaluator. Eval() returns false to bail out: the caller replays
// the record through the VM, which reproduces whatever the VM's
// behavior (including an error) would have been. `total` marks nodes
// that provably cannot bail for schema-conformant records — only
// those may be skipped by short-circuit evaluation.
class Node {
 public:
  virtual ~Node() = default;
  virtual bool Eval(EvalCtx& ctx, Value* out) const = 0;

  bool total = false;
  // Schema-derived static kind of the result; nullopt when unknown.
  std::optional<ValueKind> kind;
};

class ConstNode final : public Node {
 public:
  explicit ConstNode(Value v) : v_(std::move(v)) {}
  bool Eval(EvalCtx&, Value* out) const override {
    *out = v_;
    return true;
  }

 private:
  Value v_;
};

class KeyNode final : public Node {
 public:
  bool Eval(EvalCtx& ctx, Value* out) const override {
    *out = *ctx.key;
    return true;
  }
};

class RecordNode final : public Node {
 public:
  bool Eval(EvalCtx& ctx, Value* out) const override {
    *out = *ctx.record;
    return true;
  }
};

// Plain field read of the value record; the kernel's arity gate has
// already proven the slot in bounds and the record a list.
class FieldNode final : public Node {
 public:
  explicit FieldNode(int slot) : slot_(slot) {}
  bool Eval(EvalCtx& ctx, Value* out) const override {
    *out = (*ctx.fields)[slot_];
    return true;
  }
  int slot() const { return slot_; }

 private:
  int slot_;
};

// A field the input layout projected away: the linked VM observes
// null (kGetFieldNull), so the kernel does too.
class NullFieldNode final : public Node {
 public:
  bool Eval(EvalCtx&, Value* out) const override {
    *out = Value();
    return true;
  }
};

// Field access whose base is not the value parameter (nested lists):
// checked at runtime, bails where the VM would raise.
class GenericFieldNode final : public Node {
 public:
  GenericFieldNode(const Node* base, int index)
      : base_(base), index_(index) {}
  bool Eval(EvalCtx& ctx, Value* out) const override {
    Value base;
    if (!base_->Eval(ctx, &base)) return false;
    if (!base.is_list()) return false;
    if (index_ < 0 ||
        static_cast<size_t>(index_) >= base.list().size()) {
      return false;
    }
    *out = base.list()[index_];
    return true;
  }

 private:
  const Node* base_;
  int index_;
};

// ---- comparison fast paths -------------------------------------
//
// One comparator per field type (the "template-instantiated predicate
// evaluator"): the i64 family compares raw integers; the others
// verify the runtime representation and route through Value::Compare
// so NaN and storage-class subtleties keep VM semantics.

struct LtOp {
  static bool I64(int64_t a, int64_t b) { return a < b; }
  static bool FromCmp(int c) { return c < 0; }
};
struct LeOp {
  static bool I64(int64_t a, int64_t b) { return a <= b; }
  static bool FromCmp(int c) { return c <= 0; }
};
struct GtOp {
  static bool I64(int64_t a, int64_t b) { return a > b; }
  static bool FromCmp(int c) { return c > 0; }
};
struct GeOp {
  static bool I64(int64_t a, int64_t b) { return a >= b; }
  static bool FromCmp(int c) { return c >= 0; }
};
struct EqOp {
  static bool I64(int64_t a, int64_t b) { return a == b; }
  static bool FromCmp(int c) { return c == 0; }
};
struct NeOp {
  static bool I64(int64_t a, int64_t b) { return a != b; }
  static bool FromCmp(int c) { return c != 0; }
};

template <typename Op>
class I64FieldCmpNode final : public Node {
 public:
  I64FieldCmpNode(int slot, int64_t rhs) : slot_(slot), rhs_(rhs) {}
  bool Eval(EvalCtx& ctx, Value* out) const override {
    const int64_t* x = (*ctx.fields)[slot_].if_i64();
    if (x == nullptr) return false;  // schema deviation: replay via VM
    *out = Value::Bool(Op::I64(*x, rhs_));
    return true;
  }

 private:
  int slot_;
  int64_t rhs_;
};

template <ValueKind K, typename Op>
class TypedFieldCmpNode final : public Node {
 public:
  TypedFieldCmpNode(int slot, Value rhs)
      : slot_(slot), rhs_(std::move(rhs)) {}
  bool Eval(EvalCtx& ctx, Value* out) const override {
    const Value& f = (*ctx.fields)[slot_];
    if (f.kind() != K) return false;
    *out = Value::Bool(Op::FromCmp(f.Compare(rhs_)));
    return true;
  }

 private:
  int slot_;
  Value rhs_;
};

// Generic comparison, mirroring the VM's CompareSlow exactly:
// equality is total across kinds; ordering requires comparable kinds
// and bails (where the VM errors) otherwise.
class CmpNode final : public Node {
 public:
  CmpNode(Opcode op, const Node* lhs, const Node* rhs)
      : op_(op), lhs_(lhs), rhs_(rhs) {}
  bool Eval(EvalCtx& ctx, Value* out) const override {
    Value a, b;
    if (!lhs_->Eval(ctx, &a) || !rhs_->Eval(ctx, &b)) return false;
    bool cond;
    const int64_t* xp = a.if_i64();
    const int64_t* yp = b.if_i64();
    if (xp != nullptr && yp != nullptr) {
      switch (op_) {
        case Opcode::kCmpLt: cond = *xp < *yp; break;
        case Opcode::kCmpLe: cond = *xp <= *yp; break;
        case Opcode::kCmpGt: cond = *xp > *yp; break;
        case Opcode::kCmpGe: cond = *xp >= *yp; break;
        case Opcode::kCmpEq: cond = *xp == *yp; break;
        default: cond = *xp != *yp; break;
      }
    } else if (op_ == Opcode::kCmpEq) {
      cond = (a == b);
    } else if (op_ == Opcode::kCmpNe) {
      cond = !(a == b);
    } else {
      bool comparable = (a.is_numeric() && b.is_numeric()) ||
                        (a.is_str() && b.is_str()) ||
                        (a.is_bool() && b.is_bool());
      if (!comparable) return false;
      int c = a.Compare(b);
      switch (op_) {
        case Opcode::kCmpLt: cond = c < 0; break;
        case Opcode::kCmpLe: cond = c <= 0; break;
        case Opcode::kCmpGt: cond = c > 0; break;
        default: cond = c >= 0; break;
      }
    }
    *out = Value::Bool(cond);
    return true;
  }

 private:
  Opcode op_;
  const Node* lhs_;
  const Node* rhs_;
};

// Arithmetic mirroring the VM's fast path + ArithSlow: two's-
// complement wrapping i64, f64 promotion for mixed numerics, arena
// concat for str add; div/mod by zero, f64 mod, and type errors bail.
class ArithNode final : public Node {
 public:
  ArithNode(Opcode op, const Node* lhs, const Node* rhs)
      : op_(op), lhs_(lhs), rhs_(rhs) {}
  bool Eval(EvalCtx& ctx, Value* out) const override {
    Value a, b;
    if (!lhs_->Eval(ctx, &a) || !rhs_->Eval(ctx, &b)) return false;
    if (op_ == Opcode::kAdd && a.is_str() && b.is_str()) {
      *out = Value::Borrowed(ctx.arena->Concat(a.str(), b.str()));
      return true;
    }
    if (!a.is_numeric() || !b.is_numeric()) return false;
    if (a.is_i64() && b.is_i64()) {
      const uint64_t x = static_cast<uint64_t>(a.i64());
      const uint64_t y = static_cast<uint64_t>(b.i64());
      switch (op_) {
        case Opcode::kAdd:
          *out = Value::I64(static_cast<int64_t>(x + y));
          return true;
        case Opcode::kSub:
          *out = Value::I64(static_cast<int64_t>(x - y));
          return true;
        case Opcode::kMul:
          *out = Value::I64(static_cast<int64_t>(x * y));
          return true;
        case Opcode::kDiv:
          if (b.i64() == 0) return false;
          *out = Value::I64(a.i64() / b.i64());
          return true;
        default:
          if (b.i64() == 0) return false;
          *out = Value::I64(a.i64() % b.i64());
          return true;
      }
    }
    const double x = a.AsF64();
    const double y = b.AsF64();
    switch (op_) {
      case Opcode::kAdd: *out = Value::F64(x + y); return true;
      case Opcode::kSub: *out = Value::F64(x - y); return true;
      case Opcode::kMul: *out = Value::F64(x * y); return true;
      case Opcode::kDiv: *out = Value::F64(x / y); return true;
      default: return false;  // mod on doubles: VM errors
    }
  }

 private:
  Opcode op_;
  const Node* lhs_;
  const Node* rhs_;
};

class NegNode final : public Node {
 public:
  explicit NegNode(const Node* arg) : arg_(arg) {}
  bool Eval(EvalCtx& ctx, Value* out) const override {
    Value a;
    if (!arg_->Eval(ctx, &a)) return false;
    if (const int64_t* x = a.if_i64()) {
      *out = Value::I64(
          static_cast<int64_t>(0u - static_cast<uint64_t>(*x)));
      return true;
    }
    if (const double* d = a.if_f64()) {
      *out = Value::F64(-*d);
      return true;
    }
    return false;
  }

 private:
  const Node* arg_;
};

class NotNode final : public Node {
 public:
  explicit NotNode(const Node* arg) : arg_(arg) {}
  bool Eval(EvalCtx& ctx, Value* out) const override {
    Value a;
    if (!arg_->Eval(ctx, &a)) return false;
    const bool* x = a.if_bool();
    if (x == nullptr) return false;
    *out = Value::Bool(!*x);
    return true;
  }

 private:
  const Node* arg_;
};

// The VM's and/or are NOT short-circuit (both operands were already
// on the stack); the node evaluates both for identical fault
// behavior.
class BoolOpNode final : public Node {
 public:
  BoolOpNode(Opcode op, const Node* lhs, const Node* rhs)
      : is_and_(op == Opcode::kAnd), lhs_(lhs), rhs_(rhs) {}
  bool Eval(EvalCtx& ctx, Value* out) const override {
    Value a, b;
    if (!lhs_->Eval(ctx, &a) || !rhs_->Eval(ctx, &b)) return false;
    const bool* x = a.if_bool();
    const bool* y = b.if_bool();
    if (x == nullptr || y == nullptr) return false;
    *out = Value::Bool(is_and_ ? (*x && *y) : (*x || *y));
    return true;
  }

 private:
  bool is_and_;
  const Node* lhs_;
  const Node* rhs_;
};

// Direct builtin dispatch — the same function pointer the VM calls,
// so semantics match by construction. Any error status bails.
class CallNode final : public Node {
 public:
  CallNode(const mril::Builtin* builtin, std::vector<const Node*> args)
      : builtin_(builtin), args_(std::move(args)) {}
  bool Eval(EvalCtx& ctx, Value* out) const override {
    Value argv[8];
    std::vector<Value> heap_argv;
    Value* slots = argv;
    if (args_.size() > 8) {
      heap_argv.resize(args_.size());
      slots = heap_argv.data();
    }
    for (size_t i = 0; i < args_.size(); ++i) {
      if (!args_[i]->Eval(ctx, &slots[i])) return false;
    }
    Value result;
    if (!builtin_->fn(slots, &result).ok()) return false;
    *out = std::move(result);
    return true;
  }

 private:
  const mril::Builtin* builtin_;
  std::vector<const Node*> args_;
};

// ---- compiler ---------------------------------------------------

bool IsNumericKind(std::optional<ValueKind> k) {
  return k == ValueKind::kI64 || k == ValueKind::kF64;
}

ValueKind KindOfFieldType(FieldType t) {
  switch (t) {
    case FieldType::kI64: return ValueKind::kI64;
    case FieldType::kF64: return ValueKind::kF64;
    case FieldType::kStr: return ValueKind::kStr;
    case FieldType::kBool: return ValueKind::kBool;
  }
  return ValueKind::kNull;
}

class Compiler {
 public:
  Compiler(const mril::Program& program, const CompileOptions& options)
      : program_(program), options_(options) {}

  Result<const Node*> Build(const ExprRef& expr) {
    if (expr == nullptr) {
      return Status::NotSupported("unrecoverable expression");
    }
    switch (expr->kind) {
      case Expr::Kind::kConst: {
        auto node = std::make_unique<ConstNode>(expr->constant);
        node->total = true;
        node->kind = expr->constant.kind();
        return Own(std::move(node));
      }
      case Expr::Kind::kParam:
        if (expr->index == mril::kMapKeyParam) {
          auto node = std::make_unique<KeyNode>();
          node->total = true;
          node->kind = KindOfFieldType(program_.key_type);
          return Own(std::move(node));
        }
        if (expr->index == mril::kMapValueParam) {
          auto node = std::make_unique<RecordNode>();
          node->total = true;
          node->kind = ValueKind::kList;
          return Own(std::move(node));
        }
        return Status::NotSupported("unexpected parameter index");
      case Expr::Kind::kField:
        return BuildField(expr);
      case Expr::Kind::kOp:
        return BuildOp(expr);
      case Expr::Kind::kCall: {
        if (expr->builtin == nullptr || !expr->builtin->functional) {
          return Status::NotSupported("call to non-functional builtin");
        }
        std::vector<const Node*> args;
        for (const ExprRef& a : expr->args) {
          MANIMAL_ASSIGN_OR_RETURN(const Node* n, Build(a));
          args.push_back(n);
        }
        auto node =
            std::make_unique<CallNode>(expr->builtin, std::move(args));
        node->kind = expr->builtin->result_kind;
        has_calls_ = true;
        return Own(std::move(node));  // never total: builtins may error
      }
      case Expr::Kind::kMember:
        return Status::NotSupported("member-dependent expression");
      case Expr::Kind::kUnknown:
        return Status::NotSupported("unresolved expression");
    }
    return Status::NotSupported("bad expression kind");
  }

  // Builds a selection term, preferring a typed field-vs-constant
  // comparator when the shapes line up.
  Result<const Node*> BuildTerm(const ExprRef& expr) {
    if (expr->kind == Expr::Kind::kOp &&
        mril::IsComparison(expr->op) && expr->args.size() == 2) {
      const ExprRef& l = expr->args[0];
      const ExprRef& r = expr->args[1];
      if (IsPlainField(l) && r->kind == Expr::Kind::kConst) {
        MANIMAL_ASSIGN_OR_RETURN(
            const Node* typed,
            BuildTypedCmp(expr->op, l->index, r->constant));
        if (typed != nullptr) return typed;
      }
    }
    return Build(expr);
  }

  int min_arity() const { return min_arity_; }
  bool has_calls() const { return has_calls_; }
  std::vector<std::unique_ptr<Node>> TakeNodes() {
    return std::move(nodes_);
  }

 private:
  const Node* Own(std::unique_ptr<Node> node) {
    nodes_.push_back(std::move(node));
    return nodes_.back().get();
  }

  static bool IsPlainField(const ExprRef& e) {
    return e->kind == Expr::Kind::kField && e->args.size() == 1 &&
           e->args[0]->kind == Expr::Kind::kParam &&
           e->args[0]->index == mril::kMapValueParam;
  }

  // Resolves an original field index through the layout remap.
  // Returns the runtime slot, -2 for projected-away (null), or an
  // error for an unmappable index (the linked VM raises Internal).
  Result<int> ResolveSlot(int index) {
    if (index < 0 ||
        (!program_.value_schema.opaque() &&
         index >= program_.value_schema.num_fields())) {
      return Status::NotSupported("field index outside schema");
    }
    if (options_.field_remap.empty()) return index;
    if (index >= static_cast<int>(options_.field_remap.size())) {
      return Status::NotSupported("field index outside layout remap");
    }
    if (options_.field_remap[index] < 0) return -2;
    return options_.field_remap[index];
  }

  Result<const Node*> BuildField(const ExprRef& expr) {
    const ExprRef& base = expr->args.at(0);
    if (!(base->kind == Expr::Kind::kParam &&
          base->index == mril::kMapValueParam)) {
      MANIMAL_ASSIGN_OR_RETURN(const Node* base_node, Build(base));
      auto node =
          std::make_unique<GenericFieldNode>(base_node, expr->index);
      return Own(std::move(node));
    }
    if (program_.value_schema.opaque()) {
      return Status::NotSupported("field access into opaque value");
    }
    MANIMAL_ASSIGN_OR_RETURN(int slot, ResolveSlot(expr->index));
    if (slot == -2) {
      auto node = std::make_unique<NullFieldNode>();
      node->total = true;
      node->kind = ValueKind::kNull;
      return Own(std::move(node));
    }
    min_arity_ = std::max(min_arity_, slot + 1);
    auto node = std::make_unique<FieldNode>(slot);
    node->total = true;  // the arity gate proves the slot in bounds
    node->kind =
        KindOfFieldType(program_.value_schema.field(expr->index).type);
    return Own(std::move(node));
  }

  // nullptr (no error) when no typed comparator applies.
  Result<const Node*> BuildTypedCmp(Opcode op, int field_index,
                                    const Value& rhs) {
    if (program_.value_schema.opaque()) return nullptr;
    MANIMAL_ASSIGN_OR_RETURN(int slot, ResolveSlot(field_index));
    if (slot == -2) return nullptr;  // null field: generic path
    const FieldType ft = program_.value_schema.field(field_index).type;
    std::unique_ptr<Node> node;
    if (ft == FieldType::kI64 && rhs.is_i64()) {
      node = MakeI64Cmp(op, slot, rhs.i64());
    } else if (ft == FieldType::kF64 && rhs.is_numeric()) {
      node = MakeTypedCmp<ValueKind::kF64>(op, slot, rhs);
    } else if (ft == FieldType::kStr && rhs.is_str()) {
      node = MakeTypedCmp<ValueKind::kStr>(op, slot, rhs);
    } else if (ft == FieldType::kBool && rhs.is_bool()) {
      node = MakeTypedCmp<ValueKind::kBool>(op, slot, rhs);
    }
    if (node == nullptr) return nullptr;
    min_arity_ = std::max(min_arity_, slot + 1);
    node->total = true;
    node->kind = ValueKind::kBool;
    return Own(std::move(node));
  }

  static std::unique_ptr<Node> MakeI64Cmp(Opcode op, int slot,
                                          int64_t rhs) {
    switch (op) {
      case Opcode::kCmpLt:
        return std::make_unique<I64FieldCmpNode<LtOp>>(slot, rhs);
      case Opcode::kCmpLe:
        return std::make_unique<I64FieldCmpNode<LeOp>>(slot, rhs);
      case Opcode::kCmpGt:
        return std::make_unique<I64FieldCmpNode<GtOp>>(slot, rhs);
      case Opcode::kCmpGe:
        return std::make_unique<I64FieldCmpNode<GeOp>>(slot, rhs);
      case Opcode::kCmpEq:
        return std::make_unique<I64FieldCmpNode<EqOp>>(slot, rhs);
      default:
        return std::make_unique<I64FieldCmpNode<NeOp>>(slot, rhs);
    }
  }

  template <ValueKind K>
  static std::unique_ptr<Node> MakeTypedCmp(Opcode op, int slot,
                                            const Value& rhs) {
    switch (op) {
      case Opcode::kCmpLt:
        return std::make_unique<TypedFieldCmpNode<K, LtOp>>(slot, rhs);
      case Opcode::kCmpLe:
        return std::make_unique<TypedFieldCmpNode<K, LeOp>>(slot, rhs);
      case Opcode::kCmpGt:
        return std::make_unique<TypedFieldCmpNode<K, GtOp>>(slot, rhs);
      case Opcode::kCmpGe:
        return std::make_unique<TypedFieldCmpNode<K, GeOp>>(slot, rhs);
      case Opcode::kCmpEq:
        return std::make_unique<TypedFieldCmpNode<K, EqOp>>(slot, rhs);
      default:
        return std::make_unique<TypedFieldCmpNode<K, NeOp>>(slot, rhs);
    }
  }

  Result<const Node*> BuildOp(const ExprRef& expr) {
    std::vector<const Node*> args;
    for (const ExprRef& a : expr->args) {
      MANIMAL_ASSIGN_OR_RETURN(const Node* n, Build(a));
      args.push_back(n);
    }
    std::unique_ptr<Node> node;
    const Opcode op = expr->op;
    if (mril::IsComparison(op)) {
      if (args.size() != 2) return Status::NotSupported("bad cmp arity");
      node = std::make_unique<CmpNode>(op, args[0], args[1]);
      node->kind = ValueKind::kBool;
      const bool args_total = args[0]->total && args[1]->total;
      if (op == Opcode::kCmpEq || op == Opcode::kCmpNe) {
        node->total = args_total;  // equality works across kinds
      } else {
        node->total = args_total && Comparable(args[0]->kind,
                                               args[1]->kind);
      }
    } else if (op == Opcode::kAdd || op == Opcode::kSub ||
               op == Opcode::kMul || op == Opcode::kDiv ||
               op == Opcode::kMod) {
      if (args.size() != 2) {
        return Status::NotSupported("bad arith arity");
      }
      node = std::make_unique<ArithNode>(op, args[0], args[1]);
      SetArithMeta(op, expr, args[0], args[1], node.get());
    } else if (op == Opcode::kNeg) {
      if (args.size() != 1) return Status::NotSupported("bad neg arity");
      node = std::make_unique<NegNode>(args[0]);
      node->kind = args[0]->kind;
      node->total = args[0]->total && IsNumericKind(args[0]->kind);
    } else if (op == Opcode::kNot) {
      if (args.size() != 1) return Status::NotSupported("bad not arity");
      node = std::make_unique<NotNode>(args[0]);
      node->kind = ValueKind::kBool;
      node->total = args[0]->total && args[0]->kind == ValueKind::kBool;
    } else if (op == Opcode::kAnd || op == Opcode::kOr) {
      if (args.size() != 2) {
        return Status::NotSupported("bad and/or arity");
      }
      node = std::make_unique<BoolOpNode>(op, args[0], args[1]);
      node->kind = ValueKind::kBool;
      node->total = args[0]->total && args[1]->total &&
                    args[0]->kind == ValueKind::kBool &&
                    args[1]->kind == ValueKind::kBool;
    } else {
      return Status::NotSupported(
          "unsupported opcode in expression: " +
          std::string(mril::GetOpcodeInfo(op).mnemonic));
    }
    return Own(std::move(node));
  }

  static bool Comparable(std::optional<ValueKind> a,
                         std::optional<ValueKind> b) {
    if (!a.has_value() || !b.has_value()) return false;
    if (IsNumericKind(a) && IsNumericKind(b)) return true;
    return a == b && (*a == ValueKind::kStr || *a == ValueKind::kBool);
  }

  void SetArithMeta(Opcode op, const ExprRef& expr, const Node* lhs,
                    const Node* rhs, Node* node) {
    const auto lk = lhs->kind;
    const auto rk = rhs->kind;
    const bool args_total = lhs->total && rhs->total;
    if (op == Opcode::kAdd && lk == ValueKind::kStr &&
        rk == ValueKind::kStr) {
      node->kind = ValueKind::kStr;
      node->total = args_total;
      return;
    }
    if (!IsNumericKind(lk) || !IsNumericKind(rk)) return;  // unknown
    const bool both_i64 =
        lk == ValueKind::kI64 && rk == ValueKind::kI64;
    node->kind = both_i64 ? ValueKind::kI64 : ValueKind::kF64;
    switch (op) {
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
        node->total = args_total;
        return;
      case Opcode::kDiv:
        // i64 division faults on a zero divisor; f64 never does.
        node->total =
            args_total &&
            (!both_i64 || NonZeroI64Const(expr->args[1]));
        return;
      default:  // kMod: i64-only in the VM
        node->total = args_total && both_i64 &&
                      NonZeroI64Const(expr->args[1]);
        return;
    }
  }

  static bool NonZeroI64Const(const ExprRef& e) {
    return e->kind == Expr::Kind::kConst && e->constant.is_i64() &&
           e->constant.i64() != 0;
  }

  const mril::Program& program_;
  const CompileOptions& options_;
  std::vector<std::unique_ptr<Node>> nodes_;
  int min_arity_ = 0;
  bool has_calls_ = false;
};

// ---- the assembled kernel ---------------------------------------

struct TermEval {
  const Node* node = nullptr;
  bool polarity = true;
  int slot = -1;  // prepass cache slot; -1 = evaluate lazily (total)
  double selectivity = 0.5;
};

class ClosureKernel final : public NativeKernel {
 public:
  KernelOutcome Run(const Value& key, const Value& record,
                    KernelScratch* scratch, Value* out_key,
                    Value* out_value) const override {
    const ValueList* fields =
        record.is_list() ? &record.list() : nullptr;
    if (min_arity_ > 0 &&
        (fields == nullptr ||
         static_cast<int>(fields->size()) < min_arity_)) {
      return KernelOutcome::kBailout;
    }
    if (has_calls_) mril::InvalidateBorrowedStringMemos();
    scratch->arena.Reset();
    if (static_cast<int>(scratch->slots.size()) < num_slots_) {
      scratch->slots.resize(num_slots_);
    }
    EvalCtx ctx{&key, &record, fields, &scratch->arena};
    // Pre-pass: every non-total expression runs on every record, so
    // the kernel can never skip an expression the VM might fault on.
    for (const auto& [node, slot] : prepass_) {
      if (!node->Eval(ctx, &scratch->slots[slot])) {
        return KernelOutcome::kBailout;
      }
    }
    bool pass = false;
    for (const std::vector<TermEval>& conjunct : disjuncts_) {
      bool all = true;
      for (const TermEval& term : conjunct) {
        Value local;
        const Value* tv;
        if (term.slot >= 0) {
          tv = &scratch->slots[term.slot];
        } else {
          if (!term.node->Eval(ctx, &local)) {
            return KernelOutcome::kBailout;
          }
          tv = &local;
        }
        const bool* b = tv->if_bool();
        if (b == nullptr) return KernelOutcome::kBailout;
        if (*b != term.polarity) {
          all = false;
          break;
        }
      }
      if (all) {
        pass = true;
        break;
      }
    }
    if (!pass) return KernelOutcome::kSkip;
    if (key_slot_ >= 0) {
      *out_key = std::move(scratch->slots[key_slot_]);
    } else if (!key_node_->Eval(ctx, out_key)) {
      return KernelOutcome::kBailout;
    }
    if (value_slot_ >= 0) {
      *out_value = std::move(scratch->slots[value_slot_]);
    } else if (!value_node_->Eval(ctx, out_value)) {
      return KernelOutcome::kBailout;
    }
    return KernelOutcome::kEmit;
  }

  std::string Describe() const override { return describe_; }

  // Filled in by BuildClosureKernel (file-local builder).
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::vector<TermEval>> disjuncts_;
  std::vector<std::pair<const Node*, int>> prepass_;
  const Node* key_node_ = nullptr;
  const Node* value_node_ = nullptr;
  int key_slot_ = -1;
  int value_slot_ = -1;
  int min_arity_ = 0;
  int num_slots_ = 0;
  bool has_calls_ = false;
  std::string describe_;
};

// Static fallback when the optimizer supplied no statistics: point
// predicates filter hardest, then ranges, then substring probes.
double HeuristicSelectivity(const ExprRef& expr) {
  if (expr->kind == Expr::Kind::kCall) return 0.6;
  if (expr->kind == Expr::Kind::kOp) {
    if (expr->op == Opcode::kCmpEq) return 0.1;
    if (mril::IsComparison(expr->op)) return 0.4;
  }
  return 0.5;
}

}  // namespace

Result<std::shared_ptr<const NativeKernel>> BuildClosureKernel(
    const mril::Program& program, const RelationalShape& shape,
    const CompileOptions& options) {
  Compiler compiler(program, options);
  auto kernel = std::make_shared<ClosureKernel>();
  std::map<std::string, double> selectivity(
      options.term_selectivity.begin(), options.term_selectivity.end());

  int num_slots = 0;
  int total_terms = 0;
  for (const analyzer::Conjunct& c : shape.formula.disjuncts) {
    std::vector<TermEval> terms;
    for (const analyzer::SelectTerm& t : c.terms) {
      MANIMAL_ASSIGN_OR_RETURN(const Node* node,
                               compiler.BuildTerm(t.expr));
      TermEval te;
      te.node = node;
      te.polarity = t.polarity;
      auto it = selectivity.find(t.ToString());
      te.selectivity = it != selectivity.end()
                           ? it->second
                           : HeuristicSelectivity(t.expr);
      if (!node->total) {
        te.slot = num_slots++;
        kernel->prepass_.emplace_back(node, te.slot);
      } else {
        ++total_terms;
      }
      terms.push_back(std::move(te));
    }
    // Most-selective-first short-circuit; only total terms may be
    // skipped, but cached pre-pass terms cost nothing to check so a
    // single ordering covers both.
    std::stable_sort(terms.begin(), terms.end(),
                     [](const TermEval& a, const TermEval& b) {
                       return a.selectivity < b.selectivity;
                     });
    kernel->disjuncts_.push_back(std::move(terms));
  }
  if (shape.emit_pc >= 0) {
    MANIMAL_ASSIGN_OR_RETURN(kernel->key_node_,
                             compiler.Build(shape.key_expr));
    MANIMAL_ASSIGN_OR_RETURN(kernel->value_node_,
                             compiler.Build(shape.value_expr));
    if (!kernel->key_node_->total) {
      kernel->key_slot_ = num_slots++;
      kernel->prepass_.emplace_back(kernel->key_node_,
                                    kernel->key_slot_);
    }
    if (!kernel->value_node_->total) {
      kernel->value_slot_ = num_slots++;
      kernel->prepass_.emplace_back(kernel->value_node_,
                                    kernel->value_slot_);
    }
  }
  kernel->min_arity_ = compiler.min_arity();
  kernel->has_calls_ = compiler.has_calls();
  kernel->num_slots_ = num_slots;
  kernel->nodes_ = compiler.TakeNodes();
  kernel->describe_ = StrPrintf(
      "closure kernel: %s; %d total term(s), %zu pre-pass expr(s), "
      "record arity >= %d",
      shape.Describe().c_str(), total_terms, kernel->prepass_.size(),
      kernel->min_arity_);
  return std::shared_ptr<const NativeKernel>(std::move(kernel));
}

Result<std::shared_ptr<const NativeKernel>> CompileShape(
    const mril::Program& program, const RelationalShape& shape,
    const CompileOptions& options) {
  if (options.engine == CompileOptions::Engine::kEmitted) {
    return CompileEmittedKernel(program, shape, options);
  }
  return BuildClosureKernel(program, shape, options);
}

Result<std::shared_ptr<const NativeKernel>> CompileKernel(
    const mril::Program& program, const CompileOptions& options) {
  MANIMAL_ASSIGN_OR_RETURN(RelationalShape shape,
                           ExtractShape(program));
  return CompileShape(program, shape, options);
}

}  // namespace manimal::codegen
