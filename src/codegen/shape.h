// Relational-shape extraction — the admission gate of the native
// codegen tier (ROADMAP item: bypass the interpretation ceiling; the
// Casper direction of lifting UDF semantics and retargeting them to a
// faster backend).
//
// A map() qualifies when the analyzer's recovered facts describe it
// EXACTLY: it is a pure selection+projection — a DNF emit condition
// (analyzer/select), functional emit operands (analysis/expr_recovery),
// no side effects (analysis/side_effects) — with no residual VM-only
// behavior. "No residual behavior" is the hard part: the VM evaluates
// every instruction on the executed path, so an arithmetic fault (div
// by zero, a type error) in code the recovered expressions do NOT
// cover would fire under the VM but not under a kernel that evaluates
// only the recovered expressions. ExtractShape therefore also proves
// coverage: every fault-capable instruction in map() must appear as an
// origin_pc inside the expressions the kernel will evaluate, and every
// conditional branch must test one of the formula's terms. Shapes that
// fail any test fall back to the VM — never a wrong answer, only a
// slower one.

#ifndef MANIMAL_CODEGEN_SHAPE_H_
#define MANIMAL_CODEGEN_SHAPE_H_

#include <string>
#include <vector>

#include "analyzer/descriptor.h"
#include "common/status.h"
#include "mril/program.h"

namespace manimal::codegen {

// The exact relational semantics of one admitted map():
//   for each (key, record):
//     if formula(key, record): emit(key_expr, value_expr)
// An always-emitting map has a TRUE formula (one empty conjunct); a
// never-emitting map has a FALSE formula (no disjuncts) and null
// key/value expressions.
struct RelationalShape {
  analyzer::DnfFormula formula;
  analysis::ExprRef key_expr;    // null iff the map never emits
  analysis::ExprRef value_expr;  // null iff the map never emits
  bool always_emits = false;
  int emit_pc = -1;  // -1 iff the map never emits

  // Value-parameter fields referenced anywhere in the shape's
  // expressions (original schema indexes, pre-remap). Empty with
  // whole_record=false means the record content is never consulted.
  std::vector<int> used_fields;
  // True when some expression uses the record other than via plain
  // field access (e.g. emits the whole record).
  bool whole_record = false;

  std::string Describe() const;
};

// Decides admission. Errors are always StatusCode::kNotSupported with
// a human-readable reason (surfaced through EXPLAIN as the
// native-eligibility detail); any other code indicates an internal
// inconsistency.
Result<RelationalShape> ExtractShape(const mril::Program& program);

}  // namespace manimal::codegen

#endif  // MANIMAL_CODEGEN_SHAPE_H_
