#include "codegen/dlopen_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/strings.h"

#if MANIMAL_CODEGEN_DLOPEN
#include <dlfcn.h>
#include <unistd.h>
#endif

namespace manimal::codegen {

#if !MANIMAL_CODEGEN_DLOPEN

bool EmittedKernelAvailable() { return false; }

Result<std::shared_ptr<const NativeKernel>> CompileEmittedKernel(
    const mril::Program&, const RelationalShape&,
    const CompileOptions&) {
  return Status::NotSupported(
      "emitted engine compiled out (MANIMAL_CODEGEN_DLOPEN=OFF)");
}

#else  // MANIMAL_CODEGEN_DLOPEN

using analysis::Expr;
using analysis::ExprRef;
using mril::Opcode;

namespace {

#ifndef MANIMAL_CODEGEN_CXX
#define MANIMAL_CODEGEN_CXX "c++"
#endif

// Mirror of the NkVal struct in every emitted translation unit. The
// layout is the ABI between this wrapper and the loaded object, so
// both sides spell it out explicitly.
struct NkVal {
  int32_t kind;  // 0 null, 1 bool, 2 i64, 3 f64, 4 str
  int64_t i;
  double d;
  const char* s;
  uint64_t n;
};

using NkRunFn = int32_t (*)(const NkVal* key, const NkVal* rec,
                            uint64_t nrec, NkVal* out_key,
                            NkVal* out_val);

bool ToNk(const Value& v, NkVal* out) {
  *out = NkVal{0, 0, 0.0, nullptr, 0};
  switch (v.kind()) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kBool:
      out->kind = 1;
      out->i = *v.if_bool() ? 1 : 0;
      return true;
    case ValueKind::kI64:
      out->kind = 2;
      out->i = v.i64();
      return true;
    case ValueKind::kF64:
      out->kind = 3;
      out->d = v.f64();
      return true;
    case ValueKind::kStr: {
      std::string_view s = v.str();
      out->kind = 4;
      out->s = s.data();
      out->n = s.size();
      return true;
    }
    default:
      return false;  // lists / handles never cross the ABI
  }
}

Value FromNk(const NkVal& v) {
  switch (v.kind) {
    case 1:
      return Value::Bool(v.i != 0);
    case 2:
      return Value::I64(v.i);
    case 3:
      return Value::F64(v.d);
    case 4:
      return Value::Borrowed(std::string_view(v.s, v.n));
    default:
      return Value();
  }
}

class DlopenKernel final : public NativeKernel {
 public:
  DlopenKernel(void* handle, NkRunFn fn, bool value_is_record,
               std::string describe)
      : handle_(handle),
        fn_(fn),
        value_is_record_(value_is_record),
        describe_(std::move(describe)) {}
  ~DlopenKernel() override {
    if (handle_ != nullptr) dlclose(handle_);
  }

  KernelOutcome Run(const Value& key, const Value& record,
                    KernelScratch* scratch, Value* out_key,
                    Value* out_value) const override {
    (void)scratch;
    if (!record.is_list()) return KernelOutcome::kBailout;
    NkVal nk_key;
    if (!ToNk(key, &nk_key)) return KernelOutcome::kBailout;
    const ValueList& fields = record.list();
    NkVal stack_buf[64];
    std::vector<NkVal> heap_buf;
    NkVal* rec = stack_buf;
    if (fields.size() > 64) {
      heap_buf.resize(fields.size());
      rec = heap_buf.data();
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      if (!ToNk(fields[i], &rec[i])) return KernelOutcome::kBailout;
    }
    NkVal ok{0, 0, 0.0, nullptr, 0};
    NkVal ov{0, 0, 0.0, nullptr, 0};
    int32_t rc = fn_(&nk_key, rec, fields.size(), &ok, &ov);
    if (rc == 0) return KernelOutcome::kSkip;
    if (rc != 1) return KernelOutcome::kBailout;
    *out_key = FromNk(ok);
    if (value_is_record_) {
      *out_value = record;
    } else {
      *out_value = FromNk(ov);
    }
    return KernelOutcome::kEmit;
  }

  std::string Describe() const override { return describe_; }

 private:
  void* handle_;
  NkRunFn fn_;
  bool value_is_record_;
  std::string describe_;
};

std::string EscapeCxxString(std::string_view s) {
  std::string out;
  for (unsigned char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c >= 32 && c < 127) {
      out += static_cast<char>(c);
    } else {
      out += StrPrintf("\\%03o", c);
    }
  }
  return out;
}

// Renders the emitted translation unit. The supported family is
// intentionally narrow; anything outside it returns kNotSupported so
// the caller falls back to the closure engine.
class SourceRenderer {
 public:
  SourceRenderer(const mril::Program& program,
                 const RelationalShape& shape,
                 const CompileOptions& options)
      : program_(program), shape_(shape), options_(options) {}

  Result<std::string> Render(bool* value_is_record) {
    std::ostringstream terms;
    int disjunct_id = 0;
    for (const analyzer::Conjunct& c : shape_.formula.disjuncts) {
      std::vector<std::pair<double, std::string>> checks;
      for (const analyzer::SelectTerm& t : c.terms) {
        MANIMAL_ASSIGN_OR_RETURN(std::string check,
                                 RenderTerm(t, disjunct_id));
        checks.emplace_back(Selectivity(t), std::move(check));
      }
      std::stable_sort(checks.begin(), checks.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      terms << "  // disjunct " << disjunct_id << "\n";
      for (const auto& [sel, check] : checks) terms << check;
      terms << "  goto emit;\n";
      terms << "d" << disjunct_id << ":;\n";
      ++disjunct_id;
    }

    std::ostringstream emit;
    *value_is_record = false;
    if (shape_.emit_pc >= 0) {
      MANIMAL_ASSIGN_OR_RETURN(std::string key_code,
                               RenderOut(shape_.key_expr, "out_key"));
      if (shape_.value_expr->kind == Expr::Kind::kParam &&
          shape_.value_expr->index == mril::kMapValueParam) {
        *value_is_record = true;
      } else {
        MANIMAL_ASSIGN_OR_RETURN(
            std::string value_code,
            RenderOut(shape_.value_expr, "out_val"));
        emit << value_code;
      }
      emit << key_code;
    }

    std::ostringstream src;
    src << "// emitted by manimal codegen; do not edit\n"
        << "#include <cstdint>\n"
        << "#include <cstddef>\n\n";
    for (const std::string& s : statics_) src << s;
    src << "\nextern \"C\" {\n\n"
        << "struct NkVal {\n"
        << "  int32_t kind;  // 0 null, 1 bool, 2 i64, 3 f64, 4 str\n"
        << "  int64_t i;\n"
        << "  double d;\n"
        << "  const char* s;\n"
        << "  uint64_t n;\n"
        << "};\n\n"
        << "int32_t nk_run(const NkVal* key, const NkVal* rec, "
           "uint64_t nrec,\n"
        << "               NkVal* out_key, NkVal* out_val) {\n"
        << "  (void)key; (void)rec; (void)nrec;\n"
        << "  (void)out_key; (void)out_val;\n";
    if (min_arity_ > 0) {
      src << "  if (nrec < " << min_arity_ << "u) return 2;\n";
    }
    // Kind guards: a record deviating from the schema bails (the VM
    // replay then reproduces whatever the VM does).
    for (const std::string& g : guards_) src << g;
    src << terms.str();
    src << "  return 0;\n";
    src << "emit:\n";
    if (shape_.emit_pc < 0) {
      src << "  return 0;\n";  // unreachable: FALSE formula
    } else {
      src << emit.str();
      src << "  return 1;\n";
    }
    src << "}\n\n}  // extern \"C\"\n";
    return src.str();
  }

 private:
  double Selectivity(const analyzer::SelectTerm& t) const {
    for (const auto& [key, sel] : options_.term_selectivity) {
      if (key == t.ToString()) return sel;
    }
    if (t.expr->kind == Expr::Kind::kOp &&
        t.expr->op == Opcode::kCmpEq) {
      return 0.1;
    }
    return 0.4;
  }

  Result<int> ResolveSlot(int index) {
    if (program_.value_schema.opaque() || index < 0 ||
        index >= program_.value_schema.num_fields()) {
      return Status::NotSupported(
          "emitted engine: field index outside schema");
    }
    if (options_.field_remap.empty()) return index;
    if (index >= static_cast<int>(options_.field_remap.size()) ||
        options_.field_remap[index] < 0) {
      return Status::NotSupported(
          "emitted engine: field not present in the input layout");
    }
    return options_.field_remap[index];
  }

  void GuardSlotKind(int slot, int kind) {
    guards_.insert(StrPrintf("  if (rec[%d].kind != %d) return 2;\n",
                             slot, kind));
    if (slot + 1 > min_arity_) min_arity_ = slot + 1;
  }

  static bool IsPlainField(const ExprRef& e) {
    return e != nullptr && e->kind == Expr::Kind::kField &&
           e->args.size() == 1 &&
           e->args[0]->kind == Expr::Kind::kParam &&
           e->args[0]->index == mril::kMapValueParam;
  }

  // An i64-valued scalar C++ expression over `key` / `rec`.
  Result<std::string> RenderI64(const ExprRef& e) {
    if (e == nullptr) {
      return Status::NotSupported("emitted engine: null expression");
    }
    if (e->kind == Expr::Kind::kConst && e->constant.is_i64()) {
      return StrPrintf("INT64_C(%lld)",
                       static_cast<long long>(e->constant.i64()));
    }
    if (IsPlainField(e)) {
      if (program_.value_schema.field(e->index).type !=
          FieldType::kI64) {
        return Status::NotSupported(
            "emitted engine: non-i64 field in arithmetic");
      }
      MANIMAL_ASSIGN_OR_RETURN(int slot, ResolveSlot(e->index));
      GuardSlotKind(slot, 2);
      return StrPrintf("rec[%d].i", slot);
    }
    if (e->kind == Expr::Kind::kParam &&
        e->index == mril::kMapKeyParam &&
        program_.key_type == FieldType::kI64) {
      guards_.insert("  if (key->kind != 2) return 2;\n");
      return std::string("key->i");
    }
    if (e->kind == Expr::Kind::kOp && e->args.size() == 2 &&
        (e->op == Opcode::kAdd || e->op == Opcode::kSub ||
         e->op == Opcode::kMul)) {
      MANIMAL_ASSIGN_OR_RETURN(std::string a, RenderI64(e->args[0]));
      MANIMAL_ASSIGN_OR_RETURN(std::string b, RenderI64(e->args[1]));
      const char* op = e->op == Opcode::kAdd   ? "+"
                       : e->op == Opcode::kSub ? "-"
                                               : "*";
      // Two's-complement wrap, like the VM.
      return StrPrintf(
          "(int64_t)((uint64_t)(%s) %s (uint64_t)(%s))", a.c_str(), op,
          b.c_str());
    }
    if (e->kind == Expr::Kind::kOp && e->args.size() == 1 &&
        e->op == Opcode::kNeg) {
      MANIMAL_ASSIGN_OR_RETURN(std::string a, RenderI64(e->args[0]));
      return StrPrintf("(int64_t)(0u - (uint64_t)(%s))", a.c_str());
    }
    return Status::NotSupported(
        "emitted engine: expression outside the i64 family: " +
        e->ToString());
  }

  Result<std::string> RenderTerm(const analyzer::SelectTerm& t,
                                 int disjunct_id) {
    const ExprRef& e = t.expr;
    if (e == nullptr || e->kind != Expr::Kind::kOp ||
        !mril::IsComparison(e->op) || e->args.size() != 2 ||
        !IsPlainField(e->args[0]) ||
        e->args[1]->kind != Expr::Kind::kConst ||
        !e->args[1]->constant.is_i64() ||
        program_.value_schema.field(e->args[0]->index).type !=
            FieldType::kI64) {
      return Status::NotSupported(
          "emitted engine: selection term outside the typed "
          "i64-field-vs-constant family: " +
          t.ToString());
    }
    MANIMAL_ASSIGN_OR_RETURN(int slot, ResolveSlot(e->args[0]->index));
    GuardSlotKind(slot, 2);
    const char* op;
    switch (e->op) {
      case Opcode::kCmpLt: op = "<"; break;
      case Opcode::kCmpLe: op = "<="; break;
      case Opcode::kCmpGt: op = ">"; break;
      case Opcode::kCmpGe: op = ">="; break;
      case Opcode::kCmpEq: op = "=="; break;
      default: op = "!="; break;
    }
    return StrPrintf(
        "  if ((rec[%d].i %s INT64_C(%lld)) != %s) goto d%d;\n", slot,
        op, static_cast<long long>(e->args[1]->constant.i64()),
        t.polarity ? "true" : "false", disjunct_id);
  }

  // Statements filling one NkVal output.
  Result<std::string> RenderOut(const ExprRef& e, const char* out) {
    if (e == nullptr) {
      return Status::NotSupported("emitted engine: null emit operand");
    }
    if (e->kind == Expr::Kind::kParam &&
        e->index == mril::kMapKeyParam) {
      return StrPrintf("  *%s = *key;\n", out);
    }
    if (IsPlainField(e)) {
      MANIMAL_ASSIGN_OR_RETURN(int slot, ResolveSlot(e->index));
      if (slot + 1 > min_arity_) min_arity_ = slot + 1;
      return StrPrintf("  *%s = rec[%d];\n", out, slot);
    }
    if (e->kind == Expr::Kind::kConst) {
      const Value& v = e->constant;
      switch (v.kind()) {
        case ValueKind::kNull:
          return StrPrintf("  %s->kind = 0;\n", out);
        case ValueKind::kBool:
          return StrPrintf("  %s->kind = 1; %s->i = %d;\n", out, out,
                           *v.if_bool() ? 1 : 0);
        case ValueKind::kI64:
          return StrPrintf(
              "  %s->kind = 2; %s->i = INT64_C(%lld);\n", out, out,
              static_cast<long long>(v.i64()));
        case ValueKind::kF64:
          return StrPrintf("  %s->kind = 3; %s->d = %.17g;\n", out,
                           out, v.f64());
        case ValueKind::kStr: {
          std::string name = StrPrintf("kStr%zu", statics_.size());
          std::string_view s = v.str();
          statics_.push_back(StrPrintf(
              "static const char %s[] = \"%s\";\n", name.c_str(),
              EscapeCxxString(s).c_str()));
          return StrPrintf(
              "  %s->kind = 4; %s->s = %s; %s->n = %zuu;\n", out, out,
              name.c_str(), out, s.size());
        }
        default:
          return Status::NotSupported(
              "emitted engine: non-scalar constant emit operand");
      }
    }
    // Last resort: an i64 arithmetic expression.
    MANIMAL_ASSIGN_OR_RETURN(std::string v, RenderI64(e));
    return StrPrintf("  %s->kind = 2; %s->i = %s;\n", out, out,
                     v.c_str());
  }

  const mril::Program& program_;
  const RelationalShape& shape_;
  const CompileOptions& options_;
  std::set<std::string> guards_;
  std::vector<std::string> statics_;
  int min_arity_ = 0;
};

}  // namespace

bool EmittedKernelAvailable() { return true; }

Result<std::shared_ptr<const NativeKernel>> CompileEmittedKernel(
    const mril::Program& program, const RelationalShape& shape,
    const CompileOptions& options) {
  bool value_is_record = false;
  SourceRenderer renderer(program, shape, options);
  MANIMAL_ASSIGN_OR_RETURN(std::string source,
                           renderer.Render(&value_is_record));

  std::string dir = options.scratch_dir;
  if (dir.empty()) dir = MakeTempDir("manimal-codegen");
  MANIMAL_RETURN_IF_ERROR(CreateDirIfMissing(dir));

  static std::atomic<int> counter{0};
  std::string stem = StrPrintf("%s/nk_%d_%d", dir.c_str(),
                               static_cast<int>(getpid()),
                               counter.fetch_add(1));
  std::string cc_path = stem + ".cc";
  std::string so_path = stem + ".so";
  std::string log_path = stem + ".log";
  {
    std::ofstream out(cc_path);
    if (!out) {
      return Status::IOError("cannot write emitted source: " + cc_path);
    }
    out << source;
  }

  std::string cmd = StrPrintf(
      "\"%s\" -std=c++17 -O2 -fPIC -shared -o \"%s\" \"%s\" 2> \"%s\"",
      MANIMAL_CODEGEN_CXX, so_path.c_str(), cc_path.c_str(),
      log_path.c_str());
  if (std::system(cmd.c_str()) != 0) {
    std::string log;
    std::ifstream in(log_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    log = buf.str();
    if (log.size() > 500) log.resize(500);
    return Status::NotSupported("emitted kernel compile failed: " + log);
  }

  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    return Status::NotSupported(
        StrPrintf("dlopen(%s) failed: %s", so_path.c_str(), dlerror()));
  }
  auto fn = reinterpret_cast<NkRunFn>(dlsym(handle, "nk_run"));
  if (fn == nullptr) {
    dlclose(handle);
    return Status::NotSupported("emitted object lacks nk_run");
  }
  return std::shared_ptr<const NativeKernel>(
      std::make_shared<DlopenKernel>(
          handle, fn, value_is_record,
          StrPrintf("emitted kernel (%s): %s", so_path.c_str(),
                    shape.Describe().c_str())));
}

#endif  // MANIMAL_CODEGEN_DLOPEN

}  // namespace manimal::codegen
