// Block-skip filters — direct predicate evaluation on compressed
// blocks (paper §2.1 "operate directly on compressed data", ROADMAP
// item 3). A v2 seqfile's footer carries per-block [min, max] frames
// for every i64-valued stored slot (including dictionary CODES, which
// is sound because direct operation rewrites string predicates into
// code space). When the map()'s emit condition is a DNF of simple
// total comparisons, those frames can prove — before the block is
// read or decompressed — that no row in it satisfies the condition,
// and the whole block is elided from the scan.
//
// Admission is deliberately stricter than the native-kernel gate:
// EVERY term of the formula must be `field <op> const` (either
// order) over a total, fault-free comparison. A term that could fault
// (a call, arithmetic) or that we cannot read exactly disqualifies the
// whole program, because skipping a block also skips whatever the VM
// would have done on its rows — the bailout-replay exactness contract
// only holds if the skipped rows provably produce nothing, including
// no faults. Simple comparisons over decoded i64s are total, so a
// block whose bounds refute every disjunct is dead weight by
// construction.
//
// Elision rule, per block:
//   for each disjunct D of the DNF:
//     D is refuted iff some term of D is provably violated for every
//     value in the block's [min, max] frame (polarity-aware);
//   skip the block iff every disjunct is refuted.

#ifndef MANIMAL_CODEGEN_SKIP_H_
#define MANIMAL_CODEGEN_SKIP_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/seqfile.h"
#include "common/status.h"
#include "mril/program.h"

namespace manimal::codegen {

// Why a program/file pair was (or wasn't) admitted, for EXPLAIN and
// the journal.
struct BlockSkipReport {
  bool admitted = false;
  std::string detail;          // reason when !admitted; summary when admitted
  uint64_t blocks_total = 0;
  uint64_t blocks_skipped = 0;  // true bits in the filter
};

// Builds the per-block skip bitmap (index = absolute block number,
// true = provably no row matches) for `program` scanning `reader`.
// `field_remap` maps original field index -> stored slot (empty =
// identity); pass the same remap the execution descriptor uses.
//
// Returns nullptr — with report->detail saying why — when the pair is
// inadmissible (no skip frames, formula not simple-total, no frame-
// provable term) or when no block can be skipped. Inadmissibility is
// never an error: the scan just runs un-elided.
std::shared_ptr<const std::vector<bool>> BuildBlockSkipFilter(
    const mril::Program& program, const columnar::SeqFileReader& reader,
    const std::vector<int>& field_remap, BlockSkipReport* report);

}  // namespace manimal::codegen

#endif  // MANIMAL_CODEGEN_SKIP_H_
