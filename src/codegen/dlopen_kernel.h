// The emitted-source engine: renders an admitted relational shape to a
// self-contained C++ translation unit, shells out to the configured
// compiler for a shared object, and loads the kernel entry point with
// dlopen. Compiled out (every call returns kNotSupported) unless the
// build enables MANIMAL_CODEGEN_DLOPEN.
//
// The engine covers a deliberately narrow family — typed i64
// field-vs-constant comparisons, and emit operands that are the key
// parameter, a plain field, a scalar constant, whole-record
// passthrough, or i64 arithmetic over those. Everything else returns
// kNotSupported so the caller can fall back to the closure engine or
// the VM. Emitted strings are never synthesized: they point either
// into the caller's record (same borrowed lifetime as the closure
// engine) or into static storage inside the loaded object.

#ifndef MANIMAL_CODEGEN_DLOPEN_KERNEL_H_
#define MANIMAL_CODEGEN_DLOPEN_KERNEL_H_

#include <memory>

#include "codegen/kernel.h"
#include "codegen/shape.h"

namespace manimal::codegen {

// True when this build can emit + dlopen kernels.
bool EmittedKernelAvailable();

Result<std::shared_ptr<const NativeKernel>> CompileEmittedKernel(
    const mril::Program& program, const RelationalShape& shape,
    const CompileOptions& options);

}  // namespace manimal::codegen

#endif  // MANIMAL_CODEGEN_DLOPEN_KERNEL_H_
