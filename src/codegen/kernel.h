// The native execution tier: compiles an admitted relational shape
// (codegen/shape.h) into a specialized evaluator that replaces the VM
// on the map hot path.
//
// Two engines implement the tier:
//
//   * the closure engine (default) — a tree of small evaluator nodes
//     built at job-prepare time, with template-instantiated typed fast
//     paths for the dominant term shapes (e.g. an i64 field compared
//     against an i64 constant) and conjunct short-circuiting in
//     selectivity order;
//   * the emitted engine (CMake option MANIMAL_CODEGEN_DLOPEN) — the
//     shape is rendered to a self-contained C++ translation unit,
//     compiled to a shared object at runtime, and loaded with dlopen.
//     It covers a narrower family (typed comparisons, field/constant
//     projections); shapes outside it compile-fail and the caller
//     falls back.
//
// Exactness contract: for every record, Run() either reproduces the
// VM's observable behavior (emit the identical pair, or emit nothing)
// or returns kBailout, in which case the caller MUST replay the record
// through the VM (which also reproduces any error the VM would have
// raised). Bailing out is always safe; the compiler only proves that
// non-bailout outcomes are exact.
//
// Evaluation discipline (why reordering is safe): a node is "total"
// when its evaluation provably cannot fault for schema-conformant
// records. Only total terms participate in short-circuit evaluation;
// every non-total expression in the shape (a division, a builtin
// call) is evaluated up front on every record, with any fault turning
// into kBailout — so the kernel never skips an expression the VM
// might have faulted on.

#ifndef MANIMAL_CODEGEN_KERNEL_H_
#define MANIMAL_CODEGEN_KERNEL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "codegen/shape.h"
#include "common/status.h"
#include "serde/value.h"

namespace manimal::codegen {

enum class KernelOutcome {
  kSkip,     // the record does not satisfy the selection
  kEmit,     // *out_key / *out_value hold the emitted pair
  kBailout,  // exactness not provable for this record: replay via VM
};

// Per-caller mutable state, so one immutable kernel can serve many
// threads. Reused across records; Run() resets what it needs.
struct KernelScratch {
  ValueArena arena;
  std::vector<Value> slots;
};

class NativeKernel {
 public:
  virtual ~NativeKernel() = default;

  // Evaluates one map input. Emitted values may borrow from `record`
  // or from scratch->arena — valid until the next Run() with the same
  // scratch or the record buffer's invalidation, whichever is first
  // (the same lifetime contract as InputSplit::Next()).
  virtual KernelOutcome Run(const Value& key, const Value& record,
                            KernelScratch* scratch, Value* out_key,
                            Value* out_value) const = 0;

  virtual std::string Describe() const = 0;
};

struct CompileOptions {
  // original-field -> runtime-slot remap of the input layout (same
  // semantics as mril::VmOptions::field_remap); empty = identity.
  std::vector<int> field_remap;

  // Optional per-term selectivity estimates keyed by
  // SelectTerm::ToString() (the optimizer derives them from the
  // per-column statistics); total conjunct terms are short-circuited
  // most-selective-first. Terms without an estimate use a static
  // cost/selectivity heuristic.
  std::vector<std::pair<std::string, double>> term_selectivity;

  enum class Engine {
    kAuto,     // closure engine
    kClosure,  // force the closure engine
    kEmitted,  // force the emitted-source + dlopen engine
  };
  Engine engine = Engine::kAuto;

  // Scratch directory for the emitted engine's generated sources and
  // shared objects; a fresh temp dir when empty.
  std::string scratch_dir;
};

// Extracts the program's shape and compiles it. Returns
// StatusCode::kNotSupported (with a reason) for shapes the requested
// engine cannot cover exactly.
Result<std::shared_ptr<const NativeKernel>> CompileKernel(
    const mril::Program& program, const CompileOptions& options);

// Compiles an already-extracted shape (schema/key_type still come from
// the program).
Result<std::shared_ptr<const NativeKernel>> CompileShape(
    const mril::Program& program, const RelationalShape& shape,
    const CompileOptions& options);

}  // namespace manimal::codegen

#endif  // MANIMAL_CODEGEN_KERNEL_H_
