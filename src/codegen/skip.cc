#include "codegen/skip.h"

#include "analyzer/descriptor.h"
#include "codegen/shape.h"
#include "common/strings.h"
#include "mril/opcode.h"

namespace manimal::codegen {
namespace {

using analysis::Expr;
using analyzer::Conjunct;
using analyzer::SelectTerm;

// A term normalized to `slot <op> value` over the stored layout.
struct SimpleTerm {
  int slot = -1;        // stored slot; -1 = field has no skip frame
  mril::Opcode op = mril::Opcode::kNop;
  int64_t value = 0;
  bool polarity = true;  // term must evaluate to this
};

bool IsCmp(mril::Opcode op) {
  switch (op) {
    case mril::Opcode::kCmpEq:
    case mril::Opcode::kCmpNe:
    case mril::Opcode::kCmpLt:
    case mril::Opcode::kCmpLe:
    case mril::Opcode::kCmpGt:
    case mril::Opcode::kCmpGe:
      return true;
    default:
      return false;
  }
}

// Mirror of `a <op> b` -> `b <op'> a`, for const-first terms.
mril::Opcode Flip(mril::Opcode op) {
  switch (op) {
    case mril::Opcode::kCmpLt: return mril::Opcode::kCmpGt;
    case mril::Opcode::kCmpLe: return mril::Opcode::kCmpGe;
    case mril::Opcode::kCmpGt: return mril::Opcode::kCmpLt;
    case mril::Opcode::kCmpGe: return mril::Opcode::kCmpLe;
    default: return op;  // Eq/Ne are symmetric
  }
}

// Is `e` a plain field access of the map value parameter (param 1)?
bool IsValueField(const Expr& e, int* field) {
  if (e.kind != Expr::Kind::kField || e.args.size() != 1) return false;
  const Expr& base = *e.args[0];
  if (base.kind != Expr::Kind::kParam || base.index != 1) return false;
  *field = e.index;
  return true;
}

// Parses one DNF term into SimpleTerm form. Returns false when the
// term is NOT a simple total comparison — which disqualifies the whole
// program (see header).
bool ParseTerm(const SelectTerm& term, const columnar::SeqFileReader& reader,
               const std::vector<int>& field_remap, SimpleTerm* out) {
  const Expr& e = *term.expr;
  if (e.kind != Expr::Kind::kOp || !IsCmp(e.op) || e.args.size() != 2) {
    return false;
  }
  const Expr& lhs = *e.args[0];
  const Expr& rhs = *e.args[1];
  int field = -1;
  mril::Opcode op = e.op;
  const Expr* cst = nullptr;
  if (IsValueField(lhs, &field) && rhs.kind == Expr::Kind::kConst) {
    cst = &rhs;
  } else if (IsValueField(rhs, &field) &&
             lhs.kind == Expr::Kind::kConst) {
    cst = &lhs;
    op = Flip(op);
  } else {
    return false;
  }
  out->op = op;
  out->polarity = term.polarity;
  out->slot = -1;
  // Frames bound decoded i64s only; other constant types keep the
  // term admissible (a comparison is total regardless) but unusable
  // for proving.
  if (!cst->constant.is_i64()) return true;
  out->value = cst->constant.i64();
  int slot = field;
  if (!field_remap.empty()) {
    if (field < 0 || field >= static_cast<int>(field_remap.size())) {
      return true;
    }
    slot = field_remap[field];
  }
  int64_t lo = 0, hi = 0;
  // Probe block 0 purely to learn whether the slot is framed.
  if (slot >= 0 && reader.num_blocks() > 0 &&
      reader.BlockSlotBounds(0, slot, &lo, &hi)) {
    out->slot = slot;
  }
  return true;
}

// Can `v <op> c` hold for some v in [lo, hi]?
bool Satisfiable(mril::Opcode op, int64_t c, int64_t lo, int64_t hi) {
  switch (op) {
    case mril::Opcode::kCmpEq: return lo <= c && c <= hi;
    case mril::Opcode::kCmpNe: return !(lo == c && hi == c);
    case mril::Opcode::kCmpLt: return lo < c;
    case mril::Opcode::kCmpLe: return lo <= c;
    case mril::Opcode::kCmpGt: return hi > c;
    case mril::Opcode::kCmpGe: return hi >= c;
    default: return true;
  }
}

// Does `v <op> c` hold for every v in [lo, hi]?
bool Universal(mril::Opcode op, int64_t c, int64_t lo, int64_t hi) {
  switch (op) {
    case mril::Opcode::kCmpEq: return lo == c && hi == c;
    case mril::Opcode::kCmpNe: return c < lo || c > hi;
    case mril::Opcode::kCmpLt: return hi < c;
    case mril::Opcode::kCmpLe: return hi <= c;
    case mril::Opcode::kCmpGt: return lo > c;
    case mril::Opcode::kCmpGe: return lo >= c;
    default: return false;
  }
}

}  // namespace

std::shared_ptr<const std::vector<bool>> BuildBlockSkipFilter(
    const mril::Program& program, const columnar::SeqFileReader& reader,
    const std::vector<int>& field_remap, BlockSkipReport* report) {
  BlockSkipReport local;
  BlockSkipReport& rep = report != nullptr ? *report : local;
  rep = BlockSkipReport();
  rep.blocks_total = reader.num_blocks();
  if (!reader.has_skip_frames()) {
    rep.detail = "input has no skip frames";
    return nullptr;
  }
  Result<RelationalShape> shape = ExtractShape(program);
  if (!shape.ok()) {
    rep.detail = "shape not admitted: " + shape.status().message();
    return nullptr;
  }
  const analyzer::DnfFormula& formula = shape->formula;
  if (formula.IsAlwaysTrue() || formula.IsNever()) {
    // Nothing to elide (always) or the scan is already empty work
    // (never): either way frames cannot improve on the formula itself.
    rep.detail = "formula is constant";
    return nullptr;
  }
  // Parse every term up front; ANY non-simple term disqualifies.
  std::vector<std::vector<SimpleTerm>> disjuncts;
  disjuncts.reserve(formula.disjuncts.size());
  for (const Conjunct& c : formula.disjuncts) {
    std::vector<SimpleTerm> terms;
    terms.reserve(c.terms.size());
    bool provable = false;
    for (const SelectTerm& t : c.terms) {
      SimpleTerm st;
      if (!ParseTerm(t, reader, field_remap, &st)) {
        rep.detail =
            "term not a simple total comparison: " + t.ToString();
        return nullptr;
      }
      provable |= st.slot >= 0;
      terms.push_back(st);
    }
    if (!provable) {
      // One un-provable disjunct means no block can ever be fully
      // refuted — don't bother scanning the frames.
      rep.detail = "a disjunct has no frame-provable term";
      return nullptr;
    }
    disjuncts.push_back(std::move(terms));
  }

  auto skip = std::make_shared<std::vector<bool>>(reader.num_blocks(),
                                                  false);
  uint64_t skipped = 0;
  for (uint64_t b = 0; b < reader.num_blocks(); ++b) {
    bool all_refuted = true;
    for (const std::vector<SimpleTerm>& terms : disjuncts) {
      bool refuted = false;
      for (const SimpleTerm& t : terms) {
        if (t.slot < 0) continue;
        int64_t lo = 0, hi = 0;
        if (!reader.BlockSlotBounds(b, t.slot, &lo, &hi)) continue;
        // polarity=true: the disjunct needs the comparison to HOLD, so
        // it is refuted when no value in range can satisfy it.
        // polarity=false: the disjunct needs it to FAIL, refuted when
        // it holds for every value in range.
        const bool dead = t.polarity
                              ? !Satisfiable(t.op, t.value, lo, hi)
                              : Universal(t.op, t.value, lo, hi);
        if (dead) {
          refuted = true;
          break;
        }
      }
      if (!refuted) {
        all_refuted = false;
        break;
      }
    }
    if (all_refuted) {
      (*skip)[b] = true;
      ++skipped;
    }
  }
  rep.blocks_skipped = skipped;
  if (skipped == 0) {
    rep.detail = "admitted; no block refutable";
    return nullptr;
  }
  rep.admitted = true;
  rep.detail = StrPrintf("admitted; %llu/%llu blocks refuted",
                         static_cast<unsigned long long>(skipped),
                         static_cast<unsigned long long>(rep.blocks_total));
  return skip;
}

}  // namespace manimal::codegen
