#include "codegen/shape.h"

#include <set>
#include <utility>

#include "analysis/cfg.h"
#include "analysis/expr_recovery.h"
#include "analysis/reaching_defs.h"
#include "analysis/side_effects.h"
#include "analyzer/select.h"
#include "common/strings.h"

namespace manimal::codegen {

using analysis::Cfg;
using analysis::Expr;
using analysis::ExprRef;
using mril::Opcode;

namespace {

// Opcodes whose VM handler can return an error status. Anything in
// map() drawn from this set must be reachable through the expressions
// the kernel evaluates, or a record could fault under the VM while the
// kernel silently succeeds.
bool CanFault(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod:
    case Opcode::kNeg:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
    case Opcode::kCmpGt:
    case Opcode::kCmpGe:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kNot:
    case Opcode::kCall:
    case Opcode::kGetField:
      return true;
    default:
      return false;
  }
}

void CollectOriginPcs(const ExprRef& expr, std::set<int>* pcs) {
  if (expr == nullptr) return;
  if (expr->origin_pc >= 0) pcs->insert(expr->origin_pc);
  for (const ExprRef& a : expr->args) CollectOriginPcs(a, pcs);
}

}  // namespace

std::string RelationalShape::Describe() const {
  std::string fields;
  if (whole_record) {
    fields = "whole-record";
  } else {
    for (int f : used_fields) {
      if (!fields.empty()) fields += ",";
      fields += std::to_string(f);
    }
    fields = "fields{" + fields + "}";
  }
  if (emit_pc < 0) return "never-emits " + fields;
  return StrPrintf(
      "select[%s] emit(%s, %s) %s", formula.ToString().c_str(),
      key_expr ? key_expr->ToString().c_str() : "?",
      value_expr ? value_expr->ToString().c_str() : "?", fields.c_str());
}

Result<RelationalShape> ExtractShape(const mril::Program& program) {
  const mril::Function& fn = program.map_fn;
  if (program.value_param_kind != mril::ValueParamKind::kRecord) {
    return Status::NotSupported("opaque value parameter");
  }
  std::vector<analysis::SideEffect> effects =
      analysis::FindSideEffects(fn);
  if (!effects.empty()) {
    return Status::NotSupported(
        StrPrintf("map() has side effects (%s at pc %d)",
                  effects[0].description.c_str(), effects[0].pc));
  }

  std::vector<int> emit_pcs;
  for (size_t pc = 0; pc < fn.code.size(); ++pc) {
    if (fn.code[pc].op == Opcode::kEmit) {
      emit_pcs.push_back(static_cast<int>(pc));
    }
  }
  if (emit_pcs.size() > 1) {
    return Status::NotSupported("multiple emit sites");
  }

  Cfg cfg = Cfg::Build(fn);
  if (cfg.HasCycle()) {
    return Status::NotSupported("loop in map()");
  }

  RelationalShape shape;
  analyzer::SelectResult sel = analyzer::FindSelect(program);
  if (emit_pcs.empty()) {
    // FALSE formula: the kernel skips every record (but the shape
    // still has to pass the fault-coverage test below — a never-emit
    // map may still divide by zero).
  } else if (sel.descriptor.has_value()) {
    shape.formula = sel.descriptor->formula;
  } else if (sel.always_emits) {
    shape.formula.disjuncts.push_back(analyzer::Conjunct{});
    shape.always_emits = true;
  } else {
    return Status::NotSupported("selection not detected: " +
                                sel.miss_reason);
  }

  analysis::ReachingDefs reaching(fn, cfg);
  analysis::ExprRecovery recovery(program, fn, cfg, reaching);

  std::string reason;
  std::vector<ExprRef> kernel_exprs;  // everything the kernel evaluates
  for (const analyzer::Conjunct& c : shape.formula.disjuncts) {
    for (const analyzer::SelectTerm& t : c.terms) {
      if (!analysis::IsFunctional(t.expr, &reason)) {
        return Status::NotSupported("non-functional selection term: " +
                                    reason);
      }
      kernel_exprs.push_back(t.expr);
    }
  }
  if (!emit_pcs.empty()) {
    shape.emit_pc = emit_pcs[0];
    auto [key_expr, value_expr] = recovery.EmitOperands(shape.emit_pc);
    if (!analysis::IsFunctional(key_expr, &reason)) {
      return Status::NotSupported("non-functional emit key: " + reason);
    }
    if (!analysis::IsFunctional(value_expr, &reason)) {
      return Status::NotSupported("non-functional emit value: " + reason);
    }
    shape.key_expr = key_expr;
    shape.value_expr = value_expr;
    kernel_exprs.push_back(key_expr);
    kernel_exprs.push_back(value_expr);
  }

  // Every conditional branch must test a formula term: the kernel
  // evaluates exactly the terms, so a branch over any other
  // expression could fault (non-bool condition, faulting operand)
  // invisibly to the kernel.
  for (size_t pc = 0; pc < fn.code.size(); ++pc) {
    if (!mril::IsConditionalBranch(fn.code[pc].op)) continue;
    ExprRef cond = recovery.BranchCondition(static_cast<int>(pc));
    bool matched = false;
    for (const ExprRef& term : kernel_exprs) {
      if (cond != nullptr && term->Equals(*cond)) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      return Status::NotSupported(StrPrintf(
          "branch at pc %zu tests an expression outside the recovered "
          "selection formula", pc));
    }
  }

  // Fault coverage: every fault-capable instruction must feed an
  // expression the kernel evaluates. Dead computations (e.g. a stored
  // local nothing reads, a popped call result) fail this test — the
  // VM would still execute them, and they could fault.
  std::set<int> covered;
  for (const ExprRef& e : kernel_exprs) CollectOriginPcs(e, &covered);
  for (size_t pc = 0; pc < fn.code.size(); ++pc) {
    if (CanFault(fn.code[pc].op) &&
        covered.count(static_cast<int>(pc)) == 0) {
      return Status::NotSupported(StrPrintf(
          "instruction at pc %zu (%s) is not covered by the recovered "
          "expressions", pc,
          std::string(mril::GetOpcodeInfo(fn.code[pc].op).mnemonic)
              .c_str()));
    }
  }

  // Field usage, for the kernel's record-arity gate and for Describe.
  int num_fields = program.value_schema.opaque()
                       ? 1
                       : program.value_schema.num_fields();
  std::vector<bool> used(static_cast<size_t>(num_fields), false);
  for (const ExprRef& e : kernel_exprs) {
    if (!analysis::CollectUsedFields(e, &used)) {
      shape.whole_record = true;
    }
  }
  for (size_t i = 0; i < used.size(); ++i) {
    if (used[i]) shape.used_fields.push_back(static_cast<int>(i));
  }
  return shape;
}

}  // namespace manimal::codegen
