// The benchmark MapReduce programs from the paper's evaluation:
// the four Pavlo et al. tasks (§4.1, Table 1/2) re-expressed in MRIL —
// including the quirks that shape Table 1's recall matrix — plus the
// single-optimization microbenchmark programs of §4.3/Appendix D and
// the §2.1/Figure 2 illustration programs.

#ifndef MANIMAL_WORKLOADS_PAVLO_H_
#define MANIMAL_WORKLOADS_PAVLO_H_

#include <cstdint>

#include "mril/program.h"

namespace manimal::workloads {

// Benchmark 1 — Selection: SELECT pageURL, pageRank FROM Rankings
// WHERE pageRank > threshold. The input uses the custom AbstractTuple
// serialization (opaque blobs), so field structure is invisible to the
// analyzer: selection is still detected (through the functional
// opaque.get_* accessors), but projection and delta-compression are
// not — reproducing Table 1's two Undetected cells.
mril::Program Benchmark1Selection(int64_t rank_threshold);

// Benchmark 2 — Aggregation: SELECT sourceIP, SUM(adRevenue) FROM
// UserVisits GROUP BY sourceIP. No selection; projection (2 of 9
// fields used) and delta-compression both detectable.
mril::Program Benchmark2Aggregation();

// Benchmark 3 — Join, phase 1 over UserVisits: the map imposes the
// visitDate range predicate that (per §4.2) "removes all but 0.095% of
// the UserVisits data", emits the full tuple keyed by destURL, and the
// reduce aggregates adRevenue. Full-tuple emission means no projection
// opportunity (Table 1: Not Present).
mril::Program Benchmark3Join(int64_t date_lo, int64_t date_hi);

// Benchmark 4 — UDF aggregation: tokenizes document contents, filters
// candidate URLs through a Hashtable (the class the analyzer has no
// builtin knowledge of, §4.1) plus loop-carried control flow, and
// counts inlinks. Selection goes Undetected.
mril::Program Benchmark4UdfAggregation();

// §2.1 example: map(k, WebPage v) { if (v.rank > 1) emit(k, 1); } —
// the program behind Figures 4 and 5.
mril::Program ExampleRankFilter(int64_t threshold);

// Figure 2: output depends on member variable numMapsRun; the analyzer
// must refuse to optimize.
mril::Program Figure2Unsafe(int64_t threshold);

// §4.3 / Table 3: SELECT pageRank, COUNT(url) FROM WebPages WHERE
// pageRank > threshold GROUP BY pageRank.
mril::Program SelectionCountQuery(int64_t threshold);

// Appendix D / Table 4: SELECT url, pageRank FROM WebPages WHERE
// pageRank > threshold (projection microbenchmark; content unused).
mril::Program ProjectionQuery(int64_t threshold);

// Appendix D / Table 5: SELECT destURL, SUM(duration) FROM UserVisits
// GROUP BY destURL (delta-compression microbenchmark).
mril::Program DurationSumQuery();

// Appendix D / Table 6: duration sums grouped by destURL where the
// URL itself never reaches the output — destURL is used only as the
// reduce key, making it direct-operation eligible.
mril::Program DirectOpQuery();

}  // namespace manimal::workloads

#endif  // MANIMAL_WORKLOADS_PAVLO_H_
