// Synthetic data generators modeled on Pavlo et al.'s tools (paper
// §4.2 / Appendix D): WebPages with Zipfian popularity, UserVisits
// with uniform-random fields and Zipf-chosen destURLs, Rankings in the
// custom AbstractTuple serialization, and text Documents embedding
// URLs for the UDF-aggregation task. Deterministic given the seed.

#ifndef MANIMAL_WORKLOADS_DATAGEN_H_
#define MANIMAL_WORKLOADS_DATAGEN_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace manimal::workloads {

struct GenStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
};

// The URL for page `i`, shared by all generators so destURLs join
// against WebPages/Rankings.
std::string PageUrl(uint64_t i);

struct WebPagesOptions {
  uint64_t num_pages = 100000;
  // Average length of the content field; actual lengths vary ±25%.
  int content_len = 512;
  // pageRank is uniform in [0, rank_range) so selectivity thresholds
  // are exact; destination popularity (in UserVisits) is the Zipfian
  // part of the web model.
  int64_t rank_range = 100000;
  uint64_t seed = 42;
};
Result<GenStats> GenerateWebPages(const std::string& path,
                                  const WebPagesOptions& options);

struct UserVisitsOptions {
  uint64_t num_visits = 500000;
  uint64_t num_pages = 100000;  // destURL pool (Zipf-distributed)
  double zipf_theta = 0.8;
  // visitDate covers [epoch, epoch+range). By default it is uniform
  // random per record ("fields ... all uniformly picked at random",
  // paper Appendix D); `chronological` instead emits it in roughly
  // increasing order with local jitter, like a real access log — the
  // shape that makes delta-compression and per-block min/max skip
  // frames effective on date-range selections.
  int64_t date_range = 30 * 86400;          // 30 days of seconds
  int64_t date_epoch = 1'200'000'000;       // unix seconds
  bool chronological = false;
  int64_t revenue_range = 1'000'000;        // adRevenue cents [0, range)
  int64_t duration_range = 1000;
  uint64_t seed = 43;
};
Result<GenStats> GenerateUserVisits(const std::string& path,
                                    const UserVisitsOptions& options);

struct RankingsOptions {
  uint64_t num_pages = 100000;
  int64_t rank_range = 100000;  // pageRank uniform in [0, range)
  uint64_t seed = 44;
  // Benchmark 1 stores Rankings with the custom AbstractTuple
  // serialization (an opaque blob per record) — the very thing that
  // defeats the analyzer's projection/delta detection in Table 1.
  bool opaque_serialization = true;
};
Result<GenStats> GenerateRankings(const std::string& path,
                                  const RankingsOptions& options);

struct DocumentsOptions {
  uint64_t num_docs = 20000;
  int words_per_doc = 80;
  // Every ~k-th word is an embedded URL from the page pool.
  int url_every = 8;
  uint64_t num_pages = 100000;
  double zipf_theta = 0.8;
  uint64_t seed = 45;
};
Result<GenStats> GenerateDocuments(const std::string& path,
                                   const DocumentsOptions& options);

}  // namespace manimal::workloads

#endif  // MANIMAL_WORKLOADS_DATAGEN_H_
