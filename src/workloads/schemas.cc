#include "workloads/schemas.h"

namespace manimal::workloads {

Schema WebPagesSchema() {
  return Schema({{"url", FieldType::kStr},
                 {"rank", FieldType::kI64},
                 {"content", FieldType::kStr}});
}

Schema UserVisitsSchema() {
  return Schema({{"sourceIP", FieldType::kStr},
                 {"destURL", FieldType::kStr},
                 {"visitDate", FieldType::kI64},
                 {"adRevenue", FieldType::kI64},
                 {"userAgent", FieldType::kStr},
                 {"countryCode", FieldType::kStr},
                 {"languageCode", FieldType::kStr},
                 {"searchWord", FieldType::kStr},
                 {"duration", FieldType::kI64}});
}

Schema DocumentsSchema() {
  return Schema({{"url", FieldType::kStr},
                 {"contents", FieldType::kStr}});
}

}  // namespace manimal::workloads
