#include "workloads/datagen.h"

#include <algorithm>

#include "columnar/seqfile.h"
#include "common/random.h"
#include "common/strings.h"
#include "serde/record_codec.h"
#include "workloads/schemas.h"

namespace manimal::workloads {

using columnar::PlainMeta;
using columnar::SeqFileWriter;

std::string PageUrl(uint64_t i) {
  return StrPrintf("http://www.site%llu.example.com/page.html",
                   static_cast<unsigned long long>(i));
}

Result<GenStats> GenerateWebPages(const std::string& path,
                                  const WebPagesOptions& options) {
  Rng rng(options.seed);
  MANIMAL_ASSIGN_OR_RETURN(
      std::unique_ptr<SeqFileWriter> writer,
      SeqFileWriter::Create(path, PlainMeta(WebPagesSchema())));
  for (uint64_t i = 0; i < options.num_pages; ++i) {
    int len = options.content_len / 2 +
              static_cast<int>(rng.Uniform(
                  std::max(1, options.content_len)));
    Record record = {
        Value::Str(PageUrl(i)),
        Value::I64(rng.UniformRange(0, options.rank_range - 1)),
        Value::Str(rng.AsciiString(len)),
    };
    MANIMAL_RETURN_IF_ERROR(writer->Append(record));
  }
  GenStats stats;
  stats.records = writer->num_records();
  MANIMAL_ASSIGN_OR_RETURN(stats.bytes, writer->Finish());
  return stats;
}

Result<GenStats> GenerateUserVisits(const std::string& path,
                                    const UserVisitsOptions& options) {
  Rng rng(options.seed);
  ZipfSampler zipf(options.num_pages, options.zipf_theta);
  // Realistic-length user-agent strings (they dominate UserVisits row
  // width in practice, which is what makes projection profitable).
  static const char* kAgents[] = {
      "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
      "(KHTML, like Gecko) Chrome/89.0.4389.90 Safari/537.36",
      "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7) "
      "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/14.0 Safari/605",
      "Mozilla/5.0 (X11; Linux x86_64; rv:86.0) Gecko/20100101 "
      "Firefox/86.0",
      "Mozilla/5.0 (iPhone; CPU iPhone OS 14_4 like Mac OS X) "
      "AppleWebKit/605.1.15 (KHTML, like Gecko) Mobile/15E148",
  };
  static const char* kCountries[] = {"USA", "DEU", "JPN", "BRA", "IND"};
  static const char* kLanguages[] = {"en", "de", "ja", "pt", "hi"};
  MANIMAL_ASSIGN_OR_RETURN(
      std::unique_ptr<SeqFileWriter> writer,
      SeqFileWriter::Create(path, PlainMeta(UserVisitsSchema())));
  for (uint64_t i = 0; i < options.num_visits; ++i) {
    uint64_t page = zipf.Sample(&rng) - 1;
    // "Fields ... all uniformly picked at random from real-world data
    // sets" (paper Appendix D) — including visitDate, so date-range
    // selections hit records scattered across the file. The
    // chronological mode is the access-log alternative: dates advance
    // with the record ordinal, jittered within a small local window,
    // so blocks partition the date range.
    int64_t date;
    if (options.chronological) {
      const int64_t pos = static_cast<int64_t>(
          static_cast<double>(i) * static_cast<double>(options.date_range) /
          static_cast<double>(options.num_visits));
      const int64_t window =
          std::max<int64_t>(1, options.date_range / 500);
      date = options.date_epoch + pos +
             rng.UniformRange(0, window - 1) - window / 2;
      date = std::max(options.date_epoch,
                      std::min(date, options.date_epoch +
                                         options.date_range - 1));
    } else {
      date = options.date_epoch +
             rng.UniformRange(0, options.date_range - 1);
    }
    Record record = {
        Value::Str(rng.IpAddress()),
        Value::Str(PageUrl(page)),
        Value::I64(date),
        Value::I64(rng.UniformRange(0, options.revenue_range - 1)),
        Value::Str(kAgents[rng.Uniform(4)]),
        Value::Str(kCountries[rng.Uniform(5)]),
        Value::Str(kLanguages[rng.Uniform(5)]),
        Value::Str(rng.AsciiString(8)),
        Value::I64(rng.UniformRange(1, options.duration_range)),
    };
    MANIMAL_RETURN_IF_ERROR(writer->Append(record));
  }
  GenStats stats;
  stats.records = writer->num_records();
  MANIMAL_ASSIGN_OR_RETURN(stats.bytes, writer->Finish());
  return stats;
}

Result<GenStats> GenerateRankings(const std::string& path,
                                  const RankingsOptions& options) {
  Rng rng(options.seed);
  Schema file_schema = options.opaque_serialization
                           ? Schema::Opaque()
                           : Schema({{"pageURL", FieldType::kStr},
                                     {"pageRank", FieldType::kI64},
                                     {"avgDuration", FieldType::kI64}});
  MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<SeqFileWriter> writer,
                           SeqFileWriter::Create(path,
                                                 PlainMeta(file_schema)));
  for (uint64_t i = 0; i < options.num_pages; ++i) {
    Record logical = {
        Value::Str(PageUrl(i)),
        Value::I64(rng.UniformRange(0, options.rank_range - 1)),
        Value::I64(rng.UniformRange(1, 300)),
    };
    if (options.opaque_serialization) {
      MANIMAL_ASSIGN_OR_RETURN(std::string blob,
                               OpaqueTupleCodec::Pack(logical));
      Record stored = {Value::Str(std::move(blob))};
      MANIMAL_RETURN_IF_ERROR(writer->Append(stored));
    } else {
      MANIMAL_RETURN_IF_ERROR(writer->Append(logical));
    }
  }
  GenStats stats;
  stats.records = writer->num_records();
  MANIMAL_ASSIGN_OR_RETURN(stats.bytes, writer->Finish());
  return stats;
}

Result<GenStats> GenerateDocuments(const std::string& path,
                                   const DocumentsOptions& options) {
  Rng rng(options.seed);
  ZipfSampler zipf(options.num_pages, options.zipf_theta);
  MANIMAL_ASSIGN_OR_RETURN(
      std::unique_ptr<SeqFileWriter> writer,
      SeqFileWriter::Create(path, PlainMeta(DocumentsSchema())));
  for (uint64_t i = 0; i < options.num_docs; ++i) {
    std::string contents;
    for (int w = 0; w < options.words_per_doc; ++w) {
      if (w) contents += ' ';
      if (options.url_every > 0 && w % options.url_every == 0) {
        contents += PageUrl(zipf.Sample(&rng) - 1);
      } else {
        contents += rng.AsciiString(3 + rng.Uniform(8));
      }
    }
    Record record = {Value::Str(PageUrl(i % options.num_pages)),
                     Value::Str(std::move(contents))};
    MANIMAL_RETURN_IF_ERROR(writer->Append(record));
  }
  GenStats stats;
  stats.records = writer->num_records();
  MANIMAL_ASSIGN_OR_RETURN(stats.bytes, writer->Finish());
  return stats;
}

}  // namespace manimal::workloads
