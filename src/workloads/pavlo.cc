#include "workloads/pavlo.h"

#include "mril/builder.h"
#include "workloads/schemas.h"

namespace manimal::workloads {

using mril::FunctionBuilder;
using mril::ProgramBuilder;

namespace {

// Appends a sum-the-values reduce body: emits (key, sum(values)).
void BuildSumReduce(FunctionBuilder& r) {
  int i = r.NewLocal();
  int n = r.NewLocal();
  int sum = r.NewLocal();
  r.LoadI64(0).StoreLocal(i);
  r.LoadI64(0).StoreLocal(sum);
  r.LoadParam(1).Call("list.len").StoreLocal(n);
  r.Label("loop");
  r.LoadLocal(i).LoadLocal(n).CmpGe().JmpIfTrue("done");
  r.LoadLocal(sum)
      .LoadParam(1)
      .LoadLocal(i)
      .Call("list.get")
      .Add()
      .StoreLocal(sum);
  r.LoadLocal(i).LoadI64(1).Add().StoreLocal(i);
  r.Jmp("loop");
  r.Label("done");
  r.LoadParam(0).LoadLocal(sum).Emit().Ret();
}

}  // namespace

mril::Program Benchmark1Selection(int64_t rank_threshold) {
  ProgramBuilder b("pavlo-b1-selection");
  b.SetKeyType(FieldType::kI64).SetOpaqueValue();
  FunctionBuilder& m = b.Map();
  int rank = m.NewLocal();
  // int r = tuple.getInt(1);  (AbstractTuple accessor)
  m.LoadParam(1).LoadI64(kRankPageRank).Call("opaque.get_i64").StoreLocal(
      rank);
  m.LoadLocal(rank).LoadI64(rank_threshold).CmpGt().JmpIfFalse("end");
  // emit(tuple.getString(0), r)
  m.LoadParam(1).LoadI64(kRankPageUrl).Call("opaque.get_str");
  m.LoadLocal(rank);
  m.Emit();
  m.Label("end").Ret();
  return b.Build();
}

mril::Program Benchmark2Aggregation() {
  ProgramBuilder b("pavlo-b2-aggregation");
  b.SetKeyType(FieldType::kI64).SetValueSchema(UserVisitsSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("sourceIP");
  m.LoadParam(1).GetField("adRevenue");
  m.Emit().Ret();
  BuildSumReduce(b.Reduce());
  return b.Build();
}

mril::Program Benchmark3Join(int64_t date_lo, int64_t date_hi) {
  ProgramBuilder b("pavlo-b3-join");
  b.SetKeyType(FieldType::kI64).SetValueSchema(UserVisitsSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("visitDate").LoadI64(date_lo).CmpGe().JmpIfFalse(
      "end");
  m.LoadParam(1).GetField("visitDate").LoadI64(date_hi).CmpLe().JmpIfFalse(
      "end");
  // emit(destURL, whole tuple): the join's build side needs every
  // field downstream, so nothing can be projected away.
  m.LoadParam(1).GetField("destURL");
  m.LoadParam(1);
  m.Emit();
  m.Label("end").Ret();

  // reduce: sum adRevenue over the joined tuples for this destURL.
  FunctionBuilder& r = b.Reduce();
  int i = r.NewLocal();
  int n = r.NewLocal();
  int sum = r.NewLocal();
  r.LoadI64(0).StoreLocal(i);
  r.LoadI64(0).StoreLocal(sum);
  r.LoadParam(1).Call("list.len").StoreLocal(n);
  r.Label("loop");
  r.LoadLocal(i).LoadLocal(n).CmpGe().JmpIfTrue("done");
  r.LoadLocal(sum)
      .LoadParam(1)
      .LoadLocal(i)
      .Call("list.get")  // the UserVisits tuple
      .LoadI64(kUvAdRevenue)
      .Call("list.get")  // its adRevenue field
      .Add()
      .StoreLocal(sum);
  r.LoadLocal(i).LoadI64(1).Add().StoreLocal(i);
  r.Jmp("loop");
  r.Label("done");
  r.LoadParam(0).LoadLocal(sum).Emit().Ret();
  return b.Build();
}

mril::Program Benchmark4UdfAggregation() {
  ProgramBuilder b("pavlo-b4-udf-aggregation");
  b.SetKeyType(FieldType::kI64).SetValueSchema(DocumentsSchema());
  FunctionBuilder& m = b.Map();
  int ht = m.NewLocal();
  int i = m.NewLocal();
  int n = m.NewLocal();
  int w = m.NewLocal();
  m.Call("ht.new").StoreLocal(ht);
  m.LoadI64(0).StoreLocal(i);
  m.LoadParam(1).GetField("contents").Call("str.word_count").StoreLocal(n);
  m.Label("loop");
  m.LoadLocal(i).LoadLocal(n).CmpGe().JmpIfTrue("done");
  m.LoadParam(1)
      .GetField("contents")
      .LoadLocal(i)
      .Call("str.word_at")
      .StoreLocal(w);
  // Candidate URLs only.
  m.LoadLocal(w).LoadStr("http://").Call("str.starts_with").JmpIfFalse(
      "next");
  // Skip self-links (this is the use of the url field that leaves no
  // projection opportunity).
  m.LoadLocal(w).LoadParam(1).GetField("url").Call("str.equals").JmpIfTrue(
      "next");
  // Deduplicate per document through a Hashtable — the filtering step
  // the analyzer cannot see through (§4.1).
  m.LoadLocal(ht).LoadLocal(w).Call("ht.contains").JmpIfTrue("next");
  m.LoadLocal(ht).LoadLocal(w).LoadConst(Value::Bool(true)).Call("ht.put")
      .Pop();
  m.LoadLocal(w).LoadI64(1).Emit();
  m.Label("next");
  m.LoadLocal(i).LoadI64(1).Add().StoreLocal(i);
  m.Jmp("loop");
  m.Label("done").Ret();
  BuildSumReduce(b.Reduce());
  return b.Build();
}

mril::Program ExampleRankFilter(int64_t threshold) {
  ProgramBuilder b("example-rank-filter");
  b.SetKeyType(FieldType::kI64).SetValueSchema(WebPagesSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(threshold).CmpGt().JmpIfFalse(
      "end");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  return b.Build();
}

mril::Program Figure2Unsafe(int64_t threshold) {
  ProgramBuilder b("figure2-unsafe");
  b.SetKeyType(FieldType::kI64).SetValueSchema(WebPagesSchema());
  b.AddMember("numMapsRun", Value::I64(0));
  FunctionBuilder& m = b.Map();
  // numMapsRun++
  m.LoadMember("numMapsRun").LoadI64(1).Add().StoreMember("numMapsRun");
  // if (v.rank > T || numMapsRun > 200) emit(k, 1)
  m.LoadParam(1).GetField("rank").LoadI64(threshold).CmpGt().JmpIfTrue(
      "emit");
  m.LoadMember("numMapsRun").LoadI64(200).CmpGt().JmpIfFalse("end");
  m.Label("emit");
  m.LoadParam(0).LoadI64(1).Emit();
  m.Label("end").Ret();
  return b.Build();
}

mril::Program SelectionCountQuery(int64_t threshold) {
  ProgramBuilder b("selection-count-query");
  b.SetKeyType(FieldType::kI64).SetValueSchema(WebPagesSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(threshold).CmpGt().JmpIfFalse(
      "end");
  m.LoadParam(1).GetField("rank");
  m.LoadI64(1);
  m.Emit();
  m.Label("end").Ret();
  BuildSumReduce(b.Reduce());
  return b.Build();
}

mril::Program ProjectionQuery(int64_t threshold) {
  ProgramBuilder b("projection-query");
  b.SetKeyType(FieldType::kI64).SetValueSchema(WebPagesSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("rank").LoadI64(threshold).CmpGt().JmpIfFalse(
      "end");
  m.LoadParam(1).GetField("url");
  m.LoadParam(1).GetField("rank");
  m.Emit();
  m.Label("end").Ret();
  return b.Build();
}

mril::Program DurationSumQuery() {
  ProgramBuilder b("duration-sum-query");
  b.SetKeyType(FieldType::kI64).SetValueSchema(UserVisitsSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("destURL");
  m.LoadParam(1).GetField("duration");
  m.Emit().Ret();
  BuildSumReduce(b.Reduce());
  return b.Build();
}

mril::Program DirectOpQuery() {
  ProgramBuilder b("directop-query");
  b.SetKeyType(FieldType::kI64).SetValueSchema(UserVisitsSchema());
  FunctionBuilder& m = b.Map();
  m.LoadParam(1).GetField("destURL");
  m.LoadParam(1).GetField("duration");
  m.Emit().Ret();
  // The reduce sums durations but never touches its key parameter —
  // the group-by URL stays compressed end to end (paper Table 6: the
  // program "does not in the end emit the URL").
  FunctionBuilder& r = b.Reduce();
  int i = r.NewLocal();
  int n = r.NewLocal();
  int sum = r.NewLocal();
  r.LoadI64(0).StoreLocal(i);
  r.LoadI64(0).StoreLocal(sum);
  r.LoadParam(1).Call("list.len").StoreLocal(n);
  r.Label("loop");
  r.LoadLocal(i).LoadLocal(n).CmpGe().JmpIfTrue("done");
  r.LoadLocal(sum)
      .LoadParam(1)
      .LoadLocal(i)
      .Call("list.get")
      .Add()
      .StoreLocal(sum);
  r.LoadLocal(i).LoadI64(1).Add().StoreLocal(i);
  r.Jmp("loop");
  r.Label("done");
  r.LoadLocal(sum).LoadI64(1).Emit().Ret();
  return b.Build();
}

}  // namespace manimal::workloads
