// Test-data schemas from Pavlo et al. (paper Figure 7 and §4.1),
// with the minor typing simplifications the paper itself made.

#ifndef MANIMAL_WORKLOADS_SCHEMAS_H_
#define MANIMAL_WORKLOADS_SCHEMAS_H_

#include "serde/schema.h"

namespace manimal::workloads {

// WebPages(url STR, rank I64, content STR) — Figure 7.
Schema WebPagesSchema();

// UserVisits(sourceIP, destURL, visitDate, adRevenue, userAgent,
// countryCode, languageCode, searchWord, duration) — Figure 7.
Schema UserVisitsSchema();

// Field indexes of UserVisits, for readability.
inline constexpr int kUvSourceIp = 0;
inline constexpr int kUvDestUrl = 1;
inline constexpr int kUvVisitDate = 2;
inline constexpr int kUvAdRevenue = 3;
inline constexpr int kUvUserAgent = 4;
inline constexpr int kUvCountryCode = 5;
inline constexpr int kUvLanguageCode = 6;
inline constexpr int kUvSearchWord = 7;
inline constexpr int kUvDuration = 8;

// Rankings(pageURL STR, pageRank I64, avgDuration I64) — the Pavlo
// selection benchmark's input. Benchmark 1 serializes these with the
// custom AbstractTuple format, so its *file* schema is opaque; this is
// the logical layout inside the blob.
inline constexpr int kRankPageUrl = 0;
inline constexpr int kRankPageRank = 1;
inline constexpr int kRankAvgDuration = 2;

// Documents(url STR, contents STR) — the UDF-aggregation benchmark's
// input.
Schema DocumentsSchema();

// Field indexes of WebPages.
inline constexpr int kWpUrl = 0;
inline constexpr int kWpRank = 1;
inline constexpr int kWpContent = 2;

}  // namespace manimal::workloads

#endif  // MANIMAL_WORKLOADS_SCHEMAS_H_
