#include "index/btree.h"

#include <algorithm>

#include "common/check.h"
#include "common/coding.h"
#include "common/strings.h"

namespace manimal::index {

namespace {
constexpr uint32_t kBTreeMagic = 0xB7EE2024;
constexpr size_t kFooterSize = 8 + 4 + 8 + 4;
}  // namespace

// ---------------- builder ----------------

Result<std::unique_ptr<BTreeBuilder>> BTreeBuilder::Create(
    const std::string& path, Options options) {
  MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                           WritableFile::Create(path));
  return std::unique_ptr<BTreeBuilder>(
      new BTreeBuilder(std::move(f), options));
}

Status BTreeBuilder::Add(std::string_view key, std::string_view payload) {
  if (num_entries_ > 0 && key < last_key_) {
    return Status::InvalidArgument(
        "B+Tree bulk load requires non-decreasing keys");
  }
  if (leaf_count_ == 0) leaf_first_key_.assign(key.data(), key.size());
  // Prefix-compress against the previous key in this leaf.
  size_t shared = 0;
  if (leaf_count_ > 0) {
    size_t limit = std::min(key.size(), last_key_.size());
    while (shared < limit && key[shared] == last_key_[shared]) ++shared;
  }
  PutVarint32(&leaf_buf_, static_cast<uint32_t>(shared));
  PutVarint32(&leaf_buf_, static_cast<uint32_t>(key.size() - shared));
  leaf_buf_.append(key.substr(shared));
  PutVarint32(&leaf_buf_, static_cast<uint32_t>(payload.size()));
  leaf_buf_.append(payload);
  ++leaf_count_;
  ++num_entries_;
  last_key_.assign(key.data(), key.size());
  if (leaf_buf_.size() >= options_.target_node_bytes) {
    MANIMAL_RETURN_IF_ERROR(FlushLeaf());
  }
  return Status::OK();
}

Status BTreeBuilder::FlushLeaf() {
  if (leaf_count_ == 0) return Status::OK();
  std::string body;
  PutVarint32(&body, leaf_count_);
  body += leaf_buf_;
  // Leaves are buffered one deep: a leaf's next-pointer is only known
  // to be 0 or non-0 once we see whether another leaf follows, and the
  // file is written append-only.
  pending_leaves_.push_back(std::move(body));
  pending_first_keys_.push_back(leaf_first_key_);
  pending_counts_.push_back(leaf_count_);
  leaf_buf_.clear();
  leaf_count_ = 0;
  // Flush all but the newest pending leaf (its next pointer is now
  // known to exist).
  while (pending_leaves_.size() > 1) {
    MANIMAL_RETURN_IF_ERROR(WritePendingLeaf(/*has_next=*/true));
  }
  return Status::OK();
}

Status BTreeBuilder::WritePendingLeaf(bool has_next) {
  MANIMAL_CHECK(!pending_leaves_.empty());
  std::string body = std::move(pending_leaves_.front());
  pending_leaves_.pop_front();
  std::string first_key = std::move(pending_first_keys_.front());
  pending_first_keys_.pop_front();
  uint64_t entry_count = pending_counts_.front();
  pending_counts_.pop_front();

  uint64_t my_offset = offset_;
  uint64_t node_size = 4 + body.size() + 8;
  uint64_t next_offset = has_next ? my_offset + node_size : 0;

  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(body.size() + 8));
  out += body;
  PutFixed64(&out, next_offset);
  MANIMAL_RETURN_IF_ERROR(file_->Append(out));
  offset_ += out.size();
  level0_.push_back(
      ChildRef{std::move(first_key), my_offset, entry_count});
  return Status::OK();
}

Result<uint64_t> BTreeBuilder::Finish() {
  MANIMAL_RETURN_IF_ERROR(FlushLeaf());
  while (!pending_leaves_.empty()) {
    MANIMAL_RETURN_IF_ERROR(
        WritePendingLeaf(/*has_next=*/pending_leaves_.size() > 1));
  }
  if (level0_.empty()) {
    // Empty tree: write a single empty leaf so readers have a root.
    std::string body;
    PutVarint32(&body, 0);
    std::string out;
    PutFixed32(&out, static_cast<uint32_t>(body.size() + 8));
    out += body;
    PutFixed64(&out, 0);
    MANIMAL_RETURN_IF_ERROR(file_->Append(out));
    level0_.push_back(ChildRef{"", offset_, 0});
    offset_ += out.size();
  }

  // Build internal levels bottom-up.
  std::vector<ChildRef> level = std::move(level0_);
  int height = 1;
  while (level.size() > 1) {
    std::vector<ChildRef> parent_level;
    std::string body;
    uint32_t count = 0;
    uint64_t entries_in_node = 0;
    std::string first_key_of_node;
    auto flush_internal = [&]() -> Status {
      if (count == 0) return Status::OK();
      std::string full;
      PutVarint32(&full, count);
      full += body;
      std::string out;
      PutFixed32(&out, static_cast<uint32_t>(full.size()));
      out += full;
      MANIMAL_RETURN_IF_ERROR(file_->Append(out));
      parent_level.push_back(
          ChildRef{first_key_of_node, offset_, entries_in_node});
      offset_ += out.size();
      body.clear();
      count = 0;
      entries_in_node = 0;
      return Status::OK();
    };
    for (const ChildRef& child : level) {
      if (count == 0) first_key_of_node = child.first_key;
      PutVarint32(&body, static_cast<uint32_t>(child.first_key.size()));
      body += child.first_key;
      PutFixed64(&body, child.offset);
      PutVarint64(&body, child.entry_count);
      ++count;
      entries_in_node += child.entry_count;
      if (body.size() >= options_.target_node_bytes) {
        MANIMAL_RETURN_IF_ERROR(flush_internal());
      }
    }
    MANIMAL_RETURN_IF_ERROR(flush_internal());
    level = std::move(parent_level);
    ++height;
  }

  // Footer.
  std::string footer;
  PutFixed64(&footer, level[0].offset);
  PutFixed32(&footer, static_cast<uint32_t>(height));
  PutFixed64(&footer, num_entries_);
  PutFixed32(&footer, kBTreeMagic);
  MANIMAL_RETURN_IF_ERROR(file_->Append(footer));
  offset_ += footer.size();
  MANIMAL_RETURN_IF_ERROR(file_->Close());
  return offset_;
}

// ---------------- reader ----------------

Result<std::unique_ptr<BTreeReader>> BTreeReader::Open(
    const std::string& path) {
  MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> f,
                           RandomAccessFile::Open(path));
  auto reader = std::unique_ptr<BTreeReader>(new BTreeReader(std::move(f)));
  MANIMAL_RETURN_IF_ERROR(reader->Init());
  return reader;
}

Status BTreeReader::Init() {
  if (file_->size() < kFooterSize) {
    return Status::Corruption("B+Tree file too small");
  }
  std::string footer;
  MANIMAL_RETURN_IF_ERROR(
      file_->ReadAt(file_->size() - kFooterSize, kFooterSize, &footer));
  std::string_view in = footer;
  uint64_t root = 0, entries = 0;
  uint32_t height = 0, magic = 0;
  MANIMAL_RETURN_IF_ERROR(GetFixed64(&in, &root));
  MANIMAL_RETURN_IF_ERROR(GetFixed32(&in, &height));
  MANIMAL_RETURN_IF_ERROR(GetFixed64(&in, &entries));
  MANIMAL_RETURN_IF_ERROR(GetFixed32(&in, &magic));
  if (magic != kBTreeMagic) return Status::Corruption("bad B+Tree magic");
  root_offset_ = root;
  height_ = static_cast<int>(height);
  num_entries_ = entries;
  first_leaf_offset_ = 0;  // leaves start at file offset 0
  return Status::OK();
}

Status BTreeReader::ReadNode(uint64_t offset, std::string* out) const {
  std::string len_buf;
  MANIMAL_RETURN_IF_ERROR(file_->ReadAt(offset, 4, &len_buf));
  uint32_t len = DecodeFixed32(len_buf.data());
  if (len > (64u << 20)) return Status::Corruption("implausible node size");
  return file_->ReadAt(offset + 4, len, out);
}

Result<uint64_t> BTreeReader::FindLeaf(std::string_view key) const {
  uint64_t offset = root_offset_;
  for (int level = height_; level > 1; --level) {
    std::string node;
    MANIMAL_RETURN_IF_ERROR(ReadNode(offset, &node));
    std::string_view in = node;
    uint32_t count = 0;
    MANIMAL_RETURN_IF_ERROR(GetVarint32(&in, &count));
    if (count == 0) return Status::Corruption("empty internal node");
    uint64_t chosen = 0;
    bool have = false;
    for (uint32_t i = 0; i < count; ++i) {
      std::string_view first_key;
      MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(&in, &first_key));
      uint64_t child = 0;
      MANIMAL_RETURN_IF_ERROR(GetFixed64(&in, &child));
      uint64_t entry_count = 0;
      MANIMAL_RETURN_IF_ERROR(GetVarint64(&in, &entry_count));
      // Choose the last child whose first key is strictly below the
      // target: a run of duplicate keys can begin in the child BEFORE
      // the one whose first_key equals the target, and Seek must land
      // at the earliest occurrence (the iterator then walks forward
      // through the leaf chain).
      if (i == 0 || first_key < key) {
        chosen = child;
        have = true;
      } else {
        break;
      }
    }
    MANIMAL_CHECK(have);
    offset = chosen;
  }
  return offset;
}

Status BTreeReader::Iterator::LoadLeaf(uint64_t offset) {
  MANIMAL_RETURN_IF_ERROR(reader_->ReadNode(offset, &leaf_data_));
  if (leaf_data_.size() < 8) return Status::Corruption("short leaf");
  next_leaf_ = DecodeFixed64(leaf_data_.data() + leaf_data_.size() - 8);
  std::string_view in(leaf_data_.data(), leaf_data_.size() - 8);
  uint32_t count = 0;
  MANIMAL_RETURN_IF_ERROR(GetVarint32(&in, &count));
  remaining_in_leaf_ = count;
  pos_ = leaf_data_.size() - 8 - in.size();
  return Status::OK();
}

Status BTreeReader::Iterator::Next() {
  for (;;) {
    if (remaining_in_leaf_ > 0) {
      std::string_view in(leaf_data_.data() + pos_,
                          leaf_data_.size() - 8 - pos_);
      uint32_t shared = 0, unshared = 0;
      MANIMAL_RETURN_IF_ERROR(GetVarint32(&in, &shared));
      MANIMAL_RETURN_IF_ERROR(GetVarint32(&in, &unshared));
      if (in.size() < unshared || shared > key_.size()) {
        return Status::Corruption("bad prefix-compressed leaf entry");
      }
      key_.resize(shared);
      key_.append(in.data(), unshared);
      in.remove_prefix(unshared);
      std::string_view payload;
      MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(&in, &payload));
      payload_.assign(payload.data(), payload.size());
      pos_ = leaf_data_.size() - 8 - in.size();
      --remaining_in_leaf_;
      valid_ = true;
      return Status::OK();
    }
    if (next_leaf_ == 0) {
      valid_ = false;
      return Status::OK();
    }
    MANIMAL_RETURN_IF_ERROR(LoadLeaf(next_leaf_));
  }
}

Result<BTreeReader::Iterator> BTreeReader::Seek(std::string_view key,
                                                bool inclusive) const {
  MANIMAL_ASSIGN_OR_RETURN(uint64_t leaf, FindLeaf(key));
  Iterator it(this);
  MANIMAL_RETURN_IF_ERROR(it.LoadLeaf(leaf));
  MANIMAL_RETURN_IF_ERROR(it.Next());
  while (it.Valid()) {
    if (inclusive ? it.key() >= key : it.key() > key) break;
    MANIMAL_RETURN_IF_ERROR(it.Next());
  }
  return it;
}

Result<std::vector<std::string>> BTreeReader::RootChildKeys() const {
  std::vector<std::string> keys;
  if (height_ <= 1) return keys;
  std::string node;
  MANIMAL_RETURN_IF_ERROR(ReadNode(root_offset_, &node));
  std::string_view in = node;
  uint32_t count = 0;
  MANIMAL_RETURN_IF_ERROR(GetVarint32(&in, &count));
  keys.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view first_key;
    MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(&in, &first_key));
    uint64_t child = 0;
    MANIMAL_RETURN_IF_ERROR(GetFixed64(&in, &child));
    uint64_t entry_count = 0;
    MANIMAL_RETURN_IF_ERROR(GetVarint64(&in, &entry_count));
    keys.emplace_back(first_key);
  }
  return keys;
}

// Fraction of the subtree rooted at `offset` (at `level`; 1 = leaf)
// whose keys fall in [lo, hi]. Interior nodes treat every child
// subtree as equal-sized; boundary children are descended into, so the
// estimate sharpens to leaf granularity along the range edges with
// only O(height) node reads per edge.
Result<double> BTreeReader::EstimateInNode(
    uint64_t offset, int level, const std::optional<std::string>& lo,
    const std::optional<std::string>& hi) const {
  std::string node;
  MANIMAL_RETURN_IF_ERROR(ReadNode(offset, &node));
  if (level <= 1) {
    // Leaf: count exactly. Prefix-compressed entries are reconstructed
    // the same way the iterator does.
    if (node.size() < 8) return Status::Corruption("short leaf");
    std::string_view in(node.data(), node.size() - 8);
    uint32_t count = 0;
    MANIMAL_RETURN_IF_ERROR(GetVarint32(&in, &count));
    if (count == 0) return 0.0;
    std::string key;
    uint32_t matched = 0;
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t shared = 0, unshared = 0;
      MANIMAL_RETURN_IF_ERROR(GetVarint32(&in, &shared));
      MANIMAL_RETURN_IF_ERROR(GetVarint32(&in, &unshared));
      if (in.size() < unshared || shared > key.size()) {
        return Status::Corruption("bad leaf entry");
      }
      key.resize(shared);
      key.append(in.data(), unshared);
      in.remove_prefix(unshared);
      std::string_view payload;
      MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(&in, &payload));
      bool ok = true;
      if (lo.has_value() && key < *lo) ok = false;
      if (hi.has_value() && key > *hi) ok = false;
      if (ok) ++matched;
    }
    return static_cast<double>(matched) / static_cast<double>(count);
  }

  // Internal node: weight children by their exact subtree entry
  // counts (this is a counted B+Tree).
  std::string_view in = node;
  uint32_t count = 0;
  MANIMAL_RETURN_IF_ERROR(GetVarint32(&in, &count));
  if (count == 0) return Status::Corruption("empty internal node");
  std::vector<std::string> first_keys;
  std::vector<uint64_t> offsets;
  std::vector<uint64_t> child_entries;
  first_keys.reserve(count);
  offsets.reserve(count);
  child_entries.reserve(count);
  uint64_t total_entries = 0;
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view first_key;
    MANIMAL_RETURN_IF_ERROR(GetLengthPrefixed(&in, &first_key));
    uint64_t child = 0;
    MANIMAL_RETURN_IF_ERROR(GetFixed64(&in, &child));
    uint64_t entry_count = 0;
    MANIMAL_RETURN_IF_ERROR(GetVarint64(&in, &entry_count));
    first_keys.emplace_back(first_key);
    offsets.push_back(child);
    child_entries.push_back(entry_count);
    total_entries += entry_count;
  }
  if (total_entries == 0) return 0.0;

  double matched = 0;
  for (uint32_t i = 0; i < count; ++i) {
    // Child i spans [first_keys[i], first_keys[i+1]) — the last
    // child's upper extent is unknown, so a lower bound beyond its
    // first key forces a descent.
    const std::string* next = i + 1 < count ? &first_keys[i + 1] : nullptr;
    bool disjoint_low =
        lo.has_value() && next != nullptr && *next <= *lo;
    bool disjoint_high = hi.has_value() && first_keys[i] > *hi;
    if (disjoint_low || disjoint_high) continue;
    bool cut_low = lo.has_value() && first_keys[i] < *lo;
    bool cut_high =
        hi.has_value() && (next == nullptr || *next > *hi);
    if (cut_low || cut_high) {
      MANIMAL_ASSIGN_OR_RETURN(
          double inner, EstimateInNode(offsets[i], level - 1, lo, hi));
      matched += inner * static_cast<double>(child_entries[i]);
    } else {
      matched += static_cast<double>(child_entries[i]);
    }
  }
  return matched / static_cast<double>(total_entries);
}

Result<double> BTreeReader::EstimateRangeFraction(
    const std::optional<std::string>& lo,
    const std::optional<std::string>& hi) const {
  if (num_entries_ == 0) return 0.0;
  return EstimateInNode(root_offset_, height_, lo, hi);
}

Result<BTreeReader::Iterator> BTreeReader::SeekToFirst() const {
  Iterator it(this);
  MANIMAL_RETURN_IF_ERROR(it.LoadLeaf(first_leaf_offset_));
  MANIMAL_RETURN_IF_ERROR(it.Next());
  return it;
}

}  // namespace manimal::index
