// The Manimal catalog (paper Fig. 1 / §2.2): a persistent registry of
// index artifacts keyed by (input file, index signature). The
// optimizer consults it to find an indexed version of a job's input;
// the admin's decision to actually run an index-generation program is
// what populates it.
//
// Stored as a tab-separated text manifest (one artifact per line) so
// it is inspectable with standard tools.

#ifndef MANIMAL_INDEX_CATALOG_H_
#define MANIMAL_INDEX_CATALOG_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace manimal::index {

struct CatalogEntry {
  std::string input_file;     // the raw data file this indexes
  std::string signature;      // IndexGenProgram::Signature()
  std::string artifact_path;  // the B+Tree / projected / encoded file
  std::string dict_path;      // dictionary sidecar ("" if none)
  // For B+Tree artifacts: the record file the tree's locators point
  // into — the raw input itself, or a projected sibling copy ("" for
  // non-B+Tree artifacts).
  std::string base_path;
  // Optional per-column statistics sidecar (src/stats/stats.h),
  // collected while the artifact was built ("" if none).
  std::string stats_path;
  uint64_t artifact_bytes = 0;
  uint64_t input_bytes = 0;
  // Block codec chain the artifact was written with ("" = raw blocks)
  // and its uncompressed block-body size — what a scan would decode
  // if no block were elided. The cost model prices bytes-decoded from
  // these separately from bytes-scanned (artifact_bytes).
  std::string codec_chain;
  uint64_t raw_bytes = 0;

  double SpaceOverhead() const {
    return input_bytes == 0
               ? 0.0
               : static_cast<double>(artifact_bytes) /
                     static_cast<double>(input_bytes);
  }
};

class Catalog {
 public:
  // Loads the manifest at `path` if it exists; otherwise starts empty.
  static Result<Catalog> Open(const std::string& path);

  // Registers (or replaces, matching input_file+signature) an entry
  // and persists the manifest.
  Status Register(const CatalogEntry& entry);

  // All artifacts available for an input file.
  std::vector<CatalogEntry> FindForInput(const std::string& input_file) const;

  // Exact lookup.
  std::optional<CatalogEntry> Find(const std::string& input_file,
                                   const std::string& signature) const;

  const std::vector<CatalogEntry>& entries() const { return entries_; }

 private:
  explicit Catalog(std::string path) : path_(std::move(path)) {}

  Status Save() const;

  std::string path_;
  std::vector<CatalogEntry> entries_;
};

}  // namespace manimal::index

#endif  // MANIMAL_INDEX_CATALOG_H_
