#include "index/catalog.h"

#include <cstdlib>

#include "common/env.h"
#include "common/strings.h"

namespace manimal::index {

Result<Catalog> Catalog::Open(const std::string& path) {
  Catalog catalog(path);
  if (!FileExists(path)) return catalog;
  MANIMAL_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  int line_no = 0;
  for (const std::string& line : SplitString(data, '\n')) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> cols = SplitString(line, '\t');
    // 7 columns is the pre-stats manifest layout; 8 adds stats_path;
    // 10 adds codec_chain + raw_bytes.
    if (cols.size() != 7 && cols.size() != 8 && cols.size() != 10) {
      return Status::Corruption(StrPrintf(
          "catalog %s line %d: expected 7, 8 or 10 columns, got %zu",
          path.c_str(), line_no, cols.size()));
    }
    CatalogEntry e;
    e.input_file = UnescapeField(cols[0]);
    e.signature = UnescapeField(cols[1]);
    e.artifact_path = UnescapeField(cols[2]);
    e.dict_path = UnescapeField(cols[3]);
    e.base_path = UnescapeField(cols[4]);
    e.artifact_bytes = std::strtoull(cols[5].c_str(), nullptr, 10);
    e.input_bytes = std::strtoull(cols[6].c_str(), nullptr, 10);
    if (cols.size() >= 8) e.stats_path = UnescapeField(cols[7]);
    if (cols.size() >= 10) {
      e.codec_chain = UnescapeField(cols[8]);
      e.raw_bytes = std::strtoull(cols[9].c_str(), nullptr, 10);
    }
    catalog.entries_.push_back(std::move(e));
  }
  return catalog;
}

Status Catalog::Register(const CatalogEntry& entry) {
  for (CatalogEntry& e : entries_) {
    if (e.input_file == entry.input_file &&
        e.signature == entry.signature) {
      e = entry;
      return Save();
    }
  }
  entries_.push_back(entry);
  return Save();
}

std::vector<CatalogEntry> Catalog::FindForInput(
    const std::string& input_file) const {
  std::vector<CatalogEntry> out;
  for (const CatalogEntry& e : entries_) {
    if (e.input_file == input_file) out.push_back(e);
  }
  return out;
}

std::optional<CatalogEntry> Catalog::Find(
    const std::string& input_file, const std::string& signature) const {
  for (const CatalogEntry& e : entries_) {
    if (e.input_file == input_file && e.signature == signature) return e;
  }
  return std::nullopt;
}

Status Catalog::Save() const {
  std::string out =
      "# Manimal catalog: input\tsignature\tartifact\tdict\tbase\t"
      "bytes\tinput_bytes\tstats\tcodec_chain\traw_bytes\n";
  for (const CatalogEntry& e : entries_) {
    out += EscapeField(e.input_file);
    out += '\t';
    out += EscapeField(e.signature);
    out += '\t';
    out += EscapeField(e.artifact_path);
    out += '\t';
    out += EscapeField(e.dict_path);
    out += '\t';
    out += EscapeField(e.base_path);
    out += '\t';
    out += std::to_string(e.artifact_bytes);
    out += '\t';
    out += std::to_string(e.input_bytes);
    out += '\t';
    out += EscapeField(e.stats_path);
    out += '\t';
    out += EscapeField(e.codec_chain);
    out += '\t';
    out += std::to_string(e.raw_bytes);
    out += '\n';
  }
  return WriteStringToFile(path_, out);
}

}  // namespace manimal::index
