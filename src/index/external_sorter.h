// External merge sorter over (key-bytes, payload-bytes) entries.
//
// Used by the shuffle (sorting intermediate map output by partition
// key) and by index generation (sorting records by index key before
// B+Tree bulk-load). Entries are buffered in memory, spilled as sorted
// runs when the budget is exceeded, and merged with a k-way heap.
// Comparison is plain memcmp on the key bytes — callers encode keys
// with the ordered key codec so byte order equals logical order.

#ifndef MANIMAL_INDEX_EXTERNAL_SORTER_H_
#define MANIMAL_INDEX_EXTERNAL_SORTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/status.h"

namespace manimal::index {

// Streaming view over sorted (key, payload) entries.
class SortedStream {
 public:
  virtual ~SortedStream() = default;

  virtual bool Valid() const = 0;
  virtual std::string_view key() const = 0;
  virtual std::string_view payload() const = 0;
  virtual Status Next() = 0;
};

class ExternalSorter {
 public:
  struct Options {
    std::string temp_dir;  // required: where spill runs live
    uint64_t memory_budget_bytes = 64u << 20;
    // Telemetry label: spills publish the "<label>.spilled_runs" /
    // "<label>.spilled_bytes" counters and "<label>.spill" trace
    // instants, so shuffle spills and index-build spills stay
    // distinguishable.
    std::string metric_label = "sort";
  };

  struct Stats {
    int spilled_runs = 0;
    uint64_t spilled_bytes = 0;
    uint64_t entries = 0;
  };

  explicit ExternalSorter(Options options);
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  Status Add(std::string_view key, std::string_view payload);

  // Finalizes input and returns the globally sorted stream. Call at
  // most once; the sorter must outlive the stream.
  Result<std::unique_ptr<SortedStream>> Finish();

  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    uint32_t key_offset;
    uint32_t key_len;
    uint32_t payload_offset;
    uint32_t payload_len;
  };

  Status SpillBuffer();

  Options options_;
  Stats stats_;
  std::string arena_;  // contiguous key/payload bytes of buffered entries
  std::vector<Entry> buffered_;
  std::vector<std::string> run_paths_;
  bool finished_ = false;
};

}  // namespace manimal::index

#endif  // MANIMAL_INDEX_EXTERNAL_SORTER_H_
