// External merge sorting over (key-bytes, payload-bytes) entries.
//
// Used by the shuffle (sorting intermediate map output by partition
// key) and by index generation (sorting records by index key before
// B+Tree bulk-load). Entries are buffered in memory, spilled as sorted
// runs when the budget is exceeded, and merged with a k-way heap over
// block-buffered run readers. Comparison is plain memcmp on the key
// bytes — callers encode keys with the ordered key codec so byte
// order equals logical order.
//
// The building blocks (SpillBuffer, MemoryRun, MergeSortedRuns) are
// exported so the shuffle can run its own per-mapper buffering and
// per-partition merges without funneling every emit through one
// sorter; ExternalSorter composes them into the classic single-owner
// sort used by index builds.

#ifndef MANIMAL_INDEX_EXTERNAL_SORTER_H_
#define MANIMAL_INDEX_EXTERNAL_SORTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/status.h"

namespace manimal::index {

// Streaming view over sorted (key, payload) entries.
class SortedStream {
 public:
  virtual ~SortedStream() = default;

  virtual bool Valid() const = 0;
  virtual std::string_view key() const = 0;
  virtual std::string_view payload() const = 0;
  virtual Status Next() = 0;
};

// A sorted run held in memory: a contiguous arena of key/payload
// bytes plus per-entry offsets, ordered by key.
struct MemoryRun {
  struct Entry {
    uint32_t key_offset;
    uint32_t key_len;
    uint32_t payload_offset;
    uint32_t payload_len;
  };
  std::string arena;
  std::vector<Entry> entries;
};

// Accumulates (key, payload) entries in a contiguous arena and turns
// them into sorted runs — on disk (SpillToFile) or in memory
// (TakeSortedRun). The in-memory stage of both the external sorter
// and the shuffle's per-mapper partition buffers. Not thread-safe.
// Offsets are 32-bit: callers must spill before the arena reaches
// 4 GiB (the sorter and shuffle spill far earlier).
class SpillBuffer {
 public:
  void Add(std::string_view key, std::string_view payload);

  bool empty() const { return entries_.empty(); }
  uint64_t buffered_bytes() const { return arena_.size(); }
  uint64_t num_entries() const { return entries_.size(); }

  // Sorts the buffered entries and writes them as a run file
  // (varint-length-prefixed key/payload pairs), clearing the buffer.
  // Returns the file's byte size. The run is written to a sibling
  // temp file and renamed into place, so `path` either holds a
  // complete run or does not exist — a task killed (or fault-injected)
  // mid-spill can never leave a torn run a later merge reads as valid.
  Result<uint64_t> SpillToFile(const std::string& path);

  // Sorts the buffered entries and moves them out as an in-memory
  // run, leaving the buffer empty.
  MemoryRun TakeSortedRun();

 private:
  void SortEntries();

  std::string arena_;
  std::vector<MemoryRun::Entry> entries_;
};

// K-way merge over spilled run files plus in-memory sorted runs,
// driven by a min-heap so large fan-ins stay O(log k) per entry. Run
// files (SpillToFile format) are read through block-buffered readers.
// Equal keys drain sources in order: run files first (in the given
// order), then memory runs. The caller keeps the run files on disk
// until the stream is destroyed.
Result<std::unique_ptr<SortedStream>> MergeSortedRuns(
    const std::vector<std::string>& run_paths,
    std::vector<MemoryRun> memory_runs);

// As MergeSortedRuns, but borrows the in-memory runs instead of
// consuming them: the caller keeps them alive (and unmodified) until
// the stream is destroyed, and may merge the same runs again later.
// This is what makes a failed reduce task retryable — the shuffle
// retains each partition's memory runs and can re-merge on demand.
Result<std::unique_ptr<SortedStream>> MergeSortedRunsBorrowed(
    const std::vector<std::string>& run_paths,
    std::vector<const MemoryRun*> memory_runs);

class ExternalSorter {
 public:
  struct Options {
    std::string temp_dir;  // required: where spill runs live
    uint64_t memory_budget_bytes = 64u << 20;
    // Telemetry label: spills publish the "<label>.spilled_runs" /
    // "<label>.spilled_bytes" counters and "<label>.spill" trace
    // instants, so shuffle spills and index-build spills stay
    // distinguishable.
    std::string metric_label = "sort";
  };

  struct Stats {
    int spilled_runs = 0;
    uint64_t spilled_bytes = 0;
    uint64_t entries = 0;
  };

  explicit ExternalSorter(Options options);
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  Status Add(std::string_view key, std::string_view payload);

  // Finalizes input and returns the globally sorted stream. Call at
  // most once; the sorter must outlive the stream.
  Result<std::unique_ptr<SortedStream>> Finish();

  const Stats& stats() const { return stats_; }

 private:
  Status SpillToRun();

  Options options_;
  Stats stats_;
  SpillBuffer buffer_;
  std::vector<std::string> run_paths_;
  bool finished_ = false;
};

}  // namespace manimal::index

#endif  // MANIMAL_INDEX_EXTERNAL_SORTER_H_
