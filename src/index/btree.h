// Disk-resident, bulk-loaded B+Tree (paper §2.1: "we can optimize such
// code at runtime by using a B+Tree to scan just the relevant portion
// of the input data").
//
// The tree is immutable after building — Manimal indexes are
// materialized views produced by index-generation jobs, rebuilt rather
// than updated, like relational indexes over append-only logs.
//
// File layout (little endian):
//   [leaf nodes][internal levels bottom-up][footer]
//   leaf:     varint n, n * (varint shared, varint unshared,
//             key_suffix, varint plen, payload),
//             fixed64 next_leaf_offset (0 = none)
//             — keys are prefix-compressed against their predecessor
//             within the leaf (sorted keys share long prefixes, which
//             keeps selection indexes small relative to the data).
//   internal: varint n, n * (varint klen, first_key, fixed64 child,
//             varint subtree_entry_count) — a counted B+Tree, so range
//             selectivity can be estimated exactly from the structure
//   footer:   fixed64 root_offset, fixed32 height (1 = root is leaf),
//             fixed64 num_entries, fixed32 magic
//
// Keys are opaque byte strings compared with memcmp; callers encode
// with the ordered key codec so byte order equals value order.

#ifndef MANIMAL_INDEX_BTREE_H_
#define MANIMAL_INDEX_BTREE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/status.h"

namespace manimal::index {

class BTreeBuilder {
 public:
  struct Options {
    // Flush a leaf/internal node when its encoded size reaches this.
    uint32_t target_node_bytes = 16 * 1024;
  };

  static Result<std::unique_ptr<BTreeBuilder>> Create(
      const std::string& path, Options options);
  static Result<std::unique_ptr<BTreeBuilder>> Create(
      const std::string& path) {
    return Create(path, Options());
  }

  // Keys must arrive in non-decreasing order (duplicates allowed).
  Status Add(std::string_view key, std::string_view payload);

  // Writes internal levels and the footer; returns total file size.
  Result<uint64_t> Finish();

  uint64_t num_entries() const { return num_entries_; }

 private:
  BTreeBuilder(std::unique_ptr<WritableFile> file, Options options)
      : options_(options), file_(std::move(file)) {}

  Status FlushLeaf();
  // Writes the oldest pending leaf; `has_next` controls its next-leaf
  // pointer (leaves are buffered one deep so the last leaf can carry
  // next=0 without seeking back).
  Status WritePendingLeaf(bool has_next);

  struct ChildRef {
    std::string first_key;
    uint64_t offset;
    uint64_t entry_count;
  };

  Options options_;
  std::unique_ptr<WritableFile> file_;
  uint64_t offset_ = 0;

  std::string leaf_buf_;
  uint32_t leaf_count_ = 0;
  std::string leaf_first_key_;
  std::string last_key_;
  uint64_t num_entries_ = 0;

  std::deque<std::string> pending_leaves_;
  std::deque<std::string> pending_first_keys_;
  std::deque<uint64_t> pending_counts_;

  // children of the level currently being accumulated, bottom-up
  std::vector<ChildRef> level0_;
};

class BTreeReader {
 public:
  static Result<std::unique_ptr<BTreeReader>> Open(const std::string& path);

  uint64_t num_entries() const { return num_entries_; }
  int height() const { return height_; }
  uint64_t file_size() const { return file_->size(); }
  uint64_t bytes_read() const { return file_->bytes_read(); }

  // Forward iterator positioned by Seek.
  class Iterator {
   public:
    Iterator() = default;  // invalid until assigned from Seek*

    bool Valid() const { return valid_; }
    std::string_view key() const { return key_; }
    std::string_view payload() const { return payload_; }
    Status Next();

   private:
    friend class BTreeReader;
    explicit Iterator(const BTreeReader* reader) : reader_(reader) {}

    Status LoadLeaf(uint64_t offset);
    void ParseCurrent();

    const BTreeReader* reader_ = nullptr;
    std::string leaf_data_;
    uint64_t next_leaf_ = 0;
    uint32_t remaining_in_leaf_ = 0;
    size_t pos_ = 0;
    bool valid_ = false;
    std::string key_, payload_;
  };

  // Positions at the first entry with key >= `key` (or > when
  // `inclusive` is false). An empty key with inclusive=true scans from
  // the start.
  Result<Iterator> Seek(std::string_view key, bool inclusive = true) const;

  Result<Iterator> SeekToFirst() const;

  // First keys of the root's children (empty when the root is a
  // leaf). Range scans can be parallelized by cutting intervals at
  // these boundaries.
  Result<std::vector<std::string>> RootChildKeys() const;

  // Estimated fraction of entries whose key lies in [lo, hi] (either
  // bound optional). The tree acts as its own equi-depth histogram:
  // interior children fully inside the range count whole; boundary
  // children are descended recursively (O(height) node reads per
  // bound), so estimates stay sharp even for needle ranges.
  Result<double> EstimateRangeFraction(
      const std::optional<std::string>& lo,
      const std::optional<std::string>& hi) const;

 private:
  BTreeReader(std::unique_ptr<RandomAccessFile> file)
      : file_(std::move(file)) {}

  Status Init();

  // Finds the leaf that may contain `key`.
  Result<uint64_t> FindLeaf(std::string_view key) const;

  Result<double> EstimateInNode(uint64_t offset, int level,
                                const std::optional<std::string>& lo,
                                const std::optional<std::string>& hi) const;

  Status ReadNode(uint64_t offset, std::string* out) const;

  std::unique_ptr<RandomAccessFile> file_;
  uint64_t root_offset_ = 0;
  int height_ = 0;
  uint64_t num_entries_ = 0;
  uint64_t first_leaf_offset_ = 0;
};

}  // namespace manimal::index

#endif  // MANIMAL_INDEX_BTREE_H_
