#include "index/external_sorter.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/coding.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace manimal::index {

namespace {

// Block-buffered reader over one spilled run file (varint-length-
// prefixed key/payload pairs). Reads the file in large chunks and
// parses entries out of the in-memory window, instead of issuing one
// file read per byte of varint.
class RunReader {
 public:
  static constexpr size_t kBlockBytes = 256u << 10;

  static Result<std::unique_ptr<RunReader>> Open(const std::string& path) {
    MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> f,
                             SequentialFile::Open(path));
    auto reader = std::unique_ptr<RunReader>(new RunReader(std::move(f)));
    MANIMAL_RETURN_IF_ERROR(reader->Next());
    return reader;
  }

  bool Valid() const { return valid_; }
  std::string_view key() const { return key_; }
  std::string_view payload() const { return payload_; }

  Status Next() {
    // Clean EOF only at an entry boundary.
    MANIMAL_RETURN_IF_ERROR(Ensure(1));
    if (available() == 0) {
      valid_ = false;
      return Status::OK();
    }
    // Parse the whole entry against offsets relative to pos_, then
    // take views into the window — key()/payload() are zero-copy and
    // stay valid until the next call (the only point that compacts).
    MANIMAL_RETURN_IF_ERROR(Ensure(10));  // two max varint32s
    uint32_t key_len = 0, payload_len = 0;
    size_t off = 0;
    MANIMAL_RETURN_IF_ERROR(ParseLength(&off, &key_len));
    const size_t key_off = off;
    off += key_len;
    MANIMAL_RETURN_IF_ERROR(Ensure(off + 5));
    MANIMAL_RETURN_IF_ERROR(ParseLength(&off, &payload_len));
    MANIMAL_RETURN_IF_ERROR(Ensure(off + payload_len));
    if (available() < off + payload_len) {
      return Status::Corruption("short run read");
    }
    key_ = std::string_view(buf_.data() + pos_ + key_off, key_len);
    payload_ = std::string_view(buf_.data() + pos_ + off, payload_len);
    pos_ += off + payload_len;
    valid_ = true;
    return Status::OK();
  }

 private:
  explicit RunReader(std::unique_ptr<SequentialFile> f)
      : file_(std::move(f)) {}

  size_t available() const { return buf_.size() - pos_; }

  // Tops the window up to at least n readable bytes (less only at
  // EOF), refilling in kBlockBytes chunks.
  Status Ensure(size_t n) {
    if (available() >= n || eof_) return Status::OK();
    buf_.erase(0, pos_);
    pos_ = 0;
    std::string chunk;
    while (buf_.size() < n && !eof_) {
      MANIMAL_RETURN_IF_ERROR(
          file_->Read(std::max(kBlockBytes, n - buf_.size()), &chunk));
      if (chunk.empty()) {
        eof_ = true;
        break;
      }
      buf_.append(chunk);
    }
    return Status::OK();
  }

  // Decodes a varint32 at window offset *off, advancing *off past it.
  Status ParseLength(size_t* off, uint32_t* out) {
    if (available() < *off) return Status::Corruption("short run read");
    std::string_view window(buf_.data() + pos_ + *off,
                            available() - *off);
    const size_t before = window.size();
    if (!GetVarint32(&window, out).ok()) {
      return Status::Corruption("truncated varint in run");
    }
    *off += before - window.size();
    return Status::OK();
  }

  std::unique_ptr<SequentialFile> file_;
  std::string buf_;
  size_t pos_ = 0;
  bool eof_ = false;
  std::string_view key_, payload_;
  bool valid_ = false;
};

// Cursor over one in-memory sorted run (borrowed: the run outlives
// the cursor — owned either by the MergeStream or by the caller).
class MemoryRunCursor {
 public:
  explicit MemoryRunCursor(const MemoryRun* run) : run_(run) {}

  bool Valid() const { return pos_ < run_->entries.size(); }
  std::string_view key() const {
    const MemoryRun::Entry& e = run_->entries[pos_];
    return std::string_view(run_->arena.data() + e.key_offset, e.key_len);
  }
  std::string_view payload() const {
    const MemoryRun::Entry& e = run_->entries[pos_];
    return std::string_view(run_->arena.data() + e.payload_offset,
                            e.payload_len);
  }
  void Next() { ++pos_; }

 private:
  const MemoryRun* run_;
  size_t pos_ = 0;
};

// K-way merge: a binary min-heap of source indexes ordered by each
// source's current key (ties toward the lower index, i.e. earlier
// source). The head of the heap IS the current entry; advancing
// steps that source and sifts the head down in place (one O(log k)
// sift per entry instead of a pop + push pair), against a cache of
// each source's current key so comparisons never chase the source
// indirection. A single-source merge degenerates to a plain scan:
// SiftDown over a one-element heap compares nothing.
class MergeStream : public SortedStream {
 public:
  MergeStream(std::vector<std::unique_ptr<RunReader>> runs,
              std::vector<MemoryRun> owned_memory_runs,
              std::vector<const MemoryRun*> borrowed_memory_runs)
      : runs_(std::move(runs)),
        owned_memory_(std::move(owned_memory_runs)) {
    memory_.reserve(owned_memory_.size() + borrowed_memory_runs.size());
    for (const MemoryRun& run : owned_memory_) {
      memory_.emplace_back(&run);
    }
    for (const MemoryRun* run : borrowed_memory_runs) {
      memory_.emplace_back(run);
    }
    const size_t n = runs_.size() + memory_.size();
    keys_.resize(n);
    heap_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (SourceValid(i)) {
        keys_[i] = SourceKey(i);
        heap_.push_back(i);
      }
    }
    for (size_t i = heap_.size() / 2; i-- > 0;) SiftDown(i);
  }

  bool Valid() const override { return !heap_.empty(); }
  std::string_view key() const override { return keys_[heap_[0]]; }
  std::string_view payload() const override {
    return SourcePayload(heap_[0]);
  }

  Status Next() override {
    const size_t src = heap_[0];
    MANIMAL_RETURN_IF_ERROR(SourceNext(src));
    if (SourceValid(src)) {
      keys_[src] = SourceKey(src);
    } else {
      heap_[0] = heap_.back();
      heap_.pop_back();
      if (heap_.empty()) return Status::OK();
    }
    SiftDown(0);
    return Status::OK();
  }

 private:
  // Min order over source indexes; equal keys break toward the lower
  // source index (run files come before memory runs).
  bool SourceLess(size_t a, size_t b) const {
    int c = keys_[a].compare(keys_[b]);
    if (c != 0) return c < 0;
    return a < b;
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    while (true) {
      const size_t left = 2 * i + 1;
      if (left >= n) return;
      size_t smallest = SourceLess(heap_[left], heap_[i]) ? left : i;
      const size_t right = left + 1;
      if (right < n && SourceLess(heap_[right], heap_[smallest])) {
        smallest = right;
      }
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  bool SourceValid(size_t i) const {
    if (i < runs_.size()) return runs_[i]->Valid();
    return memory_[i - runs_.size()].Valid();
  }
  std::string_view SourceKey(size_t i) const {
    if (i < runs_.size()) return runs_[i]->key();
    return memory_[i - runs_.size()].key();
  }
  std::string_view SourcePayload(size_t i) const {
    if (i < runs_.size()) return runs_[i]->payload();
    return memory_[i - runs_.size()].payload();
  }
  Status SourceNext(size_t i) {
    if (i < runs_.size()) return runs_[i]->Next();
    memory_[i - runs_.size()].Next();
    return Status::OK();
  }

  std::vector<std::unique_ptr<RunReader>> runs_;
  std::vector<MemoryRun> owned_memory_;
  std::vector<MemoryRunCursor> memory_;
  // Current key per source, refreshed when that source advances.
  std::vector<std::string_view> keys_;
  std::vector<size_t> heap_;
};

Result<std::unique_ptr<SortedStream>> OpenMergeStream(
    const std::vector<std::string>& run_paths,
    std::vector<MemoryRun> owned_memory_runs,
    std::vector<const MemoryRun*> borrowed_memory_runs) {
  std::vector<std::unique_ptr<RunReader>> runs;
  runs.reserve(run_paths.size());
  for (const std::string& path : run_paths) {
    MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<RunReader> r,
                             RunReader::Open(path));
    runs.push_back(std::move(r));
  }
  return std::unique_ptr<SortedStream>(
      new MergeStream(std::move(runs), std::move(owned_memory_runs),
                      std::move(borrowed_memory_runs)));
}

}  // namespace

// ---------------- SpillBuffer ----------------

void SpillBuffer::Add(std::string_view key, std::string_view payload) {
  MemoryRun::Entry e;
  e.key_offset = static_cast<uint32_t>(arena_.size());
  e.key_len = static_cast<uint32_t>(key.size());
  arena_.append(key);
  e.payload_offset = static_cast<uint32_t>(arena_.size());
  e.payload_len = static_cast<uint32_t>(payload.size());
  arena_.append(payload);
  entries_.push_back(e);
}

void SpillBuffer::SortEntries() {
  std::sort(entries_.begin(), entries_.end(),
            [this](const MemoryRun::Entry& a, const MemoryRun::Entry& b) {
              std::string_view ka(arena_.data() + a.key_offset, a.key_len);
              std::string_view kb(arena_.data() + b.key_offset, b.key_len);
              return ka < kb;
            });
}

Result<uint64_t> SpillBuffer::SpillToFile(const std::string& path) {
  SortEntries();
  // Write-temp-then-rename commit: the run becomes visible at `path`
  // only as a complete file. A crash (or injected fault) at any point
  // before the rename leaves at most an orphaned .tmp that the next
  // attempt overwrites.
  const std::string tmp_path = path + ".tmp";
  auto write_run = [&]() -> Result<uint64_t> {
    MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                             WritableFile::Create(tmp_path));
    // Batch the encoded entries into block-sized writes.
    constexpr size_t kWriteBlockBytes = 256u << 10;
    std::string buf;
    buf.reserve(std::min<size_t>(kWriteBlockBytes + 1024,
                                 arena_.size() + 10 * entries_.size()));
    for (const MemoryRun::Entry& e : entries_) {
      PutVarint32(&buf, e.key_len);
      buf.append(arena_.data() + e.key_offset, e.key_len);
      PutVarint32(&buf, e.payload_len);
      buf.append(arena_.data() + e.payload_offset, e.payload_len);
      if (buf.size() >= kWriteBlockBytes) {
        MANIMAL_RETURN_IF_ERROR(f->Append(buf));
        buf.clear();
      }
    }
    if (!buf.empty()) MANIMAL_RETURN_IF_ERROR(f->Append(buf));
    const uint64_t run_bytes = f->bytes_written();
    MANIMAL_RETURN_IF_ERROR(f->Close());
    MANIMAL_RETURN_IF_ERROR(RenameFile(tmp_path, path));
    return run_bytes;
  };
  Result<uint64_t> run_bytes = write_run();
  if (!run_bytes.ok()) {
    (void)RemoveFileIfExists(tmp_path);
    return run_bytes;
  }
  entries_.clear();
  arena_.clear();
  return run_bytes;
}

MemoryRun SpillBuffer::TakeSortedRun() {
  SortEntries();
  MemoryRun run;
  run.arena = std::move(arena_);
  run.entries = std::move(entries_);
  arena_.clear();
  entries_.clear();
  return run;
}

// ---------------- merge ----------------

Result<std::unique_ptr<SortedStream>> MergeSortedRuns(
    const std::vector<std::string>& run_paths,
    std::vector<MemoryRun> memory_runs) {
  return OpenMergeStream(run_paths, std::move(memory_runs), {});
}

Result<std::unique_ptr<SortedStream>> MergeSortedRunsBorrowed(
    const std::vector<std::string>& run_paths,
    std::vector<const MemoryRun*> memory_runs) {
  return OpenMergeStream(run_paths, {}, std::move(memory_runs));
}

// ---------------- ExternalSorter ----------------

ExternalSorter::ExternalSorter(Options options)
    : options_(std::move(options)) {
  MANIMAL_CHECK(!options_.temp_dir.empty());
}

ExternalSorter::~ExternalSorter() {
  for (const std::string& path : run_paths_) {
    (void)RemoveFileIfExists(path);
  }
}

Status ExternalSorter::Add(std::string_view key, std::string_view payload) {
  MANIMAL_CHECK(!finished_);
  buffer_.Add(key, payload);
  ++stats_.entries;
  if (buffer_.buffered_bytes() >= options_.memory_budget_bytes ||
      buffer_.buffered_bytes() > (3u << 30)) {
    MANIMAL_RETURN_IF_ERROR(SpillToRun());
  }
  return Status::OK();
}

Status ExternalSorter::SpillToRun() {
  if (buffer_.empty()) return Status::OK();
  std::string path = options_.temp_dir + "/" +
                     StrPrintf("run-%04d.sort",
                               static_cast<int>(run_paths_.size()));
  MANIMAL_ASSIGN_OR_RETURN(const uint64_t run_bytes,
                           buffer_.SpillToFile(path));
  stats_.spilled_bytes += run_bytes;
  run_paths_.push_back(std::move(path));
  ++stats_.spilled_runs;
  auto& metrics = obs::MetricsRegistry::Get();
  metrics.GetCounter(options_.metric_label + ".spilled_runs")
      ->Increment();
  metrics.GetCounter(options_.metric_label + ".spilled_bytes")
      ->Add(static_cast<int64_t>(run_bytes));
  obs::TraceInstant((options_.metric_label + ".spill").c_str(), "exec",
                    {{"bytes", std::to_string(run_bytes)}});
  return Status::OK();
}

Result<std::unique_ptr<SortedStream>> ExternalSorter::Finish() {
  MANIMAL_CHECK(!finished_);
  finished_ = true;
  std::vector<MemoryRun> memory_runs;
  if (!buffer_.empty()) {
    memory_runs.push_back(buffer_.TakeSortedRun());
  }
  return MergeSortedRuns(run_paths_, std::move(memory_runs));
}

}  // namespace manimal::index
