#include "index/external_sorter.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/coding.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace manimal::index {

namespace {

// Reader over one spilled run file (length-prefixed key/payload pairs).
class RunReader {
 public:
  static Result<std::unique_ptr<RunReader>> Open(const std::string& path) {
    MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> f,
                             SequentialFile::Open(path));
    auto reader = std::unique_ptr<RunReader>(new RunReader(std::move(f)));
    MANIMAL_RETURN_IF_ERROR(reader->Next());
    return reader;
  }

  bool Valid() const { return valid_; }
  std::string_view key() const { return key_; }
  std::string_view payload() const { return payload_; }

  Status Next() {
    uint32_t key_len = 0;
    MANIMAL_ASSIGN_OR_RETURN(bool have, ReadVarint32(&key_len));
    if (!have) {
      valid_ = false;
      return Status::OK();
    }
    MANIMAL_RETURN_IF_ERROR(ReadExact(key_len, &key_));
    uint32_t payload_len = 0;
    MANIMAL_ASSIGN_OR_RETURN(have, ReadVarint32(&payload_len));
    if (!have) return Status::Corruption("truncated run entry");
    MANIMAL_RETURN_IF_ERROR(ReadExact(payload_len, &payload_));
    valid_ = true;
    return Status::OK();
  }

 private:
  explicit RunReader(std::unique_ptr<SequentialFile> f)
      : file_(std::move(f)) {}

  // Returns false at clean EOF (no bytes).
  Result<bool> ReadVarint32(uint32_t* out) {
    uint32_t result = 0;
    int shift = 0;
    for (;;) {
      std::string byte;
      MANIMAL_RETURN_IF_ERROR(file_->Read(1, &byte));
      if (byte.empty()) {
        if (shift == 0) return false;
        return Status::Corruption("truncated varint in run");
      }
      uint8_t b = static_cast<uint8_t>(byte[0]);
      result |= static_cast<uint32_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
      if (shift > 28) return Status::Corruption("varint overflow in run");
    }
    *out = result;
    return true;
  }

  Status ReadExact(uint32_t n, std::string* out) {
    MANIMAL_RETURN_IF_ERROR(file_->Read(n, out));
    if (out->size() != n) return Status::Corruption("short run read");
    return Status::OK();
  }

  std::unique_ptr<SequentialFile> file_;
  std::string key_, payload_;
  bool valid_ = false;
};

struct MemEntry {
  uint32_t key_offset;
  uint32_t key_len;
  uint32_t payload_offset;
  uint32_t payload_len;
};

// K-way merge over run readers plus an optional in-memory tail. The
// arena is owned here so the in-memory entry offsets stay valid.
class MergeStream : public SortedStream {
 public:
  MergeStream(std::vector<std::unique_ptr<RunReader>> runs,
              std::string arena, std::vector<MemEntry> entries)
      : runs_(std::move(runs)), arena_(std::move(arena)) {
    in_memory_.reserve(entries.size());
    for (const MemEntry& e : entries) {
      in_memory_.emplace_back(
          std::string_view(arena_.data() + e.key_offset, e.key_len),
          std::string_view(arena_.data() + e.payload_offset,
                           e.payload_len));
    }
    Advance();
  }

  bool Valid() const override { return valid_; }
  std::string_view key() const override { return key_; }
  std::string_view payload() const override { return payload_; }

  Status Next() override {
    MANIMAL_RETURN_IF_ERROR(Consume());
    Advance();
    return Status::OK();
  }

 private:
  // Selects the smallest head among runs and the in-memory cursor.
  void Advance() {
    int best_run = -1;
    bool use_memory = false;
    std::string_view best_key;
    for (size_t i = 0; i < runs_.size(); ++i) {
      if (!runs_[i]->Valid()) continue;
      if (best_run < 0 && !use_memory) {
        best_run = static_cast<int>(i);
        best_key = runs_[i]->key();
      } else if (runs_[i]->key() < best_key) {
        best_run = static_cast<int>(i);
        best_key = runs_[i]->key();
      }
    }
    if (mem_pos_ < in_memory_.size()) {
      if (best_run < 0 || in_memory_[mem_pos_].first < best_key) {
        use_memory = true;
      }
    }
    if (use_memory) {
      current_run_ = -1;
      key_ = in_memory_[mem_pos_].first;
      payload_ = in_memory_[mem_pos_].second;
      valid_ = true;
    } else if (best_run >= 0) {
      current_run_ = best_run;
      key_ = runs_[best_run]->key();
      payload_ = runs_[best_run]->payload();
      valid_ = true;
    } else {
      valid_ = false;
    }
  }

  Status Consume() {
    if (!valid_) return Status::OK();
    if (current_run_ < 0) {
      ++mem_pos_;
    } else {
      MANIMAL_RETURN_IF_ERROR(runs_[current_run_]->Next());
    }
    return Status::OK();
  }

  std::vector<std::unique_ptr<RunReader>> runs_;
  std::string arena_;
  std::vector<std::pair<std::string_view, std::string_view>> in_memory_;
  size_t mem_pos_ = 0;
  int current_run_ = -1;
  bool valid_ = false;
  std::string_view key_, payload_;
};

}  // namespace

ExternalSorter::ExternalSorter(Options options)
    : options_(std::move(options)) {
  MANIMAL_CHECK(!options_.temp_dir.empty());
}

ExternalSorter::~ExternalSorter() {
  for (const std::string& path : run_paths_) {
    (void)RemoveFileIfExists(path);
  }
}

Status ExternalSorter::Add(std::string_view key, std::string_view payload) {
  MANIMAL_CHECK(!finished_);
  Entry e;
  e.key_offset = static_cast<uint32_t>(arena_.size());
  e.key_len = static_cast<uint32_t>(key.size());
  arena_.append(key);
  e.payload_offset = static_cast<uint32_t>(arena_.size());
  e.payload_len = static_cast<uint32_t>(payload.size());
  arena_.append(payload);
  buffered_.push_back(e);
  ++stats_.entries;
  if (arena_.size() >= options_.memory_budget_bytes ||
      arena_.size() > (3u << 30)) {
    MANIMAL_RETURN_IF_ERROR(SpillBuffer());
  }
  return Status::OK();
}

Status ExternalSorter::SpillBuffer() {
  if (buffered_.empty()) return Status::OK();
  std::sort(buffered_.begin(), buffered_.end(),
            [this](const Entry& a, const Entry& b) {
              std::string_view ka(arena_.data() + a.key_offset, a.key_len);
              std::string_view kb(arena_.data() + b.key_offset, b.key_len);
              return ka < kb;
            });
  std::string path = options_.temp_dir + "/" +
                     StrPrintf("run-%04d.sort",
                               static_cast<int>(run_paths_.size()));
  MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                           WritableFile::Create(path));
  std::string buf;
  for (const Entry& e : buffered_) {
    buf.clear();
    PutVarint32(&buf, e.key_len);
    buf.append(arena_.data() + e.key_offset, e.key_len);
    PutVarint32(&buf, e.payload_len);
    buf.append(arena_.data() + e.payload_offset, e.payload_len);
    MANIMAL_RETURN_IF_ERROR(f->Append(buf));
  }
  stats_.spilled_bytes += f->bytes_written();
  const uint64_t run_bytes = f->bytes_written();
  MANIMAL_RETURN_IF_ERROR(f->Close());
  run_paths_.push_back(std::move(path));
  ++stats_.spilled_runs;
  auto& metrics = obs::MetricsRegistry::Get();
  metrics.GetCounter(options_.metric_label + ".spilled_runs")
      ->Increment();
  metrics.GetCounter(options_.metric_label + ".spilled_bytes")
      ->Add(static_cast<int64_t>(run_bytes));
  obs::TraceInstant((options_.metric_label + ".spill").c_str(), "exec",
                    {{"bytes", std::to_string(run_bytes)}});
  buffered_.clear();
  arena_.clear();
  return Status::OK();
}

Result<std::unique_ptr<SortedStream>> ExternalSorter::Finish() {
  MANIMAL_CHECK(!finished_);
  finished_ = true;

  // Sort the in-memory tail.
  std::sort(buffered_.begin(), buffered_.end(),
            [this](const Entry& a, const Entry& b) {
              std::string_view ka(arena_.data() + a.key_offset, a.key_len);
              std::string_view kb(arena_.data() + b.key_offset, b.key_len);
              return ka < kb;
            });
  std::vector<MemEntry> entries;
  entries.reserve(buffered_.size());
  for (const Entry& e : buffered_) {
    entries.push_back(MemEntry{e.key_offset, e.key_len, e.payload_offset,
                               e.payload_len});
  }

  std::vector<std::unique_ptr<RunReader>> runs;
  runs.reserve(run_paths_.size());
  for (const std::string& path : run_paths_) {
    MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<RunReader> r,
                             RunReader::Open(path));
    runs.push_back(std::move(r));
  }
  // The arena moves into the stream, which rebuilds views against its
  // own copy (offsets survive the move; raw pointers might not).
  return std::unique_ptr<SortedStream>(new MergeStream(
      std::move(runs), std::move(arena_), std::move(entries)));
}

}  // namespace manimal::index
