// Reaching-definitions dataflow over an MRIL function (paper §3.1,
// Figure 5): for every load of a local or member variable, which store
// instructions may have produced the value seen. This is the "def"
// side of the use-def chains that getUseDef() builds.

#ifndef MANIMAL_ANALYSIS_REACHING_DEFS_H_
#define MANIMAL_ANALYSIS_REACHING_DEFS_H_

#include <cstdint>
#include <vector>

#include "analysis/cfg.h"
#include "mril/program.h"

namespace manimal::analysis {

// A variable a store/load can touch.
struct VarRef {
  enum class Kind { kLocal, kMember };
  Kind kind;
  int slot;

  bool operator==(const VarRef& other) const = default;
};

class ReachingDefs {
 public:
  // Definitions are store_local / store_member instructions.
  ReachingDefs(const Function& fn, const Cfg& cfg);

  // Definition sites (pcs of stores), in program order.
  const std::vector<int>& def_sites() const { return def_sites_; }

  // The pcs of definitions of `var` that reach instruction `pc`
  // (i.e. may have produced the value a load at `pc` observes).
  std::vector<int> DefsReaching(int pc, VarRef var) const;

 private:
  // Bitset over def_sites_ indexes.
  using Bits = std::vector<uint64_t>;

  static bool TestBit(const Bits& bits, int i) {
    return (bits[i / 64] >> (i % 64)) & 1;
  }
  static void SetBit(Bits* bits, int i) {
    (*bits)[i / 64] |= (uint64_t{1} << (i % 64));
  }

  const Function& fn_;
  const Cfg& cfg_;
  std::vector<int> def_sites_;
  std::vector<int> def_index_of_pc_;  // pc -> def index or -1
  std::vector<VarRef> def_var_;       // def index -> variable
  std::vector<Bits> in_;              // per block: defs live at entry
};

}  // namespace manimal::analysis

#endif  // MANIMAL_ANALYSIS_REACHING_DEFS_H_
