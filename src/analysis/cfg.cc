#include "analysis/cfg.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace manimal::analysis {

using mril::GetOpcodeInfo;
using mril::Instruction;
using mril::IsConditionalBranch;
using mril::Opcode;

const char* EdgeKindName(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kFallthrough:
      return "fall";
    case EdgeKind::kJump:
      return "jump";
    case EdgeKind::kTrue:
      return "true";
    case EdgeKind::kFalse:
      return "false";
  }
  return "?";
}

Cfg Cfg::Build(const Function& fn) {
  obs::ScopedSpan span("analysis.cfg_build", "analysis");
  span.AddArg("function", fn.name);
  obs::MetricsRegistry::Get().GetCounter("analysis.cfgs_built")
      ->Increment();
  const int n = static_cast<int>(fn.code.size());
  MANIMAL_CHECK(n > 0);

  // 1. Find leaders.
  std::set<int> leaders;
  leaders.insert(0);
  for (int pc = 0; pc < n; ++pc) {
    const Instruction& inst = fn.code[pc];
    if (mril::IsBranch(inst.op)) {
      leaders.insert(inst.operand);
      if (pc + 1 < n) leaders.insert(pc + 1);
    } else if (inst.op == Opcode::kReturn && pc + 1 < n) {
      leaders.insert(pc + 1);
    }
  }

  Cfg cfg;
  cfg.block_of_.assign(n, -1);

  // 2. Carve blocks.
  std::vector<int> sorted_leaders(leaders.begin(), leaders.end());
  for (size_t i = 0; i < sorted_leaders.size(); ++i) {
    BasicBlock bb;
    bb.id = static_cast<int>(i);
    bb.first_pc = sorted_leaders[i];
    bb.last_pc = (i + 1 < sorted_leaders.size() ? sorted_leaders[i + 1]
                                                : n) -
                 1;
    for (int pc = bb.first_pc; pc <= bb.last_pc; ++pc) {
      cfg.block_of_[pc] = bb.id;
    }
    cfg.blocks_.push_back(bb);
  }

  // 3. Edges.
  auto add_edge = [&cfg](int from, int to, EdgeKind kind, int branch_pc) {
    CfgEdge e;
    e.from = from;
    e.to = to;
    e.kind = kind;
    e.branch_pc = branch_pc;
    int eid = static_cast<int>(cfg.edges_.size());
    cfg.edges_.push_back(e);
    cfg.blocks_[from].succ_edges.push_back(eid);
    cfg.blocks_[to].pred_edges.push_back(eid);
  };

  for (const BasicBlock& bb : cfg.blocks_) {
    int last = bb.last_pc;
    const Instruction& inst = fn.code[last];
    switch (inst.op) {
      case Opcode::kReturn:
        break;  // flows to the (virtual) exit
      case Opcode::kJmp:
        add_edge(bb.id, cfg.block_of_[inst.operand], EdgeKind::kJump, -1);
        break;
      case Opcode::kJmpIfTrue:
        add_edge(bb.id, cfg.block_of_[inst.operand], EdgeKind::kTrue, last);
        MANIMAL_CHECK(last + 1 < n);
        add_edge(bb.id, cfg.block_of_[last + 1], EdgeKind::kFalse, last);
        break;
      case Opcode::kJmpIfFalse:
        add_edge(bb.id, cfg.block_of_[inst.operand], EdgeKind::kFalse,
                 last);
        MANIMAL_CHECK(last + 1 < n);
        add_edge(bb.id, cfg.block_of_[last + 1], EdgeKind::kTrue, last);
        break;
      default:
        // Verifier guarantees the function never falls off the end.
        MANIMAL_CHECK(last + 1 < n);
        add_edge(bb.id, cfg.block_of_[last + 1], EdgeKind::kFallthrough,
                 -1);
        break;
    }
  }
  return cfg;
}

bool Cfg::HasCycle() const {
  // Iterative DFS three-color cycle detection.
  enum { kWhite, kGray, kBlack };
  std::vector<int> color(blocks_.size(), kWhite);
  std::vector<std::pair<int, size_t>> stack;  // (block, next succ index)
  for (size_t root = 0; root < blocks_.size(); ++root) {
    if (color[root] != kWhite) continue;
    stack.emplace_back(static_cast<int>(root), 0);
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [b, i] = stack.back();
      if (i < blocks_[b].succ_edges.size()) {
        int to = edges_[blocks_[b].succ_edges[i]].to;
        ++i;
        if (color[to] == kGray) return true;
        if (color[to] == kWhite) {
          color[to] = kGray;
          stack.emplace_back(to, 0);
        }
      } else {
        color[b] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

std::vector<bool> Cfg::BlocksReaching(int target) const {
  std::vector<bool> reaches(blocks_.size(), false);
  std::vector<int> worklist = {target};
  reaches[target] = true;
  while (!worklist.empty()) {
    int b = worklist.back();
    worklist.pop_back();
    for (int eid : blocks_[b].pred_edges) {
      int p = edges_[eid].from;
      if (!reaches[p]) {
        reaches[p] = true;
        worklist.push_back(p);
      }
    }
  }
  return reaches;
}

std::vector<bool> Cfg::ReachableBlocks() const {
  std::vector<bool> seen(blocks_.size(), false);
  std::vector<int> worklist = {entry_block()};
  seen[entry_block()] = true;
  while (!worklist.empty()) {
    int b = worklist.back();
    worklist.pop_back();
    for (int eid : blocks_[b].succ_edges) {
      int to = edges_[eid].to;
      if (!seen[to]) {
        seen[to] = true;
        worklist.push_back(to);
      }
    }
  }
  return seen;
}

std::string Cfg::ToDot(const Program& program, const Function& fn) const {
  std::string out = "digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n";
  out += "  entry [shape=ellipse, label=\"fn entry\"];\n";
  out += "  exit [shape=ellipse, label=\"fn exit\"];\n";
  auto dot_escape = [](const std::string& s) {
    std::string r;
    for (char c : s) {
      if (c == '"') r += "\\\"";
      else r.push_back(c);
    }
    return r;
  };
  for (const BasicBlock& bb : blocks_) {
    std::string label;
    for (int pc = bb.first_pc; pc <= bb.last_pc; ++pc) {
      label += dot_escape(mril::FormatInstruction(program, fn, pc));
      label += "\\l";
    }
    out += StrPrintf("  b%d [label=\"%s\"];\n", bb.id, label.c_str());
  }
  out += "  entry -> b0;\n";
  for (const CfgEdge& e : edges_) {
    out += StrPrintf("  b%d -> b%d [label=\"%s\"];\n", e.from, e.to,
                     EdgeKindName(e.kind));
  }
  // Return-terminated blocks flow to exit.
  for (const BasicBlock& bb : blocks_) {
    if (fn.code[bb.last_pc].op == Opcode::kReturn) {
      out += StrPrintf("  b%d -> exit;\n", bb.id);
    }
  }
  out += "}\n";
  return out;
}

}  // namespace manimal::analysis
