#include "analysis/expr_recovery.h"

#include "common/check.h"
#include "mril/builtins.h"
#include "obs/metrics.h"

namespace {
// "analysis.expr_queries": symbolic-recovery requests (branch
// conditions, emit operands, stored values, log operands) across all
// analyzer passes.
void CountExprQuery() {
  manimal::obs::MetricsRegistry::Get()
      .GetCounter("analysis.expr_queries")
      ->Increment();
}
}  // namespace

namespace manimal::analysis {

using mril::Builtin;
using mril::BuiltinRegistry;
using mril::Instruction;
using mril::Opcode;

ExprRecovery::ExprRecovery(const Program& program, const Function& fn,
                           const Cfg& cfg, const ReachingDefs& reaching)
    : program_(program), fn_(fn), cfg_(cfg), reaching_(reaching) {}

ExprRef ExprRecovery::ResolveLoad(int pc, VarRef var) {
  if (var.kind == VarRef::Kind::kMember) {
    // Member variables are external state by definition — the previous
    // invocation may have written them, so the analyzer never expands
    // through them (Figure 2's numMapsRun).
    return Expr::MakeMember(var.slot, pc);
  }
  std::vector<int> defs = reaching_.DefsReaching(pc, var);
  if (defs.empty()) {
    // Uninitialized local read.
    return Expr::MakeUnknown(pc);
  }
  ExprRef resolved;
  for (int def_pc : defs) {
    ExprRef e = StoredValue(def_pc);
    if (e == nullptr || e->kind == Expr::Kind::kUnknown) {
      return Expr::MakeUnknown(pc);
    }
    if (resolved == nullptr) {
      resolved = e;
    } else if (!resolved->Equals(*e)) {
      // Distinct values can flow here along different paths.
      return Expr::MakeUnknown(pc);
    }
  }
  return resolved;
}

ExprRef ExprRecovery::StoredValue(int def_pc) {
  auto memo = stored_memo_.find(def_pc);
  if (memo != stored_memo_.end()) return memo->second;
  if (in_progress_.count(def_pc) > 0) {
    // Loop-carried definition (the def's value depends on itself).
    return Expr::MakeUnknown(def_pc);
  }
  in_progress_.insert(def_pc);
  std::vector<ExprRef> stack = StackBefore(def_pc);
  in_progress_.erase(def_pc);
  ExprRef result =
      stack.empty() ? Expr::MakeUnknown(def_pc) : stack.back();
  stored_memo_[def_pc] = result;
  return result;
}

ExprRef ExprRecovery::BranchCondition(int branch_pc) {
  CountExprQuery();
  MANIMAL_CHECK(mril::IsConditionalBranch(fn_.code.at(branch_pc).op));
  std::vector<ExprRef> stack = StackBefore(branch_pc);
  return stack.empty() ? Expr::MakeUnknown(branch_pc) : stack.back();
}

std::pair<ExprRef, ExprRef> ExprRecovery::EmitOperands(int emit_pc) {
  CountExprQuery();
  MANIMAL_CHECK(fn_.code.at(emit_pc).op == Opcode::kEmit);
  std::vector<ExprRef> stack = StackBefore(emit_pc);
  if (stack.size() < 2) {
    return {Expr::MakeUnknown(emit_pc), Expr::MakeUnknown(emit_pc)};
  }
  // emit pops value (top), then key.
  return {stack[stack.size() - 2], stack[stack.size() - 1]};
}

ExprRef ExprRecovery::LogOperand(int log_pc) {
  CountExprQuery();
  MANIMAL_CHECK(fn_.code.at(log_pc).op == Opcode::kLog);
  std::vector<ExprRef> stack = StackBefore(log_pc);
  return stack.empty() ? Expr::MakeUnknown(log_pc) : stack.back();
}

std::vector<ExprRef> ExprRecovery::StackBefore(int pc) {
  const BasicBlock& bb = cfg_.block(cfg_.BlockOf(pc));
  std::vector<ExprRef> stack;  // block entry: empty (verified)
  for (int p = bb.first_pc; p < pc; ++p) {
    const Instruction& inst = fn_.code[p];
    auto pop = [&stack, p]() -> ExprRef {
      if (stack.empty()) return Expr::MakeUnknown(p);
      ExprRef e = stack.back();
      stack.pop_back();
      return e;
    };
    switch (inst.op) {
      case Opcode::kNop:
        break;
      case Opcode::kLoadConst:
        stack.push_back(
            Expr::MakeConst(program_.constants.at(inst.operand), p));
        break;
      case Opcode::kLoadParam:
        stack.push_back(Expr::MakeParam(inst.operand, p));
        break;
      case Opcode::kLoadLocal:
        stack.push_back(
            ResolveLoad(p, VarRef{VarRef::Kind::kLocal, inst.operand}));
        break;
      case Opcode::kLoadMember:
        stack.push_back(
            ResolveLoad(p, VarRef{VarRef::Kind::kMember, inst.operand}));
        break;
      case Opcode::kStoreLocal:
      case Opcode::kStoreMember:
        pop();
        break;
      case Opcode::kGetField: {
        ExprRef base = pop();
        stack.push_back(Expr::MakeField(std::move(base), inst.operand, p));
        break;
      }
      case Opcode::kDup: {
        ExprRef top = pop();
        stack.push_back(top);
        stack.push_back(top);
        break;
      }
      case Opcode::kPop:
        pop();
        break;
      case Opcode::kSwap: {
        ExprRef b = pop();
        ExprRef a = pop();
        stack.push_back(std::move(b));
        stack.push_back(std::move(a));
        break;
      }
      case Opcode::kNeg:
      case Opcode::kNot: {
        ExprRef a = pop();
        stack.push_back(Expr::MakeOp(inst.op, {std::move(a)}, p));
        break;
      }
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kMod:
      case Opcode::kCmpLt:
      case Opcode::kCmpLe:
      case Opcode::kCmpGt:
      case Opcode::kCmpGe:
      case Opcode::kCmpEq:
      case Opcode::kCmpNe:
      case Opcode::kAnd:
      case Opcode::kOr: {
        ExprRef b = pop();
        ExprRef a = pop();
        stack.push_back(
            Expr::MakeOp(inst.op, {std::move(a), std::move(b)}, p));
        break;
      }
      case Opcode::kCall: {
        const Builtin* builtin =
            BuiltinRegistry::Get().FindById(inst.operand);
        MANIMAL_CHECK(builtin != nullptr);
        std::vector<ExprRef> args(builtin->arity);
        for (int i = builtin->arity - 1; i >= 0; --i) args[i] = pop();
        stack.push_back(Expr::MakeCall(builtin, std::move(args), p));
        break;
      }
      case Opcode::kEmit:
        pop();
        pop();
        break;
      case Opcode::kLog:
        pop();
        break;
      case Opcode::kJmp:
      case Opcode::kJmpIfTrue:
      case Opcode::kJmpIfFalse:
      case Opcode::kReturn:
        // Terminators are the last instruction of a block; p < pc means
        // we should never step over one.
        MANIMAL_UNREACHABLE();
    }
  }
  return stack;
}

}  // namespace manimal::analysis
