// Symbolic expressions recovered from MRIL bytecode.
//
// An Expr is the analyzer's picture of "where a runtime value comes
// from": a function of map() parameters, record fields, constants,
// member variables, and builtin calls. It is exactly the use-def DAG
// of paper §3.2 (getUseDef), materialized as a tree whose leaves are
// parameters/constants/members and whose internal nodes are the
// operators and calls that combine them. The isFunc test walks it.

#ifndef MANIMAL_ANALYSIS_EXPR_H_
#define MANIMAL_ANALYSIS_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "mril/builtins.h"
#include "mril/opcode.h"
#include "serde/value.h"

namespace manimal::analysis {

struct Expr;
using ExprRef = std::shared_ptr<const Expr>;

struct Expr {
  enum class Kind {
    kConst,    // constant-pool value
    kParam,    // map()/reduce() parameter `index`
    kField,    // field `index` of args[0] (a record-typed expr)
    kMember,   // class member variable `index` — taints isFunc
    kOp,       // arithmetic/comparison/logic opcode over args
    kCall,     // builtin call over args
    kUnknown,  // analyzer could not resolve (multiple reaching defs,
               // loop-carried value, unreadable stack shape) — taints
               // isFunc, which is the safe default
  };

  Kind kind = Kind::kUnknown;
  int index = -1;                      // param/field/member index
  Value constant;                      // kConst
  mril::Opcode op = mril::Opcode::kNop;  // kOp
  const mril::Builtin* builtin = nullptr;  // kCall
  std::vector<ExprRef> args;
  // The instruction that produced this value (for use-def chain
  // rendering, Figure 5); -1 for parameters.
  int origin_pc = -1;

  // Structural equality (ignores origin_pc).
  bool Equals(const Expr& other) const;

  // Readable form, e.g. "(v.field[1] > i64:1)".
  std::string ToString() const;

  // ---- factories ----
  static ExprRef MakeConst(Value v, int pc);
  static ExprRef MakeParam(int index, int pc);
  static ExprRef MakeField(ExprRef base, int index, int pc);
  static ExprRef MakeMember(int index, int pc);
  static ExprRef MakeOp(mril::Opcode op, std::vector<ExprRef> args, int pc);
  static ExprRef MakeCall(const mril::Builtin* builtin,
                          std::vector<ExprRef> args, int pc);
  static ExprRef MakeUnknown(int pc);
};

// Collects the set of field indexes of the map value parameter
// (param 1) referenced anywhere in the expression — fieldsIn() of the
// Figure 6 projection algorithm. Returns false if the expression
// touches the value parameter in a way that is not a plain field
// access (e.g. passes the whole record or an opaque blob to a call),
// in which case *every* field must be treated as used.
bool CollectUsedFields(const ExprRef& expr, std::vector<bool>* used);

// isFunc (paper §3.2): true iff the value is a pure function of the
// function's parameters and constants — no member variables, no
// unknown resolutions, no calls to builtins the analyzer lacks purity
// knowledge of. On failure, *reason names the offending node.
bool IsFunctional(const ExprRef& expr, std::string* reason);

}  // namespace manimal::analysis

#endif  // MANIMAL_ANALYSIS_EXPR_H_
