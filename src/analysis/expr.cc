#include "analysis/expr.h"

#include "common/strings.h"
#include "mril/program.h"

namespace manimal::analysis {

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kConst:
      if (!(constant == other.constant) ||
          constant.kind() != other.constant.kind()) {
        return false;
      }
      break;
    case Kind::kParam:
    case Kind::kMember:
      if (index != other.index) return false;
      break;
    case Kind::kField:
      if (index != other.index) return false;
      break;
    case Kind::kOp:
      if (op != other.op) return false;
      break;
    case Kind::kCall:
      if (builtin != other.builtin) return false;
      break;
    case Kind::kUnknown:
      return false;  // unknowns never compare equal, even to themselves
  }
  if (args.size() != other.args.size()) return false;
  for (size_t i = 0; i < args.size(); ++i) {
    if (!args[i]->Equals(*other.args[i])) return false;
  }
  return true;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return constant.ToString();
    case Kind::kParam:
      return StrPrintf("param%d", index);
    case Kind::kField:
      return args.empty()
                 ? StrPrintf("?.field[%d]", index)
                 : StrPrintf("%s.field[%d]", args[0]->ToString().c_str(),
                             index);
    case Kind::kMember:
      return StrPrintf("member%d", index);
    case Kind::kOp: {
      std::string m(mril::GetOpcodeInfo(op).mnemonic);
      if (args.size() == 2) {
        return "(" + args[0]->ToString() + " " + m + " " +
               args[1]->ToString() + ")";
      }
      if (args.size() == 1) return "(" + m + " " + args[0]->ToString() + ")";
      return m;
    }
    case Kind::kCall: {
      std::string out = builtin != nullptr ? builtin->name : "?call";
      out += "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) out += ", ";
        out += args[i]->ToString();
      }
      out += ")";
      return out;
    }
    case Kind::kUnknown:
      return "<unknown>";
  }
  return "?";
}

ExprRef Expr::MakeConst(Value v, int pc) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kConst;
  e->constant = std::move(v);
  e->origin_pc = pc;
  return e;
}

ExprRef Expr::MakeParam(int index, int pc) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kParam;
  e->index = index;
  e->origin_pc = pc;
  return e;
}

ExprRef Expr::MakeField(ExprRef base, int index, int pc) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kField;
  e->index = index;
  e->args.push_back(std::move(base));
  e->origin_pc = pc;
  return e;
}

ExprRef Expr::MakeMember(int index, int pc) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kMember;
  e->index = index;
  e->origin_pc = pc;
  return e;
}

ExprRef Expr::MakeOp(mril::Opcode op, std::vector<ExprRef> args, int pc) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kOp;
  e->op = op;
  e->args = std::move(args);
  e->origin_pc = pc;
  return e;
}

ExprRef Expr::MakeCall(const mril::Builtin* builtin,
                       std::vector<ExprRef> args, int pc) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCall;
  e->builtin = builtin;
  e->args = std::move(args);
  e->origin_pc = pc;
  return e;
}

ExprRef Expr::MakeUnknown(int pc) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kUnknown;
  e->origin_pc = pc;
  return e;
}

bool CollectUsedFields(const ExprRef& expr, std::vector<bool>* used) {
  if (expr == nullptr) return false;
  switch (expr->kind) {
    case Expr::Kind::kField: {
      // Field access on the value parameter: record the index, and do
      // NOT recurse into the base (the base is the record itself, whose
      // "use" is exactly this field).
      const ExprRef& base = expr->args.empty() ? nullptr : expr->args[0];
      if (base != nullptr && base->kind == Expr::Kind::kParam &&
          base->index == mril::kMapValueParam) {
        if (expr->index >= 0 &&
            expr->index < static_cast<int>(used->size())) {
          (*used)[expr->index] = true;
          return true;
        }
        return false;
      }
      // Field-of-something-else: conservative.
      return false;
    }
    case Expr::Kind::kParam:
      // The whole record escaping (emitted or passed to a call) means
      // every field is used.
      if (expr->index == mril::kMapValueParam) return false;
      return true;
    case Expr::Kind::kUnknown:
      return false;
    case Expr::Kind::kConst:
    case Expr::Kind::kMember:
      return true;
    case Expr::Kind::kOp:
    case Expr::Kind::kCall:
      for (const ExprRef& a : expr->args) {
        if (!CollectUsedFields(a, used)) return false;
      }
      return true;
  }
  return false;
}

bool IsFunctional(const ExprRef& expr, std::string* reason) {
  if (expr == nullptr) {
    if (reason) *reason = "unresolved expression";
    return false;
  }
  switch (expr->kind) {
    case Expr::Kind::kConst:
    case Expr::Kind::kParam:
      return true;
    case Expr::Kind::kMember:
      if (reason) {
        *reason = StrPrintf(
            "depends on class member variable member%d (not a pure "
            "function of map() inputs)",
            expr->index);
      }
      return false;
    case Expr::Kind::kUnknown:
      if (reason) {
        *reason = "contains a value the analyzer could not resolve";
      }
      return false;
    case Expr::Kind::kField:
    case Expr::Kind::kOp:
      for (const ExprRef& a : expr->args) {
        if (!IsFunctional(a, reason)) return false;
      }
      return true;
    case Expr::Kind::kCall:
      if (expr->builtin == nullptr || !expr->builtin->functional) {
        if (reason) {
          *reason = StrPrintf(
              "calls %s, which the analyzer has no purity knowledge of",
              expr->builtin ? expr->builtin->name.c_str() : "?");
        }
        return false;
      }
      for (const ExprRef& a : expr->args) {
        if (!IsFunctional(a, reason)) return false;
      }
      return true;
  }
  return false;
}

}  // namespace manimal::analysis
