// Control-flow graph over an MRIL function (paper §3.1, Figure 4).
//
// Basic blocks are maximal single-entry single-exit instruction runs;
// edges carry the branch polarity that selects them, which the
// selection analyzer uses to build path conditions (conds(path) in the
// Figure 3 algorithm).

#ifndef MANIMAL_ANALYSIS_CFG_H_
#define MANIMAL_ANALYSIS_CFG_H_

#include <string>
#include <vector>

#include "mril/program.h"

namespace manimal::analysis {

using mril::Function;
using mril::Program;

enum class EdgeKind {
  kFallthrough,  // sequential flow
  kJump,         // unconditional jmp
  kTrue,         // conditional branch taken-on-true side
  kFalse,        // conditional branch taken-on-false side
};

const char* EdgeKindName(EdgeKind kind);

struct CfgEdge {
  int from = 0;
  int to = 0;
  EdgeKind kind = EdgeKind::kFallthrough;
  // The conditional-branch instruction that decides this edge
  // (meaningful for kTrue/kFalse; -1 otherwise).
  int branch_pc = -1;
};

struct BasicBlock {
  int id = 0;
  int first_pc = 0;  // inclusive
  int last_pc = 0;   // inclusive
  std::vector<int> succ_edges;  // indexes into Cfg::edges()
  std::vector<int> pred_edges;
};

class Cfg {
 public:
  // The function must have passed the verifier.
  static Cfg Build(const Function& fn);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const std::vector<CfgEdge>& edges() const { return edges_; }
  const BasicBlock& block(int id) const { return blocks_.at(id); }
  const CfgEdge& edge(int id) const { return edges_.at(id); }

  // Entry block is always id 0 (contains pc 0).
  int entry_block() const { return 0; }

  // Block containing the given instruction.
  int BlockOf(int pc) const { return block_of_.at(pc); }

  // True if any cycle exists (loops make path enumeration unsafe for
  // selection analysis; the analyzer then declines to optimize).
  bool HasCycle() const;

  // Blocks from which `target` is reachable (including target itself).
  std::vector<bool> BlocksReaching(int target) const;

  // Blocks reachable from entry.
  std::vector<bool> ReachableBlocks() const;

  // GraphViz rendering (Figure 4). Instruction text is resolved
  // against the program.
  std::string ToDot(const Program& program, const Function& fn) const;

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<CfgEdge> edges_;
  std::vector<int> block_of_;  // pc -> block id
};

}  // namespace manimal::analysis

#endif  // MANIMAL_ANALYSIS_CFG_H_
