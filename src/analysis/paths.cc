#include "analysis/paths.h"

namespace manimal::analysis {

namespace {

// Recursive enumeration over the acyclic relevant subgraph. Depth is
// bounded by the block count (the subgraph is verified acyclic first).
struct Enumerator {
  const Cfg& cfg;
  int target;
  int max_paths;
  const std::vector<bool>& reaches;
  std::vector<CfgPath>* out;
  CfgPath current;
  bool overflow = false;

  void Visit(int block) {
    if (overflow) return;
    current.blocks.push_back(block);
    if (block == target) {
      // A path ends at its first arrival at the target block;
      // conditions past it are irrelevant to reaching the emit.
      out->push_back(current);
      if (static_cast<int>(out->size()) > max_paths) overflow = true;
    } else {
      for (int eid : cfg.block(block).succ_edges) {
        const CfgEdge& e = cfg.edge(eid);
        if (!reaches[e.to]) continue;
        bool conditional =
            e.kind == EdgeKind::kTrue || e.kind == EdgeKind::kFalse;
        if (conditional) {
          current.conditions.push_back(
              PathCondition{e.branch_pc, e.kind == EdgeKind::kTrue});
        }
        Visit(e.to);
        if (conditional) current.conditions.pop_back();
      }
    }
    current.blocks.pop_back();
  }
};

// Cycle check restricted to blocks that are reachable from entry and
// can reach the target.
bool RelevantSubgraphHasCycle(const Cfg& cfg,
                              const std::vector<bool>& relevant) {
  enum { kWhite, kGray, kBlack };
  std::vector<int> color(cfg.blocks().size(), kWhite);
  std::vector<std::pair<int, size_t>> stack;
  for (size_t root = 0; root < cfg.blocks().size(); ++root) {
    if (!relevant[root] || color[root] != kWhite) continue;
    stack.emplace_back(static_cast<int>(root), 0);
    color[root] = kGray;
    while (!stack.empty()) {
      auto& [b, i] = stack.back();
      if (i < cfg.block(b).succ_edges.size()) {
        int to = cfg.edge(cfg.block(b).succ_edges[i]).to;
        ++i;
        if (!relevant[to]) continue;
        if (color[to] == kGray) return true;
        if (color[to] == kWhite) {
          color[to] = kGray;
          stack.emplace_back(to, 0);
        }
      } else {
        color[b] = kBlack;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

Result<std::vector<CfgPath>> EnumeratePathsTo(const Cfg& cfg,
                                              int target_block,
                                              int max_paths) {
  std::vector<bool> reaches = cfg.BlocksReaching(target_block);
  std::vector<bool> reachable = cfg.ReachableBlocks();
  std::vector<bool> relevant(cfg.blocks().size(), false);
  for (size_t b = 0; b < relevant.size(); ++b) {
    relevant[b] = reaches[b] && reachable[b];
  }
  if (RelevantSubgraphHasCycle(cfg, relevant)) {
    return Status::NotSupported(
        "control-flow cycle can reach the emit; path enumeration unsafe");
  }

  std::vector<CfgPath> result;
  Enumerator en{cfg, target_block, max_paths, relevant, &result, {}, false};
  if (relevant[cfg.entry_block()]) {
    en.Visit(cfg.entry_block());
  }
  if (en.overflow) {
    return Status::NotSupported("too many paths to the emit");
  }
  return result;
}

}  // namespace manimal::analysis
