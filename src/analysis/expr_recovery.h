// Recovers symbolic expressions (use-def DAGs) from verified MRIL
// bytecode — the engine behind getUseDef() in paper §3.2.
//
// Because the verifier guarantees the operand stack is empty at every
// basic-block boundary, each interesting operand (a branch condition,
// an emitted key/value, a stored value) can be reconstructed by
// symbolically re-executing only the block that consumes it. Loads of
// locals are resolved through reaching definitions, recursively
// expanding each definition's stored expression; anything ambiguous
// (multiple distinct reaching definitions, loop-carried values)
// resolves to Unknown, which downstream safety tests reject.

#ifndef MANIMAL_ANALYSIS_EXPR_RECOVERY_H_
#define MANIMAL_ANALYSIS_EXPR_RECOVERY_H_

#include <map>
#include <set>
#include <utility>

#include "analysis/cfg.h"
#include "analysis/expr.h"
#include "analysis/reaching_defs.h"
#include "mril/program.h"

namespace manimal::analysis {

class ExprRecovery {
 public:
  ExprRecovery(const Program& program, const Function& fn, const Cfg& cfg,
               const ReachingDefs& reaching);

  // The condition value consumed by the conditional branch at pc.
  ExprRef BranchCondition(int branch_pc);

  // (key, value) operands of the emit at pc.
  std::pair<ExprRef, ExprRef> EmitOperands(int emit_pc);

  // The value consumed by store_local/store_member at pc.
  ExprRef StoredValue(int def_pc);

  // The value consumed by log at pc.
  ExprRef LogOperand(int log_pc);

 private:
  // Symbolic stack contents immediately before executing `pc`.
  std::vector<ExprRef> StackBefore(int pc);

  // Expression observed by a load of `var` at `pc`.
  ExprRef ResolveLoad(int pc, VarRef var);

  const Program& program_;
  const Function& fn_;
  const Cfg& cfg_;
  const ReachingDefs& reaching_;

  std::map<int, ExprRef> stored_memo_;  // def pc -> expr
  std::set<int> in_progress_;           // cycle guard
};

}  // namespace manimal::analysis

#endif  // MANIMAL_ANALYSIS_EXPR_RECOVERY_H_
