#include "analysis/reaching_defs.h"

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace manimal::analysis {

using mril::Instruction;
using mril::Opcode;

namespace {

bool IsDef(const Instruction& inst, VarRef* var) {
  if (inst.op == Opcode::kStoreLocal) {
    *var = VarRef{VarRef::Kind::kLocal, inst.operand};
    return true;
  }
  if (inst.op == Opcode::kStoreMember) {
    *var = VarRef{VarRef::Kind::kMember, inst.operand};
    return true;
  }
  return false;
}

}  // namespace

ReachingDefs::ReachingDefs(const Function& fn, const Cfg& cfg)
    : fn_(fn), cfg_(cfg) {
  obs::ScopedSpan span("analysis.reaching_defs", "analysis");
  span.AddArg("function", fn.name);
  obs::MetricsRegistry::Get()
      .GetCounter("analysis.reaching_defs_runs")
      ->Increment();
  const int n = static_cast<int>(fn.code.size());
  def_index_of_pc_.assign(n, -1);
  for (int pc = 0; pc < n; ++pc) {
    VarRef var{VarRef::Kind::kLocal, 0};
    if (IsDef(fn.code[pc], &var)) {
      def_index_of_pc_[pc] = static_cast<int>(def_sites_.size());
      def_sites_.push_back(pc);
      def_var_.push_back(var);
    }
  }

  const int num_defs = static_cast<int>(def_sites_.size());
  const int words = (num_defs + 63) / 64;
  const int num_blocks = static_cast<int>(cfg.blocks().size());

  // GEN/KILL per block.
  std::vector<Bits> gen(num_blocks, Bits(words, 0));
  std::vector<Bits> kill(num_blocks, Bits(words, 0));
  for (const BasicBlock& bb : cfg.blocks()) {
    for (int pc = bb.first_pc; pc <= bb.last_pc; ++pc) {
      int d = def_index_of_pc_[pc];
      if (d < 0) continue;
      // This def kills every other def of the same variable and any
      // earlier gen of it in this block.
      for (int other = 0; other < num_defs; ++other) {
        if (other != d && def_var_[other] == def_var_[d]) {
          SetBit(&kill[bb.id], other);
          // and clear from gen if set
          gen[bb.id][other / 64] &= ~(uint64_t{1} << (other % 64));
        }
      }
      SetBit(&gen[bb.id], d);
      kill[bb.id][d / 64] &= ~(uint64_t{1} << (d % 64));
    }
  }

  // Worklist iteration: in[b] = union of out[p]; out = gen | (in &
  // ~kill).
  in_.assign(num_blocks, Bits(words, 0));
  std::vector<Bits> out(num_blocks, Bits(words, 0));
  for (int b = 0; b < num_blocks; ++b) out[b] = gen[b];

  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = 0; b < num_blocks; ++b) {
      Bits new_in(words, 0);
      for (int eid : cfg.block(b).pred_edges) {
        int p = cfg.edge(eid).from;
        for (int w = 0; w < words; ++w) new_in[w] |= out[p][w];
      }
      Bits new_out(words, 0);
      for (int w = 0; w < words; ++w) {
        new_out[w] = gen[b][w] | (new_in[w] & ~kill[b][w]);
      }
      if (new_in != in_[b] || new_out != out[b]) {
        in_[b] = std::move(new_in);
        out[b] = std::move(new_out);
        changed = true;
      }
    }
  }
}

std::vector<int> ReachingDefs::DefsReaching(int pc, VarRef var) const {
  MANIMAL_CHECK(pc >= 0 && pc < static_cast<int>(fn_.code.size()));
  const int b = cfg_.BlockOf(pc);
  const BasicBlock& bb = cfg_.block(b);
  const int num_defs = static_cast<int>(def_sites_.size());

  // Start from the block's IN set, then walk forward to pc applying
  // local gen/kill.
  Bits live = in_[b];
  for (int p = bb.first_pc; p < pc; ++p) {
    int d = def_index_of_pc_[p];
    if (d < 0) continue;
    for (int other = 0; other < num_defs; ++other) {
      if (def_var_[other] == def_var_[d]) {
        live[other / 64] &= ~(uint64_t{1} << (other % 64));
      }
    }
    SetBit(&live, d);
  }

  std::vector<int> result;
  for (int d = 0; d < num_defs; ++d) {
    if (def_var_[d] == var && TestBit(live, d)) {
      result.push_back(def_sites_[d]);
    }
  }
  return result;
}

}  // namespace manimal::analysis
