#include "analysis/side_effects.h"

#include "common/strings.h"
#include "mril/builtins.h"

namespace manimal::analysis {

using mril::Opcode;

std::vector<SideEffect> FindSideEffects(const mril::Function& fn) {
  std::vector<SideEffect> out;
  for (int pc = 0; pc < static_cast<int>(fn.code.size()); ++pc) {
    const mril::Instruction& inst = fn.code[pc];
    switch (inst.op) {
      case Opcode::kLog:
        out.push_back(
            SideEffect{pc, SideEffectKind::kLog, "debug log emission"});
        break;
      case Opcode::kStoreMember:
        out.push_back(SideEffect{
            pc, SideEffectKind::kMemberWrite,
            StrPrintf("writes member variable %d", inst.operand)});
        break;
      case Opcode::kCall: {
        const mril::Builtin* b =
            mril::BuiltinRegistry::Get().FindById(inst.operand);
        if (b != nullptr && !b->functional) {
          out.push_back(SideEffect{
              pc, SideEffectKind::kImpureCall,
              "calls " + b->name + " (no purity knowledge)"});
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

bool HasMemberWrites(const mril::Function& fn) {
  for (const mril::Instruction& inst : fn.code) {
    if (inst.op == Opcode::kStoreMember) return true;
  }
  return false;
}

}  // namespace manimal::analysis
