// Acyclic control-flow path enumeration — paths(s) and conds(path)
// from the Figure 3 selection-detection algorithm.
//
// For a statement s (an emit), every entry→block(s) path contributes a
// conjunction of branch conditions with polarities; the disjunction
// over paths is the program's emit condition. Enumeration refuses
// cyclic CFGs and path blowups: both cases make the path set
// unrepresentative or unbounded, and the analyzer's contract is to
// decline rather than risk an unsafe optimization.

#ifndef MANIMAL_ANALYSIS_PATHS_H_
#define MANIMAL_ANALYSIS_PATHS_H_

#include <vector>

#include "analysis/cfg.h"
#include "common/status.h"

namespace manimal::analysis {

// One conditional-branch decision along a path: the branch instruction
// and the value its condition must evaluate to for the path to
// continue.
struct PathCondition {
  int branch_pc = -1;
  bool polarity = true;

  bool operator==(const PathCondition& other) const = default;
};

struct CfgPath {
  std::vector<int> blocks;               // entry ... target
  std::vector<PathCondition> conditions;  // conds(path)
};

// Enumerates all acyclic paths from the entry block to `target_block`.
// Fails with NotSupported if the CFG contains a cycle anywhere
// reachable-from-entry that can also reach the target, or if more than
// `max_paths` paths exist.
Result<std::vector<CfgPath>> EnumeratePathsTo(const Cfg& cfg,
                                              int target_block,
                                              int max_paths = 4096);

}  // namespace manimal::analysis

#endif  // MANIMAL_ANALYSIS_PATHS_H_
