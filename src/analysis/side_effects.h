// Side-effect scan (paper §2.2: "Anything that does not impact the
// program's final output is fair game for the analyzer to consider for
// downstream removal or modification, including code that has side
// effects such as debugging statements... Manimal can currently
// detect, though not optimize, such side effects.")

#ifndef MANIMAL_ANALYSIS_SIDE_EFFECTS_H_
#define MANIMAL_ANALYSIS_SIDE_EFFECTS_H_

#include <string>
#include <vector>

#include "mril/program.h"

namespace manimal::analysis {

enum class SideEffectKind {
  kLog,              // debug logging (skippable under optimization)
  kMemberWrite,      // mutates persistent map state
  kImpureCall,       // call into a builtin with no purity knowledge
};

struct SideEffect {
  int pc = -1;
  SideEffectKind kind = SideEffectKind::kLog;
  std::string description;
};

std::vector<SideEffect> FindSideEffects(const mril::Function& fn);

// True if the function writes any member variable (the Figure 2
// hazard: selection must not change how many times map() runs when its
// state feeds back into output decisions, so any member write vetoes
// invocation-skipping optimizations).
bool HasMemberWrites(const mril::Function& fn);

}  // namespace manimal::analysis

#endif  // MANIMAL_ANALYSIS_SIDE_EFFECTS_H_
