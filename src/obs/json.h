// Telemetry substrate, part 3: one JSON implementation for every
// machine-readable artifact the system emits.
//
// Before this header existed the repo had three hand-rolled copies of
// JSON string escaping (metrics dump, trace export, bench reporter)
// with subtly different coverage — the bench copy, for instance,
// forgot to escape '\r'. Every writer (DumpMetricsJson, the Chrome
// trace export, the bench JSON-lines reporter, the run journal, and
// the EXPLAIN renderers) now goes through these helpers, and the
// matching minimal parser lets tests and the obs_check CI tool
// round-trip what was written instead of grepping it.
//
// Like the rest of src/obs/, this library is dependency-free (not
// even common/) so the lowest layers can use it without cycles.

#ifndef MANIMAL_OBS_JSON_H_
#define MANIMAL_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace manimal::obs {

// ---- writing ----

// Appends `s` with every character JSON requires escaped ('"', '\\',
// control characters as \uXXXX with the common \n \t \r shorthands).
void JsonAppendEscaped(std::string* out, std::string_view s);

std::string JsonEscape(std::string_view s);

// `"escaped"` — the quoted form.
std::string JsonQuote(std::string_view s);

// Shortest-round-trip-ish representation (%.9g); non-finite values
// (which JSON cannot carry) become 0.
std::string JsonNumber(double v);

// Fixed decimal places, e.g. trace timestamps at microsecond
// granularity with %.3f. Non-finite values become 0.
std::string JsonFixed(double v, int decimals);

// ---- parsing ----

// A parsed JSON value. Object member order is preserved (writers in
// this repo emit deterministic field order; golden tests rely on it).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // First member with this key, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;

  // Find(key)->number / ->str with defaults for missing/mistyped.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key,
                       std::string_view fallback) const;
};

// Parses exactly one JSON document (leading/trailing whitespace
// allowed, nothing else may follow). On failure returns false and
// describes the problem in *error with a byte offset.
bool JsonParse(std::string_view text, JsonValue* out,
               std::string* error);

}  // namespace manimal::obs

#endif  // MANIMAL_OBS_JSON_H_
