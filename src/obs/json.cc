#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace manimal::obs {

void JsonAppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(
                            static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  JsonAppendEscaped(&out, s);
  return out;
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  JsonAppendEscaped(&out, s);
  out += '"';
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string JsonFixed(double v, int decimals) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->str
                                          : std::string(fallback);
}

namespace {

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, /*depth=*/0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing content");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue item;
      if (!ParseValue(&item, depth + 1)) return false;
      out->items.push_back(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Fail("dangling escape");
      char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u digit");
            }
          }
          pos_ += 4;
          AppendUtf8(out, code);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  // BMP code point to UTF-8 (surrogate pairs are not combined — the
  // writers in this repo never emit them).
  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Fail("malformed number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return true;
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonParse(std::string_view text, JsonValue* out,
               std::string* error) {
  *out = JsonValue();
  Parser parser(text, error);
  return parser.Parse(out);
}

}  // namespace manimal::obs
