// Telemetry substrate, part 4: a structured per-job run journal.
//
// The tracer answers "where did the time go" visually; the journal
// answers "what did the run DO", machine-readably. When
// MANIMAL_JOURNAL=<path> is set, every job / plan / task lifecycle
// transition — plan selection, task start, retry, speculative launch,
// fault-injection hit, shuffle spill, partition merge, output commit,
// job finish — is appended to <path> as one JSON object per line
// (JSON lines), in emission order, with a stable versioned schema
// ("v" field, currently 1) and a process-monotonic sequence number.
//
// Journal events and Chrome-trace spans share identifiers and the
// timebase: the engine stamps the same job id ("job-<n>") and task id
// ("m0003" / "r0001") strings on both, and "ts_us" is microseconds
// since the tracer's epoch, so a journal line can be located inside
// the trace timeline directly. See docs/observability.md for the
// event schema table.
//
// When the variable is unset, Event() costs one relaxed atomic load
// and every builder call is a no-op — cheap enough to leave the
// emission sites compiled in everywhere. Events are task/job-level,
// never per-record.

#ifndef MANIMAL_OBS_JOURNAL_H_
#define MANIMAL_OBS_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace manimal::obs {

// Version of the journal line schema. Bump when a field is renamed,
// removed, or changes meaning; adding fields is backward-compatible.
inline constexpr int kJournalSchemaVersion = 1;

class Journal;

// One pending journal line. Obtained from Journal::Event(); field
// setters append in call order; Emit() writes the line (or the
// destructor drops it). All calls are no-ops when the journal is
// disabled.
class JournalEvent {
 public:
  JournalEvent(JournalEvent&&) = default;
  JournalEvent(const JournalEvent&) = delete;
  JournalEvent& operator=(const JournalEvent&) = delete;

  JournalEvent& Str(std::string_view key, std::string_view value);
  JournalEvent& Int(std::string_view key, int64_t value);
  JournalEvent& Uint(std::string_view key, uint64_t value);
  JournalEvent& Num(std::string_view key, double value);
  JournalEvent& Bool(std::string_view key, bool value);
  // A wall-clock-derived duration in seconds: written with %.6f, and
  // zeroed in deterministic mode so golden-file tests stay
  // byte-stable under a fixed seed.
  JournalEvent& Time(std::string_view key, double seconds);
  // Pre-serialized JSON (objects/arrays), trusted verbatim.
  JournalEvent& Raw(std::string_view key, std::string_view json);

  void Emit();

 private:
  friend class Journal;
  JournalEvent(Journal* journal, const char* type)
      : journal_(journal), type_(type) {}

  Journal* journal_;  // nullptr: disabled, everything no-ops
  const char* type_;
  std::string fields_;
};

class Journal {
 public:
  static Journal& Get();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Starts a journal line of the given event type. `type` must
  // outlive the builder (string literals in practice).
  JournalEvent Event(const char* type);

  // Total events written since process start (or the last reset).
  uint64_t events_written() const;

  // ---- test hooks ----
  // Points the journal at `path` (truncating it) and enables
  // recording without the environment variable.
  void SetOutputPathForTest(const std::string& path);
  // Deterministic mode: ts_us and every Time() field are written as
  // 0, so a single-threaded run under a fixed seed is byte-stable.
  void SetDeterministicForTest(bool on) {
    deterministic_.store(on, std::memory_order_relaxed);
  }
  bool deterministic() const {
    return deterministic_.load(std::memory_order_relaxed);
  }
  // Closes the output, resets the sequence counter, and re-disables
  // recording unless MANIMAL_JOURNAL is set in the environment.
  void ResetForTest();

 private:
  friend class JournalEvent;
  Journal();

  void Write(const char* type, const std::string& fields);

  std::atomic<bool> enabled_{false};
  std::atomic<bool> deterministic_{false};
  std::atomic<uint64_t> events_written_{0};
  std::mutex mu_;
  std::string path_;
  std::FILE* file_ = nullptr;  // opened lazily on first write
  uint64_t next_seq_ = 1;
};

}  // namespace manimal::obs

#endif  // MANIMAL_OBS_JOURNAL_H_
