// Telemetry substrate, part 2: a span-based tracer with Chrome
// trace-event JSON export.
//
// Spans are named, nested phases of work ("analyzer.select",
// "map_task", "shuffle.merge") recorded with microsecond timestamps
// and small sequential thread ids into per-thread buffers (no locking
// on the record path beyond one uncontended per-thread mutex), merged
// on export. The output is the Chrome trace-event format: open it at
// chrome://tracing or https://ui.perfetto.dev.
//
// Enabling: set MANIMAL_TRACE=<path>. The execution fabric rewrites
// the file at the end of every job (cumulative — the final file holds
// the whole process), and an atexit hook writes whatever is buffered
// at clean process exit. When the variable is unset, recording is a
// single relaxed atomic load and spans never touch the clock.
//
// Naming scheme (see docs/observability.md): span names are
// dot-separated like metric names; the `cat` field is the subsystem
// ("analysis", "analyzer", "optimizer", "exec", "index", "system").

#ifndef MANIMAL_OBS_TRACE_H_
#define MANIMAL_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace manimal::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';  // 'X' complete span, 'i' instant event
  double ts_us = 0;  // microseconds since process trace epoch
  double dur_us = 0; // span duration ('X' only)
  int tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  static Tracer& Get();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  // Tests flip recording on without the environment variable.
  void SetEnabledForTest(bool on) { enabled_.store(on); }

  // Microseconds since the tracer's epoch (steady clock).
  double NowMicros() const;

  // Appends an event to the calling thread's buffer; assigns the tid.
  // No-op when disabled.
  void Record(TraceEvent event);

  // Merged copy of every buffered event (live threads + finished
  // ones), sorted by timestamp.
  std::vector<TraceEvent> Snapshot() const;

  // Number of buffered events with the given name.
  size_t CountEvents(std::string_view name) const;

  // Chrome trace-event JSON for everything buffered so far.
  std::string ExportJson() const;

  // Writes ExportJson() to the MANIMAL_TRACE path (or the test
  // override); returns false when no path is configured or the write
  // failed.
  bool WriteIfConfigured() const;
  void SetOutputPathForTest(std::string path) {
    std::lock_guard<std::mutex> lock(mu_);
    output_path_ = std::move(path);
  }

  void ClearForTest();

 private:
  struct ThreadLog {
    int tid = 0;
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
  };

  Tracer();
  ThreadLog* LocalLog();
  void Retire(ThreadLog* log);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::string output_path_;
  int next_tid_ = 1;
  std::vector<ThreadLog*> live_;
  std::vector<TraceEvent> retired_;
  int64_t epoch_ns_ = 0;
};

// RAII span: captures the start time at construction and records a
// complete ('X') event at destruction. All work is skipped when
// tracing is disabled at construction time.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "manimal");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches a key/value arg shown in the trace viewer.
  void AddArg(std::string key, std::string value);

 private:
  bool active_;
  double start_us_ = 0;
  const char* name_;
  const char* cat_;
  std::vector<std::pair<std::string, std::string>> args_;
};

// Records an instant ('i') event, e.g. a shuffle spill.
void TraceInstant(
    const char* name, const char* cat = "manimal",
    std::vector<std::pair<std::string, std::string>> args = {});

}  // namespace manimal::obs

#endif  // MANIMAL_OBS_TRACE_H_
