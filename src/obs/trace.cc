#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/json.h"

namespace manimal::obs {

namespace {

// Timestamps/durations at fixed microsecond-with-nanoseconds
// granularity, the form the Chrome trace viewer expects.
std::string TraceNumber(double v) { return JsonFixed(v, 3); }

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AtExitFlush() { Tracer::Get().WriteIfConfigured(); }

}  // namespace

Tracer::Tracer() : epoch_ns_(SteadyNowNs()) {
  const char* path = std::getenv("MANIMAL_TRACE");
  if (path != nullptr && path[0] != '\0') {
    output_path_ = path;
    enabled_.store(true, std::memory_order_relaxed);
    std::atexit(&AtExitFlush);
  }
}

Tracer& Tracer::Get() {
  // Leaked singleton: thread-local buffers retire into it during
  // thread shutdown, including the main thread's at process exit.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

double Tracer::NowMicros() const {
  return static_cast<double>(SteadyNowNs() - epoch_ns_) / 1000.0;
}

Tracer::ThreadLog* Tracer::LocalLog() {
  // The holder's destructor retires the buffer when the thread dies,
  // preserving its events for later export.
  struct Holder {
    ThreadLog* log = nullptr;
    ~Holder() {
      if (log != nullptr) Tracer::Get().Retire(log);
    }
  };
  thread_local Holder holder;
  if (holder.log == nullptr) {
    auto* log = new ThreadLog();
    {
      std::lock_guard<std::mutex> lock(mu_);
      log->tid = next_tid_++;
      live_.push_back(log);
    }
    holder.log = log;
  }
  return holder.log;
}

void Tracer::Retire(ThreadLog* log) {
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::lock_guard<std::mutex> log_lock(log->mu);
    retired_.insert(retired_.end(),
                    std::make_move_iterator(log->events.begin()),
                    std::make_move_iterator(log->events.end()));
  }
  live_.erase(std::remove(live_.begin(), live_.end(), log),
              live_.end());
  delete log;
}

void Tracer::Record(TraceEvent event) {
  if (!enabled()) return;
  ThreadLog* log = LocalLog();
  event.tid = log->tid;
  std::lock_guard<std::mutex> lock(log->mu);
  log->events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = retired_;
    for (const ThreadLog* log : live_) {
      std::lock_guard<std::mutex> log_lock(log->mu);
      out.insert(out.end(), log->events.begin(), log->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

size_t Tracer::CountEvents(std::string_view name) const {
  size_t n = 0;
  for (const TraceEvent& e : Snapshot()) {
    if (e.name == name) ++n;
  }
  return n;
}

std::string Tracer::ExportJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\"";
    out += ",\"cat\":\"" + JsonEscape(e.cat) + "\"";
    out += ",\"ph\":\"";
    out += e.phase;
    out += "\"";
    out += ",\"ts\":" + TraceNumber(e.ts_us);
    if (e.phase == 'X') out += ",\"dur\":" + TraceNumber(e.dur_us);
    if (e.phase == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [k, v] : e.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::WriteIfConfigured() const {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = output_path_;
  }
  if (path.empty()) return false;
  std::string json = ExportJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

void Tracer::ClearForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  retired_.clear();
  for (ThreadLog* log : live_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    log->events.clear();
  }
}

ScopedSpan::ScopedSpan(const char* name, const char* cat)
    : active_(Tracer::Get().enabled()), name_(name), cat_(cat) {
  if (active_) start_us_ = Tracer::Get().NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer& tracer = Tracer::Get();
  TraceEvent e;
  e.name = name_;
  e.cat = cat_;
  e.phase = 'X';
  e.ts_us = start_us_;
  e.dur_us = tracer.NowMicros() - start_us_;
  e.args = std::move(args_);
  tracer.Record(std::move(e));
}

void ScopedSpan::AddArg(std::string key, std::string value) {
  if (!active_) return;
  args_.emplace_back(std::move(key), std::move(value));
}

void TraceInstant(const char* name, const char* cat,
                  std::vector<std::pair<std::string, std::string>> args) {
  Tracer& tracer = Tracer::Get();
  if (!tracer.enabled()) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = 'i';
  e.ts_us = tracer.NowMicros();
  e.args = std::move(args);
  tracer.Record(std::move(e));
}

}  // namespace manimal::obs
