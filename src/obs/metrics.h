// Telemetry substrate, part 1: a process-wide metrics registry.
//
// The paper's evaluation decomposes every result into measured
// quantities (startup vs. scan vs. shuffle time, bytes moved, index
// selectivity); this registry is the repo-wide substrate for that kind
// of evidence. Three metric kinds:
//
//   Counter    monotonically increasing count (relaxed atomics — cheap
//              enough to leave on in release builds).
//   Gauge      last-written level (e.g. threadpool queue depth).
//   Histogram  recorded samples with count/sum/min/max and exact
//              p50/p95/p99 quantiles (mutex-protected; record at
//              per-task or per-pass frequency, not per record).
//
// Metric names are dot-separated, lower_snake_case path segments:
// "<layer>.<thing>[.<unit>]", e.g. "exec.map_tasks",
// "mril.builtin.str.contains", "shuffle.spilled_runs". See
// docs/observability.md for the full naming scheme.
//
// This library is intentionally dependency-free (not even
// common/) so that the lowest layers — the threadpool included — can
// publish metrics without a dependency cycle.

#ifndef MANIMAL_OBS_METRICS_H_
#define MANIMAL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace manimal::obs {

class Counter {
 public:
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t value) {
    value_.store(value, std::memory_order_relaxed);
    // Track the high-water mark so short-lived peaks (queue bursts)
    // survive into the dump.
    int64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

class Histogram {
 public:
  void Record(double sample);

  int64_t Count() const;
  double Sum() const;
  double Min() const;
  double Max() const;
  // Exact quantile over all recorded samples; q in (0, 1]. Returns 0
  // when empty.
  double Quantile(double q) const;

 private:
  friend class MetricsRegistry;
  mutable std::mutex mu_;
  std::vector<double> samples_;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Process-wide named metrics. Get*() returns a stable pointer the
// caller may cache for the process lifetime; lookups take a mutex, so
// hot paths should look up once and hold the pointer.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Current value of a counter, or 0 if it was never created
  // (convenient for tests and dashboards).
  int64_t CounterValue(const std::string& name) const;

  // One JSON object: {"counters":{...},"gauges":{...},
  // "histograms":{name:{count,sum,min,max,p50,p95,p99}}}.
  std::string DumpJson() const;

  // Zeroes every metric while keeping all handed-out pointers valid.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace manimal::obs

#endif  // MANIMAL_OBS_METRICS_H_
