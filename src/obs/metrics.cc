#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace manimal::obs {

void Histogram::Record(double sample) {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  samples_.push_back(sample);
  sum_ += sample;
}

int64_t Histogram::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(samples_.size());
}

double Histogram::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::Min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::Max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank definition: the smallest sample such that at least
  // q * n samples are <= it.
  double rank = std::ceil(q * static_cast<double>(sorted.size()));
  size_t idx = rank <= 1 ? 0 : static_cast<size_t>(rank) - 1;
  idx = std::min(idx, sorted.size() - 1);
  return sorted[idx];
}

MetricsRegistry& MetricsRegistry::Get() {
  // Leaked singleton: metrics must outlive every static destructor
  // that might still report.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) +
           "\":" + std::to_string(c->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"value\":" +
           std::to_string(g->Value()) +
           ",\"max\":" + std::to_string(g->Max()) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{";
    out += "\"count\":" + std::to_string(h->Count());
    out += ",\"sum\":" + JsonNumber(h->Sum());
    out += ",\"min\":" + JsonNumber(h->Min());
    out += ",\"max\":" + JsonNumber(h->Max());
    out += ",\"p50\":" + JsonNumber(h->Quantile(0.50));
    out += ",\"p95\":" + JsonNumber(h->Quantile(0.95));
    out += ",\"p99\":" + JsonNumber(h->Quantile(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : gauges_) {
    g->value_.store(0, std::memory_order_relaxed);
    g->max_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, h] : histograms_) {
    std::lock_guard<std::mutex> hlock(h->mu_);
    h->samples_.clear();
    h->sum_ = h->min_ = h->max_ = 0;
  }
}

}  // namespace manimal::obs
