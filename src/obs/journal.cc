#include "obs/journal.h"

#include <cstdlib>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace manimal::obs {

namespace {

void AppendKey(std::string* out, std::string_view key) {
  if (!out->empty()) *out += ',';
  *out += '"';
  JsonAppendEscaped(out, key);
  *out += "\":";
}

}  // namespace

JournalEvent& JournalEvent::Str(std::string_view key,
                                std::string_view value) {
  if (journal_ == nullptr) return *this;
  AppendKey(&fields_, key);
  fields_ += JsonQuote(value);
  return *this;
}

JournalEvent& JournalEvent::Int(std::string_view key, int64_t value) {
  if (journal_ == nullptr) return *this;
  AppendKey(&fields_, key);
  fields_ += std::to_string(value);
  return *this;
}

JournalEvent& JournalEvent::Uint(std::string_view key, uint64_t value) {
  if (journal_ == nullptr) return *this;
  AppendKey(&fields_, key);
  fields_ += std::to_string(value);
  return *this;
}

JournalEvent& JournalEvent::Num(std::string_view key, double value) {
  if (journal_ == nullptr) return *this;
  AppendKey(&fields_, key);
  fields_ += JsonNumber(value);
  return *this;
}

JournalEvent& JournalEvent::Bool(std::string_view key, bool value) {
  if (journal_ == nullptr) return *this;
  AppendKey(&fields_, key);
  fields_ += value ? "true" : "false";
  return *this;
}

JournalEvent& JournalEvent::Time(std::string_view key, double seconds) {
  if (journal_ == nullptr) return *this;
  AppendKey(&fields_, key);
  fields_ +=
      JsonFixed(journal_->deterministic() ? 0.0 : seconds, 6);
  return *this;
}

JournalEvent& JournalEvent::Raw(std::string_view key,
                                std::string_view json) {
  if (journal_ == nullptr) return *this;
  AppendKey(&fields_, key);
  fields_ += json;
  return *this;
}

void JournalEvent::Emit() {
  if (journal_ == nullptr) return;
  journal_->Write(type_, fields_);
  journal_ = nullptr;
}

Journal::Journal() {
  const char* path = std::getenv("MANIMAL_JOURNAL");
  if (path != nullptr && path[0] != '\0') {
    path_ = path;
    enabled_.store(true, std::memory_order_relaxed);
  }
}

Journal& Journal::Get() {
  // Leaked singleton, same rationale as the metrics registry: events
  // may still arrive from static destructors.
  static Journal* journal = new Journal();
  return *journal;
}

JournalEvent Journal::Event(const char* type) {
  return JournalEvent(enabled() ? this : nullptr, type);
}

uint64_t Journal::events_written() const {
  return events_written_.load(std::memory_order_relaxed);
}

void Journal::Write(const char* type, const std::string& fields) {
  // Timestamp shares the tracer's epoch so journal lines locate
  // within the Chrome trace timeline. Taken outside the lock.
  const double ts_us =
      deterministic() ? 0.0 : Tracer::Get().NowMicros();
  std::string line = "{\"v\":";
  line += std::to_string(kJournalSchemaVersion);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    if (path_.empty()) return;
    file_ = std::fopen(path_.c_str(), "a");
    if (file_ == nullptr) {
      // Journal IO must never fail a job; drop events.
      enabled_.store(false, std::memory_order_relaxed);
      return;
    }
  }
  line += ",\"seq\":" + std::to_string(next_seq_++);
  line += ",\"ts_us\":" + JsonFixed(ts_us, 3);
  line += ",\"event\":" + JsonQuote(type);
  if (!fields.empty()) {
    line += ',';
    line += fields;
  }
  line += "}\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  events_written_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Get().GetCounter("obs.journal_events")->Increment();
}

void Journal::SetOutputPathForTest(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  path_ = path;
  next_seq_ = 1;
  if (!path.empty()) {
    // Truncate so each test starts from a clean journal.
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) std::fclose(f);
  }
  enabled_.store(!path.empty(), std::memory_order_relaxed);
}

void Journal::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  next_seq_ = 1;
  events_written_.store(0, std::memory_order_relaxed);
  deterministic_.store(false, std::memory_order_relaxed);
  const char* env = std::getenv("MANIMAL_JOURNAL");
  if (env != nullptr && env[0] != '\0') {
    path_ = env;
    enabled_.store(true, std::memory_order_relaxed);
  } else {
    path_.clear();
    enabled_.store(false, std::memory_order_relaxed);
  }
}

}  // namespace manimal::obs
