// Pipeline execution (paper Appendix E): chained MapReduce jobs with
// typed intermediates, per-stage Manimal analysis, and the cross-job
// optimization the paper anticipates — "assuming we can detect the
// link, it should be quite possible to track relational-style
// operations across jobs": stage i writes only the intermediate
// columns stage i+1 provably reads.

#include "analyzer/project.h"
#include "common/strings.h"
#include "core/manimal.h"
#include "obs/trace.h"

namespace manimal::core {

Result<ManimalSystem::PipelineResult> ManimalSystem::RunPipeline(
    std::vector<PipelineStage> stages, const std::string& input_path,
    const std::string& final_output_path,
    const PipelineOptions& options) {
  if (stages.empty()) {
    return Status::InvalidArgument("pipeline has no stages");
  }
  obs::ScopedSpan span("system.pipeline", "core");
  span.AddArg("stages", std::to_string(stages.size()));
  // Validate the stage chain's declared types up front.
  for (size_t i = 0; i < stages.size(); ++i) {
    const bool is_last = i + 1 == stages.size();
    if (!is_last && !stages[i].output_schema.has_value()) {
      return Status::InvalidArgument(
          StrPrintf("stage %zu needs a declared output schema (only the "
                    "final stage may omit it)",
                    i));
    }
    if (!is_last && stages[i].output_schema->opaque()) {
      return Status::InvalidArgument(
          "intermediate schemas must be structured");
    }
    if (i > 0) {
      const Schema& produced = *stages[i - 1].output_schema;
      const Schema& consumed = stages[i].program.value_schema;
      if (stages[i].program.value_param_kind !=
              mril::ValueParamKind::kRecord ||
          !(consumed == produced)) {
        return Status::InvalidArgument(StrPrintf(
            "stage %zu consumes '%s' but stage %zu produces '%s'", i,
            consumed.ToString().c_str(), i - 1,
            produced.ToString().c_str()));
      }
    }
  }

  PipelineResult result;
  result.final_output_path = final_output_path;
  std::string current_input = input_path;
  const std::string inter_dir = FreshTempDir("pipeline");
  MANIMAL_RETURN_IF_ERROR(CreateDirIfMissing(inter_dir));

  for (size_t i = 0; i < stages.size(); ++i) {
    const bool is_last = i + 1 == stages.size();
    PipelineStageOutcome outcome;

    MANIMAL_ASSIGN_OR_RETURN(
        outcome.report,
        analyzer::Analyze(stages[i].program, options.analyze));
    MANIMAL_ASSIGN_OR_RETURN(
        outcome.plan,
        optimizer::BuildPlan(stages[i].program, current_input,
                             outcome.report, *catalog_));

    std::string output = final_output_path;
    if (!is_last) {
      output = inter_dir + "/stage-" + std::to_string(i) + ".msq";
      outcome.intermediate_path = output;
    }
    exec::JobConfig config = MakeJobConfig(output);
    if (!is_last) {
      config.output_schema = stages[i].output_schema;
      // Cross-stage projection: consult the NEXT stage's liveness.
      if (options.cross_stage_projection) {
        analyzer::ProjectResult next_projection = analyzer::FindProject(
            stages[i + 1].program,
            /*logs_are_uses=*/options.analyze.safe_mode);
        if (next_projection.descriptor.has_value()) {
          config.output_kept_fields =
              next_projection.descriptor->used_fields;
          outcome.written_fields =
              next_projection.descriptor->used_fields;
        }
      }
    }
    Result<exec::JobResult> job =
        exec::RunJob(outcome.plan.descriptor, config);
    if (!job.ok()) {
      // Abort the pipeline cleanly: the failed job already removed
      // its own partial output; drop the intermediates earlier stages
      // left behind so a failed pipeline leaves no half-built state.
      for (const PipelineStageOutcome& done : result.stages) {
        if (!done.intermediate_path.empty()) {
          (void)RemoveFileIfExists(done.intermediate_path);
        }
      }
      (void)RemoveDirRecursively(inter_dir);
      return job.status();
    }
    outcome.job = std::move(*job);
    outcome.explain = MaybeExplain(outcome.plan, outcome.job);
    current_input = output;
    result.stages.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace manimal::core
