// ManimalSystem — the public entry point, mirroring the user
// walkthrough of paper §2.2 and Figure 1:
//
//   1. Submit a compiled, unmodified MRIL program plus its input file.
//   2. The ANALYZER derives optimization descriptors and emits
//      index-generation programs.
//   3. The OPTIMIZER consults the catalog and picks an execution
//      descriptor.
//   4. The EXECUTION FABRIC runs the (possibly modified copy of the)
//      program, via B+Tree ranges or re-encoded inputs when available.
//
// "The decision to run an index-generation program is left to the
// system administrator" — BuildIndex() is that decision.

#ifndef MANIMAL_CORE_MANIMAL_H_
#define MANIMAL_CORE_MANIMAL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analyzer/analyzer.h"
#include "common/status.h"
#include "exec/engine.h"
#include "exec/index_build.h"
#include "index/catalog.h"
#include "optimizer/explain.h"
#include "optimizer/optimizer.h"

namespace manimal::core {

class ManimalSystem {
 public:
  struct Options {
    // Root directory for the catalog, index artifacts, and scratch
    // space. Created if missing.
    std::string workspace_dir;
    int map_parallelism = 4;
    int num_partitions = 4;
    // Price cataloged artifacts (and the plain scan) in estimated
    // bytes moved and pick the cheapest, instead of the paper's
    // rule-based ranking (§2.2 names cost-based planning as the
    // long-run approach).
    bool cost_based_optimizer = false;
    double simulated_startup_seconds = 3.0;
    // See exec::JobConfig::simulated_disk_bytes_per_sec (0 disables).
    uint64_t simulated_disk_bytes_per_sec = 16u << 20;
    uint64_t sort_buffer_bytes = 32u << 20;
    // Fault handling, forwarded into every job's JobConfig (see
    // exec::JobConfig and docs/testing.md).
    int max_task_attempts = 4;
    double retry_backoff_ms = 1.0;
    bool enable_speculation = true;

    // ---- EXPLAIN / EXPLAIN ANALYZE (docs/observability.md) ----
    // kPlan: SubmitOutcome::explain carries the optimizer's full
    // candidate set. kAnalyze: additionally runs the job with
    // per-task stats + per-record predicate observation and joins
    // them into the drift report. Open() defaults this from
    // MANIMAL_EXPLAIN when left at kOff.
    optimizer::ExplainMode explain = optimizer::ExplainMode::kOff;
    // When non-empty, every explain report produced is also appended
    // to this file as one JSON line. Open() defaults it from
    // MANIMAL_EXPLAIN_PATH.
    std::string explain_path;

    // ---- adaptive replanning (docs/observability.md) ----
    // Re-check seqscan plans mid-job: once `replan_min_splits` map
    // splits commit, compare the selectivity they observed against
    // the optimizer's estimate; when off by `replan_drift_ratio`x or
    // more, re-plan with the observed value and switch the remaining
    // splits to a cataloged locator B+Tree (output byte-identical).
    // Open() defaults these from MANIMAL_REPLAN /
    // MANIMAL_REPLAN_DRIFT / MANIMAL_REPLAN_SPLITS.
    bool adaptive_replan = false;
    double replan_drift_ratio = 4.0;
    int replan_min_splits = 3;

    // ---- native codegen tier (docs/mril.md "Native kernels") ----
    // Map-side backend for optimized submissions. kAuto additionally
    // honors MANIMAL_BACKEND=vm|native|auto. RunBaseline always pins
    // the VM regardless of this setting — the conventional run is the
    // differential ground truth.
    exec::Backend backend = exec::Backend::kAuto;
  };

  struct Submission {
    mril::Program program;
    std::string input_path;   // plain SeqFile
    std::string output_path;  // PairFile the job writes
  };

  struct SubmitOutcome {
    analyzer::AnalysisReport report;
    // Index-generation programs handed back to the administrator
    // (paper: submitting a job "yields not just a program result, but
    // also an index-generation program").
    std::vector<analyzer::IndexGenProgram> index_programs;
    optimizer::Plan plan;
    exec::JobResult job;
    // EXPLAIN / EXPLAIN ANALYZE report (Options::explain != kOff).
    std::optional<optimizer::ExplainReport> explain;
  };

  static Result<std::unique_ptr<ManimalSystem>> Open(Options options);

  // The full Manimal pipeline: analyze, optimize, execute.
  Result<SubmitOutcome> Submit(const Submission& submission);

  // Appendix A path for layered tools (Pig/Hive): the caller supplies
  // the analysis (its own high-level knowledge of job semantics) and
  // the analyzer is bypassed.
  Result<SubmitOutcome> SubmitWithReport(const Submission& submission,
                                         analyzer::AnalysisReport report);

  // Conventional execution — what standard Hadoop would do with the
  // same program and input. The benchmarks' baseline.
  Result<exec::JobResult> RunBaseline(const Submission& submission);

  // Administrator action: materialize an index artifact and register
  // it in the catalog.
  Result<exec::IndexBuildResult> BuildIndex(
      const analyzer::IndexGenProgram& spec,
      const std::string& input_path);

  // ---- pipelines (paper Appendix E: "extend Manimal techniques to
  // optimize processing pipelines ... chained MapReduce jobs, in which
  // the output of a given job forms the input of a separate job") ----

  struct PipelineStage {
    mril::Program program;
    // Declared record layout of this stage's output — each emitted
    // (k, v) pair becomes the record [k] ++ flatten(v). Required for
    // every stage except the last (whose output is a PairFile).
    // This is the "declared types" link that lets the analyzer track
    // relational operations across jobs.
    std::optional<Schema> output_schema;
  };

  struct PipelineStageOutcome {
    analyzer::AnalysisReport report;
    optimizer::Plan plan;
    exec::JobResult job;
    // Per-stage EXPLAIN report (Options::explain != kOff).
    std::optional<optimizer::ExplainReport> explain;
    // Cross-stage projection: the declared output fields this stage
    // actually wrote because the NEXT stage provably reads only them
    // (empty = all fields written).
    std::vector<int> written_fields;
    std::string intermediate_path;  // "" for the final stage
  };

  struct PipelineOptions {
    // Drop intermediate columns the next stage provably never reads
    // (safe: pipeline intermediates have exactly one consumer).
    bool cross_stage_projection = true;
    analyzer::AnalyzeOptions analyze;
  };

  struct PipelineResult {
    std::vector<PipelineStageOutcome> stages;
    std::string final_output_path;
  };

  // Runs the chained jobs, analyzing and optimizing each stage. Each
  // stage's map() value schema must equal the previous stage's
  // declared output schema.
  Result<PipelineResult> RunPipeline(std::vector<PipelineStage> stages,
                                     const std::string& input_path,
                                     const std::string& final_output_path,
                                     const PipelineOptions& options);
  Result<PipelineResult> RunPipeline(
      std::vector<PipelineStage> stages, const std::string& input_path,
      const std::string& final_output_path) {
    return RunPipeline(std::move(stages), input_path, final_output_path,
                       PipelineOptions{});
  }

  const index::Catalog& catalog() const { return *catalog_; }
  const Options& options() const { return options_; }

  // JSON snapshot of the process-wide telemetry registry (counters,
  // gauges, histograms) accumulated across every job this process ran.
  // See docs/observability.md for the metric naming scheme.
  static std::string DumpMetricsJson();

 private:
  explicit ManimalSystem(Options options)
      : options_(std::move(options)) {}

  exec::JobConfig MakeJobConfig(const std::string& output_path);
  std::string FreshTempDir(const std::string& tag);
  // Builds the explain report for a finished job when Options::explain
  // asks for one (nullopt otherwise), appending its JSON line to
  // Options::explain_path when set.
  std::optional<optimizer::ExplainReport> MaybeExplain(
      const optimizer::Plan& plan, const exec::JobResult& job);

  Options options_;
  std::unique_ptr<index::Catalog> catalog_;
  int job_counter_ = 0;
};

}  // namespace manimal::core

#endif  // MANIMAL_CORE_MANIMAL_H_
