#include "core/manimal.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace manimal::core {

namespace {

// Appends one line to `path`, creating the file if needed. Explain
// emission must never fail a job, so IO errors are swallowed.
void AppendLine(const std::string& path, const std::string& line) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), f);
  std::fwrite("\n", 1, 1, f);
  std::fclose(f);
}

}  // namespace

std::string ManimalSystem::DumpMetricsJson() {
  return obs::MetricsRegistry::Get().DumpJson();
}

Result<std::unique_ptr<ManimalSystem>> ManimalSystem::Open(
    Options options) {
  if (options.workspace_dir.empty()) {
    return Status::InvalidArgument("workspace_dir is required");
  }
  auto system =
      std::unique_ptr<ManimalSystem>(new ManimalSystem(options));
  MANIMAL_RETURN_IF_ERROR(CreateDirIfMissing(options.workspace_dir));
  MANIMAL_RETURN_IF_ERROR(
      CreateDirIfMissing(options.workspace_dir + "/artifacts"));
  MANIMAL_RETURN_IF_ERROR(
      CreateDirIfMissing(options.workspace_dir + "/tmp"));
  MANIMAL_ASSIGN_OR_RETURN(
      index::Catalog catalog,
      index::Catalog::Open(options.workspace_dir + "/catalog.txt"));
  system->catalog_ =
      std::make_unique<index::Catalog>(std::move(catalog));
  // Environment defaults for EXPLAIN, so any existing driver can be
  // introspected without a code change (mirrors MANIMAL_TRACE).
  if (system->options_.explain == optimizer::ExplainMode::kOff) {
    system->options_.explain = optimizer::ExplainModeFromEnv();
  }
  if (system->options_.explain_path.empty()) {
    const char* path = std::getenv("MANIMAL_EXPLAIN_PATH");
    if (path != nullptr) system->options_.explain_path = path;
  }
  // Environment defaults for adaptive replanning.
  if (!system->options_.adaptive_replan) {
    const char* v = std::getenv("MANIMAL_REPLAN");
    system->options_.adaptive_replan =
        v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0 &&
        std::strcmp(v, "off") != 0 && std::strcmp(v, "false") != 0;
  }
  if (const char* v = std::getenv("MANIMAL_REPLAN_DRIFT")) {
    const double ratio = std::atof(v);
    if (ratio > 1.0) system->options_.replan_drift_ratio = ratio;
  }
  if (const char* v = std::getenv("MANIMAL_REPLAN_SPLITS")) {
    const int splits = std::atoi(v);
    if (splits > 0) system->options_.replan_min_splits = splits;
  }
  return system;
}

exec::JobConfig ManimalSystem::MakeJobConfig(
    const std::string& output_path) {
  exec::JobConfig config;
  config.map_parallelism = options_.map_parallelism;
  config.num_partitions = options_.num_partitions;
  config.simulated_startup_seconds = options_.simulated_startup_seconds;
  config.simulated_disk_bytes_per_sec =
      options_.simulated_disk_bytes_per_sec;
  config.sort_buffer_bytes = options_.sort_buffer_bytes;
  config.max_task_attempts = options_.max_task_attempts;
  config.retry_backoff_ms = options_.retry_backoff_ms;
  config.enable_speculation = options_.enable_speculation;
  config.output_path = output_path;
  config.temp_dir = FreshTempDir("job");
  // EXPLAIN ANALYZE needs the per-task stats and the per-record
  // predicate observation the engine only collects when asked.
  config.collect_task_stats =
      options_.explain == optimizer::ExplainMode::kAnalyze;
  config.enable_replan = options_.adaptive_replan;
  config.replan_drift_ratio = options_.replan_drift_ratio;
  config.replan_min_splits = options_.replan_min_splits;
  config.backend = options_.backend;
  return config;
}

std::optional<optimizer::ExplainReport> ManimalSystem::MaybeExplain(
    const optimizer::Plan& plan, const exec::JobResult& job) {
  if (options_.explain == optimizer::ExplainMode::kOff) {
    return std::nullopt;
  }
  optimizer::ExplainReport report =
      options_.explain == optimizer::ExplainMode::kAnalyze
          ? optimizer::MakeExplainReport(plan, job)
          : optimizer::MakeExplainReport(plan);
  if (!options_.explain_path.empty()) {
    AppendLine(options_.explain_path, report.ToJson());
  }
  return report;
}

std::string ManimalSystem::FreshTempDir(const std::string& tag) {
  return options_.workspace_dir + "/tmp/" + tag + "-" +
         std::to_string(job_counter_++);
}

Result<ManimalSystem::SubmitOutcome> ManimalSystem::Submit(
    const Submission& submission) {
  MANIMAL_ASSIGN_OR_RETURN(analyzer::AnalysisReport report,
                           analyzer::Analyze(submission.program));
  return SubmitWithReport(submission, std::move(report));
}

Result<ManimalSystem::SubmitOutcome> ManimalSystem::SubmitWithReport(
    const Submission& submission, analyzer::AnalysisReport report) {
  obs::ScopedSpan span("system.submit", "core");
  span.AddArg("program", submission.program.name);
  SubmitOutcome outcome;
  outcome.report = std::move(report);
  outcome.index_programs = analyzer::SynthesizeIndexPrograms(
      submission.program, outcome.report);
  optimizer::PlanningOptions planning;
  planning.cost_based = options_.cost_based_optimizer;
  MANIMAL_ASSIGN_OR_RETURN(
      outcome.plan,
      optimizer::BuildPlan(submission.program, submission.input_path,
                           outcome.report, *catalog_, planning));
  exec::JobConfig config = MakeJobConfig(submission.output_path);
  if (options_.adaptive_replan &&
      outcome.plan.descriptor.access_path == exec::AccessPath::kSeqScan) {
    // The fabric calls back with the observed selectivity; re-enter
    // cost-based planning with it and hand back the winner only when
    // it is a locator tree over the very file the scan is reading —
    // the one substitution that keeps output byte-identical.
    // Captured references outlive the callback: RunJob below runs
    // synchronously on this frame.
    config.replan_fn =
        [this, &submission,
         &outcome](double observed) -> std::optional<exec::ReplanTarget> {
      optimizer::PlanningOptions replanning;
      replanning.cost_based = true;
      replanning.observed_selectivity = observed;
      Result<optimizer::Plan> replanned = optimizer::BuildPlan(
          submission.program, submission.input_path, outcome.report,
          *catalog_, replanning);
      if (!replanned.ok()) return std::nullopt;
      const exec::ExecutionDescriptor& d = replanned->descriptor;
      if (d.access_path != exec::AccessPath::kBTree || d.clustered ||
          d.base_path != outcome.plan.descriptor.data_path ||
          !d.field_remap.empty()) {
        return std::nullopt;
      }
      exec::ReplanTarget target;
      target.tree_path = d.data_path;
      target.intervals = d.intervals;
      target.explanation = replanned->explanation;
      return target;
    };
  }
  MANIMAL_ASSIGN_OR_RETURN(outcome.job,
                           exec::RunJob(outcome.plan.descriptor, config));
  outcome.explain = MaybeExplain(outcome.plan, outcome.job);
  return outcome;
}

Result<exec::JobResult> ManimalSystem::RunBaseline(
    const Submission& submission) {
  obs::ScopedSpan span("system.baseline", "core");
  span.AddArg("program", submission.program.name);
  exec::ExecutionDescriptor descriptor = optimizer::BaselineDescriptor(
      submission.program, submission.input_path);
  exec::JobConfig config = MakeJobConfig(submission.output_path);
  // The conventional run is the ground truth every differential check
  // compares against: pin the VM so neither Options::backend nor the
  // MANIMAL_BACKEND env can route it through a native kernel.
  config.backend = exec::Backend::kVm;
  return exec::RunJob(descriptor, config);
}

Result<exec::IndexBuildResult> ManimalSystem::BuildIndex(
    const analyzer::IndexGenProgram& spec,
    const std::string& input_path) {
  MANIMAL_ASSIGN_OR_RETURN(
      exec::IndexBuildResult result,
      exec::BuildIndexArtifact(spec, input_path,
                               options_.workspace_dir + "/artifacts",
                               FreshTempDir("indexgen")));
  MANIMAL_RETURN_IF_ERROR(catalog_->Register(result.entry));
  return result;
}

}  // namespace manimal::core
