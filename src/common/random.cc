#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace manimal {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64, used to seed the xoshiro state from a single word.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  MANIMAL_CHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  MANIMAL_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

std::string Rng::AsciiString(int len) {
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return out;
}

std::string Rng::IpAddress() {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i) out.push_back('.');
    out += std::to_string(Uniform(256));
  }
  return out;
}

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  MANIMAL_CHECK(n >= 1);
  MANIMAL_CHECK(theta > 0 && theta < 2 && theta != 1.0);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfSampler::Sample(Rng* rng) {
  // Gray et al.'s quick Zipf generation algorithm.
  double u = rng->NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 2;
  uint64_t rank = 1 + static_cast<uint64_t>(
                          double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (rank > n_) rank = n_;
  return rank;
}

}  // namespace manimal
