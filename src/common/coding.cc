#include "common/coding.h"

namespace manimal {

void PutVarint32(std::string* dst, uint32_t v) {
  PutVarint64(dst, v);
}

void PutVarint64(std::string* dst, uint64_t v) {
  char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<char>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<char>(v);
  dst->append(buf, n);
}

Status GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t i = 0;
  while (i < input->size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>((*input)[i]);
    ++i;
    if (byte & 0x80) {
      result |= (static_cast<uint64_t>(byte & 0x7F) << shift);
    } else {
      result |= (static_cast<uint64_t>(byte) << shift);
      input->remove_prefix(i);
      *value = result;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::Corruption("malformed varint64");
}

Status GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v = 0;
  MANIMAL_RETURN_IF_ERROR(GetVarint64(input, &v));
  if (v > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *value = static_cast<uint32_t>(v);
  return Status::OK();
}

int VarintLength(uint64_t v) {
  int n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

Status GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint64_t len = 0;
  MANIMAL_RETURN_IF_ERROR(GetVarint64(input, &len));
  if (input->size() < len) {
    return Status::Corruption("truncated length-prefixed string");
  }
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return Status::OK();
}

}  // namespace manimal
