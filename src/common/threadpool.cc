#include "common/threadpool.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace manimal {

ThreadPool::ThreadPool(int num_threads)
    : queue_depth_gauge_(
          obs::MetricsRegistry::Get().GetGauge("threadpool.queue_depth")) {
  MANIMAL_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MANIMAL_CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace manimal
