#include "common/status.h"

namespace manimal {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace manimal
