#ifndef MANIMAL_COMMON_STOPWATCH_H_
#define MANIMAL_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace manimal {

// Wall-clock stopwatch used to time jobs and benchmarks.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace manimal

#endif  // MANIMAL_COMMON_STOPWATCH_H_
