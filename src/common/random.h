// Deterministic, seedable PRNG (xoshiro256**) plus sampling helpers.
// Benchmarks and data generators depend on reproducible streams, so we
// do not use std::mt19937 (whose distributions vary across libstdc++
// versions).

#ifndef MANIMAL_COMMON_RANDOM_H_
#define MANIMAL_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace manimal {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  // Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  // Random lowercase-ascii string of exactly `len` bytes.
  std::string AsciiString(int len);

  // Random dotted-quad IPv4 string, e.g. "158.37.2.190".
  std::string IpAddress();

 private:
  uint64_t s_[4];
};

// Zipf-distributed sampler over ranks {1..n} with exponent `theta`
// (theta ~ 0.8-1.0 models web popularity). Uses the rejection-inversion
// method so construction is O(1) memory and sampling is O(1).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta);

  // Returns a rank in [1, n]; rank 1 is the most popular.
  uint64_t Sample(Rng* rng);

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace manimal

#endif  // MANIMAL_COMMON_RANDOM_H_
