#include "common/faulty_env.h"

#include <cstdlib>

#include "common/env.h"
#include "obs/journal.h"

namespace manimal {

namespace {

// Stateless mix (splitmix64 finalizer) so the injection decision for a
// site depends only on (seed, op, path, ordinal).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashPath(const std::string& path) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : path) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

thread_local bool tls_armed = false;

}  // namespace

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kOpenWrite:
      return "open-write";
    case FaultOp::kOpenRead:
      return "open-read";
    case FaultOp::kRead:
      return "read";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kFlush:
      return "flush";
    case FaultOp::kClose:
      return "close";
    case FaultOp::kRename:
      return "rename";
  }
  return "unknown";
}

FaultyEnv& FaultyEnv::Get() {
  static FaultyEnv* instance = new FaultyEnv();
  return *instance;
}

void FaultyEnv::Enable(const Config& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  stats_ = Stats{};
  path_ops_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultyEnv::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  path_ops_.clear();
}

FaultyEnv::Config FaultyEnv::ConfigFromEnv(const Config& defaults) {
  Config config = defaults;
  config.seed = static_cast<uint64_t>(
      EnvInt64("MANIMAL_FAULT_SEED",
               static_cast<int64_t>(defaults.seed)));
  config.rate = EnvDouble("MANIMAL_FAULT_RATE", defaults.rate);
  int64_t max = EnvInt64("MANIMAL_FAULT_MAX", -1);
  if (max >= 0) config.max_failures = static_cast<uint64_t>(max);
  return config;
}

FaultyEnv::Stats FaultyEnv::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

FaultyEnv::Config FaultyEnv::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

bool FaultyEnv::Active() {
  return tls_armed &&
         Get().enabled_.load(std::memory_order_relaxed);
}

Status FaultyEnv::Evaluate(FaultOp op, const std::string& path,
                           uint64_t* decision) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return Status::OK();
  ++stats_.evaluated;
  if (stats_.injected >= config_.max_failures) return Status::OK();

  bool fire = false;
  if (config_.fail_nth > 0) {
    fire = stats_.evaluated == config_.fail_nth;
  } else if (config_.rate > 0) {
    const uint64_t ordinal = path_ops_[path]++;
    const uint64_t h =
        Mix64(config_.seed ^ Mix64(HashPath(path)) ^
              Mix64((static_cast<uint64_t>(op) << 32) | ordinal));
    fire = static_cast<double>(h >> 11) * 0x1.0p-53 < config_.rate;
  }
  if (!fire) return Status::OK();
  ++stats_.injected;
  *decision = Mix64(config_.seed ^ stats_.evaluated);
  obs::Journal::Get()
      .Event("fault_injected")
      .Str("op", FaultOpName(op))
      .Str("path", path)
      .Uint("site_ordinal", stats_.evaluated)
      .Uint("injected_so_far", stats_.injected)
      .Emit();
  return Status::IOError("injected fault: " +
                         std::string(FaultOpName(op)) + " " + path);
}

Status FaultyEnv::MaybeInject(FaultOp op, const std::string& path) {
  uint64_t decision = 0;
  return Evaluate(op, path, &decision);
}

Status FaultyEnv::MaybeInjectWrite(const std::string& path, size_t len,
                                   size_t* persist_prefix) {
  uint64_t decision = 0;
  Status st = Evaluate(FaultOp::kWrite, path, &decision);
  if (st.ok()) return st;
  bool short_write;
  {
    std::lock_guard<std::mutex> lock(mu_);
    short_write = config_.short_writes;
  }
  if (short_write && len > 1) {
    // Persist a seeded strict prefix: the file ends up torn, exactly
    // as if the process died mid-write.
    *persist_prefix = static_cast<size_t>(decision % len);
  }
  return st;
}

ScopedFaultArming::ScopedFaultArming() : was_armed_(tls_armed) {
  tls_armed = true;
}

ScopedFaultArming::~ScopedFaultArming() { tls_armed = was_armed_; }

}  // namespace manimal
