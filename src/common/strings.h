// Small string utilities shared across modules (splitting, joining,
// escaping for the line-based catalog format, printf-style formatting).

#ifndef MANIMAL_COMMON_STRINGS_H_
#define MANIMAL_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace manimal {

std::vector<std::string> SplitString(std::string_view s, char sep);
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

// Escapes tab/newline/backslash so a value can live in a single
// tab-separated catalog line; UnescapeField reverses it.
std::string EscapeField(std::string_view s);
std::string UnescapeField(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// printf into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Human-readable byte count, e.g. "1.25 MB".
std::string HumanBytes(uint64_t bytes);

}  // namespace manimal

#endif  // MANIMAL_COMMON_STRINGS_H_
