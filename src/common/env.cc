#include "common/env.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/faulty_env.h"

namespace fs = std::filesystem;

namespace manimal {

namespace {

Status ErrnoStatus(const char* op, const std::string& path) {
  std::string msg = std::string(op) + " " + path + ": " +
                    std::strerror(errno);
  if (errno == ENOENT) return Status::NotFound(msg);
  return Status::IOError(msg);
}

// Fault-injection gate: no-op (one relaxed load + a thread-local
// check) unless a FaultyEnv schedule is enabled and this thread is
// armed. See common/faulty_env.h.
inline Status MaybeFault(FaultOp op, const std::string& path) {
  if (!FaultyEnv::Active()) return Status::OK();
  return FaultyEnv::Get().MaybeInject(op, path);
}

}  // namespace

// ---------- WritableFile ----------

Result<std::unique_ptr<WritableFile>> WritableFile::Create(
    const std::string& path) {
  MANIMAL_RETURN_IF_ERROR(MaybeFault(FaultOp::kOpenWrite, path));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return ErrnoStatus("open for write", path);
  return std::unique_ptr<WritableFile>(new WritableFile(path, f));
}

WritableFile::~WritableFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WritableFile::Append(std::string_view data) {
  if (file_ == nullptr) return Status::IOError("file closed: " + path_);
  if (data.empty()) return Status::OK();
  if (FaultyEnv::Active()) {
    size_t persist_prefix = 0;
    Status fault = FaultyEnv::Get().MaybeInjectWrite(
        path_, data.size(), &persist_prefix);
    if (!fault.ok()) {
      // Short write: persist a torn prefix before failing, exactly as
      // if the process died mid-write.
      if (persist_prefix > 0) {
        size_t n = std::fwrite(data.data(), 1, persist_prefix, file_);
        bytes_written_ += n;
        std::fflush(file_);
      }
      return fault;
    }
  }
  size_t n = std::fwrite(data.data(), 1, data.size(), file_);
  if (n != data.size()) return ErrnoStatus("write", path_);
  bytes_written_ += n;
  return Status::OK();
}

Status WritableFile::Flush() {
  if (file_ == nullptr) return Status::IOError("file closed: " + path_);
  MANIMAL_RETURN_IF_ERROR(MaybeFault(FaultOp::kFlush, path_));
  if (std::fflush(file_) != 0) return ErrnoStatus("flush", path_);
  return Status::OK();
}

Status WritableFile::Close() {
  if (file_ == nullptr) return Status::OK();
  // An injected close failure still releases the handle (the kernel
  // may or may not have persisted buffered data — callers must treat
  // the file as torn).
  Status fault = MaybeFault(FaultOp::kClose, path_);
  int rc = std::fclose(file_);
  file_ = nullptr;
  MANIMAL_RETURN_IF_ERROR(fault);
  if (rc != 0) return ErrnoStatus("close", path_);
  return Status::OK();
}

// ---------- SequentialFile ----------

Result<std::unique_ptr<SequentialFile>> SequentialFile::Open(
    const std::string& path) {
  MANIMAL_RETURN_IF_ERROR(MaybeFault(FaultOp::kOpenRead, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return ErrnoStatus("open for read", path);
  return std::unique_ptr<SequentialFile>(new SequentialFile(path, f));
}

SequentialFile::~SequentialFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SequentialFile::Read(size_t n, std::string* out) {
  MANIMAL_RETURN_IF_ERROR(MaybeFault(FaultOp::kRead, path_));
  out->resize(n);
  size_t got = std::fread(out->data(), 1, n, file_);
  out->resize(got);
  bytes_read_ += got;
  if (got < n && std::ferror(file_)) return ErrnoStatus("read", path_);
  return Status::OK();
}

Status SequentialFile::Skip(uint64_t n) {
  if (std::fseek(file_, static_cast<long>(n), SEEK_CUR) != 0) {
    return ErrnoStatus("seek", path_);
  }
  return Status::OK();
}

// ---------- RandomAccessFile ----------

Result<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path) {
  MANIMAL_RETURN_IF_ERROR(MaybeFault(FaultOp::kOpenRead, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return ErrnoStatus("open for read", path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return ErrnoStatus("seek end", path);
  }
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return ErrnoStatus("tell", path);
  }
  return std::unique_ptr<RandomAccessFile>(
      new RandomAccessFile(path, f, static_cast<uint64_t>(size)));
}

RandomAccessFile::~RandomAccessFile() {
  if (file_ != nullptr) std::fclose(file_);
}

Status RandomAccessFile::ReadAt(uint64_t offset, size_t n,
                                std::string* out) const {
  MANIMAL_RETURN_IF_ERROR(MaybeFault(FaultOp::kRead, path_));
  if (offset + n > size_) {
    return Status::Corruption("ReadAt past EOF in " + path_);
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return ErrnoStatus("seek", path_);
  }
  out->resize(n);
  size_t got = std::fread(out->data(), 1, n, file_);
  bytes_read_ += got;
  if (got != n) return Status::Corruption("short read in " + path_);
  return Status::OK();
}

// ---------- helpers ----------

Status WriteStringToFile(const std::string& path, std::string_view data) {
  MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                           WritableFile::Create(path));
  MANIMAL_RETURN_IF_ERROR(f->Append(data));
  return f->Close();
}

Result<std::string> ReadFileToString(const std::string& path) {
  MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> f,
                           SequentialFile::Open(path));
  std::string out;
  std::string chunk;
  for (;;) {
    MANIMAL_RETURN_IF_ERROR(f->Read(1 << 20, &chunk));
    if (chunk.empty()) break;
    out += chunk;
  }
  return out;
}

Result<uint64_t> GetFileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  if (ec) return Status::IOError("file_size " + path + ": " + ec.message());
  return size;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Status RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IOError("remove " + path + ": " + ec.message());
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  MANIMAL_RETURN_IF_ERROR(MaybeFault(FaultOp::kRename, from));
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IOError("rename " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status CreateDirIfMissing(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IOError("create_directories " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status RemoveDirRecursively(const std::string& path) {
  if (path.find("manimal") == std::string::npos) {
    return Status::InvalidArgument(
        "refusing to recursively remove non-manimal path: " + path);
  }
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("remove_all " + path + ": " + ec.message());
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(path, ec)) {
    names.push_back(entry.path().filename().string());
  }
  if (ec) return Status::IOError("list " + path + ": " + ec.message());
  return names;
}

std::string MakeTempDir(const std::string& tag) {
  static std::atomic<uint64_t> counter{0};
  std::string base = fs::temp_directory_path().string();
  std::string dir = base + "/manimal-" + tag + "-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(counter.fetch_add(1));
  std::error_code ec;
  fs::create_directories(dir, ec);
  return dir;
}

int64_t EnvInt64(const char* name, int64_t default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  return std::strtoll(v, nullptr, 10);
}

double EnvDouble(const char* name, double default_value) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return default_value;
  return std::strtod(v, nullptr);
}

}  // namespace manimal
