// Error-propagation primitives used throughout Manimal.
//
// Library code never throws: fallible operations return Status (or
// Result<T> for value-producing operations), mirroring the
// RocksDB/Arrow convention for database engines.

#ifndef MANIMAL_COMMON_STATUS_H_
#define MANIMAL_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace manimal {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kIOError,
  kNotSupported,
  kInternal,
  kAlreadyExists,
  kOutOfRange,
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A cheap, copyable success-or-error value. The OK status carries no
// allocation; error statuses carry a code and a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(StatusCode::kNotSupported, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

// A value-or-error holder, analogous to absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both
  // work in functions returning Result<T>.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  // Precondition: ok(). Checked in debug builds via the variant access.
  T& value() & { return std::get<T>(payload_); }
  const T& value() const& { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

// Propagates a non-OK Status to the caller.
#define MANIMAL_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::manimal::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

#define MANIMAL_CONCAT_IMPL(a, b) a##b
#define MANIMAL_CONCAT(a, b) MANIMAL_CONCAT_IMPL(a, b)

// Evaluates a Result<T> expression; on error propagates the Status,
// otherwise moves the value into `lhs` (a declaration or assignable).
#define MANIMAL_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  MANIMAL_ASSIGN_OR_RETURN_IMPL(                                    \
      MANIMAL_CONCAT(_manimal_result_, __LINE__), lhs, rexpr)

#define MANIMAL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace manimal

#endif  // MANIMAL_COMMON_STATUS_H_
