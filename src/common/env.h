// Filesystem access layer: buffered sequential writers/readers, whole
// file helpers, and directory utilities. All disk traffic in the
// execution fabric, the B+Tree, and the columnar codecs flows through
// these classes so that byte counters stay accurate.

#ifndef MANIMAL_COMMON_ENV_H_
#define MANIMAL_COMMON_ENV_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace manimal {

// Append-only buffered file writer.
class WritableFile {
 public:
  static Result<std::unique_ptr<WritableFile>> Create(
      const std::string& path);

  ~WritableFile();
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  Status Append(std::string_view data);
  Status Flush();
  Status Close();

  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  WritableFile(std::string path, std::FILE* f)
      : path_(std::move(path)), file_(f) {}

  std::string path_;
  std::FILE* file_;
  uint64_t bytes_written_ = 0;
};

// Buffered sequential reader.
class SequentialFile {
 public:
  static Result<std::unique_ptr<SequentialFile>> Open(
      const std::string& path);

  ~SequentialFile();
  SequentialFile(const SequentialFile&) = delete;
  SequentialFile& operator=(const SequentialFile&) = delete;

  // Reads up to n bytes into *out (resized to the amount read; empty at
  // EOF).
  Status Read(size_t n, std::string* out);

  Status Skip(uint64_t n);

  uint64_t bytes_read() const { return bytes_read_; }

 private:
  SequentialFile(std::string path, std::FILE* f)
      : path_(std::move(path)), file_(f) {}

  std::string path_;
  std::FILE* file_;
  uint64_t bytes_read_ = 0;
};

// Positioned reads (used by the B+Tree and block-footer lookups).
class RandomAccessFile {
 public:
  static Result<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path);

  ~RandomAccessFile();
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  // Reads exactly n bytes at `offset`; Corruption on short read.
  Status ReadAt(uint64_t offset, size_t n, std::string* out) const;

  uint64_t size() const { return size_; }
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  RandomAccessFile(std::string path, std::FILE* f, uint64_t size)
      : path_(std::move(path)), file_(f), size_(size) {}

  std::string path_;
  std::FILE* file_;
  uint64_t size_;
  mutable uint64_t bytes_read_ = 0;
};

// ---------- convenience helpers ----------

Status WriteStringToFile(const std::string& path, std::string_view data);
Result<std::string> ReadFileToString(const std::string& path);
Result<uint64_t> GetFileSize(const std::string& path);
bool FileExists(const std::string& path);
Status RemoveFileIfExists(const std::string& path);
// Atomically replaces `to` with `from` (same filesystem). The commit
// step of every write-temp-then-rename protocol: a reader can only
// ever observe the complete file at `to`, never a torn prefix.
Status RenameFile(const std::string& from, const std::string& to);
Status CreateDirIfMissing(const std::string& path);
// Removes a directory tree. Refuses paths that do not contain
// "manimal" as a safety rail for tests.
Status RemoveDirRecursively(const std::string& path);
Result<std::vector<std::string>> ListDir(const std::string& path);

// Creates (and returns) a fresh unique directory under the system temp
// dir, e.g. /tmp/manimal-<pid>-<counter>.
std::string MakeTempDir(const std::string& tag);

// Reads an environment variable as int64 with a default.
int64_t EnvInt64(const char* name, int64_t default_value);

// Reads an environment variable as double with a default.
double EnvDouble(const char* name, double default_value);

}  // namespace manimal

#endif  // MANIMAL_COMMON_ENV_H_
