// Binary encoding helpers: fixed-width little-endian integers,
// LEB128-style varints, zigzag transforms for signed deltas, and
// length-prefixed strings. These are the byte-level substrate for the
// row codec, the B+Tree node format, and the compression codecs.

#ifndef MANIMAL_COMMON_CODING_H_
#define MANIMAL_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace manimal {

// ---------- fixed-width (little endian) ----------

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// ---------- varints ----------

void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

// Each Get* consumes bytes from the front of `*input` on success.
// Returns Corruption if the input is truncated or overlong.
Status GetVarint32(std::string_view* input, uint32_t* value);
Status GetVarint64(std::string_view* input, uint64_t* value);

// Number of bytes PutVarint64 would append.
int VarintLength(uint64_t v);

// ---------- zigzag (signed <-> unsigned) ----------

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutVarintSigned(std::string* dst, int64_t v) {
  PutVarint64(dst, ZigzagEncode(v));
}

inline Status GetVarintSigned(std::string_view* input, int64_t* value) {
  uint64_t u = 0;
  MANIMAL_RETURN_IF_ERROR(GetVarint64(input, &u));
  *value = ZigzagDecode(u);
  return Status::OK();
}

// ---------- length-prefixed strings ----------

void PutLengthPrefixed(std::string* dst, std::string_view value);
Status GetLengthPrefixed(std::string_view* input, std::string_view* value);

// ---------- doubles ----------

inline void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutFixed64(dst, bits);
}

inline Status GetDouble(std::string_view* input, double* v) {
  if (input->size() < 8) return Status::Corruption("truncated double");
  uint64_t bits = DecodeFixed64(input->data());
  std::memcpy(v, &bits, 8);
  input->remove_prefix(8);
  return Status::OK();
}

inline Status GetFixed32(std::string_view* input, uint32_t* v) {
  if (input->size() < 4) return Status::Corruption("truncated fixed32");
  *v = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return Status::OK();
}

inline Status GetFixed64(std::string_view* input, uint64_t* v) {
  if (input->size() < 8) return Status::Corruption("truncated fixed64");
  *v = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return Status::OK();
}

}  // namespace manimal

#endif  // MANIMAL_COMMON_CODING_H_
