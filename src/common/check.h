// Invariant-checking macros. A failed check indicates a programming
// error inside Manimal (never bad user input, which surfaces as a
// Status) and aborts the process with a location-stamped message.

#ifndef MANIMAL_COMMON_CHECK_H_
#define MANIMAL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define MANIMAL_CHECK(cond)                                             \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "MANIMAL_CHECK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__, #cond);                          \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#define MANIMAL_CHECK_MSG(cond, msg)                                    \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "MANIMAL_CHECK failed at %s:%d: %s (%s)\n",  \
                   __FILE__, __LINE__, #cond, msg);                     \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

#define MANIMAL_UNREACHABLE()                                            \
  do {                                                                   \
    std::fprintf(stderr, "MANIMAL_UNREACHABLE reached at %s:%d\n",       \
                 __FILE__, __LINE__);                                    \
    std::abort();                                                        \
  } while (0)

#endif  // MANIMAL_COMMON_CHECK_H_
