#include "common/strings.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace manimal {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string EscapeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 't':
          out.push_back('\t');
          break;
        case 'n':
          out.push_back('\n');
          break;
        default:
          out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(n);
    std::vsnprintf(out.data(), n + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return StrPrintf("%.2f %s", v, units[u]);
}

}  // namespace manimal
