// FaultyEnv: a deterministic fault-injection wrapper over the
// common/Env filesystem layer.
//
// All disk traffic already flows through env.h's file classes; each of
// their fallible operations consults this injector before touching the
// real filesystem. When enabled AND the calling thread is armed (see
// ScopedFaultArming), an operation may be failed from a seeded
// schedule instead of executed: open/read/write/flush/close/rename
// errors and short writes (a prefix of the data is persisted and the
// write then fails, modeling a torn write / lost fsync).
//
// The schedule is deterministic per (seed, op, path, per-path op
// ordinal), so a given seed produces the same set of injected faults
// for the same file-access pattern regardless of thread interleaving.
// A separate `fail_nth` mode fails exactly the Nth armed operation,
// which crash-recovery tests use to sweep every injection site.
//
// Arming is thread-local: the execution fabric arms fault injection
// only inside retryable task attempts, so a fault is only ever
// injected where the engine's retry machinery can observe and recover
// from it. Tests arm explicitly around the code under test.
//
// Env vars (see docs/testing.md): MANIMAL_FAULT_SEED,
// MANIMAL_FAULT_RATE, MANIMAL_FAULT_MAX.

#ifndef MANIMAL_COMMON_FAULTY_ENV_H_
#define MANIMAL_COMMON_FAULTY_ENV_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace manimal {

// The filesystem operations eligible for injection.
enum class FaultOp {
  kOpenWrite = 0,
  kOpenRead,
  kRead,
  kWrite,
  kFlush,
  kClose,
  kRename,
};

const char* FaultOpName(FaultOp op);

class FaultyEnv {
 public:
  struct Config {
    uint64_t seed = 1;
    // Per-operation injection probability in [0, 1).
    double rate = 0.0;
    // When > 0, ignore `rate` and fail exactly the Nth armed
    // operation (1-based), then stop injecting. Crash-recovery tests
    // sweep n over [1, evaluated] to hit every site once.
    uint64_t fail_nth = 0;
    // Stop injecting after this many faults (budget).
    uint64_t max_failures = UINT64_MAX;
    // Allow short-write faults: persist a seeded prefix of the data,
    // then fail the Append. Exercises the temp-file+rename commit
    // protocol (a torn file must never be read as valid).
    bool short_writes = true;
  };

  struct Stats {
    uint64_t evaluated = 0;  // armed operations that consulted the schedule
    uint64_t injected = 0;   // operations actually failed
  };

  static FaultyEnv& Get();

  void Enable(const Config& config);
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Builds a Config from MANIMAL_FAULT_SEED / MANIMAL_FAULT_RATE /
  // MANIMAL_FAULT_MAX, falling back to `defaults` for unset vars.
  static Config ConfigFromEnv(const Config& defaults);

  Stats stats() const;
  Config config() const;

  // True when injection is enabled AND this thread is armed — the
  // fast-path gate the env hooks check before taking any lock.
  static bool Active();

  // Consults the schedule for one operation. OK means "proceed".
  Status MaybeInject(FaultOp op, const std::string& path);

  // Write-specific: on a short-write injection, *persist_prefix is set
  // to the number of leading bytes the caller must still write before
  // returning the error (strictly less than `len`); otherwise it is
  // left untouched.
  Status MaybeInjectWrite(const std::string& path, size_t len,
                          size_t* persist_prefix);

 private:
  friend class ScopedFaultArming;
  FaultyEnv() = default;

  // Returns non-OK iff the schedule fires for this (op, path) site.
  Status Evaluate(FaultOp op, const std::string& path, uint64_t* decision);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  Config config_;
  Stats stats_;
  // Per-path armed-op ordinals, so the schedule is independent of
  // cross-file thread interleaving.
  std::map<std::string, uint64_t> path_ops_;
};

// Arms fault injection for the current thread for the scope's
// lifetime. Nestable.
class ScopedFaultArming {
 public:
  ScopedFaultArming();
  ~ScopedFaultArming();

  ScopedFaultArming(const ScopedFaultArming&) = delete;
  ScopedFaultArming& operator=(const ScopedFaultArming&) = delete;

 private:
  bool was_armed_;
};

// RAII enable/disable for tests: enables with `config` on
// construction, disables (and forgets all schedule state) on
// destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultyEnv::Config& config) {
    FaultyEnv::Get().Enable(config);
  }
  ~ScopedFaultInjection() { FaultyEnv::Get().Disable(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace manimal

#endif  // MANIMAL_COMMON_FAULTY_ENV_H_
