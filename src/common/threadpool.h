// A fixed-size worker pool used by the execution fabric to run map and
// reduce tasks in parallel (each worker models a cluster slot).

#ifndef MANIMAL_COMMON_THREADPOOL_H_
#define MANIMAL_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace manimal::obs {
class Gauge;
}  // namespace manimal::obs

namespace manimal {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;
  bool shutting_down_ = false;
  // "threadpool.queue_depth" gauge: tasks submitted but not yet
  // picked up, published on every transition (max tracks the peak).
  obs::Gauge* queue_depth_gauge_;
};

}  // namespace manimal

#endif  // MANIMAL_COMMON_THREADPOOL_H_
