#include "exec/shuffle.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serde/key_codec.h"
#include "serde/record_codec.h"

namespace manimal::exec {

namespace {
// A single partition buffer never grows past this even if the mapper
// budget allows it: SpillBuffer offsets are 32-bit.
constexpr uint64_t kMaxBufferBytes = 2ull << 30;
}  // namespace

// ---------------- Shuffle::Mapper ----------------

Shuffle::Mapper::Mapper(Shuffle* shuffle, int id)
    : shuffle_(shuffle),
      id_(id),
      buffers_(shuffle->options_.num_partitions),
      run_paths_(shuffle->options_.num_partitions) {}

Shuffle::Mapper::~Mapper() {
  // Sealed mappers handed their runs to the shuffle; an unsealed
  // mapper (map task that bailed on error) cleans up after itself.
  if (sealed_) return;
  for (const std::vector<std::string>& paths : run_paths_) {
    for (const std::string& path : paths) {
      (void)RemoveFileIfExists(path);
    }
  }
}

Status Shuffle::Mapper::Add(int partition, std::string_view key,
                            std::string_view payload) {
  MANIMAL_CHECK(!sealed_);
  MANIMAL_CHECK(partition >= 0 &&
                partition < static_cast<int>(buffers_.size()));
  buffers_[partition].Add(key, payload);
  buffered_bytes_ += key.size() + payload.size();
  ++entries_;
  while (buffered_bytes_ >= shuffle_->options_.mapper_budget_bytes ||
         buffers_[partition].buffered_bytes() > kMaxBufferBytes) {
    // Spill the largest buffer: fewest, longest runs for the merge.
    int largest = 0;
    for (int p = 1; p < static_cast<int>(buffers_.size()); ++p) {
      if (buffers_[p].buffered_bytes() >
          buffers_[largest].buffered_bytes()) {
        largest = p;
      }
    }
    if (buffers_[largest].empty()) break;
    MANIMAL_RETURN_IF_ERROR(Spill(largest));
  }
  return Status::OK();
}

Status Shuffle::Mapper::Spill(int partition) {
  index::SpillBuffer& buffer = buffers_[partition];
  const uint64_t arena_bytes = buffer.buffered_bytes();
  std::string path =
      shuffle_->options_.temp_dir + "/" +
      StrPrintf("shuffle-m%04d-p%04d-r%04d.sort", id_, partition,
                static_cast<int>(run_paths_[partition].size()));
  MANIMAL_ASSIGN_OR_RETURN(const uint64_t run_bytes,
                           buffer.SpillToFile(path));
  run_paths_[partition].push_back(std::move(path));
  buffered_bytes_ -= arena_bytes;
  shuffle_->OnSpill(id_, partition, run_bytes);
  return Status::OK();
}

Status Shuffle::Mapper::Seal() {
  MANIMAL_CHECK(!sealed_);
  sealed_ = true;
  const int num_partitions = static_cast<int>(buffers_.size());
  std::vector<index::MemoryRun> tails(num_partitions);
  std::vector<bool> has_tail(num_partitions, false);
  for (int p = 0; p < num_partitions; ++p) {
    if (buffers_[p].empty()) continue;
    tails[p] = buffers_[p].TakeSortedRun();
    has_tail[p] = true;
  }
  std::lock_guard<std::mutex> lock(shuffle_->mu_);
  for (int p = 0; p < num_partitions; ++p) {
    PartitionState& state = shuffle_->partitions_[p];
    for (std::string& path : run_paths_[p]) {
      state.run_paths.push_back(std::move(path));
    }
    run_paths_[p].clear();
    if (has_tail[p]) state.memory_runs.push_back(std::move(tails[p]));
  }
  shuffle_->stats_.entries += entries_;
  ++shuffle_->stats_.mappers_sealed;
  return Status::OK();
}

// ---------------- Shuffle ----------------

Shuffle::Shuffle(Options options)
    : options_(std::move(options)), partitions_(options_.num_partitions) {
  MANIMAL_CHECK(!options_.temp_dir.empty());
  MANIMAL_CHECK(options_.num_partitions >= 1);
  auto& metrics = obs::MetricsRegistry::Get();
  spilled_runs_counter_ =
      metrics.GetCounter(options_.metric_label + ".spilled_runs");
  spilled_bytes_counter_ =
      metrics.GetCounter(options_.metric_label + ".spilled_bytes");
}

Shuffle::~Shuffle() {
  for (const PartitionState& state : partitions_) {
    for (const std::string& path : state.run_paths) {
      (void)RemoveFileIfExists(path);
    }
  }
}

std::unique_ptr<Shuffle::Mapper> Shuffle::NewMapper() {
  int id = next_mapper_id_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Mapper>(new Mapper(this, id));
}

void Shuffle::OnSpill(int mapper_id, int partition, uint64_t run_bytes) {
  spilled_runs_counter_->Increment();
  spilled_bytes_counter_->Add(static_cast<int64_t>(run_bytes));
  obs::TraceInstant((options_.metric_label + ".spill").c_str(), "exec",
                    {{"bytes", std::to_string(run_bytes)}});
  obs::Journal::Get()
      .Event("shuffle_spill")
      .Str("job", options_.job_id)
      .Int("mapper", mapper_id)
      .Int("partition", partition)
      .Uint("bytes", run_bytes)
      .Emit();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.spilled_runs;
  stats_.spilled_bytes += run_bytes;
}

Result<std::unique_ptr<index::SortedStream>> Shuffle::FinishPartition(
    int p) {
  MANIMAL_CHECK(p >= 0 && p < static_cast<int>(partitions_.size()));
  // The partition's runs stay owned by the Shuffle (runs on disk, in
  // -memory tails borrowed by the merge stream), so a failed reduce
  // task can call FinishPartition again and re-merge from scratch.
  // All mappers must have sealed before the first call, which is what
  // keeps the borrowed pointers stable.
  std::vector<std::string> run_paths;
  std::vector<const index::MemoryRun*> memory_runs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const PartitionState& state = partitions_[p];
    run_paths = state.run_paths;  // copy: dtor still removes the files
    memory_runs.reserve(state.memory_runs.size());
    for (const index::MemoryRun& run : state.memory_runs) {
      memory_runs.push_back(&run);
    }
  }
  obs::MetricsRegistry::Get()
      .GetHistogram(options_.metric_label + ".merge_fan_in")
      ->Record(static_cast<double>(run_paths.size() + memory_runs.size()));
  obs::Journal::Get()
      .Event("shuffle_merge")
      .Str("job", options_.job_id)
      .Int("partition", p)
      .Uint("disk_runs", run_paths.size())
      .Uint("memory_runs", memory_runs.size())
      .Emit();
  return index::MergeSortedRunsBorrowed(run_paths,
                                        std::move(memory_runs));
}

Shuffle::Stats Shuffle::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---------------- GroupIterator ----------------

Result<bool> GroupIterator::Next(Value* key, ValueList* values) {
  if (!stream_->Valid()) return false;
  group_key_.assign(stream_->key());
  // The pooled strings beyond `n` keep their capacity for the next
  // group — no per-value allocation once the pool is warm.
  size_t n = 0;
  while (stream_->Valid() && stream_->key() == group_key_) {
    if (n == encoded_values_.size()) encoded_values_.emplace_back();
    encoded_values_[n++].assign(stream_->payload());
    MANIMAL_RETURN_IF_ERROR(stream_->Next());
  }
  std::sort(encoded_values_.begin(), encoded_values_.begin() + n);
  values->clear();
  values->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string_view in = encoded_values_[i];
    Value v;
    MANIMAL_RETURN_IF_ERROR(DecodeValue(&in, &v));
    values->push_back(std::move(v));
  }
  MANIMAL_RETURN_IF_ERROR(DecodeOrderedKey(group_key_, key));
  return true;
}

}  // namespace manimal::exec
