#include "exec/pairfile.h"

#include <algorithm>

#include "common/coding.h"
#include "serde/record_codec.h"

namespace manimal::exec {

namespace {
constexpr char kMagic[4] = {'M', 'P', 'R', 'S'};
}  // namespace

Result<std::unique_ptr<PairFileWriter>> PairFileWriter::Create(
    const std::string& path) {
  MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                           WritableFile::Create(path));
  MANIMAL_RETURN_IF_ERROR(f->Append(std::string_view(kMagic, 4)));
  return std::unique_ptr<PairFileWriter>(
      new PairFileWriter(std::move(f)));
}

Status PairFileWriter::Append(const Value& key, const Value& value) {
  std::string buf;
  MANIMAL_RETURN_IF_ERROR(EncodeValue(key, &buf));
  MANIMAL_RETURN_IF_ERROR(EncodeValue(value, &buf));
  return AppendEncoded(buf);
}

Status PairFileWriter::AppendEncoded(std::string_view bytes) {
  MANIMAL_RETURN_IF_ERROR(file_->Append(bytes));
  ++num_pairs_;
  return Status::OK();
}

Status PairFileWriter::AppendEncodedChunk(std::string_view bytes,
                                          uint64_t num_pairs) {
  MANIMAL_RETURN_IF_ERROR(file_->Append(bytes));
  num_pairs_ += num_pairs;
  return Status::OK();
}

Result<uint64_t> PairFileWriter::Finish() {
  std::string footer;
  PutFixed64(&footer, num_pairs_);
  MANIMAL_RETURN_IF_ERROR(file_->Append(footer));
  uint64_t total = file_->bytes_written();
  MANIMAL_RETURN_IF_ERROR(file_->Close());
  return total;
}

Result<std::vector<std::pair<Value, Value>>> ReadAllPairs(
    const std::string& path) {
  MANIMAL_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  if (data.size() < 12 ||
      std::string_view(data).substr(0, 4) != std::string_view(kMagic, 4)) {
    return Status::Corruption("bad pair file: " + path);
  }
  uint64_t count = DecodeFixed64(data.data() + data.size() - 8);
  std::string_view in(data.data() + 4, data.size() - 12);
  std::vector<std::pair<Value, Value>> out;
  // The footer count is untrusted until the decode below confirms it:
  // every encoded pair takes >= 2 bytes, so clamp the reservation to
  // what the payload could plausibly hold instead of letting a
  // corrupt footer drive a huge allocation.
  out.reserve(std::min<uint64_t>(count, in.size() / 2));
  while (!in.empty()) {
    Value key, value;
    MANIMAL_RETURN_IF_ERROR(DecodeValue(&in, &key));
    MANIMAL_RETURN_IF_ERROR(DecodeValue(&in, &value));
    out.emplace_back(std::move(key), std::move(value));
  }
  if (out.size() != count) {
    return Status::Corruption("pair count mismatch in " + path);
  }
  return out;
}

Result<std::vector<std::string>> ReadCanonicalPairs(
    const std::string& path) {
  MANIMAL_ASSIGN_OR_RETURN(auto pairs, ReadAllPairs(path));
  std::vector<std::string> encoded;
  encoded.reserve(pairs.size());
  for (const auto& [k, v] : pairs) {
    std::string buf;
    MANIMAL_RETURN_IF_ERROR(EncodeValue(k, &buf));
    MANIMAL_RETURN_IF_ERROR(EncodeValue(v, &buf));
    encoded.push_back(std::move(buf));
  }
  std::sort(encoded.begin(), encoded.end());
  return encoded;
}

}  // namespace manimal::exec
