// The shuffle: moves sorted map output into reduce partitions.
//
// Each map task owns a Shuffle::Mapper — num_partitions private
// SpillBuffers that accumulate emits with no synchronization at all
// (the emit hot path takes no lock), spill independently as sorted
// run files when the mapper's budget fills, and hand their runs plus
// the sorted in-memory tails to the partition state in one locked
// handoff at Seal(). At the map/reduce barrier each partition k-way
// heap-merges everything it received (FinishPartition), and
// GroupIterator walks the merged stream one key group at a time so
// reduce runs in bounded memory. See docs/execution.md.

#ifndef MANIMAL_EXEC_SHUFFLE_H_
#define MANIMAL_EXEC_SHUFFLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "index/external_sorter.h"
#include "serde/value.h"

namespace manimal::obs {
class Counter;
}  // namespace manimal::obs

namespace manimal::exec {

class Shuffle {
 public:
  struct Options {
    std::string temp_dir;  // required: where spill runs live
    int num_partitions = 1;
    // In-memory buffer budget per mapper, shared across its partition
    // buffers; the largest buffer spills when the budget fills.
    uint64_t mapper_budget_bytes = 8u << 20;
    // Spills publish "<label>.spilled_runs" / "<label>.spilled_bytes"
    // counters and "<label>.spill" trace instants; merges record the
    // "<label>.merge_fan_in" histogram.
    std::string metric_label = "shuffle";
    // Job id stamped on the shuffle's journal events (shuffle_spill /
    // shuffle_merge) so they correlate with the owning job's lifecycle
    // events; empty = standalone shuffle (index builds, tests).
    std::string job_id;
  };

  struct Stats {
    uint64_t spilled_runs = 0;
    uint64_t spilled_bytes = 0;
    uint64_t entries = 0;
    uint64_t mappers_sealed = 0;
  };

  // One map task's private view of the shuffle. Add() and Seal() are
  // called from the owning map task only; different Mappers never
  // share mutable state, which is what keeps the emit path lock-free.
  class Mapper {
   public:
    ~Mapper();
    Mapper(const Mapper&) = delete;
    Mapper& operator=(const Mapper&) = delete;

    // Buffers one (key, payload) emit for `partition`; spills the
    // largest partition buffer to disk when the budget fills.
    Status Add(int partition, std::string_view key,
               std::string_view payload);

    // Sorts the in-memory tails and hands runs + tails to the parent
    // shuffle (the only synchronized step). Call exactly once, after
    // the task's last Add.
    Status Seal();

   private:
    friend class Shuffle;
    Mapper(Shuffle* shuffle, int id);

    Status Spill(int partition);

    Shuffle* const shuffle_;
    const int id_;
    uint64_t buffered_bytes_ = 0;
    uint64_t entries_ = 0;
    bool sealed_ = false;
    std::vector<index::SpillBuffer> buffers_;          // one per partition
    std::vector<std::vector<std::string>> run_paths_;  // one per partition
  };

  explicit Shuffle(Options options);
  ~Shuffle();  // removes all handed-over run files

  Shuffle(const Shuffle&) = delete;
  Shuffle& operator=(const Shuffle&) = delete;

  // Thread-safe; one per map task.
  std::unique_ptr<Mapper> NewMapper();

  // Heap-merges every run and in-memory tail sealed into partition
  // `p`. Call after all mappers sealed; the Shuffle must outlive the
  // stream. Re-callable: the partition's runs stay owned by the
  // Shuffle, so a retried reduce task simply merges again.
  Result<std::unique_ptr<index::SortedStream>> FinishPartition(int p);

  Stats stats() const;

 private:
  struct PartitionState {
    std::vector<std::string> run_paths;
    std::vector<index::MemoryRun> memory_runs;
  };

  void OnSpill(int mapper_id, int partition, uint64_t run_bytes);

  Options options_;
  obs::Counter* spilled_runs_counter_;
  obs::Counter* spilled_bytes_counter_;
  std::atomic<int> next_mapper_id_{0};
  mutable std::mutex mu_;  // guards partitions_ and stats_
  std::vector<PartitionState> partitions_;
  Stats stats_;
};

// Iterates (key, values) groups off a merged shuffle stream holding
// one group at a time. Values are decoded in canonically sorted
// (encoded-bytes) order: the shuffle's arrival order is
// nondeterministic, so a fixed order keeps runs reproducible and
// baseline/optimized outputs comparable.
class GroupIterator {
 public:
  explicit GroupIterator(index::SortedStream* stream)
      : stream_(stream) {}

  // Fills *key (decoded group key) and *values; false at end.
  Result<bool> Next(Value* key, ValueList* values);

 private:
  index::SortedStream* const stream_;
  std::string group_key_;
  std::vector<std::string> encoded_values_;  // reused across groups
};

}  // namespace manimal::exec

#endif  // MANIMAL_EXEC_SHUFFLE_H_
