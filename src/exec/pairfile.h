// PairFile: the output format of a MapReduce job — a flat sequence of
// (key, value) pairs in self-describing Value encoding.

#ifndef MANIMAL_EXEC_PAIRFILE_H_
#define MANIMAL_EXEC_PAIRFILE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "serde/value.h"

namespace manimal::exec {

class PairFileWriter {
 public:
  static Result<std::unique_ptr<PairFileWriter>> Create(
      const std::string& path);

  Status Append(const Value& key, const Value& value);
  // Appends pre-encoded pair bytes (EncodeValue(key)+EncodeValue(value)).
  Status AppendEncoded(std::string_view bytes);
  // Appends a batch of num_pairs pre-encoded pairs in one write.
  Status AppendEncodedChunk(std::string_view bytes, uint64_t num_pairs);

  Result<uint64_t> Finish();  // returns total bytes

  uint64_t num_pairs() const { return num_pairs_; }

 private:
  explicit PairFileWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<WritableFile> file_;
  uint64_t num_pairs_ = 0;
};

// Loads an entire pair file (outputs are small relative to inputs).
Result<std::vector<std::pair<Value, Value>>> ReadAllPairs(
    const std::string& path);

// Canonicalized multiset view for output-equivalence checks: encoded
// pairs, sorted. Two jobs produced identical output multisets iff
// these match.
Result<std::vector<std::string>> ReadCanonicalPairs(
    const std::string& path);

}  // namespace manimal::exec

#endif  // MANIMAL_EXEC_PAIRFILE_H_
