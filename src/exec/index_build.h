// Executes index-generation programs (paper §2.2): scans the raw input
// file, applies the transformations the analyzer prescribed
// (projection, delta encoding, dictionary encoding), and either
// bulk-loads a B+Tree keyed by the selection expression or writes a
// re-encoded SeqFile. The artifact is then registered in the catalog.
//
// This is the fabric-side realization of "an index-generation program
// ... is itself a MapReduce program": scan (map) -> sort by index key
// (shuffle) -> bulk load (reduce).

#ifndef MANIMAL_EXEC_INDEX_BUILD_H_
#define MANIMAL_EXEC_INDEX_BUILD_H_

#include <string>

#include "analyzer/index_gen.h"
#include "common/status.h"
#include "index/catalog.h"

namespace manimal::exec {

struct IndexBuildResult {
  index::CatalogEntry entry;
  double seconds = 0;
  uint64_t records = 0;
};

// Builds the artifact for `spec` from `input_path` (a plain SeqFile),
// placing outputs under `artifact_dir` and spill files under
// `temp_dir`. Does not touch the catalog; callers register the entry.
Result<IndexBuildResult> BuildIndexArtifact(
    const analyzer::IndexGenProgram& spec, const std::string& input_path,
    const std::string& artifact_dir, const std::string& temp_dir);

}  // namespace manimal::exec

#endif  // MANIMAL_EXEC_INDEX_BUILD_H_
