#include "exec/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "analyzer/expr_eval.h"
#include "codegen/kernel.h"
#include "codegen/skip.h"
#include "common/check.h"
#include "common/coding.h"
#include "common/faulty_env.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "exec/pairfile.h"
#include "exec/shuffle.h"
#include "mril/verifier.h"
#include "mril/vm.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serde/key_codec.h"
#include "serde/record_codec.h"

namespace manimal::exec {

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kAuto: return "auto";
    case Backend::kVm: return "vm";
    case Backend::kNative: return "native";
  }
  return "auto";
}

std::optional<Backend> BackendFromName(std::string_view name) {
  if (name == "auto") return Backend::kAuto;
  if (name == "vm") return Backend::kVm;
  if (name == "native") return Backend::kNative;
  return std::nullopt;
}

namespace {

// Process-wide job id allocator backing JobConfig::job_id's
// auto-assignment.
std::atomic<uint64_t> g_next_job_id{1};

// Shared task id string ("m0003" / "r0001") stamped on journal events
// and trace spans so the two artifacts cross-reference.
std::string TaskId(char kind, int index) {
  return StrPrintf("%c%04d", kind, index);
}

// Shared error latch: first error wins; all tasks then bail early.
class ErrorLatch {
 public:
  void Set(const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_.ok() && !status.ok()) first_ = status;
  }
  bool Failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !first_.ok();
  }
  Status First() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_;
  }

 private:
  mutable std::mutex mu_;
  Status first_;
};

// Job output sink: a PairFile, or (pipeline mode) a typed SeqFile the
// next MapReduce stage can consume. The writer targets a temp sibling
// of the output path; Finish() renames it into place, so a crashed or
// aborted job never leaves a half-written file a consumer could read
// as valid. Internally synchronized (assembly is single-threaded
// today, but the writer keeps its lock so callers need not care).
class OutputWriter {
 public:
  static Result<std::unique_ptr<OutputWriter>> Create(
      const JobConfig& config) {
    auto out = std::unique_ptr<OutputWriter>(new OutputWriter());
    out->final_path_ = config.output_path;
    out->temp_path_ = config.output_path + ".inprogress";
    if (!config.output_schema.has_value()) {
      MANIMAL_ASSIGN_OR_RETURN(out->pairs_,
                               PairFileWriter::Create(out->temp_path_));
      return out;
    }
    const Schema& declared = *config.output_schema;
    if (!declared.opaque()) {
      for (size_t i = 0; i < config.output_kept_fields.size(); ++i) {
        const int f = config.output_kept_fields[i];
        if (f < 0 || f >= declared.num_fields()) {
          return Status::InvalidArgument(StrPrintf(
              "output_kept_fields[%zu] = %d out of range for output "
              "schema with %d fields",
              i, f, declared.num_fields()));
        }
      }
    }
    columnar::SeqFileMeta meta;
    meta.original_schema = declared;
    if (config.output_kept_fields.empty() || declared.opaque()) {
      meta.stored_schema = declared;
      if (declared.opaque()) {
        meta.field_map = {0};
      } else {
        for (int i = 0; i < declared.num_fields(); ++i) {
          meta.field_map.push_back(i);
        }
      }
    } else {
      meta.stored_schema = declared.Project(config.output_kept_fields);
      meta.field_map = config.output_kept_fields;
      out->kept_fields_ = config.output_kept_fields;
    }
    out->declared_ = declared;
    MANIMAL_ASSIGN_OR_RETURN(
        out->records_,
        columnar::SeqFileWriter::Create(out->temp_path_, meta));
    return out;
  }

  Status Append(const Value& key, const Value& value) {
    std::lock_guard<std::mutex> lock(mu_);
    return AppendLocked(key, value);
  }

  // True when the output is a raw PairFile: assembly may then move
  // whole pre-encoded part payloads in without decoding.
  bool pair_encoded() const { return pairs_ != nullptr; }

  Status AppendEncodedChunk(std::string_view bytes, uint64_t num_pairs) {
    if (bytes.empty() && num_pairs == 0) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    return pairs_->AppendEncodedChunk(bytes, num_pairs);
  }

  uint64_t num_outputs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pairs_ != nullptr ? pairs_->num_pairs() : num_records_;
  }

  // Seals the writer and commits the temp file to the output path.
  Result<uint64_t> Finish() {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    if (pairs_ != nullptr) {
      MANIMAL_ASSIGN_OR_RETURN(total, pairs_->Finish());
    } else {
      MANIMAL_ASSIGN_OR_RETURN(total, records_->Finish());
    }
    MANIMAL_RETURN_IF_ERROR(RenameFile(temp_path_, final_path_));
    return total;
  }

  const std::string& temp_path() const { return temp_path_; }

 private:
  OutputWriter() = default;

  Status AppendLocked(const Value& key, const Value& value) {
    if (pairs_ != nullptr) return pairs_->Append(key, value);
    // Flatten (k, v) into a record.
    Record record;
    record.push_back(key);
    if (value.is_list()) {
      for (const Value& item : value.list()) record.push_back(item);
    } else {
      record.push_back(value);
    }
    if (static_cast<int>(record.size()) != declared_.num_fields()) {
      return Status::InvalidArgument(StrPrintf(
          "pipeline output pair flattens to %zu fields; declared "
          "schema has %d",
          record.size(), declared_.num_fields()));
    }
    if (!kept_fields_.empty()) {
      Record projected;
      projected.reserve(kept_fields_.size());
      for (int f : kept_fields_) projected.push_back(record[f]);
      record = std::move(projected);
    }
    ++num_records_;
    return records_->Append(record);
  }

  mutable std::mutex mu_;
  std::unique_ptr<PairFileWriter> pairs_;
  std::unique_ptr<columnar::SeqFileWriter> records_;
  std::string final_path_;
  std::string temp_path_;
  Schema declared_;
  std::vector<int> kept_fields_;
  uint64_t num_records_ = 0;
};

// One task attempt's private output file: self-describing Value-
// encoded (key, value) pairs followed by a fixed64 pair count. The
// attempt writes it at an attempt-unique path; committing the task
// renames it to the canonical part path, and the engine concatenates
// the committed parts (in task order) into the job output after the
// phase barrier. This is what makes task outputs idempotent: a
// retried or speculative duplicate attempt can never contribute
// twice, and a torn attempt file is never visible at a canonical
// path.
class PartFile {
 public:
  static constexpr size_t kChunkBytes = 256u << 10;

  static Result<std::unique_ptr<PartFile>> Create(
      const std::string& path) {
    MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> f,
                             WritableFile::Create(path));
    return std::unique_ptr<PartFile>(new PartFile(std::move(f)));
  }

  // The emit hot path encodes key/value bytes directly into buffer()
  // (no intermediate copy) and then reports the pair.
  std::string* buffer() { return &buf_; }
  Status PairAdded() {
    ++num_pairs_;
    if (buf_.size() >= kChunkBytes) return FlushBuffer();
    return Status::OK();
  }

  Status Finish() {
    MANIMAL_RETURN_IF_ERROR(FlushBuffer());
    std::string footer;
    PutFixed64(&footer, num_pairs_);
    MANIMAL_RETURN_IF_ERROR(file_->Append(footer));
    return file_->Close();
  }

  uint64_t num_pairs() const { return num_pairs_; }
  uint64_t payload_bytes() const { return payload_bytes_ + buf_.size(); }

 private:
  explicit PartFile(std::unique_ptr<WritableFile> f)
      : file_(std::move(f)) {}

  Status FlushBuffer() {
    if (buf_.empty()) return Status::OK();
    MANIMAL_RETURN_IF_ERROR(file_->Append(buf_));
    payload_bytes_ += buf_.size();
    buf_.clear();
    return Status::OK();
  }

  std::unique_ptr<WritableFile> file_;
  std::string buf_;
  uint64_t num_pairs_ = 0;
  uint64_t payload_bytes_ = 0;
};

struct PartData {
  std::string bytes;  // concatenated encoded pairs
  uint64_t num_pairs = 0;
};

Result<PartData> ReadPartFile(const std::string& path) {
  MANIMAL_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  if (data.size() < 8) {
    return Status::Corruption("task part file too short: " + path);
  }
  PartData part;
  part.num_pairs = DecodeFixed64(data.data() + data.size() - 8);
  data.resize(data.size() - 8);
  if (part.num_pairs > data.size() / 2 + 1) {
    return Status::Corruption("task part count mismatch in " + path);
  }
  part.bytes = std::move(data);
  return part;
}

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Runs one job: input planning, the map phase (with per-task retry
// chains and speculative duplicates), the shuffle barrier, the reduce
// phase (with retry), part assembly, and the final output commit.
class JobRunner {
 public:
  JobRunner(const ExecutionDescriptor& descriptor, JobConfig cfg)
      : descriptor_(descriptor),
        cfg_(std::move(cfg)),
        program_(descriptor.program),
        has_reduce_(descriptor.program.has_reduce()) {}

  Result<JobResult> Run();

 private:
  // Per-task coordination between retry chains, speculative twins,
  // and the speculation monitor.
  struct TaskControl {
    // The commit gate: exactly one attempt of one chain holds it
    // while renaming/sealing; released again if that commit fails.
    std::atomic<bool> committed{false};
    // Some attempt committed successfully; all other chains stand down.
    std::atomic<bool> done{false};
    // The task reached a terminal state (success or budget
    // exhaustion); used by the monitor's exit condition.
    std::atomic<bool> resolved{false};
    std::atomic<bool> speculated{false};
    // Steady-clock start of the first chain (0 = not started yet).
    std::atomic<int64_t> started_ns{0};
    // Adaptive replanning: which input the task reads — -1 undecided,
    // 0 the original plan's split, 1 the switched locator split.
    // CAS'd exactly once by whichever attempt starts first, so
    // retries and speculative twins of one task always read the same
    // input (attempt outputs stay interchangeable).
    std::atomic<int> plan_choice{-1};
  };

  // The fallible work of one attempt returns a commit closure; the
  // chain runs it only if this attempt wins the task's commit gate.
  using CommitFn = std::function<Status()>;
  using AttemptFn = std::function<Result<CommitFn>(int chain, int attempt)>;

  Status Prepare();
  Status ResolveBackend();
  Status RunMapPhase();
  Status RunReducePhase();
  Status AssembleOutput(char kind, int num_parts);
  void RunChain(TaskControl* ctl, char kind, int index, int chain,
                const AttemptFn& attempt_fn);
  Result<CommitFn> MapAttempt(int split_index, int chain, int attempt);
  Result<CommitFn> ReduceAttempt(int partition, int chain, int attempt);
  void MaybeReplan(int committed_splits);
  Result<std::unique_ptr<InputSplit>> OpenSwitchedSplit(int split_index);
  void SubmitMapChain(ThreadPool* pool, int split_index, int chain);
  void MonitorMapPhase(ThreadPool* pool);
  void Backoff(int attempt) const;
  void RecordTaskStat(const TaskStat& stat,
                      const std::vector<uint64_t>& interval_matches);

  std::string PartPath(char kind, int idx) const {
    return cfg_.temp_dir + "/" + StrPrintf("part-%c%04d", kind, idx);
  }
  std::string AttemptPath(char kind, int idx, int chain) const {
    return PartPath(kind, idx) + StrPrintf(".c%d.tmp", chain);
  }

  const ExecutionDescriptor& descriptor_;
  JobConfig cfg_;
  const mril::Program& program_;
  const bool has_reduce_;

  std::unique_ptr<InputPlan> plan_;
  std::vector<int> field_remap_;
  std::unique_ptr<Shuffle> shuffle_;
  std::unique_ptr<OutputWriter> out_;
  ErrorLatch errors_;

  std::deque<TaskControl> map_tasks_;
  std::deque<TaskControl> reduce_tasks_;
  std::vector<uint64_t> partition_groups_;

  // Completed map-chain durations feed the speculation threshold.
  std::mutex durations_mu_;
  std::vector<double> map_chain_seconds_;

  // Wakes the speculation monitor when a map chain finishes, so the
  // phase ends promptly without a tight polling loop stealing CPU
  // from the workers.
  std::mutex monitor_mu_;
  std::condition_variable monitor_cv_;

  std::atomic<uint64_t> input_records_{0}, input_bytes_{0},
      map_invocations_{0}, map_output_records_{0}, map_output_bytes_{0},
      map_output_filtered_{0}, log_messages_{0};
  std::atomic<uint64_t> bytes_decoded_{0}, blocks_skipped_{0};
  std::atomic<uint64_t> task_retries_{0}, speculative_launches_{0},
      tasks_failed_{0};

  // ---- native backend (JobConfig::backend, docs/mril.md) ----
  // Resolved in Prepare(): non-null kernel_ means map tasks run the
  // native tier, replaying individual records through a companion VM
  // whenever the kernel bails out.
  std::shared_ptr<const codegen::NativeKernel> kernel_;
  std::string map_backend_name_ = "vm";
  std::string backend_detail_;
  // Direct-evaluation admission summary (journaled; kept for spans).
  std::string skip_detail_;
  std::atomic<uint64_t> native_tasks_{0}, native_bailouts_{0};

  // EXPLAIN ANALYZE collection (JobConfig::collect_task_stats).
  // observe_ is resolved in Prepare(): stats requested AND the
  // descriptor carries observation hooks AND the runtime layout is
  // the original one (EvalExpr addresses original field indexes, so a
  // projected/remapped artifact cannot be observed).
  bool observe_ = false;
  std::mutex stats_mu_;
  std::vector<TaskStat> task_stats_;
  std::vector<uint64_t> predicate_matches_;

  // ---- adaptive replanning (JobConfig::enable_replan) ----
  // Armed in Prepare() when the plan is an observable seqscan with an
  // interval-backed estimate. Committed splits feed the observed
  // match/scan totals; the first commit at or past replan_min_splits
  // makes the (one-shot) drift decision. On switch, the locator list
  // and base reader below serve every split whose plan_choice is
  // still undecided.
  bool replan_armed_ = false;
  std::atomic<uint64_t> observed_scanned_{0}, observed_matched_{0};
  std::atomic<int> committed_splits_{0};
  std::atomic<bool> replan_decided_{false};
  std::atomic<bool> switched_{false};
  std::mutex replan_mu_;  // guards the switch target below
  std::shared_ptr<columnar::SeqFileReader> replan_base_;
  std::vector<RecordLocator> replan_locators_;
  uint64_t replan_index_bytes_ = 0;
  ReplanStat replan_stat_;

  JobResult result_;
};

void JobRunner::Backoff(int attempt) const {
  if (cfg_.retry_backoff_ms <= 0) return;
  double ms = cfg_.retry_backoff_ms;
  for (int i = 2; i < attempt; ++i) ms *= 2;
  ms = std::min(ms, 100.0);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000)));
}

void JobRunner::RunChain(TaskControl* ctl, char kind, int index,
                         int chain, const AttemptFn& attempt_fn) {
  auto& metrics = obs::MetricsRegistry::Get();
  auto& journal = obs::Journal::Get();
  const std::string task = TaskId(kind, index);
  const char* attempt_span_name =
      kind == 'm' ? "map_task_attempt" : "reduce_task_attempt";
  const int max_attempts = std::max(1, cfg_.max_task_attempts);
  Status last;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (ctl->done.load(std::memory_order_acquire) || errors_.Failed()) {
      return;
    }
    if (attempt > 1) {
      task_retries_.fetch_add(1, std::memory_order_relaxed);
      metrics.GetCounter("engine.task_retries")->Increment();
      obs::TraceInstant("engine.task_retry", "exec",
                        {{"task", task},
                         {"chain", std::to_string(chain)},
                         {"attempt", std::to_string(attempt)},
                         {"error", last.ToString()}});
      journal.Event("task_retry")
          .Str("job", cfg_.job_id)
          .Str("task", task)
          .Int("chain", chain)
          .Int("attempt", attempt)
          .Str("error", last.ToString())
          .Emit();
      Backoff(attempt);
    } else {
      journal.Event("task_start")
          .Str("job", cfg_.job_id)
          .Str("task", task)
          .Str("backend", kind == 'm' ? map_backend_name_ : "vm")
          .Int("chain", chain)
          .Bool("speculative", chain > 0)
          .Emit();
    }
    // One span per attempt (the enclosing map_task / reduce_task span
    // covers the whole chain): retries and speculative twins become
    // separate slices on the trace timeline.
    obs::ScopedSpan attempt_span(attempt_span_name, "exec");
    attempt_span.AddArg("task", task);
    attempt_span.AddArg("chain", std::to_string(chain));
    attempt_span.AddArg("attempt", std::to_string(attempt));
    Result<CommitFn> commit = [&]() -> Result<CommitFn> {
      // Faults are injected only inside armed scopes: everything a
      // retry can recover from, nothing it can't.
      ScopedFaultArming arm;
      return attempt_fn(chain, attempt);
    }();
    if (!commit.ok()) {
      last = commit.status();
      if (last.IsIOError()) continue;  // transient: retry
      break;                           // semantic failure: no retry
    }
    if (ctl->done.load(std::memory_order_acquire)) return;
    if (ctl->committed.exchange(true, std::memory_order_acq_rel)) {
      // A speculative twin holds (or completed) the commit; discard.
      return;
    }
    Status commit_status;
    {
      ScopedFaultArming arm;
      commit_status = (*commit)();
    }
    if (commit_status.ok()) {
      ctl->done.store(true, std::memory_order_release);
      ctl->resolved.store(true, std::memory_order_release);
      journal.Event("task_commit")
          .Str("job", cfg_.job_id)
          .Str("task", task)
          .Int("chain", chain)
          .Int("attempt", attempt)
          .Emit();
      return;
    }
    // Release the gate so the twin (if any) may commit instead.
    ctl->committed.store(false, std::memory_order_release);
    last = commit_status;
    if (!last.IsIOError()) break;
  }
  if (!ctl->done.load(std::memory_order_acquire) &&
      !ctl->resolved.exchange(true, std::memory_order_acq_rel)) {
    tasks_failed_.fetch_add(1, std::memory_order_relaxed);
    metrics.GetCounter("engine.tasks_failed")->Increment();
    journal.Event("task_failed")
        .Str("job", cfg_.job_id)
        .Str("task", task)
        .Int("chain", chain)
        .Str("error", last.ToString())
        .Emit();
    errors_.Set(last.ok() ? Status::Internal("task failed without status")
                          : last);
  }
}

void JobRunner::RecordTaskStat(
    const TaskStat& stat, const std::vector<uint64_t>& interval_matches) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  task_stats_.push_back(stat);
  for (size_t i = 0;
       i < interval_matches.size() && i < predicate_matches_.size(); ++i) {
    predicate_matches_[i] += interval_matches[i];
  }
}

Result<JobRunner::CommitFn> JobRunner::MapAttempt(int split_index,
                                                  int chain,
                                                  int attempt) {
  // Everything an attempt produces lives here until the commit
  // decision; an uncommitted attempt cleans up after itself (the
  // unsealed Mapper removes its spill runs, the attempt part file is
  // deleted).
  struct AttemptState {
    std::unique_ptr<Shuffle::Mapper> mapper;
    std::unique_ptr<PartFile> part;
    std::string attempt_path;
    std::string canonical_path;
    bool committed = false;
    uint64_t records = 0;
    uint64_t map_invocations = 0;
    uint64_t output_records = 0;
    uint64_t output_bytes = 0;
    uint64_t output_filtered = 0;
    uint64_t logs = 0;
    uint64_t vm_instructions = 0;
    uint64_t native_bailouts = 0;
    bool used_native = false;
    double seconds = 0;
    std::vector<uint64_t> interval_matches;
    ~AttemptState() {
      if (!committed && !attempt_path.empty()) {
        (void)RemoveFileIfExists(attempt_path);
      }
    }
  };
  auto state = std::make_shared<AttemptState>();
  Stopwatch attempt_watch;

  // Sticky per-task plan choice: the first attempt of either chain
  // latches whether this task reads its original split or (post-
  // switch) the equivalent locator-driven split.
  TaskControl& ctl = map_tasks_[split_index];
  int choice = ctl.plan_choice.load(std::memory_order_acquire);
  if (choice < 0) {
    int expected = -1;
    ctl.plan_choice.compare_exchange_strong(
        expected, switched_.load(std::memory_order_acquire) ? 1 : 0,
        std::memory_order_acq_rel);
    choice = ctl.plan_choice.load(std::memory_order_acquire);
  }
  std::unique_ptr<InputSplit> split;
  if (choice == 1) {
    MANIMAL_ASSIGN_OR_RETURN(split, OpenSwitchedSplit(split_index));
  } else {
    MANIMAL_ASSIGN_OR_RETURN(split, plan_->OpenSplit(split_index));
  }
  if (has_reduce_) {
    state->mapper = shuffle_->NewMapper();
  } else {
    state->attempt_path = AttemptPath('m', split_index, chain);
    state->canonical_path = PartPath('m', split_index);
    MANIMAL_ASSIGN_OR_RETURN(state->part,
                             PartFile::Create(state->attempt_path));
  }

  const int num_partitions = cfg_.num_partitions;
  std::string key_scratch, value_scratch;
  auto emit_pair = [&, state](const Value& k, const Value& v) -> Status {
    // Appendix E: delete pairs the reduce provably discards.
    if (descriptor_.reduce_key_filter.has_value()) {
      for (const analyzer::SelectTerm& term :
           descriptor_.reduce_key_filter->required.terms) {
        MANIMAL_ASSIGN_OR_RETURN(
            Value verdict,
            analyzer::EvalExpr(term.expr, k, Value::Null()));
        if (!verdict.is_bool()) {
          return Status::Internal("non-boolean reduce filter term");
        }
        if (verdict.bool_value() != term.polarity) {
          ++state->output_filtered;
          return Status::OK();
        }
      }
    }
    ++state->output_records;
    if (has_reduce_) {
      key_scratch.clear();
      MANIMAL_RETURN_IF_ERROR(EncodeOrderedKey(k, &key_scratch));
      value_scratch.clear();
      MANIMAL_RETURN_IF_ERROR(EncodeValue(v, &value_scratch));
      state->output_bytes += key_scratch.size() + value_scratch.size();
      int p = static_cast<int>(k.Hash() % num_partitions);
      // Lock-free: this attempt's private partition buffer.
      return state->mapper->Add(p, key_scratch, value_scratch);
    }
    // Map-only: encode straight into the part file's chunk buffer.
    std::string* buf = state->part->buffer();
    const size_t before = buf->size();
    MANIMAL_RETURN_IF_ERROR(EncodeValue(k, buf));
    MANIMAL_RETURN_IF_ERROR(EncodeValue(v, buf));
    state->output_bytes += buf->size() - before;
    return state->part->PairAdded();
  };

  // The VM: the sole map executor on the vm backend, the per-record
  // bailout replayer on the native backend (created lazily, so a
  // native task that never bails never builds one).
  mril::VmOptions vm_options;
  vm_options.field_remap = field_remap_;
  std::unique_ptr<mril::VmInstance> vm;
  auto ensure_vm = [&]() -> mril::VmInstance* {
    if (vm == nullptr) {
      vm = std::make_unique<mril::VmInstance>(&program_, vm_options);
      vm->set_log_sink([state](const Value&) { ++state->logs; });
      vm->set_emit_sink(emit_pair);
    }
    return vm.get();
  };
  const bool use_native = kernel_ != nullptr;
  if (!use_native) ensure_vm();
  codegen::KernelScratch kernel_scratch;
  uint64_t kernel_handled = 0;

  // EXPLAIN ANALYZE observation: evaluate the selection's index-key
  // expression per scanned record and tally which predicate intervals
  // it lands in (the observed-selectivity side of the drift report).
  const size_t num_observe_intervals =
      observe_ ? descriptor_.observe_intervals.size() : 0;
  if (observe_) state->interval_matches.assign(num_observe_intervals, 0);

  int64_t key = 0;
  Value value;
  while (true) {
    MANIMAL_ASSIGN_OR_RETURN(bool more, split->Next(&key, &value));
    if (!more) break;
    if (errors_.Failed()) {
      return Status::Internal("map task aborted: job already failed");
    }
    ++state->records;
    if (observe_) {
      Result<Value> index_key = analyzer::EvalExpr(
          descriptor_.observe_expr, Value::I64(key), value);
      if (index_key.ok()) {
        for (size_t i = 0; i < num_observe_intervals; ++i) {
          if (descriptor_.observe_intervals[i].Contains(*index_key)) {
            ++state->interval_matches[i];
          }
        }
      }
    }
    if (use_native) {
      // Exactness contract (codegen/kernel.h): the kernel either
      // reproduces the VM's behavior for this record or bails out, in
      // which case the record is replayed through the companion VM —
      // which also reproduces any error the VM would have raised.
      Value out_key, out_value;
      codegen::KernelOutcome outcome =
          kernel_->Run(Value::I64(key), value, &kernel_scratch,
                       &out_key, &out_value);
      if (outcome == codegen::KernelOutcome::kBailout) {
        ++state->native_bailouts;
        MANIMAL_RETURN_IF_ERROR(
            ensure_vm()->InvokeMap(Value::I64(key), value));
      } else {
        ++kernel_handled;
        if (outcome == codegen::KernelOutcome::kEmit) {
          MANIMAL_RETURN_IF_ERROR(emit_pair(out_key, out_value));
        }
      }
    } else {
      MANIMAL_RETURN_IF_ERROR(vm->InvokeMap(Value::I64(key), value));
    }
    if (cfg_.debug_map_record_sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          cfg_.debug_map_record_sleep_ms));
    }
  }
  if (state->part != nullptr) {
    MANIMAL_RETURN_IF_ERROR(state->part->Finish());
  }
  state->used_native = use_native;
  state->map_invocations =
      kernel_handled +
      (vm != nullptr ? static_cast<uint64_t>(vm->map_invocations()) : 0);
  state->vm_instructions =
      vm != nullptr ? static_cast<uint64_t>(vm->total_steps()) : 0;
  state->seconds = attempt_watch.ElapsedSeconds();
  const uint64_t split_bytes = split->bytes_read();
  const uint64_t split_decoded = split->bytes_decoded();
  const uint64_t split_skipped = split->blocks_skipped();

  return CommitFn([this, state, split_bytes, split_decoded, split_skipped,
                   split_index, chain, attempt]() -> Status {
    if (state->part != nullptr) {
      MANIMAL_RETURN_IF_ERROR(
          RenameFile(state->attempt_path, state->canonical_path));
    }
    // Map/reduce barrier handoff: sorted runs + in-memory tails move
    // to the partitions in one locked step. No IO happens here, so a
    // claimed commit cannot fail past this point.
    if (state->mapper != nullptr) {
      MANIMAL_RETURN_IF_ERROR(state->mapper->Seal());
    }
    state->committed = true;
    input_records_.fetch_add(state->records, std::memory_order_relaxed);
    input_bytes_.fetch_add(split_bytes, std::memory_order_relaxed);
    bytes_decoded_.fetch_add(split_decoded, std::memory_order_relaxed);
    blocks_skipped_.fetch_add(split_skipped, std::memory_order_relaxed);
    map_invocations_.fetch_add(state->map_invocations,
                               std::memory_order_relaxed);
    map_output_records_.fetch_add(state->output_records,
                                  std::memory_order_relaxed);
    map_output_bytes_.fetch_add(state->output_bytes,
                                std::memory_order_relaxed);
    map_output_filtered_.fetch_add(state->output_filtered,
                                   std::memory_order_relaxed);
    log_messages_.fetch_add(state->logs, std::memory_order_relaxed);
    if (state->used_native) {
      native_tasks_.fetch_add(1, std::memory_order_relaxed);
      native_bailouts_.fetch_add(state->native_bailouts,
                                 std::memory_order_relaxed);
      obs::MetricsRegistry::Get()
          .GetCounter("engine.native_tasks")
          ->Increment();
    }
    if (cfg_.collect_task_stats) {
      TaskStat stat;
      stat.kind = 'm';
      stat.index = split_index;
      stat.chain = chain;
      stat.attempt = attempt;
      stat.records_in = state->records;
      stat.records_out = state->output_records;
      stat.bytes_read = split_bytes;
      stat.bytes_written = state->output_bytes;
      stat.vm_instructions = state->vm_instructions;
      stat.seconds = state->seconds;
      RecordTaskStat(stat, state->interval_matches);
    }
    if (replan_armed_) {
      uint64_t matched = 0;
      // Canonicalized intervals are disjoint, so summing per-interval
      // matches counts each matching record exactly once.
      for (uint64_t m : state->interval_matches) matched += m;
      observed_matched_.fetch_add(matched, std::memory_order_relaxed);
      observed_scanned_.fetch_add(state->records,
                                  std::memory_order_relaxed);
      MaybeReplan(
          committed_splits_.fetch_add(1, std::memory_order_acq_rel) + 1);
    }
    return Status::OK();
  });
}

void JobRunner::MaybeReplan(int committed_splits) {
  if (committed_splits < std::max(1, cfg_.replan_min_splits)) return;
  if (replan_decided_.exchange(true, std::memory_order_acq_rel)) return;
  const double scanned =
      static_cast<double>(observed_scanned_.load(std::memory_order_relaxed));
  if (scanned <= 0) return;
  const double observed =
      static_cast<double>(observed_matched_.load(std::memory_order_relaxed)) /
      scanned;
  const double estimated = descriptor_.est_predicate_selectivity;
  // Symmetric drift ratio; the epsilon keeps an observed (or
  // estimated) zero from dividing out to infinity-vs-anything.
  const double eps = 1e-6;
  const double ratio = std::max((observed + eps) / (estimated + eps),
                                (estimated + eps) / (observed + eps));
  if (ratio < cfg_.replan_drift_ratio) return;
  std::optional<ReplanTarget> target = cfg_.replan_fn(observed);
  if (!target.has_value()) return;
  // Resolve the switch machinery once: the base reader plus the full
  // file-ordered locator list; each late split reads its block-range
  // subrange. Any failure here just abandons the switch — the
  // original plan is always still valid.
  Result<std::shared_ptr<columnar::SeqFileReader>> base =
      columnar::SeqFileReader::Open(descriptor_.data_path);
  if (!base.ok()) return;
  uint64_t index_bytes = 0;
  Result<std::vector<RecordLocator>> locators = CollectBTreeLocators(
      target->tree_path, target->intervals, &index_bytes);
  if (!locators.ok()) return;
  {
    std::lock_guard<std::mutex> lock(replan_mu_);
    replan_base_ = *std::move(base);
    replan_locators_ = *std::move(locators);
    replan_index_bytes_ = index_bytes;
    replan_stat_.switched = true;
    replan_stat_.after_splits = committed_splits;
    replan_stat_.estimated = estimated;
    replan_stat_.observed = observed;
    replan_stat_.drift_ratio = ratio;
    replan_stat_.to = target->tree_path;
  }
  switched_.store(true, std::memory_order_release);
  obs::MetricsRegistry::Get().GetCounter("engine.plan_switches")
      ->Increment();
  obs::TraceInstant("engine.plan_switched", "exec",
                    {{"job", cfg_.job_id},
                     {"after_splits", std::to_string(committed_splits)},
                     {"estimated", StrPrintf("%.4f", estimated)},
                     {"observed", StrPrintf("%.4f", observed)},
                     {"drift_ratio", StrPrintf("%.1f", ratio)},
                     {"to", target->tree_path}});
  obs::Journal::Get()
      .Event("plan_switched")
      .Str("job", cfg_.job_id)
      .Int("after_splits", committed_splits)
      .Num("estimated", estimated)
      .Num("observed", observed)
      .Num("drift_ratio", ratio)
      .Str("from", descriptor_.data_path)
      .Str("to", target->tree_path)
      .Emit();
}

Result<std::unique_ptr<InputSplit>> JobRunner::OpenSwitchedSplit(
    int split_index) {
  uint64_t begin = 0, end = 0;
  if (!plan_->SplitBlockRange(split_index, &begin, &end)) {
    return Status::Internal(StrPrintf(
        "switched split %d has no block range", split_index));
  }
  std::lock_guard<std::mutex> lock(replan_mu_);
  // Locators are (block, index) sorted ascending, so the split's share
  // is one contiguous subrange.
  auto lo = std::lower_bound(replan_locators_.begin(),
                             replan_locators_.end(),
                             RecordLocator{begin, 0});
  auto hi = std::lower_bound(replan_locators_.begin(),
                             replan_locators_.end(), RecordLocator{end, 0});
  std::vector<RecordLocator> subset(lo, hi);
  const uint64_t charged =
      replan_locators_.empty()
          ? 0
          : replan_index_bytes_ * subset.size() / replan_locators_.size();
  return OpenLocatorSplit(replan_base_, std::move(subset), charged);
}

Result<JobRunner::CommitFn> JobRunner::ReduceAttempt(int partition,
                                                     int chain,
                                                     int attempt) {
  struct AttemptState {
    std::unique_ptr<PartFile> part;
    std::string attempt_path;
    std::string canonical_path;
    bool committed = false;
    uint64_t groups = 0;
    uint64_t logs = 0;
    uint64_t vm_instructions = 0;
    double seconds = 0;
    ~AttemptState() {
      if (!committed && !attempt_path.empty()) {
        (void)RemoveFileIfExists(attempt_path);
      }
    }
  };
  auto state = std::make_shared<AttemptState>();
  Stopwatch attempt_watch;
  state->attempt_path = AttemptPath('r', partition, chain);
  state->canonical_path = PartPath('r', partition);

  std::unique_ptr<index::SortedStream> stream;
  {
    obs::ScopedSpan merge_span("shuffle.merge", "exec");
    MANIMAL_ASSIGN_OR_RETURN(stream, shuffle_->FinishPartition(partition));
  }
  MANIMAL_ASSIGN_OR_RETURN(state->part,
                           PartFile::Create(state->attempt_path));

  mril::VmInstance vm(&program_);
  vm.set_log_sink([state](const Value&) { ++state->logs; });
  vm.set_emit_sink([state](const Value& k, const Value& v) -> Status {
    std::string* buf = state->part->buffer();
    MANIMAL_RETURN_IF_ERROR(EncodeValue(k, buf));
    MANIMAL_RETURN_IF_ERROR(EncodeValue(v, buf));
    return state->part->PairAdded();
  });

  GroupIterator groups(stream.get());
  Value key;
  ValueList values;
  while (true) {
    MANIMAL_ASSIGN_OR_RETURN(bool more, groups.Next(&key, &values));
    if (!more) break;
    if (errors_.Failed()) {
      return Status::Internal("reduce task aborted: job already failed");
    }
    ++state->groups;
    MANIMAL_RETURN_IF_ERROR(
        vm.InvokeReduce(key, Value::List(std::move(values))));
  }
  MANIMAL_RETURN_IF_ERROR(state->part->Finish());
  state->vm_instructions = vm.total_steps();
  state->seconds = attempt_watch.ElapsedSeconds();

  return CommitFn([this, state, partition, chain, attempt]() -> Status {
    MANIMAL_RETURN_IF_ERROR(
        RenameFile(state->attempt_path, state->canonical_path));
    state->committed = true;
    // Winner-only plain write; read after the phase barrier.
    partition_groups_[partition] = state->groups;
    log_messages_.fetch_add(state->logs, std::memory_order_relaxed);
    if (cfg_.collect_task_stats) {
      TaskStat stat;
      stat.kind = 'r';
      stat.index = partition;
      stat.chain = chain;
      stat.attempt = attempt;
      stat.records_in = state->groups;
      stat.records_out = state->part->num_pairs();
      stat.bytes_written = state->part->payload_bytes();
      stat.vm_instructions = state->vm_instructions;
      stat.seconds = state->seconds;
      RecordTaskStat(stat, {});
    }
    return Status::OK();
  });
}

void JobRunner::SubmitMapChain(ThreadPool* pool, int split_index,
                               int chain) {
  pool->Submit([this, split_index, chain] {
    TaskControl& ctl = map_tasks_[split_index];
    if (ctl.done.load(std::memory_order_acquire) || errors_.Failed()) {
      return;
    }
    obs::ScopedSpan task_span("map_task", "exec");
    task_span.AddArg("split", std::to_string(split_index));
    if (chain > 0) task_span.AddArg("speculative", "1");
    int64_t zero = 0;
    ctl.started_ns.compare_exchange_strong(zero, SteadyNowNanos(),
                                           std::memory_order_relaxed);
    Stopwatch chain_watch;
    RunChain(&ctl, 'm', split_index, chain,
             [this, split_index](int c, int attempt) {
               return MapAttempt(split_index, c, attempt);
             });
    const double seconds = chain_watch.ElapsedSeconds();
    {
      std::lock_guard<std::mutex> lock(durations_mu_);
      map_chain_seconds_.push_back(seconds);
    }
    auto& metrics = obs::MetricsRegistry::Get();
    metrics.GetCounter("exec.map_tasks")->Increment();
    metrics.GetHistogram("exec.map_task_seconds")->Record(seconds);
    monitor_cv_.notify_all();
  });
}

void JobRunner::MonitorMapPhase(ThreadPool* pool) {
  const int num_tasks = plan_->num_splits();
  auto& metrics = obs::MetricsRegistry::Get();
  auto all_resolved = [&] {
    for (const TaskControl& t : map_tasks_) {
      if (!t.resolved.load(std::memory_order_acquire)) return false;
    }
    return true;
  };
  // Poll coarsely: speculation decisions only need resolution at the
  // scale of the minimum straggler threshold, and a fine-grained
  // polling loop steals CPU from the map workers themselves. Chain
  // completions notify monitor_cv_, so phase exit is still prompt.
  const double poll_seconds = std::min(
      0.05, std::max(0.001, cfg_.speculation_min_seconds / 8));
  const auto poll = std::chrono::microseconds(
      static_cast<int64_t>(poll_seconds * 1e6));
  while (!all_resolved() && !errors_.Failed()) {
    if (cfg_.enable_speculation && num_tasks >= 2) {
      double threshold = -1;
      {
        std::lock_guard<std::mutex> lock(durations_mu_);
        const size_t completed = map_chain_seconds_.size();
        if (completed >= std::max<size_t>(2, num_tasks / 2)) {
          // p95 of completed chain durations.
          std::vector<double> sorted = map_chain_seconds_;
          std::sort(sorted.begin(), sorted.end());
          const double p95 =
              sorted[std::min(sorted.size() - 1,
                              static_cast<size_t>(0.95 * sorted.size()))];
          threshold = std::max(cfg_.speculation_min_seconds,
                               cfg_.speculation_factor * p95);
        }
      }
      if (threshold >= 0) {
        const int64_t now = SteadyNowNanos();
        for (int i = 0; i < num_tasks; ++i) {
          TaskControl& ctl = map_tasks_[i];
          const int64_t started =
              ctl.started_ns.load(std::memory_order_relaxed);
          if (started == 0 ||
              ctl.resolved.load(std::memory_order_acquire)) {
            continue;
          }
          const double elapsed =
              static_cast<double>(now - started) * 1e-9;
          if (elapsed >= threshold &&
              !ctl.speculated.exchange(true,
                                       std::memory_order_acq_rel)) {
            speculative_launches_.fetch_add(1,
                                            std::memory_order_relaxed);
            metrics.GetCounter("engine.speculative_launches")
                ->Increment();
            obs::TraceInstant("engine.speculative_launch", "exec",
                              {{"task", TaskId('m', i)},
                               {"elapsed_s", StrPrintf("%.3f", elapsed)},
                               {"threshold_s",
                                StrPrintf("%.3f", threshold)}});
            obs::Journal::Get()
                .Event("speculative_launch")
                .Str("job", cfg_.job_id)
                .Str("task", TaskId('m', i))
                .Time("elapsed_s", elapsed)
                .Time("threshold_s", threshold)
                .Emit();
            SubmitMapChain(pool, i, /*chain=*/1);
          }
        }
      }
    }
    std::unique_lock<std::mutex> lock(monitor_mu_);
    monitor_cv_.wait_for(lock, poll, [&] {
      return all_resolved() || errors_.Failed();
    });
  }
}

Status JobRunner::RunMapPhase() {
  obs::ScopedSpan map_phase_span("job.map_phase", "exec");
  const int num_tasks = plan_->num_splits();
  for (int i = 0; i < num_tasks; ++i) map_tasks_.emplace_back();
  ThreadPool pool(cfg_.map_parallelism);
  for (int i = 0; i < num_tasks; ++i) {
    SubmitMapChain(&pool, i, /*chain=*/0);
  }
  MonitorMapPhase(&pool);
  pool.Wait();
  return errors_.First();
}

Status JobRunner::RunReducePhase() {
  obs::ScopedSpan reduce_phase_span("job.reduce_phase", "exec");
  const int num_partitions = cfg_.num_partitions;
  partition_groups_.assign(num_partitions, 0);
  for (int p = 0; p < num_partitions; ++p) reduce_tasks_.emplace_back();
  ThreadPool pool(cfg_.map_parallelism);
  for (int p = 0; p < num_partitions; ++p) {
    pool.Submit([this, p] {
      TaskControl& ctl = reduce_tasks_[p];
      obs::ScopedSpan task_span("reduce_task", "exec");
      task_span.AddArg("partition", std::to_string(p));
      Stopwatch task_watch;
      RunChain(&ctl, 'r', p, /*chain=*/0, [this, p](int c, int attempt) {
        return ReduceAttempt(p, c, attempt);
      });
      auto& metrics = obs::MetricsRegistry::Get();
      metrics.GetCounter("exec.reduce_tasks")->Increment();
      metrics.GetHistogram("exec.reduce_task_seconds")
          ->Record(task_watch.ElapsedSeconds());
    });
  }
  pool.Wait();
  return errors_.First();
}

// Streams committed task parts, in task order, into the job output.
Status JobRunner::AssembleOutput(char kind, int num_parts) {
  obs::ScopedSpan span("job.assemble_output", "exec");
  for (int i = 0; i < num_parts; ++i) {
    const std::string path = PartPath(kind, i);
    MANIMAL_ASSIGN_OR_RETURN(PartData part, ReadPartFile(path));
    if (out_->pair_encoded()) {
      MANIMAL_RETURN_IF_ERROR(
          out_->AppendEncodedChunk(part.bytes, part.num_pairs));
    } else {
      std::string_view in = part.bytes;
      Value k, v;
      while (!in.empty()) {
        MANIMAL_RETURN_IF_ERROR(DecodeValue(&in, &k));
        MANIMAL_RETURN_IF_ERROR(DecodeValue(&in, &v));
        MANIMAL_RETURN_IF_ERROR(out_->Append(k, v));
      }
    }
    (void)RemoveFileIfExists(path);
  }
  return Status::OK();
}

// Resolves JobConfig::backend (plus the MANIMAL_BACKEND env override,
// honored only in kAuto) into the map tier for this job. `auto` uses
// the native kernel only when compilation succeeds — i.e. the
// analyzer facts describe the map exactly — and silently falls back
// to the VM otherwise, recording why in backend_detail_.
Status JobRunner::ResolveBackend() {
  Backend requested = cfg_.backend;
  if (requested == Backend::kAuto) {
    if (const char* env = std::getenv("MANIMAL_BACKEND")) {
      if (auto parsed = BackendFromName(env); parsed.has_value()) {
        requested = *parsed;
      }
    }
  }
  if (requested == Backend::kVm) {
    backend_detail_ = "vm requested";
    return Status::OK();
  }
  codegen::CompileOptions opts;
  opts.field_remap = field_remap_;
  opts.term_selectivity = descriptor_.native_term_selectivity;
  opts.scratch_dir = cfg_.temp_dir + "/codegen";
  if (const char* env = std::getenv("MANIMAL_CODEGEN_ENGINE")) {
    std::string_view engine = env;
    if (engine == "emitted") {
      opts.engine = codegen::CompileOptions::Engine::kEmitted;
    } else if (engine == "closure") {
      opts.engine = codegen::CompileOptions::Engine::kClosure;
    }
  }
  Result<std::shared_ptr<const codegen::NativeKernel>> kernel =
      codegen::CompileKernel(program_, opts);
  if (kernel.ok()) {
    kernel_ = std::move(*kernel);
    map_backend_name_ = "native";
    backend_detail_ = kernel_->Describe();
    return Status::OK();
  }
  if (requested == Backend::kNative) {
    return Status::NotSupported(
        "native backend requested but the program is not admissible: " +
        kernel.status().message());
  }
  backend_detail_ = "vm fallback: " + kernel.status().message();
  return Status::OK();
}

Status JobRunner::Prepare() {
  MANIMAL_RETURN_IF_ERROR(mril::VerifyProgram(program_));
  MANIMAL_RETURN_IF_ERROR(CreateDirIfMissing(cfg_.temp_dir));

  result_.output_path = cfg_.output_path;
  result_.applied_optimizations = descriptor_.applied;

  {
    obs::ScopedSpan plan_span("job.plan_input", "exec");
    MANIMAL_ASSIGN_OR_RETURN(
        plan_, PlanInput(descriptor_, cfg_.map_parallelism * 3));
  }
  result_.counters.input_file_bytes = plan_->total_input_bytes();

  // Self-describing projected inputs carry their own remap.
  field_remap_ = descriptor_.field_remap.empty()
                     ? plan_->DerivedFieldRemap()
                     : descriptor_.field_remap;

  // The backend decision needs the final remap (the kernel compiles
  // against the runtime field layout).
  MANIMAL_RETURN_IF_ERROR(ResolveBackend());

  // Adaptive replanning only arms on an observable plain scan whose
  // descriptor carries an interval-backed selectivity estimate: the
  // drift gate needs ground-truth observation, and the locator
  // substitution needs the scan's own block ranges.
  replan_armed_ = cfg_.enable_replan && cfg_.replan_fn != nullptr &&
                  descriptor_.access_path == AccessPath::kSeqScan &&
                  descriptor_.est_predicate_selectivity > 0 &&
                  descriptor_.observe_expr != nullptr &&
                  !descriptor_.observe_intervals.empty() &&
                  field_remap_.empty();

  // EXPLAIN ANALYZE observation is only sound on the original record
  // layout: EvalExpr addresses original field indexes, which a
  // projected/remapped artifact no longer stores at those slots. The
  // replanning gate rides the same per-record evaluation.
  observe_ = (cfg_.collect_task_stats || replan_armed_) &&
             descriptor_.observe_expr != nullptr &&
             !descriptor_.observe_intervals.empty() &&
             field_remap_.empty();
  if (observe_) {
    predicate_matches_.assign(descriptor_.observe_intervals.size(), 0);
  }

  // Direct evaluation on compressed blocks: prove from the skip
  // frames which blocks cannot contain a matching row, and elide them
  // from every scan split. Gated off while observation is armed —
  // per-record observation (EXPLAIN ANALYZE selectivity, the replan
  // drift gate) must see every scanned record, and a skipped block's
  // rows would silently vanish from the tally.
  bool direct = cfg_.direct_eval;
  if (const char* env = std::getenv("MANIMAL_DIRECT_EVAL")) {
    std::string_view v(env);
    if (v == "0" || v == "off" || v == "false") direct = false;
  }
  if (direct && !observe_ &&
      descriptor_.access_path == AccessPath::kSeqScan &&
      plan_->seqfile() != nullptr) {
    codegen::BlockSkipReport report;
    std::shared_ptr<const std::vector<bool>> skip =
        codegen::BuildBlockSkipFilter(program_, *plan_->seqfile(),
                                      field_remap_, &report);
    if (skip != nullptr) plan_->InstallBlockSkip(std::move(skip));
    skip_detail_ = report.detail;
    obs::Journal::Get()
        .Event("direct_eval")
        .Str("job", cfg_.job_id)
        .Bool("admitted", report.admitted)
        .Uint("blocks_total", report.blocks_total)
        .Uint("blocks_refuted", report.blocks_skipped)
        .Str("detail", report.detail)
        .Emit();
  }

  if (has_reduce_) {
    Shuffle::Options shuffle_opts;
    shuffle_opts.temp_dir = cfg_.temp_dir;
    shuffle_opts.num_partitions = cfg_.num_partitions;
    shuffle_opts.job_id = cfg_.job_id;
    // The sort budget is shared by the concurrently-running mappers
    // (floored so degenerate configs still buffer something useful).
    shuffle_opts.mapper_budget_bytes = std::max<uint64_t>(
        64u << 10, cfg_.sort_buffer_bytes / cfg_.map_parallelism);
    shuffle_ = std::make_unique<Shuffle>(std::move(shuffle_opts));
  }
  MANIMAL_ASSIGN_OR_RETURN(out_, OutputWriter::Create(cfg_));
  return Status::OK();
}

Result<JobResult> JobRunner::Run() {
  obs::MetricsRegistry::Get().GetCounter("exec.jobs")->Increment();
  // Pre-register the fault-handling counters so they are visible in
  // DumpMetricsJson() even for an entirely fault-free process.
  obs::MetricsRegistry::Get().GetCounter("engine.task_retries");
  obs::MetricsRegistry::Get().GetCounter("engine.speculative_launches");
  obs::MetricsRegistry::Get().GetCounter("engine.tasks_failed");
  obs::MetricsRegistry::Get().GetCounter("engine.native_tasks");
  obs::MetricsRegistry::Get().GetCounter("engine.bytes_decoded");
  obs::MetricsRegistry::Get().GetCounter("engine.blocks_skipped");
  obs::ScopedSpan job_span("job.run", "exec");
  job_span.AddArg("job", cfg_.job_id);
  job_span.AddArg("access_path", AccessPathName(descriptor_.access_path));
  job_span.AddArg("program", program_.name);
  Stopwatch total_watch;
  Stopwatch plan_watch;

  MANIMAL_RETURN_IF_ERROR(Prepare());
  obs::Journal::Get()
      .Event("job_start")
      .Str("job", cfg_.job_id)
      .Str("program", program_.name)
      .Str("access_path", AccessPathName(descriptor_.access_path))
      .Int("splits", plan_->num_splits())
      .Int("partitions", has_reduce_ ? cfg_.num_partitions : 0)
      .Uint("input_file_bytes", result_.counters.input_file_bytes)
      .Bool("observe_predicates", observe_)
      .Emit();

  // ---------------- map phase ----------------
  result_.phase_breakdown["plan"].seconds = plan_watch.ElapsedSeconds();
  Stopwatch map_watch;
  MANIMAL_RETURN_IF_ERROR(RunMapPhase());
  result_.map_seconds = map_watch.ElapsedSeconds();
  result_.phase_breakdown["map"].seconds = result_.map_seconds;

  // ---------------- reduce / output phase ----------------
  Stopwatch reduce_watch;
  uint64_t reduce_groups_total = 0;
  if (has_reduce_) {
    MANIMAL_RETURN_IF_ERROR(RunReducePhase());
    for (uint64_t groups : partition_groups_) {
      reduce_groups_total += groups;
    }
    const Shuffle::Stats shuffle_stats = shuffle_->stats();
    result_.counters.shuffle_spilled_runs = shuffle_stats.spilled_runs;
    result_.counters.shuffle_spilled_bytes = shuffle_stats.spilled_bytes;
    MANIMAL_RETURN_IF_ERROR(AssembleOutput('r', cfg_.num_partitions));
  } else {
    MANIMAL_RETURN_IF_ERROR(AssembleOutput('m', plan_->num_splits()));
  }

  result_.counters.output_records = out_->num_outputs();
  MANIMAL_ASSIGN_OR_RETURN(result_.counters.output_bytes, out_->Finish());
  obs::Journal::Get()
      .Event("output_commit")
      .Str("job", cfg_.job_id)
      .Str("path", cfg_.output_path)
      .Uint("records", result_.counters.output_records)
      .Uint("bytes", result_.counters.output_bytes)
      .Emit();
  result_.reduce_seconds = reduce_watch.ElapsedSeconds();
  result_.phase_breakdown["reduce"].seconds = result_.reduce_seconds;

  result_.counters.input_records = input_records_.load();
  result_.counters.input_bytes = input_bytes_.load();
  result_.counters.map_invocations = map_invocations_.load();
  result_.counters.map_output_records = map_output_records_.load();
  result_.counters.map_output_bytes = map_output_bytes_.load();
  result_.counters.map_output_filtered = map_output_filtered_.load();
  result_.counters.log_messages = log_messages_.load();
  result_.counters.reduce_groups = reduce_groups_total;
  result_.counters.task_retries = task_retries_.load();
  result_.counters.speculative_launches = speculative_launches_.load();
  result_.counters.tasks_failed = tasks_failed_.load();
  result_.counters.native_tasks = native_tasks_.load();
  result_.counters.native_bailout_records = native_bailouts_.load();
  result_.counters.bytes_decoded = bytes_decoded_.load();
  result_.counters.blocks_skipped = blocks_skipped_.load();
  obs::MetricsRegistry::Get()
      .GetCounter("engine.bytes_decoded")
      ->Add(result_.counters.bytes_decoded);
  obs::MetricsRegistry::Get()
      .GetCounter("engine.blocks_skipped")
      ->Add(result_.counters.blocks_skipped);
  result_.backend = map_backend_name_;
  result_.backend_detail = backend_detail_;

  result_.phase_breakdown["map"].bytes =
      result_.counters.input_bytes + result_.counters.map_output_bytes;
  result_.phase_breakdown["reduce"].bytes =
      result_.counters.map_output_bytes + result_.counters.output_bytes;

  result_.wall_seconds = total_watch.ElapsedSeconds();
  if (cfg_.simulated_disk_bytes_per_sec > 0) {
    uint64_t bytes_moved = result_.counters.input_bytes +
                           result_.counters.map_output_bytes +
                           result_.counters.output_bytes;
    double aggregate_rate =
        static_cast<double>(cfg_.simulated_disk_bytes_per_sec) *
        cfg_.map_parallelism;
    result_.simulated_io_seconds =
        static_cast<double>(bytes_moved) / aggregate_rate;
  }
  result_.reported_seconds = result_.wall_seconds +
                             cfg_.simulated_startup_seconds +
                             result_.simulated_io_seconds;

  result_.job_id = cfg_.job_id;
  {
    std::lock_guard<std::mutex> lock(replan_mu_);
    result_.replan = replan_stat_;
  }
  if (cfg_.collect_task_stats) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    result_.task_stats = std::move(task_stats_);
    result_.predicates_observed = observe_;
    for (size_t i = 0; i < predicate_matches_.size(); ++i) {
      PredicateStat ps;
      ps.predicate = descriptor_.observe_intervals[i].ToString();
      ps.matched = predicate_matches_[i];
      result_.predicate_stats.push_back(std::move(ps));
    }
  }
  obs::Journal::Get()
      .Event("job_finish")
      .Str("job", cfg_.job_id)
      .Uint("input_records", result_.counters.input_records)
      .Uint("output_records", result_.counters.output_records)
      .Uint("task_retries", result_.counters.task_retries)
      .Uint("speculative_launches",
            result_.counters.speculative_launches)
      .Uint("shuffle_spilled_runs",
            result_.counters.shuffle_spilled_runs)
      .Uint("bytes_decoded", result_.counters.bytes_decoded)
      .Uint("blocks_skipped", result_.counters.blocks_skipped)
      .Time("wall_seconds", result_.wall_seconds)
      .Time("reported_seconds", result_.reported_seconds)
      .Emit();
  // Rewrite the cumulative trace after every job so MANIMAL_TRACE
  // output exists even when the process exits abnormally later.
  if (obs::Tracer::Get().enabled()) {
    obs::Tracer::Get().WriteIfConfigured();
  }
  return std::move(result_);
}

// Clean job abort: remove the in-progress output and any task part
// files (committed or attempt-level) so an aborted job leaves nothing
// a rerun or a consumer could mistake for valid output. Shuffle run
// files are removed by the Shuffle destructor.
void CleanupPartialOutputs(const JobConfig& cfg) {
  (void)RemoveFileIfExists(cfg.output_path + ".inprogress");
  auto names = ListDir(cfg.temp_dir);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    if (name.rfind("part-", 0) == 0) {
      (void)RemoveFileIfExists(cfg.temp_dir + "/" + name);
    }
  }
}

}  // namespace

Result<JobResult> RunJob(const ExecutionDescriptor& descriptor,
                         const JobConfig& config) {
  if (config.temp_dir.empty() || config.output_path.empty()) {
    return Status::InvalidArgument("temp_dir and output_path required");
  }
  // Normalize the parallelism knobs exactly once, so input planning,
  // the worker pools, and the shuffle budget all see the same values.
  JobConfig cfg = config;
  cfg.map_parallelism = std::max(1, cfg.map_parallelism);
  cfg.num_partitions = std::max(1, cfg.num_partitions);
  if (cfg.job_id.empty()) {
    cfg.job_id = "job-" + std::to_string(g_next_job_id.fetch_add(
                              1, std::memory_order_relaxed));
  }

  JobRunner runner(descriptor, cfg);
  Result<JobResult> result = runner.Run();
  if (!result.ok()) {
    obs::Journal::Get()
        .Event("job_failed")
        .Str("job", cfg.job_id)
        .Str("error", result.status().ToString())
        .Emit();
    CleanupPartialOutputs(cfg);
  }
  return result;
}

}  // namespace manimal::exec
