#include "exec/engine.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "analyzer/expr_eval.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "exec/pairfile.h"
#include "exec/shuffle.h"
#include "mril/verifier.h"
#include "mril/vm.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serde/key_codec.h"
#include "serde/record_codec.h"

namespace manimal::exec {

namespace {

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kSeqScan:
      return "seqscan";
    case AccessPath::kBTree:
      return "btree";
    case AccessPath::kColumnGroups:
      return "column-groups";
  }
  return "unknown";
}

// Shared error latch: first error wins; all tasks then bail early.
class ErrorLatch {
 public:
  void Set(const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_.ok() && !status.ok()) first_ = status;
  }
  bool Failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !first_.ok();
  }
  Status First() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_;
  }

 private:
  mutable std::mutex mu_;
  Status first_;
};

// Job output sink: a PairFile, or (pipeline mode) a typed SeqFile the
// next MapReduce stage can consume. Internally synchronized: map-only
// map tasks and reduce tasks stream their pairs straight in from
// worker threads instead of materializing per-partition buffers.
class OutputWriter {
 public:
  static Result<std::unique_ptr<OutputWriter>> Create(
      const JobConfig& config) {
    auto out = std::unique_ptr<OutputWriter>(new OutputWriter());
    if (!config.output_schema.has_value()) {
      MANIMAL_ASSIGN_OR_RETURN(out->pairs_,
                               PairFileWriter::Create(config.output_path));
      return out;
    }
    const Schema& declared = *config.output_schema;
    if (!declared.opaque()) {
      for (size_t i = 0; i < config.output_kept_fields.size(); ++i) {
        const int f = config.output_kept_fields[i];
        if (f < 0 || f >= declared.num_fields()) {
          return Status::InvalidArgument(StrPrintf(
              "output_kept_fields[%zu] = %d out of range for output "
              "schema with %d fields",
              i, f, declared.num_fields()));
        }
      }
    }
    columnar::SeqFileMeta meta;
    meta.original_schema = declared;
    if (config.output_kept_fields.empty() || declared.opaque()) {
      meta.stored_schema = declared;
      if (declared.opaque()) {
        meta.field_map = {0};
      } else {
        for (int i = 0; i < declared.num_fields(); ++i) {
          meta.field_map.push_back(i);
        }
      }
    } else {
      meta.stored_schema = declared.Project(config.output_kept_fields);
      meta.field_map = config.output_kept_fields;
      out->kept_fields_ = config.output_kept_fields;
    }
    out->declared_ = declared;
    MANIMAL_ASSIGN_OR_RETURN(
        out->records_,
        columnar::SeqFileWriter::Create(config.output_path, meta));
    return out;
  }

  Status Append(const Value& key, const Value& value) {
    std::lock_guard<std::mutex> lock(mu_);
    return AppendLocked(key, value);
  }

  // Fast path for map-only jobs, which already hold the pair encoded
  // as EncodeValue(key)+EncodeValue(value) for byte accounting.
  Status AppendEncoded(const Value& key, const Value& value,
                       std::string_view encoded_pair) {
    std::lock_guard<std::mutex> lock(mu_);
    if (pairs_ != nullptr) return pairs_->AppendEncoded(encoded_pair);
    return AppendLocked(key, value);
  }

  // True when the output is a raw PairFile: emitters may then batch
  // encoded pairs locally and flush whole chunks through a single
  // lock acquisition instead of taking the mutex per record.
  bool pair_encoded() const { return pairs_ != nullptr; }

  Status AppendEncodedChunk(std::string_view bytes, uint64_t num_pairs) {
    if (bytes.empty()) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    return pairs_->AppendEncodedChunk(bytes, num_pairs);
  }

  uint64_t num_outputs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pairs_ != nullptr ? pairs_->num_pairs() : num_records_;
  }

  Result<uint64_t> Finish() {
    std::lock_guard<std::mutex> lock(mu_);
    if (pairs_ != nullptr) return pairs_->Finish();
    return records_->Finish();
  }

 private:
  OutputWriter() = default;

  Status AppendLocked(const Value& key, const Value& value) {
    if (pairs_ != nullptr) return pairs_->Append(key, value);
    // Flatten (k, v) into a record.
    Record record;
    record.push_back(key);
    if (value.is_list()) {
      for (const Value& item : value.list()) record.push_back(item);
    } else {
      record.push_back(value);
    }
    if (static_cast<int>(record.size()) != declared_.num_fields()) {
      return Status::InvalidArgument(StrPrintf(
          "pipeline output pair flattens to %zu fields; declared "
          "schema has %d",
          record.size(), declared_.num_fields()));
    }
    if (!kept_fields_.empty()) {
      Record projected;
      projected.reserve(kept_fields_.size());
      for (int f : kept_fields_) projected.push_back(record[f]);
      record = std::move(projected);
    }
    ++num_records_;
    return records_->Append(record);
  }

  mutable std::mutex mu_;
  std::unique_ptr<PairFileWriter> pairs_;
  std::unique_ptr<columnar::SeqFileWriter> records_;
  Schema declared_;
  std::vector<int> kept_fields_;
  uint64_t num_records_ = 0;
};

}  // namespace

Result<JobResult> RunJob(const ExecutionDescriptor& descriptor,
                         const JobConfig& config) {
  if (config.temp_dir.empty() || config.output_path.empty()) {
    return Status::InvalidArgument("temp_dir and output_path required");
  }
  // Normalize the parallelism knobs exactly once, so input planning,
  // the worker pools, and the shuffle budget all see the same values.
  JobConfig cfg = config;
  cfg.map_parallelism = std::max(1, cfg.map_parallelism);
  cfg.num_partitions = std::max(1, cfg.num_partitions);

  const mril::Program& program = descriptor.program;
  MANIMAL_RETURN_IF_ERROR(mril::VerifyProgram(program));
  MANIMAL_RETURN_IF_ERROR(CreateDirIfMissing(cfg.temp_dir));

  JobResult result;
  result.output_path = cfg.output_path;
  result.applied_optimizations = descriptor.applied;
  obs::MetricsRegistry::Get().GetCounter("exec.jobs")->Increment();
  obs::ScopedSpan job_span("job.run", "exec");
  job_span.AddArg("access_path", AccessPathName(descriptor.access_path));
  job_span.AddArg("program", program.name);
  Stopwatch total_watch;
  Stopwatch plan_watch;

  std::unique_ptr<InputPlan> plan;
  {
    obs::ScopedSpan plan_span("job.plan_input", "exec");
    MANIMAL_ASSIGN_OR_RETURN(
        plan, PlanInput(descriptor, cfg.map_parallelism * 3));
  }
  result.counters.input_file_bytes = plan->total_input_bytes();

  // Self-describing projected inputs carry their own remap.
  const std::vector<int> field_remap =
      descriptor.field_remap.empty() ? plan->DerivedFieldRemap()
                                     : descriptor.field_remap;

  const bool has_reduce = program.has_reduce();
  const int num_partitions = cfg.num_partitions;

  std::unique_ptr<Shuffle> shuffle;
  if (has_reduce) {
    Shuffle::Options shuffle_opts;
    shuffle_opts.temp_dir = cfg.temp_dir;
    shuffle_opts.num_partitions = num_partitions;
    // The sort budget is shared by the concurrently-running mappers
    // (floored so degenerate configs still buffer something useful).
    shuffle_opts.mapper_budget_bytes = std::max<uint64_t>(
        64u << 10, cfg.sort_buffer_bytes / cfg.map_parallelism);
    shuffle = std::make_unique<Shuffle>(std::move(shuffle_opts));
  }

  MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<OutputWriter> out,
                           OutputWriter::Create(cfg));

  ErrorLatch errors;
  std::atomic<uint64_t> input_records{0}, input_bytes{0},
      map_invocations{0}, map_output_records{0}, map_output_bytes{0},
      map_output_filtered{0}, log_messages{0};

  // ---------------- map phase ----------------
  result.phase_breakdown["plan"].seconds = plan_watch.ElapsedSeconds();
  Stopwatch map_watch;
  {
    obs::ScopedSpan map_phase_span("job.map_phase", "exec");
    ThreadPool pool(cfg.map_parallelism);
    for (int i = 0; i < plan->num_splits(); ++i) {
      pool.Submit([&, i] {
        if (errors.Failed()) return;
        obs::ScopedSpan task_span("map_task", "exec");
        task_span.AddArg("split", std::to_string(i));
        Stopwatch task_watch;
        auto run = [&]() -> Status {
          MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<InputSplit> split,
                                   plan->OpenSplit(i));
          std::unique_ptr<Shuffle::Mapper> mapper =
              has_reduce ? shuffle->NewMapper() : nullptr;
          mril::VmOptions vm_options;
          vm_options.field_remap = field_remap;
          mril::VmInstance vm(&program, vm_options);
          vm.set_log_sink([&log_messages](const Value&) {
            log_messages.fetch_add(1, std::memory_order_relaxed);
          });
          // Per-task emit state: scratch encode buffers are reused
          // across records, counters accumulate locally and flush to
          // the shared atomics once at task end, and map-only
          // PairFile output batches into chunks so the writer mutex
          // is taken per block instead of per record.
          constexpr size_t kOutputChunkBytes = 256u << 10;
          std::string key_scratch, value_scratch;
          std::string out_chunk;
          uint64_t out_chunk_pairs = 0;
          uint64_t task_output_records = 0, task_output_bytes = 0;
          uint64_t task_output_filtered = 0;
          const bool batch_output = !has_reduce && out->pair_encoded();
          vm.set_emit_sink([&](const Value& k, const Value& v) -> Status {
            // Appendix E: delete pairs the reduce provably discards.
            if (descriptor.reduce_key_filter.has_value()) {
              for (const analyzer::SelectTerm& term :
                   descriptor.reduce_key_filter->required.terms) {
                MANIMAL_ASSIGN_OR_RETURN(
                    Value verdict,
                    analyzer::EvalExpr(term.expr, k, Value::Null()));
                if (!verdict.is_bool()) {
                  return Status::Internal(
                      "non-boolean reduce filter term");
                }
                if (verdict.bool_value() != term.polarity) {
                  ++task_output_filtered;
                  return Status::OK();
                }
              }
            }
            ++task_output_records;
            if (has_reduce) {
              key_scratch.clear();
              MANIMAL_RETURN_IF_ERROR(EncodeOrderedKey(k, &key_scratch));
              value_scratch.clear();
              MANIMAL_RETURN_IF_ERROR(EncodeValue(v, &value_scratch));
              task_output_bytes +=
                  key_scratch.size() + value_scratch.size();
              int p = static_cast<int>(k.Hash() % num_partitions);
              // Lock-free: this task's private partition buffer.
              return mapper->Add(p, key_scratch, value_scratch);
            }
            if (batch_output) {
              const size_t before = out_chunk.size();
              MANIMAL_RETURN_IF_ERROR(EncodeValue(k, &out_chunk));
              MANIMAL_RETURN_IF_ERROR(EncodeValue(v, &out_chunk));
              task_output_bytes += out_chunk.size() - before;
              ++out_chunk_pairs;
              if (out_chunk.size() >= kOutputChunkBytes) {
                MANIMAL_RETURN_IF_ERROR(
                    out->AppendEncodedChunk(out_chunk, out_chunk_pairs));
                out_chunk.clear();
                out_chunk_pairs = 0;
              }
              return Status::OK();
            }
            // Map-only typed (pipeline) output: per-record append.
            key_scratch.clear();
            MANIMAL_RETURN_IF_ERROR(EncodeValue(k, &key_scratch));
            MANIMAL_RETURN_IF_ERROR(EncodeValue(v, &key_scratch));
            task_output_bytes += key_scratch.size();
            return out->AppendEncoded(k, v, key_scratch);
          });

          int64_t key = 0;
          Value value;
          uint64_t records = 0;
          while (true) {
            MANIMAL_ASSIGN_OR_RETURN(bool more, split->Next(&key, &value));
            if (!more) break;
            if (errors.Failed()) return Status::OK();
            ++records;
            MANIMAL_RETURN_IF_ERROR(vm.InvokeMap(Value::I64(key), value));
          }
          MANIMAL_RETURN_IF_ERROR(
              out->AppendEncodedChunk(out_chunk, out_chunk_pairs));
          map_output_records.fetch_add(task_output_records,
                                      std::memory_order_relaxed);
          map_output_bytes.fetch_add(task_output_bytes,
                                     std::memory_order_relaxed);
          map_output_filtered.fetch_add(task_output_filtered,
                                        std::memory_order_relaxed);
          input_records.fetch_add(records, std::memory_order_relaxed);
          input_bytes.fetch_add(split->bytes_read(),
                                std::memory_order_relaxed);
          map_invocations.fetch_add(vm.map_invocations(),
                                    std::memory_order_relaxed);
          // Map/reduce barrier handoff: sorted runs + in-memory tails
          // move to the partitions in one locked step.
          if (mapper != nullptr) MANIMAL_RETURN_IF_ERROR(mapper->Seal());
          return Status::OK();
        };
        Status st = run();
        if (!st.ok()) errors.Set(st);
        auto& metrics = obs::MetricsRegistry::Get();
        metrics.GetCounter("exec.map_tasks")->Increment();
        metrics.GetHistogram("exec.map_task_seconds")
            ->Record(task_watch.ElapsedSeconds());
      });
    }
    pool.Wait();
  }
  MANIMAL_RETURN_IF_ERROR(errors.First());
  result.map_seconds = map_watch.ElapsedSeconds();
  result.phase_breakdown["map"].seconds = result.map_seconds;

  // ---------------- reduce / output phase ----------------
  Stopwatch reduce_watch;
  uint64_t reduce_groups_total = 0;

  if (has_reduce) {
    // Reduce partitions in parallel; each task iterates groups off
    // its merged stream and streams output pairs straight into the
    // (internally synchronized) writer — no per-partition buffering.
    std::vector<uint64_t> partition_groups(num_partitions, 0);
    {
      obs::ScopedSpan reduce_phase_span("job.reduce_phase", "exec");
      ThreadPool pool(cfg.map_parallelism);
      for (int p = 0; p < num_partitions; ++p) {
        pool.Submit([&, p] {
          if (errors.Failed()) return;
          obs::ScopedSpan task_span("reduce_task", "exec");
          task_span.AddArg("partition", std::to_string(p));
          Stopwatch task_watch;
          auto run = [&]() -> Status {
            std::unique_ptr<index::SortedStream> stream;
            {
              obs::ScopedSpan merge_span("shuffle.merge", "exec");
              MANIMAL_ASSIGN_OR_RETURN(stream,
                                       shuffle->FinishPartition(p));
            }
            mril::VmInstance vm(&program);
            vm.set_log_sink([&log_messages](const Value&) {
              log_messages.fetch_add(1, std::memory_order_relaxed);
            });
            // PairFile output: batch encoded pairs per task and flush
            // block-sized chunks through one lock acquisition; typed
            // (pipeline) output appends per record.
            constexpr size_t kOutputChunkBytes = 256u << 10;
            std::string out_chunk;
            uint64_t out_chunk_pairs = 0;
            if (out->pair_encoded()) {
              vm.set_emit_sink(
                  [&](const Value& k, const Value& v) -> Status {
                    MANIMAL_RETURN_IF_ERROR(EncodeValue(k, &out_chunk));
                    MANIMAL_RETURN_IF_ERROR(EncodeValue(v, &out_chunk));
                    ++out_chunk_pairs;
                    if (out_chunk.size() >= kOutputChunkBytes) {
                      MANIMAL_RETURN_IF_ERROR(out->AppendEncodedChunk(
                          out_chunk, out_chunk_pairs));
                      out_chunk.clear();
                      out_chunk_pairs = 0;
                    }
                    return Status::OK();
                  });
            } else {
              vm.set_emit_sink(
                  [&out](const Value& k, const Value& v) -> Status {
                    return out->Append(k, v);
                  });
            }

            GroupIterator groups(stream.get());
            Value key;
            ValueList values;
            while (true) {
              MANIMAL_ASSIGN_OR_RETURN(bool more,
                                       groups.Next(&key, &values));
              if (!more) break;
              if (errors.Failed()) return Status::OK();
              ++partition_groups[p];
              MANIMAL_RETURN_IF_ERROR(
                  vm.InvokeReduce(key, Value::List(std::move(values))));
            }
            return out->AppendEncodedChunk(out_chunk, out_chunk_pairs);
          };
          Status st = run();
          if (!st.ok()) errors.Set(st);
          auto& metrics = obs::MetricsRegistry::Get();
          metrics.GetCounter("exec.reduce_tasks")->Increment();
          metrics.GetHistogram("exec.reduce_task_seconds")
              ->Record(task_watch.ElapsedSeconds());
        });
      }
      pool.Wait();
    }
    MANIMAL_RETURN_IF_ERROR(errors.First());
    for (int p = 0; p < num_partitions; ++p) {
      reduce_groups_total += partition_groups[p];
    }
    const Shuffle::Stats shuffle_stats = shuffle->stats();
    result.counters.shuffle_spilled_runs = shuffle_stats.spilled_runs;
    result.counters.shuffle_spilled_bytes = shuffle_stats.spilled_bytes;
  }

  result.counters.output_records = out->num_outputs();
  MANIMAL_ASSIGN_OR_RETURN(result.counters.output_bytes, out->Finish());
  result.reduce_seconds = reduce_watch.ElapsedSeconds();
  result.phase_breakdown["reduce"].seconds = result.reduce_seconds;

  result.counters.input_records = input_records.load();
  result.counters.input_bytes = input_bytes.load();
  result.counters.map_invocations = map_invocations.load();
  result.counters.map_output_records = map_output_records.load();
  result.counters.map_output_bytes = map_output_bytes.load();
  result.counters.map_output_filtered = map_output_filtered.load();
  result.counters.log_messages = log_messages.load();
  result.counters.reduce_groups = reduce_groups_total;

  result.phase_breakdown["map"].bytes =
      result.counters.input_bytes + result.counters.map_output_bytes;
  result.phase_breakdown["reduce"].bytes =
      result.counters.map_output_bytes + result.counters.output_bytes;

  result.wall_seconds = total_watch.ElapsedSeconds();
  if (cfg.simulated_disk_bytes_per_sec > 0) {
    uint64_t bytes_moved = result.counters.input_bytes +
                           result.counters.map_output_bytes +
                           result.counters.output_bytes;
    double aggregate_rate =
        static_cast<double>(cfg.simulated_disk_bytes_per_sec) *
        cfg.map_parallelism;
    result.simulated_io_seconds =
        static_cast<double>(bytes_moved) / aggregate_rate;
  }
  result.reported_seconds = result.wall_seconds +
                            cfg.simulated_startup_seconds +
                            result.simulated_io_seconds;
  // Rewrite the cumulative trace after every job so MANIMAL_TRACE
  // output exists even when the process exits abnormally later.
  if (obs::Tracer::Get().enabled()) {
    obs::Tracer::Get().WriteIfConfigured();
  }
  return result;
}

}  // namespace manimal::exec
