#include "exec/engine.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "analyzer/expr_eval.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "exec/pairfile.h"
#include "index/external_sorter.h"
#include "mril/verifier.h"
#include "mril/vm.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serde/key_codec.h"
#include "serde/record_codec.h"

namespace manimal::exec {

namespace {

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kSeqScan:
      return "seqscan";
    case AccessPath::kBTree:
      return "btree";
    case AccessPath::kColumnGroups:
      return "column-groups";
  }
  return "unknown";
}

// Shared error latch: first error wins; all tasks then bail early.
class ErrorLatch {
 public:
  void Set(const Status& status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_.ok() && !status.ok()) first_ = status;
  }
  bool Failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !first_.ok();
  }
  Status First() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_;
  }

 private:
  mutable std::mutex mu_;
  Status first_;
};

struct PartitionShuffle {
  std::mutex mu;
  std::unique_ptr<index::ExternalSorter> sorter;
};

// Job output sink: a PairFile, or (pipeline mode) a typed SeqFile the
// next MapReduce stage can consume.
class OutputWriter {
 public:
  static Result<std::unique_ptr<OutputWriter>> Create(
      const JobConfig& config) {
    auto out = std::unique_ptr<OutputWriter>(new OutputWriter());
    if (!config.output_schema.has_value()) {
      MANIMAL_ASSIGN_OR_RETURN(out->pairs_,
                               PairFileWriter::Create(config.output_path));
      return out;
    }
    const Schema& declared = *config.output_schema;
    columnar::SeqFileMeta meta;
    meta.original_schema = declared;
    if (config.output_kept_fields.empty() || declared.opaque()) {
      meta.stored_schema = declared;
      if (declared.opaque()) {
        meta.field_map = {0};
      } else {
        for (int i = 0; i < declared.num_fields(); ++i) {
          meta.field_map.push_back(i);
        }
      }
    } else {
      meta.stored_schema = declared.Project(config.output_kept_fields);
      meta.field_map = config.output_kept_fields;
      out->kept_fields_ = config.output_kept_fields;
    }
    out->declared_ = declared;
    MANIMAL_ASSIGN_OR_RETURN(
        out->records_,
        columnar::SeqFileWriter::Create(config.output_path, meta));
    return out;
  }

  Status Append(const Value& key, const Value& value) {
    if (pairs_ != nullptr) return pairs_->Append(key, value);
    // Flatten (k, v) into a record.
    Record record;
    record.push_back(key);
    if (value.is_list()) {
      for (const Value& item : value.list()) record.push_back(item);
    } else {
      record.push_back(value);
    }
    if (static_cast<int>(record.size()) != declared_.num_fields()) {
      return Status::InvalidArgument(StrPrintf(
          "pipeline output pair flattens to %zu fields; declared "
          "schema has %d",
          record.size(), declared_.num_fields()));
    }
    if (!kept_fields_.empty()) {
      Record projected;
      projected.reserve(kept_fields_.size());
      for (int f : kept_fields_) projected.push_back(record[f]);
      record = std::move(projected);
    }
    ++num_records_;
    return records_->Append(record);
  }

  uint64_t num_outputs() const {
    return pairs_ != nullptr ? pairs_->num_pairs() : num_records_;
  }

  Result<uint64_t> Finish() {
    if (pairs_ != nullptr) return pairs_->Finish();
    return records_->Finish();
  }

 private:
  OutputWriter() = default;

  std::unique_ptr<PairFileWriter> pairs_;
  std::unique_ptr<columnar::SeqFileWriter> records_;
  Schema declared_;
  std::vector<int> kept_fields_;
  uint64_t num_records_ = 0;
};

}  // namespace

Result<JobResult> RunJob(const ExecutionDescriptor& descriptor,
                         const JobConfig& config) {
  if (config.temp_dir.empty() || config.output_path.empty()) {
    return Status::InvalidArgument("temp_dir and output_path required");
  }
  const mril::Program& program = descriptor.program;
  MANIMAL_RETURN_IF_ERROR(mril::VerifyProgram(program));
  MANIMAL_RETURN_IF_ERROR(CreateDirIfMissing(config.temp_dir));

  JobResult result;
  result.output_path = config.output_path;
  result.applied_optimizations = descriptor.applied;
  obs::MetricsRegistry::Get().GetCounter("exec.jobs")->Increment();
  obs::ScopedSpan job_span("job.run", "exec");
  job_span.AddArg("access_path", AccessPathName(descriptor.access_path));
  job_span.AddArg("program", program.name);
  Stopwatch total_watch;
  Stopwatch plan_watch;

  std::unique_ptr<InputPlan> plan;
  {
    obs::ScopedSpan plan_span("job.plan_input", "exec");
    MANIMAL_ASSIGN_OR_RETURN(
        plan, PlanInput(descriptor, config.map_parallelism * 3));
  }
  result.counters.input_file_bytes = plan->total_input_bytes();

  // Self-describing projected inputs carry their own remap.
  const std::vector<int> field_remap =
      descriptor.field_remap.empty() ? plan->DerivedFieldRemap()
                                     : descriptor.field_remap;

  const bool has_reduce = program.has_reduce();
  const int num_partitions = std::max(1, config.num_partitions);

  // Shuffle targets (with reduce) or per-split output buffers
  // (map-only).
  std::vector<PartitionShuffle> partitions(has_reduce ? num_partitions
                                                      : 0);
  for (int p = 0; p < static_cast<int>(partitions.size()); ++p) {
    index::ExternalSorter::Options opts;
    opts.metric_label = "shuffle";
    opts.temp_dir = config.temp_dir + "/part-" + std::to_string(p);
    MANIMAL_RETURN_IF_ERROR(CreateDirIfMissing(opts.temp_dir));
    opts.memory_budget_bytes =
        std::max<uint64_t>(1u << 20,
                           config.sort_buffer_bytes / num_partitions);
    partitions[p].sorter =
        std::make_unique<index::ExternalSorter>(opts);
  }
  std::vector<std::string> map_only_outputs(
      has_reduce ? 0 : plan->num_splits());

  ErrorLatch errors;
  std::atomic<uint64_t> input_records{0}, input_bytes{0},
      map_invocations{0}, map_output_records{0}, map_output_bytes{0},
      map_output_filtered{0}, log_messages{0};

  // ---------------- map phase ----------------
  result.phase_breakdown["plan"].seconds = plan_watch.ElapsedSeconds();
  Stopwatch map_watch;
  {
    obs::ScopedSpan map_phase_span("job.map_phase", "exec");
    ThreadPool pool(std::max(1, config.map_parallelism));
    for (int i = 0; i < plan->num_splits(); ++i) {
      pool.Submit([&, i] {
        if (errors.Failed()) return;
        obs::ScopedSpan task_span("map_task", "exec");
        task_span.AddArg("split", std::to_string(i));
        Stopwatch task_watch;
        auto run = [&]() -> Status {
          MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<InputSplit> split,
                                   plan->OpenSplit(i));
          mril::VmOptions vm_options;
          vm_options.field_remap = field_remap;
          mril::VmInstance vm(&program, vm_options);
          vm.set_log_sink([&log_messages](const Value&) {
            log_messages.fetch_add(1, std::memory_order_relaxed);
          });
          std::string* local_out =
              has_reduce ? nullptr : &map_only_outputs[i];
          vm.set_emit_sink([&](const Value& k, const Value& v) -> Status {
            // Appendix E: delete pairs the reduce provably discards.
            if (descriptor.reduce_key_filter.has_value()) {
              for (const analyzer::SelectTerm& term :
                   descriptor.reduce_key_filter->required.terms) {
                MANIMAL_ASSIGN_OR_RETURN(
                    Value verdict,
                    analyzer::EvalExpr(term.expr, k, Value::Null()));
                if (!verdict.is_bool()) {
                  return Status::Internal(
                      "non-boolean reduce filter term");
                }
                if (verdict.bool_value() != term.polarity) {
                  map_output_filtered.fetch_add(
                      1, std::memory_order_relaxed);
                  return Status::OK();
                }
              }
            }
            std::string value_bytes;
            MANIMAL_RETURN_IF_ERROR(EncodeValue(v, &value_bytes));
            map_output_records.fetch_add(1, std::memory_order_relaxed);
            if (has_reduce) {
              std::string key_bytes;
              MANIMAL_RETURN_IF_ERROR(EncodeOrderedKey(k, &key_bytes));
              map_output_bytes.fetch_add(
                  key_bytes.size() + value_bytes.size(),
                  std::memory_order_relaxed);
              int p = static_cast<int>(k.Hash() % num_partitions);
              std::lock_guard<std::mutex> lock(partitions[p].mu);
              return partitions[p].sorter->Add(key_bytes, value_bytes);
            }
            // Map-only: output pair directly.
            std::string pair_bytes;
            MANIMAL_RETURN_IF_ERROR(EncodeValue(k, &pair_bytes));
            pair_bytes += value_bytes;
            map_output_bytes.fetch_add(pair_bytes.size(),
                                       std::memory_order_relaxed);
            local_out->append(pair_bytes);
            return Status::OK();
          });

          int64_t key = 0;
          Value value;
          uint64_t records = 0;
          while (true) {
            MANIMAL_ASSIGN_OR_RETURN(bool more, split->Next(&key, &value));
            if (!more) break;
            if (errors.Failed()) return Status::OK();
            ++records;
            MANIMAL_RETURN_IF_ERROR(vm.InvokeMap(Value::I64(key), value));
          }
          input_records.fetch_add(records, std::memory_order_relaxed);
          input_bytes.fetch_add(split->bytes_read(),
                                std::memory_order_relaxed);
          map_invocations.fetch_add(vm.map_invocations(),
                                    std::memory_order_relaxed);
          return Status::OK();
        };
        Status st = run();
        if (!st.ok()) errors.Set(st);
        auto& metrics = obs::MetricsRegistry::Get();
        metrics.GetCounter("exec.map_tasks")->Increment();
        metrics.GetHistogram("exec.map_task_seconds")
            ->Record(task_watch.ElapsedSeconds());
      });
    }
    pool.Wait();
  }
  MANIMAL_RETURN_IF_ERROR(errors.First());
  result.map_seconds = map_watch.ElapsedSeconds();
  result.phase_breakdown["map"].seconds = result.map_seconds;

  // ---------------- reduce / output phase ----------------
  Stopwatch reduce_watch;
  uint64_t reduce_groups_total = 0;

  MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<OutputWriter> out,
                           OutputWriter::Create(config));

  if (!has_reduce) {
    for (const std::string& buf : map_only_outputs) {
      std::string_view in = buf;
      // Each buffered chunk holds whole encoded pairs.
      while (!in.empty()) {
        Value k, v;
        MANIMAL_RETURN_IF_ERROR(DecodeValue(&in, &k));
        MANIMAL_RETURN_IF_ERROR(DecodeValue(&in, &v));
        MANIMAL_RETURN_IF_ERROR(out->Append(k, v));
      }
    }
  } else {
    // Reduce partitions in parallel, buffering each partition's output.
    std::vector<std::string> partition_outputs(num_partitions);
    std::vector<uint64_t> partition_groups(num_partitions, 0);
    {
      obs::ScopedSpan reduce_phase_span("job.reduce_phase", "exec");
      ThreadPool pool(std::max(1, config.map_parallelism));
      for (int p = 0; p < num_partitions; ++p) {
        pool.Submit([&, p] {
          if (errors.Failed()) return;
          obs::ScopedSpan task_span("reduce_task", "exec");
          task_span.AddArg("partition", std::to_string(p));
          Stopwatch task_watch;
          auto run = [&]() -> Status {
            std::unique_ptr<index::SortedStream> stream;
            {
              obs::ScopedSpan merge_span("shuffle.merge", "exec");
              MANIMAL_ASSIGN_OR_RETURN(stream,
                                       partitions[p].sorter->Finish());
            }
            mril::VmInstance vm(&program);
            vm.set_log_sink([&log_messages](const Value&) {
              log_messages.fetch_add(1, std::memory_order_relaxed);
            });
            std::string& out_buf = partition_outputs[p];
            vm.set_emit_sink(
                [&out_buf](const Value& k, const Value& v) -> Status {
                  MANIMAL_RETURN_IF_ERROR(EncodeValue(k, &out_buf));
                  return EncodeValue(v, &out_buf);
                });

            while (stream->Valid()) {
              std::string group_key(stream->key());
              std::vector<std::string> encoded_values;
              while (stream->Valid() && stream->key() == group_key) {
                encoded_values.emplace_back(stream->payload());
                MANIMAL_RETURN_IF_ERROR(stream->Next());
              }
              // Canonical value order: the shuffle's arrival order is
              // nondeterministic, so reduce sees values in sorted
              // encoded order, making runs reproducible and
              // baseline/optimized outputs comparable.
              std::sort(encoded_values.begin(), encoded_values.end());
              ValueList values;
              values.reserve(encoded_values.size());
              for (const std::string& ev : encoded_values) {
                std::string_view in = ev;
                Value v;
                MANIMAL_RETURN_IF_ERROR(DecodeValue(&in, &v));
                values.push_back(std::move(v));
              }
              Value key;
              MANIMAL_RETURN_IF_ERROR(DecodeOrderedKey(group_key, &key));
              ++partition_groups[p];
              MANIMAL_RETURN_IF_ERROR(
                  vm.InvokeReduce(key, Value::List(std::move(values))));
            }
            return Status::OK();
          };
          Status st = run();
          if (!st.ok()) errors.Set(st);
          auto& metrics = obs::MetricsRegistry::Get();
          metrics.GetCounter("exec.reduce_tasks")->Increment();
          metrics.GetHistogram("exec.reduce_task_seconds")
              ->Record(task_watch.ElapsedSeconds());
        });
      }
      pool.Wait();
    }
    MANIMAL_RETURN_IF_ERROR(errors.First());
    for (int p = 0; p < num_partitions; ++p) {
      reduce_groups_total += partition_groups[p];
      std::string_view in = partition_outputs[p];
      while (!in.empty()) {
        Value k, v;
        MANIMAL_RETURN_IF_ERROR(DecodeValue(&in, &k));
        MANIMAL_RETURN_IF_ERROR(DecodeValue(&in, &v));
        MANIMAL_RETURN_IF_ERROR(out->Append(k, v));
      }
    }
    for (int p = 0; p < num_partitions; ++p) {
      result.counters.shuffle_spilled_runs +=
          partitions[p].sorter->stats().spilled_runs;
      result.counters.shuffle_spilled_bytes +=
          partitions[p].sorter->stats().spilled_bytes;
    }
  }

  result.counters.output_records = out->num_outputs();
  MANIMAL_ASSIGN_OR_RETURN(result.counters.output_bytes, out->Finish());
  result.reduce_seconds = reduce_watch.ElapsedSeconds();
  result.phase_breakdown["reduce"].seconds = result.reduce_seconds;

  result.counters.input_records = input_records.load();
  result.counters.input_bytes = input_bytes.load();
  result.counters.map_invocations = map_invocations.load();
  result.counters.map_output_records = map_output_records.load();
  result.counters.map_output_bytes = map_output_bytes.load();
  result.counters.map_output_filtered = map_output_filtered.load();
  result.counters.log_messages = log_messages.load();
  result.counters.reduce_groups = reduce_groups_total;

  result.phase_breakdown["map"].bytes =
      result.counters.input_bytes + result.counters.map_output_bytes;
  result.phase_breakdown["reduce"].bytes =
      result.counters.map_output_bytes + result.counters.output_bytes;

  result.wall_seconds = total_watch.ElapsedSeconds();
  if (config.simulated_disk_bytes_per_sec > 0) {
    uint64_t bytes_moved = result.counters.input_bytes +
                           result.counters.map_output_bytes +
                           result.counters.output_bytes;
    double aggregate_rate =
        static_cast<double>(config.simulated_disk_bytes_per_sec) *
        std::max(1, config.map_parallelism);
    result.simulated_io_seconds =
        static_cast<double>(bytes_moved) / aggregate_rate;
  }
  result.reported_seconds = result.wall_seconds +
                            config.simulated_startup_seconds +
                            result.simulated_io_seconds;
  // Rewrite the cumulative trace after every job so MANIMAL_TRACE
  // output exists even when the process exits abnormally later.
  if (obs::Tracer::Get().enabled()) {
    obs::Tracer::Get().WriteIfConfigured();
  }
  return result;
}

}  // namespace manimal::exec
