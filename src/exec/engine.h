// The execution fabric (paper §2.2 Step 3): a multi-threaded,
// disk-backed MapReduce engine. "Most of the execution fabric is
// identical to a traditional MapReduce system" — map tasks over input
// splits, hash partitioning, an external-sort shuffle, reduce tasks —
// "with a few modifications to support B+Tree-indexed input formats"
// (and the other optimized representations), which arrive via the
// ExecutionDescriptor. The shuffle/reduce data path (per-mapper spill
// buffers, heap merge, streaming reduce) is described in
// docs/execution.md.

#ifndef MANIMAL_EXEC_ENGINE_H_
#define MANIMAL_EXEC_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/descriptor.h"
#include "serde/schema.h"

namespace manimal::exec {

// A compatible locator-B+Tree alternative for a running seqscan job,
// produced by re-planning against observed selectivity. The caller
// (core) installs the callback so the fabric never depends on the
// optimizer; the target must be a non-clustered tree whose locators
// point into the very file the scan is reading.
struct ReplanTarget {
  std::string tree_path;
  // Canonicalized (disjoint, sorted) predicate intervals to read.
  std::vector<analyzer::KeyInterval> intervals;
  std::string explanation;
};
using ReplanFn =
    std::function<std::optional<ReplanTarget>(double observed_selectivity)>;

// Which execution tier runs the map function (docs/mril.md "Native
// kernels"). kAuto compiles a native kernel when the analyzer facts
// are exact (codegen::ExtractShape admits the program) and silently
// falls back to the VM otherwise; kNative fails the job when the
// program is not admissible; kVm never probes the native tier.
enum class Backend {
  kAuto = 0,
  kVm,
  kNative,
};

// Stable lowercase name ("auto" / "vm" / "native").
const char* BackendName(Backend backend);
// Parses a BackendName (also accepted via the MANIMAL_BACKEND env
// var); nullopt for anything else.
std::optional<Backend> BackendFromName(std::string_view name);

struct JobConfig {
  // Map-side parallelism (cluster "slots").
  int map_parallelism = 4;
  // Reduce partitions; also reduce-side parallelism.
  int num_partitions = 4;
  // Scratch space for shuffle spills (required).
  std::string temp_dir;
  // Where the job writes its PairFile output (required).
  std::string output_path;
  // Fixed job-launch overhead added to the reported runtime (Hadoop
  // startup "can be up to 15 seconds", paper Appendix D). Not slept —
  // accounted.
  double simulated_startup_seconds = 3.0;
  // When set, the job's output is written as a typed SeqFile instead
  // of a PairFile, so another MapReduce job can consume it (pipeline
  // support, paper Appendix E). Each emitted (k, v) pair becomes the
  // record [k] ++ (v's elements if v is a list, else [v]) and must
  // match this schema. `output_kept_fields` optionally projects the
  // written records (cross-stage projection: drop columns the next
  // stage provably ignores); empty keeps everything.
  std::optional<Schema> output_schema;
  std::vector<int> output_kept_fields;

  // Simulated disk throughput per worker (0 disables). The paper's
  // cluster was I/O-bound — Anderson & Tucek measured Hadoop moving
  // well under 5 MB/s/core — while this fabric runs over the page
  // cache; charging bytes moved (input + shuffle + output) against
  // this rate restores the byte-proportional cost structure the
  // paper's speedups rest on. Accounted into reported_seconds, not
  // slept.
  uint64_t simulated_disk_bytes_per_sec = 16u << 20;
  // Shuffle in-memory sort budget, divided across the concurrently
  // running map tasks; each map task buffers its partitioned output
  // privately and spills sorted runs when its share fills.
  uint64_t sort_buffer_bytes = 32u << 20;

  // ---- fault handling (docs/testing.md) ----
  // Task-level retry budget: each map/reduce task is attempted at
  // most this many times per execution chain; transient IO failures
  // (StatusCode::kIOError, including injected faults) retry with
  // exponential backoff, everything else fails the job immediately.
  int max_task_attempts = 4;
  // Base backoff between attempts: base * 2^(attempt-1), capped at
  // 100 ms. Zero disables sleeping (tests).
  double retry_backoff_ms = 1.0;
  // Speculative re-execution of straggler map tasks: once at least
  // half the map tasks finished, any still-running task whose elapsed
  // time exceeds max(speculation_min_seconds, speculation_factor *
  // p95(completed task seconds)) is re-launched as a duplicate
  // execution chain; the first chain to finish commits, the loser's
  // work is discarded (commit is an atomic per-task gate, so output
  // is unaffected).
  bool enable_speculation = true;
  double speculation_factor = 3.0;
  double speculation_min_seconds = 0.25;
  // Test-only: sleep this long after each map record, simulating slow
  // user code so straggler-dependent behavior (speculation) can be
  // exercised deterministically regardless of how fast the VM and the
  // scan path are. Zero (production) never sleeps.
  double debug_map_record_sleep_ms = 0.0;

  // ---- observability (docs/observability.md) ----
  // Stable identifier stamped on every journal event, trace span, and
  // EXPLAIN report for this job; auto-assigned ("job-<n>", one
  // process-wide counter) when left empty.
  std::string job_id;
  // EXPLAIN ANALYZE: record per-task runtime stats and — when the
  // descriptor carries observation hooks (observe_expr) and the input
  // layout is unremapped — evaluate the selection's index-key
  // expression per scanned record to count matches per interval. Adds
  // per-record work on the map path, so it is off by default and only
  // enabled by explain/analysis callers.
  bool collect_task_stats = false;

  // ---- adaptive replanning (docs/observability.md) ----
  // After `replan_min_splits` map splits commit, compare the plan's
  // estimated predicate selectivity (descriptor
  // est_predicate_selectivity) against what those splits observed;
  // when off by `replan_drift_ratio`x or more in either direction,
  // call `replan_fn(observed)` and — if it returns a target — serve
  // every not-yet-started scan split from the tree's locators
  // restricted to that split's block range instead. Only arms on
  // kSeqScan plans with observation hooks and an unremapped layout;
  // the switch is output-byte-identical to not switching.
  bool enable_replan = false;
  double replan_drift_ratio = 4.0;
  int replan_min_splits = 3;
  ReplanFn replan_fn;

  // ---- direct evaluation on compressed blocks ----
  // When the input is a v2 seqfile with skip frames and the map's emit
  // condition is a DNF of simple total comparisons, prove per block
  // from the footer's [min, max] frames that no row can match, and
  // elide such blocks from the scan without reading or decompressing
  // them (paper §2.1 "operate directly on compressed data"). Output
  // is provably identical; the MANIMAL_DIRECT_EVAL env var (0|off|
  // false) disables it for A/B runs.
  bool direct_eval = true;

  // ---- execution backend (docs/mril.md "Native kernels") ----
  // kAuto additionally honors the MANIMAL_BACKEND env var
  // (vm|native|auto); an explicit kVm / kNative here always wins over
  // the environment. The resolved choice is recorded on JobResult,
  // every task_start journal event, and the engine.native_tasks
  // counter.
  Backend backend = Backend::kAuto;
};

struct JobCounters {
  uint64_t input_records = 0;
  uint64_t input_bytes = 0;       // bytes actually read by map tasks
  uint64_t input_file_bytes = 0;  // size of the (indexed) input file
  // Uncompressed input bytes map tasks materialized (== input_bytes
  // for uncompressed inputs; smaller when direct evaluation skipped
  // blocks, larger when compressed blocks expanded).
  uint64_t bytes_decoded = 0;
  // Blocks proven row-free by direct evaluation and never read.
  uint64_t blocks_skipped = 0;
  uint64_t map_invocations = 0;
  uint64_t map_output_records = 0;
  uint64_t map_output_bytes = 0;
  // Pairs deleted pre-shuffle by the reduce-side key filter (App. E).
  uint64_t map_output_filtered = 0;
  uint64_t reduce_groups = 0;
  uint64_t output_records = 0;
  uint64_t output_bytes = 0;
  uint64_t log_messages = 0;
  uint64_t shuffle_spilled_runs = 0;
  uint64_t shuffle_spilled_bytes = 0;
  // Fault handling: attempts beyond each task's first, speculative
  // duplicate chains launched, and tasks that exhausted their retry
  // budget (also published as the engine.task_retries /
  // engine.speculative_launches / engine.tasks_failed counters).
  uint64_t task_retries = 0;
  uint64_t speculative_launches = 0;
  uint64_t tasks_failed = 0;
  // Native tier: committed map tasks that ran the compiled kernel
  // (also the engine.native_tasks counter), and records those tasks
  // replayed through the VM because the kernel bailed out.
  uint64_t native_tasks = 0;
  uint64_t native_bailout_records = 0;
};

// One named phase of a job's wall time, with the bytes that phase
// moved (the paper's tables decompose runtimes exactly this way:
// startup vs. scan vs. shuffle vs. output).
struct PhaseStat {
  double seconds = 0;
  uint64_t bytes = 0;
};

// One committed task attempt's runtime stats (EXPLAIN ANALYZE;
// populated only under JobConfig::collect_task_stats). The chain /
// attempt columns show which retry or speculative twin actually won
// the task's commit gate — losing attempts leave no row.
struct TaskStat {
  char kind = 'm';  // 'm' = map task, 'r' = reduce task
  int index = 0;    // split index (map) or partition (reduce)
  int chain = 0;    // 0 = original chain, 1 = speculative twin
  int attempt = 0;  // 1-based attempt within the chain
  uint64_t records_in = 0;   // records scanned (map) / groups (reduce)
  uint64_t records_out = 0;  // pairs emitted
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t vm_instructions = 0;  // VM steps executed by the attempt
  double seconds = 0;            // attempt work time (excludes commit)
};

// Observed match count for one predicate interval: how many scanned
// records' index-key value fell inside it. Divide by
// JobCounters::map_invocations for observed selectivity — the
// "actual" side of EXPLAIN ANALYZE's estimated-vs-actual drift
// report.
struct PredicateStat {
  std::string predicate;  // KeyInterval::ToString() of the interval
  uint64_t matched = 0;
};

// Outcome of the adaptive replanning gate (JobConfig::enable_replan).
// Mirrored by the "plan_switched" journal event and the EXPLAIN
// ANALYZE replan section.
struct ReplanStat {
  bool switched = false;
  int after_splits = 0;   // committed splits behind the decision
  double estimated = -1;  // plan-time selectivity estimate
  double observed = -1;   // selectivity those splits measured
  double drift_ratio = 0; // max(obs/est, est/obs) at decision time
  std::string to;         // tree now serving the remaining splits
};

struct JobResult {
  // Copied from JobConfig::job_id (after auto-assignment); the same
  // id appears on this job's journal events and trace spans.
  std::string job_id;
  JobCounters counters;
  double map_seconds = 0;
  double reduce_seconds = 0;
  double wall_seconds = 0;         // measured work time
  double simulated_io_seconds = 0; // bytes moved / simulated disk rate
  // wall + simulated startup + simulated I/O.
  double reported_seconds = 0;
  std::string output_path;
  std::vector<std::string> applied_optimizations;
  // Contiguous decomposition of wall_seconds: "plan" (input planning
  // and shuffle setup), "map" (bytes = input read + map output
  // written), "reduce" (the reduce/output pass; bytes = shuffled
  // bytes + job output). The phases sum to ~wall_seconds.
  std::map<std::string, PhaseStat> phase_breakdown;

  // ---- EXPLAIN ANALYZE payload (JobConfig::collect_task_stats) ----
  // Per-committed-attempt rows, in commit order.
  std::vector<TaskStat> task_stats;
  // Per-interval observed match counts of the selection predicate;
  // empty unless the fabric actually observed records
  // (predicates_observed below).
  std::vector<PredicateStat> predicate_stats;
  // True when observe_expr was evaluated over the scanned records
  // (stats requested, hooks present, layout unremapped).
  bool predicates_observed = false;
  // Adaptive replanning outcome; replan.switched == false when the
  // gate never fired (or was never armed).
  ReplanStat replan;

  // Resolved map backend ("vm" / "native") and why — the kernel
  // description, or the admission-gate reason behind a vm fallback.
  std::string backend;
  std::string backend_detail;
};

// Runs the job described by `descriptor` under `config`.
Result<JobResult> RunJob(const ExecutionDescriptor& descriptor,
                         const JobConfig& config);

}  // namespace manimal::exec

#endif  // MANIMAL_EXEC_ENGINE_H_
