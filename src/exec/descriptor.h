// Execution descriptors (paper §2.2 Step 2: "The resulting execution
// descriptor indicates to the final execution fabric which index file
// to use, and which optimizations should be applied") plus the input
// split machinery the map phase consumes.

#ifndef MANIMAL_EXEC_DESCRIPTOR_H_
#define MANIMAL_EXEC_DESCRIPTOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analyzer/descriptor.h"
#include "columnar/seqfile.h"
#include "common/status.h"
#include "mril/program.h"

namespace manimal::exec {

// How the map phase reads its input.
enum class AccessPath {
  kSeqScan,       // full scan of a SeqFile (raw or re-encoded artifact)
  kBTree,         // range scans of a B+Tree artifact
  kColumnGroups,  // zip scan of the column groups covering the
                  // program's fields (§2.1)
};

// Stable lowercase name ("seqscan" / "btree" / "column-groups") used
// by spans, journal events, and EXPLAIN output.
const char* AccessPathName(AccessPath path);

struct ExecutionDescriptor {
  AccessPath access_path = AccessPath::kSeqScan;

  // SeqFile path (kSeqScan) or B+Tree path (kBTree).
  std::string data_path;

  // kBTree only: the record file the tree's locators point into — the
  // raw input or a projected sibling copy (empty for clustered trees,
  // which embed their records).
  std::string base_path;

  // kBTree only: clustered layout (records embedded in the leaves).
  bool clustered = false;

  // kBTree clustered only: layout of the embedded records.
  columnar::SeqFileMeta artifact_meta;

  // Key ranges to scan (kBTree only); empty means full scan.
  std::vector<analyzer::KeyInterval> intervals;

  // original-field -> runtime-slot remap handed to the VM when the
  // artifact is projected; empty = identity.
  std::vector<int> field_remap;

  // The "potentially-modified copy of the user's original program"
  // (constant patches for direct operation on compressed data).
  mril::Program program;

  // kColumnGroups only: original field indexes the program reads; the
  // plan opens just the groups covering them (empty reads everything).
  std::vector<int> needed_fields;

  // Appendix E extension: map outputs whose key fails this key-only
  // conjunction are deleted before the shuffle (the reduce provably
  // discards such groups). Empty = no filtering.
  std::optional<analyzer::ReduceFilterDescriptor> reduce_key_filter;

  // EXPLAIN ANALYZE observation hooks: the selection predicate's
  // indexed key expression and its intervals, carried on EVERY plan
  // that has an indexable selection (including the plain scan, where
  // `intervals` above stays empty because no B+Tree drives the read).
  // When JobConfig::collect_task_stats is set and the input layout is
  // unremapped, the fabric evaluates `observe_expr` per scanned
  // record and counts matches per interval — the observed-selectivity
  // side of the estimated-vs-actual drift report.
  analyzer::ExprRef observe_expr;
  std::vector<analyzer::KeyInterval> observe_intervals;

  // The optimizer's estimate of the selection predicate's matching
  // fraction (union of observe_intervals), with the estimator that
  // produced it ("histogram" / "btree-fanout" / "observed"). -1 when
  // no interval-backed estimate exists. The engine's adaptive
  // replanning gate compares this against the selectivity the first
  // committed splits actually observe.
  double est_predicate_selectivity = -1;
  std::string est_provenance;

  // ---- native codegen tier (src/codegen, docs/mril.md) ----
  // Set by the optimizer when ExtractShape admits the (possibly
  // patched) program: the map function is a proven selection+
  // projection the native tier can execute exactly. Advisory — the
  // engine re-probes compilation at job-prepare time — but surfaced
  // through EXPLAIN so plan output shows the backend decision.
  bool native_eligible = false;
  // Why (shape description) or why not (admission-gate reason).
  std::string native_detail;
  // Per-term selectivity estimates keyed by SelectTerm::ToString(),
  // derived from column statistics when available; the native kernel
  // short-circuits conjunct terms most-selective-first.
  std::vector<std::pair<std::string, double>> native_term_selectivity;

  // Human-readable list of optimizations in effect (for reporting).
  std::vector<std::string> applied;

  std::string Describe() const;
};

// A stream of (key, record-value) map inputs owned by one map task.
class InputSplit {
 public:
  virtual ~InputSplit() = default;

  // Fills *key / *value; false at end. `value` is the runtime record
  // (list value) or opaque blob (str value).
  //
  // Lifetime: string content inside *value may be *borrowed* from the
  // split's current decode buffer — valid only until the next call to
  // Next() on this split (or the split's destruction). A caller that
  // retains values across records must ToOwned() them first; the map
  // engine consumes each record with one VM invocation before
  // advancing, and the VM promotes anything that escapes the record
  // (emits, logs, member stores).
  virtual Result<bool> Next(int64_t* key, Value* value) = 0;

  virtual uint64_t bytes_read() const = 0;

  // Uncompressed bytes this split materialized. Differs from
  // bytes_read when the input is block-compressed (either direction:
  // decompression expands, block elision shrinks). Defaults to
  // bytes_read for formats without a compression stage.
  virtual uint64_t bytes_decoded() const { return bytes_read(); }

  // Blocks elided by a direct-evaluation skip filter (never read or
  // decompressed). 0 for splits without one.
  virtual uint64_t blocks_skipped() const { return 0; }
};

// Plans and opens splits for a descriptor.
class InputPlan {
 public:
  virtual ~InputPlan() = default;

  virtual int num_splits() const = 0;
  virtual Result<std::unique_ptr<InputSplit>> OpenSplit(int i) = 0;
  virtual uint64_t total_input_bytes() const = 0;

  // For self-describing projected inputs (SeqFiles whose stored layout
  // differs from the original schema), the original-field ->
  // runtime-slot remap derived from the file header; empty when the
  // layout is the identity. Used when the descriptor does not supply
  // its own remap (e.g. pipeline intermediates).
  virtual std::vector<int> DerivedFieldRemap() const { return {}; }

  // For plans whose split `i` covers a contiguous block range of one
  // SeqFile, fills [*begin, *end) and returns true. Adaptive
  // replanning uses this to substitute an equivalent B+Tree-driven
  // split for a not-yet-started scan split.
  virtual bool SplitBlockRange(int i, uint64_t* begin,
                               uint64_t* end) const {
    (void)i;
    (void)begin;
    (void)end;
    return false;
  }

  // The SeqFile this plan scans, when it scans exactly one (the
  // direct-evaluation path inspects its skip frames). nullptr for
  // index- and group-driven plans.
  virtual const columnar::SeqFileReader* seqfile() const {
    return nullptr;
  }

  // Installs a per-block skip bitmap (index = absolute block number)
  // on every split subsequently opened. Only meaningful for plans
  // where seqfile() is non-null; a no-op elsewhere.
  virtual void InstallBlockSkip(
      std::shared_ptr<const std::vector<bool>> skip) {
    (void)skip;
  }
};

// Builds the input plan: SeqFile block ranges for kSeqScan, or
// interval sub-ranges (subdivided along B+Tree node boundaries) for
// kBTree. `target_splits` is a parallelism hint.
Result<std::unique_ptr<InputPlan>> PlanInput(
    const ExecutionDescriptor& descriptor, int target_splits);

// ---- adaptive replanning support (engine.cc) ----
//
// When the engine switches a running scan to a locator B+Tree
// mid-job, each remaining scan split (a block range of the base file)
// is served by an equivalent B+Tree-driven split instead: the matching
// locators restricted to that block range, visited in file order — the
// same records, in the same order, that the scan split's map task
// would have emitted for (the analyzer guarantees records outside the
// intervals cannot satisfy the predicate).

using RecordLocator = std::pair<uint64_t, uint32_t>;  // (block, index)

// One index pass: every locator in `intervals` (canonicalized order),
// sorted into file order. *index_bytes gets the scanned key+payload
// bytes.
Result<std::vector<RecordLocator>> CollectBTreeLocators(
    const std::string& tree_path,
    const std::vector<analyzer::KeyInterval>& intervals,
    uint64_t* index_bytes);

// Opens a split serving `locators` (sorted, restricted to one block
// range by the caller) out of `base`. `charged_bytes` is accounted to
// this split's bytes_read on top of the blocks it decodes.
Result<std::unique_ptr<InputSplit>> OpenLocatorSplit(
    std::shared_ptr<columnar::SeqFileReader> base,
    std::vector<RecordLocator> locators, uint64_t charged_bytes);

}  // namespace manimal::exec

#endif  // MANIMAL_EXEC_DESCRIPTOR_H_
