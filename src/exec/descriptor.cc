#include "exec/descriptor.h"

#include <algorithm>

#include "columnar/column_groups.h"
#include "common/coding.h"
#include "common/strings.h"
#include "index/btree.h"
#include "serde/key_codec.h"
#include "serde/record_codec.h"

namespace manimal::exec {

const char* AccessPathName(AccessPath path) {
  switch (path) {
    case AccessPath::kSeqScan:
      return "seqscan";
    case AccessPath::kBTree:
      return "btree";
    case AccessPath::kColumnGroups:
      return "column-groups";
  }
  return "unknown";
}

std::string ExecutionDescriptor::Describe() const {
  std::string out = "ExecutionDescriptor{";
  out += AccessPathName(access_path);
  out += " " + data_path;
  if (!intervals.empty()) {
    out += " ranges=";
    for (size_t i = 0; i < intervals.size(); ++i) {
      if (i) out += " u ";
      out += intervals[i].ToString();
    }
  }
  if (!applied.empty()) {
    out += " applied=[" + JoinStrings(applied, "; ") + "]";
  }
  out += "}";
  return out;
}

namespace {

// Converts a stored record (per meta) to the runtime map value.
Value RecordToValue(const columnar::SeqFileMeta& meta, Record record) {
  if (meta.stored_schema.opaque()) {
    // The opaque blob itself is the value parameter.
    return record.empty() ? Value::Str("") : record[0];
  }
  return Value::List(std::move(record));
}

// ---------------- SeqScan ----------------

class SeqScanSplit : public InputSplit {
 public:
  SeqScanSplit(columnar::SeqFileReader::RecordStream stream,
               const columnar::SeqFileMeta* meta)
      : stream_(std::move(stream)), meta_(meta) {
    // The map engine consumes each record before advancing (the
    // InputSplit::Next contract), so str fields can be served as
    // zero-copy views into the stream's block buffer.
    stream_.set_borrow_strings(true);
  }

  Result<bool> Next(int64_t* key, Value* value) override {
    // Steady-state fast path: the engine hands back the same Value each
    // iteration. When it still holds the previous record's list and
    // nothing else kept a reference (the VM promotes anything that
    // escapes, and clears its stack/locals per invocation), decode
    // straight into that storage — per record this costs zero heap
    // allocations instead of a fresh shared list + vector.
    if (!meta_->stored_schema.opaque() && value->has_unique_list()) {
      MANIMAL_ASSIGN_OR_RETURN(bool more,
                               stream_.Next(key, &value->mutable_list()));
      return more;
    }
    Record record;
    MANIMAL_ASSIGN_OR_RETURN(bool more, stream_.Next(key, &record));
    if (!more) return false;
    *value = RecordToValue(*meta_, std::move(record));
    return true;
  }

  uint64_t bytes_read() const override { return stream_.bytes_read(); }
  uint64_t bytes_decoded() const override {
    return stream_.bytes_decoded();
  }
  uint64_t blocks_skipped() const override {
    return stream_.blocks_skipped();
  }

 private:
  columnar::SeqFileReader::RecordStream stream_;
  const columnar::SeqFileMeta* meta_;
};

class SeqScanPlan : public InputPlan {
 public:
  SeqScanPlan(std::shared_ptr<columnar::SeqFileReader> reader,
              int target_splits)
      : reader_(std::move(reader)) {
    uint64_t blocks = reader_->num_blocks();
    uint64_t chunk =
        std::max<uint64_t>(1, (blocks + target_splits - 1) /
                                  std::max(1, target_splits));
    for (uint64_t b = 0; b < blocks; b += chunk) {
      ranges_.emplace_back(b, std::min(blocks, b + chunk));
    }
    if (ranges_.empty()) ranges_.emplace_back(0, 0);
  }

  int num_splits() const override {
    return static_cast<int>(ranges_.size());
  }

  Result<std::unique_ptr<InputSplit>> OpenSplit(int i) override {
    auto [begin, end] = ranges_.at(i);
    MANIMAL_ASSIGN_OR_RETURN(columnar::SeqFileReader::RecordStream stream,
                             reader_->Scan(begin, end));
    if (skip_ != nullptr) stream.set_skip_blocks(skip_);
    return std::unique_ptr<InputSplit>(
        new SeqScanSplit(std::move(stream), &reader_->meta()));
  }

  uint64_t total_input_bytes() const override {
    return reader_->file_size();
  }

  bool SplitBlockRange(int i, uint64_t* begin,
                       uint64_t* end) const override {
    if (i < 0 || i >= static_cast<int>(ranges_.size())) return false;
    *begin = ranges_[i].first;
    *end = ranges_[i].second;
    return true;
  }

  std::vector<int> DerivedFieldRemap() const override {
    const columnar::SeqFileMeta& meta = reader_->meta();
    if (meta.original_schema.opaque()) return {};
    const int n = meta.original_schema.num_fields();
    bool identity = static_cast<int>(meta.field_map.size()) == n;
    std::vector<int> remap(n, -1);
    for (size_t slot = 0; slot < meta.field_map.size(); ++slot) {
      remap[meta.field_map[slot]] = static_cast<int>(slot);
      if (meta.field_map[slot] != static_cast<int>(slot)) {
        identity = false;
      }
    }
    if (identity) return {};
    return remap;
  }

  const columnar::SeqFileReader* seqfile() const override {
    return reader_.get();
  }

  void InstallBlockSkip(
      std::shared_ptr<const std::vector<bool>> skip) override {
    skip_ = std::move(skip);
  }

 private:
  std::shared_ptr<columnar::SeqFileReader> reader_;
  std::vector<std::pair<uint64_t, uint64_t>> ranges_;
  std::shared_ptr<const std::vector<bool>> skip_;
};

// ---------------- BTree ranges ----------------

// Half-open-ish byte range over encoded keys.
struct ByteRange {
  // Start position: seek to start_key; include equal keys iff
  // start_inclusive. Empty start_key + inclusive = from beginning.
  std::string start_key;
  bool start_inclusive = true;
  // End: stop at keys > end_key (or >= when !end_inclusive). Unbounded
  // when !has_end.
  bool has_end = false;
  std::string end_key;
  bool end_inclusive = true;
};

using Locator = std::pair<uint64_t, uint32_t>;  // (block, index)

// Resolves a file-position-ordered slice of matching record locators
// against the base SeqFile block by block — each base block decodes at
// most once across the whole job, and only blocks containing matches
// are touched at all.
class BTreeRangeSplit : public InputSplit {
 public:
  BTreeRangeSplit(columnar::SeqFileReader::BlockAccessor accessor,
                  std::vector<Locator> locators, uint64_t index_bytes)
      : accessor_(std::move(accessor)),
        locators_(std::move(locators)),
        index_bytes_(index_bytes) {}

  Result<bool> Next(int64_t* key, Value* value) override {
    if (pos_ >= locators_.size()) return false;
    auto [block, idx] = locators_[pos_++];
    MANIMAL_RETURN_IF_ERROR(accessor_.Load(block));
    if (idx >= accessor_.num_records()) {
      return Status::Corruption("locator index out of range");
    }
    *key = accessor_.key(idx);
    *value = RecordToValue(accessor_.reader_meta(), accessor_.record(idx));
    return true;
  }

  uint64_t bytes_read() const override {
    return index_bytes_ + accessor_.bytes_read();
  }
  uint64_t bytes_decoded() const override {
    return index_bytes_ + accessor_.bytes_decoded();
  }

 private:
  columnar::SeqFileReader::BlockAccessor accessor_;
  std::vector<Locator> locators_;
  size_t pos_ = 0;
  uint64_t index_bytes_ = 0;
};

// Clustered-tree split: iterates one key sub-range of the tree and
// decodes the records embedded in its leaves.
class ClusteredBTreeSplit : public InputSplit {
 public:
  ClusteredBTreeSplit(std::shared_ptr<index::BTreeReader> tree,
                      index::BTreeReader::Iterator it, ByteRange range,
                      const columnar::SeqFileMeta* meta)
      : tree_(std::move(tree)),
        it_(std::move(it)),
        range_(std::move(range)),
        meta_(meta) {}

  Result<bool> Next(int64_t* key, Value* value) override {
    if (!it_.Valid()) return false;
    if (range_.has_end) {
      int c = std::string_view(it_.key()).compare(range_.end_key);
      if (c > 0 || (c == 0 && !range_.end_inclusive)) return false;
    }
    std::string_view in = it_.payload();
    int64_t orig_key = 0;
    MANIMAL_RETURN_IF_ERROR(GetVarintSigned(&in, &orig_key));
    Record record;
    MANIMAL_RETURN_IF_ERROR(
        DecodeRecord(meta_->stored_schema, &in, &record));
    *key = orig_key;
    *value = RecordToValue(*meta_, std::move(record));
    bytes_read_ += it_.key().size() + it_.payload().size();
    MANIMAL_RETURN_IF_ERROR(it_.Next());
    return true;
  }

  uint64_t bytes_read() const override { return bytes_read_; }

 private:
  std::shared_ptr<index::BTreeReader> tree_;
  index::BTreeReader::Iterator it_;
  ByteRange range_;
  const columnar::SeqFileMeta* meta_;
  uint64_t bytes_read_ = 0;
};

Result<std::vector<ByteRange>> EncodeIntervals(
    const std::vector<analyzer::KeyInterval>& intervals) {
  // Analyzer intervals come pre-merged and disjoint; an empty list
  // means a full index scan.
  std::vector<ByteRange> ranges;
  if (intervals.empty()) {
    ranges.push_back(ByteRange{});
  }
  for (const analyzer::KeyInterval& iv : intervals) {
    ByteRange r;
    if (iv.lo.has_value()) {
      MANIMAL_RETURN_IF_ERROR(EncodeOrderedKey(*iv.lo, &r.start_key));
      r.start_inclusive = iv.lo_inclusive;
    }
    if (iv.hi.has_value()) {
      r.has_end = true;
      MANIMAL_RETURN_IF_ERROR(EncodeOrderedKey(*iv.hi, &r.end_key));
      r.end_inclusive = iv.hi_inclusive;
    }
    ranges.push_back(std::move(r));
  }
  return ranges;
}

// Clustered plan: key sub-ranges cut along root-child boundaries.
class ClusteredBTreePlan : public InputPlan {
 public:
  static Result<std::unique_ptr<ClusteredBTreePlan>> Make(
      const ExecutionDescriptor& descriptor) {
    auto plan = std::make_unique<ClusteredBTreePlan>();
    plan->path_ = descriptor.data_path;
    plan->meta_ = descriptor.artifact_meta;
    MANIMAL_ASSIGN_OR_RETURN(std::shared_ptr<index::BTreeReader> tree,
                             index::BTreeReader::Open(plan->path_));
    plan->file_size_ = tree->file_size();
    MANIMAL_ASSIGN_OR_RETURN(std::vector<std::string> boundaries,
                             tree->RootChildKeys());
    MANIMAL_ASSIGN_OR_RETURN(std::vector<ByteRange> ranges,
                             EncodeIntervals(descriptor.intervals));
    for (const ByteRange& r : ranges) {
      std::vector<std::string> cuts;
      for (const std::string& b : boundaries) {
        bool after_start = r.start_key.empty() || b > r.start_key;
        bool before_end = !r.has_end || b < r.end_key;
        if (after_start && before_end) cuts.push_back(b);
      }
      std::string prev_start = r.start_key;
      bool prev_incl = r.start_inclusive;
      for (const std::string& cut : cuts) {
        ByteRange sub;
        sub.start_key = prev_start;
        sub.start_inclusive = prev_incl;
        sub.has_end = true;
        sub.end_key = cut;
        sub.end_inclusive = false;
        plan->ranges_.push_back(std::move(sub));
        prev_start = cut;
        prev_incl = true;
      }
      ByteRange last;
      last.start_key = prev_start;
      last.start_inclusive = prev_incl;
      last.has_end = r.has_end;
      last.end_key = r.end_key;
      last.end_inclusive = r.end_inclusive;
      plan->ranges_.push_back(std::move(last));
    }
    return plan;
  }

  int num_splits() const override {
    return static_cast<int>(ranges_.size());
  }

  Result<std::unique_ptr<InputSplit>> OpenSplit(int i) override {
    const ByteRange& r = ranges_.at(i);
    MANIMAL_ASSIGN_OR_RETURN(std::shared_ptr<index::BTreeReader> tree,
                             index::BTreeReader::Open(path_));
    index::BTreeReader::Iterator it;
    if (r.start_key.empty() && r.start_inclusive) {
      MANIMAL_ASSIGN_OR_RETURN(it, tree->SeekToFirst());
    } else {
      MANIMAL_ASSIGN_OR_RETURN(
          it, tree->Seek(r.start_key, r.start_inclusive));
    }
    return std::unique_ptr<InputSplit>(new ClusteredBTreeSplit(
        std::move(tree), std::move(it), r, &meta_));
  }

  uint64_t total_input_bytes() const override { return file_size_; }

  columnar::SeqFileMeta meta_;
  std::string path_;
  uint64_t file_size_ = 0;
  std::vector<ByteRange> ranges_;
};

// Every matching locator of `ranges`, sorted into file order.
// *index_bytes accumulates the key+payload bytes the index pass read.
Result<std::vector<Locator>> CollectLocators(
    const index::BTreeReader& tree, const std::vector<ByteRange>& ranges,
    uint64_t* index_bytes) {
  std::vector<Locator> locators;
  for (const ByteRange& r : ranges) {
    index::BTreeReader::Iterator it;
    if (r.start_key.empty() && r.start_inclusive) {
      MANIMAL_ASSIGN_OR_RETURN(it, tree.SeekToFirst());
    } else {
      MANIMAL_ASSIGN_OR_RETURN(
          it, tree.Seek(r.start_key, r.start_inclusive));
    }
    while (it.Valid()) {
      if (r.has_end) {
        int c = std::string_view(it.key()).compare(r.end_key);
        if (c > 0 || (c == 0 && !r.end_inclusive)) break;
      }
      std::string_view in = it.payload();
      uint64_t block = 0;
      uint32_t idx = 0;
      MANIMAL_RETURN_IF_ERROR(GetVarint64(&in, &block));
      MANIMAL_RETURN_IF_ERROR(GetVarint32(&in, &idx));
      locators.emplace_back(block, idx);
      *index_bytes += it.key().size() + it.payload().size();
      MANIMAL_RETURN_IF_ERROR(it.Next());
    }
  }
  std::sort(locators.begin(), locators.end());
  return locators;
}

class BTreePlan : public InputPlan {
 public:
  static Result<std::unique_ptr<BTreePlan>> Make(
      const ExecutionDescriptor& descriptor, int target_splits) {
    auto plan = std::make_unique<BTreePlan>();
    plan->path_ = descriptor.data_path;
    MANIMAL_ASSIGN_OR_RETURN(
        plan->base_reader_,
        columnar::SeqFileReader::Open(descriptor.base_path));
    MANIMAL_ASSIGN_OR_RETURN(std::shared_ptr<index::BTreeReader> tree,
                             index::BTreeReader::Open(plan->path_));
    plan->file_size_ = tree->file_size();
    MANIMAL_ASSIGN_OR_RETURN(std::vector<ByteRange> ranges,
                             EncodeIntervals(descriptor.intervals));

    // One pass over the index collects every matching locator; sorting
    // by file position then lets splits stream the base file in order,
    // decoding each touched block exactly once job-wide.
    MANIMAL_ASSIGN_OR_RETURN(
        std::vector<Locator> locators,
        CollectLocators(*tree, ranges, &plan->index_bytes_));

    // Chunk into splits, never splitting a base block across two
    // splits (a shared block would decode twice).
    size_t target = std::max(1, target_splits);
    size_t per_split =
        std::max<size_t>(1, (locators.size() + target - 1) / target);
    size_t begin = 0;
    while (begin < locators.size()) {
      size_t end = std::min(locators.size(), begin + per_split);
      while (end < locators.size() &&
             locators[end].first == locators[end - 1].first) {
        ++end;
      }
      plan->slices_.emplace_back(
          locators.begin() + begin, locators.begin() + end);
      begin = end;
    }
    if (plan->slices_.empty()) plan->slices_.emplace_back();
    return plan;
  }

  int num_splits() const override {
    return static_cast<int>(slices_.size());
  }

  Result<std::unique_ptr<InputSplit>> OpenSplit(int i) override {
    MANIMAL_ASSIGN_OR_RETURN(
        columnar::SeqFileReader::BlockAccessor accessor,
        base_reader_->OpenBlockAccessor());
    // The planner's index read cost is attributed to the first split.
    uint64_t index_bytes = (i == 0) ? index_bytes_ : 0;
    return std::unique_ptr<InputSplit>(new BTreeRangeSplit(
        std::move(accessor), slices_.at(i), index_bytes));
  }

  uint64_t total_input_bytes() const override { return file_size_; }

  std::shared_ptr<columnar::SeqFileReader> base_reader_;
  std::string path_;
  uint64_t file_size_ = 0;
  uint64_t index_bytes_ = 0;
  std::vector<std::vector<Locator>> slices_;
};

// ---------------- column groups ----------------

class ColumnGroupSplit : public InputSplit {
 public:
  explicit ColumnGroupSplit(
      columnar::ColumnGroupReader::ZippedStream stream)
      : stream_(std::move(stream)) {}

  Result<bool> Next(int64_t* key, Value* value) override {
    Record record;
    MANIMAL_ASSIGN_OR_RETURN(bool more, stream_.Next(key, &record));
    if (!more) return false;
    *value = Value::List(std::move(record));
    return true;
  }

  uint64_t bytes_read() const override { return stream_.bytes_read(); }

 private:
  columnar::ColumnGroupReader::ZippedStream stream_;
};

class ColumnGroupPlan : public InputPlan {
 public:
  static Result<std::unique_ptr<ColumnGroupPlan>> Make(
      const ExecutionDescriptor& descriptor, int target_splits) {
    auto plan = std::make_unique<ColumnGroupPlan>();
    MANIMAL_ASSIGN_OR_RETURN(
        plan->reader_,
        columnar::ColumnGroupReader::Open(descriptor.data_path));
    plan->selection_ =
        plan->reader_->SelectGroups(descriptor.needed_fields);
    uint64_t blocks = plan->reader_->num_blocks();
    uint64_t chunk = std::max<uint64_t>(
        1, (blocks + target_splits - 1) / std::max(1, target_splits));
    for (uint64_t b = 0; b < blocks; b += chunk) {
      plan->ranges_.emplace_back(b, std::min(blocks, b + chunk));
    }
    if (plan->ranges_.empty()) plan->ranges_.emplace_back(0, 0);
    return plan;
  }

  int num_splits() const override {
    return static_cast<int>(ranges_.size());
  }

  Result<std::unique_ptr<InputSplit>> OpenSplit(int i) override {
    auto [begin, end] = ranges_.at(i);
    MANIMAL_ASSIGN_OR_RETURN(
        columnar::ColumnGroupReader::ZippedStream stream,
        reader_->Scan(selection_, begin, end));
    return std::unique_ptr<InputSplit>(
        new ColumnGroupSplit(std::move(stream)));
  }

  uint64_t total_input_bytes() const override {
    return selection_.bytes;
  }

  std::vector<int> DerivedFieldRemap() const override {
    const Schema& schema = reader_->schema();
    std::vector<int> remap(schema.num_fields(), -1);
    bool identity = static_cast<int>(selection_.stored_fields.size()) ==
                    schema.num_fields();
    for (size_t slot = 0; slot < selection_.stored_fields.size();
         ++slot) {
      remap[selection_.stored_fields[slot]] = static_cast<int>(slot);
      if (selection_.stored_fields[slot] != static_cast<int>(slot)) {
        identity = false;
      }
    }
    if (identity) return {};
    return remap;
  }

  std::shared_ptr<columnar::ColumnGroupReader> reader_;
  columnar::ColumnGroupReader::GroupSelection selection_;
  std::vector<std::pair<uint64_t, uint64_t>> ranges_;
};

}  // namespace

Result<std::unique_ptr<InputPlan>> PlanInput(
    const ExecutionDescriptor& descriptor, int target_splits) {
  switch (descriptor.access_path) {
    case AccessPath::kColumnGroups: {
      MANIMAL_ASSIGN_OR_RETURN(
          std::unique_ptr<ColumnGroupPlan> plan,
          ColumnGroupPlan::Make(descriptor, target_splits));
      return std::unique_ptr<InputPlan>(std::move(plan));
    }
    case AccessPath::kSeqScan: {
      MANIMAL_ASSIGN_OR_RETURN(
          std::shared_ptr<columnar::SeqFileReader> reader,
          columnar::SeqFileReader::Open(descriptor.data_path));
      return std::unique_ptr<InputPlan>(
          new SeqScanPlan(std::move(reader), target_splits));
    }
    case AccessPath::kBTree: {
      if (descriptor.clustered) {
        MANIMAL_ASSIGN_OR_RETURN(
            std::unique_ptr<ClusteredBTreePlan> plan,
            ClusteredBTreePlan::Make(descriptor));
        return std::unique_ptr<InputPlan>(std::move(plan));
      }
      MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<BTreePlan> plan,
                               BTreePlan::Make(descriptor, target_splits));
      return std::unique_ptr<InputPlan>(std::move(plan));
    }
  }
  return Status::Internal("bad access path");
}

Result<std::vector<RecordLocator>> CollectBTreeLocators(
    const std::string& tree_path,
    const std::vector<analyzer::KeyInterval>& intervals,
    uint64_t* index_bytes) {
  MANIMAL_ASSIGN_OR_RETURN(std::shared_ptr<index::BTreeReader> tree,
                           index::BTreeReader::Open(tree_path));
  MANIMAL_ASSIGN_OR_RETURN(std::vector<ByteRange> ranges,
                           EncodeIntervals(intervals));
  return CollectLocators(*tree, ranges, index_bytes);
}

Result<std::unique_ptr<InputSplit>> OpenLocatorSplit(
    std::shared_ptr<columnar::SeqFileReader> base,
    std::vector<RecordLocator> locators, uint64_t charged_bytes) {
  MANIMAL_ASSIGN_OR_RETURN(
      columnar::SeqFileReader::BlockAccessor accessor,
      base->OpenBlockAccessor());
  return std::unique_ptr<InputSplit>(new BTreeRangeSplit(
      std::move(accessor), std::move(locators), charged_bytes));
}

}  // namespace manimal::exec
