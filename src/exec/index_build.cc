#include "exec/index_build.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "analyzer/expr_eval.h"
#include "columnar/codec/selector.h"
#include "columnar/column_groups.h"
#include "columnar/dictionary.h"
#include "columnar/seqfile.h"
#include "common/check.h"
#include "common/coding.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "index/btree.h"
#include "index/external_sorter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serde/key_codec.h"
#include "serde/record_codec.h"
#include "stats/stats.h"

namespace manimal::exec {

namespace {

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Stats collection rides along with every build scan unless
// MANIMAL_STATS=0|off|false opts out.
bool StatsCollectionEnabled() {
  const char* v = std::getenv("MANIMAL_STATS");
  if (v == nullptr || v[0] == '\0') return true;
  return std::strcmp(v, "0") != 0 && std::strcmp(v, "off") != 0 &&
         std::strcmp(v, "false") != 0;
}

// Cap on how many leading record fields get per-field statistics.
constexpr int kMaxStatsFields = 16;

// Maps original field indexes to stored slots given the kept list.
std::vector<int> ToStoredSlots(const std::vector<int>& original_fields,
                               const std::vector<int>& kept) {
  std::vector<int> slots;
  for (int f : original_fields) {
    auto it = std::find(kept.begin(), kept.end(), f);
    if (it != kept.end()) {
      slots.push_back(static_cast<int>(it - kept.begin()));
    }
  }
  return slots;
}

}  // namespace

Result<IndexBuildResult> BuildIndexArtifact(
    const analyzer::IndexGenProgram& spec, const std::string& input_path,
    const std::string& artifact_dir, const std::string& temp_dir) {
  MANIMAL_RETURN_IF_ERROR(CreateDirIfMissing(artifact_dir));
  MANIMAL_RETURN_IF_ERROR(CreateDirIfMissing(temp_dir));
  obs::ScopedSpan build_span("index.build", "index");
  build_span.AddArg("spec", spec.Describe());
  obs::MetricsRegistry::Get().GetCounter("index.builds")->Increment();
  Stopwatch watch;

  MANIMAL_ASSIGN_OR_RETURN(
      std::shared_ptr<columnar::SeqFileReader> reader,
      columnar::SeqFileReader::Open(input_path));
  if (!reader->meta().IsPlain()) {
    return Status::InvalidArgument(
        "index generation expects a plain input file");
  }
  const Schema& input_schema = reader->meta().original_schema;
  if (input_schema.ToString() != spec.input_schema) {
    return Status::InvalidArgument(
        "index spec schema does not match input file schema");
  }
  if (spec.btree && spec.key_expr == nullptr) {
    return Status::InvalidArgument("btree spec without key expression");
  }
  if (spec.btree && spec.delta) {
    return Status::NotSupported(
        "selection and delta-compression do not combine (paper fn. 3)");
  }
  if (spec.btree && spec.dictionary) {
    return Status::NotSupported(
        "B+Tree artifacts keep true strings; no dictionary combo");
  }

  // Artifact naming: content-addressed by signature.
  const std::string tag =
      StrPrintf("%016llx", static_cast<unsigned long long>(
                               Fnv1a(spec.Signature() + input_path)));

  // Stored layout after projection.
  std::vector<int> kept;
  if (spec.projection) {
    kept = spec.kept_fields;
  } else if (!input_schema.opaque()) {
    for (int i = 0; i < input_schema.num_fields(); ++i) kept.push_back(i);
  }
  Schema stored_schema = input_schema.opaque()
                             ? input_schema
                             : input_schema.Project(kept);

  IndexBuildResult result;
  result.entry.input_file = input_path;
  result.entry.signature = spec.Signature();
  MANIMAL_ASSIGN_OR_RETURN(result.entry.input_bytes,
                           GetFileSize(input_path));

  auto project_record = [&](const Record& full) {
    if (input_schema.opaque() || !spec.projection) return full;
    Record out;
    out.reserve(kept.size());
    for (int f : kept) out.push_back(full[f]);
    return out;
  };

  // Per-column statistics (src/stats/) ride along with the build scan:
  // "field:<i>" columns for leading scalar record fields, plus an
  // "expr:<key expr>" column fed the B+Tree's already-encoded index
  // key. The sidecar lands next to the artifact and the catalog entry
  // points at it; the cost model estimates predicate selectivity from
  // these instead of the root-fanout heuristic.
  stats::TableStatsCollector stats_collector;
  const bool collect_stats = StatsCollectionEnabled();
  std::vector<stats::ColumnStatsCollector*> field_stats;
  if (collect_stats && !input_schema.opaque()) {
    const int nfields = std::min(input_schema.num_fields(), kMaxStatsFields);
    field_stats.reserve(nfields);
    for (int i = 0; i < nfields; ++i) {
      field_stats.push_back(
          stats_collector.Column("field:" + std::to_string(i)));
    }
  }
  stats::ColumnStatsCollector* key_stats =
      collect_stats && spec.btree
          ? stats_collector.Column("expr:" + spec.key_expr->ToString())
          : nullptr;
  std::string field_key_bytes;
  auto observe_record = [&](const Record& record) {
    if (!collect_stats) return;
    stats_collector.CountRow();
    for (size_t i = 0; i < field_stats.size() && i < record.size(); ++i) {
      field_key_bytes.clear();
      // Non-scalar fields are not key-encodable; skip them.
      if (!EncodeOrderedKey(record[i], &field_key_bytes).ok()) continue;
      field_stats[i]->Add(field_key_bytes);
    }
  };
  auto finish_stats = [&]() -> Status {
    if (!collect_stats || result.records == 0) return Status::OK();
    const std::string stats_path = artifact_dir + "/stats-" + tag + ".json";
    MANIMAL_RETURN_IF_ERROR(
        stats_collector.Finish().SaveTo(stats_path + ".inprogress"));
    MANIMAL_RETURN_IF_ERROR(
        RenameFile(stats_path + ".inprogress", stats_path));
    result.entry.stats_path = stats_path;
    return Status::OK();
  };

  if (spec.column_groups) {
    // Split the input's columns across row-aligned sibling files
    // (§2.1 column groups); one scan feeds every group writer.
    const std::string manifest_path =
        artifact_dir + "/cgroups-" + tag + ".cgs";
    MANIMAL_ASSIGN_OR_RETURN(
        std::unique_ptr<columnar::ColumnGroupWriter> writer,
        columnar::ColumnGroupWriter::Create(manifest_path, input_schema,
                                            spec.grouping));
    MANIMAL_ASSIGN_OR_RETURN(columnar::SeqFileReader::RecordStream stream,
                             reader->ScanAll());
    int64_t key = 0;
    Record record;
    for (;;) {
      MANIMAL_ASSIGN_OR_RETURN(bool more, stream.Next(&key, &record));
      if (!more) break;
      observe_record(record);
      MANIMAL_RETURN_IF_ERROR(writer->Append(key, record));
      ++result.records;
    }
    MANIMAL_ASSIGN_OR_RETURN(uint64_t bytes, writer->Finish());
    result.entry.artifact_path = manifest_path;
    result.entry.artifact_bytes = bytes;
    MANIMAL_RETURN_IF_ERROR(finish_stats());
    result.seconds = watch.ElapsedSeconds();
    return result;
  }

  if (spec.btree) {
    // Scan -> evaluate key expr -> external sort -> bulk load. The
    // tree stores (index key -> record locator); locators point into
    // the raw input, or into a projected sibling copy written here
    // when the spec combines selection with projection. This is what
    // keeps selection indexes tiny (Table 2: 0.1% space overhead).
    index::ExternalSorter::Options sort_opts;
    sort_opts.temp_dir = temp_dir;
    sort_opts.metric_label = "index_sort";
    index::ExternalSorter sorter(sort_opts);

    // Artifacts are written to a temp sibling and renamed into place
    // once complete, so a crashed build never leaves a torn artifact
    // at a path the catalog could later trust.
    std::unique_ptr<columnar::SeqFileWriter> sibling;
    std::string sibling_path;
    if (spec.projection && !spec.clustered) {
      sibling_path = artifact_dir + "/base-" + tag + ".msq";
      columnar::SeqFileMeta meta;
      meta.original_schema = input_schema;
      meta.stored_schema = stored_schema;
      meta.field_map = kept;
      meta.has_key_slot = true;
      MANIMAL_ASSIGN_OR_RETURN(
          sibling, columnar::SeqFileWriter::Create(
                       sibling_path + ".inprogress", meta));
    }

    MANIMAL_ASSIGN_OR_RETURN(columnar::SeqFileReader::RecordStream stream,
                             reader->ScanAll());
    int64_t key = 0;
    Record record;
    for (;;) {
      MANIMAL_ASSIGN_OR_RETURN(bool more, stream.Next(&key, &record));
      if (!more) break;
      Value value = input_schema.opaque() ? record[0]
                                          : Value::List(record);
      MANIMAL_ASSIGN_OR_RETURN(
          Value index_key,
          analyzer::EvalExpr(spec.key_expr, Value::I64(key), value));
      std::string key_bytes;
      MANIMAL_RETURN_IF_ERROR(EncodeOrderedKey(index_key, &key_bytes));
      observe_record(record);
      if (key_stats != nullptr) key_stats->Add(key_bytes);
      std::string payload;
      if (spec.clustered) {
        // Embed the (projected) record itself, prefixed by its
        // original map() key.
        PutVarintSigned(&payload, key);
        MANIMAL_RETURN_IF_ERROR(EncodeRecord(
            stored_schema, project_record(record), &payload));
      } else {
        uint64_t block;
        uint32_t idx;
        if (sibling != nullptr) {
          MANIMAL_RETURN_IF_ERROR(
              sibling->Append(key, project_record(record)));
          block = sibling->last_block();
          idx = sibling->last_index_in_block();
        } else {
          block = stream.current_block();
          idx = stream.current_index_in_block();
        }
        PutVarint64(&payload, block);
        PutVarint32(&payload, idx);
      }
      MANIMAL_RETURN_IF_ERROR(sorter.Add(key_bytes, payload));
      ++result.records;
    }

    uint64_t sibling_bytes = 0;
    if (spec.clustered) {
      result.entry.base_path = "";
    } else if (sibling != nullptr) {
      MANIMAL_ASSIGN_OR_RETURN(sibling_bytes, sibling->Finish());
      MANIMAL_RETURN_IF_ERROR(
          RenameFile(sibling_path + ".inprogress", sibling_path));
      result.entry.base_path = sibling_path;
    } else {
      result.entry.base_path = input_path;
    }

    const std::string artifact_path =
        artifact_dir + "/btree-" + tag + ".idx";
    MANIMAL_ASSIGN_OR_RETURN(
        std::unique_ptr<index::BTreeBuilder> builder,
        index::BTreeBuilder::Create(artifact_path + ".inprogress"));
    MANIMAL_ASSIGN_OR_RETURN(std::unique_ptr<index::SortedStream> sorted,
                             sorter.Finish());
    while (sorted->Valid()) {
      MANIMAL_RETURN_IF_ERROR(
          builder->Add(sorted->key(), sorted->payload()));
      MANIMAL_RETURN_IF_ERROR(sorted->Next());
    }
    MANIMAL_ASSIGN_OR_RETURN(uint64_t bytes, builder->Finish());
    MANIMAL_RETURN_IF_ERROR(
        RenameFile(artifact_path + ".inprogress", artifact_path));
    result.entry.artifact_path = artifact_path;
    result.entry.artifact_bytes = bytes + sibling_bytes;
  } else {
    // Re-encoded SeqFile artifact (projection / delta / dictionary).
    columnar::SeqFileMeta meta;
    meta.original_schema = input_schema;
    meta.stored_schema = stored_schema;
    meta.field_map = input_schema.opaque() ? std::vector<int>{0} : kept;
    meta.has_key_slot = true;
    if (spec.delta) {
      meta.delta_slots = ToStoredSlots(spec.delta_fields, kept);
    }
    std::string dict_path;
    columnar::DictionaryBuilder dict_builder;
    if (spec.dictionary) {
      meta.dict_slots = ToStoredSlots(spec.dict_fields, kept);
      dict_path = artifact_dir + "/dict-" + tag + ".dict";
      meta.dict_path = dict_path;
    }
    const std::string artifact_path =
        artifact_dir + "/seq-" + tag + ".msq";

    // Per-column codec-chain selection (columnar/codec/selector.h):
    // sample a prefix of the stored records, sketch their columns,
    // and pick the block codec chain before the writer is created.
    // The policy (MANIMAL_CODECS) applies to re-encoded artifacts
    // only — raw/base files stay in the v1 format.
    MANIMAL_ASSIGN_OR_RETURN(columnar::CodecPolicy codec_policy,
                             columnar::CodecPolicy::FromEnv());
    columnar::CodecSelector selector(codec_policy, meta);

    MANIMAL_ASSIGN_OR_RETURN(columnar::SeqFileReader::RecordStream stream,
                             reader->ScanAll());
    int64_t key = 0;
    Record record;
    std::vector<std::pair<int64_t, Record>> sampled;
    bool exhausted = false;
    while (sampled.size() < columnar::CodecSelector::kSampleCap) {
      MANIMAL_ASSIGN_OR_RETURN(bool more, stream.Next(&key, &record));
      if (!more) {
        exhausted = true;
        break;
      }
      Record stored = project_record(record);
      selector.Observe(stored);
      observe_record(record);
      sampled.emplace_back(key, std::move(stored));
    }
    const columnar::CodecSelection codec_sel = selector.Choose();
    build_span.AddArg("codec", codec_sel.reason);

    columnar::SeqFileWriter::Options writer_options;
    writer_options.codec_chain = codec_sel.chain;
    writer_options.skip_frames = codec_sel.skip_frames;
    MANIMAL_ASSIGN_OR_RETURN(
        std::unique_ptr<columnar::SeqFileWriter> writer,
        columnar::SeqFileWriter::Create(artifact_path + ".inprogress",
                                        meta, writer_options));
    if (spec.dictionary) writer->set_dict_builder(&dict_builder);

    for (auto& [skey, stored] : sampled) {
      MANIMAL_RETURN_IF_ERROR(writer->Append(skey, stored));
      ++result.records;
    }
    sampled.clear();
    while (!exhausted) {
      MANIMAL_ASSIGN_OR_RETURN(bool more, stream.Next(&key, &record));
      if (!more) break;
      observe_record(record);
      MANIMAL_RETURN_IF_ERROR(
          writer->Append(key, project_record(record)));
      ++result.records;
    }
    result.entry.codec_chain = codec_sel.chain;
    result.entry.raw_bytes = writer->raw_body_bytes();
    MANIMAL_ASSIGN_OR_RETURN(uint64_t bytes, writer->Finish());
    MANIMAL_RETURN_IF_ERROR(
        RenameFile(artifact_path + ".inprogress", artifact_path));
    if (spec.dictionary) {
      MANIMAL_RETURN_IF_ERROR(dict_builder.Save(dict_path + ".inprogress"));
      MANIMAL_RETURN_IF_ERROR(
          RenameFile(dict_path + ".inprogress", dict_path));
      MANIMAL_ASSIGN_OR_RETURN(uint64_t dict_bytes,
                               GetFileSize(dict_path));
      bytes += dict_bytes;
      result.entry.dict_path = dict_path;
    }
    result.entry.artifact_path = artifact_path;
    result.entry.artifact_bytes = bytes;
  }

  MANIMAL_RETURN_IF_ERROR(finish_stats());
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace manimal::exec
