#include "analyzer/compression.h"

#include <algorithm>

#include "analysis/cfg.h"
#include "analysis/expr_recovery.h"
#include "analysis/reaching_defs.h"
#include "analysis/side_effects.h"

namespace manimal::analyzer {

using analysis::Cfg;
using analysis::Expr;
using analysis::ExprRecovery;
using analysis::ReachingDefs;
using mril::Opcode;
using mril::ValueParamKind;

DeltaResult FindDeltaCompression(const mril::Program& program) {
  DeltaResult result;
  if (program.value_param_kind == ValueParamKind::kOpaque) {
    result.miss_reason =
        "map() value parameter uses a custom serialization format; the "
        "analyzer cannot tell which bytes form numeric fields";
    return result;
  }
  // The delta codec stores integer run differences; i64 fields are the
  // candidates (floating-point deltas do not compress losslessly into
  // fewer bytes).
  std::vector<int> numeric;
  for (int i = 0; i < program.value_schema.num_fields(); ++i) {
    if (program.value_schema.field(i).type == FieldType::kI64) {
      numeric.push_back(i);
    }
  }
  if (numeric.empty()) {
    result.no_numeric_fields = true;
    return result;
  }
  DeltaCompressionDescriptor desc;
  desc.numeric_fields = std::move(numeric);
  result.descriptor = std::move(desc);
  return result;
}

namespace {

// True if `e` is exactly Field(value-param, field).
bool IsValueField(const ExprRef& e, int field) {
  return e != nullptr && e->kind == Expr::Kind::kField &&
         e->index == field && !e->args.empty() &&
         e->args[0]->kind == Expr::Kind::kParam &&
         e->args[0]->index == mril::kMapValueParam;
}

bool IsAnyValueField(const ExprRef& e, int* field) {
  if (e != nullptr && e->kind == Expr::Kind::kField && !e->args.empty() &&
      e->args[0]->kind == Expr::Kind::kParam &&
      e->args[0]->index == mril::kMapValueParam) {
    *field = e->index;
    return true;
  }
  return false;
}

// Per-field accumulated evidence.
struct FieldUses {
  bool ineligible = false;
  std::string reason;
  bool used_at_all = false;
  std::vector<DirectOperationDescriptor::ConstPatch> patches;
};

// The context an expression tree was consumed in.
enum class UseContext { kEmitKey, kEmitValue, kCondition, kMemberStore,
                        kLog };

bool IsEqualityNode(const ExprRef& e) {
  if (e == nullptr) return false;
  if (e->kind == Expr::Kind::kOp &&
      (e->op == Opcode::kCmpEq || e->op == Opcode::kCmpNe)) {
    return true;
  }
  if (e->kind == Expr::Kind::kCall && e->builtin != nullptr &&
      e->builtin->name == "str.equals") {
    return true;
  }
  return false;
}

// Walks `node` looking for uses of value-param fields; `parent` is the
// immediate consumer (null at the root).
void ScanUses(const ExprRef& node, const ExprRef& parent,
              UseContext context, bool is_root,
              std::vector<FieldUses>* uses) {
  if (node == nullptr) return;
  int field = -1;
  if (IsAnyValueField(node, &field)) {
    if (field < 0 || field >= static_cast<int>(uses->size())) return;
    FieldUses& fu = (*uses)[field];
    fu.used_at_all = true;
    if (fu.ineligible) return;

    // Case 1: the field IS the emitted key.
    if (context == UseContext::kEmitKey && is_root) return;

    // Case 2: operand of an equality test whose other operand is the
    // same field or a string constant.
    if (parent != nullptr && IsEqualityNode(parent) &&
        parent->args.size() == 2) {
      const ExprRef& other = (parent->args[0].get() == node.get())
                                 ? parent->args[1]
                                 : parent->args[0];
      if (IsValueField(other, field)) return;
      if (other != nullptr && other->kind == Expr::Kind::kConst &&
          other->constant.is_str()) {
        uses->at(field).patches.push_back(
            DirectOperationDescriptor::ConstPatch{field,
                                                  other->origin_pc});
        return;
      }
      fu.ineligible = true;
      fu.reason = "equality test against a non-constant expression";
      return;
    }

    // Log operands are modifiable output (Appendix C); a compressed
    // code in a debug log is acceptable.
    if (context == UseContext::kLog) return;

    fu.ineligible = true;
    switch (context) {
      case UseContext::kEmitValue:
        fu.reason = "field flows into emitted values";
        break;
      case UseContext::kMemberStore:
        fu.reason = "field flows into member state";
        break;
      default:
        fu.reason = "field used in a non-equality operation";
        break;
    }
    return;
  }
  // Not a field leaf; recurse.
  for (const ExprRef& a : node->args) {
    ScanUses(a, node, context, /*is_root=*/false, uses);
  }
}

}  // namespace

DirectOpResult FindDirectOperation(const mril::Program& program) {
  DirectOpResult result;
  const mril::Function& fn = program.map_fn;

  if (program.value_param_kind == ValueParamKind::kOpaque) {
    result.miss_reason = "opaque value parameter";
    return result;
  }

  // Impure calls can launder field values into untracked state.
  for (const analysis::SideEffect& se : analysis::FindSideEffects(fn)) {
    if (se.kind == analysis::SideEffectKind::kImpureCall) {
      result.miss_reason =
          "map() " + se.description + "; field uses cannot be enumerated";
      return result;
    }
  }

  const int num_fields = program.value_schema.num_fields();
  std::vector<int> str_fields;
  for (int i = 0; i < num_fields; ++i) {
    if (program.value_schema.field(i).type == FieldType::kStr) {
      str_fields.push_back(i);
    }
  }
  if (str_fields.empty()) {
    result.no_eligible_fields = true;
    return result;
  }

  Cfg cfg = Cfg::Build(fn);
  ReachingDefs reaching(fn, cfg);
  ExprRecovery recovery(program, fn, cfg, reaching);

  std::vector<FieldUses> uses(num_fields);

  bool emit_key_allowed = !program.requires_sorted_output;
  if (!program.reduce_fn.has_value()) {
    // Map-only job: map emissions ARE the final output, so a
    // compressed code in the emit key would leak to the user.
    emit_key_allowed = false;
  } else {
    // If reduce() reads its key parameter, a compressed code could
    // leak into program output; conservatively disallow emit-key use
    // then.
    for (const mril::Instruction& inst : program.reduce_fn->code) {
      if (inst.op == Opcode::kLoadParam &&
          inst.operand == mril::kReduceKeyParam) {
        emit_key_allowed = false;
        break;
      }
    }
  }

  for (int pc = 0; pc < static_cast<int>(fn.code.size()); ++pc) {
    const mril::Instruction& inst = fn.code[pc];
    switch (inst.op) {
      case Opcode::kEmit: {
        auto [key_expr, value_expr] = recovery.EmitOperands(pc);
        ScanUses(key_expr, nullptr,
                 emit_key_allowed ? UseContext::kEmitKey
                                  : UseContext::kEmitValue,
                 /*is_root=*/true, &uses);
        ScanUses(value_expr, nullptr, UseContext::kEmitValue, true, &uses);
        break;
      }
      case Opcode::kJmpIfTrue:
      case Opcode::kJmpIfFalse:
        ScanUses(recovery.BranchCondition(pc), nullptr,
                 UseContext::kCondition, true, &uses);
        break;
      case Opcode::kStoreMember:
        ScanUses(recovery.StoredValue(pc), nullptr,
                 UseContext::kMemberStore, true, &uses);
        break;
      case Opcode::kLog:
        ScanUses(recovery.LogOperand(pc), nullptr, UseContext::kLog, true,
                 &uses);
        break;
      case Opcode::kStoreLocal:
        // Locals are expanded at their use sites by ExprRecovery;
        // nothing to scan here.
        break;
      default:
        break;
    }
  }

  DirectOperationDescriptor desc;
  for (int f : str_fields) {
    const FieldUses& fu = uses[f];
    if (fu.used_at_all && !fu.ineligible) {
      desc.fields.push_back(f);
      for (const auto& p : fu.patches) desc.const_patches.push_back(p);
    }
  }
  if (desc.fields.empty()) {
    result.no_eligible_fields = true;
    return result;
  }
  result.descriptor = std::move(desc);
  return result;
}

}  // namespace manimal::analyzer
