#include "analyzer/expr_eval.h"

#include "common/strings.h"
#include "mril/opcode.h"

namespace manimal::analyzer {

using analysis::Expr;
using mril::Opcode;

namespace {

Result<Value> EvalOp(Opcode op, const std::vector<Value>& args) {
  auto need = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::Internal("bad operand count in expression");
    }
    return Status::OK();
  };
  switch (op) {
    case Opcode::kNeg: {
      MANIMAL_RETURN_IF_ERROR(need(1));
      if (args[0].is_i64()) return Value::I64(-args[0].i64());
      if (args[0].is_f64()) return Value::F64(-args[0].f64());
      return Status::InvalidArgument("neg: non-numeric");
    }
    case Opcode::kNot: {
      MANIMAL_RETURN_IF_ERROR(need(1));
      if (!args[0].is_bool()) return Status::InvalidArgument("not: non-bool");
      return Value::Bool(!args[0].bool_value());
    }
    default:
      break;
  }
  MANIMAL_RETURN_IF_ERROR(need(2));
  const Value& a = args[0];
  const Value& b = args[1];
  switch (op) {
    case Opcode::kAdd:
      if (a.is_str() && b.is_str()) {
        return Value::Str(std::string(a.str()) + std::string(b.str()));
      }
      [[fallthrough]];
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod: {
      if (!a.is_numeric() || !b.is_numeric()) {
        return Status::InvalidArgument("arith: non-numeric");
      }
      if (a.is_i64() && b.is_i64()) {
        int64_t x = a.i64(), y = b.i64();
        // Defined wrapping, matching the VM exactly.
        auto wrap = [](uint64_t v) { return static_cast<int64_t>(v); };
        switch (op) {
          case Opcode::kAdd:
            return Value::I64(wrap(static_cast<uint64_t>(x) +
                                   static_cast<uint64_t>(y)));
          case Opcode::kSub:
            return Value::I64(wrap(static_cast<uint64_t>(x) -
                                   static_cast<uint64_t>(y)));
          case Opcode::kMul:
            return Value::I64(wrap(static_cast<uint64_t>(x) *
                                   static_cast<uint64_t>(y)));
          case Opcode::kDiv:
            if (y == 0) return Status::InvalidArgument("div by zero");
            return Value::I64(x / y);
          case Opcode::kMod:
            if (y == 0) return Status::InvalidArgument("mod by zero");
            return Value::I64(x % y);
          default:
            break;
        }
      }
      double x = a.AsF64(), y = b.AsF64();
      switch (op) {
        case Opcode::kAdd:
          return Value::F64(x + y);
        case Opcode::kSub:
          return Value::F64(x - y);
        case Opcode::kMul:
          return Value::F64(x * y);
        case Opcode::kDiv:
          return Value::F64(x / y);
        default:
          return Status::InvalidArgument("mod on doubles");
      }
    }
    case Opcode::kCmpEq:
      return Value::Bool(a == b);
    case Opcode::kCmpNe:
      return Value::Bool(!(a == b));
    case Opcode::kCmpLt:
      return Value::Bool(a.Compare(b) < 0);
    case Opcode::kCmpLe:
      return Value::Bool(a.Compare(b) <= 0);
    case Opcode::kCmpGt:
      return Value::Bool(a.Compare(b) > 0);
    case Opcode::kCmpGe:
      return Value::Bool(a.Compare(b) >= 0);
    case Opcode::kAnd:
    case Opcode::kOr: {
      if (!a.is_bool() || !b.is_bool()) {
        return Status::InvalidArgument("and/or: non-bool");
      }
      bool r = (op == Opcode::kAnd) ? (a.bool_value() && b.bool_value())
                                    : (a.bool_value() || b.bool_value());
      return Value::Bool(r);
    }
    default:
      return Status::Internal("unexpected opcode in expression");
  }
}

}  // namespace

Result<Value> EvalExpr(const ExprRef& expr, const Value& key,
                       const Value& value) {
  if (expr == nullptr) return Status::Internal("null expression");
  switch (expr->kind) {
    case Expr::Kind::kConst:
      return expr->constant;
    case Expr::Kind::kParam:
      if (expr->index == 0) return key;
      if (expr->index == 1) return value;
      return Status::Internal("bad param index in expression");
    case Expr::Kind::kField: {
      MANIMAL_ASSIGN_OR_RETURN(Value base,
                               EvalExpr(expr->args.at(0), key, value));
      if (!base.is_list()) {
        return Status::InvalidArgument("field access on non-record");
      }
      if (expr->index < 0 ||
          static_cast<size_t>(expr->index) >= base.list().size()) {
        return Status::InvalidArgument("field index out of range");
      }
      return base.list()[expr->index];
    }
    case Expr::Kind::kMember:
      return Status::InvalidArgument(
          "cannot evaluate member-dependent expression");
    case Expr::Kind::kUnknown:
      return Status::InvalidArgument("cannot evaluate unknown expression");
    case Expr::Kind::kOp: {
      std::vector<Value> args;
      args.reserve(expr->args.size());
      for (const ExprRef& a : expr->args) {
        MANIMAL_ASSIGN_OR_RETURN(Value v, EvalExpr(a, key, value));
        args.push_back(std::move(v));
      }
      return EvalOp(expr->op, args);
    }
    case Expr::Kind::kCall: {
      if (expr->builtin == nullptr || !expr->builtin->functional) {
        return Status::InvalidArgument("cannot evaluate impure call");
      }
      std::vector<Value> args;
      args.reserve(expr->args.size());
      for (const ExprRef& a : expr->args) {
        MANIMAL_ASSIGN_OR_RETURN(Value v, EvalExpr(a, key, value));
        args.push_back(std::move(v));
      }
      Value out;
      MANIMAL_RETURN_IF_ERROR(expr->builtin->fn(args.data(), &out));
      return out;
    }
  }
  return Status::Internal("bad expression kind");
}

Result<bool> EvalFormula(const DnfFormula& formula, const Value& key,
                         const Value& value) {
  for (const Conjunct& c : formula.disjuncts) {
    bool all = true;
    for (const SelectTerm& t : c.terms) {
      MANIMAL_ASSIGN_OR_RETURN(Value v, EvalExpr(t.expr, key, value));
      if (!v.is_bool()) {
        return Status::InvalidArgument("non-boolean selection term");
      }
      if (v.bool_value() != t.polarity) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

}  // namespace manimal::analyzer
