// Projection detection — the Figure 6 algorithm.
//
// findProject enumerates the input-record fields that can influence
// the program's final output: fields appearing in emitted data, in
// conditions guarding emits, or flowing into any state the analyzer
// cannot track (member writes, impure library calls). Everything else
// — including fields used only for debug logging — is reported
// unneeded, because "other reasons to use inputs – log messages,
// debugging text, etc – we optimize away" (Appendix C).
//
// The analysis fails (finds nothing) on opaque value parameters: a
// custom serialization format carries no field boundaries the analyzer
// can see (Benchmark 1's AbstractTuple, Table 1).

#ifndef MANIMAL_ANALYZER_PROJECT_H_
#define MANIMAL_ANALYZER_PROJECT_H_

#include <optional>
#include <string>

#include "analyzer/descriptor.h"
#include "mril/program.h"

namespace manimal::analyzer {

struct ProjectResult {
  // Set when at least one field is provably unneeded.
  std::optional<ProjectionDescriptor> descriptor;
  // Why nothing was found (empty when all fields are genuinely used —
  // "not present" rather than a detection failure).
  std::string miss_reason;
  // True when analysis succeeded and every field is used.
  bool all_fields_used = false;
};

// `logs_are_uses` is the safe-mode variant (paper fn. 2): fields that
// feed debug logging count as live so optimization never perturbs log
// output.
ProjectResult FindProject(const mril::Program& program,
                          bool logs_are_uses);
ProjectResult FindProject(const mril::Program& program);

}  // namespace manimal::analyzer

#endif  // MANIMAL_ANALYZER_PROJECT_H_
