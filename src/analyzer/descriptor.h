// Optimization descriptors — the analyzer's output (paper §2.2 Step 1:
// "The resulting optimization descriptor list has, for each applicable
// optimization, a label that identifies the optimization and
// optimization-specific parameters").

#ifndef MANIMAL_ANALYZER_DESCRIPTOR_H_
#define MANIMAL_ANALYZER_DESCRIPTOR_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/expr.h"
#include "analysis/side_effects.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace manimal::analyzer {

using analysis::ExprRef;

// One literal of the emit condition: `expr` must evaluate to
// `polarity`.
struct SelectTerm {
  ExprRef expr;
  bool polarity = true;

  std::string ToString() const;
};

// A conjunction of terms; an empty conjunct is `true`.
struct Conjunct {
  std::vector<SelectTerm> terms;

  std::string ToString() const;
};

// Disjunctive normal form over emit-path conditions (Figure 3's dnf).
// No disjuncts means `false` (map never emits); a disjunct with no
// terms means `true`.
struct DnfFormula {
  std::vector<Conjunct> disjuncts;

  bool IsAlwaysTrue() const {
    for (const Conjunct& c : disjuncts) {
      if (c.terms.empty()) return true;
    }
    return false;
  }
  bool IsNever() const { return disjuncts.empty(); }

  std::string ToString() const;
};

// Half-open/closed interval over index-key values; unset bound means
// unbounded. Used to turn the DNF into B+Tree range scans.
struct KeyInterval {
  std::optional<Value> lo;
  bool lo_inclusive = true;
  std::optional<Value> hi;
  bool hi_inclusive = true;

  bool Contains(const Value& v) const;
  std::string ToString() const;
};

// SELECT: map() emits only when `formula` holds (paper §2.1/§3.2).
struct SelectionDescriptor {
  DnfFormula formula;

  // When the formula constrains a single expression against constants,
  // that expression becomes the B+Tree key and `intervals` is a union
  // of ranges covering every record that can satisfy the formula
  // (records outside provably fail it). When not range-indexable,
  // `indexed_expr` is null and the selection is detected but cannot be
  // exploited with a B+Tree.
  ExprRef indexed_expr;
  std::vector<KeyInterval> intervals;

  bool indexable() const { return indexed_expr != nullptr; }
  std::string ToString() const;
};

// PROJECT: fields of the input record the map() provably never needs
// (Figure 6's paramFields - usedFields).
struct ProjectionDescriptor {
  std::vector<int> used_fields;      // ascending
  std::vector<int> unneeded_fields;  // ascending

  std::string ToString() const;
};

// DELTA-COMPRESSION: numeric input fields eligible for delta encoding
// (Appendix C).
struct DeltaCompressionDescriptor {
  std::vector<int> numeric_fields;

  std::string ToString() const;
};

// DIRECT-OPERATION: string input fields used only in
// equality-preserving ways, eligible for dictionary compression
// without decompression (Appendix C / Appendix D Table 6).
struct DirectOperationDescriptor {
  std::vector<int> fields;

  // map()-bytecode load_const sites whose string constant is compared
  // for equality against a compressed field; the optimizer rewrites
  // each to the constant's dictionary code when preparing the
  // "potentially-modified copy of the user's original program"
  // (paper §2).
  struct ConstPatch {
    int field = -1;
    int load_const_pc = -1;
  };
  std::vector<ConstPatch> const_patches;

  std::string ToString() const;
};

// Why a particular optimization was not detected — surfaced to users
// and asserted on by the Table 1 recall bench.
struct MissReason {
  std::string optimization;  // "selection" / "projection" / ...
  std::string reason;
};

// Appendix E extension: a conjunction of key-only literals every
// emitting reduce group satisfies; map outputs failing it are deleted
// before the shuffle.
struct ReduceFilterDescriptor {
  Conjunct required;

  std::string ToString() const;
};

// The analyzer's full report for one program.
struct AnalysisReport {
  std::optional<SelectionDescriptor> selection;
  std::optional<ProjectionDescriptor> projection;
  std::optional<DeltaCompressionDescriptor> delta;
  std::optional<DirectOperationDescriptor> direct_op;
  std::optional<ReduceFilterDescriptor> reduce_filter;

  std::vector<MissReason> misses;
  std::vector<analysis::SideEffect> side_effects;

  std::string ToString() const;
};

}  // namespace manimal::analyzer

#endif  // MANIMAL_ANALYZER_DESCRIPTOR_H_
