#include "analyzer/reduce_filter.h"

#include "analysis/cfg.h"
#include "analysis/expr_recovery.h"
#include "analysis/reaching_defs.h"
#include "analysis/side_effects.h"

namespace manimal::analyzer {

using analysis::Cfg;
using analysis::Expr;
using analysis::ExprRecovery;
using analysis::ReachingDefs;
using mril::Opcode;

namespace {

// True iff the expression depends only on the reduce's KEY parameter
// and constants, through functional operations (so its value is fixed
// for the whole group).
bool IsKeyOnlyFunctional(const ExprRef& expr) {
  if (expr == nullptr) return false;
  switch (expr->kind) {
    case Expr::Kind::kConst:
      return true;
    case Expr::Kind::kParam:
      return expr->index == mril::kReduceKeyParam;
    case Expr::Kind::kMember:
    case Expr::Kind::kUnknown:
      return false;
    case Expr::Kind::kField:
    case Expr::Kind::kOp:
      for (const ExprRef& a : expr->args) {
        if (!IsKeyOnlyFunctional(a)) return false;
      }
      return true;
    case Expr::Kind::kCall:
      if (expr->builtin == nullptr || !expr->builtin->functional) {
        return false;
      }
      for (const ExprRef& a : expr->args) {
        if (!IsKeyOnlyFunctional(a)) return false;
      }
      return true;
  }
  return false;
}

// Can any emit be reached from the entry block when the given edge is
// deleted?
bool EmitsReachableWithoutEdge(const Cfg& cfg, const mril::Function& fn,
                               int banned_edge) {
  std::vector<bool> seen(cfg.blocks().size(), false);
  std::vector<int> worklist = {cfg.entry_block()};
  seen[cfg.entry_block()] = true;
  while (!worklist.empty()) {
    int b = worklist.back();
    worklist.pop_back();
    const analysis::BasicBlock& bb = cfg.block(b);
    for (int pc = bb.first_pc; pc <= bb.last_pc; ++pc) {
      if (fn.code[pc].op == Opcode::kEmit) return true;
    }
    for (int eid : bb.succ_edges) {
      if (eid == banned_edge) continue;
      int to = cfg.edge(eid).to;
      if (!seen[to]) {
        seen[to] = true;
        worklist.push_back(to);
      }
    }
  }
  return false;
}

}  // namespace

ReduceFilterResult FindReduceKeyFilter(const mril::Program& program) {
  ReduceFilterResult result;
  if (!program.reduce_fn.has_value()) {
    result.miss_reason = "program has no reduce()";
    return result;
  }
  const mril::Function& fn = *program.reduce_fn;

  // Skipping entire reduce invocations must not perturb persistent
  // state other groups could observe.
  if (analysis::HasMemberWrites(fn)) {
    result.miss_reason =
        "reduce() writes member variables; group skipping would "
        "change cross-group state";
    return result;
  }
  bool any_emit = false;
  for (const mril::Instruction& inst : fn.code) {
    if (inst.op == Opcode::kEmit) any_emit = true;
  }
  if (!any_emit) {
    result.miss_reason = "reduce() never emits";
    return result;
  }

  Cfg cfg = Cfg::Build(fn);
  ReachingDefs reaching(fn, cfg);
  ExprRecovery recovery(program, fn, cfg, reaching);

  Conjunct required;
  for (int eid = 0; eid < static_cast<int>(cfg.edges().size()); ++eid) {
    const analysis::CfgEdge& edge = cfg.edge(eid);
    if (edge.kind != analysis::EdgeKind::kTrue &&
        edge.kind != analysis::EdgeKind::kFalse) {
      continue;
    }
    ExprRef cond = recovery.BranchCondition(edge.branch_pc);
    if (!IsKeyOnlyFunctional(cond)) continue;
    // If removing this polarity's edge severs all emits, every
    // emitting group takes it: the condition must equal the edge's
    // polarity.
    if (!EmitsReachableWithoutEdge(cfg, fn, eid)) {
      bool polarity = edge.kind == analysis::EdgeKind::kTrue;
      bool duplicate = false;
      for (const SelectTerm& t : required.terms) {
        if (t.polarity == polarity && t.expr->Equals(*cond)) {
          duplicate = true;
        }
      }
      if (!duplicate) {
        required.terms.push_back(SelectTerm{cond, polarity});
      }
    }
  }

  if (required.terms.empty()) {
    result.miss_reason = "";  // nothing to filter — not a failure
    return result;
  }
  ReduceFilterDescriptor desc;
  desc.required = std::move(required);
  result.descriptor = std::move(desc);
  return result;
}

}  // namespace manimal::analyzer
