#include "analyzer/analyzer.h"

#include "analysis/side_effects.h"
#include "analyzer/compression.h"
#include "analyzer/project.h"
#include "analyzer/reduce_filter.h"
#include "analyzer/select.h"
#include "mril/verifier.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace manimal::analyzer {

namespace {

// Safe mode (paper fn. 2): strip detections whose application would
// perturb side effects.
void ApplySafeMode(const mril::Program& program, AnalysisReport* report) {
  // Selection skips map() invocations; with any side effect in the
  // map (debug logs included), skipped invocations observably change
  // behaviour.
  if (report->selection.has_value() && !report->side_effects.empty()) {
    report->selection.reset();
    report->misses.push_back(MissReason{
        "selection",
        "safe mode: map() has side effects; skipping invocations would "
        "suppress them"});
  }
  // Projection must keep fields feeding debug logs: re-run liveness
  // with log operands counted as uses.
  if (report->projection.has_value()) {
    ProjectResult strict = FindProject(program, /*logs_are_uses=*/true);
    if (strict.descriptor.has_value()) {
      report->projection = std::move(strict.descriptor);
    } else {
      report->projection.reset();
      report->misses.push_back(MissReason{
          "projection",
          "safe mode: every field is live once log output must be "
          "preserved"});
    }
  }
  // Group skipping suppresses reduce-side effects of skipped groups.
  if (report->reduce_filter.has_value() && program.reduce_fn.has_value()) {
    if (!analysis::FindSideEffects(*program.reduce_fn).empty()) {
      report->reduce_filter.reset();
      report->misses.push_back(MissReason{
          "reduce-filter",
          "safe mode: reduce() has side effects; skipping groups would "
          "suppress them"});
    }
  }
}

}  // namespace

Result<AnalysisReport> Analyze(const mril::Program& program,
                               const AnalyzeOptions& options) {
  obs::ScopedSpan analyze_span("analyzer.analyze", "analyzer");
  analyze_span.AddArg("program", program.name);
  obs::MetricsRegistry::Get().GetCounter("analyzer.analyses")
      ->Increment();
  {
    obs::ScopedSpan span("analyzer.verify", "analyzer");
    MANIMAL_RETURN_IF_ERROR(mril::VerifyProgram(program));
  }

  AnalysisReport report;
  {
    obs::ScopedSpan span("analyzer.side_effects", "analyzer");
    report.side_effects = analysis::FindSideEffects(program.map_fn);
  }

  {
    obs::ScopedSpan span("analyzer.select", "analyzer");
    SelectResult select = FindSelect(program);
    if (select.descriptor.has_value()) {
      report.selection = std::move(select.descriptor);
    } else if (!select.always_emits && !select.miss_reason.empty()) {
      report.misses.push_back(
          MissReason{"selection", select.miss_reason});
    }
  }

  {
    obs::ScopedSpan span("analyzer.project", "analyzer");
    ProjectResult project = FindProject(program);
    if (project.descriptor.has_value()) {
      report.projection = std::move(project.descriptor);
    } else if (!project.all_fields_used && !project.miss_reason.empty()) {
      report.misses.push_back(
          MissReason{"projection", project.miss_reason});
    }
  }

  {
    obs::ScopedSpan span("analyzer.delta", "analyzer");
    DeltaResult delta = FindDeltaCompression(program);
    if (delta.descriptor.has_value()) {
      report.delta = std::move(delta.descriptor);
    } else if (!delta.no_numeric_fields && !delta.miss_reason.empty()) {
      report.misses.push_back(
          MissReason{"delta-compression", delta.miss_reason});
    }
  }

  {
    obs::ScopedSpan span("analyzer.direct_op", "analyzer");
    DirectOpResult direct = FindDirectOperation(program);
    if (direct.descriptor.has_value()) {
      report.direct_op = std::move(direct.descriptor);
    } else if (!direct.no_eligible_fields &&
               !direct.miss_reason.empty()) {
      report.misses.push_back(
          MissReason{"direct-operation", direct.miss_reason});
    }
  }

  if (options.enable_reduce_filter && program.reduce_fn.has_value()) {
    obs::ScopedSpan span("analyzer.reduce_filter", "analyzer");
    ReduceFilterResult filter = FindReduceKeyFilter(program);
    if (filter.descriptor.has_value()) {
      report.reduce_filter = std::move(filter.descriptor);
    } else if (!filter.miss_reason.empty()) {
      report.misses.push_back(
          MissReason{"reduce-filter", filter.miss_reason});
    }
  }

  if (options.safe_mode) {
    obs::ScopedSpan span("analyzer.safe_mode", "analyzer");
    ApplySafeMode(program, &report);
  }

  auto count_detection = [](const char* name, bool detected) {
    obs::MetricsRegistry::Get()
        .GetCounter(std::string("analyzer.detected.") + name)
        ->Add(detected ? 1 : 0);
  };
  count_detection("selection", report.selection.has_value());
  count_detection("projection", report.projection.has_value());
  count_detection("delta", report.delta.has_value());
  count_detection("direct_op", report.direct_op.has_value());
  count_detection("reduce_filter", report.reduce_filter.has_value());
  return report;
}

Result<AnalysisReport> Analyze(const mril::Program& program) {
  return Analyze(program, AnalyzeOptions{});
}

}  // namespace manimal::analyzer
