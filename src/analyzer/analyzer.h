// The Manimal analyzer (paper §3): examines a compiled, unmodified
// MRIL program and produces the optimization descriptors plus
// index-generation programs. Best-effort by design — it may miss
// optimizations, but what it reports is safe: "missing an optimization
// is regrettable, but finding a false one is catastrophic."

#ifndef MANIMAL_ANALYZER_ANALYZER_H_
#define MANIMAL_ANALYZER_ANALYZER_H_

#include "analyzer/descriptor.h"
#include "analyzer/index_gen.h"
#include "common/status.h"
#include "mril/program.h"

namespace manimal::analyzer {

struct AnalyzeOptions {
  // Paper §2.2 footnote 2: "It would be possible to add a Manimal
  // 'safe mode' that avoids optimizations that modify side effects, at
  // the possible cost of reduced optimization opportunities." When
  // set: selection is vetoed whenever the map has ANY side effect
  // (skipping invocations would skip debug logs too), projection must
  // keep fields that feed logs, and the reduce-side filter is
  // disabled.
  bool safe_mode = false;

  // Enables the Appendix E extension: when the reduce provably
  // discards whole groups based on the group key alone, map outputs
  // failing that predicate are deleted before the shuffle.
  bool enable_reduce_filter = true;
};

// Verifies the program and runs all detectors. Fails only on
// malformed programs; detection failures are reported inside the
// AnalysisReport (misses with reasons), never as errors.
Result<AnalysisReport> Analyze(const mril::Program& program,
                               const AnalyzeOptions& options);
Result<AnalysisReport> Analyze(const mril::Program& program);

}  // namespace manimal::analyzer

#endif  // MANIMAL_ANALYZER_ANALYZER_H_
