// Reduce-side GROUP-BY/WHERE detection — the Appendix E extension:
// "When results from the reduce function are filtered with a
// conditional clause ... if we could accurately predict which
// temporary map outputs will be removed by the WHERE-related filtering
// clause inside reduce, then we could delete this temporary data prior
// to shuffle-reduce without any impact on final program output."
//
// Detection must survive loops (real reduces aggregate before they
// test), so instead of path enumeration we use an edge-deletion
// argument: for a conditional branch whose condition is a pure
// function of the GROUP KEY alone, the condition's value is invariant
// for the whole reduce invocation. If deleting the branch's
// polarity-p edge makes every emit unreachable from entry, then a
// group whose key fails (condition == p) can never emit — its map
// outputs are dead and may be dropped before the shuffle. The filter
// is the conjunction of all such (condition, polarity) literals.

#ifndef MANIMAL_ANALYZER_REDUCE_FILTER_H_
#define MANIMAL_ANALYZER_REDUCE_FILTER_H_

#include <optional>
#include <string>

#include "analyzer/descriptor.h"
#include "mril/program.h"

namespace manimal::analyzer {

struct ReduceFilterResult {
  std::optional<ReduceFilterDescriptor> descriptor;
  std::string miss_reason;  // empty when simply nothing to filter
};

ReduceFilterResult FindReduceKeyFilter(const mril::Program& program);

}  // namespace manimal::analyzer

#endif  // MANIMAL_ANALYZER_REDUCE_FILTER_H_
