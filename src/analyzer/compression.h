// Compression detection (paper Appendix C).
//
// Delta-compression: "analyzer simply tests whether the serialized key
// and value inputs to map() contain numeric values. If so,
// delta-compression can be applied to those fields." Opaque value
// parameters defeat this (Benchmark 1, Table 1): the analyzer cannot
// tell which bytes form a numeric field.
//
// Direct-operation: string input fields whose every use is an
// equality-preserving operation (equality comparisons, str.equals, or
// service as the map output key when the job does not require sorted
// final output) can be dictionary-compressed and operated on without
// decompression.

#ifndef MANIMAL_ANALYZER_COMPRESSION_H_
#define MANIMAL_ANALYZER_COMPRESSION_H_

#include <optional>
#include <string>

#include "analyzer/descriptor.h"
#include "mril/program.h"

namespace manimal::analyzer {

struct DeltaResult {
  std::optional<DeltaCompressionDescriptor> descriptor;
  std::string miss_reason;   // analysis could not run (opaque input)
  bool no_numeric_fields = false;  // ran fine; nothing to compress
};

DeltaResult FindDeltaCompression(const mril::Program& program);

struct DirectOpResult {
  std::optional<DirectOperationDescriptor> descriptor;
  std::string miss_reason;
  bool no_eligible_fields = false;
};

DirectOpResult FindDirectOperation(const mril::Program& program);

}  // namespace manimal::analyzer

#endif  // MANIMAL_ANALYZER_COMPRESSION_H_
