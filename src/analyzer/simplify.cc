#include "analyzer/simplify.h"

#include "analyzer/expr_eval.h"
#include "mril/opcode.h"

namespace manimal::analyzer {

using analysis::Expr;
using analysis::ExprRef;
using mril::Opcode;

namespace {

bool IsConst(const ExprRef& e) {
  return e != nullptr && e->kind == Expr::Kind::kConst;
}

// A subtree is foldable when every leaf is a constant and every
// interior node is a pure operator / functional builtin.
bool IsFoldable(const ExprRef& e) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case Expr::Kind::kConst:
      return true;
    case Expr::Kind::kParam:
    case Expr::Kind::kField:
    case Expr::Kind::kMember:
    case Expr::Kind::kUnknown:
      return false;
    case Expr::Kind::kOp:
      for (const ExprRef& a : e->args) {
        if (!IsFoldable(a)) return false;
      }
      return true;
    case Expr::Kind::kCall:
      if (e->builtin == nullptr || !e->builtin->functional) return false;
      for (const ExprRef& a : e->args) {
        if (!IsFoldable(a)) return false;
      }
      return true;
  }
  return false;
}

Opcode InvertComparison(Opcode op) {
  switch (op) {
    case Opcode::kCmpLt:
      return Opcode::kCmpGe;
    case Opcode::kCmpLe:
      return Opcode::kCmpGt;
    case Opcode::kCmpGt:
      return Opcode::kCmpLe;
    case Opcode::kCmpGe:
      return Opcode::kCmpLt;
    case Opcode::kCmpEq:
      return Opcode::kCmpNe;
    case Opcode::kCmpNe:
      return Opcode::kCmpEq;
    default:
      return op;
  }
}

Opcode MirrorComparison(Opcode op) {
  switch (op) {
    case Opcode::kCmpLt:
      return Opcode::kCmpGt;
    case Opcode::kCmpLe:
      return Opcode::kCmpGe;
    case Opcode::kCmpGt:
      return Opcode::kCmpLt;
    case Opcode::kCmpGe:
      return Opcode::kCmpLe;
    default:
      return op;
  }
}

}  // namespace

ExprRef Simplify(const ExprRef& expr) {
  if (expr == nullptr) return expr;
  if (expr->kind != Expr::Kind::kOp && expr->kind != Expr::Kind::kCall) {
    return expr;
  }

  // Simplify children first.
  std::vector<ExprRef> args;
  args.reserve(expr->args.size());
  bool changed = false;
  for (const ExprRef& a : expr->args) {
    ExprRef s = Simplify(a);
    changed = changed || (s.get() != a.get());
    args.push_back(std::move(s));
  }
  ExprRef node = expr;
  if (changed) {
    node = expr->kind == Expr::Kind::kOp
               ? Expr::MakeOp(expr->op, std::move(args), expr->origin_pc)
               : Expr::MakeCall(expr->builtin, std::move(args),
                                expr->origin_pc);
  }

  // Constant folding: exact because EvalExpr implements the same
  // (defined-wrapping) semantics as the VM.
  if (IsFoldable(node)) {
    auto folded = EvalExpr(node, Value::Null(), Value::Null());
    if (folded.ok()) {
      return Expr::MakeConst(std::move(folded).value(), node->origin_pc);
    }
    return node;  // e.g. division by zero: leave it for runtime
  }

  if (node->kind == Expr::Kind::kOp) {
    // not(not(e)) -> e ; not(a cmp b) -> a inverted-cmp b.
    if (node->op == Opcode::kNot && node->args.size() == 1) {
      const ExprRef& inner = node->args[0];
      if (inner != nullptr && inner->kind == Expr::Kind::kOp) {
        if (inner->op == Opcode::kNot && inner->args.size() == 1) {
          return inner->args[0];
        }
        if (mril::IsComparison(inner->op) && inner->args.size() == 2) {
          return Expr::MakeOp(InvertComparison(inner->op), inner->args,
                              node->origin_pc);
        }
      }
    }
    // Canonical orientation: constant on the right.
    if (mril::IsComparison(node->op) && node->args.size() == 2 &&
        IsConst(node->args[0]) && !IsConst(node->args[1])) {
      return Expr::MakeOp(MirrorComparison(node->op),
                          {node->args[1], node->args[0]},
                          node->origin_pc);
    }
  }
  return node;
}

}  // namespace manimal::analyzer
