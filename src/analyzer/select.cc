#include "analyzer/select.h"

#include <algorithm>
#include <limits>

#include "analysis/cfg.h"
#include "analysis/expr_recovery.h"
#include "analysis/paths.h"
#include "analysis/reaching_defs.h"
#include "analysis/side_effects.h"
#include "analyzer/simplify.h"
#include "common/strings.h"

namespace manimal::analyzer {

using analysis::Cfg;
using analysis::CfgPath;
using analysis::Expr;
using analysis::ExprRecovery;
using analysis::ReachingDefs;
using mril::Opcode;

namespace {

// Flips a comparison for negative polarity: !(a < b) == (a >= b).
Opcode NegateComparison(Opcode op) {
  switch (op) {
    case Opcode::kCmpLt:
      return Opcode::kCmpGe;
    case Opcode::kCmpLe:
      return Opcode::kCmpGt;
    case Opcode::kCmpGt:
      return Opcode::kCmpLe;
    case Opcode::kCmpGe:
      return Opcode::kCmpLt;
    case Opcode::kCmpEq:
      return Opcode::kCmpNe;
    case Opcode::kCmpNe:
      return Opcode::kCmpEq;
    default:
      return op;
  }
}

// Mirrors a comparison when swapping operands: (c < e) == (e > c).
Opcode MirrorComparison(Opcode op) {
  switch (op) {
    case Opcode::kCmpLt:
      return Opcode::kCmpGt;
    case Opcode::kCmpLe:
      return Opcode::kCmpGe;
    case Opcode::kCmpGt:
      return Opcode::kCmpLt;
    case Opcode::kCmpGe:
      return Opcode::kCmpLe;
    default:
      return op;  // eq/ne symmetric
  }
}

// Static value-kind inference (used to gate integer normalizations).
std::optional<ValueKind> StaticKind(const ExprRef& e,
                                    const mril::Program& program) {
  if (e == nullptr) return std::nullopt;
  switch (e->kind) {
    case Expr::Kind::kConst:
      return e->constant.kind();
    case Expr::Kind::kParam:
      if (e->index == mril::kMapKeyParam) {
        switch (program.key_type) {
          case FieldType::kI64:
            return ValueKind::kI64;
          case FieldType::kF64:
            return ValueKind::kF64;
          case FieldType::kStr:
            return ValueKind::kStr;
          case FieldType::kBool:
            return ValueKind::kBool;
        }
      }
      return std::nullopt;  // the record/blob parameter
    case Expr::Kind::kField: {
      if (e->args.empty() || e->args[0] == nullptr ||
          e->args[0]->kind != Expr::Kind::kParam ||
          e->args[0]->index != mril::kMapValueParam ||
          program.value_schema.opaque() || e->index < 0 ||
          e->index >= program.value_schema.num_fields()) {
        return std::nullopt;
      }
      switch (program.value_schema.field(e->index).type) {
        case FieldType::kI64:
          return ValueKind::kI64;
        case FieldType::kF64:
          return ValueKind::kF64;
        case FieldType::kStr:
          return ValueKind::kStr;
        case FieldType::kBool:
          return ValueKind::kBool;
      }
      return std::nullopt;
    }
    case Expr::Kind::kMember:
    case Expr::Kind::kUnknown:
      return std::nullopt;
    case Expr::Kind::kCall:
      return e->builtin != nullptr ? e->builtin->result_kind
                                   : std::nullopt;
    case Expr::Kind::kOp: {
      if (mril::IsComparison(e->op) || e->op == Opcode::kAnd ||
          e->op == Opcode::kOr || e->op == Opcode::kNot) {
        return ValueKind::kBool;
      }
      if (e->op == Opcode::kAdd || e->op == Opcode::kSub ||
          e->op == Opcode::kMul || e->op == Opcode::kDiv ||
          e->op == Opcode::kMod || e->op == Opcode::kNeg) {
        for (const ExprRef& a : e->args) {
          if (StaticKind(a, program) != ValueKind::kI64) {
            return std::nullopt;
          }
        }
        return ValueKind::kI64;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

// ---- interval-set algebra ----

using IntervalSet = std::vector<KeyInterval>;

IntervalSet FullSet() { return {KeyInterval{}}; }

std::optional<KeyInterval> IntersectIntervals(const KeyInterval& a,
                                              const KeyInterval& b) {
  KeyInterval out = a;
  if (b.lo.has_value()) {
    if (!out.lo.has_value() || out.lo->Compare(*b.lo) < 0 ||
        (out.lo->Compare(*b.lo) == 0 && out.lo_inclusive &&
         !b.lo_inclusive)) {
      out.lo = b.lo;
      out.lo_inclusive = b.lo_inclusive;
    }
  }
  if (b.hi.has_value()) {
    if (!out.hi.has_value() || out.hi->Compare(*b.hi) > 0 ||
        (out.hi->Compare(*b.hi) == 0 && out.hi_inclusive &&
         !b.hi_inclusive)) {
      out.hi = b.hi;
      out.hi_inclusive = b.hi_inclusive;
    }
  }
  if (out.lo.has_value() && out.hi.has_value()) {
    int c = out.lo->Compare(*out.hi);
    if (c > 0) return std::nullopt;
    if (c == 0 && !(out.lo_inclusive && out.hi_inclusive)) {
      return std::nullopt;
    }
  }
  return out;
}

IntervalSet IntersectSets(const IntervalSet& a, const IntervalSet& b) {
  IntervalSet out;
  for (const KeyInterval& x : a) {
    for (const KeyInterval& y : b) {
      if (auto merged = IntersectIntervals(x, y)) {
        out.push_back(*merged);
      }
    }
  }
  return out;
}

// Solution set of `key cmp bound` for a generic scalar bound.
IntervalSet ComparisonSolution(Opcode op, const Value& bound) {
  KeyInterval iv;
  switch (op) {
    case Opcode::kCmpLt:
      iv.hi = bound;
      iv.hi_inclusive = false;
      break;
    case Opcode::kCmpLe:
      iv.hi = bound;
      iv.hi_inclusive = true;
      break;
    case Opcode::kCmpGt:
      iv.lo = bound;
      iv.lo_inclusive = false;
      break;
    case Opcode::kCmpGe:
      iv.lo = bound;
      iv.lo_inclusive = true;
      break;
    case Opcode::kCmpEq:
      iv.lo = bound;
      iv.hi = bound;
      break;
    case Opcode::kCmpNe:
      // Over-approximate the punctured line with the full range.
      break;
    default:
      break;
  }
  return {iv};
}

// Solution set over E of `wrap(E + shift) cmp k` for statically-i64 E.
// The non-wrapping region contributes the shifted interval; the
// wrapping fringe (|shift| values at the i64 edge) is included
// wholesale as an over-approximation.
IntervalSet ShiftedComparisonSolution(Opcode op, int64_t k,
                                      int64_t shift) {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  IntervalSet out;

  // Shifted bound in wide arithmetic, then clamp.
  __int128 wide = static_cast<__int128>(k) - shift;
  if (op == Opcode::kCmpNe) {
    return FullSet();
  }
  if (wide > kMax) {
    // E cmp (beyond max): lt/le -> full; gt/ge/eq -> empty normal part.
    if (op == Opcode::kCmpLt || op == Opcode::kCmpLe) out = FullSet();
  } else if (wide < kMin) {
    if (op == Opcode::kCmpGt || op == Opcode::kCmpGe) out = FullSet();
  } else {
    out = ComparisonSolution(op, Value::I64(static_cast<int64_t>(wide)));
  }

  // Wrap-guard fringe.
  if (shift > 0) {
    KeyInterval fringe;
    fringe.lo = Value::I64(kMax - shift + 1);
    out.push_back(fringe);
  } else if (shift < 0) {
    KeyInterval fringe;
    fringe.hi = Value::I64(kMin - shift - 1);
    out.push_back(fringe);
  }
  return out;
}

// One parsed literal: base expression, effective comparison, bound,
// and the integer shift (0 when none).
struct ParsedTerm {
  ExprRef base;
  Opcode op = Opcode::kCmpEq;
  Value bound;
  int64_t shift = 0;
  bool shifted = false;
};

// Parses `E cmp const`, `const cmp E`, `(E +/- c) cmp k` (i64 only,
// either operand order inside the +).
bool ParseTerm(const SelectTerm& term, const mril::Program& program,
               ParsedTerm* out) {
  const ExprRef& expr = term.expr;
  if (expr == nullptr || expr->kind != Expr::Kind::kOp ||
      !mril::IsComparison(expr->op) || expr->args.size() != 2) {
    return false;
  }
  ExprRef lhs = expr->args[0];
  ExprRef rhs = expr->args[1];
  Opcode op = expr->op;
  auto is_const = [](const ExprRef& e) {
    return e != nullptr && e->kind == Expr::Kind::kConst;
  };
  if (is_const(lhs) && !is_const(rhs)) {
    std::swap(lhs, rhs);
    op = MirrorComparison(op);
  }
  if (is_const(lhs) || !is_const(rhs)) return false;
  if (!term.polarity) op = NegateComparison(op);

  // Shifted form?
  if (lhs->kind == Expr::Kind::kOp &&
      (lhs->op == Opcode::kAdd || lhs->op == Opcode::kSub) &&
      lhs->args.size() == 2 && rhs->constant.is_i64()) {
    const ExprRef& a = lhs->args[0];
    const ExprRef& b = lhs->args[1];
    // Keep shifts comfortably inside the i64 range so fringe bounds
    // and negation below cannot themselves overflow.
    constexpr int64_t kShiftLimit = int64_t{1} << 62;
    auto small_const = [&](const ExprRef& e) {
      return is_const(e) && e->constant.is_i64() &&
             e->constant.i64() > -kShiftLimit &&
             e->constant.i64() < kShiftLimit;
    };
    ExprRef base;
    int64_t shift = 0;
    if (small_const(b) && !is_const(a)) {
      base = a;
      shift = lhs->op == Opcode::kAdd ? b->constant.i64()
                                      : -b->constant.i64();
    } else if (lhs->op == Opcode::kAdd && small_const(a) &&
               !is_const(b)) {
      base = b;
      shift = a->constant.i64();
    }
    if (base != nullptr && shift != 0 &&
        StaticKind(base, program) == ValueKind::kI64) {
      out->base = base;
      out->op = op;
      out->bound = rhs->constant;
      out->shift = shift;
      out->shifted = true;
      return true;
    }
  }

  out->base = lhs;
  out->op = op;
  out->bound = rhs->constant;
  out->shift = 0;
  out->shifted = false;
  return true;
}

}  // namespace

bool DeriveIndexRanges(const mril::Program& program,
                       const DnfFormula& formula, ExprRef* indexed_expr,
                       std::vector<KeyInterval>* intervals) {
  indexed_expr->reset();
  intervals->clear();
  if (formula.disjuncts.empty()) return false;

  // Pass 1: every literal must parse against one common base E.
  ExprRef common;
  for (const Conjunct& c : formula.disjuncts) {
    for (const SelectTerm& t : c.terms) {
      ParsedTerm parsed;
      if (!ParseTerm(t, program, &parsed)) return false;
      if (common == nullptr) {
        common = parsed.base;
      } else if (!common->Equals(*parsed.base)) {
        return false;
      }
    }
  }
  if (common == nullptr) return false;  // all-true conjuncts: no keying

  // Pass 2: interval-set per conjunct (intersection of term solutions),
  // unioned across disjuncts.
  IntervalSet result;
  for (const Conjunct& c : formula.disjuncts) {
    IntervalSet conjunct_set = FullSet();
    for (const SelectTerm& t : c.terms) {
      ParsedTerm parsed;
      if (!ParseTerm(t, program, &parsed)) return false;
      IntervalSet term_set;
      if (parsed.shifted) {
        term_set = ShiftedComparisonSolution(parsed.op,
                                             parsed.bound.i64(),
                                             parsed.shift);
      } else {
        term_set = ComparisonSolution(parsed.op, parsed.bound);
      }
      conjunct_set = IntersectSets(conjunct_set, term_set);
      if (conjunct_set.empty()) break;  // unsatisfiable conjunct
    }
    for (KeyInterval& iv : conjunct_set) result.push_back(iv);
  }

  if (result.empty()) {
    // Formula unsatisfiable; an empty scan is still valid & safe.
    *indexed_expr = common;
    return true;
  }

  // Merge overlapping intervals (sort by lower bound).
  std::sort(result.begin(), result.end(),
            [](const KeyInterval& a, const KeyInterval& b) {
              if (!a.lo.has_value()) return b.lo.has_value();
              if (!b.lo.has_value()) return false;
              int c = a.lo->Compare(*b.lo);
              if (c != 0) return c < 0;
              return a.lo_inclusive && !b.lo_inclusive;
            });
  std::vector<KeyInterval> merged;
  for (const KeyInterval& iv : result) {
    if (!merged.empty()) {
      KeyInterval& last = merged.back();
      bool overlaps = false;
      if (!last.hi.has_value()) {
        overlaps = true;
      } else if (!iv.lo.has_value()) {
        overlaps = true;
      } else {
        int c = iv.lo->Compare(*last.hi);
        overlaps =
            c < 0 || (c == 0 && (iv.lo_inclusive || last.hi_inclusive));
      }
      if (overlaps) {
        if (last.hi.has_value()) {
          if (!iv.hi.has_value()) {
            last.hi.reset();
          } else {
            int c = iv.hi->Compare(*last.hi);
            if (c > 0 || (c == 0 && iv.hi_inclusive)) {
              last.hi = iv.hi;
              last.hi_inclusive =
                  c > 0 ? iv.hi_inclusive
                        : (last.hi_inclusive || iv.hi_inclusive);
            }
          }
        }
        continue;
      }
    }
    merged.push_back(iv);
  }
  *intervals = std::move(merged);
  *indexed_expr = common;
  return true;
}

SelectResult FindSelect(const mril::Program& program) {
  SelectResult result;
  const mril::Function& fn = program.map_fn;

  // Figure 2 hazard: any persistent-state mutation means skipping
  // invocations changes program state, so invocation-skipping is
  // unsafe regardless of what the conditions look like.
  if (analysis::HasMemberWrites(fn)) {
    result.miss_reason =
        "map() writes member variables; output may not be a pure "
        "function of its inputs (Fig. 2)";
    return result;
  }

  Cfg cfg = Cfg::Build(fn);
  ReachingDefs reaching(fn, cfg);
  ExprRecovery recovery(program, fn, cfg, reaching);

  // Gather emits.
  std::vector<int> emit_pcs;
  for (int pc = 0; pc < static_cast<int>(fn.code.size()); ++pc) {
    if (fn.code[pc].op == Opcode::kEmit) emit_pcs.push_back(pc);
  }
  if (emit_pcs.empty()) {
    result.miss_reason = "map() never emits";
    return result;
  }

  DnfFormula dnf;
  bool any_unconditional_path = false;

  for (int emit_pc : emit_pcs) {
    auto paths_or =
        analysis::EnumeratePathsTo(cfg, cfg.BlockOf(emit_pc));
    if (!paths_or.ok()) {
      // Report the most specific cause: a branch condition resting on
      // a class the analyzer has no purity knowledge of (e.g. the
      // Hashtable of §4.1 Benchmark 4) beats a generic loop-carried
      // unknown, which beats the raw control-flow complaint.
      std::string unknown_reason;
      for (int pc = 0; pc < static_cast<int>(fn.code.size()); ++pc) {
        if (!mril::IsConditionalBranch(fn.code[pc].op)) continue;
        ExprRef cond = recovery.BranchCondition(pc);
        std::string why;
        if (analysis::IsFunctional(cond, &why)) continue;
        if (why.find("purity knowledge") != std::string::npos) {
          result.miss_reason =
              "emit-guarding condition is not functional: " + why;
          return result;
        }
        if (unknown_reason.empty()) {
          unknown_reason =
              "emit-guarding condition is not functional: " + why;
        }
      }
      result.miss_reason = unknown_reason.empty()
                               ? std::string(paths_or.status().message())
                               : unknown_reason;
      return result;
    }
    for (const CfgPath& path : *paths_or) {
      Conjunct conjunct;
      for (const analysis::PathCondition& pc : path.conditions) {
        ExprRef cond = recovery.BranchCondition(pc.branch_pc);
        std::string why;
        if (!analysis::IsFunctional(cond, &why)) {
          result.miss_reason =
              "emit-path condition is not functional: " + why;
          return result;
        }
        // Normalize (constant folding, NOT elimination, canonical
        // orientation) — exact rewrites only.
        cond = Simplify(cond);
        // Deduplicate identical literals within the conjunct.
        bool dup = false;
        for (const SelectTerm& t : conjunct.terms) {
          if (t.polarity == pc.polarity && t.expr->Equals(*cond)) {
            dup = true;
            break;
          }
        }
        if (!dup) {
          conjunct.terms.push_back(SelectTerm{cond, pc.polarity});
        }
      }
      if (conjunct.terms.empty()) any_unconditional_path = true;
      dnf.disjuncts.push_back(std::move(conjunct));
    }

    // Safety beyond Figure 3: the emitted data itself must be a pure
    // function of the inputs, or skipping rows that fail the formula
    // could still change output (e.g. emit(k, numMapsRun)).
    auto [key_expr, value_expr] = recovery.EmitOperands(emit_pc);
    std::string why;
    if (!analysis::IsFunctional(key_expr, &why) ||
        !analysis::IsFunctional(value_expr, &why)) {
      result.miss_reason = "emitted data is not functional: " + why;
      return result;
    }
  }

  if (any_unconditional_path) {
    // Some path emits with no conditions: map always emits; no
    // selection semantics to exploit.
    result.always_emits = true;
    return result;
  }

  SelectionDescriptor desc;
  desc.formula = std::move(dnf);
  ExprRef indexed;
  std::vector<KeyInterval> intervals;
  if (DeriveIndexRanges(program, desc.formula, &indexed, &intervals)) {
    desc.indexed_expr = indexed;
    desc.intervals = std::move(intervals);
  }
  result.descriptor = std::move(desc);
  return result;
}

}  // namespace manimal::analyzer
