#include "analyzer/project.h"

#include "analysis/cfg.h"
#include "analysis/expr_recovery.h"
#include "analysis/paths.h"
#include "analysis/reaching_defs.h"
#include "analysis/side_effects.h"

namespace manimal::analyzer {

using analysis::Cfg;
using analysis::CollectUsedFields;
using analysis::ExprRecovery;
using analysis::ReachingDefs;
using mril::Opcode;
using mril::ValueParamKind;

ProjectResult FindProject(const mril::Program& program) {
  return FindProject(program, /*logs_are_uses=*/false);
}

ProjectResult FindProject(const mril::Program& program,
                          bool logs_are_uses) {
  ProjectResult result;
  const mril::Function& fn = program.map_fn;

  if (program.value_param_kind == ValueParamKind::kOpaque) {
    result.miss_reason =
        "map() value parameter uses a custom serialization format; the "
        "analyzer cannot distinguish fields inside the blob";
    return result;
  }
  const int num_fields = program.value_schema.num_fields();
  if (num_fields == 0) {
    result.miss_reason = "value schema has no fields";
    return result;
  }

  // Impure library calls can smuggle values into untracked state (a
  // Hashtable entry read back later); a single one makes field-level
  // liveness unsound, so decline.
  for (const analysis::SideEffect& se : analysis::FindSideEffects(fn)) {
    if (se.kind == analysis::SideEffectKind::kImpureCall) {
      result.miss_reason =
          "map() " + se.description +
          "; data flow through it cannot be tracked";
      return result;
    }
  }

  Cfg cfg = Cfg::Build(fn);
  ReachingDefs reaching(fn, cfg);
  ExprRecovery recovery(program, fn, cfg, reaching);

  std::vector<bool> used(num_fields, false);
  auto mark_all = [&used]() {
    for (size_t i = 0; i < used.size(); ++i) used[i] = true;
  };

  // Which emits matter: all of them (conservative superset of Figure
  // 6's path-restricted set; equally safe, simpler with loops).
  for (int pc = 0; pc < static_cast<int>(fn.code.size()); ++pc) {
    const mril::Instruction& inst = fn.code[pc];
    switch (inst.op) {
      case Opcode::kEmit: {
        auto [key_expr, value_expr] = recovery.EmitOperands(pc);
        if (!CollectUsedFields(key_expr, &used) ||
            !CollectUsedFields(value_expr, &used)) {
          mark_all();
        }
        break;
      }
      case Opcode::kJmpIfTrue:
      case Opcode::kJmpIfFalse: {
        // Conditions can guard emits; treat every branch condition as
        // live (conservative superset of conds-on-paths-to-emits).
        if (!CollectUsedFields(recovery.BranchCondition(pc), &used)) {
          mark_all();
        }
        break;
      }
      case Opcode::kStoreMember: {
        // Member state persists and can affect later emissions.
        if (!CollectUsedFields(recovery.StoredValue(pc), &used)) {
          mark_all();
        }
        break;
      }
      case Opcode::kLog:
        // Log operands are deliberately NOT counted (Appendix C) —
        // except in safe mode, where log output must be preserved.
        if (logs_are_uses &&
            !CollectUsedFields(recovery.LogOperand(pc), &used)) {
          mark_all();
        }
        break;
      default:
        break;
    }
  }

  ProjectionDescriptor desc;
  for (int i = 0; i < num_fields; ++i) {
    (used[i] ? desc.used_fields : desc.unneeded_fields).push_back(i);
  }
  if (desc.unneeded_fields.empty()) {
    result.all_fields_used = true;
    return result;
  }
  result.descriptor = std::move(desc);
  return result;
}

}  // namespace manimal::analyzer
